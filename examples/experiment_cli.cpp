// Run any Sec. 4-style experiment from the command line.
//
//   ./experiment_cli --stages=3 --load=1.5 --resolution=50 --seed=7
//   ./experiment_cli --admission=approx --patience=200
//   ./experiment_cli --no-idle-reset --load=2.0
//
// `obs` subcommand — traced run, rendered as JSONL or Prometheus text:
//
//   ./experiment_cli obs --format=jsonl --seed=7
//   ./experiment_cli obs --format=prom --out=metrics.prom --load=1.5
//
// `ingest` subcommand — encode a workload capture as a binary wire frame
// (optionally to/from a file), zero-copy decode it, and admit every record
// through the traced sharded service (docs/wire_format.md):
//
//   ./experiment_cli ingest --count=5000 --stages=3 --capture=arrivals.frap
//   ./experiment_cli ingest --in=arrivals.frap --format=jsonl
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/cli.h"
#include "pipeline/experiment.h"

namespace {

int run_obs_main(const std::vector<std::string>& args) {
  using namespace frap;
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(pipeline::obs_cli_usage().c_str(), stdout);
      return 0;
    }
  }
  const auto parsed = pipeline::parse_obs_args(args);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                 pipeline::obs_cli_usage().c_str());
    return 2;
  }
  if (parsed.config.out_path.empty()) {
    return pipeline::run_obs_command(parsed.config, std::cout);
  }
  std::ofstream out(parsed.config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 parsed.config.out_path.c_str());
    return 1;
  }
  return pipeline::run_obs_command(parsed.config, out);
}

int run_ingest_main(const std::vector<std::string>& args) {
  using namespace frap;
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(pipeline::ingest_cli_usage().c_str(), stdout);
      return 0;
    }
  }
  const auto parsed = pipeline::parse_ingest_args(args);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                 pipeline::ingest_cli_usage().c_str());
    return 2;
  }
  if (parsed.config.out_path.empty()) {
    return pipeline::run_ingest_command(parsed.config, std::cout, std::cerr);
  }
  std::ofstream out(parsed.config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 parsed.config.out_path.c_str());
    return 1;
  }
  return pipeline::run_ingest_command(parsed.config, out, std::cerr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace frap;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args.front() == "obs") {
    return run_obs_main({args.begin() + 1, args.end()});
  }
  if (!args.empty() && args.front() == "ingest") {
    return run_ingest_main({args.begin() + 1, args.end()});
  }
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(pipeline::experiment_cli_usage().c_str(), stdout);
      return 0;
    }
  }
  const auto parsed = pipeline::parse_experiment_args(args);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                 pipeline::experiment_cli_usage().c_str());
    return 1;
  }

  const auto r = pipeline::run_experiment(parsed.config);

  std::printf("offered arrivals:    %llu\n",
              static_cast<unsigned long long>(r.offered));
  std::printf("admitted:            %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.admitted),
              100.0 * r.acceptance_ratio);
  std::printf("completed:           %llu\n",
              static_cast<unsigned long long>(r.completed));
  std::printf("deadline miss ratio: %.4f\n", r.miss_ratio);
  std::printf("mean response:       %.1f ms\n", r.mean_response / kMilli);
  for (std::size_t j = 0; j < r.stage_utilization.size(); ++j) {
    std::printf("stage %zu utilization: %.1f%%\n", j + 1,
                100.0 * r.stage_utilization[j]);
  }
  std::printf("simulator events:    %llu\n",
              static_cast<unsigned long long>(r.events));
  return 0;
}
