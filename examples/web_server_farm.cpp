// A multi-tier web service with response-time guarantees — the motivating
// server scenario of the paper's introduction.
//
// Requests traverse front-end -> business logic -> database. Three request
// classes with different deadlines and demands share the pipeline:
//   * "interactive" page loads   (tight deadline, light),
//   * "checkout" transactions    (medium deadline, DB-heavy),
//   * "report" generation        (loose deadline, heavy everywhere).
// Exact computation times are unknown at arrival, so the operator runs
// APPROXIMATE admission control on per-class mean demands (Sec. 4.4) — and
// because each class mixes thousands of small requests (high task
// resolution), the realized miss ratio stays near zero.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace {

using namespace frap;

struct RequestClass {
  std::string name;
  double arrival_rate;                  // requests / s
  std::vector<Duration> mean_compute;   // per tier
  Duration deadline;
  std::uint64_t id_base;
  // live stats
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kTiers = 3;  // front-end, app, database
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kTiers);
  pipeline::PipelineRuntime runtime(sim, kTiers, &tracker);
  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kTiers));

  std::vector<RequestClass> classes{
      {"interactive", 150.0, {1 * kMilli, 2 * kMilli, 1 * kMilli},
       250 * kMilli, 1'000'000},
      {"checkout", 40.0, {1 * kMilli, 4 * kMilli, 8 * kMilli}, 800 * kMilli,
       2'000'000},
      {"report", 4.0, {2 * kMilli, 25 * kMilli, 40 * kMilli}, 5.0 * kSec,
       3'000'000},
  };

  // The admission controller only knows the blended per-tier mean demand.
  std::vector<Duration> blended(kTiers, 0);
  double total_rate = 0;
  for (const auto& c : classes) total_rate += c.arrival_rate;
  for (std::size_t j = 0; j < kTiers; ++j) {
    for (const auto& c : classes) {
      blended[j] += c.mean_compute[j] * (c.arrival_rate / total_rate);
    }
  }
  admission.set_approximate_means(blended);

  // Per-class completion accounting.
  runtime.set_on_task_complete(
      [&](const core::TaskSpec& spec, Duration, bool missed) {
        for (auto& c : classes) {
          if (spec.id >= c.id_base && spec.id < c.id_base + 1'000'000) {
            ++c.completed;
            if (missed) ++c.missed;
            return;
          }
        }
      });

  const Duration horizon = 60.0;
  util::Rng rng(7);
  std::vector<std::uint64_t> next_id(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    next_id[i] = classes[i].id_base;
  }

  std::vector<std::function<void()>> pumps(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    pumps[i] = [&, i] {
      const Time t =
          sim.now() + rng.exponential(1.0 / classes[i].arrival_rate);
      if (t > horizon) return;
      sim.at(t, [&, i] {
        auto& cls = classes[i];
        ++cls.offered;
        core::TaskSpec req;
        req.id = next_id[i]++;
        req.deadline = cls.deadline;
        req.stages.resize(kTiers);
        for (std::size_t j = 0; j < kTiers; ++j) {
          req.stages[j].compute = rng.exponential(cls.mean_compute[j]);
        }
        if (admission.try_admit(req, sim.now()).admitted) {
          ++cls.admitted;
          runtime.start_task(req, sim.now() + req.deadline);
        }
        pumps[i]();
      });
    };
    pumps[i]();
  }
  sim.run();

  std::printf("web server farm: 3 tiers, approximate admission control\n\n");
  std::printf("%-12s %9s %9s %10s %7s\n", "class", "offered", "admitted",
              "completed", "missed");
  for (const auto& c : classes) {
    std::printf("%-12s %9llu %9llu %10llu %7llu\n", c.name.c_str(),
                static_cast<unsigned long long>(c.offered),
                static_cast<unsigned long long>(c.admitted),
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.missed));
  }
  const auto u = runtime.stage_utilizations(5.0, horizon);
  std::printf("\ntier utilization: front-end %.1f%%, app %.1f%%, db %.1f%%\n",
              100 * u[0], 100 * u[1], 100 * u[2]);
  std::printf("overall miss ratio: %.4f (high resolution keeps the "
              "mean-based test accurate)\n",
              runtime.misses().ratio());
  return 0;
}
