// Sensor-data processing as an arbitrary task graph (Sec. 3.3, Fig. 3).
//
// Radar contacts fan out after ingest into two parallel analyses (track
// correlation and threat classification) that rejoin for display — the
// Fig. 3 shape on four resources. Admission uses Theorem 2's per-task
// critical-path region; execution uses the DAG runtime with fork/join
// precedence. Every admitted contact meets its end-to-end deadline.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/admission.h"
#include "core/task_graph.h"
#include "core/synthetic_utilization.h"
#include "pipeline/dag_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

enum Resource : std::size_t {
  kIngest = 0,
  kCorrelator = 1,
  kClassifier = 2,
  kDisplay = 3,
  kNumResources = 4,
};

core::GraphTaskSpec radar_contact(std::uint64_t id, util::Rng& rng) {
  auto demand = [&rng](Duration mean) {
    core::StageDemand d;
    d.compute = rng.exponential(mean);
    return d;
  };
  core::GraphTaskSpec g;
  g.id = id;
  g.deadline = rng.uniform(1.5, 4.5);  // seconds, end to end
  g.nodes = {core::GraphNode{kIngest, demand(8 * kMilli)},
             core::GraphNode{kCorrelator, demand(15 * kMilli)},
             core::GraphNode{kClassifier, demand(12 * kMilli)},
             core::GraphNode{kDisplay, demand(6 * kMilli)}};
  g.edges = {core::GraphEdge{0, 1}, core::GraphEdge{0, 2},
             core::GraphEdge{1, 3}, core::GraphEdge{2, 3}};
  return g;
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kNumResources);
  pipeline::DagRuntime runtime(sim, kNumResources, &tracker);
  core::GraphAdmissionController admission(
      sim, tracker, core::GraphRegionEvaluator(/*alpha=*/1.0, {}));

  const Duration horizon = 60.0;
  util::Rng rng(4242);
  std::uint64_t next_id = 1;

  // Contacts at ~90 Hz: correlator (15 ms mean) is the bottleneck at
  // ~135% of its capacity — the admission controller earns its keep.
  workload::schedule_poisson(sim, 90.0, horizon, 4242, [&](Time) {
    const auto contact = radar_contact(next_id++, rng);
    if (admission.try_admit(contact, sim.now()).admitted) {
      runtime.start_task(contact, sim.now() + contact.deadline);
    }
  });
  sim.run();

  std::printf("radar DAG processing (Fig. 3 shape, Theorem 2 admission)\n\n");
  std::printf("contacts offered:  %llu\n",
              static_cast<unsigned long long>(admission.attempts()));
  std::printf("contacts admitted: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(admission.admitted()),
              100.0 * static_cast<double>(admission.admitted()) /
                  static_cast<double>(admission.attempts()));
  std::printf("completed:         %llu\n",
              static_cast<unsigned long long>(runtime.completed()));
  std::printf("deadline misses:   %llu (Theorem 2 guarantee)\n",
              static_cast<unsigned long long>(runtime.misses().hits()));
  const auto u = runtime.resource_utilizations(5.0, horizon);
  std::printf("\nutilization: ingest %.1f%%, correlator %.1f%%, classifier "
              "%.1f%%, display %.1f%%\n",
              100 * u[kIngest], 100 * u[kCorrelator], 100 * u[kClassifier],
              100 * u[kDisplay]);
  std::printf("mean contact latency: %.0f ms (critical path through the "
              "fork/join)\n",
              runtime.response_times().mean() / kMilli);
  return 0;
}
