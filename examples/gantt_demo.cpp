// Visualizing a schedule: ASCII Gantt charts from captured timelines.
//
// Runs a small priority-inversion-free PCP scenario on one stage and
// prints who occupied the processor when — the fastest way to see
// preemption, inheritance, and ceiling blocking actually happen.
#include <cstdio>
#include <iostream>

#include "sched/gantt.h"
#include "sched/stage_server.h"
#include "sched/timeline.h"
#include "sim/simulator.h"

int main() {
  using namespace frap;

  sim::Simulator sim;
  sched::StageServer server(sim, "demo");
  sched::Timeline timeline;
  server.set_timeline(&timeline);

  // Classic PCP demonstration (priority values: smaller = more urgent):
  //   t=0: LOW (prio 9) starts a 4 s critical section on lock 0.
  //   t=1: MID (prio 5) arrives with 3 s of lock-free work.
  //   t=2: HIGH (prio 1) arrives needing lock 0 for 1 s.
  // Without PCP, MID could preempt LOW and extend HIGH's blocking
  // indefinitely (unbounded priority inversion). With PCP, LOW inherits
  // HIGH's priority while it blocks, so LOW finishes its critical section
  // first, HIGH runs next, and MID goes last.
  sched::Job low(1, 9.0, {sched::Segment{4.0, 0}});
  sched::Job mid(2, 5.0, {sched::Segment{3.0, sched::kNoLock}});
  sched::Job high(3, 1.0, {sched::Segment{1.0, 0}});
  server.locks().set_ceiling(0, 1.0);

  sim.at(0.0, [&] { server.submit(low); });
  sim.at(1.0, [&] { server.submit(mid); });
  sim.at(2.0, [&] { server.submit(high); });
  sim.run();

  std::printf("PCP in action (job 1 = LOW w/ lock, 2 = MID, 3 = HIGH w/ "
              "lock), 1 cell = 0.2 s:\n\n");
  std::cout << sched::render_ascii_gantt(timeline, 0.0, 8.0, 40);
  std::printf(
      "\nreading: MID preempts LOW at t=1 (PCP permits preemption of a "
      "lock holder), but the moment HIGH blocks on the lock at t=2, LOW "
      "INHERITS HIGH's priority, takes the processor back from MID, and "
      "drives its critical section to completion at t=5. HIGH runs "
      "immediately after; MID — despite arriving before HIGH — finishes "
      "last. HIGH's blocking was bounded by one critical section, exactly "
      "the B_ij that Eq. 15 budgets for.\n");
  return 0;
}
