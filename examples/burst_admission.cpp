// Burst admission: deciding arrival storms in one pass.
//
// Bursty sources (sensor frames, fan-in upstream queues, replayed traces)
// release many tasks at the same instant. BatchAdmissionController snapshots
// the tracker once per burst and decides every arrival with pure array
// arithmetic — same decisions as calling try_admit() per task, at a fraction
// of the per-attempt cost (bench/micro_admission quantifies it).
//
// This demo fires Poisson-spaced bursts of 8-64 tasks at a 4-stage pipeline
// for 30 simulated seconds and shows:
//   * per-burst acceptance: early tasks of a burst fill the region, late
//     ones are rejected — order within the burst matters, exactly as it
//     would submitting them one by one;
//   * soundness: every admitted task still meets its end-to-end deadline.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/burst_admission
#include <cstdio>
#include <functional>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"

int main() {
  using namespace frap;

  constexpr std::size_t kStages = 4;
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  pipeline::PipelineRuntime runtime(sim, kStages, &tracker);
  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  core::BatchAdmissionController batch(admission);

  util::Rng rng(2026);
  std::uint64_t next_id = 1;
  std::uint64_t bursts = 0;
  std::uint64_t burst_tasks = 0;
  const Duration horizon = 30.0;

  std::function<void()> next_burst = [&] {
    const Time t = sim.now() + rng.exponential(0.25);  // ~4 bursts/s
    if (t > horizon) return;
    sim.at(t, [&] {
      // One storm: 8-64 tasks released at the same instant.
      std::vector<core::TaskSpec> storm(
          static_cast<std::size_t>(rng.uniform_int(8, 64)));
      for (auto& spec : storm) {
        spec.id = next_id++;
        spec.deadline = rng.uniform(0.5, 2.0);
        spec.stages.resize(kStages);
        for (auto& s : spec.stages) {
          if (rng.bernoulli(0.75)) {
            s.compute = rng.exponential(4 * kMilli);
          }
        }
      }
      const auto& decisions = batch.try_admit_burst(storm);
      for (std::size_t i = 0; i < storm.size(); ++i) {
        if (decisions[i].admitted) {
          runtime.start_task(storm[i], sim.now() + storm[i].deadline);
        }
      }
      ++bursts;
      burst_tasks += storm.size();
      next_burst();
    });
  };
  next_burst();
  sim.run();

  std::printf("bursts:    %llu (%llu tasks, avg %.1f per burst)\n",
              static_cast<unsigned long long>(bursts),
              static_cast<unsigned long long>(burst_tasks),
              bursts == 0 ? 0.0
                          : static_cast<double>(burst_tasks) /
                                static_cast<double>(bursts));
  std::printf("admitted:  %llu (%.1f%%)\n",
              static_cast<unsigned long long>(admission.admitted()),
              100.0 * admission.acceptance_ratio());
  std::printf("completed: %llu\n",
              static_cast<unsigned long long>(runtime.completed()));
  std::printf("deadline misses: %llu  <- burst decisions stay sound\n",
              static_cast<unsigned long long>(runtime.misses().hits()));
  // The incremental-LHS cache survived the storm bit-exactly (aborts on
  // drift; see docs/incremental_lhs.md).
  tracker.verify_lhs_cache();
  std::printf("lhs cache: %llu crosschecks, %llu rebuilds, max drift %.2e\n",
              static_cast<unsigned long long>(
                  tracker.lhs_cache_stats().crosschecks),
              static_cast<unsigned long long>(
                  tracker.lhs_cache_stats().rebuilds),
              tracker.lhs_cache_stats().max_drift);
  return runtime.misses().hits() == 0 ? 0 : 1;
}
