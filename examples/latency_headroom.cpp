// Operator dashboard: live latency headroom from Theorem 1.
//
// Beyond accept/reject, the region gives a quantitative signal: at any
// instant, sum_j f(U_j(t)) * D is the worst-case end-to-end delay a task
// with deadline D could see if admitted now. This example samples that
// predictor once per second while a diurnal-style load pattern (quiet ->
// rush -> quiet) flows through a 3-stage pipeline, and prints the
// worst-case-delay-to-deadline ratio ("headroom") alongside the realized
// utilization — the number an SRE would alert on.
#include <cstdio>
#include <vector>

#include "core/admission.h"
#include "core/delay_bound.h"
#include "core/feasible_region.h"
#include "util/math.h"
#include "core/synthetic_utilization.h"
#include "metrics/timeseries.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/arrival_scheduler.h"

int main() {
  using namespace frap;

  constexpr std::size_t kStages = 3;
  constexpr Duration kDeadline = 2.0;  // every request: 2 s end-to-end

  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  pipeline::PipelineRuntime runtime(sim, kStages, &tracker);
  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));

  // Worst-case delay for a D = 2 s task admitted right now, as a fraction
  // of its deadline. Values near 1.0 mean the region is nearly exhausted.
  metrics::TimeSeries headroom(sim, 1.0, [&] {
    return util::safe_div(
        core::predict_pipeline_delay(tracker.utilizations(), kDeadline),
        kDeadline);
  });

  auto rng = std::make_shared<util::Rng>(515);
  std::uint64_t next_id = 1;
  auto arrival = [&, rng](Time) {
    core::TaskSpec req;
    req.id = next_id++;
    req.deadline = kDeadline;
    req.stages.resize(kStages);
    for (auto& s : req.stages) s.compute = rng->exponential(10 * kMilli);
    if (admission.try_admit(req, sim.now()).admitted) {
      runtime.start_task(req, sim.now() + req.deadline);
    }
  };

  // Diurnal pattern: a 60% base load throughout, plus a rush pump adding
  // another 110% during [30 s, 60 s) — 170% of capacity at the peak.
  const double base_rate = 1.0 / (10 * kMilli);
  workload::schedule_poisson(sim, 0.6 * base_rate, 90.0, 1, arrival);
  sim.at(30.0, [&] {
    workload::schedule_poisson(sim, 1.1 * base_rate, 60.0, 2, arrival);
  });
  headroom.start(90.0);
  sim.run();

  std::printf("latency headroom monitor (3-stage pipeline, D = 2 s)\n");
  std::printf("worst-case-delay / deadline, per phase:\n\n");
  struct Phase {
    const char* name;
    Time from, to;
  };
  for (const Phase& p : {Phase{"quiet (60% load)", 5.0, 30.0},
                         Phase{"rush (170% load)", 35.0, 60.0},
                         Phase{"quiet again", 65.0, 90.0}}) {
    const auto u = runtime.stage_utilizations(p.from, p.to);
    double avg_u = 0;
    for (double v : u) avg_u += v;
    avg_u /= static_cast<double>(u.size());
    std::printf("  %-18s headroom mean %.2f  peak %.2f   real util %.2f\n",
                p.name, headroom.mean(p.from, p.to),
                headroom.max(p.from, p.to), avg_u);
  }
  std::printf("\nadmitted %llu of %llu requests, deadline misses: %llu\n",
              static_cast<unsigned long long>(admission.admitted()),
              static_cast<unsigned long long>(admission.attempts()),
              static_cast<unsigned long long>(runtime.misses().hits()));
  std::printf(
      "\nreading: the predictor always stays below 1.0 — the admission "
      "controller refuses any arrival that would push it past the "
      "deadline; during the rush it hovers near 1.0 (region nearly "
      "exhausted) and recovers instantly after.\n");
  return 0;
}
