// Record/replay: comparing admission policies on the identical workload.
//
// A capacity planner wants to know what switching from exact to
// approximate admission (or turning off the idle reset) would have done to
// yesterday's traffic. This example records an arrival trace once, saves
// it to disk in the frap-trace v1 text format, reloads it, and replays the
// SAME arrivals through three differently-configured controllers.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "workload/pipeline_workload.h"
#include "workload/replay.h"

namespace {

using namespace frap;

struct ReplayResult {
  double accept = 0;
  double util = 0;
  double miss = 0;
};

ReplayResult replay(const workload::ArrivalTrace& trace, bool approximate,
                    bool idle_reset,
                    const std::vector<Duration>& means) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, trace.num_stages());
  tracker.set_idle_reset_enabled(idle_reset);
  pipeline::PipelineRuntime runtime(sim, trace.num_stages(), &tracker);
  core::AdmissionController controller(
      sim, tracker,
      core::FeasibleRegion::deadline_monotonic(trace.num_stages()));
  if (approximate) controller.set_approximate_means(means);

  std::uint64_t admitted = 0;
  for (const auto& rec : trace.records()) {
    sim.at(rec.time, [&] {
      if (controller.try_admit(rec.task, sim.now()).admitted) {
        ++admitted;
        runtime.start_task(rec.task, sim.now() + rec.task.deadline);
      }
    });
  }
  sim.run();

  ReplayResult r;
  r.accept = static_cast<double>(admitted) /
             static_cast<double>(trace.size());
  const Time horizon = trace.records().back().time;
  const auto u = runtime.stage_utilizations(0.0, horizon);
  for (double v : u) r.util += v;
  r.util /= static_cast<double>(u.size());
  r.miss = runtime.misses().ratio();
  return r;
}

}  // namespace

int main() {
  // 1. Record a trace: two-stage pipeline at 140% load, 60 s of traffic.
  const auto cfg =
      workload::PipelineWorkloadConfig::balanced(2, 10 * kMilli, 1.4, 100.0);
  workload::PipelineWorkloadGenerator gen(cfg, 777);
  workload::ArrivalTrace trace;
  Time t = 0;
  while (true) {
    t += gen.next_interarrival();
    if (t > 60.0) break;
    trace.append(t, gen.next_task());
  }
  std::printf("recorded %zu arrivals over 60 s (offered load on stage 1: "
              "%.2f)\n",
              trace.size(), trace.offered_load(0));

  // 2. Save and reload (round-trip through the text format).
  const char* path = "/tmp/frap_example_trace.txt";
  {
    std::ofstream out(path);
    trace.save(out);
  }
  workload::ArrivalTrace loaded;
  {
    std::ifstream in(path);
    if (!loaded.load(in)) {
      std::fprintf(stderr, "failed to reload trace from %s\n", path);
      return 1;
    }
  }
  std::printf("saved to %s and reloaded: %zu arrivals\n\n", path,
              loaded.size());

  // 3. Replay under three configurations.
  const auto exact = replay(loaded, false, true, cfg.mean_compute);
  const auto approx = replay(loaded, true, true, cfg.mean_compute);
  const auto no_reset = replay(loaded, false, false, cfg.mean_compute);

  std::printf("%-28s %9s %9s %9s\n", "configuration", "accept", "util",
              "miss");
  std::printf("%-28s %8.1f%% %8.1f%% %9.4f\n", "exact admission",
              100 * exact.accept, 100 * exact.util, exact.miss);
  std::printf("%-28s %8.1f%% %8.1f%% %9.4f\n", "approximate (mean-based)",
              100 * approx.accept, 100 * approx.util, approx.miss);
  std::printf("%-28s %8.1f%% %8.1f%% %9.4f\n", "exact, idle reset OFF",
              100 * no_reset.accept, 100 * no_reset.util, no_reset.miss);
  std::printf(
      "\nsame arrivals in every row — differences are purely the admission "
      "configuration.\n");
  return 0;
}
