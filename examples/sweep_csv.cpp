// Machine-readable parameter sweeps: run a load sweep over a base
// configuration (given as experiment_cli-style flags) and emit one CSV row
// per (load, seed-replication) cell, ready for plotting.
//
//   ./sweep_csv --stages=3 --resolution=50 > sweep.csv
//   ./sweep_csv --admission=approx --load-from=60 --load-to=200 \
//               --load-step=20 --reps=5 > sweep.csv
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/export.h"
#include "pipeline/cli.h"
#include "pipeline/replication.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace frap;

  // Split off sweep-specific flags; forward the rest to the CLI parser.
  int load_from = 60;
  int load_to = 200;
  int load_step = 20;
  std::size_t reps = 3;
  std::vector<std::string> base_args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* name, int& out) {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      out = std::atoi(arg.substr(prefix.size()).c_str());
      return true;
    };
    int reps_int = 0;
    if (int_flag("--load-from", load_from) ||
        int_flag("--load-to", load_to) ||
        int_flag("--load-step", load_step)) {
      continue;
    }
    if (int_flag("--reps", reps_int)) {
      reps = static_cast<std::size_t>(reps_int);
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::fputs(
          "usage: sweep_csv [experiment_cli flags] [--load-from=60]\n"
          "                 [--load-to=200] [--load-step=20] [--reps=3]\n\n",
          stdout);
      std::fputs(pipeline::experiment_cli_usage().c_str(), stdout);
      return 0;
    }
    base_args.push_back(arg);
  }
  if (load_step <= 0 || load_from <= 0 || load_to < load_from ||
      reps == 0) {
    std::fprintf(stderr, "error: invalid sweep range\n");
    return 1;
  }

  const auto parsed = pipeline::parse_experiment_args(base_args);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: %s\n", parsed.error.c_str());
    return 1;
  }

  util::Table csv({"load_pct", "seed", "stages", "avg_util",
                   "bottleneck_util", "acceptance", "miss_ratio",
                   "mean_response_ms", "completed"});
  for (int load_pct = load_from; load_pct <= load_to;
       load_pct += load_step) {
    auto cfg = parsed.config;
    cfg.workload.input_load = load_pct / 100.0;
    const auto rep = pipeline::run_replicated(cfg, cfg.seed, reps);
    for (std::size_t i = 0; i < rep.runs.size(); ++i) {
      const auto& r = rep.runs[i];
      csv.add_row({std::to_string(load_pct),
                   std::to_string(cfg.seed + i),
                   std::to_string(cfg.workload.num_stages()),
                   util::Table::fmt(r.avg_stage_utilization, 5),
                   util::Table::fmt(r.bottleneck_utilization, 5),
                   util::Table::fmt(r.acceptance_ratio, 5),
                   util::Table::fmt(r.miss_ratio, 6),
                   util::Table::fmt(r.mean_response / kMilli, 2),
                   std::to_string(r.completed)});
    }
  }
  metrics::write_csv(csv, std::cout);
  return 0;
}
