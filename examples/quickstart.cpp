// Quickstart: admission-controlled aperiodic tasks on a 3-stage pipeline.
//
// Demonstrates the library's core loop in ~80 lines:
//   1. build a Simulator, a SyntheticUtilizationTracker, a PipelineRuntime
//      and an AdmissionController over the deadline-monotonic region;
//   2. feed it aperiodic arrivals;
//   3. observe: every admitted task meets its end-to-end deadline, and the
//      stages stay busy.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "workload/pipeline_workload.h"

int main() {
  using namespace frap;

  constexpr std::size_t kStages = 3;
  sim::Simulator sim;

  // Synthetic utilization U_j(t) per stage, with idle reset (Sec. 4).
  core::SyntheticUtilizationTracker tracker(sim, kStages);

  // The pipeline: 3 preemptive deadline-monotonic stage servers.
  pipeline::PipelineRuntime runtime(sim, kStages, &tracker);

  // The feasible region: sum_j f(U_j) <= 1 under DM scheduling (Eq. 13).
  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));

  // A synthetic workload: Poisson arrivals at 120% of stage capacity,
  // exponential per-stage demands (10 ms mean), deadlines ~100x compute.
  auto config = workload::PipelineWorkloadConfig::balanced(
      kStages, 10 * kMilli, /*input_load=*/1.2, /*resolution=*/100.0);
  workload::PipelineWorkloadGenerator gen(config, /*seed=*/2024);

  const Duration horizon = 30.0;
  std::function<void()> next_arrival = [&] {
    const Time t = sim.now() + gen.next_interarrival();
    if (t > horizon) return;
    sim.at(t, [&] {
      const core::TaskSpec task = gen.next_task();
      const auto decision = admission.try_admit(task, sim.now());
      if (decision.admitted) {
        runtime.start_task(task, sim.now() + task.deadline);
      }
      next_arrival();
    });
  };
  next_arrival();
  sim.run();

  std::printf("offered:   %llu tasks\n",
              static_cast<unsigned long long>(admission.attempts()));
  std::printf("admitted:  %llu (%.1f%%)\n",
              static_cast<unsigned long long>(admission.admitted()),
              100.0 * admission.acceptance_ratio());
  std::printf("completed: %llu\n",
              static_cast<unsigned long long>(runtime.completed()));
  std::printf("deadline misses: %llu  <- the theorem at work\n",
              static_cast<unsigned long long>(runtime.misses().hits()));
  const auto u = runtime.stage_utilizations(0.0, horizon);
  for (std::size_t j = 0; j < u.size(); ++j) {
    std::printf("stage %zu real utilization: %.1f%%\n", j + 1, 100.0 * u[j]);
  }
  std::printf("mean end-to-end response: %.1f ms\n",
              runtime.response_times().mean() / kMilli);
  return 0;
}
