// The Sec. 5 shipboard scenario as an application: reservation,
// certification, dynamic admission with waiting, and semantic-importance
// load shedding during a battle surge.
//
// Timeline of the demo:
//   t in [0, 10):  steady state — 300 tracked targets, the three critical
//                  streams (Weapon Targeting, UAV video, sporadic Weapon
//                  Detection) run against reserved capacity.
//   t = 10:        battle surge — 400 additional tracks appear (sensor
//                  contacts), pushing demand past the feasible region.
//                  Waiting admission + shedding keep the system inside the
//                  region: low-importance tracking load is rejected/shed
//                  while every critical task still meets its deadline.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/arrival_scheduler.h"
#include "workload/tsce.h"

namespace {
using namespace frap;
namespace tsce = workload::tsce;
}  // namespace

int main() {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, tsce::kNumStages);
  const auto reserved = tsce::reserved_utilizations();
  for (std::size_t j = 0; j < reserved.size(); ++j) {
    tracker.set_reservation(j, reserved[j]);
  }

  std::printf("TSCE certification: Eq. 13 LHS at reservation (0.40, 0.25, "
              "0.10) = %.4f -> %s\n\n",
              tsce::certification_lhs(),
              core::FeasibleRegion::admits_lhs(tsce::certification_lhs(), 1.0)
                  ? "SCHEDULABLE"
                  : "INFEASIBLE");

  pipeline::PipelineRuntime runtime(sim, tsce::kNumStages, &tracker);
  core::AdmissionController admission(
      sim, tracker,
      core::FeasibleRegion::deadline_monotonic(tsce::kNumStages));
  core::WaitingAdmissionController waiting(sim, admission,
                                           tsce::kTrackingPatience);
  waiting.attach();

  std::uint64_t track_rejections = 0;
  std::uint64_t critical_misses = 0;
  std::uint64_t track_misses = 0;

  waiting.set_decision_callback(
      [&](const core::TaskSpec& spec, const core::AdmissionDecision& d) {
        if (!d.admitted) {
          ++track_rejections;
          return;
        }
        runtime.start_task(spec, d.arrival + spec.deadline);
      });
  runtime.set_on_task_complete(
      [&](const core::TaskSpec& spec, Duration, bool missed) {
        if (!missed) return;
        if (spec.importance >= tsce::kImportanceUavVideo) {
          ++critical_misses;
        } else {
          ++track_misses;
        }
      });

  const Duration horizon = 20.0;
  util::Rng rng(99);

  // --- critical streams (pre-certified; started directly) ---
  auto run_periodic = [&](const workload::PeriodicStreamConfig& cfg,
                          std::uint64_t id_base) {
    workload::schedule_periodic(
        sim, cfg.period, 0.0, horizon,
        [&runtime, &sim, cfg, id_base](Time, std::uint64_t k) {
          core::TaskSpec spec;
          spec.id = id_base + k;
          spec.deadline = cfg.deadline;
          spec.importance = cfg.importance;
          spec.stages = cfg.stages;
          runtime.start_task(spec, sim.now() + spec.deadline);
        });
  };
  run_periodic(tsce::weapon_targeting_stream(), 800'000'000ULL);
  run_periodic(tsce::uav_video_stream(), 850'000'000ULL);

  {  // sporadic Weapon Detection threats, ~1 every 2 s
    auto id = std::make_shared<std::uint64_t>(900'000'000ULL);
    workload::schedule_poisson(sim, 0.5, horizon, 991,
                               [&runtime, &sim, id](Time) {
                                 const auto spec =
                                     tsce::weapon_detection_task((*id)++);
                                 runtime.start_task(
                                     spec, sim.now() + spec.deadline);
                               });
  }

  // --- tracking load: 300 tracks at t=0, +400 more at the t=10 surge ---
  std::uint64_t track_arrivals = 0;
  auto add_track = [&](std::size_t index, Time from) {
    const auto cfg = tsce::target_tracking_stream(index);
    const Time phase = from + rng.uniform(0.0, cfg.period);
    const std::uint64_t base = 1'000'000ULL * (index + 1);
    auto stages =
        std::make_shared<std::vector<core::StageDemand>>(cfg.stages);
    workload::schedule_periodic(
        sim, cfg.period, phase, horizon,
        [&waiting, &track_arrivals, stages, base](Time, std::uint64_t k) {
          core::TaskSpec spec;
          spec.id = base + k;
          spec.deadline = 1.0;
          spec.importance = tsce::kImportanceTracking;
          spec.stages = *stages;
          ++track_arrivals;
          waiting.submit(spec);
        });
  };
  for (std::size_t i = 0; i < 300; ++i) add_track(i, 0.0);
  for (std::size_t i = 300; i < 700; ++i) add_track(i, 10.0);

  sim.run();

  const auto u_pre = runtime.stage_utilizations(1.0, 10.0);
  const auto u_surge = runtime.stage_utilizations(10.0, horizon);
  std::printf("steady state  (300 tracks): stage util = %.2f / %.2f / %.2f\n",
              u_pre[0], u_pre[1], u_pre[2]);
  std::printf("battle surge  (700 tracks): stage util = %.2f / %.2f / %.2f\n",
              u_surge[0], u_surge[1], u_surge[2]);
  std::printf("\ntrack update arrivals: %llu, rejected at admission: %llu "
              "(%.1f%%)\n",
              static_cast<unsigned long long>(track_arrivals),
              static_cast<unsigned long long>(track_rejections),
              track_arrivals
                  ? 100.0 * static_cast<double>(track_rejections) /
                        static_cast<double>(track_arrivals)
                  : 0.0);
  std::printf("deadline misses: critical = %llu (must be 0), tracking = "
              "%llu (must be 0: admitted => guaranteed)\n",
              static_cast<unsigned long long>(critical_misses),
              static_cast<unsigned long long>(track_misses));
  std::printf("\nthe surge is absorbed by rejecting excess low-importance "
              "track updates; every admitted task kept its deadline.\n");
  return 0;
}
