// Ablation A2: urgency inversion (Eq. 12).
//
// Deadline-monotonic scheduling has alpha = 1; a random fixed-priority
// policy over a uniform deadline range [Dmin, Dmax] has alpha = Dmin/Dmax,
// shrinking the feasible region. This bench compares both policies (each
// admitted against its own correct region) and also shows what happens if
// random priorities are dishonestly admitted against the alpha = 1 region
// (misses appear — the alpha correction is load-bearing).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/experiment.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/math.h"
#include "util/table.h"
#include "workload/pipeline_workload.h"

namespace {

using namespace frap;

// Random-priority run with an arbitrary alpha in the admission region
// (alpha_override = 0 means "the correct one", Dmin/Dmax).
pipeline::ExperimentResult run_random(double load, double alpha_override,
                                      std::uint64_t seed) {
  const auto wl = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, 100.0);

  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);
  runtime.set_priority_policy(
      [&gen](const core::TaskSpec&) { return gen.aux_rng().uniform01(); });
  const double alpha =
      alpha_override > 0
          ? alpha_override
          : util::safe_div(wl.deadline_min(), wl.deadline_max());
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::with_alpha(2, alpha));

  const Duration sim_end = 120.0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::function<void()> arrivals = [&] {
    const Time t = sim.now() + gen.next_interarrival();
    if (t > sim_end) return;
    sim.at(t, [&] {
      ++offered;
      const auto spec = gen.next_task();
      if (controller.try_admit(spec).admitted) {
        ++admitted;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      arrivals();
    });
  };
  arrivals();
  sim.run();

  pipeline::ExperimentResult r;
  r.stage_utilization = runtime.stage_utilizations(10.0, sim_end);
  for (double u : r.stage_utilization) r.avg_stage_utilization += u;
  r.avg_stage_utilization /= 2.0;
  r.offered = offered;
  r.admitted = admitted;
  r.completed = runtime.completed();
  r.acceptance_ratio =
      offered ? static_cast<double>(admitted) / static_cast<double>(offered)
              : 0.0;
  r.miss_ratio = runtime.misses().ratio();
  return r;
}

pipeline::ExperimentResult run_dm(double load) {
  pipeline::ExperimentConfig cfg;
  cfg.workload = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, 100.0);
  cfg.seed = 6000;
  cfg.sim_duration = 120.0;
  cfg.warmup = 10.0;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Ablation A2: urgency-inversion parameter alpha (Eq. 12)\n");
  std::printf(
      "(two-stage pipeline; random fixed priorities vs deadline-monotonic; "
      "deadline spread 0.5 -> alpha = Dmin/Dmax = 1/3)\n\n");

  util::Table table({"load %", "DM util", "rand util (correct a)",
                     "rand miss (correct a)", "rand miss (a=1, WRONG)"});
  for (int load_pct = 80; load_pct <= 200; load_pct += 40) {
    const double load = load_pct / 100.0;
    const auto dm = run_dm(load);
    const auto rnd = run_random(load, 0.0, 42);
    const auto wrong = run_random(load, 1.0, 42);
    table.add_row({std::to_string(load_pct),
                   util::Table::fmt(dm.avg_stage_utilization, 3),
                   util::Table::fmt(rnd.avg_stage_utilization, 3),
                   util::Table::fmt(rnd.miss_ratio, 4),
                   util::Table::fmt(wrong.miss_ratio, 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: DM admits the most; random priorities with the "
      "alpha-corrected region stay at miss = 0 but lower utilization; "
      "pretending alpha = 1 for random priorities produces misses.\n");
  return 0;
}
