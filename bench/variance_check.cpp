// Seed-to-seed variability of the headline reproduction numbers.
//
// Every figure bench uses one fixed seed per cell; this bench quantifies
// how much the key Fig. 4 cells move across 10 independent seeds, so the
// paper-vs-measured comparisons in EXPERIMENTS.md can be read with error
// bars. Expected shape: sub-1% standard deviation on utilization at this
// simulation length, and a miss ratio that is identically zero in every
// replication (a guarantee, not an average).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/replication.h"
#include "util/table.h"

namespace {

using namespace frap;

}  // namespace

int main() {
  std::printf("Seed-to-seed variability (10 replications per cell)\n\n");

  util::Table table({"N", "load %", "util mean", "util sd", "accept mean",
                     "accept sd", "max miss over seeds"});
  for (std::size_t stages : {2u, 5u}) {
    for (int load_pct : {100, 160}) {
      pipeline::ExperimentConfig cfg;
      cfg.workload = workload::PipelineWorkloadConfig::balanced(
          stages, 10 * kMilli, load_pct / 100.0, 100.0);
      cfg.sim_duration = 100.0;
      cfg.warmup = 10.0;
      const auto rep = pipeline::run_replicated(cfg, 100, 10);
      double max_miss = 0;
      for (const auto& r : rep.runs) {
        max_miss = std::max(max_miss, r.miss_ratio);
      }
      table.add_row(
          {std::to_string(stages), std::to_string(load_pct),
           util::Table::fmt(rep.avg_stage_utilization.mean(), 4),
           util::Table::fmt(
               std::sqrt(rep.avg_stage_utilization.variance()), 4),
           util::Table::fmt(rep.acceptance_ratio.mean(), 4),
           util::Table::fmt(std::sqrt(rep.acceptance_ratio.variance()), 4),
           util::Table::fmt(max_miss, 4)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: tight spreads (sd << mean) and a zero miss "
      "column — the zero-miss property holds per seed, not on average.\n");
  return 0;
}
