// Ablation A4: critical sections, PCP blocking, and Eq. 15.
//
// Half of every subtask's demand is a critical section on a shared
// per-stage lock, scheduled under the priority ceiling protocol. Task
// resolution is LOW (deadlines only ~4x total compute) so blocking is a
// material fraction of the deadline. Admission declares a per-stage
// normalized blocking bound beta and enforces it: arrivals whose own
// critical section would exceed beta * D are rejected outright, so the
// declared beta honestly bounds B_ij/D_i over all admitted tasks, and the
// region test uses Eq. 15's bound alpha (1 - sum beta_j). The ablation
// also runs the same workload against the independent-task region
// (beta = 0) to show the cost/soundness difference.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/pipeline_workload.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

struct BlockingResult {
  double util = 0;
  double accept = 0;
  double miss = 0;
  std::uint64_t completed = 0;
  std::uint64_t preemptions = 0;
};

constexpr double kCriticalFraction = 0.5;

BlockingResult run_blocking(double load, double declared_beta,
                            bool account_blocking, std::uint64_t seed) {
  auto wl = workload::PipelineWorkloadConfig::balanced(2, 10 * kMilli, load,
                                                       /*resolution=*/10.0);

  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);

  const auto region =
      account_blocking
          ? core::FeasibleRegion::with_blocking(
                1.0, std::vector<double>{declared_beta, declared_beta})
          : core::FeasibleRegion::deadline_monotonic(2);
  core::AdmissionController controller(sim, tracker, region);

  const Duration sim_end = 200.0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;

  workload::schedule_renewal(
      sim, sim_end, [&] { return gen.next_interarrival(); }, [&](Time) {
      ++offered;
      auto spec = gen.next_task();
      bool beta_ok = true;
      for (auto& stage : spec.stages) {
        const Duration crit = stage.compute * kCriticalFraction;
        if (crit > declared_beta * spec.deadline) beta_ok = false;
        stage.segments = {
            sched::Segment{stage.compute - crit, sched::kNoLock},
            sched::Segment{crit, 0}};
      }
      // Screening keeps the declared beta honest for BOTH variants.
      if (beta_ok && controller.try_admit(spec).admitted) {
        ++admitted;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      });
  sim.run();

  BlockingResult r;
  const auto u = runtime.stage_utilizations(10.0, sim_end);
  r.util = (u[0] + u[1]) / 2.0;
  r.accept = offered ? static_cast<double>(admitted) /
                           static_cast<double>(offered)
                     : 0.0;
  r.miss = runtime.misses().ratio();
  r.completed = runtime.completed();
  r.preemptions =
      runtime.stage(0).preemptions() + runtime.stage(1).preemptions();
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation A4: PCP critical sections and the Eq. 15 region\n");
  std::printf(
      "(two-stage pipeline, resolution 10, half of every subtask inside a\n"
      " per-stage PCP critical section)\n\n");

  util::Table table({"beta/stage", "load %", "util (Eq.15)", "miss (Eq.15)",
                     "accept (Eq.15)", "util (beta=0)",
                     "miss (beta=0, WRONG)"});
  for (double beta : {0.05, 0.10}) {
    for (int load_pct : {100, 160}) {
      const double load = load_pct / 100.0;
      const auto honest = run_blocking(load, beta, true, 11);
      const auto wrong = run_blocking(load, beta, false, 11);
      table.add_row(
          {util::Table::fmt(beta, 2), std::to_string(load_pct),
           util::Table::fmt(honest.util, 3), util::Table::fmt(honest.miss, 4),
           util::Table::fmt(honest.accept, 3),
           util::Table::fmt(wrong.util, 3),
           util::Table::fmt(wrong.miss, 4)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: the Eq. 15 region keeps miss = 0 under PCP "
      "blocking at the cost of a smaller region (lower acceptance); the "
      "beta = 0 region admits more and risks (rare) blocking-induced "
      "misses.\n");
  return 0;
}
