// Robustness bench: the guarantee is distribution-free.
//
// The feasible-region argument never uses the arrival or service
// distributions — synthetic utilization tracks actual arrivals, whatever
// their law. This bench hammers the admission controller with traffic far
// outside the Sec. 4 setup:
//   * MMPP arrivals (correlated 8:1 bursts) instead of Poisson;
//   * bounded-Pareto computation times (heavy tail, alpha = 1.3) instead
//     of exponential;
//   * both at once.
// Expected shape: zero misses in EVERY cell; what varies is utilization
// and acceptance (burstiness costs acceptance, heavy tails cost a little
// utilization at equal offered load).
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/bursty.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

enum class Arrivals { kPoisson, kMmpp };
enum class Service { kExponential, kPareto };

struct Cell {
  double util = 0;
  double accept = 0;
  double miss = 0;
  std::uint64_t completed = 0;
};

Cell run(Arrivals arrivals, Service service, double load,
         std::uint64_t seed) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));

  util::Rng rng(seed);
  const Duration mean_c = 10 * kMilli;
  const double target_rate = load / mean_c;

  // Arrival process.
  std::unique_ptr<workload::MmppArrivalProcess> mmpp;
  if (arrivals == Arrivals::kMmpp) {
    workload::MmppArrivalProcess::Config mc;
    mc.rate_quiet = target_rate * 0.5;
    mc.rate_burst = target_rate * 4.0;
    mc.mean_quiet_time = 0.6;
    mc.mean_burst_time = 0.1;
    // average = (0.5*0.6 + 4*0.1)/0.7 = 1.0 * target_rate: matched load.
    mmpp = std::make_unique<workload::MmppArrivalProcess>(mc, seed ^ 0xb);
  }
  auto next_gap = [&]() -> Duration {
    if (mmpp) return mmpp->next_interarrival();
    return rng.exponential(1.0 / target_rate);
  };

  // Service times, matched to mean_c.
  workload::BoundedParetoSampler pareto(0.8 * kMilli, 400 * kMilli, 1.3);
  const double pareto_scale = mean_c / pareto.mean();
  auto next_compute = [&]() -> Duration {
    if (service == Service::kPareto) return pareto.sample(rng) * pareto_scale;
    return rng.exponential(mean_c);
  };

  const Duration mean_deadline = 100.0 * 2 * mean_c;  // resolution 100
  const Duration sim_end = 120.0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t next_id = 1;

  workload::schedule_renewal(
      sim, sim_end, [&] { return next_gap(); }, [&](Time) {
      ++offered;
      core::TaskSpec spec;
      spec.id = next_id++;
      spec.deadline = rng.uniform(0.5 * mean_deadline, 1.5 * mean_deadline);
      spec.stages.resize(2);
      spec.stages[0].compute = next_compute();
      spec.stages[1].compute = next_compute();
      if (controller.try_admit(spec).admitted) {
        ++admitted;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      });
  sim.run();

  Cell c;
  const auto u = runtime.stage_utilizations(10.0, sim_end);
  c.util = (u[0] + u[1]) / 2;
  c.accept = offered ? static_cast<double>(admitted) /
                           static_cast<double>(offered)
                     : 0;
  c.miss = runtime.misses().ratio();
  c.completed = runtime.completed();
  return c;
}

const char* name(Arrivals a) {
  return a == Arrivals::kPoisson ? "Poisson" : "MMPP 8:1";
}
const char* name(Service s) {
  return s == Service::kExponential ? "Exp" : "Pareto 1.3";
}

}  // namespace

int main() {
  std::printf("Robustness: the region guarantee is distribution-free\n");
  std::printf("(two-stage pipeline, resolution 100, exact admission)\n\n");

  util::Table table({"arrivals", "service", "load %", "util", "accept",
                     "miss"});
  for (auto arrivals : {Arrivals::kPoisson, Arrivals::kMmpp}) {
    for (auto service : {Service::kExponential, Service::kPareto}) {
      for (int load_pct : {100, 160}) {
        const auto c =
            run(arrivals, service, load_pct / 100.0, 17);
        table.add_row({name(arrivals), name(service),
                       std::to_string(load_pct), util::Table::fmt(c.util, 3),
                       util::Table::fmt(c.accept, 3),
                       util::Table::fmt(c.miss, 4)});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: miss = 0 in every cell regardless of burstiness "
      "or tail weight; burstiness lowers acceptance at equal average "
      "load.\n");
  return 0;
}
