// Extension bench: learned (adaptive) alpha vs a priori alpha.
//
// With random fixed priorities the exact urgency-inversion parameter is
// alpha = Dmin/Dmax over the task set, but an operator rarely knows the
// deadline range in advance. The adaptive controller starts at alpha = 1
// and ratchets down as inversions are actually admitted. Compared here
// against (a) the exact a-priori alpha and (b) the dishonest alpha = 1
// static region, on identical arrivals.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/adaptive_alpha.h"
#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "util/math.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/pipeline_workload.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

struct Result {
  double util = 0;
  double accept = 0;
  double miss = 0;
  double final_alpha = 1.0;
};

enum class Mode { kAdaptive, kStaticExact, kStaticOne };

Result run(double load, Mode mode, std::uint64_t seed) {
  const auto wl = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, 100.0);
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);

  // Fixed random priorities, assigned per task by the workload's aux rng.
  auto priorities =
      std::make_shared<std::unordered_map<std::uint64_t, double>>();
  runtime.set_priority_policy(
      [priorities](const core::TaskSpec& s) { return priorities->at(s.id); });

  std::optional<core::AdaptiveAlphaAdmissionController> adaptive;
  std::optional<core::AdmissionController> fixed;
  if (mode == Mode::kAdaptive) {
    adaptive.emplace(sim, tracker);
  } else {
    const double alpha =
        mode == Mode::kStaticExact
            ? util::safe_div(wl.deadline_min(), wl.deadline_max())
            : 1.0;
    fixed.emplace(sim, tracker, core::FeasibleRegion::with_alpha(2, alpha));
  }

  const Duration sim_end = 120.0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  workload::schedule_renewal(
      sim, sim_end, [&] { return gen.next_interarrival(); }, [&](Time) {
      ++offered;
      const auto spec = gen.next_task();
      const double prio = gen.aux_rng().uniform01();
      bool ok = false;
      if (adaptive.has_value()) {
        ok = adaptive->try_admit(spec, prio).admitted;
      } else {
        ok = fixed->try_admit(spec).admitted;
      }
      if (ok) {
        (*priorities)[spec.id] = prio;
        ++admitted;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      });
  sim.run();

  Result r;
  const auto u = runtime.stage_utilizations(10.0, sim_end);
  r.util = (u[0] + u[1]) / 2;
  r.accept = offered ? static_cast<double>(admitted) /
                           static_cast<double>(offered)
                     : 0;
  r.miss = runtime.misses().ratio();
  if (adaptive.has_value()) r.final_alpha = adaptive->alpha();
  return r;
}

}  // namespace

int main() {
  std::printf("Extension: adaptive (learned) alpha for unknown policies\n");
  std::printf("(random fixed priorities; exact a-priori alpha = Dmin/Dmax "
              "= 1/3)\n\n");

  util::Table table({"load %", "adaptive util", "adaptive miss",
                     "learned alpha", "exact-a util", "exact-a miss",
                     "a=1 miss (WRONG)"});
  for (int load_pct : {100, 160, 200}) {
    const double load = load_pct / 100.0;
    const auto ad = run(load, Mode::kAdaptive, 31);
    const auto ex = run(load, Mode::kStaticExact, 31);
    const auto wrong = run(load, Mode::kStaticOne, 31);
    table.add_row({std::to_string(load_pct), util::Table::fmt(ad.util, 3),
                   util::Table::fmt(ad.miss, 4),
                   util::Table::fmt(ad.final_alpha, 3),
                   util::Table::fmt(ex.util, 3),
                   util::Table::fmt(ex.miss, 4),
                   util::Table::fmt(wrong.miss, 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: the learned alpha converges toward (but never "
      "below what the admitted history justifies vs) the a-priori 1/3; "
      "both keep miss = 0 while the static alpha = 1 region shows "
      "misses.\n");
  return 0;
}
