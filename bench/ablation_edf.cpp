// Extension bench: EDF stages under the aperiodic region (beyond the paper).
//
// The paper's analysis covers FIXED-priority policies: a task's priority
// must not depend on its arrival time, which excludes EDF (priority =
// absolute deadline A_i + D_i). The framework can still EXECUTE EDF — each
// job's priority value is fixed once the task arrives — so this bench asks
// the empirical question the paper leaves open: if admission uses the DM
// region (alpha = 1), does EDF scheduling keep the zero-miss guarantee in
// practice? Since EDF dominates DM on a single resource, one expects (and
// we observe) no misses, with the same admission decisions by construction
// (the admission test does not depend on the executing policy).
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/experiment.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/pipeline_workload.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

struct EdfResult {
  double util = 0;
  double accept = 0;
  double miss = 0;
  double mean_response = 0;
};

EdfResult run(double load, bool edf, std::uint64_t seed) {
  const auto wl = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, 100.0);
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));

  if (edf) {
    // EDF: priority value = absolute deadline at admission time. Captured
    // per task in a map the policy closure reads; the value is constant
    // across the task's stages (the runtime queries once per task anyway).
    auto deadlines = std::make_shared<
        std::unordered_map<std::uint64_t, double>>();
    runtime.set_priority_policy(
        [deadlines](const core::TaskSpec& spec) {
          return deadlines->at(spec.id);
        });
    const Duration sim_end = 120.0;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
  workload::schedule_renewal(
      sim, sim_end, [&] { return gen.next_interarrival(); }, [&](Time) {
        ++offered;
        const auto spec = gen.next_task();
        if (controller.try_admit(spec).admitted) {
          ++admitted;
          (*deadlines)[spec.id] = sim.now() + spec.deadline;
          runtime.start_task(spec, sim.now() + spec.deadline);
        }
      });
    sim.run();
    EdfResult r;
    const auto u = runtime.stage_utilizations(10.0, sim_end);
    r.util = (u[0] + u[1]) / 2;
    r.accept = offered ? static_cast<double>(admitted) /
                             static_cast<double>(offered)
                       : 0;
    r.miss = runtime.misses().ratio();
    r.mean_response = runtime.response_times().mean();
    return r;
  }

  pipeline::ExperimentConfig cfg;
  cfg.workload = wl;
  cfg.seed = seed;
  cfg.sim_duration = 120.0;
  cfg.warmup = 10.0;
  const auto res = pipeline::run_experiment(cfg);
  EdfResult r;
  r.util = res.avg_stage_utilization;
  r.accept = res.acceptance_ratio;
  r.miss = res.miss_ratio;
  r.mean_response = res.mean_response;
  return r;
}

}  // namespace

int main() {
  std::printf("Extension: EDF stage scheduling under the DM region\n");
  std::printf("(identical arrival streams and admission decisions; only "
              "the executing policy differs)\n\n");

  util::Table table({"load %", "DM util", "EDF util", "DM miss", "EDF miss",
                     "DM mean resp (ms)", "EDF mean resp (ms)"});
  for (int load_pct : {80, 120, 160, 200}) {
    const double load = load_pct / 100.0;
    const auto dm = run(load, false, 97);
    const auto edf = run(load, true, 97);
    table.add_row({std::to_string(load_pct), util::Table::fmt(dm.util, 3),
                   util::Table::fmt(edf.util, 3),
                   util::Table::fmt(dm.miss, 4),
                   util::Table::fmt(edf.miss, 4),
                   util::Table::fmt(dm.mean_response / kMilli, 1),
                   util::Table::fmt(edf.mean_response / kMilli, 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: identical utilization/acceptance (same admission "
      "trace); EDF also keeps miss = 0 and typically lowers mean "
      "response.\n");
  return 0;
}
