// Empirical per-policy feasible regions (ISSUE 8 tentpole bench).
//
// The paper's Thm 1 region is derived for FIXED-priority scheduling; the
// scheduling-policy API (sched/policy.h) also executes EDF, LLF, and global
// EDF on pooled stages. This bench measures what each policy actually
// sustains, with the admission controller switched OFF: a sweep over
// offered load finds the ZERO-MISS FRONTIER — the largest load the policy
// schedules without a single deadline miss — which is the empirical
// counterpart of the analytical admitted-load bound. Expected shape:
//
//   * EDF's frontier >= DM's (EDF is optimal on one processor),
//   * LLF tracks EDF (same deadlines, laxity re-evaluated at events),
//   * gEDF (2 processors/stage) sits far above all uniprocessor policies,
//   * with admission ON (the DM region, alpha = 1) every policy is
//     miss-free at any offered load — the region is sound for EDF/LLF
//     because they dominate DM on each stage.
//
// A second section reports the priority-assignment search (sched/assignment)
// on the pinned two-class fixture from priority_assignment_test: the DM
// bound is 2/3 while the searched order reaches 0.8991 — the admitted-load
// gain the search buys. All numbers land in BENCH_sched.json (summary +
// per-run counters) for the CI bench-smoke trajectory.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "pipeline/experiment.h"
#include "sched/assignment/priority_assignment.h"
#include "util/table.h"
#include "workload/pipeline_workload.h"

namespace {

using namespace frap;

struct PolicyUnderTest {
  std::string name;
  pipeline::PriorityMode mode;
  std::size_t procs = 1;
};

const std::vector<PolicyUnderTest>& policies() {
  static const std::vector<PolicyUnderTest> p = {
      {"dm", pipeline::PriorityMode::kDeadlineMonotonic, 1},
      {"edf", pipeline::PriorityMode::kEdf, 1},
      {"llf", pipeline::PriorityMode::kLlf, 1},
      {"gedf", pipeline::PriorityMode::kEdf, 2},
  };
  return p;
}

pipeline::ExperimentResult run_once(const PolicyUnderTest& p, double load,
                                    pipeline::AdmissionMode admission,
                                    std::uint64_t seed) {
  pipeline::ExperimentConfig cfg;
  cfg.workload =
      workload::PipelineWorkloadConfig::balanced(2, 10 * kMilli, load, 100.0);
  cfg.seed = seed;
  cfg.sim_duration = 40.0;
  cfg.warmup = 5.0;
  cfg.admission = admission;
  cfg.priority = p.mode;
  cfg.procs_per_stage = p.procs;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Per-policy empirical admission regions (admission OFF: the\n"
              "zero-miss frontier is what the executor alone sustains)\n\n");

  // Offered-load grid, in fractions of ONE processor's stage capacity. The
  // pooled gEDF configuration has twice the capacity, so its grid extends
  // past 2.
  std::vector<double> grid;
  for (double load = 0.5; load <= 2.61; load += 0.15) grid.push_back(load);

  std::vector<benchjson::Result> results;
  std::map<std::string, double> summary;

  util::Table table({"policy", "procs/stage", "zero-miss frontier (load)",
                     "miss @ load 2.0", "mean resp @ 0.8 (ms)"});
  for (const auto& p : policies()) {
    double frontier = 0;
    double miss_at_2 = 0;
    double resp_at_08 = 0;
    bool past_frontier = false;
    for (double load : grid) {
      const auto r = run_once(p, load, pipeline::AdmissionMode::kNone, 97);
      // The frontier is the last grid point BEFORE the first miss: one
      // sustained miss-free run above a missing one would be noise, not a
      // region.
      if (!past_frontier) {
        // frap-lint: allow(float-equality) -- miss_ratio is a ratio of
        // integer counters; "zero misses" is exactly 0.0 by construction.
        if (r.miss_ratio == 0.0) {
          frontier = load;
        } else {
          past_frontier = true;
        }
      }
      if (load > 1.99 && load < 2.01) miss_at_2 = r.miss_ratio;
      if (load > 0.79 && load < 0.81) resp_at_08 = r.mean_response;

      benchjson::Result br;
      br.name = "region/" + p.name + "/load:" + util::Table::fmt(load, 2);
      br.iterations = 1;
      br.time_unit = "s";
      br.counters["offered_load"] = load;
      br.counters["miss_ratio"] = r.miss_ratio;
      br.counters["completed"] = static_cast<double>(r.completed);
      br.counters["mean_response_ms"] = r.mean_response / kMilli;
      br.counters["bottleneck_utilization"] = r.bottleneck_utilization;
      results.push_back(std::move(br));
    }
    table.add_row({p.name, std::to_string(p.procs),
                   util::Table::fmt(frontier, 2),
                   util::Table::fmt(miss_at_2, 4),
                   util::Table::fmt(resp_at_08 / kMilli, 2)});
    summary["frontier_" + p.name] = frontier;
    summary["miss_at_load2_" + p.name] = miss_at_2;
  }
  table.print(std::cout);

  // Admission ON: the DM region must keep every policy miss-free even at
  // twice the capacity of the pipeline.
  std::printf("\nAdmission ON (exact DM region), offered load 2.0:\n");
  util::Table guard({"policy", "acceptance", "miss"});
  bool all_sound = true;
  for (const auto& p : policies()) {
    const auto r = run_once(p, 2.0, pipeline::AdmissionMode::kExact, 97);
    guard.add_row({p.name, util::Table::fmt(r.acceptance_ratio, 3),
                   util::Table::fmt(r.miss_ratio, 4)});
    summary["admitted_miss_" + p.name] = r.miss_ratio;
    // frap-lint: allow(float-equality) -- zero misses is exactly 0.0 (ratio
    // of integer counters).
    all_sound = all_sound && r.miss_ratio == 0.0;
  }
  guard.print(std::cout);

  // Priority-assignment search on the pinned two-class fixture: class A
  // (D = 90 ms, 0.1 ms critical section) and class B (D = 100 ms, 30 ms
  // critical section on the same stage). DM charges B's section against A's
  // deadline; the search promotes B and nearly erases the blocking term.
  namespace pa = sched::assignment;
  const std::vector<pa::TaskClass> fixture = {
      {0.09, {0.0001}},
      {0.1, {0.03}},
  };
  const pa::Assignment dm_assign = pa::deadline_monotonic(fixture);
  const pa::Assignment best = pa::optimal(fixture);
  std::printf("\nPriority-assignment search (pinned 2-class fixture):\n"
              "  DM order:       bound %.4f (alpha %.3f)\n"
              "  searched order: bound %.4f (alpha %.3f)  -> +%.1f%% "
              "admitted load\n",
              dm_assign.eval.bound, dm_assign.eval.alpha, best.eval.bound,
              best.eval.alpha,
              100.0 * (best.eval.bound - dm_assign.eval.bound) /
                  dm_assign.eval.bound);
  summary["assignment_dm_bound"] = dm_assign.eval.bound;
  summary["assignment_optimal_bound"] = best.eval.bound;
  summary["assignment_gain"] = best.eval.bound - dm_assign.eval.bound;

  const std::string path = benchjson::json_path("BENCH_sched.json");
  if (!benchjson::write_json(path, results, summary)) {
    std::fprintf(stderr, "FAILED to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());

  if (!all_sound) {
    std::fprintf(stderr,
                 "FAIL: admission-on run missed deadlines under some "
                 "policy\n");
    return 1;
  }
  return 0;
}
