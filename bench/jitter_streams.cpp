// Motivation bench (Sec. 1): periodic streams with release jitter.
//
// The introduction argues that heavy jitter collapses the minimum
// interarrival time of "periodic" tasks, breaking sporadic-model analysis,
// while the aperiodic region still applies per invocation. We run K
// periodic streams through a two-stage pipeline at ~85% nominal load,
// certified schedulable for J = 0 by the static utilization argument, and
// sweep the per-invocation release jitter J:
//
//   * static baseline: every invocation enters the pipeline unchecked
//     (the sporadic certificate is trusted) — misses appear once J >= P;
//   * per-invocation admission (this paper): jittered bursts are clipped
//     at the admission controller; admitted invocations never miss.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace frap;

struct JitterResult {
  double miss = 0;
  double accept = 1.0;
  double util = 0;
};

constexpr std::size_t kStreams = 19;
constexpr Duration kPeriod = 100 * kMilli;
constexpr Duration kCompute = 5 * kMilli;  // per stage: 19*5/100 = 95% load

JitterResult run(double jitter_periods, bool admission_control,
                 std::uint64_t seed) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));

  const Duration sim_end = 120.0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;

  util::Rng rng(seed);
  for (std::size_t s = 0; s < kStreams; ++s) {
    // Streams run phase-staggered (offset s*P/K) so the J = 0 case is the
    // benign spread-out periodic schedule. Jitter is BIMODAL — each
    // invocation is either on time or delayed by the full J — which is the
    // pathology the introduction describes: a delayed invocation followed
    // by an on-time one collapses the interarrival gap (to zero at J = P).
    // Releases are not monotone, so all invocations are scheduled up front.
    const Time phase =
        static_cast<double>(s) * kPeriod / static_cast<double>(kStreams);
    const Duration jitter = jitter_periods * kPeriod;
    for (std::size_t k = 0;
         static_cast<double>(k) * kPeriod <= sim_end; ++k) {
      const Duration delay =
          (jitter > 0 && rng.bernoulli(0.5)) ? jitter : 0.0;
      const Time release =
          phase + static_cast<double>(k) * kPeriod + delay;
      if (release > sim_end) continue;
      core::TaskSpec spec;
      spec.id = (s + 1) * 10'000'000ULL + k;
      spec.deadline = kPeriod;
      spec.stages.resize(2);
      spec.stages[0].compute = kCompute;
      spec.stages[1].compute = kCompute;
      sim.at(release, [&, spec] {
        ++offered;
        bool start = true;
        if (admission_control) {
          start = controller.try_admit(spec).admitted;
        }
        if (start) {
          ++admitted;
          runtime.start_task(spec, sim.now() + spec.deadline);
        }
      });
    }
  }
  sim.run();

  JitterResult r;
  r.miss = runtime.misses().ratio();
  r.accept = offered ? static_cast<double>(admitted) /
                           static_cast<double>(offered)
                     : 0;
  const auto u = runtime.stage_utilizations(10.0, sim_end);
  r.util = (u[0] + u[1]) / 2;
  return r;
}

}  // namespace

int main() {
  std::printf("Motivation: periodic streams under release jitter\n");
  std::printf("(17 streams, P = D = 100 ms, 5 ms/stage x 2 stages = 85%% "
              "nominal load — statically schedulable at J = 0)\n\n");

  util::Table table({"jitter (periods)", "static miss", "admitted miss",
                     "accept %", "util (admitted)"});
  for (double j : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto baseline = run(j, false, 42);
    const auto ours = run(j, true, 42);
    table.add_row({util::Table::fmt(j, 2),
                   util::Table::fmt(baseline.miss, 4),
                   util::Table::fmt(ours.miss, 4),
                   util::Table::fmt(100 * ours.accept, 1),
                   util::Table::fmt(ours.util, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: the static certificate holds only at low jitter "
      "(misses grow with J); per-invocation admission clips bursts "
      "(acceptance dips below 100%%) and keeps admitted misses at 0.\n");
  return 0;
}
