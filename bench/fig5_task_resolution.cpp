// Reproduces Figure 5: "Effect of Task Resolution".
//
// Average real per-stage utilization after admission control as a function
// of task resolution (mean end-to-end deadline / mean total computation
// time) for a two-stage pipeline, one curve per total load. Paper shape:
// the higher the resolution the higher the fraction of accepted tasks —
// it is easier to construct unschedulable workloads from large tasks.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/experiment.h"
#include "util/math.h"
#include "util/table.h"

namespace {

using namespace frap;

pipeline::ExperimentResult run_cell(double load, double resolution) {
  pipeline::ExperimentConfig cfg;
  cfg.workload = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, resolution);
  cfg.seed = 2000;
  cfg.sim_duration = 150.0;
  cfg.warmup = 15.0;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Figure 5: Effect of Task Resolution (two-stage pipeline)\n");
  std::printf("avg real stage utilization vs task resolution, per load\n\n");

  const double loads[] = {0.9, 1.2, 1.8};
  const double resolutions[] = {2, 5, 10, 20, 50, 100, 200, 500, 1000};

  util::Table table({"resolution", "load=90%", "load=120%", "load=180%",
                     "accept(120%)"});
  for (double res : resolutions) {
    std::vector<std::string> row{util::Table::fmt(res, 0)};
    double accept_mid = 0;
    for (double load : loads) {
      const auto r = run_cell(load, res);
      row.push_back(util::Table::fmt(r.avg_stage_utilization, 3));
      if (util::almost_equal(load, 1.2)) accept_mid = r.acceptance_ratio;
    }
    row.push_back(util::Table::fmt(accept_mid, 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: utilization (and acceptance) increase with "
      "resolution and saturate; higher loads saturate higher.\n");
  return 0;
}
