// Failure injection: a stage degrades at run time (TSCE damage response).
//
// The analysis measures demands in EXECUTION time, so when a stage's
// processor slows (damage, thermal throttling), every admitted task's
// effective demand silently grows and the certificate is void. Timeline:
// stage 2 of a two-stage pipeline drops to 60% speed at t = 40 s.
//
//   * naive:      the admission controller keeps using the nominal
//                 computation times — misses appear after the damage;
//   * remediated: at detection (t = 40 s) admission switches to
//                 approximate mode with the mean demand of the damaged
//                 stage scaled by 1/speed — guarantees are restored at
//                 the cost of acceptance.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/arrival_scheduler.h"
#include "workload/pipeline_workload.h"

namespace {

using namespace frap;

constexpr Duration kDamageAt = 40.0;
constexpr Duration kSimEnd = 120.0;
constexpr double kDegradedSpeed = 0.6;

struct Phase {
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
};

struct DegradationResult {
  Phase before;
  Phase after;
  double accept_after = 0;
};

DegradationResult run(bool remediate, std::uint64_t seed) {
  const auto wl = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, /*load=*/1.0, /*resolution=*/60.0);
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));

  DegradationResult result;
  runtime.set_on_task_complete(
      [&](const core::TaskSpec&, Duration, bool missed) {
        Phase& p = sim.now() < kDamageAt ? result.before : result.after;
        ++p.completed;
        if (missed) ++p.missed;
      });

  // The damage event, plus (optionally) the operator's remediation: scale
  // the admission-side demand of stage 2 by 1/speed via approximate mode.
  sim.at(kDamageAt, [&] {
    runtime.stage(1).set_speed(kDegradedSpeed);
    if (remediate) {
      controller.set_approximate_means(
          {wl.mean_compute[0], wl.mean_compute[1] / kDegradedSpeed});
    }
  });

  std::uint64_t offered_after = 0;
  std::uint64_t admitted_after = 0;
  workload::schedule_renewal(
      sim, kSimEnd, [&] { return gen.next_interarrival(); }, [&](Time) {
        auto spec = gen.next_task();
        const bool after = sim.now() >= kDamageAt;
        if (after) ++offered_after;
        if (controller.try_admit(spec).admitted) {
          if (after) ++admitted_after;
          // Execution uses the task's nominal demands; the slowed server
          // stretches them in wall time automatically.
          runtime.start_task(spec, sim.now() + spec.deadline);
        }
      });
  sim.run();

  result.accept_after =
      offered_after ? static_cast<double>(admitted_after) /
                          static_cast<double>(offered_after)
                    : 0;
  return result;
}

std::string miss_str(const Phase& p) {
  if (p.completed == 0) return "-";
  return util::Table::fmt(
      static_cast<double>(p.missed) / static_cast<double>(p.completed), 4);
}

}  // namespace

int main() {
  std::printf("Failure injection: stage 2 degrades to %.0f%% speed at "
              "t = %.0f s\n\n",
              100 * kDegradedSpeed, kDamageAt);

  util::Table table({"strategy", "miss before damage", "miss after damage",
                     "accept after"});
  const auto naive = run(false, 5);
  const auto fixed = run(true, 5);
  table.add_row({"naive (stale demands)", miss_str(naive.before),
                 miss_str(naive.after),
                 util::Table::fmt(naive.accept_after, 3)});
  table.add_row({"remediated (scaled means)", miss_str(fixed.before),
                 miss_str(fixed.after),
                 util::Table::fmt(fixed.accept_after, 3)});
  table.print(std::cout);
  std::printf(
      "\nexpected shape: zero misses before the damage in both rows; the "
      "naive controller misses afterwards (its certificate assumes the "
      "nominal speed), while scaling the admission-side demand restores "
      "miss-free operation at reduced acceptance.\n");
  return 0;
}
