// Dynamic reconfiguration (Sec. 5): reservation mode changes at run time.
//
// The TSCE must "respond to damage or failure events or ... change mission
// functionality". In region terms a mode change is a new reservation
// vector: entering self-defense mode raises the critical floor (capacity
// held for Weapon Detection/Targeting), squeezing the share available to
// dynamic tracking load — and the admission controller adapts instantly
// because the region test always reads the current floors.
//
// Timeline: cruise mode (low reservation) -> battle mode at t = 30 s
// (full TSCE reservation, critical streams actually firing) -> back to
// cruise at t = 60 s. A constant 800-track load runs throughout. Reported
// per 10 s window: stage-1 utilization and tracking acceptance. Expected
// shape: acceptance dips during battle mode and recovers after; zero
// deadline misses everywhere.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/arrival_scheduler.h"
#include "workload/tsce.h"

namespace {

using namespace frap;
namespace tsce = workload::tsce;

}  // namespace

int main() {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, tsce::kNumStages);
  pipeline::PipelineRuntime runtime(sim, tsce::kNumStages, &tracker);
  core::AdmissionController admission(
      sim, tracker,
      core::FeasibleRegion::deadline_monotonic(tsce::kNumStages));
  core::WaitingAdmissionController waiting(sim, admission,
                                           tsce::kTrackingPatience);
  waiting.attach();

  const Duration sim_end = 90.0;
  const std::size_t kWindows = 9;
  struct Window {
    std::uint64_t arrivals = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };
  std::vector<Window> windows(kWindows);
  std::uint64_t misses = 0;

  auto window_of = [&](Time t) {
    auto w = static_cast<std::size_t>(t / 10.0);
    return w >= kWindows ? kWindows - 1 : w;
  };

  waiting.set_decision_callback(
      [&](const core::TaskSpec& spec, const core::AdmissionDecision& d) {
        auto& w = windows[window_of(d.arrival)];
        if (!d.admitted) {
          ++w.rejected;
          return;
        }
        ++w.admitted;
        runtime.start_task(spec, d.arrival + spec.deadline);
      });
  runtime.set_on_task_complete(
      [&](const core::TaskSpec&, Duration, bool missed) {
        if (missed) ++misses;
      });

  // Mode schedule: cruise keeps only the UAV-video share reserved; battle
  // reserves the full TSCE critical floor.
  const std::vector<double> cruise{0.1, 0.02, 0.1};
  const auto battle = tsce::reserved_utilizations();  // (0.4, 0.25, 0.1)
  auto apply_mode = [&](const std::vector<double>& floors) {
    for (std::size_t j = 0; j < floors.size(); ++j) {
      tracker.set_reservation(j, floors[j]);
    }
  };
  apply_mode(cruise);
  sim.at(30.0, [&] { apply_mode(battle); });
  sim.at(60.0, [&] { apply_mode(cruise); });

  // During battle mode the critical streams actually run (pre-certified,
  // against the raised floor): Weapon Targeting at 50 ms, UAV video at
  // 500 ms, sporadic Weapon Detection at ~1/s.
  {
    auto start_periodic = [&](workload::PeriodicStreamConfig cfg,
                              std::uint64_t id_base) {
      for (std::size_t k = 0;; ++k) {
        const Time release = 30.0 + static_cast<double>(k) * cfg.period;
        if (release >= 60.0) break;
        core::TaskSpec spec;
        spec.id = id_base + k;
        spec.deadline = cfg.deadline;
        spec.importance = cfg.importance;
        spec.stages = cfg.stages;
        sim.at(release, [&runtime, &sim, spec] {
          runtime.start_task(spec, sim.now() + spec.deadline);
        });
      }
    };
    start_periodic(tsce::weapon_targeting_stream(), 800'000'000ULL);
    start_periodic(tsce::uav_video_stream(), 850'000'000ULL);
    util::Rng threat_rng(97);
    Time t = 30.0;
    std::uint64_t id = 900'000'000ULL;
    while (true) {
      t += threat_rng.exponential(1.0);
      if (t >= 60.0) break;
      const auto spec = tsce::weapon_detection_task(id++);
      sim.at(t, [&runtime, &sim, spec] {
        runtime.start_task(spec, sim.now() + spec.deadline);
      });
    }
  }

  // Constant 800-track periodic load, phase-staggered.
  util::Rng rng(41);
  for (std::size_t i = 0; i < 800; ++i) {
    const auto cfg = tsce::target_tracking_stream(i);
    const Time phase = rng.uniform(0.0, cfg.period);
    const std::uint64_t base = (i + 1) * 1'000'000ULL;
    auto stages =
        std::make_shared<std::vector<core::StageDemand>>(cfg.stages);
    workload::schedule_periodic(
        sim, cfg.period, phase, sim_end,
        [&sim, &waiting, &windows, &window_of, stages, base](
            Time, std::uint64_t k) {
          core::TaskSpec spec;
          spec.id = base + k;
          spec.deadline = 1.0;
          spec.importance = tsce::kImportanceTracking;
          spec.stages = *stages;
          ++windows[window_of(sim.now())].arrivals;
          waiting.submit(spec);
        });
  }
  sim.run();

  std::printf("Mode change: reservation reconfiguration at run time\n");
  std::printf("(800 tracks; battle mode [30 s, 60 s) runs the critical set against the full "
              "TSCE critical floor)\n\n");
  util::Table table({"window (s)", "mode", "stage1 util",
                     "tracks accepted %", "rejected"});
  for (std::size_t w = 0; w < kWindows; ++w) {
    const Time from = static_cast<double>(w) * 10.0;
    const Time to = from + 10.0;
    const bool battle_mode = from >= 30.0 && from < 60.0;
    const double u1 = runtime.stage(0).meter().utilization(from, to);
    const auto& win = windows[w];
    table.add_row(
        {util::Table::fmt(from, 0) + "-" + util::Table::fmt(to, 0),
         battle_mode ? "battle" : "cruise", util::Table::fmt(u1, 3),
         util::Table::fmt(win.arrivals
                              ? 100.0 * static_cast<double>(win.admitted) /
                                    static_cast<double>(win.arrivals)
                              : 0.0,
                          1),
         std::to_string(win.rejected)});
  }
  table.print(std::cout);
  std::printf("\ndeadline misses across the whole run: %llu (must be 0)\n",
              static_cast<unsigned long long>(misses));
  std::printf(
      "\nexpected shape: acceptance near 100%% in cruise windows, dipping "
      "in battle mode as the raised floor squeezes the dynamic share, and "
      "recovering instantly after the mode reverts.\n");
  return 0;
}
