// Reproduces Table 1 / Sec. 5: the Total Ship Computing Environment
// mission-execution scenario.
//
// Step 1 (certification): the three critical tasks (Weapon Detection,
// Weapon Targeting, UAV Video) reserve synthetic utilization (0.4, 0.25,
// 0.1); Eq. 13 on those reservations gives ~0.93 < 1, so the critical set
// is schedulable end-to-end.
//
// Step 2 (capacity): Target Tracking tasks (1 ms of stage-1 work per track,
// P = D = 1 s) are admitted dynamically on top via the waiting admission
// controller (200 ms patience, as in the paper). The number of tracks is
// increased until rejections appear. Paper result: ~550 concurrent tracks,
// stage 1 the bottleneck at ~95% utilization, thanks to the idle-time
// synthetic-utilization reset.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/certification.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/arrival_scheduler.h"
#include "workload/tsce.h"

namespace {

using namespace frap;
namespace tsce = workload::tsce;

struct TsceResult {
  double stage1_util = 0;
  double stage2_util = 0;
  double stage3_util = 0;
  std::uint64_t track_arrivals = 0;
  std::uint64_t track_rejections = 0;
  std::uint64_t track_misses = 0;
  std::uint64_t critical_misses = 0;
  std::uint64_t completed = 0;
};

TsceResult run_tsce(std::size_t num_tracks, Duration sim_end,
                    std::uint64_t seed) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, tsce::kNumStages);
  const auto reserved = tsce::reserved_utilizations();
  for (std::size_t j = 0; j < reserved.size(); ++j) {
    tracker.set_reservation(j, reserved[j]);
  }

  pipeline::PipelineRuntime runtime(sim, tsce::kNumStages, &tracker);
  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(tsce::kNumStages));
  core::WaitingAdmissionController waiting(sim, admission,
                                           tsce::kTrackingPatience);
  waiting.attach();

  TsceResult result;
  runtime.set_on_task_complete(
      [&](const core::TaskSpec& spec, Duration, bool missed) {
        ++result.completed;
        if (!missed) return;
        if (spec.importance >= tsce::kImportanceUavVideo) {
          ++result.critical_misses;
        } else {
          ++result.track_misses;
        }
      });

  waiting.set_decision_callback(
      [&](const core::TaskSpec& spec, const core::AdmissionDecision& d) {
        if (!d.admitted) {
          ++result.track_rejections;
          return;
        }
        runtime.start_task(spec, d.arrival + spec.deadline);
      });

  // --- critical streams: pre-certified, run against the reservation ---
  std::uint64_t next_id = 1;
  auto start_periodic = [&](const workload::PeriodicStreamConfig& cfg) {
    const std::uint64_t id_base = next_id;
    next_id += 10'000'000;
    workload::schedule_periodic(
        sim, cfg.period, 0.0, sim_end,
        [&runtime, &sim, cfg, id_base](Time, std::uint64_t k) {
          core::TaskSpec spec;
          spec.id = id_base + k;
          spec.deadline = cfg.deadline;
          spec.importance = cfg.importance;
          spec.stages = cfg.stages;
          runtime.start_task(spec, sim.now() + spec.deadline);
        });
  };
  start_periodic(tsce::weapon_targeting_stream());
  start_periodic(tsce::uav_video_stream());

  // Weapon Detection: urgent aperiodic threats, Poisson at ~1/s.
  {
    auto rng = std::make_shared<util::Rng>(seed ^ 0xabcdef);
    auto id_counter = std::make_shared<std::uint64_t>(900'000'000ULL);
    workload::schedule_renewal(
        sim, sim_end, [rng] { return rng->exponential(1.0); },
        [&sim, &runtime, id_counter](Time) {
          const auto spec = tsce::weapon_detection_task((*id_counter)++);
          runtime.start_task(spec, sim.now() + spec.deadline);
        });
  }

  // --- dynamic target-tracking load, admitted at run time ---
  {
    util::Rng phase_rng(seed);
    std::uint64_t track_id_base = 100'000'000ULL;
    for (std::size_t i = 0; i < num_tracks; ++i) {
      const auto cfg = tsce::target_tracking_stream(i);
      const Time phase = phase_rng.uniform(0.0, cfg.period);
      const std::uint64_t base = track_id_base;
      track_id_base += 1'000'000ULL;
      auto stages =
          std::make_shared<std::vector<core::StageDemand>>(cfg.stages);
      const Duration deadline = cfg.deadline;
      const double importance = cfg.importance;
      workload::schedule_periodic(
          sim, cfg.period, phase, sim_end,
          [&waiting, &result, stages, base, deadline, importance](
              Time, std::uint64_t k) {
            core::TaskSpec spec;
            spec.id = base + k;
            spec.deadline = deadline;
            spec.importance = importance;
            spec.stages = *stages;
            ++result.track_arrivals;
            waiting.submit(spec);
          });
    }
  }

  sim.run();

  const Time measure_from = 2.0;
  result.stage1_util = runtime.stage(0).meter().utilization(measure_from,
                                                            sim_end);
  result.stage2_util = runtime.stage(1).meter().utilization(measure_from,
                                                            sim_end);
  result.stage3_util = runtime.stage(2).meter().utilization(measure_from,
                                                            sim_end);
  return result;
}

}  // namespace

int main() {
  std::printf("Table 1 / Sec. 5: TSCE Mission Execution System\n\n");

  // ----- certification (the paper's first question) -----
  const auto reserved = tsce::reserved_utilizations();
  std::printf("reserved synthetic utilization: U1=%.2f U2=%.2f U3=%.2f\n",
              reserved[0], reserved[1], reserved[2]);
  std::printf("Eq. 13 LHS at the reservation: %.4f (paper: 0.93)\n",
              tsce::certification_lhs());
  std::printf("critical set schedulable: %s\n\n",
              core::FeasibleRegion::admits_lhs(tsce::certification_lhs(), 1.0)
                  ? "YES"
                  : "NO");

  // Pre-certification matrix: every combination of the critical tasks
  // (Sec. 5's "pre-certification of different combinations ... of task
  // arrival scenarios").
  {
    using Rule = core::ReservationPlanner::StageRule;
    core::ScenarioCertifier certifier(
        core::FeasibleRegion::deadline_monotonic(tsce::kNumStages),
        {Rule::kSum, Rule::kSum, Rule::kMax});
    certifier.add({"WeaponDetection", {0.2, 0.13, 0.06}});
    certifier.add({"WeaponTargeting", {0.1, 0.1, 0.1}});
    certifier.add({"UavVideo", {0.1, 0.02, 0.1}});

    std::printf("scenario pre-certification (all combinations):\n\n");
    util::Table cert({"scenario", "Eq.13 LHS", "certified"});
    for (const auto& v : certifier.certify_all_subsets()) {
      std::string names = "{";
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i > 0) names += ", ";
        names += certifier.entry(v.members[i]).name;
      }
      names += "}";
      cert.add_row({names, util::Table::fmt(v.lhs, 3),
                    v.certified ? "YES" : "no"});
    }
    cert.print(std::cout);
    std::printf("\n");
  }

  // ----- dynamic track capacity (the paper's second question) -----
  std::printf(
      "Target Tracking tasks admitted dynamically (200 ms admission "
      "wait):\n\n");
  // The paper raises the track count "until rejections were observed" and
  // reports ~550. With Poisson-bursty urgent aperiodics (Weapon Detection)
  // an isolated 200 ms-wait expiry can occur at any load, so we use a
  // rejection ratio below 1% of arrivals as "no observable rejections".
  util::Table table({"tracks", "stage1 util", "stage2 util", "stage3 util",
                     "reject %", "track misses", "critical misses"});
  std::size_t max_clean_tracks = 0;
  const Duration sim_end = 30.0;
  for (std::size_t tracks : {100u, 200u, 300u, 400u, 500u, 550u, 600u, 650u,
                             700u, 800u}) {
    const auto r = run_tsce(tracks, sim_end, 77);
    const double reject_ratio =
        r.track_arrivals == 0
            ? 0.0
            : static_cast<double>(r.track_rejections) /
                  static_cast<double>(r.track_arrivals);
    if (reject_ratio < 0.01 && tracks > max_clean_tracks) {
      max_clean_tracks = tracks;
    }
    table.add_row({std::to_string(tracks), util::Table::fmt(r.stage1_util, 3),
                   util::Table::fmt(r.stage2_util, 3),
                   util::Table::fmt(r.stage3_util, 3),
                   util::Table::fmt(100.0 * reject_ratio, 2),
                   std::to_string(r.track_misses),
                   std::to_string(r.critical_misses)});
  }
  table.print(std::cout);
  std::printf(
      "\nmax track count with <1%% rejections: %zu (paper: ~550; stage 1 "
      "the bottleneck, approaching saturation; zero deadline misses)\n",
      max_clean_tracks);
  return 0;
}
