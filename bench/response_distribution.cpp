// Response-time distribution under admission control.
//
// Beyond the binary miss/no-miss guarantee, operators care about the full
// latency distribution. This bench reports mean / p50 / p95 / p99 / max
// end-to-end response (normalized by the task's deadline) across loads,
// with and without admission control. Expected shape: with admission the
// normalized response never reaches 1.0 (no misses) and the tail is
// insensitive to overload (excess load is rejected, not queued); without
// admission the p99 blows past the deadline as load exceeds 1.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "util/math.h"
#include "core/synthetic_utilization.h"
#include "metrics/histogram.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/pipeline_workload.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

struct TailResult {
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

TailResult run(double load, bool admission_on, std::uint64_t seed) {
  const auto wl = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, 100.0);
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));

  // Histogram of response/deadline in [0, 3).
  metrics::Histogram hist(0.0, 3.0, 3000);
  double max_norm = 0;
  double sum_norm = 0;
  std::uint64_t count = 0;
  runtime.set_on_task_complete(
      [&](const core::TaskSpec& spec, Duration response, bool) {
        const double norm = util::safe_div(response, spec.deadline);
        hist.add(norm);
        max_norm = std::max(max_norm, norm);
        sum_norm += norm;
        ++count;
      });

  const Duration sim_end = 150.0;
  workload::schedule_renewal(
      sim, sim_end, [&] { return gen.next_interarrival(); }, [&](Time) {
      const auto spec = gen.next_task();
      const bool start =
          !admission_on || controller.try_admit(spec).admitted;
      if (start) runtime.start_task(spec, sim.now() + spec.deadline);
      });
  sim.run();

  TailResult r;
  r.mean = count ? sum_norm / static_cast<double>(count) : 0;
  r.p50 = hist.quantile(0.50);
  r.p95 = hist.quantile(0.95);
  r.p99 = hist.quantile(0.99);
  r.max = max_norm;
  return r;
}

}  // namespace

int main() {
  std::printf("End-to-end response distribution (response / deadline)\n");
  std::printf("(two-stage pipeline, resolution 100; values >= 1.0 are "
              "deadline misses)\n\n");

  util::Table table({"load %", "admission", "mean", "p50", "p95", "p99",
                     "max"});
  for (int load_pct : {80, 120, 160, 200}) {
    const double load = load_pct / 100.0;
    const auto on = run(load, true, 61);
    const auto off = run(load, false, 61);
    table.add_row({std::to_string(load_pct), "on",
                   util::Table::fmt(on.mean, 3), util::Table::fmt(on.p50, 3),
                   util::Table::fmt(on.p95, 3), util::Table::fmt(on.p99, 3),
                   util::Table::fmt(on.max, 3)});
    table.add_row({std::to_string(load_pct), "off",
                   util::Table::fmt(off.mean, 3),
                   util::Table::fmt(off.p50, 3), util::Table::fmt(off.p95, 3),
                   util::Table::fmt(off.p99, 3),
                   util::Table::fmt(off.max, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: with admission, max < 1.0 at every load and the "
      "tail saturates; without admission the tail crosses 1.0 (misses) "
      "once load exceeds capacity and grows unboundedly.\n");
  return 0;
}
