// Ablation/baseline A3: end-to-end feasible region vs per-stage deadline
// splitting.
//
// The introduction contrasts the paper's end-to-end analysis with the
// traditional approach of assigning intermediate per-stage deadlines
// (D_i / N per stage) and testing each stage independently with the
// single-resource aperiodic bound. Splitting is sound but conservative:
// the balanced per-stage cap is 0.586/N instead of f_inv(1/N) ~ 1/N.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/stage_delay.h"
#include "pipeline/experiment.h"
#include "util/table.h"

namespace {

using namespace frap;

pipeline::ExperimentResult run_cell(std::size_t stages, double load,
                                    pipeline::AdmissionMode mode) {
  pipeline::ExperimentConfig cfg;
  cfg.workload = workload::PipelineWorkloadConfig::balanced(
      stages, 10 * kMilli, load, 100.0);
  cfg.admission = mode;
  cfg.seed = 7000;
  cfg.sim_duration = 120.0;
  cfg.warmup = 10.0;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf(
      "Ablation A3: end-to-end region vs per-stage deadline splitting\n\n");

  std::printf("analytical balanced per-stage caps:\n");
  util::Table caps({"N", "end-to-end f_inv(1/N)", "split 0.586/N", "ratio"});
  for (std::size_t n : {2u, 3u, 5u}) {
    const double ours = core::balanced_stage_bound(n);
    const double split = core::uniprocessor_bound() / static_cast<double>(n);
    caps.add_row({std::to_string(n), util::Table::fmt(ours, 4),
                  util::Table::fmt(split, 4),
                  util::Table::fmt(ours / split, 3)});
  }
  caps.print(std::cout);

  std::printf("\nsimulated (exact admission in both modes):\n\n");
  util::Table table({"N", "load %", "util (region)", "util (split)",
                     "accept (region)", "accept (split)", "miss (split)"});
  for (std::size_t n : {2u, 5u}) {
    for (int load_pct : {100, 160}) {
      const double load = load_pct / 100.0;
      const auto ours =
          run_cell(n, load, pipeline::AdmissionMode::kExact);
      const auto split =
          run_cell(n, load, pipeline::AdmissionMode::kDeadlineSplit);
      table.add_row({std::to_string(n), std::to_string(load_pct),
                     util::Table::fmt(ours.avg_stage_utilization, 3),
                     util::Table::fmt(split.avg_stage_utilization, 3),
                     util::Table::fmt(ours.acceptance_ratio, 3),
                     util::Table::fmt(split.acceptance_ratio, 3),
                     util::Table::fmt(split.miss_ratio, 4)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: both sound; the end-to-end region admits more and "
      "achieves higher utilization, and the gap persists as N grows.\n");
  return 0;
}
