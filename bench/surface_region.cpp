// Traces the feasible-region bounding surface (Sec. 3, Eqs. 12/13).
//
// For N = 2 the boundary is the curve f(U1) + f(U2) = alpha; printed for
// deadline-monotonic (alpha = 1) and a random-priority policy (alpha = 0.5).
// Each axis intercept is the single-resource bound f_inv(alpha); the
// balanced point is f_inv(alpha/2) on both axes. Also prints the balanced
// per-stage cap f_inv(1/N) for deeper pipelines, showing N*cap -> 1 (the
// Sec. 3.1 argument that depth does not add pessimism).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/feasible_region.h"
#include "core/region_geometry.h"
#include "core/stage_delay.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace frap;

  std::printf("Feasible-region boundary surface, N = 2\n");
  std::printf("(largest U2 such that (U1, U2) remains feasible)\n\n");
  const auto dm = core::FeasibleRegion::deadline_monotonic(2);
  const auto rnd = core::FeasibleRegion::with_alpha(2, 0.5);

  util::Table surface({"U1", "U2 max (alpha=1, DM)", "U2 max (alpha=0.5)"});
  for (double u1 = 0.0; u1 <= 0.581; u1 += 0.03) {
    surface.add_row({util::Table::fmt(u1, 2),
                     util::Table::fmt(dm.boundary_u2(u1), 4),
                     util::Table::fmt(rnd.boundary_u2(u1), 4)});
  }
  surface.print(std::cout);

  std::printf("\nsingle-resource bound (axis intercept, alpha=1): %.6f "
              "(paper: 1/(1+sqrt(0.5)) ~= 0.5858)\n",
              core::uniprocessor_bound());

  std::printf("\nBalanced per-stage cap vs pipeline depth (alpha=1):\n\n");
  util::Table caps({"N", "per-stage cap f_inv(1/N)", "N x cap"});
  for (std::size_t n : {1u, 2u, 3u, 5u, 10u, 20u, 50u, 100u}) {
    const double cap = core::balanced_stage_bound(n);
    caps.add_row({std::to_string(n), util::Table::fmt(cap, 4),
                  util::Table::fmt(static_cast<double>(n) * cap, 4)});
  }
  caps.print(std::cout);
  std::printf(
      "\nexpected shape: N x cap increases toward 1 — the constraint does "
      "not tighten with pipeline depth (Sec. 3.1).\n");

  std::printf("\nRegion volume vs the per-stage deadline-splitting box "
              "(Monte Carlo, 400k samples):\n\n");
  util::Table volumes({"N", "region volume", "split box volume", "ratio"});
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(1000 + n);
    const double ours = core::region_volume_mc(
        core::FeasibleRegion::deadline_monotonic(n), 400000, rng);
    const double split = core::deadline_split_volume(n);
    volumes.add_row({std::to_string(n), util::Table::fmt(ours, 5),
                     util::Table::fmt(split, 5),
                     util::Table::fmt(ours / split, 2)});
  }
  volumes.print(std::cout);
  std::printf(
      "\nexpected shape: the end-to-end region's admissible volume "
      "dominates the splitting box, increasingly so with depth.\n");
  return 0;
}
