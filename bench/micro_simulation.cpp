// Microbenchmarks for the simulation substrate itself: event-queue
// throughput, preemptive stage-server scheduling cost, and end-to-end
// events/second for a full admission-controlled pipeline experiment.
// These numbers bound how much simulated time a study can afford.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "pipeline/experiment.h"
#include "sched/stage_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace {

using namespace frap;

// Schedule-and-drain cost of the event queue at various backlog sizes.
void EventQueueThroughput(benchmark::State& state) {
  const auto backlog = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<Time> times(backlog);
  for (auto& t : times) t = rng.uniform(0.0, 1000.0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (Time t : times) {
      sim.at(t, [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(backlog));
}
BENCHMARK(EventQueueThroughput)->RangeMultiplier(8)->Range(64, 32768);

// Preemption-heavy stage-server scheduling: random-priority jobs arriving
// into a busy server.
void StageServerScheduling(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  struct Spec {
    Time arrival;
    double prio;
    Duration len;
  };
  std::vector<Spec> specs(jobs);
  Time t = 0;
  for (auto& s : specs) {
    t += rng.exponential(0.8);
    s = Spec{t, rng.uniform01(), rng.exponential(1.0)};
  }
  for (auto _ : state) {
    sim::Simulator sim;
    sched::StageServer server(sim);
    std::vector<std::unique_ptr<sched::Job>> storage;
    storage.reserve(jobs);
    std::uint64_t id = 1;
    for (const auto& s : specs) {
      storage.push_back(std::make_unique<sched::Job>(
          id++, s.prio,
          std::vector<sched::Segment>{sched::Segment{s.len, sched::kNoLock}}));
      sched::Job* j = storage.back().get();
      sim.at(s.arrival, [&server, j] { server.submit(*j); });
    }
    sim.run();
    benchmark::DoNotOptimize(server.preemptions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(StageServerScheduling)->RangeMultiplier(4)->Range(256, 16384);

// Full experiment: simulated events per wall second for the Fig. 4 cell
// (N stages, load 1.2, resolution 100, 20 simulated seconds).
void FullExperiment(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    pipeline::ExperimentConfig cfg;
    cfg.workload = workload::PipelineWorkloadConfig::balanced(
        stages, 10 * kMilli, 1.2, 100.0);
    cfg.seed = 1;
    cfg.sim_duration = 20.0;
    cfg.warmup = 2.0;
    const auto r = pipeline::run_experiment(cfg);
    events += r.events;
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(FullExperiment)->Arg(1)->Arg(2)->Arg(5)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
