// Microbenchmark for the paper's complexity claim (Sec. 1): the admission
// test is O(N) in the number of pipeline stages and INDEPENDENT of the
// number of tasks already in the system.
//
// Uses google-benchmark. Sweeps:
//   * AdmissionVsStages/N: cost vs pipeline length at a fixed task
//     population;
//   * AdmissionVsTasks/T: cost vs live-task count at fixed N=4 — flat;
//   * AdmissionReferencePath / AdmissionFastPath / AdmissionBatchPath:
//     attempts/sec (items_per_second) of the seed full evaluation vs the
//     incremental allocation-free fast path vs the shared-snapshot batch
//     path, on the acceptance-criteria scenario — a 5-stage pipeline with
//     sparse tasks (one touched stage) rejected right at the boundary.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/reference_admitter.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sim/simulator.h"

namespace {

using namespace frap;

core::TaskSpec tiny_task(std::uint64_t id, std::size_t stages) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(stages);
  for (auto& s : spec.stages) s.compute = 1e-6;
  return spec;
}

// A task touching only stage 0 of a `stages`-long pipeline.
core::TaskSpec sparse_task(std::uint64_t id, std::size_t stages,
                           double compute) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(stages);
  spec.stages[0].compute = compute;
  return spec;
}

// Prefills every stage to ~94% of the balanced cap so that a sparse probe
// of contribution 0.1 is rejected AT the boundary: the test runs in full
// (no early saturation exit) but never commits, keeping the measured state
// constant across iterations.
void prefill_near_boundary(core::AdmissionController& controller,
                           std::size_t stages) {
  const double cap = core::balanced_stage_bound(stages);
  core::TaskSpec fill;
  fill.id = 1;
  fill.deadline = 1.0;
  fill.stages.resize(stages);
  for (auto& s : fill.stages) s.compute = 0.94 * cap;
  const auto d = controller.try_admit(fill);
  if (!d.admitted) std::abort();  // scenario must start inside the region
}

void AdmissionVsStages(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, stages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(stages));
  // Populate with 1000 live tasks.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    (void)controller.try_admit(tiny_task(i + 1, stages));
  }
  // The probe saturates a stage so it is always REJECTED: the full O(N)
  // region evaluation runs but nothing is committed, keeping the measured
  // state constant across iterations.
  auto probe = tiny_task(0, stages);
  probe.stages[0].compute = 2.0;
  std::uint64_t id = 1'000'000;
  for (auto _ : state) {
    auto spec = probe;
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(AdmissionVsStages)->RangeMultiplier(2)->Range(1, 64)->Complexity();

void AdmissionVsTasks(benchmark::State& state) {
  const std::size_t stages = 4;
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, stages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(stages));
  const auto live = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < live; ++i) {
    (void)controller.try_admit(tiny_task(i + 1, stages));
  }
  auto probe = tiny_task(0, stages);
  probe.stages[0].compute = 2.0;  // always rejected; state stays constant
  std::uint64_t id = 100'000'000;
  for (auto _ : state) {
    auto spec = probe;
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec));
  }
  // The point: time here must NOT grow with `live`.
}
BENCHMARK(AdmissionVsTasks)->RangeMultiplier(10)->Range(10, 100000);

// ------------------------------------------- fast-path acceptance sweep ---
// Acceptance criterion: the fast path must sustain >= 5x the attempts/sec
// of the reference path on a 5-stage pipeline with sparse tasks. Compare
// the items_per_second counters of the three benchmarks below.

constexpr std::size_t kSweepStages = 5;
constexpr double kProbeCompute = 0.1;  // rejected at the boundary, u < 1

void AdmissionReferencePath(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  prefill_near_boundary(controller, kSweepStages);
  frap::testing::ReferenceAdmitter reference(controller);
  const auto probe = sparse_task(2, kSweepStages, kProbeCompute);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference.try_admit(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(AdmissionReferencePath);

void AdmissionFastPath(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  prefill_near_boundary(controller, kSweepStages);
  const auto probe = sparse_task(2, kSweepStages, kProbeCompute);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.try_admit(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(AdmissionFastPath);

void AdmissionBatchPath(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  prefill_near_boundary(controller, kSweepStages);
  core::BatchAdmissionController batch(controller);
  std::vector<core::TaskSpec> specs;
  for (std::size_t i = 0; i < burst; ++i) {
    specs.push_back(sparse_task(2 + i, kSweepStages, kProbeCompute));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.try_admit_burst(specs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(burst));
}
BENCHMARK(AdmissionBatchPath)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
