// Microbenchmark for the paper's complexity claim (Sec. 1): the admission
// test is O(N) in the number of pipeline stages and INDEPENDENT of the
// number of tasks already in the system.
//
// Uses google-benchmark. Sweeps:
//   * AdmissionVsStages/N: cost vs pipeline length at a fixed task
//     population;
//   * AdmissionVsTasks/T: cost vs live-task count at fixed N=4 — flat;
//   * AdmissionReferencePath / AdmissionFastPath / AdmissionBatchPath:
//     attempts/sec (items_per_second) of the seed full evaluation vs the
//     incremental allocation-free fast path vs the shared-snapshot batch
//     path, on the acceptance-criteria scenario — a 5-stage pipeline with
//     sparse tasks (one touched stage) rejected right at the boundary;
//   * AdmissionChurnSlotMapStore / AdmissionChurnReferenceStore: the ISSUE 5
//     storage A/B — full admit -> commit -> expire steady-state cycles at
//     10k live tasks, slot-map/timer-wheel store vs the preserved PR-1
//     store (unordered_map records + closure expiries) behind the identical
//     incremental predicate. The issue targeted >= 3x attempts/sec; the
//     measured ratio saturates near 1.1x because the PR-1 cycle was never
//     allocation-dominated — docs/perf_internals.md ("Measuring it") has
//     the decomposition.
//   * AdmissionShedChurn{SlotMapStore,ReferenceStore}: same population but
//     tasks leave by explicit removal mid-deadline — eager wheel-cell
//     cancellation vs the PR-1 dead heap closures parked to the deadline.
//
// Writes BENCH_admission.json (override the path with FRAP_BENCH_JSON) with
// attempts/sec per variant, the live-task count, and the churn speedup.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/admission.h"
#include "core/stage_delay_batch.h"
#include "core/feasible_region.h"
#include "core/reference_admitter.h"
#include "core/reference_tracker.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/math.h"

namespace {

using namespace frap;

core::TaskSpec tiny_task(std::uint64_t id, std::size_t stages) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(stages);
  for (auto& s : spec.stages) s.compute = 1e-6;
  return spec;
}

// A task touching only stage 0 of a `stages`-long pipeline.
core::TaskSpec sparse_task(std::uint64_t id, std::size_t stages,
                           double compute) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(stages);
  spec.stages[0].compute = compute;
  return spec;
}

// Prefills every stage to ~94% of the balanced cap so that a sparse probe
// of contribution 0.1 is rejected AT the boundary: the test runs in full
// (no early saturation exit) but never commits, keeping the measured state
// constant across iterations.
void prefill_near_boundary(core::AdmissionController& controller,
                           std::size_t stages) {
  const double cap = core::balanced_stage_bound(stages);
  core::TaskSpec fill;
  fill.id = 1;
  fill.deadline = 1.0;
  fill.stages.resize(stages);
  for (auto& s : fill.stages) s.compute = 0.94 * cap;
  const auto d = controller.try_admit(fill);
  if (!d.admitted) std::abort();  // scenario must start inside the region
}

void AdmissionVsStages(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, stages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(stages));
  // Populate with 1000 live tasks.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    (void)controller.try_admit(tiny_task(i + 1, stages));
  }
  // The probe saturates a stage so it is always REJECTED: the full O(N)
  // region evaluation runs but nothing is committed, keeping the measured
  // state constant across iterations.
  auto probe = tiny_task(0, stages);
  probe.stages[0].compute = 2.0;
  std::uint64_t id = 1'000'000;
  for (auto _ : state) {
    auto spec = probe;
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(AdmissionVsStages)->RangeMultiplier(2)->Range(1, 64)->Complexity();

void AdmissionVsTasks(benchmark::State& state) {
  const std::size_t stages = 4;
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, stages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(stages));
  const auto live = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < live; ++i) {
    (void)controller.try_admit(tiny_task(i + 1, stages));
  }
  auto probe = tiny_task(0, stages);
  probe.stages[0].compute = 2.0;  // always rejected; state stays constant
  std::uint64_t id = 100'000'000;
  for (auto _ : state) {
    auto spec = probe;
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec));
  }
  // The point: time here must NOT grow with `live`.
}
BENCHMARK(AdmissionVsTasks)->RangeMultiplier(10)->Range(10, 100000);

// ------------------------------------------- fast-path acceptance sweep ---
// Acceptance criterion: the fast path must sustain >= 5x the attempts/sec
// of the reference path on a 5-stage pipeline with sparse tasks. Compare
// the items_per_second counters of the three benchmarks below.

constexpr std::size_t kSweepStages = 5;
constexpr double kProbeCompute = 0.1;  // rejected at the boundary, u < 1

void AdmissionReferencePath(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  prefill_near_boundary(controller, kSweepStages);
  frap::testing::ReferenceAdmitter reference(controller);
  const auto probe = sparse_task(2, kSweepStages, kProbeCompute);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference.try_admit(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(AdmissionReferencePath);

void AdmissionFastPath(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  prefill_near_boundary(controller, kSweepStages);
  const auto probe = sparse_task(2, kSweepStages, kProbeCompute);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.try_admit(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(AdmissionFastPath);

void AdmissionBatchPath(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  prefill_near_boundary(controller, kSweepStages);
  core::BatchAdmissionController batch(controller);
  std::vector<core::TaskSpec> specs;
  for (std::size_t i = 0; i < burst; ++i) {
    specs.push_back(sparse_task(2 + i, kSweepStages, kProbeCompute));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.try_admit_burst(specs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(burst));
}
BENCHMARK(AdmissionBatchPath)->Arg(16)->Arg(64)->Arg(256);

// Same burst scenario with the AVX2 kernel forced off: the A/B for the
// vectorized f(U) evaluation. Decisions are bit-identical by contract
// (tests/simd_batch_test.cpp); only the throughput may differ.
void AdmissionBatchPathScalar(benchmark::State& state) {
  const bool prev = core::set_batch_simd_enabled(false);
  const auto burst = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  prefill_near_boundary(controller, kSweepStages);
  core::BatchAdmissionController batch(controller);
  std::vector<core::TaskSpec> specs;
  for (std::size_t i = 0; i < burst; ++i) {
    specs.push_back(sparse_task(2 + i, kSweepStages, kProbeCompute));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.try_admit_burst(specs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(burst));
  (void)core::set_batch_simd_enabled(prev);
}
BENCHMARK(AdmissionBatchPathScalar)->Arg(64)->Arg(256);

// Raw f(U) evaluation kernel A/B over a dense lane array — the shape the
// AVX2 kernel is built for. The burst benches above probe with sparse
// one-touched-stage tasks, where the density gate in try_admit_burst
// (core/admission.cpp) correctly routes AROUND the kernel: evaluating
// every lane of a 5-stage pipeline to use one touched result loses to a
// single scalar call no matter how fast the vector division is. This pair
// isolates the kernel itself on 4096 dense lanes.
constexpr std::size_t kKernelLanes = 4096;

std::vector<double> kernel_lanes() {
  std::vector<double> u(kKernelLanes);
  frap::util::Rng rng(20260808);
  for (auto& x : u) x = rng.uniform(0.0, 0.97);
  return u;
}

void StageDelayKernelBatch(benchmark::State& state) {
  const bool prev = core::set_batch_simd_enabled(true);
  const std::vector<double> u = kernel_lanes();
  std::vector<double> out(u.size());
  for (auto _ : state) {
    core::batch_stage_delay_factors(u.data(), out.data(), u.size());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(u.size()));
  (void)core::set_batch_simd_enabled(prev);
}
BENCHMARK(StageDelayKernelBatch);

void StageDelayKernelScalar(benchmark::State& state) {
  const bool prev = core::set_batch_simd_enabled(false);
  const std::vector<double> u = kernel_lanes();
  std::vector<double> out(u.size());
  for (auto _ : state) {
    core::batch_stage_delay_factors(u.data(), out.data(), u.size());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(u.size()));
  (void)core::set_batch_simd_enabled(prev);
}
BENCHMARK(StageDelayKernelScalar);

// ------------------------------------------- storage churn A/B (ISSUE 5) --
// The full per-admission work at capacity: test, commit into the tracker,
// schedule the expiry, and retire ~one expired task per arrival. 10k tasks
// stay live throughout (deadline 1 s, spacing 100 us). The two variants
// run the IDENTICAL incremental predicate; only the storage and expiry
// machinery differ — slot map + timer wheel vs the PR-1 unordered_map +
// heap-closure store preserved in ReferenceUtilizationTracker.

constexpr Duration kChurnSpacing = 1e-4;
constexpr std::uint64_t kChurnWarmup = 20000;  // 2x the steady population
// Cycles per benchmark iteration: amortizes the harness loop overhead
// (~100 ns/iteration on this class of machine, comparable to the cycle
// under test) so items_per_second reflects the cycle itself.
constexpr std::uint64_t kChurnBatch = 16;

// Sparse churn task: three touched stages, contributions tiny enough that
// every arrival is admitted (the live count is set by spacing alone).
core::TaskSpec churn_task(std::uint64_t id) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(kSweepStages);
  spec.stages[0].compute = 2e-8;
  spec.stages[2].compute = 1e-8;
  spec.stages[4].compute = 3e-8;
  return spec;
}

void AdmissionChurnSlotMapStore(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  core::TaskSpec spec = churn_task(0);
  Time t = 0;
  std::uint64_t id = 1;
  for (std::uint64_t i = 0; i < kChurnWarmup; ++i) {
    t += kChurnSpacing;
    sim.run_until(t);
    spec.id = id++;
    if (!controller.try_admit(spec, t).admitted) std::abort();
  }
  for (auto _ : state) {
    for (std::uint64_t b = 0; b < kChurnBatch; ++b) {
      t += kChurnSpacing;
      sim.run_until(t);
      spec.id = id++;
      benchmark::DoNotOptimize(controller.try_admit(spec, t));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChurnBatch));
  state.counters["live_tasks"] = static_cast<double>(tracker.live_tasks());
}
BENCHMARK(AdmissionChurnSlotMapStore);

// The PR-1 fast path against the PR-1 store: the same incremental
// delta-LHS test (through the shared FeasibleRegion::admits_lhs predicate)
// followed by the same commit, but every admit allocates the map node and
// record vectors and every expiry is a type-erased closure on the binary
// heap.
struct ReferenceChurn {
  sim::Simulator sim;
  frap::testing::ReferenceUtilizationTracker tracker{sim, kSweepStages};
  core::FeasibleRegion region =
      core::FeasibleRegion::deadline_monotonic(kSweepStages);
  std::vector<double> scratch = std::vector<double>(kSweepStages, 0.0);

  bool try_admit(const core::TaskSpec& spec, Time now) {
    const double inv_d = util::safe_inv(spec.deadline);
    double delta = 0;
    bool saturated = false;
    for (std::size_t j = 0; j < kSweepStages; ++j) {
      const double c = spec.stages[j].compute * inv_d;
      if (c <= 0) continue;
      const double u_new = tracker.utilization(j) + c;
      if (u_new >= 1.0) {
        saturated = true;
        break;
      }
      delta += core::stage_delay_factor(u_new) - tracker.stage_lhs_term(j);
    }
    const double lhs_with =
        saturated ? util::kInf : tracker.cached_lhs() + delta;
    if (!core::FeasibleRegion::admits_lhs(lhs_with, region.bound())) {
      return false;
    }
    for (std::size_t j = 0; j < kSweepStages; ++j) {
      scratch[j] = spec.stages[j].compute * inv_d;
    }
    tracker.add(spec.id, scratch, now + spec.deadline);
    return true;
  }
};

void AdmissionChurnReferenceStore(benchmark::State& state) {
  ReferenceChurn churn;
  core::TaskSpec spec = churn_task(0);
  Time t = 0;
  std::uint64_t id = 1;
  for (std::uint64_t i = 0; i < kChurnWarmup; ++i) {
    t += kChurnSpacing;
    churn.sim.run_until(t);
    spec.id = id++;
    if (!churn.try_admit(spec, t)) std::abort();
  }
  for (auto _ : state) {
    for (std::uint64_t b = 0; b < kChurnBatch; ++b) {
      t += kChurnSpacing;
      churn.sim.run_until(t);
      spec.id = id++;
      benchmark::DoNotOptimize(churn.try_admit(spec, t));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChurnBatch));
  state.counters["live_tasks"] =
      static_cast<double>(churn.tracker.live_tasks());
}
BENCHMARK(AdmissionChurnReferenceStore);

// ------------------------------------------- shed churn A/B (ISSUE 5a) ---
// Same steady-state population, but tasks leave by explicit removal (shed)
// after a 1 s dwell instead of by expiry — deadline 2 s, so the expiry
// timer is still pending at removal time. This is where the two designs
// diverge hardest: the slot-map store cancels the wheel timer eagerly and
// reclaims the cell on the spot, while the PR-1 store leaves the dead heap
// closure parked until its deadline tick, doubling the heap population and
// paying a dead pop per cycle.

constexpr std::uint64_t kShedLive = 10000;    // 1 s dwell / 100 us spacing
constexpr std::uint64_t kShedWarmup = 30000;  // past one full 2 s deadline

core::TaskSpec shed_task(std::uint64_t id) {
  core::TaskSpec spec = churn_task(id);
  spec.deadline = 2.0;  // removal at 1 s dwell always precedes expiry
  return spec;
}

void AdmissionShedChurnSlotMapStore(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kSweepStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kSweepStages));
  core::TaskSpec spec = shed_task(0);
  std::vector<std::uint64_t> ring(kShedLive, 0);
  Time t = 0;
  std::uint64_t id = 1;
  std::uint64_t cycle = 0;
  const auto one_cycle = [&] {
    t += kChurnSpacing;
    sim.run_until(t);
    const std::uint64_t slot = cycle % kShedLive;
    if (cycle >= kShedLive) tracker.remove_task(ring[slot]);
    ring[slot] = id;
    spec.id = id++;
    if (!controller.try_admit(spec, t).admitted) std::abort();
    ++cycle;
  };
  for (std::uint64_t i = 0; i < kShedWarmup; ++i) one_cycle();
  for (auto _ : state) {
    for (std::uint64_t b = 0; b < kChurnBatch; ++b) one_cycle();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChurnBatch));
  state.counters["live_tasks"] = static_cast<double>(tracker.live_tasks());
}
BENCHMARK(AdmissionShedChurnSlotMapStore);

void AdmissionShedChurnReferenceStore(benchmark::State& state) {
  ReferenceChurn churn;
  core::TaskSpec spec = shed_task(0);
  std::vector<std::uint64_t> ring(kShedLive, 0);
  Time t = 0;
  std::uint64_t id = 1;
  std::uint64_t cycle = 0;
  const auto one_cycle = [&] {
    t += kChurnSpacing;
    churn.sim.run_until(t);
    const std::uint64_t slot = cycle % kShedLive;
    if (cycle >= kShedLive) churn.tracker.remove_task(ring[slot]);
    ring[slot] = id;
    spec.id = id++;
    if (!churn.try_admit(spec, t)) std::abort();
    ++cycle;
  };
  for (std::uint64_t i = 0; i < kShedWarmup; ++i) one_cycle();
  for (auto _ : state) {
    for (std::uint64_t b = 0; b < kChurnBatch; ++b) one_cycle();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChurnBatch));
  state.counters["live_tasks"] =
      static_cast<double>(churn.tracker.live_tasks());
}
BENCHMARK(AdmissionShedChurnReferenceStore);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  frap::benchjson::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::map<std::string, double> summary;
  const auto rate = [&](const char* name) {
    return reporter.counter_of(name, "items_per_second");
  };
  summary["fast_path_attempts_per_sec"] = rate("AdmissionFastPath");
  summary["reference_path_attempts_per_sec"] = rate("AdmissionReferencePath");
  summary["churn_slotmap_attempts_per_sec"] =
      rate("AdmissionChurnSlotMapStore");
  summary["churn_reference_attempts_per_sec"] =
      rate("AdmissionChurnReferenceStore");
  summary["churn_live_tasks"] =
      reporter.counter_of("AdmissionChurnSlotMapStore", "live_tasks");
  const double ref_churn = summary["churn_reference_attempts_per_sec"];
  summary["churn_speedup"] =
      ref_churn > 0 ? summary["churn_slotmap_attempts_per_sec"] / ref_churn
                    : 0;
  summary["shed_slotmap_attempts_per_sec"] =
      rate("AdmissionShedChurnSlotMapStore");
  summary["shed_reference_attempts_per_sec"] =
      rate("AdmissionShedChurnReferenceStore");
  const double ref_shed = summary["shed_reference_attempts_per_sec"];
  summary["shed_speedup"] =
      ref_shed > 0 ? summary["shed_slotmap_attempts_per_sec"] / ref_shed : 0;
  summary["batch_simd_available"] =
      frap::core::batch_simd_available() ? 1.0 : 0.0;
  summary["batch_256_attempts_per_sec"] = rate("AdmissionBatchPath/256");
  summary["batch_256_scalar_attempts_per_sec"] =
      rate("AdmissionBatchPathScalar/256");
  const double scalar_256 = summary["batch_256_scalar_attempts_per_sec"];
  // ~1.0 by design: the sparse probes route around the kernel (density
  // gate); the kernel's own speedup is the f_kernel ratio below.
  summary["batch_simd_speedup"] =
      scalar_256 > 0 ? summary["batch_256_attempts_per_sec"] / scalar_256 : 0;
  summary["f_kernel_evals_per_sec"] = rate("StageDelayKernelBatch");
  summary["f_kernel_scalar_evals_per_sec"] = rate("StageDelayKernelScalar");
  const double scalar_kernel = summary["f_kernel_scalar_evals_per_sec"];
  summary["f_kernel_simd_speedup"] =
      scalar_kernel > 0 ? summary["f_kernel_evals_per_sec"] / scalar_kernel
                        : 0;
  const std::string path =
      frap::benchjson::json_path("BENCH_admission.json");
  if (!frap::benchjson::write_json(path, reporter.results(), summary)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
