// Microbenchmark for the paper's complexity claim (Sec. 1): the admission
// test is O(N) in the number of pipeline stages and INDEPENDENT of the
// number of tasks already in the system.
//
// Uses google-benchmark. Two sweeps:
//   * AdmissionTest/N: cost vs pipeline length at a fixed task population;
//   * AdmissionVsTasks/T: cost vs live-task count at fixed N=4 — flat.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sim/simulator.h"

namespace {

using namespace frap;

core::TaskSpec tiny_task(std::uint64_t id, std::size_t stages) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(stages);
  for (auto& s : spec.stages) s.compute = 1e-6;
  return spec;
}

void AdmissionVsStages(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, stages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(stages));
  // Populate with 1000 live tasks.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    controller.try_admit(tiny_task(i + 1, stages));
  }
  // The probe saturates a stage so it is always REJECTED: the full O(N)
  // region evaluation runs but nothing is committed, keeping the measured
  // state constant across iterations.
  auto probe = tiny_task(0, stages);
  probe.stages[0].compute = 2.0;
  std::uint64_t id = 1'000'000;
  for (auto _ : state) {
    auto spec = probe;
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(AdmissionVsStages)->RangeMultiplier(2)->Range(1, 64)->Complexity();

void AdmissionVsTasks(benchmark::State& state) {
  const std::size_t stages = 4;
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, stages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(stages));
  const auto live = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < live; ++i) {
    controller.try_admit(tiny_task(i + 1, stages));
  }
  auto probe = tiny_task(0, stages);
  probe.stages[0].compute = 2.0;  // always rejected; state stays constant
  std::uint64_t id = 100'000'000;
  for (auto _ : state) {
    auto spec = probe;
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec));
  }
  // The point: time here must NOT grow with `live`.
}
BENCHMARK(AdmissionVsTasks)->RangeMultiplier(10)->Range(10, 100000);

}  // namespace

BENCHMARK_MAIN();
