// Open-loop ingest throughput: the zero-copy wire decoder against the
// admission fast path it feeds (ISSUE 10).
//
// The scenario is the production shape from docs/wire_format.md: producers
// pre-encode arrival frames (4096 records, 5 stages, sparse 2-stage
// demands, arrivals 100 us apart), consumers decode in place and drive the
// admission machinery. Stages:
//   * IngestDecodeOnly        — validated-cursor walk, every field loaded;
//                               the pure decoder ceiling.
//   * IngestDecodeAssemble    — + TaskSpec materialization through the
//                               IngestSession scratch (0 allocs steady
//                               state; pinned by alloc_steady_state_test).
//   * IngestSingleThreadFastPath — the PR-1 boundary-reject probe (~no
//                               commit), for continuity with
//                               BENCH_mt_admission.json.
//   * IngestSteadyAdmitBaseline — in-process steady-state admit + commit +
//                               expire churn: the production-relevant
//                               single-thread admission rate the decoder
//                               must outrun. THE RATIO DENOMINATOR.
//   * IngestDecodeReplay      — wire -> assemble -> controller, same churn:
//                               what ingest adds on top of the baseline.
//   * IngestDecodeAdmitBatch  — wire -> burst admit (SIMD batch f(U)).
//   * IngestShardedDecodeAdmit/threads:T — T independent open-loop lanes,
//                               each decoding its own pre-encoded frame
//                               into its home shard (ids are congruent to
//                               the lane index mod 8, so lanes never share
//                               a shard: the shard-parallel scaling claim).
//   * IngestE2eLatency        — per-record decode+assemble+admit latency
//                               percentiles (p50/p95/p99 ns) from
//                               metrics::Histogram.
//
// Committed floor (enforced here, exit 1): decode-only records/sec >= 10x
// the steady-state admit baseline. The ratio against the ~13 ns boundary
// probe is also reported (decode_over_probe_ratio) but NOT enforced — that
// probe does no commit and is not what a frame feeds in production; see
// docs/wire_format.md for the honest comparison.
// Writes BENCH_ingest.json at the repo root (override with
// FRAP_BENCH_JSON); a failed export or a missed floor exits nonzero.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "ingest/ingest_session.h"
#include "ingest/wire_decoder.h"
#include "ingest/wire_encoder.h"
#include "metrics/histogram.h"
#include "service/sharded_admission.h"
#include "sim/simulator.h"

namespace {

using namespace frap;

constexpr std::size_t kStages = 5;
constexpr std::size_t kShards = 8;
constexpr std::size_t kRecords = 4096;        // records per frame
constexpr Duration kSpacing = 1e-4;           // arrival spacing inside a frame
constexpr Duration kFrameSpan = kRecords * kSpacing;  // ~0.41 s
// Strictly shorter than the frame span: every task of one epoch has expired
// before the same wire ids arrive again next epoch (the tracker keys live
// records by id), keeping the steady population at deadline/spacing = 2000.
constexpr Duration kDeadline = 0.2;
// Tiny enough that even a lane confined to one 1/8-quota shard stays well
// inside the scaled region (2000 live x 1e-6/0.2 x 8 = 0.08 on stage 0):
// every arrival is admitted, so the churn includes the commit every time.
constexpr double kTinyCompute = 1e-6;
constexpr double kProbeContribution = 0.1;

// Deterministic sparse workload: record k touches stage 0 and stage
// 1 + (k % 4), kTinyCompute each. `id_stride`/`id_base` let the sharded
// lanes pin their records to one shard (id % kShards routes).
void fill_frame(ingest::WireEncoder& enc, Time base, std::uint64_t id_base,
                std::uint64_t id_stride) {
  enc.reset(base);
  core::TaskSpec spec;
  spec.deadline = kDeadline;
  spec.importance = 1.0;
  spec.stages.resize(kStages);
  for (std::size_t k = 0; k < kRecords; ++k) {
    for (auto& s : spec.stages) s.compute = 0;
    spec.stages[0].compute = kTinyCompute;
    spec.stages[1 + k % (kStages - 1)].compute = kTinyCompute;
    spec.id = id_base + k * id_stride;
    enc.add(base + static_cast<double>(k) * kSpacing, spec);
  }
}

core::TaskSpec contribution_task(std::uint64_t id,
                                 const std::vector<double>& c) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(c.size());
  for (std::size_t j = 0; j < c.size(); ++j) spec.stages[j].compute = c[j];
  return spec;
}

// --- decoder ceiling ----------------------------------------------------

void IngestDecodeOnly(benchmark::State& state) {
  ingest::WireEncoder enc(kStages);
  fill_frame(enc, 0.0, 1, 1);
  const ingest::WireView view = ingest::WireView::open(enc.frame());
  if (!view.valid()) std::abort();

  for (auto _ : state) {
    std::uint64_t ids = 0;
    double acc = 0;
    ingest::WireArrival a;
    for (auto cur = view.cursor(); cur.next(a);) {
      ids += a.id();
      acc += a.arrival() + a.deadline() + a.importance();
      const std::uint16_t pairs = a.pair_count();
      for (std::uint16_t i = 0; i < pairs; ++i) {
        acc += a.demand(i);
        ids += a.stage(i);
      }
    }
    benchmark::DoNotOptimize(ids);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRecords));
}
BENCHMARK(IngestDecodeOnly);

void IngestDecodeAssemble(benchmark::State& state) {
  ingest::WireEncoder enc(kStages);
  fill_frame(enc, 0.0, 1, 1);
  const ingest::WireView view = ingest::WireView::open(enc.frame());
  if (!view.valid()) std::abort();
  ingest::IngestSession session(kStages);

  for (auto _ : state) {
    ingest::WireArrival a;
    for (auto cur = view.cursor(); cur.next(a);) {
      const core::TaskSpec& spec = session.assemble(a);
      benchmark::DoNotOptimize(&spec);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRecords));
}
BENCHMARK(IngestDecodeAssemble);

// --- admission baselines (the rates ingest must outrun) -----------------

void IngestSingleThreadFastPath(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  const double cap = core::balanced_stage_bound(kStages);
  const auto fill =
      contribution_task(1, std::vector<double>(kStages, 0.94 * cap));
  if (!controller.try_admit(fill, 0.0).admitted) std::abort();

  std::vector<double> c(kStages, 0.0);
  c[0] = kProbeContribution;
  const auto probe = contribution_task(2, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.try_admit(probe, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(IngestSingleThreadFastPath);

// Steady-state churn: every arrival is admitted, commits into the tracker,
// and expires one deadline later (~10k live). This is the per-decision work
// a wire frame actually feeds — the committed >= 10x floor is against this.
void IngestSteadyAdmitBaseline(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  core::TaskSpec spec;
  spec.deadline = kDeadline;
  spec.importance = 1.0;
  spec.stages.resize(kStages);
  spec.stages[0].compute = kTinyCompute;
  spec.stages[1].compute = kTinyCompute;
  Time t = 0;
  std::uint64_t id = 1;
  for (std::size_t i = 0; i < 10000; ++i) {  // warm to steady population
    t += kSpacing;
    sim.run_until(t);
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec, t));
  }
  for (auto _ : state) {
    t += kSpacing;
    sim.run_until(t);
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(IngestSteadyAdmitBaseline);

// --- wire-fed admission -------------------------------------------------

// Same churn, fed from the wire: one frame replayed per iteration at a
// fresh epoch (rebase), so arrivals keep their relative spacing and the
// population stays steady. Compare records/sec against the baseline above
// to read the decode + assemble overhead per admitted task.
void IngestDecodeReplay(benchmark::State& state) {
  ingest::WireEncoder enc(kStages);
  fill_frame(enc, 0.0, 1, 1);
  const ingest::WireView view = ingest::WireView::open(enc.frame());
  if (!view.valid()) std::abort();

  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  ingest::IngestSession session(kStages);
  Time t = 0;
  for (std::size_t i = 0; i < 3; ++i) {  // warm to steady population
    const auto st = session.replay(view, controller, sim, nullptr, t);
    if (!st.ok()) std::abort();
    t += kFrameSpan;
  }
  for (auto _ : state) {
    const auto st = session.replay(view, controller, sim, nullptr, t);
    benchmark::DoNotOptimize(st.admitted);
    t += kFrameSpan;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRecords));
}
BENCHMARK(IngestDecodeReplay);

// Wire -> burst admission: the whole frame is decided as one burst through
// the SIMD batch f(U) path, then time advances one frame span so the
// population churns.
void IngestDecodeAdmitBatch(benchmark::State& state) {
  ingest::WireEncoder enc(kStages);
  fill_frame(enc, 0.0, 1, 1);
  const ingest::WireView view = ingest::WireView::open(enc.frame());
  if (!view.valid()) std::abort();

  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  core::BatchAdmissionController batch(controller);
  ingest::IngestSession session(kStages);
  Time t = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    sim.run_until(t);
    const auto st = session.admit_burst(view, batch);
    if (!st.ok()) std::abort();
    t += kFrameSpan;
  }
  for (auto _ : state) {
    sim.run_until(t);
    const auto st = session.admit_burst(view, batch);
    benchmark::DoNotOptimize(st.admitted);
    t += kFrameSpan;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRecords));
}
BENCHMARK(IngestDecodeAdmitBatch);

// --- multi-threaded open-loop lanes -------------------------------------

// T lanes, each the full consumer role: decode its own pre-encoded frame
// (ids congruent to the lane index mod kShards, so every record routes to
// the lane's home shard and the per-shard clocks stay monotone) and admit
// through the sharded service at a per-lane epoch that advances one frame
// span per iteration. Real-time aggregate records/sec is the scaling claim;
// on few-core machines cpu_time is the honest per-lane signal.
void IngestShardedDecodeAdmit(benchmark::State& state) {
  static std::unique_ptr<service::ShardedAdmissionService> svc;
  if (state.thread_index() == 0) {
    svc = std::make_unique<service::ShardedAdmissionService>(
        core::FeasibleRegion::deadline_monotonic(kStages),
        service::ShardedAdmissionConfig{.num_shards = kShards,
                                        .enable_fallback = false,
                                        .rebalance_interval = 0});
  }

  const auto lane = static_cast<std::uint64_t>(state.thread_index());
  ingest::WireEncoder enc(kStages);  // producer role: pre-encode the lane
  fill_frame(enc, 0.0, lane, kShards);
  ingest::WireView view;
  {
    ingest::WireParse parse;
    view = ingest::WireView::open(enc.frame(), &parse);
    if (!parse.ok()) std::abort();
  }
  ingest::IngestSession session(kStages);
  Time t = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto st = session.admit(view, *svc, nullptr, t);
    if (!st.ok()) std::abort();
    t += kFrameSpan;
  }
  for (auto _ : state) {
    const auto st = session.admit(view, *svc, nullptr, t);
    benchmark::DoNotOptimize(st.admitted);
    t += kFrameSpan;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRecords));

  if (state.thread_index() == 0) {
    const auto s = svc->stats();
    state.counters["admits"] = static_cast<double>(s.total_admits());
    state.counters["rejects"] = static_cast<double>(s.total_rejects());
    svc.reset();
  }
}
BENCHMARK(IngestShardedDecodeAdmit)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- per-record end-to-end latency --------------------------------------

// Timestamps each record across decode + assemble + admit (single
// controller, steady churn) and reports the percentiles. 10 ns resolution,
// clamped at 100 us.
void IngestE2eLatency(benchmark::State& state) {
  ingest::WireEncoder enc(kStages);
  fill_frame(enc, 0.0, 1, 1);
  const ingest::WireView view = ingest::WireView::open(enc.frame());
  if (!view.valid()) std::abort();

  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  ingest::IngestSession session(kStages);
  metrics::Histogram hist(0.0, 1e5, 10000);
  Time t = 0;
  std::size_t records = 0;
  for (auto _ : state) {
    ingest::WireArrival a;
    for (auto cur = view.cursor(); cur.next(a);) {
      const Time now = a.arrival() + t;
      const auto t0 = std::chrono::steady_clock::now();
      sim.run_until(now);
      const auto d = controller.try_admit(session.assemble(a), now);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(d);
      hist.add_finite(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
      ++records;
    }
    t += kFrameSpan;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["e2e_p50_ns"] = hist.quantile(0.50);
  state.counters["e2e_p95_ns"] = hist.quantile(0.95);
  state.counters["e2e_p99_ns"] = hist.quantile(0.99);
}
BENCHMARK(IngestE2eLatency)->Iterations(100);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  frap::benchjson::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::map<std::string, double> summary;
  const auto rate = [&](const std::string& name) {
    return reporter.counter_of(name.c_str(), "items_per_second");
  };
  summary["decode_only_records_per_sec"] = rate("IngestDecodeOnly");
  summary["decode_assemble_records_per_sec"] = rate("IngestDecodeAssemble");
  summary["single_thread_fast_path_attempts_per_sec"] =
      rate("IngestSingleThreadFastPath");
  summary["steady_admit_attempts_per_sec"] = rate("IngestSteadyAdmitBaseline");
  summary["decode_replay_records_per_sec"] = rate("IngestDecodeReplay");
  summary["decode_admit_batch_records_per_sec"] =
      rate("IngestDecodeAdmitBatch");
  for (int t : {1, 2, 4, 8}) {
    summary["ingest_" + std::to_string(t) + "t_records_per_sec"] =
        rate("IngestShardedDecodeAdmit/real_time/threads:" +
             std::to_string(t));
  }
  summary["e2e_p50_ns"] = reporter.counter_of("IngestE2eLatency*", "e2e_p50_ns");
  summary["e2e_p95_ns"] = reporter.counter_of("IngestE2eLatency*", "e2e_p95_ns");
  summary["e2e_p99_ns"] = reporter.counter_of("IngestE2eLatency*", "e2e_p99_ns");

  const double decode = summary["decode_only_records_per_sec"];
  const double steady = summary["steady_admit_attempts_per_sec"];
  const double probe = summary["single_thread_fast_path_attempts_per_sec"];
  summary["decode_over_steady_admit_ratio"] =
      steady > 0 ? decode / steady : 0;
  summary["decode_over_probe_ratio"] = probe > 0 ? decode / probe : 0;

  const std::string path = frap::benchjson::json_path("BENCH_ingest.json");
  if (!frap::benchjson::write_json(path, reporter.results(), summary)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", path.c_str());
    return 1;
  }
  if (summary["decode_over_steady_admit_ratio"] < 10.0) {
    std::fprintf(stderr,
                 "FATAL: ingest floor missed: decode-only %.3g rec/s is only "
                 "%.2fx the steady admit baseline %.3g/s (need >= 10x)\n",
                 decode, summary["decode_over_steady_admit_ratio"], steady);
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
