// Ablation A1: the idle-time synthetic-utilization reset (Sec. 4).
//
// The paper motivates the reset with the Ci=1, Di=2 example: without it,
// synthetic utilization never recovers before task deadlines and the
// admission controller leaves the processor badly underutilized. This
// ablation runs the Fig. 4 setup with the reset enabled vs disabled.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/experiment.h"
#include "util/table.h"

namespace {

using namespace frap;

pipeline::ExperimentResult run_cell(double load, bool idle_reset,
                                    double resolution) {
  pipeline::ExperimentConfig cfg;
  cfg.workload = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, resolution);
  cfg.idle_reset = idle_reset;
  cfg.seed = 5000;
  cfg.sim_duration = 120.0;
  cfg.warmup = 10.0;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Ablation A1: idle-time synthetic-utilization reset\n");
  std::printf("(two-stage pipeline, resolution 100)\n\n");

  util::Table table({"load %", "util (reset ON)", "util (reset OFF)",
                     "accept ON", "accept OFF", "miss ON", "miss OFF"});
  for (int load_pct = 60; load_pct <= 200; load_pct += 20) {
    const double load = load_pct / 100.0;
    const auto on = run_cell(load, true, 100.0);
    const auto off = run_cell(load, false, 100.0);
    table.add_row({std::to_string(load_pct),
                   util::Table::fmt(on.avg_stage_utilization, 3),
                   util::Table::fmt(off.avg_stage_utilization, 3),
                   util::Table::fmt(on.acceptance_ratio, 3),
                   util::Table::fmt(off.acceptance_ratio, 3),
                   util::Table::fmt(on.miss_ratio, 4),
                   util::Table::fmt(off.miss_ratio, 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: both sound (miss = 0); the reset buys a large "
      "utilization/acceptance gain, growing with load.\n");
  return 0;
}
