// Reproduces Figure 7: "Miss Ratio with Approximate Admission Control".
//
// The admission test uses per-stage MEAN computation times instead of the
// (unknown) actual ones; the actual values still execute. Balanced
// two-stage pipeline; miss ratio of admitted tasks vs task resolution, one
// curve per input load. Paper shape: no misses at high resolution (laws of
// large numbers make the mean a good surrogate); a very small fraction of
// misses appears as resolution decreases, growing with load.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/experiment.h"
#include "util/table.h"

namespace {

using namespace frap;

pipeline::ExperimentResult run_cell(double load, double resolution) {
  pipeline::ExperimentConfig cfg;
  cfg.workload = workload::PipelineWorkloadConfig::balanced(
      2, 10 * kMilli, load, resolution);
  cfg.admission = pipeline::AdmissionMode::kApproximate;
  cfg.seed = 4000;
  cfg.sim_duration = 200.0;
  cfg.warmup = 15.0;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Figure 7: Miss Ratio with Approximate Admission Control\n");
  std::printf(
      "(admission test uses mean computation times; two-stage pipeline)\n\n");

  const double resolutions[] = {2, 5, 10, 20, 50, 100, 200, 500};
  util::Table table({"resolution", "miss (load=100%)", "miss (load=150%)",
                     "util (load=150%)"});
  for (double res : resolutions) {
    const auto r100 = run_cell(1.0, res);
    const auto r150 = run_cell(1.5, res);
    table.add_row({util::Table::fmt(res, 0),
                   util::Table::fmt(r100.miss_ratio, 4),
                   util::Table::fmt(r150.miss_ratio, 4),
                   util::Table::fmt(r150.avg_stage_utilization, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: miss ratio ~0 at high resolution, small but "
      "nonzero at low resolution, larger at the higher load.\n");
  return 0;
}
