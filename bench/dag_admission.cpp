// DAG admission bound bench (ISSUE 9, docs/dag_bounds.md). Three sweeps
// over randomized Erdős–Rényi DAGs of 100 / 1k / 10k nodes:
//
//   * DagAdmitIncremental/N: attempts/sec of the interned long-path fast
//     path — cached per-stage f-terms + profile dot products, O(touched
//     resources), independent of node count. The probe is rejected at the
//     measured state (path multiplicity x f(0.25) > 1), so the full
//     evaluation runs but nothing commits.
//   * DagAdmitRewalk/N: the same decision recomputed the pre-interning way
//     — snapshot every utilization, walk all N nodes, run the exact
//     critical-path DP. O(V + E) per attempt; the acceptance criterion is
//     incremental >= 5x this at N = 10k.
//   * DagAdmittedLoad/N: an overloaded arrival stream committed through the
//     long-path controller (expiries via the simulator), with the
//     critical-path test at the worst-case alpha evaluated pointwise on the
//     same states. Counters pin the admit-count gain and that dominance
//     violations stay at zero (every crit admit is a long-path admit).
//
// Writes BENCH_dag.json (override with FRAP_BENCH_JSON) with attempts/sec
// per variant, the incremental speedups, and the per-size admit gains.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/long_path_bound.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "core/task_graph_shape.h"
#include "sim/simulator.h"
#include "util/math.h"
#include "util/rng.h"
#include "workload/random_dag.h"

namespace {

using namespace frap;

constexpr std::size_t kResources = 8;
constexpr Duration kCeiling = 1.0;       // D̂_k for every resource
constexpr Duration kDeadlineMin = 0.5;   // load-sweep deadlines in [0.5, 1]
constexpr double kAlpha = kDeadlineMin / kCeiling;

// ER config sized so edge count stays O(4N) at every N: long paths exist
// (the re-walk has real DP work) without quadratic edge blowup at 10k.
workload::RandomDagConfig sized_config(std::size_t nodes) {
  workload::RandomDagConfig cfg;
  cfg.kind = workload::RandomDagConfig::Kind::kErdosRenyi;
  cfg.num_nodes = nodes;
  cfg.num_resources = kResources;
  cfg.edge_prob = std::min(0.25, 4.0 / static_cast<double>(nodes));
  // Total compute ~0.02 per task regardless of node count, so the load
  // sweep sees comparable per-task contributions at every size.
  cfg.min_compute = 0.01 / static_cast<double>(nodes);
  cfg.max_compute = 0.03 / static_cast<double>(nodes);
  return cfg;
}

// Canonicalized specs share interned shapes owned by the fixture registry;
// built lazily ONCE per size (10k-node generation is the expensive part)
// and reused across benchmark re-entries.
struct SizedFixture {
  core::TaskGraphShapeRegistry registry;
  std::vector<core::GraphTaskSpec> pool;  // load sweep, random deadlines
  core::GraphTaskSpec probe;              // deadline = ceiling
};

SizedFixture& fixture_for(std::size_t nodes) {
  static std::map<std::size_t, std::unique_ptr<SizedFixture>> fixtures;
  auto& slot = fixtures[nodes];
  if (slot) return *slot;
  slot = std::make_unique<SizedFixture>();
  util::Rng rng(1000 + static_cast<std::uint64_t>(nodes));
  const auto cfg = sized_config(nodes);
  const std::size_t pool_size = nodes <= 100 ? 64 : (nodes <= 1000 ? 16 : 6);
  slot->pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    slot->pool.push_back(slot->registry.canonicalize(workload::random_dag(
        rng, cfg, i + 1, rng.uniform(kDeadlineMin, kCeiling))));
  }
  slot->probe =
      slot->registry.canonicalize(workload::random_dag(rng, cfg, 0, kCeiling));
  return *slot;
}

core::LongPathEvaluator make_evaluator() {
  return core::LongPathEvaluator(std::vector<double>(kResources, kCeiling),
                                 {}, kAlpha);
}

// Background load making the probe's path value exceed the budget: every
// resource at u = 0.25 gives f = 0.2917 per node, and any surviving path
// spans >= 4 nodes at these sizes, so the test runs in full and rejects
// without committing — constant state across iterations.
void prefill(core::SyntheticUtilizationTracker& tracker) {
  double add[kResources];
  for (double& a : add) a = 0.25;
  tracker.add(1, add, 1e3);
}

void DagAdmitIncremental(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  auto& fixture = fixture_for(nodes);
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kResources);
  core::GraphAdmissionController controller(sim, tracker, make_evaluator());
  prefill(tracker);
  core::GraphTaskSpec spec = fixture.probe;  // one copy; only the id churns
  std::uint64_t id = 1'000'000;
  for (auto _ : state) {
    spec.id = id++;
    benchmark::DoNotOptimize(controller.try_admit(spec, sim.now()));
  }
  if (controller.admitted() != 0) {
    state.SkipWithError("probe unexpectedly admitted; state drifted");
    return;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(DagAdmitIncremental)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void DagAdmitRewalk(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  auto& fixture = fixture_for(nodes);
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kResources);
  prefill(tracker);
  core::LongPathEvaluator rewalk = make_evaluator();
  core::GraphTaskSpec spec = fixture.probe;
  std::uint64_t id = 2'000'000;
  const double inv_d = util::safe_inv(spec.deadline);
  for (auto _ : state) {
    spec.id = id++;
    // The pre-interning recipe per attempt: full snapshot, before/with
    // values via the exact all-nodes walk + critical-path DP.
    auto u = tracker.utilizations();
    const double before = rewalk.exact_lhs_from_snapshot(spec, u);
    for (const auto& n : spec.nodes) {
      u[n.resource] += n.demand.compute * inv_d;
    }
    const double with_task = rewalk.exact_lhs_from_snapshot(spec, u);
    benchmark::DoNotOptimize(before);
    benchmark::DoNotOptimize(with_task);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(DagAdmitRewalk)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void DagAdmittedLoad(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  auto& fixture = fixture_for(nodes);
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kResources);
  core::GraphAdmissionController controller(sim, tracker, make_evaluator());
  core::GraphRegionEvaluator crit_eval(kAlpha, {});
  // Per-entry working copies so the measured loop mutates ids only.
  std::vector<core::GraphTaskSpec> specs(fixture.pool.begin(),
                                         fixture.pool.end());
  util::Rng rng(static_cast<std::uint64_t>(nodes) + 7);
  const double lambda = 1000.0;  // arrivals/sec: overload, the region binds
  std::uint64_t id = 3'000'000;
  std::uint64_t offered = 0, long_admits = 0, crit_admits = 0, crit_only = 0;
  std::size_t next = 0;
  for (auto _ : state) {
    sim.run_until(sim.now() + rng.exponential(1.0 / lambda));
    auto& spec = specs[next];
    next = (next + 1) % specs.size();
    spec.id = id++;
    ++offered;

    // Critical-path test at worst-case alpha, pointwise (no commit).
    auto u = tracker.utilizations();
    const auto add = spec.resource_contributions(kResources);
    for (std::size_t k = 0; k < kResources; ++k) u[k] += add[k];
    const bool crit_admit = core::FeasibleRegion::admits_lhs(
        crit_eval.lhs(spec, u), crit_eval.bound(spec));

    const auto d = controller.try_admit(spec, sim.now());
    if (d.admitted) ++long_admits;
    if (crit_admit) {
      ++crit_admits;
      if (!d.admitted) ++crit_only;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["offered"] = static_cast<double>(offered);
  state.counters["long_admits"] = static_cast<double>(long_admits);
  state.counters["crit_admits"] = static_cast<double>(crit_admits);
  state.counters["crit_only"] = static_cast<double>(crit_only);
  state.counters["admit_gain"] =
      crit_admits > 0 ? static_cast<double>(long_admits) /
                            static_cast<double>(crit_admits)
                      : 0.0;
}
BENCHMARK(DagAdmittedLoad)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  frap::benchjson::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::map<std::string, double> summary;
  for (const char* n : {"100", "1000", "10000"}) {
    const std::string size(n);
    const double inc = reporter.counter_of("DagAdmitIncremental/" + size,
                                           "items_per_second");
    const double rew =
        reporter.counter_of("DagAdmitRewalk/" + size, "items_per_second");
    summary["incremental_attempts_per_sec_" + size] = inc;
    summary["rewalk_attempts_per_sec_" + size] = rew;
    // Acceptance: >= 5 at size 10000.
    summary["incremental_speedup_" + size] = rew > 0 ? inc / rew : 0;
    summary["admit_gain_" + size] =
        reporter.counter_of("DagAdmittedLoad/" + size, "admit_gain");
    summary["dominance_violations_" + size] =
        reporter.counter_of("DagAdmittedLoad/" + size, "crit_only");
  }
  const std::string path = frap::benchjson::json_path("BENCH_dag.json");
  if (!frap::benchjson::write_json(path, reporter.results(), summary)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
