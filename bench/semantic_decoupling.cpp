// Sec. 5 architectural claim: decouple SCHEDULING priority from SEMANTIC
// importance.
//
// "In the absence of an admission controller, one would have had to assign
//  task scheduling priorities inside the system according to their semantic
//  importance ... Such a semantic priority assignment is generally
//  suboptimal from a schedulability perspective."
//
// Demonstration: two classes share a two-stage pipeline at ~80% load —
// important Mission tasks with LONG deadlines (500 ms) and routine Status
// tasks with SHORT deadlines (50 ms). The whole mix is DM-schedulable.
//   * System A (the paper): DM scheduling + importance-aware shedding
//     admission — deadlines ordered correctly; importance only decides who
//     is shed at overload.
//   * System B (traditional): scheduling priority = semantic importance,
//     no admission — Mission tasks preempt Status tasks despite having 10x
//     the slack, so Status deadlines are missed even though the load is
//     feasible.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

struct ClassStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
};

struct RunResult {
  ClassStats mission;
  ClassStats status;
};

constexpr double kMissionImportance = 10.0;
constexpr double kStatusImportance = 1.0;

RunResult run(bool paper_architecture, double load_scale,
              std::uint64_t seed) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);

  if (paper_architecture) {
    runtime.set_priority_policy(pipeline::deadline_monotonic_policy());
  } else {
    // Semantic priority: more important = more urgent to the scheduler.
    runtime.set_priority_policy(
        [](const core::TaskSpec& s) { return -s.importance; });
  }

  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));
  core::SheddingAdmissionController shedder(
      admission, [&](std::uint64_t id) { runtime.abort_task(id); });
  // Sound shedding: only victims that never executed (see ShedFilter docs).
  shedder.set_shed_filter([&](std::uint64_t id) {
    return !runtime.task_started_executing(id);
  });

  RunResult result;
  runtime.set_on_task_complete(
      [&](const core::TaskSpec& spec, Duration, bool missed) {
        auto& cls = spec.importance >= kMissionImportance ? result.mission
                                                          : result.status;
        ++cls.completed;
        if (missed) ++cls.missed;
      });

  util::Rng rng(seed);
  const Duration sim_end = 120.0;
  std::uint64_t next_id = 1;

  struct ClassCfg {
    double rate;
    Duration mean_c;
    Duration deadline;
    double importance;
    ClassStats* stats;
  };
  // Mission: 20 ms/stage mean at 15/s -> 30% load; Status: 5 ms/stage at
  // 100/s -> 50% load. Total 80%.
  std::vector<ClassCfg> classes{
      {15.0 * load_scale, 20 * kMilli, 500 * kMilli, kMissionImportance,
       &result.mission},
      {100.0 * load_scale, 5 * kMilli, 50 * kMilli, kStatusImportance,
       &result.status},
  };

  for (auto& cls : classes) {
    workload::schedule_renewal(
        sim, sim_end, [&] { return rng.exponential(1.0 / cls.rate); },
        [&](Time) {
          ++cls.stats->offered;
          core::TaskSpec spec;
          spec.id = next_id++;
          spec.deadline = cls.deadline;
          spec.importance = cls.importance;
          spec.stages.resize(2);
          spec.stages[0].compute = rng.exponential(cls.mean_c);
          spec.stages[1].compute = rng.exponential(cls.mean_c);
          bool start = true;
          if (paper_architecture) {
            start = shedder.try_admit(spec).admitted;
          }
          if (start) {
            ++cls.stats->admitted;
            runtime.start_task(spec, sim.now() + spec.deadline);
          }
        });
  }
  sim.run();
  return result;
}

std::string miss_pct(const ClassStats& s) {
  return s.completed == 0
             ? "-"
             : util::Table::fmt(100.0 * static_cast<double>(s.missed) /
                                    static_cast<double>(s.completed),
                                2);
}

}  // namespace

int main() {
  std::printf("Sec. 5: scheduling priority vs semantic importance\n");
  std::printf("(Mission: important, D = 500 ms; Status: routine, D = 50 "
              "ms; mix is DM-schedulable at base load)\n\n");

  util::Table table({"load %", "arch", "mission miss %", "status miss %",
                     "status accept %"});
  for (double scale : {1.0, 1.5, 2.0}) {
    const auto paper = run(true, scale, 7);
    const auto traditional = run(false, scale, 7);
    const int pct = static_cast<int>(80 * scale);
    table.add_row(
        {std::to_string(pct), "DM + shedding", miss_pct(paper.mission),
         miss_pct(paper.status),
         util::Table::fmt(100.0 *
                              static_cast<double>(paper.status.admitted) /
                              static_cast<double>(paper.status.offered),
                          1)});
    table.add_row(
        {std::to_string(pct), "semantic prio", miss_pct(traditional.mission),
         miss_pct(traditional.status), "100.0"});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: semantic-priority scheduling misses Status "
      "deadlines even at the feasible base load (Mission tasks with 10x "
      "the slack preempt them); DM + importance-aware shedding keeps every "
      "admitted task on time at every load and sheds only at overload.\n");
  return 0;
}
