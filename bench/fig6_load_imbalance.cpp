// Reproduces Figure 6: "Effect of Load Imbalance".
//
// Two-stage pipeline; the ratio of mean computation times across the two
// stages is swept (bottleneck kept at the same absolute mean). The y-axis
// is the real utilization of the bottleneck stage. Paper shape: a valley at
// the balanced midpoint, rising toward either side — the admission
// controller opportunistically raises bottleneck utilization when the other
// stage is underutilized, approaching single-resource behaviour.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/experiment.h"
#include "util/table.h"

namespace {

using namespace frap;

// ratio = mean_c(stage 2) / mean_c(stage 1), bottleneck mean fixed at 10ms.
pipeline::ExperimentResult run_cell(double ratio, double load) {
  pipeline::ExperimentConfig cfg;
  Duration c1 = 10 * kMilli;
  Duration c2 = 10 * kMilli;
  if (ratio >= 1.0) {
    c1 = c2 / ratio;
  } else {
    c2 = c1 * ratio;
  }
  cfg.workload.mean_compute = {c1, c2};
  cfg.workload.input_load = load;
  cfg.workload.resolution = 100.0;
  cfg.seed = 3000;
  cfg.sim_duration = 150.0;
  cfg.warmup = 15.0;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Figure 6: Effect of Load Imbalance (two-stage pipeline)\n");
  std::printf("bottleneck-stage real utilization vs stage mean-C ratio\n\n");

  const double ratios[] = {1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0, 2.0, 4.0, 8.0};
  util::Table table({"C2/C1 ratio", "bottleneck util (load=100%)",
                     "bottleneck util (load=150%)", "miss"});
  for (double ratio : ratios) {
    const auto r100 = run_cell(ratio, 1.0);
    const auto r150 = run_cell(ratio, 1.5);
    table.add_row({util::Table::fmt(ratio, 3),
                   util::Table::fmt(r100.bottleneck_utilization, 3),
                   util::Table::fmt(r150.bottleneck_utilization, 3),
                   util::Table::fmt(r150.miss_ratio, 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: minimum at ratio 1 (balanced), rising toward both "
      "extremes as the system approaches single-resource behaviour.\n");
  return 0;
}
