// Multi-threaded admission throughput: the sharded service's uncontended
// hot path at 1/2/4/8 threads against the single-threaded PR-1 fast path.
//
// Scenario mirrors micro_admission's AdmissionFastPath steady state scaled
// into each shard's quota slice: every shard is prefilled to ~94% of the
// balanced per-stage cap IN ITS SCALED VIEW, and each thread hammers its
// own home shard with a sparse probe that is rejected right at the
// boundary — the full test runs, nothing commits, state stays constant.
// Fallback and auto-rebalance are disabled so the measurement isolates the
// scaling claim. Two sharded variants bracket the design space:
//   * MtShardedHotPath       — atomic fast path OFF: the per-shard MUTEX
//     baseline (lock/unlock plus the exact test per probe).
//   * MtShardedAtomicHotPath — atomic fast path ON: the boundary probe is
//     settled entirely lock-free (quantized fixed-point fast reject, no
//     mutex, no shared service atomics touched).
// Acceptance target (ISSUE 6): the atomic variant should show >= 3x
// aggregate attempts/sec at 8 threads over its own 1-thread rate on
// hardware with >= 8 cores. On a single-core container real-time
// throughput stays flat for BOTH variants — per-thread CPU time
// (cpu_time in the JSON) is the honest signal there, and the
// atomic-vs-mutex ratio at each thread count still measures the per-probe
// cost the lock-free path removes.
// Writes BENCH_mt_admission.json at the repo root (override with
// FRAP_BENCH_JSON); a failed export exits nonzero.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>

#include "bench_json.h"

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "obs/decision_sink.h"
#include "obs/observer.h"
#include "service/sharded_admission.h"
#include "sim/simulator.h"

namespace {

using namespace frap;

constexpr std::size_t kStages = 5;
constexpr std::size_t kShards = 8;
constexpr double kProbeContribution = 0.1;  // rejected at the boundary

// A task whose per-stage contribution (compute / deadline) is `c[j]`.
core::TaskSpec contribution_task(std::uint64_t id,
                                 const std::vector<double>& c) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(c.size());
  for (std::size_t j = 0; j < c.size(); ++j) spec.stages[j].compute = c[j];
  return spec;
}

// Fills every stage to ~94% of the balanced cap in the tested view. For the
// sharded service the fill contribution is scaled by the shard's weight so
// the shard-local (1/w-scaled) utilization matches the single-threaded
// scenario exactly.
std::vector<double> near_boundary_fill(double weight) {
  const double cap = core::balanced_stage_bound(kStages);
  return std::vector<double>(kStages, 0.94 * cap * weight);
}

// --- single-threaded PR-1 fast path (the baseline for the speedup ratio) ---

void MtSingleThreadFastPath(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  const auto fill = contribution_task(1, near_boundary_fill(1.0));
  if (!controller.try_admit(fill, 0.0).admitted) std::abort();

  std::vector<double> c(kStages, 0.0);
  c[0] = kProbeContribution;
  const auto probe = contribution_task(2, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.try_admit(probe, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(MtSingleThreadFastPath);

// --- single-threaded fast path, tracing attached (overhead probe) --------

// The ISSUE budget: attaching a DecisionSink (64k ring, default latency
// sampling) must cost < 5% on the single-thread near-boundary hot path.
// Compare ns/op against MtSingleThreadFastPath, or read the
// overhead_pct counter of MtTracingOverheadReport below.
void MtSingleThreadFastPathTraced(benchmark::State& state) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kStages);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(kStages));
  obs::SinkConfig cfg;
  cfg.ring_capacity = std::size_t{1} << 16;
  obs::Observer observer(1, cfg);
  controller.set_sink(&observer.sink(0));
  const auto fill = contribution_task(1, near_boundary_fill(1.0));
  if (!controller.try_admit(fill, 0.0).admitted) std::abort();

  std::vector<double> c(kStages, 0.0);
  c[0] = kProbeContribution;
  const auto probe = contribution_task(2, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.try_admit(probe, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["ring_pushed"] =
      static_cast<double>(observer.sink(0).ring().pushed());
}
BENCHMARK(MtSingleThreadFastPathTraced);

// One self-contained A/B measurement on the STEADY-STATE hot path: tasks
// arrive at a fixed spacing, are admitted (commit into the tracker), and
// expire one deadline later — the full per-decision work the service does
// at capacity, not just the read-only region test. Reported as
// ns_per_op_off / ns_per_op_on / overhead_pct; the <5% ISSUE budget is
// against this number (the pure rejected-probe path above is ~13 ns, so
// ANY per-decision recording is a large fraction of it — the two FastPath
// benchmarks expose that absolute delta honestly). Wall-clock timing in
// bench code is fine (R5 governs src/ only).
namespace {

// One persistent steady-state arrival loop (tasks arrive at a fixed
// spacing, admit + commit, expire one deadline later) that can be timed in
// chunks without re-warming.
struct SteadyState {
  static constexpr Duration kSpacing = 1e-4;  // ~10k live per 1 s deadline

  obs::Observer observer;
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker;
  core::AdmissionController controller;
  std::vector<double> c;
  Time t = 0;
  std::uint64_t id = 1;

  explicit SteadyState(bool traced)
      : observer(1,
                 [] {
                   obs::SinkConfig cfg;
                   cfg.ring_capacity = std::size_t{1} << 16;
                   return cfg;
                 }()),
        tracker(sim, kStages),
        controller(sim, tracker,
                   core::FeasibleRegion::deadline_monotonic(kStages)),
        c(kStages, 1e-5) {  // tiny contribution: every arrival admitted
    if (traced) controller.set_sink(&observer.sink(0));
    // Warm into steady state (population ~ deadline / spacing) untimed.
    for (std::size_t i = 0; i < 10000; ++i) step();
  }

  void step() {
    t += kSpacing;
    sim.run_until(t);  // processes ~one expiry per arrival
    benchmark::DoNotOptimize(
        controller.try_admit(contribution_task(id++, c), t));
  }

  double chunk_ns_per_op(std::size_t ops) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) step();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(ops);
  }
};

}  // namespace

void MtTracingOverheadReport(benchmark::State& state) {
  constexpr std::size_t kChunk = 2000;
  SteadyState off(false);
  SteadyState on(true);

  // Interleaved min-of-chunks: each benchmark iteration times one off chunk
  // and one on chunk back to back, and the report keeps the MINIMUM of each
  // across all iterations. The min is the standard noise-robust estimator
  // here — scheduler preemption and cache interference from neighbors only
  // ever ADD time, so the fastest chunk is the closest observation of the
  // true cost, and interleaving ensures both variants face the same
  // machine.
  double best_off = std::numeric_limits<double>::infinity();
  double best_on = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    best_off = std::min(best_off, off.chunk_ns_per_op(kChunk));
    best_on = std::min(best_on, on.chunk_ns_per_op(kChunk));
  }
  state.counters["ns_per_op_off"] = best_off;
  state.counters["ns_per_op_on"] = best_on;
  state.counters["overhead_pct"] = 100.0 * (best_on - best_off) / best_off;
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 2 * kChunk));
}
BENCHMARK(MtTracingOverheadReport)->Iterations(400);

// --- sharded hot path, T threads on K=8 shards --------------------------

// Mutex baseline: the atomic fast path is explicitly disabled so every
// probe pays the shard lock plus the exact test — the configuration the
// service shipped with before the lock-free path existed.
void MtShardedHotPath(benchmark::State& state) {
  static std::unique_ptr<service::ShardedAdmissionService> svc;
  if (state.thread_index() == 0) {
    svc = std::make_unique<service::ShardedAdmissionService>(
        core::FeasibleRegion::deadline_monotonic(kStages),
        service::ShardedAdmissionConfig{.num_shards = kShards,
                                        .enable_fallback = false,
                                        .rebalance_interval = 0,
                                        .enable_atomic_fast_path = false});
    const double w = 1.0 / static_cast<double>(kShards);
    for (std::size_t k = 0; k < kShards; ++k) {
      // id = kShards + k routes to shard k and stays clear of probe ids.
      const auto fill =
          contribution_task(kShards + k, near_boundary_fill(w));
      if (!svc->try_admit(fill, 0.0).admitted) std::abort();
    }
  }

  // Thread t probes its own home shard: contribution 0.1 in the scaled
  // view, rejected at the boundary like the single-threaded scenario.
  const double w = 1.0 / static_cast<double>(kShards);
  std::vector<double> c(kStages, 0.0);
  c[0] = kProbeContribution * w;
  const auto probe = contribution_task(
      static_cast<std::uint64_t>(state.thread_index()), c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc->try_admit(probe, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));

  if (state.thread_index() == 0) {
    const auto s = svc->stats();
    state.counters["rejects"] = static_cast<double>(s.total_rejects());
    svc.reset();
  }
}
BENCHMARK(MtShardedHotPath)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- lock-free atomic fast path, same scenario --------------------------

// Identical prefill and boundary probe, atomic fast path ON (the default
// config): the probe's under-estimated delta already exceeds the quantized
// bound ceiling, so every attempt is a certain lock-free reject — no shard
// mutex, no globally shared atomic, just the per-shard guard reads.
void MtShardedAtomicHotPath(benchmark::State& state) {
  static std::unique_ptr<service::ShardedAdmissionService> svc;
  if (state.thread_index() == 0) {
    svc = std::make_unique<service::ShardedAdmissionService>(
        core::FeasibleRegion::deadline_monotonic(kStages),
        service::ShardedAdmissionConfig{.num_shards = kShards,
                                        .enable_fallback = false,
                                        .rebalance_interval = 0});
    const double w = 1.0 / static_cast<double>(kShards);
    for (std::size_t k = 0; k < kShards; ++k) {
      const auto fill =
          contribution_task(kShards + k, near_boundary_fill(w));
      if (!svc->try_admit(fill, 0.0).admitted) std::abort();
    }
  }

  const double w = 1.0 / static_cast<double>(kShards);
  std::vector<double> c(kStages, 0.0);
  c[0] = kProbeContribution * w;
  const auto probe = contribution_task(
      static_cast<std::uint64_t>(state.thread_index()), c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc->try_admit(probe, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));

  if (state.thread_index() == 0) {
    const auto s = svc->stats();
    double atomic_rejects = 0;
    double slow_rejects = 0;
    for (const auto& sh : s.shards) {
      atomic_rejects += static_cast<double>(sh.atomic_rejects);
      slow_rejects += static_cast<double>(sh.rejects);
    }
    // Sanity for the JSON consumer: the scenario is only measuring the
    // lock-free path if essentially everything fast-rejected.
    state.counters["atomic_rejects"] = atomic_rejects;
    state.counters["slow_rejects"] = slow_rejects;
    svc.reset();
  }
}
BENCHMARK(MtShardedAtomicHotPath)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- sharded hot path with per-shard tracing on -------------------------

void MtShardedHotPathTraced(benchmark::State& state) {
  static std::unique_ptr<service::ShardedAdmissionService> svc;
  if (state.thread_index() == 0) {
    svc = std::make_unique<service::ShardedAdmissionService>(
        core::FeasibleRegion::deadline_monotonic(kStages),
        service::ShardedAdmissionConfig{.num_shards = kShards,
                                        .enable_fallback = false,
                                        .rebalance_interval = 0});
    obs::SinkConfig cfg;
    cfg.ring_capacity = std::size_t{1} << 16;
    svc->enable_tracing(cfg);
    const double w = 1.0 / static_cast<double>(kShards);
    for (std::size_t k = 0; k < kShards; ++k) {
      const auto fill =
          contribution_task(kShards + k, near_boundary_fill(w));
      if (!svc->try_admit(fill, 0.0).admitted) std::abort();
    }
  }

  const double w = 1.0 / static_cast<double>(kShards);
  std::vector<double> c(kStages, 0.0);
  c[0] = kProbeContribution * w;
  const auto probe = contribution_task(
      static_cast<std::uint64_t>(state.thread_index()), c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc->try_admit(probe, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));

  if (state.thread_index() == 0) {
    const auto snap = svc->obs_snapshot();
    double pushed = 0;
    for (const auto& s : snap.sinks) pushed += static_cast<double>(s.pushed);
    state.counters["ring_pushed"] = pushed;
    svc.reset();
  }
}
BENCHMARK(MtShardedHotPathTraced)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

// --- sharded global fallback path (for contrast: every probe takes the
// --- global lock, so this should NOT scale) ------------------------------

void MtShardedFallbackPath(benchmark::State& state) {
  static std::unique_ptr<service::ShardedAdmissionService> svc;
  if (state.thread_index() == 0) {
    svc = std::make_unique<service::ShardedAdmissionService>(
        core::FeasibleRegion::deadline_monotonic(kStages),
        service::ShardedAdmissionConfig{.num_shards = kShards,
                                        .enable_fallback = true,
                                        .rebalance_interval = 0});
    const double w = 1.0 / static_cast<double>(kShards);
    for (std::size_t k = 0; k < kShards; ++k) {
      const auto fill =
          contribution_task(kShards + k, near_boundary_fill(w));
      if (!svc->try_admit(fill, 0.0).admitted) std::abort();
    }
  }

  // A probe too large for any slice OR the whole region: rejected on the
  // home shard, retried (and rejected again) under the global lock.
  std::vector<double> c(kStages, 2.0);
  const auto probe = contribution_task(
      static_cast<std::uint64_t>(state.thread_index()), c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc->try_admit(probe, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));

  if (state.thread_index() == 0) svc.reset();
}
BENCHMARK(MtShardedFallbackPath)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  frap::benchjson::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::map<std::string, double> summary;
  const auto rate = [&](const char* name) {
    return reporter.counter_of(name, "items_per_second");
  };
  summary["single_thread_attempts_per_sec"] = rate("MtSingleThreadFastPath");
  summary["single_thread_traced_attempts_per_sec"] =
      rate("MtSingleThreadFastPathTraced");
  summary["sharded_1t_attempts_per_sec"] =
      rate("MtShardedHotPath/real_time/threads:1");
  summary["sharded_8t_attempts_per_sec"] =
      rate("MtShardedHotPath/real_time/threads:8");
  for (int t : {1, 2, 4, 8}) {
    summary["atomic_" + std::to_string(t) + "t_attempts_per_sec"] =
        rate(("MtShardedAtomicHotPath/real_time/threads:" + std::to_string(t))
                 .c_str());
  }
  // Atomic-over-mutex ratio at 8 threads, and the atomic path's own thread
  // scaling (the ISSUE >= 3x target, meaningful on >= 8 cores).
  const double mutex_8t = summary["sharded_8t_attempts_per_sec"];
  const double atomic_1t = summary["atomic_1t_attempts_per_sec"];
  const double atomic_8t = summary["atomic_8t_attempts_per_sec"];
  summary["atomic_vs_mutex_8t_speedup"] =
      mutex_8t > 0 ? atomic_8t / mutex_8t : 0;
  summary["atomic_8t_over_1t_scaling"] =
      atomic_1t > 0 ? atomic_8t / atomic_1t : 0;
  summary["traced_overhead_pct"] =
      reporter.counter_of("MtTracingOverheadReport*", "overhead_pct");
  const std::string path =
      frap::benchjson::json_path("BENCH_mt_admission.json");
  if (!frap::benchjson::write_json(path, reporter.results(), summary)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
