// Reproduces Figure 4: "Effect of Pipeline Length".
//
// Average real stage utilization after admission control vs input load
// (60%-200% of stage capacity), one curve per pipeline length {1, 2, 3, 5}.
// Paper shape: utilization rises with load and exceeds ~80% at 100% load;
// the curves for 2, 3 and 5 stages nearly coincide (no pessimism growth
// with depth). Setup per Sec. 4.1: balanced exponential stage demands,
// task resolution ~100, Poisson arrivals, deadline-monotonic stages.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/experiment.h"
#include "util/table.h"

namespace {

using namespace frap;

pipeline::ExperimentResult run_cell(std::size_t stages, double load) {
  pipeline::ExperimentConfig cfg;
  cfg.workload = workload::PipelineWorkloadConfig::balanced(
      stages, 10 * kMilli, load, /*resolution=*/100.0);
  cfg.seed = 1000 + stages;
  cfg.sim_duration = 150.0;
  cfg.warmup = 15.0;
  return pipeline::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Figure 4: Effect of Pipeline Length\n");
  std::printf(
      "avg real stage utilization after admission control vs input load\n\n");

  const std::size_t lengths[] = {1, 2, 3, 5, 8};
  util::Table table({"load %", "N=1", "N=2", "N=3", "N=5", "N=8",
                     "accept(N=2)", "miss(N=2)"});
  for (int load_pct = 60; load_pct <= 200; load_pct += 10) {
    const double load = load_pct / 100.0;
    std::vector<std::string> row{std::to_string(load_pct)};
    double accept2 = 0;
    double miss2 = 0;
    for (std::size_t n : lengths) {
      const auto r = run_cell(n, load);
      row.push_back(util::Table::fmt(r.avg_stage_utilization, 3));
      if (n == 2) {
        accept2 = r.acceptance_ratio;
        miss2 = r.miss_ratio;
      }
    }
    row.push_back(util::Table::fmt(accept2, 3));
    row.push_back(util::Table::fmt(miss2, 4));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: >0.8 at 100%% load; N=2/3/5 curves nearly "
      "coincide; miss ratio identically 0 (exact admission control).\n");
  return 0;
}
