// Exploration bench: multiprocessor stages (toward the liquid-task
// multiprocessor bound of the authors' companion work).
//
// One stage backed by a pool of m processors under global preemptive DM.
// Admission is threshold-based on the pool's synthetic utilization:
// admit iff U(t) + C/D <= theta * m, with the usual deadline decrement and
// idle reset. For each m we sweep theta and report the largest value with
// ZERO observed misses (two seeds), i.e. the empirical schedulable
// frontier, normalized per processor.
//
// Expected shape: at every m the frontier sits WELL ABOVE the analytic
// sufficient bound 2 - sqrt(2) ~= 0.586 (the bound is worst-case; a random
// workload's empirical frontier is higher) and is roughly flat per
// processor for this workload.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sched/pooled_stage_server.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

struct PoolRun {
  bool any_miss = false;
  double pool_util = 0;
  double accept = 0;
};

struct Live {
  std::unique_ptr<sched::Job> job;
  Time deadline_at;
  std::uint64_t id;
};

// Typed listener (sched/stage_executor.h): departure bookkeeping + deadline
// check on completion, idle reset on drain.
struct PoolObserver final : sched::StageListener {
  sim::Simulator* sim = nullptr;
  core::SyntheticUtilizationTracker* tracker = nullptr;
  std::vector<std::unique_ptr<Live>>* live = nullptr;
  PoolRun* result = nullptr;

  void on_job_complete(sched::StageExecutor&, sched::Job& j) override {
    tracker->mark_departed(j.id, 0);
    // Find the live record to check the deadline.
    for (auto it = live->begin(); it != live->end(); ++it) {
      if ((*it)->id == j.id) {
        if (sim->now() > (*it)->deadline_at + 1e-12) result->any_miss = true;
        live->erase(it);
        break;
      }
    }
  }

  void on_stage_idle(sched::StageExecutor&) override {
    tracker->on_stage_idle(0);
  }
};

PoolRun run_pool(std::size_t m, double theta, std::uint64_t seed) {
  sim::Simulator sim;
  sched::PooledStageServer pool(sim, m);
  core::SyntheticUtilizationTracker tracker(sim, 1);

  auto live = std::make_shared<std::vector<std::unique_ptr<Live>>>();

  PoolRun result;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;

  PoolObserver observer;
  observer.sim = &sim;
  observer.tracker = &tracker;
  observer.live = live.get();
  observer.result = &result;
  pool.set_listener(&observer);

  util::Rng rng(seed);
  const Duration mean_c = 10 * kMilli;
  const double lambda = 2.0 * static_cast<double>(m) / mean_c;  // 200% load
  const Duration sim_end = 60.0;
  std::uint64_t next_id = 1;

  workload::schedule_renewal(
      sim, sim_end, [&] { return rng.exponential(1.0 / lambda); }, [&](Time) {
      ++offered;
      const Duration c = rng.exponential(mean_c);
      const Duration d = rng.uniform(0.25, 0.75);  // resolution ~50
      const double contribution = c / d;
      if (tracker.utilization(0) + contribution <=
          theta * static_cast<double>(m)) {
        ++admitted;
        const std::uint64_t id = next_id++;
        tracker.add(id, std::vector<double>{contribution}, sim.now() + d);
        auto rec = std::make_unique<Live>();
        rec->id = id;
        rec->deadline_at = sim.now() + d;
        rec->job = std::make_unique<sched::Job>(
            id, d, std::vector<sched::Segment>{
                       sched::Segment{c, sched::kNoLock}});
        pool.submit(*rec->job);
        live->push_back(std::move(rec));
      }
      });
  sim.run();

  result.pool_util = pool.pool_utilization(5.0, sim_end);
  result.accept = offered ? static_cast<double>(admitted) /
                                static_cast<double>(offered)
                          : 0;
  return result;
}

// Largest theta (on a 0.02 grid) with zero misses across two seeds.
double empirical_frontier(std::size_t m, double& util_at_frontier) {
  double best = 0;
  util_at_frontier = 0;
  for (double theta = 0.50; theta <= 0.981; theta += 0.02) {
    const auto a = run_pool(m, theta, 11);
    const auto b = run_pool(m, theta, 23);
    if (a.any_miss || b.any_miss) break;
    best = theta;
    util_at_frontier = (a.pool_util + b.pool_util) / 2;
  }
  return best;
}

}  // namespace

int main() {
  std::printf("Multiprocessor stage exploration (global preemptive DM on a "
              "pool of m processors)\n");
  std::printf("empirical zero-miss admission threshold theta* (synthetic "
              "utilization / m), offered load 200%%\n\n");

  util::Table table({"m", "theta* (empirical)", "pool util at theta*"});
  for (std::size_t m : {1u, 2u, 4u, 8u}) {
    double util = 0;
    const double theta = empirical_frontier(m, util);
    table.add_row({std::to_string(m), util::Table::fmt(theta, 2),
                   util::Table::fmt(util, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nanalytic sufficient bound at m = 1: %.4f (2 - sqrt 2); expected "
      "shape: theta* well above that analytic worst case at every m (the "
      "bound is sufficient, not necessary) and roughly flat per processor "
      "for this workload — with idle resets the threshold, not the pool "
      "size, is the binding constraint.\n",
      0.5857864376);
  return 0;
}
