// Ablation A5: Theorem 2 on arbitrary task graphs.
//
// Aperiodic tasks shaped like Fig. 3 (fork/join over four resources) are
// admitted with the per-task critical-path region d(f(U_ki)) <= 1 and
// executed on the DAG runtime. Also compares against treating the same
// tasks as 4-stage chains (the pipeline-sum region): the critical-path
// region admits more because parallel branches do not add their delays.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "pipeline/dag_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/arrival_scheduler.h"

namespace {

using namespace frap;

struct DagResult {
  double util = 0;  // average over the four resources
  double accept = 0;
  double miss = 0;
  std::uint64_t completed = 0;
};

core::GraphTaskSpec make_fork_join(std::uint64_t id, Duration deadline,
                                   const std::vector<Duration>& c) {
  core::GraphTaskSpec g;
  g.id = id;
  g.deadline = deadline;
  auto demand = [](Duration v) {
    core::StageDemand d;
    d.compute = v;
    return d;
  };
  g.nodes = {core::GraphNode{0, demand(c[0])}, core::GraphNode{1, demand(c[1])},
             core::GraphNode{2, demand(c[2])}, core::GraphNode{3, demand(c[3])}};
  g.edges = {core::GraphEdge{0, 1}, core::GraphEdge{0, 2},
             core::GraphEdge{1, 3}, core::GraphEdge{2, 3}};
  return g;
}

// as_chain: evaluate the admission region as if the task were a serial
// 4-chain (same demands, same resources) — the conservative comparison.
DagResult run_dag(double load, bool as_chain, std::uint64_t seed) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, 4);
  pipeline::DagRuntime runtime(sim, 4, &tracker);
  core::GraphAdmissionController controller(
      sim, tracker, core::GraphRegionEvaluator(1.0, {}));

  util::Rng rng(seed);
  const Duration mean_c = 10 * kMilli;
  const double lambda = load / mean_c;
  const Duration mean_deadline = 100.0 * 4 * mean_c;  // resolution ~100
  const Duration sim_end = 120.0;

  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t next_id = 1;

  workload::schedule_renewal(
      sim, sim_end, [&] { return rng.exponential(1.0 / lambda); }, [&](Time) {
      ++offered;
      std::vector<Duration> c(4);
      for (auto& v : c) v = rng.exponential(mean_c);
      const Duration d = rng.uniform(0.5 * mean_deadline, 1.5 * mean_deadline);
      auto spec = make_fork_join(next_id++, d, c);
      if (as_chain) {
        // Serialize the branches for the ADMISSION TEST only.
        auto chain = spec;
        chain.edges = {core::GraphEdge{0, 1}, core::GraphEdge{1, 2},
                       core::GraphEdge{2, 3}};
        const auto decision = controller.try_admit(chain);
        if (decision.admitted) {
          ++admitted;
          runtime.start_task(spec, sim.now() + spec.deadline);
        }
      } else {
        if (controller.try_admit(spec).admitted) {
          ++admitted;
          runtime.start_task(spec, sim.now() + spec.deadline);
        }
      }
      });
  sim.run();

  DagResult r;
  const auto u = runtime.resource_utilizations(10.0, sim_end);
  for (double v : u) r.util += v;
  r.util /= static_cast<double>(u.size());
  r.accept = offered ? static_cast<double>(admitted) /
                           static_cast<double>(offered)
                     : 0.0;
  r.miss = runtime.misses().ratio();
  r.completed = runtime.completed();
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation A5: Theorem 2 on Fig. 3 fork/join task graphs\n");
  std::printf(
      "(four resources; region = critical path of f(U); vs the same tasks\n"
      " admitted with a serial-chain region)\n\n");

  // Analytical region sizes (balanced utilizations): the fork/join boundary
  // solves 3 f(u) = 1 (Eq. 16 has three path terms) while the chain solves
  // 4 f(u) = 1 — the critical-path region tolerates higher per-resource
  // synthetic utilization.
  std::printf("balanced per-resource caps: fork/join f_inv(1/3) = %.4f vs "
              "chain f_inv(1/4) = %.4f\n\n",
              core::stage_delay_factor_inverse(1.0 / 3.0),
              core::stage_delay_factor_inverse(1.0 / 4.0));

  util::Table table({"load %", "util (crit-path)", "miss (crit-path)",
                     "accept (crit-path)", "util (chain)",
                     "accept (chain region)"});
  for (int load_pct : {80, 120, 160, 200}) {
    const double load = load_pct / 100.0;
    const auto cp = run_dag(load, false, 21);
    const auto chain = run_dag(load, true, 21);
    table.add_row({std::to_string(load_pct), util::Table::fmt(cp.util, 3),
                   util::Table::fmt(cp.miss, 4),
                   util::Table::fmt(cp.accept, 3),
                   util::Table::fmt(chain.util, 3),
                   util::Table::fmt(chain.accept, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: zero misses under the critical-path region; its "
      "instantaneous region is strictly larger than the serial-chain one "
      "(caps above), though with idle resets both saturate similar "
      "long-run utilization at high resolution.\n");
  return 0;
}
