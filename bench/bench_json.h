// Machine-readable benchmark export (ISSUE 5 satellite c).
//
// google-benchmark's console output is for humans; CI wants one stable JSON
// file per bench binary (BENCH_*.json) with attempts/sec per variant and the
// user counters (live-task count, traced overhead %). This header provides a
// collecting ConsoleReporter — console output is unchanged — plus a minimal
// JSON writer, so each bench's main() runs the suite once and exports the
// captured results. The output path defaults to the REPO ROOT (compiled in
// as FRAP_REPO_ROOT by bench/CMakeLists.txt) so the BENCH_*.json trajectory
// accumulates where the roadmap tooling expects it, regardless of the
// binary's working directory; FRAP_BENCH_JSON overrides it (the CI
// bench-smoke job points it at the artifact directory). A failed export is
// a bench FAILURE: main() must propagate write_json's false into a nonzero
// exit so CI cannot silently lose the trajectory again.
//
// Bench-only code: wall-clock and environment access are fine here
// (frap-lint R5 governs src/).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace frap::benchjson {

struct Result {
  std::string name;
  std::int64_t iterations = 0;
  double real_time = 0;  // per-iteration, in `time_unit`
  double cpu_time = 0;
  std::string time_unit;
  std::map<std::string, double> counters;  // includes items_per_second
};

// Console reporter that additionally captures every per-iteration run (the
// counters it sees are already finalized, i.e. rates are per-second).
class CollectingReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Result r;
      r.name = run.benchmark_name();
      r.iterations = static_cast<std::int64_t>(run.iterations);
      r.real_time = run.GetAdjustedRealTime();
      r.cpu_time = run.GetAdjustedCPUTime();
      r.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      for (const auto& [key, counter] : run.counters) {
        r.counters.emplace(key, static_cast<double>(counter));
      }
      results_.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<Result>& results() const {
    return results_;
  }

  // Counter value of the named benchmark, or `fallback` when the benchmark
  // or the counter is absent (e.g. a --benchmark_filter excluded it). A
  // name ending in '*' matches any run whose full name (including arg /
  // thread suffixes the library appends) starts with the prefix.
  [[nodiscard]] double counter_of(const std::string& benchmark_name,
                                  const std::string& counter,
                                  double fallback = 0) const {
    const bool prefix = !benchmark_name.empty() && benchmark_name.back() == '*';
    const std::string want =
        prefix ? benchmark_name.substr(0, benchmark_name.size() - 1)
               : benchmark_name;
    for (const Result& r : results_) {
      const bool match =
          prefix ? r.name.compare(0, want.size(), want) == 0 : r.name == want;
      if (!match) continue;
      const auto it = r.counters.find(counter);
      if (it != r.counters.end()) return it->second;
    }
    return fallback;
  }

 private:
  std::vector<Result> results_;
};

inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline void write_number(std::ofstream& os, double v) {
  // JSON has no inf/nan; clamp to null so consumers fail loudly, not on a
  // parse error.
  if (v != v || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity()) {
    os << "null";
  } else {
    os << v;
  }
}

// Output path: FRAP_BENCH_JSON if set and non-empty, else `filename` under
// the repo root (falling back to the working directory only when the build
// system did not define FRAP_REPO_ROOT).
inline std::string json_path(const char* filename) {
  const char* env = std::getenv("FRAP_BENCH_JSON");
  if (env != nullptr && *env != '\0') return env;
#ifdef FRAP_REPO_ROOT
  return std::string(FRAP_REPO_ROOT) + "/" + filename;
#else
  return filename;
#endif
}

// Writes {"summary": {...}, "benchmarks": [...]}; returns false on I/O
// failure. Callers must treat false as fatal (nonzero exit) so a missing
// export fails CI instead of silently dropping a trajectory point.
inline bool write_json(const std::string& path,
                       const std::vector<Result>& results,
                       const std::map<std::string, double>& summary) {
  std::ofstream os(path);
  if (!os) return false;
  os.precision(17);
  os << "{\n  \"summary\": {";
  bool first = true;
  for (const auto& [key, value] : summary) {
    os << (first ? "\n" : ",\n") << "    \"" << escape(key) << "\": ";
    write_number(os, value);
    first = false;
  }
  os << "\n  },\n  \"benchmarks\": [";
  first = true;
  for (const Result& r : results) {
    os << (first ? "\n" : ",\n");
    os << "    {\n      \"name\": \"" << escape(r.name) << "\",\n"
       << "      \"iterations\": " << r.iterations << ",\n"
       << "      \"real_time\": ";
    write_number(os, r.real_time);
    os << ",\n      \"cpu_time\": ";
    write_number(os, r.cpu_time);
    os << ",\n      \"time_unit\": \"" << escape(r.time_unit) << "\",\n"
       << "      \"counters\": {";
    bool cfirst = true;
    for (const auto& [key, value] : r.counters) {
      os << (cfirst ? "\n" : ",\n") << "        \"" << escape(key) << "\": ";
      write_number(os, value);
      cfirst = false;
    }
    os << "\n      }\n    }";
    first = false;
  }
  os << "\n  ]\n}\n";
  return static_cast<bool>(os);
}

}  // namespace frap::benchjson
