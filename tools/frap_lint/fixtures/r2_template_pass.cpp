// Template-argument lists must never read as relational comparisons.
// Every declaration here used to trip R2 ("lhs compared outside the
// feasible region") because the lexer saw `uint64_t > qlhs_` and friends;
// PR-6 papered over two of them with ad-hoc carve-outs. The scope pass
// marks template-argument tokens instead, so the whole file lints clean
// with no per-site exceptions.
#include <atomic>
#include <utility>
#include <vector>

struct Shard {
  std::atomic<std::uint64_t> qlhs_{0};
  std::atomic<double> lhs_before{0};
  std::atomic<double> lhs_with_task{0};
  std::vector<std::pair<std::uint64_t, double>> lhs_samples;
};

template <typename T>
T roundtrip_lhs(T lhs_value) {
  std::atomic<T> lhs_slot{lhs_value};
  std::vector<std::atomic<T>*> lhs_ptrs;
  return lhs_slot.load();
}
