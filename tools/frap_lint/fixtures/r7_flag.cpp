// Must-flag fixture for R7 seqlock-protocol: each function below breaks
// exactly one leg of the publish/read protocol. Linted under a pretend
// seqlock-home path (src/obs/trace_ring.cpp) by the unit tests, which
// assert the flagged line numbers.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> seq_{0};
std::atomic<std::uint64_t> payload_{0};

// W1: marks odd but never republishes even with release ordering.
void writer_no_publish(std::uint64_t t, std::uint64_t v) {
  seq_.store((t << 1) | 1, std::memory_order_relaxed);  // line 13
  std::atomic_thread_fence(std::memory_order_release);
  payload_.store(v, std::memory_order_relaxed);
  seq_.store((t + 1) << 1, std::memory_order_relaxed);  // relaxed publish!
}

// W2: an empty write section — no payload store between mark and publish.
void writer_no_payload(std::uint64_t t) {
  seq_.store((t << 1) | 1, std::memory_order_relaxed);  // line 21
  std::atomic_thread_fence(std::memory_order_release);
  seq_.store((t + 1) << 1, std::memory_order_release);
}

// W3: payload stores with no release fence after the odd mark.
void writer_no_fence(std::uint64_t t, std::uint64_t v) {
  seq_.store((t << 1) | 1, std::memory_order_relaxed);  // line 28
  payload_.store(v, std::memory_order_relaxed);
  seq_.store((t + 1) << 1, std::memory_order_release);
}

// V1: the first sequence load is relaxed, not acquire.
std::uint64_t reader_relaxed_first() {
  const std::uint64_t s1 = seq_.load(std::memory_order_relaxed);  // line 35
  const std::uint64_t v = payload_.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (seq_.load(std::memory_order_relaxed) != s1) return 0;
  return v;
}

// V2: no acquire fence (and no acquire re-check) before the re-check.
std::uint64_t reader_no_fence() {
  const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
  const std::uint64_t v = payload_.load(std::memory_order_relaxed);
  if (seq_.load(std::memory_order_relaxed) != s1) return 0;  // line 46
  return v;
}

// V3: re-loads the sequence but never compares it to the first read.
std::uint64_t reader_no_compare() {
  const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
  const std::uint64_t v = payload_.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t s2 = seq_.load(std::memory_order_relaxed);  // line 55
  return v + s2 - s1;
}
