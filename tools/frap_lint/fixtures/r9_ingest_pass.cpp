// Must-pass fixture for R9 on the wire-ingest hot path: the shape of
// ArrivalCursor::next and IngestSession::assemble — memcpy unaligned loads
// out of a validated byte span, fixed-stride cursor advance, and scratch
// TaskSpec reuse that clears only previously-touched stages and push_backs
// into a touched-list reserved to the stage width at construction.
// Zero findings expected.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

struct WireScratch {
  std::vector<double> compute;         // sized to num_stages once
  std::vector<std::uint32_t> touched;  // reserved to num_stages once
};

// frap:contract(hotpath)
inline double load_f64(const unsigned char* p) {
  double v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// frap:contract(hotpath)
inline std::uint16_t load_u16(const unsigned char* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

struct Cursor {
  const unsigned char* data;
  std::size_t off;
  std::uint32_t remaining;

  // frap:contract(hotpath)
  bool next(std::size_t* rec) {
    if (remaining == 0) return false;
    *rec = off;
    std::size_t sz = 36;
    if (data[off + 32] == 0) sz += std::size_t{12} * load_u16(data + off + 34);
    off += sz;
    --remaining;
    return true;
  }
};

// frap:contract(hotpath)
void assemble(WireScratch& s, const unsigned char* rec, std::uint32_t n) {
  for (const std::uint32_t j : s.touched) s.compute[j] = 0;
  s.touched.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    const unsigned char* pair = rec + 36 + std::size_t{12} * i;
    std::uint32_t stage;
    std::memcpy(&stage, pair, sizeof stage);
    s.compute[stage] = load_f64(pair + 4);
    s.touched.push_back(stage);  // capacity reserved up front; never grows
  }
}
