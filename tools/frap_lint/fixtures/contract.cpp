// Fixture for the contract grammar itself: malformed contracts become
// unsuppressible bad-contract findings; well-formed ones bind like
// suppressions (trailing to their own line, standalone to the next code
// line, either way covering the whole statement span).

// frap:contract(rounds: conservative-for=maybe)
std::uint64_t bad_role(double v) {  // directive line 6 flags: unknown role
  return 0;
}

// frap:contract(order:)
std::uint64_t empty_rationale() {  // directive line 11: empty rationale
  return 0;
}

// frap:contract(frobnicate)
std::uint64_t unknown_kind() {  // directive line 16: unknown contract kind
  return 0;
}

// A rounds contract bound to a statement that WRAPS across lines still
// covers the call on the continuation line.
std::uint64_t spanning(double very_long_parameter_name) {
  // frap:contract(rounds: conservative-for=admit)
  const std::uint64_t q =
      fixed::quantize_up(very_long_parameter_name + 1.0 +
                         2.0);
  return q;
}
