// Must-flag fixture for R9 on the wire-ingest hot path: the per-record
// copying decode recipe the zero-copy cursor replaced — an owned demand
// vector per record, a type-erased per-record sink, and a same-file
// helper that heap-allocates the decode buffer. Line numbers are
// asserted by the unit tests.
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

// Not annotated itself — contributes a one-level call summary.
double* copy_record(const double* p, std::size_t n) {
  double* out = new double[n];  // line 13: summary for propagation
  for (std::size_t i = 0; i < n; ++i) out[i] = p[i];
  return out;
}

// frap:contract(hotpath)
double decode_record(const double* pairs, std::size_t n) {
  std::vector<double> demands(pairs, pairs + n);  // line 20: owned copy
  std::function<void(double)> sink = [](double) {};  // line 21
  double* owned = copy_record(pairs, n);  // line 22: allocating callee
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sink(demands[i]);
    acc += owned[i];
  }
  delete[] owned;
  return acc;
}
