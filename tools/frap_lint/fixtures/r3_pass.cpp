// R3 must-pass: tolerance-based comparison and integer equality.
namespace util {
bool almost_equal(double a, double b, double rel, double abs);
bool time_close(double a, double b, double tol);
}  // namespace util
bool shape_degenerate(double alpha) {
  return util::almost_equal(alpha, 1.0, 1e-9, 1e-12);
}
bool at_time(double t, double expected) {
  return util::time_close(t, expected, 1e-9);
}
bool integers(int a) { return a == 1; }
bool ordering(double x) { return x <= 1.0; }  // relational, not equality
struct Opt {
  double value() const;
};
bool call_not_member(const Opt& o) { return o.value() == 2; }
bool call_on_right(const Opt& o, int n) { return n == o.value(); }
bool plain_ident(const std::string& value) { return value == "exact"; }
