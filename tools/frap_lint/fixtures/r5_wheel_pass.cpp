// R5 must-pass: timer-wheel internals. Tick arithmetic, Timer::time member
// reads, and occupancy bit-scans merely *look* temporal — none of them
// touch a wall clock, entropy, stdout, or a concurrency primitive, so the
// wheel sits entirely inside the existing determinism carve-outs (no new
// exemption needed for src/sim/). Linted under a pretend path of
// src/sim/timer_wheel.cpp. (Fixtures are lexed, not compiled, so called
// members need no declarations here.)
struct Timer {
  double time = 0;  // exact fire time carried alongside the coarse tick
  unsigned long seq = 0;
};
unsigned long to_tick(double time) {
  return static_cast<unsigned long>(time * 10000.0);  // value use, no call
}
double fire_time(const Timer& t) { return t.time; }  // member, not ::time()
double fire_time_ptr(const Timer* t) { return t->time; }
double wheel_now(const Wheel& w) { return w.time(); }  // member call is fine
int level_of(unsigned long tick, unsigned long cur_tick) {
  unsigned long diff = tick ^ cur_tick;  // bit_width-style level select
  int level = 0;
  while (diff >>= 6) ++level;
  return level;
}
bool slot_occupied(const unsigned long* occupancy, int slot) {
  return (occupancy[slot >> 6] >> (slot & 63)) & 1u;
}
long timer_count = 0;         // identifier merely containing "timer"
long steady_state_ticks = 0;  // "steady" substring is not steady_clock
long clock_skew_model = 0;    // "clock" substring, never a call
double tick_time_of[64];      // temporal-looking array name
bool cancel(Timer& t) { return t.clock(); }  // member named clock is fine
