// Suppression-handling fixture.
double trailing(double c, double deadline) {
  return c / deadline;  // frap-lint: allow(unsafe-division) -- fixture: trailing directive
}
double standalone(double c, double deadline) {
  // frap-lint: allow(unsafe-division) -- fixture: standalone directive
  // whose explanation continues on a second comment line before the code.
  return c / deadline;
}
double missing_reason(double c, double deadline) {
  // frap-lint: allow(unsafe-division)
  return c / deadline;  // stays flagged: directive above lacks a reason
}
double wrong_rule(double c, double deadline) {
  // frap-lint: allow(float-equality) -- fixture: wrong rule name
  return c / deadline;  // stays flagged: directive allows a different rule
}
double unknown_rule(double c, double deadline) {
  // frap-lint: allow(no-such-rule) -- fixture: unknown rule
  return c / deadline;  // stays flagged: directive is malformed
}
