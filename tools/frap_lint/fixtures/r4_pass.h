// R4 must-pass: annotated, private, non-decision, or out-of-scope cases.
#pragma once
struct AdmissionDecision {
  bool admitted = false;  // member variable, not a function
};
class Controller {
 public:
  [[nodiscard]] AdmissionDecision try_admit(int spec);
  [[nodiscard]] bool test(int spec) const;
  void commit(int spec);       // void return: not a decision
  double acceptance() const;   // double return: not auto-flagged
  Controller(bool flag);       // constructor parameter, not a declaration

 private:
  bool internal_check() const;  // private: caller is the class itself
  bool retrying_ = false;
};
[[nodiscard]] bool free_decision(int x);
inline void body() {
  bool ok(free_decision(1));  // local variable inside a function body
  (void)ok;
}
