// Fixture for statement-span suppression binding: a directive bound to
// the first line of a multi-line statement suppresses a finding reported
// on a continuation line of the same statement.
double spans(double deadline, double compute) {
  // frap-lint: allow(unsafe-division) -- covers the whole statement
  const double r = compute /
                   deadline;
  return r;
}

double does_not_leak(double deadline, double compute) {
  // The suppression above must NOT leak into this function: this division
  // flags on line 15.
  const double r = compute /
                   deadline;
  return r;
}
