// Must-pass fixture for R9: the sanctioned hot-path idioms. push_back /
// resize / clear into containers reserved to capacity are allowed (the
// operator-new hook in tests/alloc_steady_state_test.cpp keeps that
// honest at runtime); member `.lock` fields and non-hotpath allocation
// elsewhere in the file are out of scope.
#include <cstdint>
#include <vector>

struct Store {
  std::vector<int> events;
  std::vector<int> scratch;
  std::int64_t total = 0;
};

// Same-file helper with a clean body: calling it from a hotpath is fine.
int clamp(int v) { return v < 0 ? 0 : v; }

// frap:contract(hotpath)
void record(Store& s, int v) {
  s.events.push_back(clamp(v));  // reserved-to-capacity pattern
  s.scratch.clear();
  s.total += v;
}

// Allocation in a function WITHOUT the hotpath contract is not R9's
// business (R9 is opt-in by annotation, unlike the runtime hook).
void rebuild(Store& s, std::size_t n) {
  s.events.reserve(n);
  s.scratch.resize(n);
}
