// R2 must-flag: re-derived admission comparisons on lhs-named values.
struct Region {
  double bound() const;
};
bool admit(double lhs, const Region& r) {
  return lhs <= r.bound();  // line 6: classic re-derivation
}
bool cached(double cached_lhs, double alpha) {
  return cached_lhs < alpha;  // line 9: lhs-named on the left
}
bool reversed(double budget, double lhs_with_task) {
  return budget >= lhs_with_task;  // line 12: lhs-named on the right
}
