// R2 must-pass: decisions routed through the region predicate; ordinary
// comparisons that do not involve lhs-named operands.
struct FeasibleRegion {
  static bool admits_lhs(double lhs, double bound);
  bool admits(double lhs) const;
};
bool admit(double candidate, const FeasibleRegion& r) {
  return r.admits(candidate);
}
bool admit_static(double value, double cap) {
  return FeasibleRegion::admits_lhs(value, cap);  // call, not a comparison
}
bool ordinary(double margin, double threshold) {
  return margin <= threshold;  // no lhs-named operand
}
bool counter(int updates, int interval) { return updates >= interval; }
