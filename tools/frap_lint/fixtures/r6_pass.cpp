// Must-pass fixture for R6: every rounding call is annotated and rounds
// the conservative way for its declared role.
std::uint64_t reserve_delta(double d_hi) {
  // frap:contract(rounds: conservative-for=admit)
  return fixed::quantize_up(d_hi);  // lhs-side, admit: UP over-estimates
}

std::uint64_t floor_delta(double d_lo) {
  // frap:contract(rounds: conservative-for=reject)
  return fixed::quantize_down(d_lo);  // lhs-side, reject: DOWN is a floor
}

std::uint64_t admit_bound(double bound) {
  // frap:contract(rounds: conservative-for=admit)
  return fixed::quantize_down(bound);  // bound-side mirrors the lhs side
}

std::uint64_t reject_bound(double bound) {
  // frap:contract(rounds: conservative-for=reject)
  return fixed::quantize_up(bound);
}

std::uint64_t saturating(std::uint64_t a, std::uint64_t b) {
  // frap:contract(rounds: conservative-for=admit) -- saturation
  // over-estimates on either side, only the annotation is checked
  return fixed::add_sat(a, b);
}

void mentions_are_not_calls() {
  // Prose naming quantize_down without calling it is ignored, as is a
  // bare function-pointer mention:
  auto* fp = &fixed::quantize_up;
  (void)fp;
}
