// R1 must-pass: sanctioned helper routing and benign divisions.
namespace util {
double safe_div(double a, double b);
double safe_inv(double b);
}  // namespace util
double contribution(double compute, double deadline) {
  return util::safe_div(compute, deadline);  // helper call, no raw division
}
double benign(double total, double count) {
  return total / count;  // denominator is neither a deadline nor (1 - U)
}
double scaled(double deadline, double x) {
  return deadline * x / 2.0;  // deadline in the numerator is fine
}
double shifted(double u) {
  return u / (2.0 - u);  // does not match the (1 - ...) shape
}
