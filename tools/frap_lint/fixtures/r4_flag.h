// R4 must-flag: public decision-returning APIs without [[nodiscard]].
// Linted under a pretend path of src/core/<name>.h.
#pragma once
struct AdmissionDecision {
  bool admitted = false;
};
class Controller {
 public:
  AdmissionDecision try_admit(int spec);  // line 9
  bool test(int spec) const;              // line 10
  static bool enabled();                  // line 11

 private:
  int attempts_ = 0;
};
struct Spec {
  bool valid() const;  // line 17: struct default access is public
};
bool free_decision(int x);  // line 19: namespace scope counts as public
