// Must-pass fixture for R9 on the DAG admission fast path: the shape of
// LongPathEvaluator::path_value and GraphAdmissionController::
// try_admit_interned — profile dot products over interned shape data,
// member scratch grown with resize (reserved to capacity after warmup),
// and the sparse commit staged through preallocated push_back buffers.
// Zero findings expected.
#include <cstddef>
#include <cstdint>
#include <vector>

struct ProfileEntry {
  std::uint32_t local;
  std::uint32_t mult;
};

struct Shape {
  std::vector<ProfileEntry> profiles;
  std::vector<std::uint32_t> touched;
};

struct DagAdmitter {
  std::vector<double> w_scratch;
  std::vector<std::uint32_t> commit_stages;
  std::vector<double> commit_values;
  std::uint64_t admits = 0;

  // frap:contract(hotpath)
  double path_value(const Shape& shape, const double* w) {
    double best = 0;
    for (const auto& e : shape.profiles) {
      const double v = static_cast<double>(e.mult) * w[e.local];
      if (v > best) best = v;
    }
    return best;
  }

  // frap:contract(hotpath)
  bool try_admit_interned(const Shape& shape, const double* f_terms) {
    if (w_scratch.size() < shape.touched.size()) {
      w_scratch.resize(shape.touched.size());  // capacity growth, then reuse
    }
    commit_stages.clear();
    commit_values.clear();
    for (std::size_t t = 0; t < shape.touched.size(); ++t) {
      w_scratch[t] = f_terms[shape.touched[t]];
      commit_stages.push_back(shape.touched[t]);
      commit_values.push_back(w_scratch[t]);
    }
    const bool ok = path_value(shape, w_scratch.data()) <= 1.0;
    if (ok) ++admits;
    return ok;
  }
};
