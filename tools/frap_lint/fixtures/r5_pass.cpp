// R5 must-pass: seeded Rng, member `.time()` access, buffer formatting.
// Linted under a pretend path of src/sched/<name>.cpp. (Fixtures are lexed,
// not compiled, so called members need no declarations here.)
struct Rng {
  explicit Rng(unsigned long seed);
  double uniform01();
};
double sample(Rng& rng) { return rng.uniform01(); }
double when(const Event& e) { return e.time(); }  // member, not wall clock
double late(const Event* e) { return e->time(); }
int snprintf_like(char* buf, unsigned long n, const char* fmt);
void format(char* buf) { (void)snprintf_like(buf, 16, "x"); }
struct Clock {
  long time_point = 0;  // identifier merely containing "time"
};
long thread_count = 0;  // identifier merely containing "thread"
struct Task {
  int mutex_rank;  // not the bare token
};
double drain(Worker& w) { return w.atomic(); }  // member, not std::atomic
