// Must-flag fixture for R9 hotpath-alloc. Line numbers are asserted by
// the unit tests.
#include <memory>
#include <mutex>
#include <vector>

std::mutex m_;

// Not annotated itself — contributes a one-level call summary.
int* slow_helper(int n) {
  return new int[n];  // line 11: summary for the propagation check
}

// frap:contract(hotpath)
int hot_direct(int n) {
  std::vector<int> scratch(static_cast<std::size_t>(n));  // line 16
  std::lock_guard<std::mutex> g(m_);                      // line 17
  auto p = std::make_unique<int>(n);                      // line 18
  if (n < 0) throw n;                                     // line 19
  return scratch.empty() ? *p : scratch.front();
}

// frap:contract(hotpath)
int hot_indirect(int n) {
  int* p = slow_helper(n);  // line 25: calls an allocating helper
  const int v = *p;
  delete[] p;
  return v;
}
