// Must-flag fixture for R9 on the DAG admission fast path: the
// pre-interning recipe — a per-attempt snapshot vector, a type-erased
// completion callback, and a same-file helper that heap-allocates the
// weight array. Line numbers are asserted by the unit tests.
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

struct Tracker {
  double utilization(std::size_t k) const { return 0.1 * double(k); }
  std::size_t num_stages() const { return 8; }
};

// Not annotated itself — contributes a one-level call summary.
double* snapshot_weights(const Tracker& t) {
  return new double[t.num_stages()];  // line 17: summary for propagation
}

// frap:contract(hotpath)
bool rewalk_admit(const Tracker& t, std::size_t n) {
  std::vector<double> u(t.num_stages());  // line 22: per-attempt snapshot
  for (std::size_t k = 0; k < u.size(); ++k) u[k] = t.utilization(k);
  std::function<double(double)> f = [](double x) { return x; };  // line 24
  double* w = snapshot_weights(t);  // line 25: allocating same-file callee
  double acc = 0;
  for (std::size_t k = 0; k < n && k < u.size(); ++k) acc += f(w[k] + u[k]);
  delete[] w;
  return acc <= 1.0;
}
