// Must-flag fixture for R6 rounding-direction. Line numbers are asserted
// by tests/frap_lint_test.cpp.
std::uint64_t unannotated_lhs(double lhs) {
  return fixed::quantize_up(lhs);  // line 4: no rounds contract at all
}

std::uint64_t unannotated_sat(std::uint64_t a, std::uint64_t b) {
  return fixed::add_sat(a, b);  // line 8: add_sat needs a contract too
}

// Seeded soundness defect: a copy of the guard's reservation path with
// the rounding flipped. The delta is lhs-side and the decision admits, so
// it must round UP — rounding DOWN admits infeasible load when the true
// delta straddles a quantum boundary.
std::uint64_t seeded_defect(double d_hi) {
  // frap:contract(rounds: conservative-for=admit)
  const std::uint64_t q_hi = fixed::quantize_down(d_hi);  // line 17: wrong
  return q_hi;
}

std::uint64_t bound_defect(double bound) {
  // frap:contract(rounds: conservative-for=reject)
  return fixed::quantize_down(bound);  // line 23: bounds round UP to reject
}
