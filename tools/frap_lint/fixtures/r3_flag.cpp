// R3 must-flag: raw floating-point equality against literals.
bool shape_degenerate(double alpha) {
  return alpha == 1.0;  // line 3
}
bool nonzero(double x) {
  return x != 0.5;  // line 6
}
bool literal_left(double y) {
  return 2.5 == y;  // line 9
}
bool signed_literal(double z) {
  return z == -1.25;  // line 12
}
struct Key {
  double value;
  unsigned long seq;
};
bool key_eq(const Key& a, const Key& b) {
  return a.value == b.value;  // line 19
}
bool key_ne(const Key& a, const Key& b) {
  return a.value != b.value;  // line 22
}
bool against_scalar(const Key& a, double x) {
  return x == a.value;  // line 25
}
