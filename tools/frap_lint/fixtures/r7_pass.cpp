// Must-pass fixture for R7: a textbook seqlock writer and reader. Every
// ordering also carries its R8 contract so the file lints fully clean
// under the pretend seqlock-home path.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> seq_{0};
std::atomic<std::uint64_t> payload_{0};

void writer(std::uint64_t t, std::uint64_t v) {
  // frap:contract(order: relaxed odd mark; the release fence below is
  // what orders it before the payload stores)
  seq_.store((t << 1) | 1, std::memory_order_relaxed);
  // frap:contract(order: release fence pairs with the reader's acquire
  // fence; payload stores cannot sink above the odd mark)
  std::atomic_thread_fence(std::memory_order_release);
  // frap:contract(order: relaxed payload store inside the seqlock bracket)
  payload_.store(v, std::memory_order_relaxed);
  // frap:contract(order: release even publish pairs with the reader's
  // acquire first load)
  seq_.store((t + 1) << 1, std::memory_order_release);
}

std::uint64_t reader() {
  // frap:contract(order: acquire pairs with the writer's release publish)
  const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
  // frap:contract(order: relaxed payload read; the bracket certifies it)
  const std::uint64_t v = payload_.load(std::memory_order_relaxed);
  // frap:contract(order: acquire fence orders the payload reads before
  // the re-check; pairs with the writer's release fence)
  std::atomic_thread_fence(std::memory_order_acquire);
  // frap:contract(order: relaxed re-check; the fence above ordered it)
  if (seq_.load(std::memory_order_relaxed) != s1) return 0;
  return v;
}

// A function that merely reads the sequence once (no payload in between)
// is not a seqlock reader and must not trip the protocol checks.
std::uint64_t peek() {
  // frap:contract(order: relaxed; advisory progress probe only)
  return seq_.load(std::memory_order_relaxed);
}
