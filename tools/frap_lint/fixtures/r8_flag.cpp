// Must-flag fixture for R8 memory-order-audit. Under a carve-out path
// (src/service/...) only the uncontracted orderings flag; under any other
// src/ path every raw memory_order flags regardless of contracts.
#include <atomic>

std::atomic<int> counter_{0};

int read_counter() {
  // frap:contract(order: relaxed; the tally only needs atomicity)
  return counter_.load(std::memory_order_relaxed);  // line 10: contracted
}

void bump() {
  counter_.fetch_add(1, std::memory_order_relaxed);  // line 14: bare
}

void publish() {
  counter_.store(2, std::memory_order_release);  // line 18: bare
}
