// R5 must-flag: ambient entropy, wall clocks, stdout in library code.
// Linted under a pretend path of src/sched/<name>.cpp.
int seed_from_entropy();
int bad_entropy() {
  return seed_from_entropy() + rand();  // line 5
}
void bad_device() {
  auto r = random_device_marker();  // placeholder; real match below
}
int random_device;  // line 10: std::random_device spelled anywhere
long bad_clock() {
  return time(nullptr);  // line 12
}
int random_device_marker();
void bad_stdout(const char* msg) {
  printf("%s", msg);  // line 16
}
// Concurrency primitives are banned outside src/service/ and
// metrics/counters.h (which holds the sanctioned atomics).
int mutex;  // line 20
int atomic;  // line 21
void bad_spawn() {
  thread(0);  // line 23
}
// Chrono wall clocks are banned everywhere in src/ except the one
// sanctioned read behind the obs::Clock seam (src/obs/clock.cpp).
int steady_clock;  // line 27
