// Must-pass fixture for R8: every ordering decision carries its
// rationale, including one whose contract wraps across comment lines.
#include <atomic>

std::atomic<int> counter_{0};
std::atomic<bool> ready_{false};

int read_counter() {
  // frap:contract(order: relaxed; the tally only needs atomicity)
  return counter_.load(std::memory_order_relaxed);
}

void bump() {
  // frap:contract(order: relaxed RMW; concurrent bumps only need
  // atomicity, the reader tolerates any interleaving and conservation
  // is asserted only after producers quiesce)
  counter_.fetch_add(1, std::memory_order_relaxed);
}

void publish() {
  // frap:contract(order: release pairs with wait()'s acquire load)
  ready_.store(true, std::memory_order_release);
}

bool wait() {
  // frap:contract(order: acquire pairs with publish()'s release store)
  return ready_.load(std::memory_order_acquire);
}

int no_explicit_order() {
  // Defaulted (seq_cst) operations carry no raw memory_order token and
  // are out of R8's scope — the rule audits explicit choices only.
  return counter_.load();
}
