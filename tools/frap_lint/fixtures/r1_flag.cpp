// R1 must-flag: raw divisions by a deadline and by (1 - U)-shaped terms.
double contribution(double compute, double deadline) {
  return compute / deadline;  // line 3: deadline division
}
double member_deadline(double c, const struct S* s);
double delay(double u) {
  return u * (1.0 - u / 2.0) / (1.0 - u);  // line 7: (1 - U) denominator
}
double parenthesized(double c, double spec_deadline_x) {
  return c / (2.0 * spec_deadline_x);  // line 10: deadline inside parens
}
