// R5 atomic idioms (ISSUE 6): the lock-free admission guard's vocabulary —
// CAS retry loops, saturating fetch_add, seqlock snapshot reads — must lint
// clean under the src/service/ concurrency carve-out. Linted a second time
// under src/sched/ where only the primitive declarations (the bare `atomic`
// / `mutex` tokens) flag; every member access stays clean in both scopes.
struct Guard {
  std::atomic<unsigned long long> qsum;
  std::atomic<unsigned long long> seq;
  std::mutex fallback;
};
bool try_reserve(Guard& g, unsigned long long want, unsigned long long cap) {
  unsigned long long cur = g.qsum.load();  // member access, never flags
  while (cur + want < cap) {
    if (g.qsum.compare_exchange_weak(cur, cur + want)) return true;
  }
  return false;
}
void reconcile(Guard& g, unsigned long long delta) {
  g.seq.fetch_add(1);  // seqlock write begins: readers see an odd count
  (void)g.qsum.fetch_add(delta);
  g.seq.fetch_add(1);
}
unsigned long long snapshot(const Guard& g) {
  const unsigned long long s1 = g.seq.load();
  const unsigned long long v = g.qsum.load();
  return (s1 & 1UL) != 0UL ? 0UL : v;  // torn read: caller must retry
}
