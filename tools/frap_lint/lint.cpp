#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>

#include "lexer.h"
#include "scope.h"

namespace frap::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule names and file scoping.

constexpr const char* kUnsafeDivision = "unsafe-division";       // R1
constexpr const char* kRederivedAdmission = "rederived-admission";  // R2
constexpr const char* kFloatEquality = "float-equality";         // R3
constexpr const char* kMissingNodiscard = "missing-nodiscard";   // R4
constexpr const char* kNondeterminism = "nondeterminism";        // R5
constexpr const char* kRoundingDirection = "rounding-direction";  // R6
constexpr const char* kSeqlockProtocol = "seqlock-protocol";     // R7
constexpr const char* kMemoryOrderAudit = "memory-order-audit";  // R8
constexpr const char* kHotpathAlloc = "hotpath-alloc";           // R9
constexpr const char* kBadSuppression = "bad-suppression";
constexpr const char* kBadContract = "bad-contract";

bool starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}
bool ends_with(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.substr(s.size() - p.size()) == p;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return lower(haystack).find(lower(needle)) != std::string::npos;
}

// R1: files allowed to spell the guarded divisions out directly.
bool r1_sanctioned(std::string_view f) {
  return f == "src/core/feasible_region.h" ||
         f == "src/core/feasible_region.cpp" || f == "src/util/math.h";
}

// R2: the single home of the admission comparison.
bool r2_sanctioned(std::string_view f) {
  return f == "src/core/feasible_region.h";
}

// R4 only audits the core public headers.
bool r4_in_scope(std::string_view f) {
  return starts_with(f, "src/core/") && ends_with(f, ".h");
}

// R5 only audits library code; executables (bench/examples/tests) may print
// and measure wall time freely. util/rng.* is the sanctioned RNG home.
bool r5_in_scope(std::string_view f) {
  return starts_with(f, "src/") && !starts_with(f, "src/util/rng.");
}

// The concurrency half of R5 additionally exempts the sharded admission
// service (threads are its whole point), the atomic counters it exports,
// and the observability layer (the lock-free trace ring is atomics by
// design); all still answer to the entropy/wall-clock/stdout checks, so
// even concurrent code stays replayable and silent.
bool r5_concurrency_exempt(std::string_view f) {
  return starts_with(f, "src/service/") || starts_with(f, "src/obs/") ||
         f == "src/metrics/counters.h";
}

// The wall-clock half of R5 exempts exactly one file: the obs::Clock seam's
// monotonic_clock() implementation. Every other line of src/ receives time
// through that seam (or sim::Simulator), which is what keeps traced runs
// replayable — see docs/static_analysis.md.
bool r5_clock_exempt(std::string_view f) {
  return f == "src/obs/clock.cpp";
}

// R6 audits every consumer of the fixed-point quantizers; the definitions
// themselves (and the property tests that exercise both directions on
// purpose) live in core/fixed_point.h, which is exempt.
bool r6_in_scope(std::string_view f) {
  return starts_with(f, "src/") && f != "src/core/fixed_point.h";
}

// R7 audits exactly the two seqlock homes.
bool r7_in_scope(std::string_view f) {
  return f == "src/service/atomic_admission.h" ||
         f == "src/service/atomic_admission.cpp" ||
         f == "src/obs/trace_ring.h" || f == "src/obs/trace_ring.cpp";
}

// R8 reuses the R5 concurrency carve-out: inside it orderings need a
// rationale contract, outside it they are banned outright.
bool r8_in_scope(std::string_view f) { return starts_with(f, "src/"); }

// ---------------------------------------------------------------------------
// Token helpers. All rules run over `sig`, the comment-free token view
// (`Tokens` comes from scope.h).

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}
bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}

// Skips a balanced (...) / [...] / {...} group; `i` indexes the opener.
// Returns the index one past the closer (or toks.size() when unbalanced).
std::size_t skip_balanced(const Tokens& toks, std::size_t i) {
  const std::string& open = toks[i].text;
  const std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) ++depth;
    if (is_punct(toks[i], close) && --depth == 0) return i + 1;
  }
  return toks.size();
}

// Is the numeric literal exactly one? (1, 1., 1.0, 1.00, 1e0, ...)
bool is_one(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  // frap-lint: allow(float-equality) -- classifying the literal token
  // itself: strtod of "1"/"1.0"/"1e0" is exactly 1.0 by construction.
  return std::strtod(t.text.c_str(), nullptr) == 1.0;
}

// ---------------------------------------------------------------------------
// R1 — unsafe-division.
//
// Flags `/` whose denominator is (a) a parenthesized expression of the
// shape (1 - ...), i.e. the 1/(1−U) family that saturates as U -> 1, or
// (b) a primary expression naming a deadline (any identifier containing
// "deadline", case-insensitive) — divisions that must instead route through
// the saturation-safe helpers (util::safe_div / safe_inv, stage_delay_factor,
// FeasibleRegion) so a zero/negative denominator degrades to +inf instead
// of UB-adjacent garbage that an admission test then trusts.
void rule_unsafe_division(const std::string& file, const Tokens& sig,
                          std::vector<Finding>& out) {
  if (r1_sanctioned(file)) return;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (!is_punct(sig[i], "/") && !is_punct(sig[i], "/=")) continue;
    std::size_t j = i + 1;
    if (j >= sig.size()) break;
    if (is_punct(sig[j], "(")) {
      const std::size_t end = skip_balanced(sig, j);
      // Shape test: the group starts `(1 -`.
      if (j + 2 < end && is_one(sig[j + 1]) && is_punct(sig[j + 2], "-")) {
        out.push_back({file, sig[i].line, kUnsafeDivision,
                       "division by a (1 - ...) denominator; use the "
                       "saturation-safe helpers (stage_delay_factor, "
                       "FeasibleRegion, util::safe_div) or suppress with a "
                       "reason"});
      }
      for (std::size_t k = j + 1; k + 1 < end; ++k) {
        if (is_ident(sig[k]) && contains_ci(sig[k].text, "deadline")) {
          out.push_back({file, sig[i].line, kUnsafeDivision,
                         "division by deadline '" + sig[k].text +
                             "'; route through util::safe_div/safe_inv so a "
                             "non-positive deadline rejects instead of "
                             "corrupting the admission arithmetic"});
          break;
        }
      }
      i = end - 1;
      continue;
    }
    // Unparenthesized primary: identifier chain with optional call suffix.
    bool flagged = false;
    while (j < sig.size()) {
      if (is_ident(sig[j])) {
        if (!flagged && contains_ci(sig[j].text, "deadline")) {
          out.push_back({file, sig[j].line, kUnsafeDivision,
                         "division by deadline '" + sig[j].text +
                             "'; route through util::safe_div/safe_inv so a "
                             "non-positive deadline rejects instead of "
                             "corrupting the admission arithmetic"});
          flagged = true;
        }
        ++j;
      } else if (is_punct(sig[j], "::") || is_punct(sig[j], ".") ||
                 is_punct(sig[j], "->")) {
        ++j;
      } else if (is_punct(sig[j], "(") || is_punct(sig[j], "[")) {
        j = skip_balanced(sig, j);
      } else {
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R2 — rederived-admission.
//
// Flags relational comparisons (<=, <, >=, >) where either primary operand
// names an LHS (identifier containing "lhs", case-insensitive). PR 1's bug
// class: three code paths each spelling `lhs <= bound` drifted on boundary
// ties; FeasibleRegion::admits()/admits_lhs() is now the single predicate.
// The scope pass marks template argument lists so `std::atomic<...> qlhs_`
// is never misread as a comparison against an lhs-named operand.
void rule_rederived_admission(const std::string& file, const Tokens& sig,
                              const ScopeInfo& scope,
                              std::vector<Finding>& out) {
  if (r2_sanctioned(file)) return;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];
    if (!(is_punct(t, "<=") || is_punct(t, ">=") || is_punct(t, "<") ||
          is_punct(t, ">")))
      continue;
    if (scope.in_template_args[i]) continue;  // type syntax, not a compare
    bool lhs_named = false;
    // Left operand: walk back over a call/index suffix and the id-chain.
    if (i > 0) {
      std::size_t k = i - 1;
      // Balance back over trailing (...) / [...] groups.
      while (is_punct(sig[k], ")") || is_punct(sig[k], "]")) {
        const std::string close = sig[k].text;
        const std::string open = close == ")" ? "(" : "[";
        int depth = 0;
        while (true) {
          if (is_punct(sig[k], close)) ++depth;
          if (is_punct(sig[k], open) && --depth == 0) break;
          if (k == 0) break;
          --k;
        }
        if (k == 0) break;
        --k;
      }
      while (true) {
        if (is_ident(sig[k]) && contains_ci(sig[k].text, "lhs"))
          lhs_named = true;
        if (k == 0) break;
        const Token& p = sig[k - 1];
        if (is_ident(sig[k]) &&
            (is_punct(p, "::") || is_punct(p, ".") || is_punct(p, "->"))) {
          if (k < 2) break;
          k -= 2;
        } else {
          break;
        }
      }
    }
    // Right operand: first primary expression.
    std::size_t j = i + 1;
    while (j < sig.size() &&
           (is_punct(sig[j], "-") || is_punct(sig[j], "+") ||
            is_punct(sig[j], "!")))
      ++j;
    while (j < sig.size()) {
      if (is_ident(sig[j])) {
        if (contains_ci(sig[j].text, "lhs")) lhs_named = true;
        ++j;
      } else if (is_punct(sig[j], "::") || is_punct(sig[j], ".") ||
                 is_punct(sig[j], "->")) {
        ++j;
      } else if (is_punct(sig[j], "(") || is_punct(sig[j], "[")) {
        j = skip_balanced(sig, j);
      } else {
        break;
      }
    }
    if (lhs_named) {
      out.push_back({file, t.line, kRederivedAdmission,
                     "re-derived admission comparison on an lhs value; call "
                     "FeasibleRegion::admits()/admits_lhs() so every "
                     "decision path agrees on boundary ties"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3 — float-equality.
//
// Flags ==/!= with a floating-point literal operand (either side, allowing
// a unary sign). Exact comparison against a computed double is the sharp-
// threshold failure mode; util::almost_equal / util::time_close are the
// sanctioned comparators.
//
// Also flags ==/!= where an operand is a `.value` member access: the tree's
// known float-typed `.value` is the dispatch key (sched/priority.h), whose
// comparators are exactly the place a well-meaning epsilon would corrupt the
// deterministic total order. Comparing such a member exactly is legal ONLY
// under a documented copied-bits contract, so the comparison must carry a
// suppression stating that contract — the rule exists to make the contract
// visible, not to ban the compare. A `value` followed by `(` is a call
// (e.g. optional::value()), not a member read, and plain identifiers named
// `value` (CLI string parsing and the like) are out of scope.
void rule_float_equality(const std::string& file, const Tokens& sig,
                         std::vector<Finding>& out) {
  // True when the token chain starting at `j` (a primary expression:
  // identifiers, scope/member punctuation, balanced groups) reads a member
  // named `value`.
  auto chain_reads_value_member = [&](std::size_t j) {
    bool reads = false;
    while (j < sig.size()) {
      if (is_punct(sig[j], ".") || is_punct(sig[j], "->")) {
        if (j + 1 < sig.size() && is_ident(sig[j + 1], "value") &&
            (j + 2 >= sig.size() || !is_punct(sig[j + 2], "("))) {
          reads = true;
        }
        ++j;
      } else if (is_ident(sig[j]) || is_punct(sig[j], "::")) {
        ++j;
      } else if (is_punct(sig[j], "(") || is_punct(sig[j], "[")) {
        j = skip_balanced(sig, j);
      } else {
        break;
      }
    }
    return reads;
  };

  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (!is_punct(sig[i], "==") && !is_punct(sig[i], "!=")) continue;
    bool flt = false;
    if (i > 0 && sig[i - 1].kind == TokKind::kNumber && sig[i - 1].is_float)
      flt = true;
    std::size_t j = i + 1;
    while (j < sig.size() &&
           (is_punct(sig[j], "-") || is_punct(sig[j], "+")))
      ++j;
    if (j < sig.size() && sig[j].kind == TokKind::kNumber &&
        sig[j].is_float)
      flt = true;
    if (flt) {
      out.push_back({file, sig[i].line, kFloatEquality,
                     "raw floating-point " + sig[i].text +
                         " against a literal; use util::almost_equal / "
                         "util::time_close (or suppress with the reason the "
                         "exact compare is sound)"});
      continue;
    }

    // `.value` member-access operand: left side is `... . value ==`, right
    // side is a primary-expression chain ending in `. value`.
    bool value_member = false;
    if (i >= 2 && is_ident(sig[i - 1], "value") &&
        (is_punct(sig[i - 2], ".") || is_punct(sig[i - 2], "->"))) {
      value_member = true;
    }
    if (!value_member && chain_reads_value_member(j)) value_member = true;
    if (value_member) {
      out.push_back({file, sig[i].line, kFloatEquality,
                     "exact " + sig[i].text +
                         " on a `.value` member (dispatch keys are float-"
                         "typed); either compare via util::almost_equal / "
                         "util::time_close, or suppress citing the exact-tie "
                         "contract that makes bitwise comparison sound"});
    }
  }
}

// ---------------------------------------------------------------------------
// R4 — missing-nodiscard.
//
// In src/core/*.h, a public function (namespace scope, or public class
// scope) whose return type is a decision type must carry [[nodiscard]]:
// dropping an admission decision on the floor is how infeasible tasks walk
// in. Heuristic single-token return types only; compound returns (e.g.
// const std::vector<AdmissionDecision>&) are annotated by hand and kept
// honest by review, not by this rule.
bool is_decision_type(const Token& t) {
  return is_ident(t, "bool") || is_ident(t, "AdmissionDecision") ||
         is_ident(t, "AdaptiveDecision");
}

void rule_missing_nodiscard(const std::string& file, const Tokens& sig,
                            std::vector<Finding>& out) {
  if (!r4_in_scope(file)) return;

  enum class Scope { kNamespace, kPublic, kPrivate, kOpaque };
  std::vector<Scope> scopes;  // empty = file scope (public)
  Scope pending = Scope::kOpaque;
  bool pending_set = false;

  auto current = [&] {
    return scopes.empty() ? Scope::kNamespace : scopes.back();
  };
  auto decl_position = [&] {
    const Scope s = current();
    return s == Scope::kNamespace || s == Scope::kPublic;
  };

  bool at_decl_start = true;  // after { } ; or an access-specifier colon
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];

    if (is_ident(t, "namespace")) {
      pending = Scope::kNamespace;
      pending_set = true;
      continue;
    }
    if (is_ident(t, "class") || is_ident(t, "struct")) {
      // `enum class` was already claimed by the enum branch below.
      pending = is_ident(t, "struct") ? Scope::kPublic : Scope::kPrivate;
      pending_set = true;
      continue;
    }
    if (is_ident(t, "enum")) {
      pending = Scope::kOpaque;
      pending_set = true;
      if (i + 1 < sig.size() && (is_ident(sig[i + 1], "class") ||
                                 is_ident(sig[i + 1], "struct")))
        ++i;
      continue;
    }
    if (is_punct(t, ";")) {
      pending_set = false;  // forward declaration or plain statement
      at_decl_start = true;
      continue;
    }
    if (is_punct(t, "{")) {
      scopes.push_back(pending_set ? pending : Scope::kOpaque);
      pending_set = false;
      at_decl_start = true;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      at_decl_start = true;
      continue;
    }
    if ((is_ident(t, "public") || is_ident(t, "private") ||
         is_ident(t, "protected")) &&
        i + 1 < sig.size() && is_punct(sig[i + 1], ":")) {
      if (!scopes.empty())
        scopes.back() =
            is_ident(t, "public") ? Scope::kPublic : Scope::kPrivate;
      ++i;
      at_decl_start = true;
      continue;
    }

    if (!at_decl_start) continue;
    if (!decl_position()) {
      at_decl_start = false;
      continue;
    }

    // Parse one would-be declaration: attributes + specifiers + return type
    // + name + '('.
    std::size_t j = i;
    bool has_nodiscard = false;
    bool is_friend = false;
    while (j < sig.size()) {
      if (is_punct(sig[j], "[[")) {
        std::size_t k = j;
        while (k < sig.size() && !is_punct(sig[k], "]]")) {
          if (is_ident(sig[k], "nodiscard")) has_nodiscard = true;
          ++k;
        }
        j = k + 1;
        continue;
      }
      if (is_ident(sig[j], "static") || is_ident(sig[j], "inline") ||
          is_ident(sig[j], "constexpr") || is_ident(sig[j], "consteval") ||
          is_ident(sig[j], "virtual") || is_ident(sig[j], "explicit") ||
          is_ident(sig[j], "extern") || is_ident(sig[j], "friend")) {
        if (is_ident(sig[j], "friend")) is_friend = true;
        ++j;
        continue;
      }
      break;
    }
    if (!is_friend && j + 2 < sig.size() && is_decision_type(sig[j]) &&
        is_ident(sig[j + 1]) && !is_ident(sig[j + 1], "operator") &&
        is_punct(sig[j + 2], "(") && !has_nodiscard) {
      out.push_back({file, sig[j + 1].line, kMissingNodiscard,
                     "public decision-returning API '" + sig[j + 1].text +
                         "' lacks [[nodiscard]]; a dropped decision admits "
                         "by accident"});
    }
    at_decl_start = false;
  }
}

// ---------------------------------------------------------------------------
// R5 — nondeterminism.
//
// Library code must be replayable bit-for-bit from an explicit seed and must
// not write to stdout (sinks take an ostream&). Flags ambient entropy
// (rand/srand/drand48/random_device), wall clocks (time(), clock(),
// chrono::*_clock — except src/obs/clock.cpp, the one sanctioned read
// behind the obs::Clock seam), stdout writes (cout/printf/puts/putchar),
// and — outside src/service/, src/obs/ and metrics/counters.h —
// concurrency primitives (thread, atomic, mutex, condition_variable, ...).
void rule_nondeterminism(const std::string& file, const Tokens& sig,
                         std::vector<Finding>& out) {
  if (!r5_in_scope(file)) return;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];
    if (!is_ident(t)) continue;
    const bool member_access =
        i > 0 && (is_punct(sig[i - 1], ".") || is_punct(sig[i - 1], "->"));

    if (t.text == "rand" || t.text == "srand" || t.text == "drand48" ||
        t.text == "random_device") {
      if (!member_access)
        out.push_back({file, t.line, kNondeterminism,
                       "'" + t.text +
                           "' in library code; all randomness must flow "
                           "through an explicitly seeded util::Rng"});
      continue;
    }
    if ((t.text == "time" || t.text == "clock") && !member_access &&
        !r5_clock_exempt(file) && i + 1 < sig.size() &&
        is_punct(sig[i + 1], "(")) {
      out.push_back({file, t.line, kNondeterminism,
                     "wall-clock '" + t.text +
                         "()' in library code; simulated time comes from "
                         "sim::Simulator::now()"});
      continue;
    }
    if ((t.text == "system_clock" || t.text == "steady_clock" ||
         t.text == "high_resolution_clock") &&
        !r5_clock_exempt(file)) {
      out.push_back({file, t.line, kNondeterminism,
                     "chrono wall clock '" + t.text +
                         "' in library code; timing belongs in bench/, "
                         "simulated time in sim::Simulator"});
      continue;
    }
    if (t.text == "cout" || t.text == "printf" || t.text == "puts" ||
        t.text == "putchar") {
      if (!member_access)
        out.push_back({file, t.line, kNondeterminism,
                       "stdout write ('" + t.text +
                           "') in library code; report through an ostream& "
                           "parameter or metrics counters"});
      continue;
    }
    if (t.text == "thread" || t.text == "jthread" || t.text == "async" ||
        t.text == "atomic" || t.text == "atomic_flag" || t.text == "mutex" ||
        t.text == "shared_mutex" || t.text == "recursive_mutex" ||
        t.text == "timed_mutex" || t.text == "condition_variable" ||
        t.text == "condition_variable_any") {
      if (!member_access && !r5_concurrency_exempt(file))
        out.push_back({file, t.line, kNondeterminism,
                       "concurrency primitive '" + t.text +
                           "' in library code; threads live in "
                           "src/service/ (metrics/counters.h holds the "
                           "sanctioned atomics)"});
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// R6 — rounding-direction.
//
// Every quantize_up/quantize_down/add_sat call site must carry a
// `frap:contract(rounds: conservative-for=<admit|reject>)` annotation, and
// the direction must be conservative for the declared role. The invariant
// (core/fixed_point.h, docs/admission_service.md): values on the LHS of the
// admission inequality round UP when the decision admits (overestimating
// load can only reject) and DOWN when it rejects conservatively
// reconstructs a floor; bound-side values are the mirror image. A
// misdirected rounding silently admits infeasible load — the sharp-
// threshold failure mode.
//
// Side detection is lexical: a call is "bound-side" when an identifier
// containing "bound" appears among its arguments or as the assignment
// target of the enclosing statement; otherwise it is "lhs-side" (loads,
// deltas, floors of committed LHS). add_sat saturates toward kSaturated —
// an over-estimate on either side — so it is direction-neutral and only
// the annotation is required.
void rule_rounding_direction(const std::string& file, const Tokens& sig,
                             const ScopeInfo& scope,
                             std::vector<Finding>& out) {
  if (!r6_in_scope(file)) return;
  for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
    const Token& t = sig[i];
    if (!is_ident(t)) continue;
    const bool up = t.text == "quantize_up";
    const bool down = t.text == "quantize_down";
    const bool sat = t.text == "add_sat";
    if (!up && !down && !sat) continue;
    if (!is_punct(sig[i + 1], "(")) continue;  // mention, not a call

    const Contract* c =
        scope.find_contract(ContractKind::kRounds, t.line, i);
    if (c == nullptr) {
      out.push_back({file, t.line, kRoundingDirection,
                     "unannotated fixed-point rounding '" + t.text +
                         "'; declare its role with `// frap:contract(rounds: "
                         "conservative-for=<admit|reject>)` so the direction "
                         "is machine-checked (docs/static_analysis.md#r6)"});
      continue;
    }
    if (sat) continue;  // saturation over-estimates either side: neutral

    // Bound-side iff "bound" names an argument or the assignment target.
    bool bound_side = false;
    const std::size_t end = skip_balanced(sig, i + 1);
    for (std::size_t k = i + 2; k + 1 < end; ++k)
      if (is_ident(sig[k]) && contains_ci(sig[k].text, "bound"))
        bound_side = true;
    const std::size_t stmt = scope.statement_of[i];
    std::size_t eq = sig.size();
    for (std::size_t k = i; k > 0 && scope.statement_of[k - 1] == stmt; --k)
      if (is_punct(sig[k - 1], "=")) eq = k - 1;
    if (eq != sig.size())
      for (std::size_t k = eq; k > 0 && scope.statement_of[k - 1] == stmt;
           --k)
        if (is_ident(sig[k - 1]) && contains_ci(sig[k - 1].text, "bound"))
          bound_side = true;

    // conservative-for=admit: lhs UP, bound DOWN. reject: the mirror.
    const bool admit = c->payload == "admit";
    const bool want_up = bound_side != admit;  // lhs+admit or bound+reject
    if (up != want_up) {
      out.push_back(
          {file, t.line, kRoundingDirection,
           "'" + t.text + "' on a " +
               (bound_side ? std::string("bound-side")
                           : std::string("lhs-side")) +
               " value declared conservative-for=" + c->payload +
               " rounds the wrong way: " +
               (bound_side ? "bounds round DOWN for admit / UP for reject"
                           : "lhs values round UP for admit / DOWN for "
                             "reject") +
               ", else quantization error admits infeasible load"});
    }
  }
}

// ---------------------------------------------------------------------------
// R7 — seqlock-protocol.
//
// In the seqlock homes (service/atomic_admission.*, obs/trace_ring.*) the
// publish/read protocol is checked structurally, per function. A "seq op"
// is an atomic member call (.store/.load/.fetch_add/.compare_exchange_*)
// whose object chain names a sequence word (identifier containing "seq").
//
// Writer (a function whose first seq write marks the word odd — a store/CAS
// with `| 1` in its arguments, or the first of two fetch_adds):
//   W1  a later seq write must republish with release (or acq_rel) ordering;
//   W2  at least one payload store must sit between the odd mark and that
//       even publish (an empty write section means the payload is published
//       unprotected elsewhere);
//   W3  a release fence (or a seq_cst odd mark) must separate the odd mark
//       from the first payload store, else the payload can sink above it.
// Reader (two+ seq loads with payload loads in between):
//   V1  the first seq load must be acquire — it pairs with the even publish;
//   V2  an acquire fence (or an acquire re-check load) must separate the
//       payload loads from the re-check;
//   V3  the re-check statement must actually compare (== / !=) so torn
//       reads are discarded, not just observed.
struct AtomicOp {
  std::size_t idx = 0;        // sig index of the member name
  int line = 0;
  std::string member;         // store / load / fetch_add / ...
  bool on_seq = false;        // object chain names a sequence word
  bool has_or_one = false;    // `| 1` among the arguments
  bool release = false;       // memory_order_release / acq_rel / seq_cst
  bool acquire = false;       // memory_order_acquire / acq_rel / seq_cst
  bool is_fence = false;      // atomic_thread_fence(...)
};

bool atomic_member(const std::string& s) {
  return s == "store" || s == "load" || s == "exchange" ||
         s == "fetch_add" || s == "fetch_sub" || s == "fetch_or" ||
         s == "compare_exchange_weak" || s == "compare_exchange_strong";
}

void scan_atomic_args(const Tokens& sig, std::size_t open, std::size_t end,
                      AtomicOp& op) {
  for (std::size_t k = open + 1; k + 1 < end; ++k) {
    if (is_punct(sig[k], "|") && k + 1 < end &&
        sig[k + 1].kind == TokKind::kNumber && sig[k + 1].text == "1")
      op.has_or_one = true;
    if (!is_ident(sig[k])) continue;
    const std::string& s = sig[k].text;
    if (s == "memory_order_release" || s == "memory_order_acq_rel" ||
        s == "memory_order_seq_cst")
      op.release = true;
    if (s == "memory_order_acquire" || s == "memory_order_acq_rel" ||
        s == "memory_order_seq_cst")
      op.acquire = true;
  }
}

std::vector<AtomicOp> collect_atomic_ops(const Tokens& sig,
                                         std::size_t begin,
                                         std::size_t end) {
  std::vector<AtomicOp> ops;
  for (std::size_t i = begin; i < end; ++i) {
    if (!is_ident(sig[i])) continue;
    if (is_ident(sig[i], "atomic_thread_fence") && i + 1 < end &&
        is_punct(sig[i + 1], "(")) {
      AtomicOp op;
      op.idx = i;
      op.line = sig[i].line;
      op.is_fence = true;
      scan_atomic_args(sig, i + 1, skip_balanced(sig, i + 1), op);
      ops.push_back(op);
      continue;
    }
    if (!atomic_member(sig[i].text)) continue;
    if (i == 0 || (!is_punct(sig[i - 1], ".") && !is_punct(sig[i - 1], "->")))
      continue;
    if (i + 1 >= end || !is_punct(sig[i + 1], "(")) continue;
    AtomicOp op;
    op.idx = i;
    op.line = sig[i].line;
    op.member = sig[i].text;
    // Walk the object chain backwards: ident (. | -> | ::) ident ...
    std::size_t k = i - 1;
    while (true) {
      if (k == 0) break;
      --k;
      if (is_ident(sig[k])) {
        if (contains_ci(sig[k].text, "seq")) op.on_seq = true;
      } else if (!is_punct(sig[k], ".") && !is_punct(sig[k], "->") &&
                 !is_punct(sig[k], "::") && !is_punct(sig[k], ")") &&
                 !is_punct(sig[k], "]")) {
        break;
      }
      if (is_punct(sig[k], ")") || is_punct(sig[k], "]")) break;
    }
    scan_atomic_args(sig, i + 1, skip_balanced(sig, i + 1), op);
    ops.push_back(op);
  }
  return ops;
}

void rule_seqlock_protocol(const std::string& file, const Tokens& sig,
                           const ScopeInfo& scope,
                           std::vector<Finding>& out) {
  if (!r7_in_scope(file)) return;
  for (const FunctionInfo& fn : scope.functions) {
    const auto ops = collect_atomic_ops(sig, fn.body_begin, fn.body_end);

    // --- Writer checks.
    std::size_t mark = ops.size();  // index into ops of the odd mark
    std::size_t seq_writes = 0;
    for (std::size_t o = 0; o < ops.size(); ++o)
      if (ops[o].on_seq && ops[o].member != "load") ++seq_writes;
    for (std::size_t o = 0; o < ops.size(); ++o) {
      const AtomicOp& op = ops[o];
      if (!op.on_seq || op.member == "load") continue;
      if (op.has_or_one || (op.member == "fetch_add" && seq_writes >= 2)) {
        mark = o;
        break;
      }
    }
    if (mark != ops.size()) {
      std::size_t publish = ops.size();
      for (std::size_t o = mark + 1; o < ops.size(); ++o)
        if (ops[o].on_seq && ops[o].member != "load" && ops[o].release) {
          publish = o;
          break;
        }
      if (publish == ops.size()) {
        out.push_back({file, ops[mark].line, kSeqlockProtocol,
                       "seqlock writer in '" + fn.name +
                           "' marks the sequence odd but never republishes "
                           "an even value with release ordering; readers "
                           "will spin or accept torn payloads"});
      } else {
        bool payload_store = false;
        bool fence_before_payload = ops[mark].release;  // seq_cst/release mark
        for (std::size_t o = mark + 1; o < publish; ++o) {
          if (ops[o].is_fence && ops[o].release && !payload_store)
            fence_before_payload = true;
          if (!ops[o].on_seq && ops[o].member == "store")
            payload_store = true;
        }
        if (!payload_store) {
          out.push_back({file, ops[mark].line, kSeqlockProtocol,
                         "seqlock write section in '" + fn.name +
                             "' publishes no payload stores between the odd "
                             "mark and the even publish; the guarded data "
                             "is being written outside the protocol"});
        } else if (!fence_before_payload) {
          out.push_back({file, ops[mark].line, kSeqlockProtocol,
                         "seqlock writer in '" + fn.name +
                             "' stores payload without a release fence "
                             "after the odd mark; the payload stores can "
                             "sink above it and race the readers"});
        }
      }
    }

    // --- Reader checks.
    std::vector<std::size_t> seq_loads;
    for (std::size_t o = 0; o < ops.size(); ++o)
      if (ops[o].on_seq && ops[o].member == "load") seq_loads.push_back(o);
    if (seq_loads.size() >= 2) {
      const std::size_t first = seq_loads.front();
      const std::size_t last = seq_loads.back();
      bool payload_between = false;
      for (std::size_t o = first + 1; o < last; ++o)
        if (!ops[o].on_seq && ops[o].member == "load") payload_between = true;
      if (payload_between) {
        if (!ops[first].acquire) {
          out.push_back({file, ops[first].line, kSeqlockProtocol,
                         "seqlock reader in '" + fn.name +
                             "' starts from a non-acquire sequence load; it "
                             "must pair with the writer's release publish "
                             "or the payload reads can float above it"});
        }
        bool fence_before_recheck = ops[last].acquire;
        for (std::size_t o = first + 1; o < last; ++o)
          if (ops[o].is_fence && ops[o].acquire) fence_before_recheck = true;
        if (!fence_before_recheck) {
          out.push_back({file, ops[last].line, kSeqlockProtocol,
                         "seqlock re-check in '" + fn.name +
                             "' is not ordered after the payload reads; add "
                             "an acquire fence before it (or make the "
                             "re-check load acquire)"});
        }
        // V3: the re-check statement must compare the two observations.
        const std::size_t stmt = scope.statement_of[ops[last].idx];
        bool compares = false;
        for (std::size_t k = ops[last].idx;
             k > 0 && scope.statement_of[k - 1] == stmt; --k)
          if (is_punct(sig[k - 1], "==") || is_punct(sig[k - 1], "!="))
            compares = true;
        for (std::size_t k = ops[last].idx + 1;
             k < sig.size() && scope.statement_of[k] == stmt; ++k)
          if (is_punct(sig[k], "==") || is_punct(sig[k], "!="))
            compares = true;
        if (!compares) {
          out.push_back({file, ops[last].line, kSeqlockProtocol,
                         "seqlock reader in '" + fn.name +
                             "' re-loads the sequence but never compares it "
                             "against the first observation; torn reads are "
                             "observed but not discarded"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R8 — memory-order-audit.
//
// Raw std::memory_order_* is banned in src/ outside the R5 concurrency
// carve-out (src/service/, src/obs/, metrics/counters.h). Inside the
// carve-out, every ordering decision must carry a
// `frap:contract(order: <rationale>)` annotation on its statement — the
// ~64 relaxed/acquire/release choices become machine-checked pairing
// documentation instead of folklore.
bool is_memory_order_ident(const Token& t) {
  if (!is_ident(t)) return false;
  const std::string& s = t.text;
  return s == "memory_order_relaxed" || s == "memory_order_acquire" ||
         s == "memory_order_release" || s == "memory_order_acq_rel" ||
         s == "memory_order_seq_cst" || s == "memory_order_consume";
}

void rule_memory_order_audit(const std::string& file, const Tokens& sig,
                             const ScopeInfo& scope,
                             std::vector<Finding>& out) {
  if (!r8_in_scope(file)) return;
  const bool carved = r5_concurrency_exempt(file);
  int last_flagged_line = 0;  // one finding per line, not per token
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];
    if (!is_memory_order_ident(t)) continue;
    if (t.line == last_flagged_line) continue;
    if (!carved) {
      out.push_back({file, t.line, kMemoryOrderAudit,
                     "raw '" + t.text +
                         "' outside the concurrency carve-out "
                         "(src/service/, src/obs/, metrics/counters.h); "
                         "single-threaded library code must not hand-roll "
                         "atomics"});
      last_flagged_line = t.line;
      continue;
    }
    if (!scope.has_contract(ContractKind::kOrder, t.line, i)) {
      out.push_back({file, t.line, kMemoryOrderAudit,
                     "'" + t.text +
                         "' without a `// frap:contract(order: ...)` "
                         "rationale; every ordering decision on the "
                         "concurrency surface must say what it pairs with "
                         "(docs/static_analysis.md#r8)"});
      last_flagged_line = t.line;
    }
  }
}

// ---------------------------------------------------------------------------
// R9 — hotpath-alloc.
//
// Functions annotated `frap:contract(hotpath)` may not allocate, throw, or
// take a mutex — the static twin of the operator-new hook in
// tests/alloc_steady_state_test.cpp. One level of same-file summary
// propagation: a hotpath function calling a same-file function whose body
// contains a banned construct is flagged at the call site. push_back /
// reserve / resize are deliberately NOT banned: the sanctioned PR-5
// pattern reserves to capacity up front, so steady-state push_back never
// allocates (the runtime hook keeps that honest).
struct BannedUse {
  int line = 0;
  std::string what;  // human description used in both direct and call flags
};

bool allocating_container(const std::string& s) {
  return s == "vector" || s == "string" || s == "basic_string" ||
         s == "deque" || s == "list" || s == "forward_list" || s == "map" ||
         s == "multimap" || s == "unordered_map" || s == "unordered_set" ||
         s == "multiset" || s == "unordered_multimap" ||
         s == "unordered_multiset" || s == "priority_queue" ||
         s == "stringstream" || s == "ostringstream";
}

std::vector<BannedUse> scan_banned(const Tokens& sig, std::size_t begin,
                                   std::size_t end) {
  std::vector<BannedUse> uses;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = sig[i];
    if (!is_ident(t)) continue;
    const bool member_access =
        i > 0 && (is_punct(sig[i - 1], ".") || is_punct(sig[i - 1], "->"));
    const bool std_qualified = i >= 2 && is_ident(sig[i - 2], "std") &&
                               is_punct(sig[i - 1], "::");
    const std::string& s = t.text;

    if (s == "new" && !(i > 0 && is_ident(sig[i - 1], "operator"))) {
      uses.push_back({t.line, "allocates with 'new'"});
    } else if (s == "make_unique" || s == "make_shared" || s == "malloc" ||
               s == "calloc" || s == "realloc" || s == "aligned_alloc" ||
               s == "strdup") {
      if (!member_access)
        uses.push_back({t.line, "heap-allocates via '" + s + "'"});
    } else if (allocating_container(s)) {
      if (!member_access &&
          (std_qualified || (i + 1 < end && is_punct(sig[i + 1], "<"))))
        uses.push_back(
            {t.line, "constructs allocating container '" + s + "'"});
    } else if (s == "function" && std_qualified) {
      uses.push_back(
          {t.line, "constructs a std::function (type-erased allocation)"});
    } else if (s == "throw") {
      uses.push_back({t.line, "has a throwing path"});
    } else if (s == "lock_guard" || s == "scoped_lock" ||
               s == "unique_lock" || s == "shared_lock") {
      if (!member_access)
        uses.push_back({t.line, "acquires a mutex via '" + s + "'"});
    } else if (s == "lock" && member_access && i + 1 < end &&
               is_punct(sig[i + 1], "(")) {
      uses.push_back({t.line, "acquires a mutex via '.lock()'"});
    }
  }
  return uses;
}

void rule_hotpath_alloc(const std::string& file, const Tokens& sig,
                        const ScopeInfo& scope, std::vector<Finding>& out) {
  if (!starts_with(file, "src/")) return;
  if (scope.hotpath_functions.empty()) return;

  // Per-function summaries for one level of same-file call propagation.
  std::map<std::string, const FunctionInfo*> by_name;
  std::map<std::string, std::vector<BannedUse>> summary;
  for (const FunctionInfo& fn : scope.functions) {
    by_name.emplace(fn.name, &fn);  // first definition wins on overloads
    auto uses = scan_banned(sig, fn.body_begin, fn.body_end);
    if (!uses.empty()) summary.emplace(fn.name, std::move(uses));
  }

  for (std::size_t fi : scope.hotpath_functions) {
    const FunctionInfo& fn = scope.functions[fi];
    for (const BannedUse& u : scan_banned(sig, fn.body_begin, fn.body_end)) {
      out.push_back({file, u.line, kHotpathAlloc,
                     "hotpath function '" + fn.name + "' " + u.what +
                         "; the admit->expire steady state must stay "
                         "allocation- and lock-free "
                         "(tests/alloc_steady_state_test.cpp)"});
    }
    // Call sites: plain same-file calls only (member access on another
    // object cannot be resolved lexically and is out of scope for the
    // one-level summary).
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (!is_ident(sig[i]) || i + 1 >= fn.body_end ||
          !is_punct(sig[i + 1], "(") || scope.in_template_args[i])
        continue;
      if (i > 0 && (is_punct(sig[i - 1], ".") || is_punct(sig[i - 1], "->")))
        continue;
      if (sig[i].text == fn.name) continue;  // recursion: already scanned
      const auto cs = summary.find(sig[i].text);
      if (cs == summary.end()) continue;
      const FunctionInfo* callee = by_name[sig[i].text];
      if (callee->body_begin >= fn.body_begin &&
          callee->body_end <= fn.body_end)
        continue;  // a local lambda-ish nested definition, already scanned
      out.push_back({file, sig[i].line, kHotpathAlloc,
                     "hotpath function '" + fn.name + "' calls '" +
                         sig[i].text + "', which " + cs->second.front().what +
                         " (line " + std::to_string(cs->second.front().line) +
                         "); hot paths may only call allocation-free code"});
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions.

struct LineSuppression {
  std::set<std::string> rules;  // canonical names allowed on that line
};

// Directives must be anchored: the comment's content (after `//` and
// leading whitespace) starts with the tag. Prose that merely mentions the
// directive grammar — docs, messages, a quoted `// frap-lint: ...` example
// — is not a directive. Returns the index after the tag, or npos.
std::size_t anchored_tag(std::string_view text, std::string_view tag) {
  std::size_t p = 0;
  if (text.size() >= 2 && text[0] == '/' && (text[1] == '/' || text[1] == '*'))
    p = 2;
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
  if (text.compare(p, tag.size(), tag) != 0) return std::string_view::npos;
  return p + tag.size();
}

// Parses every `// frap-lint:` comment. Trailing comments attach to their
// own line; standalone comments (no code token on the line) attach to the
// next line. Malformed directives become bad-suppression findings.
std::map<int, LineSuppression> collect_suppressions(
    const std::string& file, const Tokens& all, const Tokens& sig,
    std::vector<Finding>& out) {
  std::set<int> code_lines;
  for (const Token& t : sig) code_lines.insert(t.line);

  std::map<int, LineSuppression> by_line;
  for (const Token& t : all) {
    if (t.kind != TokKind::kComment) continue;
    const std::size_t tag = anchored_tag(t.text, "frap-lint:");
    if (tag == std::string_view::npos) continue;
    std::string_view rest = std::string_view(t.text).substr(tag);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);

    const bool is_allow = starts_with(rest, "allow(");
    const std::size_t close = rest.find(')');
    const std::size_t dashes = rest.find(" -- ");
    std::set<std::string> rules;
    bool ok = is_allow && close != std::string::npos && dashes != std::string::npos &&
              dashes > close && dashes + 4 < rest.size();
    if (ok) {
      std::string_view list = rest.substr(6, close - 6);
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        std::string_view one = list.substr(0, comma);
        while (!one.empty() && one.front() == ' ') one.remove_prefix(1);
        while (!one.empty() && one.back() == ' ') one.remove_suffix(1);
        const std::string canon = canonical_rule(one);
        if (canon.empty()) {
          ok = false;
          break;
        }
        rules.insert(canon);
        list = comma == std::string_view::npos ? std::string_view{}
                                               : list.substr(comma + 1);
      }
      if (rules.empty()) ok = false;
    }
    if (!ok) {
      out.push_back(
          {file, t.line, kBadSuppression,
           "malformed frap-lint directive; expected `// frap-lint: "
           "allow(<rule>[,<rule>]) -- <reason>` with a non-empty reason"});
      continue;
    }
    // Trailing directives bind to their own line; standalone directives
    // bind to the next code line (comment continuation lines in between
    // are skipped, so a directive may open a multi-line explanation).
    if (code_lines.count(t.line)) {
      by_line[t.line].rules.insert(rules.begin(), rules.end());
    } else {
      const auto next = code_lines.upper_bound(t.line);
      if (next != code_lines.end())
        by_line[*next].rules.insert(rules.begin(), rules.end());
    }
  }
  return by_line;
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      kUnsafeDivision,    kRederivedAdmission, kFloatEquality,
      kMissingNodiscard,  kNondeterminism,     kRoundingDirection,
      kSeqlockProtocol,   kMemoryOrderAudit,   kHotpathAlloc,
      kBadSuppression,    kBadContract};
  return kRules;
}

std::string canonical_rule(std::string_view name) {
  const std::string n = lower(name);
  if (n == "r1" || n == kUnsafeDivision) return kUnsafeDivision;
  if (n == "r2" || n == kRederivedAdmission) return kRederivedAdmission;
  if (n == "r3" || n == kFloatEquality) return kFloatEquality;
  if (n == "r4" || n == kMissingNodiscard) return kMissingNodiscard;
  if (n == "r5" || n == kNondeterminism) return kNondeterminism;
  if (n == "r6" || n == kRoundingDirection) return kRoundingDirection;
  if (n == "r7" || n == kSeqlockProtocol) return kSeqlockProtocol;
  if (n == "r8" || n == kMemoryOrderAudit) return kMemoryOrderAudit;
  if (n == "r9" || n == kHotpathAlloc) return kHotpathAlloc;
  return "";
}

std::vector<Finding> lint_source(const std::string& relpath,
                                 std::string_view src) {
  const Tokens all = tokenize(src);
  Tokens sig;
  sig.reserve(all.size());
  for (const Token& t : all)
    if (t.kind != TokKind::kComment) sig.push_back(t);

  std::vector<Finding> out;
  const ScopeInfo scope = analyze_scopes(relpath, all, sig, out);
  rule_unsafe_division(relpath, sig, out);
  rule_rederived_admission(relpath, sig, scope, out);
  rule_float_equality(relpath, sig, out);
  rule_missing_nodiscard(relpath, sig, out);
  rule_nondeterminism(relpath, sig, out);
  rule_rounding_direction(relpath, sig, scope, out);
  rule_seqlock_protocol(relpath, sig, scope, out);
  rule_memory_order_audit(relpath, sig, scope, out);
  rule_hotpath_alloc(relpath, sig, scope, out);

  // A directive bound to any line of a multi-line statement covers findings
  // on every line of that statement (a CAS whose orderings sit on the
  // continuation line is one decision, not two).
  std::map<int, ScopeInfo::LineSpan> span_of_line;
  for (const ScopeInfo::LineSpan& s : scope.statement_lines)
    for (int l = s.first; l <= s.last; ++l) {
      auto [it, fresh] = span_of_line.emplace(l, s);
      if (!fresh) {
        it->second.first = std::min(it->second.first, s.first);
        it->second.last = std::max(it->second.last, s.last);
      }
    }
  const auto suppressions = collect_suppressions(relpath, all, sig, out);
  for (Finding& f : out) {
    if (f.rule == kBadSuppression || f.rule == kBadContract)
      continue;  // never suppressible
    ScopeInfo::LineSpan span{f.line, f.line};
    const auto sp = span_of_line.find(f.line);
    if (sp != span_of_line.end()) span = sp->second;
    for (auto it = suppressions.lower_bound(span.first);
         it != suppressions.end() && it->first <= span.last; ++it) {
      if (it->second.rules.count(f.rule)) {
        f.suppressed = true;
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::set<std::string> load_baseline(const std::string& path,
                                    std::string* error) {
  std::set<std::string> entries;
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open baseline file: " + path;
    return entries;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t'))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t'))
      ++start;
    if (start < line.size()) entries.insert(line.substr(start));
  }
  return entries;
}

void apply_baseline(std::vector<Finding>& findings,
                    const std::set<std::string>& baseline) {
  for (Finding& f : findings) {
    if (f.suppressed) continue;
    if (baseline.count(f.file + ":" + f.rule)) f.baselined = true;
  }
}

}  // namespace frap::lint
