#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>

#include "lexer.h"

namespace frap::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule names and file scoping.

constexpr const char* kUnsafeDivision = "unsafe-division";       // R1
constexpr const char* kRederivedAdmission = "rederived-admission";  // R2
constexpr const char* kFloatEquality = "float-equality";         // R3
constexpr const char* kMissingNodiscard = "missing-nodiscard";   // R4
constexpr const char* kNondeterminism = "nondeterminism";        // R5
constexpr const char* kBadSuppression = "bad-suppression";

bool starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}
bool ends_with(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.substr(s.size() - p.size()) == p;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return lower(haystack).find(lower(needle)) != std::string::npos;
}

// R1: files allowed to spell the guarded divisions out directly.
bool r1_sanctioned(std::string_view f) {
  return f == "src/core/feasible_region.h" ||
         f == "src/core/feasible_region.cpp" || f == "src/util/math.h";
}

// R2: the single home of the admission comparison.
bool r2_sanctioned(std::string_view f) {
  return f == "src/core/feasible_region.h";
}

// R4 only audits the core public headers.
bool r4_in_scope(std::string_view f) {
  return starts_with(f, "src/core/") && ends_with(f, ".h");
}

// R5 only audits library code; executables (bench/examples/tests) may print
// and measure wall time freely. util/rng.* is the sanctioned RNG home.
bool r5_in_scope(std::string_view f) {
  return starts_with(f, "src/") && !starts_with(f, "src/util/rng.");
}

// The concurrency half of R5 additionally exempts the sharded admission
// service (threads are its whole point), the atomic counters it exports,
// and the observability layer (the lock-free trace ring is atomics by
// design); all still answer to the entropy/wall-clock/stdout checks, so
// even concurrent code stays replayable and silent.
bool r5_concurrency_exempt(std::string_view f) {
  return starts_with(f, "src/service/") || starts_with(f, "src/obs/") ||
         f == "src/metrics/counters.h";
}

// The wall-clock half of R5 exempts exactly one file: the obs::Clock seam's
// monotonic_clock() implementation. Every other line of src/ receives time
// through that seam (or sim::Simulator), which is what keeps traced runs
// replayable — see docs/static_analysis.md.
bool r5_clock_exempt(std::string_view f) {
  return f == "src/obs/clock.cpp";
}

// ---------------------------------------------------------------------------
// Token helpers. All rules run over `sig`, the comment-free token view.

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}
bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdentifier && t.text == s;
}

// Skips a balanced (...) / [...] / {...} group; `i` indexes the opener.
// Returns the index one past the closer (or toks.size() when unbalanced).
std::size_t skip_balanced(const Tokens& toks, std::size_t i) {
  const std::string& open = toks[i].text;
  const std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) ++depth;
    if (is_punct(toks[i], close) && --depth == 0) return i + 1;
  }
  return toks.size();
}

// Is the numeric literal exactly one? (1, 1., 1.0, 1.00, 1e0, ...)
bool is_one(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  return std::strtod(t.text.c_str(), nullptr) == 1.0;  // exact by intent
}

// ---------------------------------------------------------------------------
// R1 — unsafe-division.
//
// Flags `/` whose denominator is (a) a parenthesized expression of the
// shape (1 - ...), i.e. the 1/(1−U) family that saturates as U -> 1, or
// (b) a primary expression naming a deadline (any identifier containing
// "deadline", case-insensitive) — divisions that must instead route through
// the saturation-safe helpers (util::safe_div / safe_inv, stage_delay_factor,
// FeasibleRegion) so a zero/negative denominator degrades to +inf instead
// of UB-adjacent garbage that an admission test then trusts.
void rule_unsafe_division(const std::string& file, const Tokens& sig,
                          std::vector<Finding>& out) {
  if (r1_sanctioned(file)) return;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (!is_punct(sig[i], "/") && !is_punct(sig[i], "/=")) continue;
    std::size_t j = i + 1;
    if (j >= sig.size()) break;
    if (is_punct(sig[j], "(")) {
      const std::size_t end = skip_balanced(sig, j);
      // Shape test: the group starts `(1 -`.
      if (j + 2 < end && is_one(sig[j + 1]) && is_punct(sig[j + 2], "-")) {
        out.push_back({file, sig[i].line, kUnsafeDivision,
                       "division by a (1 - ...) denominator; use the "
                       "saturation-safe helpers (stage_delay_factor, "
                       "FeasibleRegion, util::safe_div) or suppress with a "
                       "reason"});
      }
      for (std::size_t k = j + 1; k + 1 < end; ++k) {
        if (is_ident(sig[k]) && contains_ci(sig[k].text, "deadline")) {
          out.push_back({file, sig[i].line, kUnsafeDivision,
                         "division by deadline '" + sig[k].text +
                             "'; route through util::safe_div/safe_inv so a "
                             "non-positive deadline rejects instead of "
                             "corrupting the admission arithmetic"});
          break;
        }
      }
      i = end - 1;
      continue;
    }
    // Unparenthesized primary: identifier chain with optional call suffix.
    bool flagged = false;
    while (j < sig.size()) {
      if (is_ident(sig[j])) {
        if (!flagged && contains_ci(sig[j].text, "deadline")) {
          out.push_back({file, sig[j].line, kUnsafeDivision,
                         "division by deadline '" + sig[j].text +
                             "'; route through util::safe_div/safe_inv so a "
                             "non-positive deadline rejects instead of "
                             "corrupting the admission arithmetic"});
          flagged = true;
        }
        ++j;
      } else if (is_punct(sig[j], "::") || is_punct(sig[j], ".") ||
                 is_punct(sig[j], "->")) {
        ++j;
      } else if (is_punct(sig[j], "(") || is_punct(sig[j], "[")) {
        j = skip_balanced(sig, j);
      } else {
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R2 — rederived-admission.
//
// Flags relational comparisons (<=, <, >=, >) where either primary operand
// names an LHS (identifier containing "lhs", case-insensitive). PR 1's bug
// class: three code paths each spelling `lhs <= bound` drifted on boundary
// ties; FeasibleRegion::admits()/admits_lhs() is now the single predicate.
void rule_rederived_admission(const std::string& file, const Tokens& sig,
                              std::vector<Finding>& out) {
  if (r2_sanctioned(file)) return;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];
    if (!(is_punct(t, "<=") || is_punct(t, ">=") || is_punct(t, "<") ||
          is_punct(t, ">")))
      continue;
    bool lhs_named = false;
    // Left operand: walk back over a call/index suffix and the id-chain.
    if (i > 0) {
      std::size_t k = i - 1;
      // Balance back over trailing (...) / [...] groups.
      while (is_punct(sig[k], ")") || is_punct(sig[k], "]")) {
        const std::string close = sig[k].text;
        const std::string open = close == ")" ? "(" : "[";
        int depth = 0;
        while (true) {
          if (is_punct(sig[k], close)) ++depth;
          if (is_punct(sig[k], open) && --depth == 0) break;
          if (k == 0) break;
          --k;
        }
        if (k == 0) break;
        --k;
      }
      while (true) {
        if (is_ident(sig[k]) && contains_ci(sig[k].text, "lhs"))
          lhs_named = true;
        if (k == 0) break;
        const Token& p = sig[k - 1];
        if (is_ident(sig[k]) &&
            (is_punct(p, "::") || is_punct(p, ".") || is_punct(p, "->"))) {
          if (k < 2) break;
          k -= 2;
        } else {
          break;
        }
      }
    }
    // Right operand: first primary expression.
    std::size_t j = i + 1;
    while (j < sig.size() &&
           (is_punct(sig[j], "-") || is_punct(sig[j], "+") ||
            is_punct(sig[j], "!")))
      ++j;
    while (j < sig.size()) {
      if (is_ident(sig[j])) {
        if (contains_ci(sig[j].text, "lhs")) lhs_named = true;
        ++j;
      } else if (is_punct(sig[j], "::") || is_punct(sig[j], ".") ||
                 is_punct(sig[j], "->")) {
        ++j;
      } else if (is_punct(sig[j], "(") || is_punct(sig[j], "[")) {
        j = skip_balanced(sig, j);
      } else {
        break;
      }
    }
    if (lhs_named) {
      out.push_back({file, t.line, kRederivedAdmission,
                     "re-derived admission comparison on an lhs value; call "
                     "FeasibleRegion::admits()/admits_lhs() so every "
                     "decision path agrees on boundary ties"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3 — float-equality.
//
// Flags ==/!= with a floating-point literal operand (either side, allowing
// a unary sign). Exact comparison against a computed double is the sharp-
// threshold failure mode; util::almost_equal / util::time_close are the
// sanctioned comparators.
void rule_float_equality(const std::string& file, const Tokens& sig,
                         std::vector<Finding>& out) {
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (!is_punct(sig[i], "==") && !is_punct(sig[i], "!=")) continue;
    bool flt = false;
    if (i > 0 && sig[i - 1].kind == TokKind::kNumber && sig[i - 1].is_float)
      flt = true;
    std::size_t j = i + 1;
    while (j < sig.size() &&
           (is_punct(sig[j], "-") || is_punct(sig[j], "+")))
      ++j;
    if (j < sig.size() && sig[j].kind == TokKind::kNumber &&
        sig[j].is_float)
      flt = true;
    if (flt) {
      out.push_back({file, sig[i].line, kFloatEquality,
                     "raw floating-point " + sig[i].text +
                         " against a literal; use util::almost_equal / "
                         "util::time_close (or suppress with the reason the "
                         "exact compare is sound)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R4 — missing-nodiscard.
//
// In src/core/*.h, a public function (namespace scope, or public class
// scope) whose return type is a decision type must carry [[nodiscard]]:
// dropping an admission decision on the floor is how infeasible tasks walk
// in. Heuristic single-token return types only; compound returns (e.g.
// const std::vector<AdmissionDecision>&) are annotated by hand and kept
// honest by review, not by this rule.
bool is_decision_type(const Token& t) {
  return is_ident(t, "bool") || is_ident(t, "AdmissionDecision") ||
         is_ident(t, "AdaptiveDecision");
}

void rule_missing_nodiscard(const std::string& file, const Tokens& sig,
                            std::vector<Finding>& out) {
  if (!r4_in_scope(file)) return;

  enum class Scope { kNamespace, kPublic, kPrivate, kOpaque };
  std::vector<Scope> scopes;  // empty = file scope (public)
  Scope pending = Scope::kOpaque;
  bool pending_set = false;

  auto current = [&] {
    return scopes.empty() ? Scope::kNamespace : scopes.back();
  };
  auto decl_position = [&] {
    const Scope s = current();
    return s == Scope::kNamespace || s == Scope::kPublic;
  };

  bool at_decl_start = true;  // after { } ; or an access-specifier colon
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];

    if (is_ident(t, "namespace")) {
      pending = Scope::kNamespace;
      pending_set = true;
      continue;
    }
    if (is_ident(t, "class") || is_ident(t, "struct")) {
      // `enum class` was already claimed by the enum branch below.
      pending = is_ident(t, "struct") ? Scope::kPublic : Scope::kPrivate;
      pending_set = true;
      continue;
    }
    if (is_ident(t, "enum")) {
      pending = Scope::kOpaque;
      pending_set = true;
      if (i + 1 < sig.size() && (is_ident(sig[i + 1], "class") ||
                                 is_ident(sig[i + 1], "struct")))
        ++i;
      continue;
    }
    if (is_punct(t, ";")) {
      pending_set = false;  // forward declaration or plain statement
      at_decl_start = true;
      continue;
    }
    if (is_punct(t, "{")) {
      scopes.push_back(pending_set ? pending : Scope::kOpaque);
      pending_set = false;
      at_decl_start = true;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      at_decl_start = true;
      continue;
    }
    if ((is_ident(t, "public") || is_ident(t, "private") ||
         is_ident(t, "protected")) &&
        i + 1 < sig.size() && is_punct(sig[i + 1], ":")) {
      if (!scopes.empty())
        scopes.back() =
            is_ident(t, "public") ? Scope::kPublic : Scope::kPrivate;
      ++i;
      at_decl_start = true;
      continue;
    }

    if (!at_decl_start) continue;
    if (!decl_position()) {
      at_decl_start = false;
      continue;
    }

    // Parse one would-be declaration: attributes + specifiers + return type
    // + name + '('.
    std::size_t j = i;
    bool has_nodiscard = false;
    bool is_friend = false;
    while (j < sig.size()) {
      if (is_punct(sig[j], "[[")) {
        std::size_t k = j;
        while (k < sig.size() && !is_punct(sig[k], "]]")) {
          if (is_ident(sig[k], "nodiscard")) has_nodiscard = true;
          ++k;
        }
        j = k + 1;
        continue;
      }
      if (is_ident(sig[j], "static") || is_ident(sig[j], "inline") ||
          is_ident(sig[j], "constexpr") || is_ident(sig[j], "consteval") ||
          is_ident(sig[j], "virtual") || is_ident(sig[j], "explicit") ||
          is_ident(sig[j], "extern") || is_ident(sig[j], "friend")) {
        if (is_ident(sig[j], "friend")) is_friend = true;
        ++j;
        continue;
      }
      break;
    }
    if (!is_friend && j + 2 < sig.size() && is_decision_type(sig[j]) &&
        is_ident(sig[j + 1]) && !is_ident(sig[j + 1], "operator") &&
        is_punct(sig[j + 2], "(") && !has_nodiscard) {
      out.push_back({file, sig[j + 1].line, kMissingNodiscard,
                     "public decision-returning API '" + sig[j + 1].text +
                         "' lacks [[nodiscard]]; a dropped decision admits "
                         "by accident"});
    }
    at_decl_start = false;
  }
}

// ---------------------------------------------------------------------------
// R5 — nondeterminism.
//
// Library code must be replayable bit-for-bit from an explicit seed and must
// not write to stdout (sinks take an ostream&). Flags ambient entropy
// (rand/srand/drand48/random_device), wall clocks (time(), clock(),
// chrono::*_clock — except src/obs/clock.cpp, the one sanctioned read
// behind the obs::Clock seam), stdout writes (cout/printf/puts/putchar),
// and — outside src/service/, src/obs/ and metrics/counters.h —
// concurrency primitives (thread, atomic, mutex, condition_variable, ...).
void rule_nondeterminism(const std::string& file, const Tokens& sig,
                         std::vector<Finding>& out) {
  if (!r5_in_scope(file)) return;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];
    if (!is_ident(t)) continue;
    const bool member_access =
        i > 0 && (is_punct(sig[i - 1], ".") || is_punct(sig[i - 1], "->"));

    if (t.text == "rand" || t.text == "srand" || t.text == "drand48" ||
        t.text == "random_device") {
      if (!member_access)
        out.push_back({file, t.line, kNondeterminism,
                       "'" + t.text +
                           "' in library code; all randomness must flow "
                           "through an explicitly seeded util::Rng"});
      continue;
    }
    if ((t.text == "time" || t.text == "clock") && !member_access &&
        !r5_clock_exempt(file) && i + 1 < sig.size() &&
        is_punct(sig[i + 1], "(")) {
      out.push_back({file, t.line, kNondeterminism,
                     "wall-clock '" + t.text +
                         "()' in library code; simulated time comes from "
                         "sim::Simulator::now()"});
      continue;
    }
    if ((t.text == "system_clock" || t.text == "steady_clock" ||
         t.text == "high_resolution_clock") &&
        !r5_clock_exempt(file)) {
      out.push_back({file, t.line, kNondeterminism,
                     "chrono wall clock '" + t.text +
                         "' in library code; timing belongs in bench/, "
                         "simulated time in sim::Simulator"});
      continue;
    }
    if (t.text == "cout" || t.text == "printf" || t.text == "puts" ||
        t.text == "putchar") {
      if (!member_access)
        out.push_back({file, t.line, kNondeterminism,
                       "stdout write ('" + t.text +
                           "') in library code; report through an ostream& "
                           "parameter or metrics counters"});
      continue;
    }
    if (t.text == "thread" || t.text == "jthread" || t.text == "async" ||
        t.text == "atomic" || t.text == "atomic_flag" || t.text == "mutex" ||
        t.text == "shared_mutex" || t.text == "recursive_mutex" ||
        t.text == "timed_mutex" || t.text == "condition_variable" ||
        t.text == "condition_variable_any") {
      if (!member_access && !r5_concurrency_exempt(file))
        out.push_back({file, t.line, kNondeterminism,
                       "concurrency primitive '" + t.text +
                           "' in library code; threads live in "
                           "src/service/ (metrics/counters.h holds the "
                           "sanctioned atomics)"});
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions.

struct LineSuppression {
  std::set<std::string> rules;  // canonical names allowed on that line
};

// Parses every `// frap-lint:` comment. Trailing comments attach to their
// own line; standalone comments (no code token on the line) attach to the
// next line. Malformed directives become bad-suppression findings.
std::map<int, LineSuppression> collect_suppressions(
    const std::string& file, const Tokens& all, const Tokens& sig,
    std::vector<Finding>& out) {
  std::set<int> code_lines;
  for (const Token& t : sig) code_lines.insert(t.line);

  std::map<int, LineSuppression> by_line;
  for (const Token& t : all) {
    if (t.kind != TokKind::kComment) continue;
    const std::size_t tag = t.text.find("frap-lint:");
    if (tag == std::string::npos) continue;
    std::string_view rest = std::string_view(t.text).substr(tag + 10);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);

    const bool is_allow = starts_with(rest, "allow(");
    const std::size_t close = rest.find(')');
    const std::size_t dashes = rest.find(" -- ");
    std::set<std::string> rules;
    bool ok = is_allow && close != std::string::npos && dashes != std::string::npos &&
              dashes > close && dashes + 4 < rest.size();
    if (ok) {
      std::string_view list = rest.substr(6, close - 6);
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        std::string_view one = list.substr(0, comma);
        while (!one.empty() && one.front() == ' ') one.remove_prefix(1);
        while (!one.empty() && one.back() == ' ') one.remove_suffix(1);
        const std::string canon = canonical_rule(one);
        if (canon.empty()) {
          ok = false;
          break;
        }
        rules.insert(canon);
        list = comma == std::string_view::npos ? std::string_view{}
                                               : list.substr(comma + 1);
      }
      if (rules.empty()) ok = false;
    }
    if (!ok) {
      out.push_back(
          {file, t.line, kBadSuppression,
           "malformed frap-lint directive; expected `// frap-lint: "
           "allow(<rule>[,<rule>]) -- <reason>` with a non-empty reason"});
      continue;
    }
    // Trailing directives bind to their own line; standalone directives
    // bind to the next code line (comment continuation lines in between
    // are skipped, so a directive may open a multi-line explanation).
    if (code_lines.count(t.line)) {
      by_line[t.line].rules.insert(rules.begin(), rules.end());
    } else {
      const auto next = code_lines.upper_bound(t.line);
      if (next != code_lines.end())
        by_line[*next].rules.insert(rules.begin(), rules.end());
    }
  }
  return by_line;
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      kUnsafeDivision, kRederivedAdmission, kFloatEquality,
      kMissingNodiscard, kNondeterminism, kBadSuppression};
  return kRules;
}

std::string canonical_rule(std::string_view name) {
  const std::string n = lower(name);
  if (n == "r1" || n == kUnsafeDivision) return kUnsafeDivision;
  if (n == "r2" || n == kRederivedAdmission) return kRederivedAdmission;
  if (n == "r3" || n == kFloatEquality) return kFloatEquality;
  if (n == "r4" || n == kMissingNodiscard) return kMissingNodiscard;
  if (n == "r5" || n == kNondeterminism) return kNondeterminism;
  return "";
}

std::vector<Finding> lint_source(const std::string& relpath,
                                 std::string_view src) {
  const Tokens all = tokenize(src);
  Tokens sig;
  sig.reserve(all.size());
  for (const Token& t : all)
    if (t.kind != TokKind::kComment) sig.push_back(t);

  std::vector<Finding> out;
  rule_unsafe_division(relpath, sig, out);
  rule_rederived_admission(relpath, sig, out);
  rule_float_equality(relpath, sig, out);
  rule_missing_nodiscard(relpath, sig, out);
  rule_nondeterminism(relpath, sig, out);

  const auto suppressions = collect_suppressions(relpath, all, sig, out);
  for (Finding& f : out) {
    if (f.rule == kBadSuppression) continue;  // never suppressible
    const auto it = suppressions.find(f.line);
    if (it != suppressions.end() && it->second.rules.count(f.rule))
      f.suppressed = true;
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::set<std::string> load_baseline(const std::string& path,
                                    std::string* error) {
  std::set<std::string> entries;
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open baseline file: " + path;
    return entries;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t'))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t'))
      ++start;
    if (start < line.size()) entries.insert(line.substr(start));
  }
  return entries;
}

void apply_baseline(std::vector<Finding>& findings,
                    const std::set<std::string>& baseline) {
  for (Finding& f : findings) {
    if (f.suppressed) continue;
    if (baseline.count(f.file + ":" + f.rule)) f.baselined = true;
  }
}

}  // namespace frap::lint
