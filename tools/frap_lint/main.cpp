// frap_lint driver.
//
//   frap_lint --root <repo-root> [--baseline <file>] [--emit-baseline]
//             <dir-or-file>...
//
// Walks each argument (relative to --root), lints every .h/.hpp/.cc/.cpp,
// and prints active findings as `path:line: [rule] message`. Exit status:
// 0 when clean (suppressed/baselined findings are reported but do not
// fail), 1 when active findings remain, 2 on usage or I/O errors.
// --emit-baseline prints `path:rule` lines for the active findings instead,
// ready to append to tools/frap_lint/baseline.txt.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using frap::lint::Finding;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

// Repo-relative path with '/' separators.
std::string rel(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

// The lint fixtures are violations on purpose; walking tools/ must not
// report them (they are linted under pretend src/ paths by the unit tests).
bool fixture(const std::string& relpath) {
  return relpath.rfind("tools/frap_lint/fixtures/", 0) == 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: frap_lint --root <repo-root> [--baseline <file>] "
               "[--emit-baseline] <dir-or-file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  std::string baseline_path;
  bool emit_baseline = false;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--emit-baseline") {
      emit_baseline = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : frap::lint::all_rules())
        std::printf("%s\n", r.c_str());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      targets.push_back(arg);
    }
  }
  if (root.empty() || targets.empty()) return usage();

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string err;
    baseline = frap::lint::load_baseline(baseline_path, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "frap_lint: %s\n", err.c_str());
      return 2;
    }
  }

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    const fs::path p = root / t;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable(it->path()) &&
            !fixture(rel(root, it->path())))
          files.push_back(it->path());
      }
    } else if (fs::is_regular_file(p, ec) && lintable(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "frap_lint: no such file or directory: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t active = 0, suppressed = 0, baselined = 0;
  std::set<std::string> baseline_out;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "frap_lint: cannot read %s\n",
                   f.string().c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string src = ss.str();

    auto findings = frap::lint::lint_source(rel(root, f), src);
    frap::lint::apply_baseline(findings, baseline);
    for (const Finding& fd : findings) {
      if (fd.suppressed) {
        ++suppressed;
        continue;
      }
      if (fd.baselined) {
        ++baselined;
        continue;
      }
      ++active;
      if (emit_baseline) {
        baseline_out.insert(fd.file + ":" + fd.rule);
      } else {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", fd.file.c_str(), fd.line,
                     fd.rule.c_str(), fd.message.c_str());
      }
    }
  }

  if (emit_baseline) {
    for (const std::string& e : baseline_out) std::printf("%s\n", e.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "frap_lint: %zu file(s), %zu active finding(s), %zu "
               "suppressed, %zu baselined\n",
               files.size(), active, suppressed, baselined);
  return active == 0 ? 0 : 1;
}
