// frap-lint — repo-specific static analysis for the frap tree.
//
// The admission predicate Σ_j f(U_j) <= α(1 − Σ_j β_j) has sharp threshold
// behavior: a NaN from inf − inf, a saturated 1/(1 − U), or a re-derived
// `lhs <= bound` comparison that drifts from FeasibleRegion::admits() can
// silently admit infeasible tasks. Generic linters cannot express these
// invariants; this one can. Rules (docs/static_analysis.md has the full
// rationale and the PR-1 bug each rule guards against):
//
//   R1 unsafe-division     division whose denominator is a deadline or has
//                          the (1 − U) shape, outside the sanctioned
//                          saturation-safe helpers (feasible_region.*,
//                          util/math.h).
//   R2 rederived-admission relational comparison involving an `lhs`-named
//                          operand outside FeasibleRegion (feasible_region.h)
//                          — every admission decision must funnel through
//                          FeasibleRegion::admits()/admits_lhs().
//   R3 float-equality      raw ==/!= against a floating-point literal; use
//                          util::almost_equal / util::time_close.
//   R4 missing-nodiscard   public API in src/core/*.h returning a decision
//                          type (bool, AdmissionDecision, AdaptiveDecision)
//                          without [[nodiscard]].
//   R5 nondeterminism      rand()/random_device/time()/wall clocks or
//                          stdout writes in library code (src/) outside
//                          util/rng.* and the obs::Clock seam
//                          (src/obs/clock.cpp holds the one sanctioned
//                          wall-clock read); experiments must be replayable
//                          bit-for-bit from an explicit seed.
//
// v2 adds a scope/declaration pass (scope.h: template-argument marking,
// statement spans, function boundaries, `// frap:contract(...)`
// annotations) and four contract-aware rules over the concurrency and
// fixed-point soundness surface:
//
//   R6 rounding-direction  every quantize_up/quantize_down/add_sat call
//                          site in src/ must carry a
//                          `frap:contract(rounds: conservative-for=
//                          <admit|reject>)` annotation, and the rounding
//                          direction must be conservative for the declared
//                          role: LHS-side values round UP for admit / DOWN
//                          for reject, bound-side values the mirror image
//                          (core/fixed_point.h derives why).
//   R7 seqlock-protocol    in service/atomic_admission.* and
//                          obs/trace_ring.*, seqlock writers must mark the
//                          sequence odd before the payload stores (with a
//                          release fence in between) and republish an even
//                          value with release ordering; readers must start
//                          from an acquire load and re-check the sequence
//                          after an acquire fence, discarding torn reads.
//   R8 memory-order-audit  raw std::memory_order_* is banned in src/
//                          outside the R5 concurrency carve-out
//                          (src/service/, src/obs/, metrics/counters.h);
//                          inside it, every ordering decision must carry a
//                          `frap:contract(order: <rationale>)` annotation —
//                          machine-checked pairing documentation.
//   R9 hotpath-alloc       functions annotated `frap:contract(hotpath)`
//                          (and every same-file function they call, one
//                          level of summary propagation) may not allocate
//                          (new/make_*/malloc/allocating containers/
//                          std::function), throw, or acquire a mutex — the
//                          static twin of the operator-new hook in
//                          tests/alloc_steady_state_test.cpp.
//
// Suppression: `// frap-lint: allow(<rule>[,<rule>...]) -- <reason>` on the
// offending line (trailing) or on its own line immediately above. A
// directive bound to any line of a multi-line statement covers findings on
// every line of that statement. The reason is mandatory; a directive
// without one is itself reported (bad-suppression) and cannot be silenced.
// Malformed `frap:contract(...)` comments are likewise reported as
// bad-contract and cannot be silenced.
//
// Baseline: a checked-in file of `<path>:<rule>` lines grandfathers known
// findings without editing the offending files; see load_baseline().
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace frap::lint {

struct Finding {
  std::string file;  // repo-relative path, as handed to lint_source()
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;  // matched an inline allow() directive
  bool baselined = false;   // matched a baseline entry
};

// A finding still requiring action (neither suppressed nor baselined).
inline bool active(const Finding& f) { return !f.suppressed && !f.baselined; }

// Canonical rule names, R1..R5 order, plus the directive-syntax rule.
const std::vector<std::string>& all_rules();

// Maps "r1".."r5" aliases and canonical names to canonical names; returns
// empty string for unknown rules.
std::string canonical_rule(std::string_view name);

// Runs every rule over one file. `relpath` must be repo-relative with '/'
// separators (e.g. "src/core/admission.cpp"); rule scoping and sanctioned-
// file decisions key off it. Inline suppressions are already applied to the
// returned findings; baselines are not (see apply_baseline).
std::vector<Finding> lint_source(const std::string& relpath,
                                 std::string_view src);

// Baseline file: one `<path>:<rule>` entry per line, `#` comments and blank
// lines ignored. Returns the entry set; on I/O failure sets *error.
std::set<std::string> load_baseline(const std::string& path,
                                    std::string* error);

// Marks findings whose `<file>:<rule>` key is in the baseline.
void apply_baseline(std::vector<Finding>& findings,
                    const std::set<std::string>& baseline);

}  // namespace frap::lint
