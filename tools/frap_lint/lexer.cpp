#include "lexer.h"

#include <cctype>

namespace frap::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first so greedy matching is correct.
// `[[` / `]]` are lexed as single tokens for attribute detection; the rare
// `a[b[i]]` mis-pairing this causes is harmless because no rule matches
// brackets structurally except attribute scanning, which starts at `[[`.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "->*", "...", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "[[", "]]", "##",
};

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance_line = [&] { ++line; at_line_start = true; };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      advance_line();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor directive: drop the whole logical line.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance_line();
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      out.push_back({TokKind::kComment, std::string(src.substr(i, j - i)),
                     line, false});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') advance_line();
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    // Raw strings: R"delim( ... )delim", with optional L/u/u8/U prefix
    // already consumed as part of the identifier scan below.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      std::string_view id = src.substr(i, j - i);
      const bool raw_prefix = (id == "R" || id == "LR" || id == "uR" ||
                               id == "u8R" || id == "UR");
      if (raw_prefix && j < n && src[j] == '"') {
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(') delim += src[k++];
        const std::string close = ")" + delim + "\"";
        std::size_t end = src.find(close, k);
        if (end == std::string_view::npos) end = n;
        for (std::size_t p = i; p < end && p < n; ++p)
          if (src[p] == '\n') advance_line();
        out.push_back({TokKind::kString, "", line, false});
        i = (end == n) ? n : end + close.size();
        continue;
      }
      out.push_back({TokKind::kIdentifier, std::string(id), line, false});
      i = j;
      continue;
    }

    // Ordinary string / char literals (contents dropped).
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') advance_line();  // unterminated; stay sane
        ++j;
      }
      out.push_back({quote == '"' ? TokKind::kString : TokKind::kCharLit, "",
                     line, false});
      i = (j < n) ? j + 1 : n;
      continue;
    }

    // Numbers (pp-number-ish; covers hex, exponents, digit separators).
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      std::size_t j = i;
      bool is_float = false;
      const bool hex = (c == '0' && i + 1 < n &&
                        (src[i + 1] == 'x' || src[i + 1] == 'X'));
      while (j < n) {
        const char d = src[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          if (d == '.') is_float = true;
          if (!hex && (d == 'e' || d == 'E') && j + 1 < n &&
              (src[j + 1] == '+' || src[j + 1] == '-' || digit(src[j + 1]))) {
            is_float = true;
            ++j;  // keep the sign with the exponent
            if (src[j] == '+' || src[j] == '-') ++j;
            continue;
          }
          if (hex && (d == 'p' || d == 'P')) {
            is_float = true;
            ++j;
            if (j < n && (src[j] == '+' || src[j] == '-')) ++j;
            continue;
          }
          ++j;
          continue;
        }
        break;
      }
      out.push_back({TokKind::kNumber, std::string(src.substr(i, j - i)),
                     line, is_float});
      i = j;
      continue;
    }

    // Punctuators, longest match first.
    bool matched = false;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        out.push_back({TokKind::kPunct, std::string(p), line, false});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back({TokKind::kPunct, std::string(1, c), line, false});
      ++i;
    }
  }
  return out;
}

}  // namespace frap::lint
