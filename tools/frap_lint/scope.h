// Scope / declaration layer for frap-lint v2.
//
// The v1 rules ran over a flat token stream, which was enough for "this
// token may not appear here" checks but not for the contract-aware rules
// (R6-R9): those need to know where functions begin and end, which tokens
// are template arguments rather than comparisons, which statement a token
// belongs to, and which `// frap:contract(...)` annotation binds to which
// line or function. This pass computes exactly that — still purely lexical,
// no type information, deliberately small and auditable like the lexer.
//
// Contract annotation grammar (one contract per comment):
//
//   // frap:contract(hotpath)
//   // frap:contract(rounds: conservative-for=admit)
//   // frap:contract(rounds: conservative-for=reject)
//   // frap:contract(order: <free-text rationale, non-empty>)
//
// Binding mirrors the suppression rules: a trailing contract binds to its
// own line; a standalone contract binds to the next code line. A `hotpath`
// contract attaches to a function when its bound line falls anywhere in
// that function's declaration header (first declaration line through the
// opening brace). A malformed contract is reported as `bad-contract` by
// lint_source() and cannot be suppressed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"

namespace frap::lint {

struct Finding;  // lint.h

using Tokens = std::vector<Token>;

enum class ContractKind {
  kRounds,   // rounds: conservative-for=<admit|reject>
  kOrder,    // order: <rationale>
  kHotpath,  // hotpath
};

struct Contract {
  ContractKind kind = ContractKind::kOrder;
  int line = 0;        // line of the comment itself
  int bound_line = 0;  // code line the contract binds to (0 = unbound)
  // kRounds: "admit" or "reject". kOrder: the rationale text. kHotpath: "".
  std::string payload;
};

// A function definition found in the token stream (declarations without a
// body are not recorded; only definitions have behavior to check).
struct FunctionInfo {
  std::string name;  // unqualified name (last identifier before the '(')
  int decl_line = 0;  // first line of the declaration statement
  int name_line = 0;  // line of the name token
  int open_line = 0;  // line of the body's '{'
  std::size_t body_begin = 0;  // sig index one past the '{'
  std::size_t body_end = 0;    // sig index of the matching '}'
};

struct ScopeInfo {
  // Parallel to the sig token vector: true when the token sits inside a
  // template argument list (including the delimiting '<' and '>'). R2 uses
  // this to stop misreading `std::atomic<std::uint64_t> qlhs_` as a
  // relational comparison against an lhs-named operand.
  std::vector<bool> in_template_args;

  // Statement ids, parallel to sig: tokens between consecutive ';' '{' '}'
  // boundaries share an id. Used to let an annotation (or suppression)
  // bound to any line of a multi-line statement cover the whole statement.
  std::vector<std::size_t> statement_of;

  std::vector<FunctionInfo> functions;
  std::vector<Contract> contracts;  // well-formed only, in file order

  // True when a contract of `kind` binds to `line` directly, or to any
  // line of the statement containing sig token `tok_index`.
  bool has_contract(ContractKind kind, int line,
                    std::size_t tok_index) const;
  // The contract covering (line, tok_index) for `kind`, or nullptr.
  const Contract* find_contract(ContractKind kind, int line,
                                std::size_t tok_index) const;

  // The function carrying a hotpath contract whose header spans the
  // contract's bound line. (Exposed as a set of indexes into functions.)
  std::vector<std::size_t> hotpath_functions;

  // Lines (min..max) spanned by each statement id.
  struct LineSpan {
    int first = 0;
    int last = 0;
  };
  std::vector<LineSpan> statement_lines;

 private:
  friend ScopeInfo analyze_scopes(const std::string&, const Tokens&,
                                  const Tokens&, std::vector<Finding>&);
};

// Runs the scope pass over one file. `all` is the full token stream
// (comments included, for contract parsing); `sig` is the comment-free view
// every rule operates on. Malformed `frap:contract` comments are appended
// to `out` as `bad-contract` findings.
ScopeInfo analyze_scopes(const std::string& file, const Tokens& all,
                         const Tokens& sig, std::vector<Finding>& out);

}  // namespace frap::lint
