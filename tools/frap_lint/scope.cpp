#include "scope.h"

#include <algorithm>
#include <set>

#include "lint.h"

namespace frap::lint {
namespace {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}
bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }

// Keywords that can precede a '(' without naming a function, and names that
// must never be mistaken for a template-id before a '<'.
bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "catch" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "new" ||
         s == "delete" || s == "throw" || s == "operator" || s == "case" ||
         s == "co_return" || s == "co_await" || s == "co_yield";
}

// ---------------------------------------------------------------------------
// Template argument lists.
//
// A '<' immediately preceded by an identifier opens a candidate template
// argument list. The candidate is confirmed when a bounded forward scan
// reaches the matching '>' while seeing only "type-ish" tokens: identifiers,
// integer literals, '::', ',', '*', '&', '&&', '...', balanced (), [],
// nested '<'/'>'. Anything expression-like ('; { } = + - / float literals,
// relational two-char operators, strings) kills the candidate, so genuine
// comparisons such as `cached_lhs < alpha;` are never marked. This is the
// proper generalization of the PR-6 ad-hoc R2 carve-outs (the inline
// suppression on `std::atomic<std::uint64_t> qlhs_` and the AtomicU64
// aliases in obs/trace_ring.h), which this pass made unnecessary.
constexpr std::size_t kTemplateScanBudget = 64;

void mark_template_args(const Tokens& sig, std::vector<bool>& mark) {
  mark.assign(sig.size(), false);
  for (std::size_t i = 0; i + 1 < sig.size(); ++i) {
    if (!is_punct(sig[i], "<")) continue;
    if (mark[i]) continue;  // already inside a confirmed outer list
    if (i == 0 || !is_ident(sig[i - 1]) ||
        is_control_keyword(sig[i - 1].text))
      continue;

    int depth = 1;
    int paren = 0;
    std::size_t j = i + 1;
    std::size_t close = 0;
    const std::size_t limit = std::min(sig.size(), i + kTemplateScanBudget);
    for (; j < limit && depth > 0; ++j) {
      const Token& t = sig[j];
      if (t.kind == TokKind::kString || t.kind == TokKind::kCharLit) break;
      if (t.kind == TokKind::kNumber) {
        if (t.is_float) break;  // `x < 1.5` is arithmetic, not a template
        continue;
      }
      if (is_ident(t)) {
        if (is_control_keyword(t.text)) break;
        continue;
      }
      // Punctuators.
      if (t.text == "<") {
        ++depth;
      } else if (t.text == ">") {
        if (--depth == 0) close = j;
      } else if (t.text == ">>") {
        depth -= 2;
        if (depth <= 0) close = j;
      } else if (t.text == "(") {
        ++paren;
      } else if (t.text == ")") {
        if (--paren < 0) break;  // closes an enclosing group: not a template
      } else if (t.text == "::" || t.text == "," || t.text == "*" ||
                 t.text == "&" || t.text == "&&" || t.text == "..." ||
                 t.text == "[" || t.text == "]") {
        // fine inside a template argument list
      } else {
        break;  // ; { } = + - / <= >= == != || ?: etc. — expression context
      }
    }
    if (close == 0 || depth > 0 || paren != 0) continue;

    // What follows the closer decides: a template-id is followed by a
    // declarator, call, or further type syntax — never by an expression
    // continuation like a numeric literal.
    if (close + 1 < sig.size()) {
      const Token& after = sig[close + 1];
      const bool ok_after =
          is_ident(after) || is_punct(after, "(") || is_punct(after, "{") ||
          is_punct(after, "::") || is_punct(after, ",") ||
          is_punct(after, ")") || is_punct(after, ";") ||
          is_punct(after, ">") || is_punct(after, ">>") ||
          is_punct(after, "&") || is_punct(after, "*") ||
          is_punct(after, "[[");
      if (!ok_after) continue;
    }
    for (std::size_t k = i; k <= close; ++k) mark[k] = true;
  }
}

// ---------------------------------------------------------------------------
// Statements.

void mark_statements(const Tokens& sig, std::vector<std::size_t>& stmt_of,
                     std::vector<ScopeInfo::LineSpan>& spans) {
  stmt_of.assign(sig.size(), 0);
  spans.clear();
  std::size_t id = 0;
  ScopeInfo::LineSpan cur{0, 0};
  bool open = false;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (!open) {
      cur = {sig[i].line, sig[i].line};
      open = true;
    }
    stmt_of[i] = id;
    cur.last = std::max(cur.last, sig[i].line);
    if (is_punct(sig[i], ";") || is_punct(sig[i], "{") ||
        is_punct(sig[i], "}")) {
      spans.push_back(cur);
      ++id;
      open = false;
    }
  }
  if (open) spans.push_back(cur);
}

// ---------------------------------------------------------------------------
// Function definitions.

std::size_t skip_balanced(const Tokens& toks, std::size_t i) {
  const std::string& open = toks[i].text;
  const std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) ++depth;
    if (is_punct(toks[i], close) && --depth == 0) return i + 1;
  }
  return toks.size();
}

void find_functions(const Tokens& sig, const std::vector<bool>& tmpl,
                    std::vector<FunctionInfo>& out) {
  int stmt_start_line = sig.empty() ? 0 : sig.front().line;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const Token& t = sig[i];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) {
      if (i + 1 < sig.size()) stmt_start_line = sig[i + 1].line;
      continue;
    }
    if (!is_ident(t) || is_control_keyword(t.text)) continue;
    if (i + 1 >= sig.size() || !is_punct(sig[i + 1], "(")) continue;
    if (tmpl[i]) continue;  // a name inside a template argument list

    // Balance over the parameter list.
    std::size_t j = skip_balanced(sig, i + 1);
    if (j >= sig.size()) continue;

    // Walk the post-parameter clutter: cv/ref qualifiers, noexcept(...),
    // override/final, trailing return types, constructor init lists. The
    // walk ends at '{' (definition), or at ';' '=' ',' ')' (declaration,
    // deleted/defaulted, or this was a call/initializer all along).
    bool definition = false;
    std::size_t k = j;
    while (k < sig.size()) {
      const Token& u = sig[k];
      if (is_punct(u, "{")) {
        definition = true;
        break;
      }
      if (is_punct(u, ";") || is_punct(u, "=") || is_punct(u, ",") ||
          is_punct(u, ")") || is_punct(u, "}")) {
        break;
      }
      if (is_punct(u, ":")) {
        // Constructor member-init list: idents + balanced (...)/{...} pairs
        // separated by commas, ending at the body's '{'.
        ++k;
        while (k < sig.size() && !is_punct(sig[k], "{")) {
          if (is_punct(sig[k], "(")) {
            k = skip_balanced(sig, k);
            // A '{' directly after a closed initializer is the body unless
            // a ',' introduces another initializer.
            if (k < sig.size() && is_punct(sig[k], ",")) ++k;
            else break;
          } else {
            ++k;
          }
        }
        if (k < sig.size() && is_punct(sig[k], "{")) definition = true;
        break;
      }
      if (is_punct(u, "(")) {  // noexcept(...), attributes-with-args
        k = skip_balanced(sig, k);
        continue;
      }
      if (is_ident(u) || is_punct(u, "&") || is_punct(u, "&&") ||
          is_punct(u, "->") || is_punct(u, "::") || is_punct(u, "<") ||
          is_punct(u, ">") || is_punct(u, "*") || is_punct(u, "[[") ||
          is_punct(u, "]]")) {
        ++k;
        continue;
      }
      break;
    }
    if (!definition) continue;

    FunctionInfo fn;
    fn.name = t.text;
    fn.decl_line = stmt_start_line;
    fn.name_line = t.line;
    fn.open_line = sig[k].line;
    fn.body_begin = k + 1;
    fn.body_end = skip_balanced(sig, k) - 1;  // index of the closing '}'
    out.push_back(fn);
    // Continue scanning INSIDE the body too (member functions defined in a
    // class body, local helpers): do not jump over it.
  }
}

// ---------------------------------------------------------------------------
// Contracts.

bool starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

// Position of the close paren matching the leading '(' (rationales may
// contain balanced parens); npos while unbalanced.
std::size_t find_balanced_close(std::string_view s) {
  int depth = 0;
  for (std::size_t p = 0; p < s.size(); ++p) {
    if (s[p] == '(') ++depth;
    if (s[p] == ')' && --depth == 0) return p;
  }
  return std::string_view::npos;
}

// Comment content with the `//` opener and surrounding whitespace stripped.
std::string_view comment_body(std::string_view text) {
  if (text.size() >= 2 && text[0] == '/' &&
      (text[1] == '/' || text[1] == '*'))
    text.remove_prefix(2);
  return trim(text);
}

void parse_contracts(const std::string& file, const Tokens& all,
                     const Tokens& sig, std::vector<Contract>& contracts,
                     std::vector<Finding>& out) {
  std::set<int> code_lines;
  for (const Token& t : sig) code_lines.insert(t.line);

  // A directive may wrap onto following comment lines; cap the join so a
  // forgotten close paren cannot swallow a whole file header.
  constexpr int kMaxContinuationLines = 6;

  for (std::size_t ci = 0; ci < all.size(); ++ci) {
    const Token& t = all[ci];
    if (t.kind != TokKind::kComment) continue;
    // Anchored: the comment content (after `//` + whitespace) must start
    // with the tag, so prose mentioning the grammar is not a directive.
    const std::string_view head = comment_body(t.text);
    if (head.compare(0, 13, "frap:contract") != 0) continue;

    std::string rest(trim(head.substr(13)));
    // Join directly-following comment lines until the parens balance
    // (multi-line rationales; binding stays on the first line).
    int joined_line = t.line;
    int joined = 0;
    while (find_balanced_close(rest) == std::string_view::npos &&
           joined < kMaxContinuationLines && ci + 1 < all.size() &&
           all[ci + 1].kind == TokKind::kComment &&
           all[ci + 1].line == joined_line + 1) {
      ++ci;
      ++joined;
      joined_line = all[ci].line;
      rest += ' ';
      rest += comment_body(all[ci].text);
    }

    bool ok = !rest.empty() && rest.front() == '(';
    std::string_view body;
    if (ok) {
      const std::size_t close = find_balanced_close(rest);
      ok = close != std::string_view::npos;
      if (ok) body = trim(std::string_view(rest).substr(1, close - 1));
    }

    Contract c;
    c.line = t.line;
    if (ok) {
      if (body == "hotpath") {
        c.kind = ContractKind::kHotpath;
      } else if (starts_with(body, "rounds:")) {
        c.kind = ContractKind::kRounds;
        const std::string_view v = trim(body.substr(7));
        if (v == "conservative-for=admit") {
          c.payload = "admit";
        } else if (v == "conservative-for=reject") {
          c.payload = "reject";
        } else {
          ok = false;
        }
      } else if (starts_with(body, "order:")) {
        c.kind = ContractKind::kOrder;
        const std::string_view v = trim(body.substr(6));
        c.payload = std::string(v);
        if (v.empty()) ok = false;  // the rationale is the whole point
      } else {
        ok = false;
      }
    }
    if (!ok) {
      out.push_back(
          {file, t.line, "bad-contract",
           "malformed frap:contract directive; expected "
           "`frap:contract(hotpath)`, "
           "`frap:contract(rounds: conservative-for=<admit|reject>)`, or "
           "`frap:contract(order: <non-empty rationale>)`"});
      continue;
    }
    // Trailing contracts bind to their own line; standalone contracts bind
    // to the next code line (mirrors suppression binding).
    if (code_lines.count(t.line)) {
      c.bound_line = t.line;
    } else {
      const auto next = code_lines.upper_bound(t.line);
      c.bound_line = next != code_lines.end() ? *next : 0;
    }
    contracts.push_back(c);
  }
}

}  // namespace

bool ScopeInfo::has_contract(ContractKind kind, int line,
                             std::size_t tok_index) const {
  return find_contract(kind, line, tok_index) != nullptr;
}

const Contract* ScopeInfo::find_contract(ContractKind kind, int line,
                                         std::size_t tok_index) const {
  const LineSpan span =
      tok_index < statement_of.size() &&
              statement_of[tok_index] < statement_lines.size()
          ? statement_lines[statement_of[tok_index]]
          : LineSpan{line, line};
  for (const Contract& c : contracts) {
    if (c.kind != kind || c.bound_line == 0) continue;
    if (c.bound_line == line ||
        (c.bound_line >= span.first && c.bound_line <= span.last))
      return &c;
  }
  return nullptr;
}

ScopeInfo analyze_scopes(const std::string& file, const Tokens& all,
                         const Tokens& sig, std::vector<Finding>& out) {
  ScopeInfo info;
  mark_template_args(sig, info.in_template_args);
  mark_statements(sig, info.statement_of, info.statement_lines);
  find_functions(sig, info.in_template_args, info.functions);
  parse_contracts(file, all, sig, info.contracts, out);

  // Attach hotpath contracts: a function carries the contract when the
  // bound line falls anywhere in its declaration header.
  for (std::size_t fi = 0; fi < info.functions.size(); ++fi) {
    const FunctionInfo& fn = info.functions[fi];
    for (const Contract& c : info.contracts) {
      if (c.kind != ContractKind::kHotpath || c.bound_line == 0) continue;
      if (c.bound_line >= fn.decl_line && c.bound_line <= fn.open_line) {
        info.hotpath_functions.push_back(fi);
        break;
      }
    }
  }
  return info;
}

}  // namespace frap::lint
