// Minimal C++ tokenizer for frap-lint.
//
// Produces just enough structure for the repo-specific rules in lint.h:
// identifiers, numeric literals (with a float/integer distinction), multi-
// character punctuators, and line comments (kept, because suppression
// directives live there). String/char literals are lexed and skipped so
// their contents can never trigger a rule; preprocessor directive lines are
// dropped entirely (including backslash continuations); block comments are
// dropped. This is NOT a conforming C++ lexer — it is deliberately small,
// deterministic, and easy to audit, which matters more here than covering
// trigraphs or exotic literal prefixes the frap tree never uses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace frap::lint {

enum class TokKind {
  kIdentifier,  // keywords are identifiers too; rules match by text
  kNumber,
  kPunct,
  kString,   // text dropped; placeholder keeps operand positions honest
  kCharLit,  // likewise
  kComment,  // line comments only, full text including the leading //
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
  bool is_float = false;  // kNumber only: has '.' or a decimal exponent
};

// Tokenizes one translation unit. Never throws; unrecognized bytes are
// skipped so a weird file degrades to fewer tokens, not a crash.
std::vector<Token> tokenize(std::string_view src);

}  // namespace frap::lint
