// Unit tests for the slot-map TaskStore (generation reuse, stale-handle
// rejection, inline vs arena contribution storage, departed bitmask) and
// the flat open-addressing IdMap (backward-shift deletion, growth,
// randomized against an unordered_map reference).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/task_store.h"
#include "util/id_map.h"
#include "util/rng.h"

namespace frap::core {
namespace {

TEST(TaskStoreTest, CreateReadDestroy) {
  TaskStore store;
  const std::uint32_t stages[] = {1, 3, 4};
  const double values[] = {0.1, 0.2, 0.3};
  const TaskHandle h = store.create(77, stages, values, 3);
  ASSERT_TRUE(store.live(h));
  EXPECT_EQ(store.task_id(h), 77u);
  EXPECT_EQ(store.touched(h), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(store.entry_stage(h, i), stages[i]);
    EXPECT_DOUBLE_EQ(store.entry_value(h, i), values[i]);
    EXPECT_FALSE(store.entry_departed(h, i));
  }
  EXPECT_EQ(store.find_entry(h, 3), 1u);
  EXPECT_EQ(store.find_entry(h, 2), TaskStore::kNoEntry);
  EXPECT_EQ(store.size(), 1u);
  store.destroy(h);
  EXPECT_FALSE(store.live(h));
  EXPECT_EQ(store.size(), 0u);
}

TEST(TaskStoreTest, GenerationReuseRejectsStaleHandles) {
  TaskStore store;
  const std::uint32_t stages[] = {0};
  const double values[] = {0.5};
  const TaskHandle a = store.create(1, stages, values, 1);
  store.destroy(a);
  // The freed slot is reused; the stale handle must not alias the tenant.
  const TaskHandle b = store.create(2, stages, values, 1);
  EXPECT_EQ(TaskStore::index_of(a), TaskStore::index_of(b));
  EXPECT_NE(a, b);
  EXPECT_FALSE(store.live(a));
  ASSERT_TRUE(store.live(b));
  EXPECT_EQ(store.task_id(b), 2u);
  EXPECT_FALSE(store.live(kInvalidTaskHandle));
}

TEST(TaskStoreTest, HandleAtRoundTrips) {
  TaskStore store;
  const std::uint32_t stages[] = {2};
  const double values[] = {0.25};
  const TaskHandle h = store.create(5, stages, values, 1);
  EXPECT_EQ(store.handle_at(TaskStore::index_of(h)), h);
}

TEST(TaskStoreTest, WideTasksSpillToArenaAndBlocksRecycle) {
  TaskStore store;
  std::vector<std::uint32_t> stages;
  std::vector<double> values;
  for (std::uint32_t j = 0; j < 12; ++j) {  // > kInlineEntries
    stages.push_back(j);
    values.push_back(0.01 * (j + 1));
  }
  const TaskHandle h = store.create(9, stages.data(), values.data(), 12);
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(store.entry_stage(h, i), i);
    EXPECT_DOUBLE_EQ(store.entry_value(h, i), 0.01 * (i + 1));
  }
  store.set_entry_value(h, 7, 0.9);
  EXPECT_DOUBLE_EQ(store.entry_value(h, 7), 0.9);
  store.set_entry_departed(h, 3);
  EXPECT_TRUE(store.entry_departed(h, 3));
  EXPECT_FALSE(store.entry_departed(h, 4));

  const std::size_t warm_words = store.arena_capacity_words();
  store.destroy(h);
  // A same-width successor reuses the freed block: the arena stays put.
  const TaskHandle h2 = store.create(10, stages.data(), values.data(), 12);
  EXPECT_EQ(store.arena_capacity_words(), warm_words);
  EXPECT_DOUBLE_EQ(store.entry_value(h2, 11), 0.12);
  EXPECT_FALSE(store.entry_departed(h2, 3));  // mask cleared on reuse
}

TEST(TaskStoreTest, DepartedMaskIndependentPerEntry) {
  TaskStore store;
  const std::uint32_t stages[] = {0, 2, 5, 6};
  const double values[] = {0.1, 0.1, 0.1, 0.1};
  const TaskHandle h = store.create(3, stages, values, 4);  // inline path
  store.set_entry_departed(h, 1);
  store.set_entry_departed(h, 3);
  EXPECT_FALSE(store.entry_departed(h, 0));
  EXPECT_TRUE(store.entry_departed(h, 1));
  EXPECT_FALSE(store.entry_departed(h, 2));
  EXPECT_TRUE(store.entry_departed(h, 3));
}

TEST(TaskStoreTest, ForEachVisitsExactlyLiveSlots) {
  TaskStore store;
  const std::uint32_t stages[] = {0};
  const double values[] = {0.1};
  std::vector<TaskHandle> hs;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    hs.push_back(store.create(id, stages, values, 1));
  }
  for (std::size_t i = 0; i < hs.size(); i += 2) store.destroy(hs[i]);
  std::vector<std::uint64_t> seen;
  store.for_each([&](TaskHandle h) { seen.push_back(store.task_id(h)); });
  EXPECT_EQ(seen.size(), 5u);
  for (std::uint64_t id : seen) EXPECT_EQ(id % 2, 0u);
}

// ------------------------------------------------------------ IdMap ------

TEST(IdMapTest, InsertFindErase) {
  util::IdMap map;
  EXPECT_EQ(map.find(1), util::IdMap::kNotFound);
  map.insert(1, 10);
  map.insert(2, 20);
  EXPECT_EQ(map.find(1), 10u);
  EXPECT_EQ(map.find(2), 20u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_EQ(map.find(1), util::IdMap::kNotFound);
  EXPECT_EQ(map.find(2), 20u);
}

TEST(IdMapTest, BackwardShiftKeepsProbeChainsReachable) {
  // Dense sequential keys force probe-chain collisions across growth
  // boundaries; every surviving key must stay findable after each erase.
  util::IdMap map;
  for (std::uint64_t k = 0; k < 200; ++k) {
    map.insert(k, static_cast<std::uint32_t>(k + 1));
  }
  for (std::uint64_t k = 0; k < 200; k += 2) {
    ASSERT_TRUE(map.erase(k));
    // Spot-check neighbours after each deletion.
    if (k + 1 < 200) {
      ASSERT_EQ(map.find(k + 1), static_cast<std::uint32_t>(k + 2)) << k;
    }
  }
  for (std::uint64_t k = 0; k < 200; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.find(k), util::IdMap::kNotFound);
    } else {
      EXPECT_EQ(map.find(k), static_cast<std::uint32_t>(k + 1));
    }
  }
}

TEST(IdMapTest, RandomizedAgainstUnorderedMap) {
  util::IdMap map;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  util::Rng rng(321);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(rng.uniform_int(0, 499));
    const bool present = ref.find(key) != ref.end();
    if (!present && rng.bernoulli(0.6)) {
      const auto value = static_cast<std::uint32_t>(step);
      map.insert(key, value);
      ref.emplace(key, value);
    } else if (present && rng.bernoulli(0.5)) {
      EXPECT_TRUE(map.erase(key));
      ref.erase(key);
    } else {
      const auto got = map.find(key);
      if (present) {
        EXPECT_EQ(got, ref[key]);
      } else {
        EXPECT_EQ(got, util::IdMap::kNotFound);
      }
    }
  }
  EXPECT_EQ(map.size(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_EQ(map.find(k), v);
}

TEST(IdMapTest, ReservePreventsLaterGrowth) {
  util::IdMap map;
  map.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    map.insert(k, static_cast<std::uint32_t>(k));
  }
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(map.find(k), static_cast<std::uint32_t>(k));
  }
}

}  // namespace
}  // namespace frap::core
