#include <gtest/gtest.h>

#include <vector>

#include "core/feasible_region.h"
#include "core/reservation.h"
#include "core/synthetic_utilization.h"
#include "sim/simulator.h"

namespace frap::core {
namespace {

using Rule = ReservationPlanner::StageRule;

TEST(ReservationPlannerTest, SumRuleAccumulates) {
  ReservationPlanner p({Rule::kSum, Rule::kSum});
  p.add_contributions({0.1, 0.2});
  p.add_contributions({0.15, 0.05});
  const auto r = p.reserved();
  EXPECT_DOUBLE_EQ(r[0], 0.25);
  EXPECT_DOUBLE_EQ(r[1], 0.25);
}

TEST(ReservationPlannerTest, MaxRuleTakesLargest) {
  ReservationPlanner p({Rule::kMax});
  p.add_contributions({0.1});
  p.add_contributions({0.3});
  p.add_contributions({0.2});
  EXPECT_DOUBLE_EQ(p.reserved()[0], 0.3);
}

TEST(ReservationPlannerTest, MixedRulesMatchTsce) {
  // The Sec. 5 computation: stages 1-2 sum, stage 3 (consoles) max.
  ReservationPlanner p({Rule::kSum, Rule::kSum, Rule::kMax});
  p.add_contributions({0.2, 0.13, 0.06});   // Weapon Detection
  p.add_contributions({0.1, 0.1, 0.1});     // Weapon Targeting
  p.add_contributions({0.1, 0.02, 0.1});    // UAV video
  const auto r = p.reserved();
  EXPECT_NEAR(r[0], 0.4, 1e-12);
  EXPECT_NEAR(r[1], 0.25, 1e-12);
  EXPECT_NEAR(r[2], 0.1, 1e-12);
}

TEST(ReservationPlannerTest, CertificationAgainstRegion) {
  ReservationPlanner p({Rule::kSum, Rule::kSum, Rule::kMax});
  p.add_contributions({0.4, 0.25, 0.1});
  const auto region = FeasibleRegion::deadline_monotonic(3);
  EXPECT_NEAR(p.certification_lhs(region), 0.93055, 1e-4);
  EXPECT_TRUE(p.certifies(region));
}

TEST(ReservationPlannerTest, OverCommittedFailsCertification) {
  ReservationPlanner p({Rule::kSum, Rule::kSum});
  p.add_contributions({0.5, 0.5});
  EXPECT_FALSE(p.certifies(FeasibleRegion::deadline_monotonic(2)));
}

TEST(ReservationPlannerTest, AddTaskUsesContributions) {
  ReservationPlanner p({Rule::kSum, Rule::kSum});
  TaskSpec spec;
  spec.id = 1;
  spec.deadline = 2.0;
  spec.stages.resize(2);
  spec.stages[0].compute = 0.5;  // -> 0.25
  spec.stages[1].compute = 1.0;  // -> 0.5
  p.add_task(spec);
  const auto r = p.reserved();
  EXPECT_DOUBLE_EQ(r[0], 0.25);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
}

TEST(ReservationPlannerTest, ApplyInstallsFloors) {
  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, 2);
  ReservationPlanner p({Rule::kSum, Rule::kMax});
  p.add_contributions({0.2, 0.3});
  p.add_contributions({0.1, 0.1});
  p.apply(tracker);
  EXPECT_DOUBLE_EQ(tracker.utilization(0), 0.3);
  EXPECT_DOUBLE_EQ(tracker.utilization(1), 0.3);
  EXPECT_DOUBLE_EQ(tracker.reservation(0), 0.3);
}

TEST(ReservationPlannerTest, EmptyPlannerReservesNothing) {
  ReservationPlanner p({Rule::kSum, Rule::kSum});
  const auto r = p.reserved();
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 0.0);
  EXPECT_TRUE(p.certifies(FeasibleRegion::deadline_monotonic(2)));
}

}  // namespace
}  // namespace frap::core
