#include <gtest/gtest.h>

#include "pipeline/replication.h"

namespace frap::pipeline {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.workload =
      workload::PipelineWorkloadConfig::balanced(2, 10 * kMilli, 1.0, 50.0);
  cfg.sim_duration = 5.0;
  cfg.warmup = 1.0;
  return cfg;
}

TEST(ReplicationTest, RunsOncePerSeed) {
  const auto rep = run_replicated(tiny_config(), {1, 2, 3});
  EXPECT_EQ(rep.runs.size(), 3u);
  EXPECT_EQ(rep.avg_stage_utilization.count(), 3u);
  EXPECT_EQ(rep.miss_ratio.count(), 3u);
}

TEST(ReplicationTest, SeedBaseConvenience) {
  const auto a = run_replicated(tiny_config(), {7, 8});
  const auto b = run_replicated(tiny_config(), 7, 2);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].offered, b.runs[i].offered);
    EXPECT_EQ(a.runs[i].events, b.runs[i].events);
  }
}

TEST(ReplicationTest, DifferentSeedsGiveDifferentRuns) {
  const auto rep = run_replicated(tiny_config(), {1, 2});
  EXPECT_NE(rep.runs[0].offered, rep.runs[1].offered);
}

TEST(ReplicationTest, StatsAggregateAcrossRuns) {
  const auto rep = run_replicated(tiny_config(), 1, 4);
  double sum = 0;
  for (const auto& r : rep.runs) sum += r.avg_stage_utilization;
  EXPECT_NEAR(rep.avg_stage_utilization.mean(), sum / 4.0, 1e-12);
  // Soundness holds in every replication.
  EXPECT_DOUBLE_EQ(rep.miss_ratio.max(), 0.0);
}

TEST(ReplicationTest, SingleSeedMatchesDirectRun) {
  auto cfg = tiny_config();
  const auto rep = run_replicated(cfg, {42});
  cfg.seed = 42;
  const auto direct = run_experiment(cfg);
  EXPECT_EQ(rep.runs[0].offered, direct.offered);
  EXPECT_EQ(rep.runs[0].events, direct.events);
  EXPECT_DOUBLE_EQ(rep.avg_stage_utilization.mean(),
                   direct.avg_stage_utilization);
}

}  // namespace
}  // namespace frap::pipeline
