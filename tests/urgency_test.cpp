#include <gtest/gtest.h>

#include <vector>

#include "sched/urgency.h"

namespace frap::sched {
namespace {

TEST(ComputeAlphaTest, EmptyAndSingletonAreOne) {
  EXPECT_DOUBLE_EQ(compute_alpha({}), 1.0);
  std::vector<TaskUrgency> one{{1.0, 5.0}};
  EXPECT_DOUBLE_EQ(compute_alpha(one), 1.0);
}

TEST(ComputeAlphaTest, DeadlineMonotonicHasNoInversion) {
  // Priority = deadline: every higher-priority task has a shorter deadline.
  std::vector<TaskUrgency> tasks{{1.0, 1.0}, {2.0, 2.0}, {5.0, 5.0}};
  EXPECT_DOUBLE_EQ(compute_alpha(tasks), 1.0);
}

TEST(ComputeAlphaTest, FullInversionGivesRatio) {
  // The most urgent task got the lowest priority.
  std::vector<TaskUrgency> tasks{{1.0, 10.0}, {2.0, 1.0}};
  // Pair: high-priority task has D = 10, low-priority D = 1: alpha = 1/10.
  EXPECT_DOUBLE_EQ(compute_alpha(tasks), 0.1);
}

TEST(ComputeAlphaTest, RandomPrioritiesWorstCaseIsDminOverDmax) {
  // With priorities uncorrelated with deadlines the worst observed pair
  // bounds alpha below by D_least / D_most (paper Sec. 2).
  std::vector<TaskUrgency> tasks{
      {3.0, 4.0}, {1.0, 8.0}, {2.0, 2.0}, {4.0, 6.0}};
  // Most urgent priority 1.0 has D=8; priority 2.0 has D=2 -> ratio 2/8.
  EXPECT_DOUBLE_EQ(compute_alpha(tasks), 0.25);
}

TEST(ComputeAlphaTest, EqualPriorityGroupCountsBothDirections) {
  // Two tasks at the same priority with different deadlines invert against
  // each other: alpha = Dmin/Dmax within the group.
  std::vector<TaskUrgency> tasks{{1.0, 2.0}, {1.0, 8.0}};
  EXPECT_DOUBLE_EQ(compute_alpha(tasks), 0.25);
}

TEST(ComputeAlphaTest, PrefixMaxNotAdjacentOnly) {
  // The inversion partner can be far away in priority order.
  std::vector<TaskUrgency> tasks{{1.0, 100.0}, {2.0, 90.0}, {3.0, 10.0}};
  // Task at priority 3 pairs against max deadline above it (100).
  EXPECT_DOUBLE_EQ(compute_alpha(tasks), 0.1);
}

TEST(OnlineAlphaTest, StartsAtOne) {
  OnlineAlphaEstimator e;
  EXPECT_DOUBLE_EQ(e.alpha(), 1.0);
  e.observe({1.0, 5.0});
  EXPECT_DOUBLE_EQ(e.alpha(), 1.0);
}

TEST(OnlineAlphaTest, DetectsInversionOnArrival) {
  OnlineAlphaEstimator e;
  e.observe({1.0, 10.0});  // urgent priority, long deadline
  e.observe({2.0, 1.0});   // lax priority, short deadline
  EXPECT_DOUBLE_EQ(e.alpha(), 0.1);
}

TEST(OnlineAlphaTest, OrderIndependent) {
  OnlineAlphaEstimator a;
  OnlineAlphaEstimator b;
  std::vector<TaskUrgency> tasks{
      {3.0, 4.0}, {1.0, 8.0}, {2.0, 2.0}, {4.0, 6.0}};
  for (const auto& t : tasks) a.observe(t);
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) b.observe(*it);
  EXPECT_DOUBLE_EQ(a.alpha(), b.alpha());
  EXPECT_DOUBLE_EQ(a.alpha(), compute_alpha(tasks));
}

TEST(OnlineAlphaTest, MatchesBatchOnRandomStreams) {
  // Cross-validate the online estimator against the batch computation.
  std::vector<TaskUrgency> tasks;
  OnlineAlphaEstimator online;
  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / static_cast<double>(1 << 24);
  };
  for (int i = 0; i < 200; ++i) {
    TaskUrgency t{next() * 10.0, 0.1 + next() * 9.9};
    tasks.push_back(t);
    online.observe(t);
    ASSERT_NEAR(online.alpha(), compute_alpha(tasks), 1e-12) << "i=" << i;
  }
}

TEST(OnlineAlphaTest, RatchetsDownOnly) {
  OnlineAlphaEstimator e;
  e.observe({1.0, 10.0});
  e.observe({2.0, 5.0});
  const double after_first = e.alpha();
  e.observe({1.5, 9.0});  // milder inversion: must not raise alpha
  EXPECT_LE(e.alpha(), after_first);
}

TEST(OnlineAlphaTest, EqualPriorityRange) {
  OnlineAlphaEstimator e;
  e.observe({1.0, 4.0});
  e.observe({1.0, 2.0});
  EXPECT_DOUBLE_EQ(e.alpha(), 0.5);
}

}  // namespace
}  // namespace frap::sched
