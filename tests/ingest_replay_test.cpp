// Differential: the wire path (encode -> decode -> replay) must produce
// BIT-IDENTICAL admission decisions to the in-process run it captured —
// verdicts, reasons, and every double in the decision record — over >= 10k
// randomized arrivals (the ISSUE 10 acceptance bar). Also covers the
// sharded service, burst admission, class-table vs inline equivalence, and
// rebased replay.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "core/admission.h"
#include "core/admission_decision.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "ingest/ingest_session.h"
#include "ingest/trace_codec.h"
#include "ingest/wire_decoder.h"
#include "ingest/wire_encoder.h"
#include "service/sharded_admission.h"
#include "sim/simulator.h"
#include "workload/pipeline_workload.h"
#include "workload/replay.h"

namespace {

using namespace frap;
using core::AdmissionDecision;

bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_identical(const AdmissionDecision& a, const AdmissionDecision& b,
                      std::size_t i) {
  EXPECT_EQ(a.admitted, b.admitted) << i;
  EXPECT_EQ(a.reason, b.reason) << i;
  EXPECT_TRUE(bit_equal(a.lhs_before, b.lhs_before)) << i;
  EXPECT_TRUE(bit_equal(a.lhs_with_task, b.lhs_with_task)) << i;
  EXPECT_TRUE(bit_equal(a.bound, b.bound)) << i;
  EXPECT_TRUE(bit_equal(a.arrival, b.arrival)) << i;
  EXPECT_TRUE(bit_equal(a.decided_at, b.decided_at)) << i;
}

// A load high enough that the region saturates and a healthy share of
// arrivals reject: the differential exercises both verdicts and the full
// range of LHS values near the boundary.
workload::ArrivalTrace saturating_trace(std::size_t count,
                                        std::uint64_t seed) {
  auto cfg = workload::PipelineWorkloadConfig::balanced(
      /*stages=*/3, /*mean_compute_per_stage=*/10e-3, /*input_load=*/0.9,
      /*resolution=*/50.0);
  workload::PipelineWorkloadGenerator gen(cfg, seed);
  return workload::capture_poisson(gen, count);
}

struct ControllerRig {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker;
  core::AdmissionController controller;

  explicit ControllerRig(std::size_t stages)
      : tracker(sim, stages),
        controller(sim, tracker,
                   core::FeasibleRegion::deadline_monotonic(stages)) {}
};

std::vector<AdmissionDecision> run_in_process(
    const workload::ArrivalTrace& trace) {
  ControllerRig rig(trace.num_stages());
  std::vector<AdmissionDecision> out;
  out.reserve(trace.size());
  for (const auto& r : trace.records()) {
    rig.sim.run_until(r.time);
    out.push_back(rig.controller.try_admit(r.task, r.time));
  }
  return out;
}

TEST(IngestReplay, TenThousandArrivalsBitIdenticalToInProcess) {
  const auto trace = saturating_trace(10000, 20260808);
  const auto expected = run_in_process(trace);

  ingest::WireEncoder enc(trace.num_stages());
  const auto frame = ingest::encode_trace(trace, enc);
  const auto view = ingest::WireView::open(frame);
  ASSERT_TRUE(view.valid());

  ControllerRig rig(trace.num_stages());
  ingest::IngestSession session(trace.num_stages());
  std::vector<AdmissionDecision> actual;
  const auto st =
      session.replay(view, rig.controller, rig.sim, &actual);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.records, trace.size());
  EXPECT_GT(st.admitted, 0u);
  EXPECT_GT(st.rejected, 0u);  // the saturating load must exercise rejects

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    expect_identical(expected[i], actual[i], i);
}

TEST(IngestReplay, FileRoundTripPreservesDecisions) {
  const auto trace = saturating_trace(2000, 7);
  const auto expected = run_in_process(trace);

  ingest::WireEncoder enc(trace.num_stages());
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(ingest::write_frame(file, ingest::encode_trace(trace, enc)));
  std::vector<std::byte> bytes;
  ASSERT_TRUE(ingest::read_frame(file, &bytes));

  const auto view = ingest::WireView::open(bytes);
  ASSERT_TRUE(view.valid());
  ControllerRig rig(trace.num_stages());
  ingest::IngestSession session(trace.num_stages());
  std::vector<AdmissionDecision> actual;
  ASSERT_TRUE(session.replay(view, rig.controller, rig.sim, &actual).ok());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    expect_identical(expected[i], actual[i], i);
}

TEST(IngestReplay, ShardedServiceBitIdenticalToInProcess) {
  const auto trace = saturating_trace(3000, 99);
  const auto make_svc = [&] {
    return std::make_unique<service::ShardedAdmissionService>(
        core::FeasibleRegion::deadline_monotonic(trace.num_stages()),
        service::ShardedAdmissionConfig{.num_shards = 4});
  };

  auto svc_a = make_svc();
  std::vector<AdmissionDecision> expected;
  for (const auto& r : trace.records())
    expected.push_back(svc_a->try_admit(r.task, r.time));

  ingest::WireEncoder enc(trace.num_stages());
  const auto view = ingest::WireView::open(ingest::encode_trace(trace, enc));
  ASSERT_TRUE(view.valid());
  auto svc_b = make_svc();
  ingest::IngestSession session(trace.num_stages());
  std::vector<AdmissionDecision> actual;
  const auto st = session.admit(view, *svc_b, &actual);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    expect_identical(expected[i], actual[i], i);
}

TEST(IngestReplay, BurstAdmissionMatchesInProcessBurst) {
  const auto trace = saturating_trace(1000, 3);

  // In-process burst over materialized specs.
  ControllerRig rig_a(trace.num_stages());
  core::BatchAdmissionController batch_a(rig_a.controller);
  std::vector<core::TaskSpec> specs;
  for (const auto& r : trace.records()) specs.push_back(r.task);
  const auto& expected = batch_a.try_admit_burst(specs);

  // Wire burst.
  ingest::WireEncoder enc(trace.num_stages());
  const auto view = ingest::WireView::open(ingest::encode_trace(trace, enc));
  ASSERT_TRUE(view.valid());
  ControllerRig rig_b(trace.num_stages());
  core::BatchAdmissionController batch_b(rig_b.controller);
  ingest::IngestSession session(trace.num_stages());
  std::vector<AdmissionDecision> actual;
  const auto st = session.admit_burst(view, batch_b, &actual);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    expect_identical(expected[i], actual[i], i);
}

TEST(IngestReplay, ClassRecordsDecideIdenticallyToInlineRecords) {
  // One shared demand template, ids/deadlines/importances varying: the
  // class-record frame must admit exactly like the inline frame.
  constexpr std::size_t kStages = 4;
  std::vector<core::StageDemand> stages(kStages);
  stages[0].compute = 8e-3;
  stages[2].compute = 4e-3;

  ingest::TaskClassTable table;
  const std::uint16_t cls = table.add(stages);

  ingest::WireEncoder inline_enc(kStages);
  ingest::WireEncoder class_enc(kStages);
  core::TaskSpec spec;
  spec.stages = stages;
  Time t = 0;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    t += 1e-3;
    spec.id = i;
    spec.deadline = 0.2 + 1e-4 * static_cast<double>(i % 7);
    spec.importance = static_cast<double>(i % 5);
    inline_enc.add(t, spec);
    class_enc.add_class(t, spec.id, spec.deadline, spec.importance, cls);
  }

  const auto run = [&](ingest::WireEncoder& enc, ingest::IngestSession& s) {
    const auto view = ingest::WireView::open(enc.frame());
    EXPECT_TRUE(view.valid());
    ControllerRig rig(kStages);
    std::vector<AdmissionDecision> out;
    EXPECT_TRUE(s.replay(view, rig.controller, rig.sim, &out).ok());
    return out;
  };
  ingest::IngestSession inline_session(kStages);
  ingest::IngestSession class_session(kStages, table);
  const auto expected = run(inline_enc, inline_session);
  const auto actual = run(class_enc, class_session);
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_FALSE(actual.empty());
  for (std::size_t i = 0; i < expected.size(); ++i)
    expect_identical(expected[i], actual[i], i);
}

TEST(IngestReplay, RebaseShiftsArrivalsButNotVerdicts) {
  const auto trace = saturating_trace(1000, 55);
  ingest::WireEncoder enc(trace.num_stages());
  const auto view = ingest::WireView::open(ingest::encode_trace(trace, enc));
  ASSERT_TRUE(view.valid());

  ControllerRig rig_a(trace.num_stages());
  ingest::IngestSession session_a(trace.num_stages());
  std::vector<AdmissionDecision> plain;
  ASSERT_TRUE(
      session_a.replay(view, rig_a.controller, rig_a.sim, &plain).ok());

  const Time epoch = 1000.0;
  ControllerRig rig_b(trace.num_stages());
  ingest::IngestSession session_b(trace.num_stages());
  std::vector<AdmissionDecision> rebased;
  ASSERT_TRUE(
      session_b.replay(view, rig_b.controller, rig_b.sim, &rebased, epoch)
          .ok());

  ASSERT_EQ(rebased.size(), plain.size());
  const Duration shift = epoch - view.base_time();
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(rebased[i].admitted, plain[i].admitted) << i;
    EXPECT_EQ(rebased[i].reason, plain[i].reason) << i;
    EXPECT_DOUBLE_EQ(rebased[i].arrival, plain[i].arrival + shift) << i;
  }
}

TEST(IngestReplay, MismatchedFrameIsRejectedWholeWithTypedError) {
  const auto trace = saturating_trace(50, 1);
  ingest::WireEncoder enc(trace.num_stages());
  const auto view = ingest::WireView::open(ingest::encode_trace(trace, enc));
  ASSERT_TRUE(view.valid());

  ControllerRig rig(trace.num_stages() + 1);
  ingest::IngestSession session(trace.num_stages() + 1);  // wrong width
  std::vector<AdmissionDecision> out;
  const auto st = session.replay(view, rig.controller, rig.sim, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error, ingest::WireError::kStageMismatch);
  EXPECT_EQ(st.records, 0u);  // nothing reached the controller
  EXPECT_TRUE(out.empty());
}

}  // namespace
