#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sensitivity.h"
#include "core/stage_delay.h"

namespace frap::core {
namespace {

TEST(SensitivityTest, PressuresAreTheDerivative) {
  const std::vector<double> u{0.1, 0.4};
  const auto p = stage_pressures(u);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], stage_delay_factor_derivative(0.1));
  EXPECT_DOUBLE_EQ(p[1], stage_delay_factor_derivative(0.4));
  EXPECT_GT(p[1], p[0]);  // pressure grows with utilization
}

TEST(SensitivityTest, SaturatedStageHasInfinitePressure) {
  const auto p = stage_pressures(std::vector<double>{0.5, 1.0});
  EXPECT_TRUE(std::isinf(p[1]));
}

TEST(SensitivityTest, UpgradePriorityOrdersByPressure) {
  const std::vector<double> u{0.2, 0.55, 0.4};
  const auto order = upgrade_priority(u);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(SensitivityTest, UpgradePriorityTieBreaksByIndex) {
  const std::vector<double> u{0.3, 0.3, 0.3};
  const auto order = upgrade_priority(u);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SensitivityTest, DeltaEstimateMatchesFiniteDifference) {
  const std::vector<double> u{0.25, 0.5};
  const double delta = 1e-5;
  const double estimate = lhs_delta_estimate(u, 1, delta);
  const double exact =
      stage_delay_factor(0.5 + delta) - stage_delay_factor(0.5);
  EXPECT_NEAR(estimate, exact, 1e-9);
}

TEST(SensitivityTest, NegativeDeltaReducesLhs) {
  const std::vector<double> u{0.25, 0.5};
  EXPECT_LT(lhs_delta_estimate(u, 1, -0.1), 0.0);
}

}  // namespace
}  // namespace frap::core
