// Analytical anchors for Theorem 1's delay function f(U) = U(1-U/2)/(1-U).
#include <gtest/gtest.h>

#include <cmath>

#include "core/stage_delay.h"
#include "util/math.h"

namespace frap::core {
namespace {

TEST(StageDelayTest, ZeroUtilizationZeroDelay) {
  EXPECT_DOUBLE_EQ(stage_delay_factor(0.0), 0.0);
}

TEST(StageDelayTest, KnownValues) {
  // f(0.5) = 0.5 * 0.75 / 0.5 = 0.75.
  EXPECT_DOUBLE_EQ(stage_delay_factor(0.5), 0.75);
  // TSCE certification values (Sec. 5): f(0.4), f(0.25), f(0.1).
  EXPECT_NEAR(stage_delay_factor(0.4), 0.4 * 0.8 / 0.6, 1e-12);
  EXPECT_NEAR(stage_delay_factor(0.25), 0.25 * 0.875 / 0.75, 1e-12);
  EXPECT_NEAR(stage_delay_factor(0.1), 0.1 * 0.95 / 0.9, 1e-12);
}

TEST(StageDelayTest, SaturatedStageIsInfinite) {
  EXPECT_TRUE(std::isinf(stage_delay_factor(1.0)));
  EXPECT_TRUE(std::isinf(stage_delay_factor(1.5)));
}

TEST(StageDelayTest, DivergesNearOne) {
  EXPECT_GT(stage_delay_factor(0.999), 100.0);
}

TEST(StageDelayTest, UniprocessorBoundMatchesPaper) {
  // U <= 1/(1 + sqrt(1/2)) = 2 - sqrt(2) ~= 0.5858 (Sec. 3.1).
  const double b = uniprocessor_bound();
  EXPECT_NEAR(b, 0.585786437626905, 1e-12);
  EXPECT_NEAR(b, 1.0 / (1.0 + std::sqrt(0.5)), 1e-12);
  // f at the bound equals exactly 1.
  EXPECT_NEAR(stage_delay_factor(b), 1.0, 1e-12);
}

TEST(StageDelayTest, InverseRoundTrips) {
  for (double u = 0.0; u < 0.99; u += 0.01) {
    const double y = stage_delay_factor(u);
    EXPECT_NEAR(stage_delay_factor_inverse(y), u, 1e-9) << "u=" << u;
  }
}

TEST(StageDelayTest, InverseKnownValues) {
  EXPECT_NEAR(stage_delay_factor_inverse(1.0), 2.0 - std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(stage_delay_factor_inverse(0.0), 0.0);
  // f_inv(y) = 1 + y - sqrt(1 + y^2).
  EXPECT_NEAR(stage_delay_factor_inverse(0.5),
              1.5 - std::sqrt(1.25), 1e-12);
}

TEST(StageDelayTest, BalancedStageBound) {
  // N = 1 reduces to the uniprocessor bound.
  EXPECT_NEAR(balanced_stage_bound(1), uniprocessor_bound(), 1e-12);
  // N = 2: f_inv(1/2) = 1.5 - sqrt(1.25) ~= 0.38197.
  EXPECT_NEAR(balanced_stage_bound(2), 1.5 - std::sqrt(1.25), 1e-12);
  // Monotonically decreasing in N.
  double prev = balanced_stage_bound(1);
  for (std::size_t n = 2; n <= 32; ++n) {
    const double b = balanced_stage_bound(n);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(StageDelayTest, BalancedBoundScalesAsOneOverN) {
  // Sec. 3.1 argues the bound does not get more pessimistic with pipeline
  // depth because U_j = O(1/N): check N * U*_N approaches 1 from below.
  for (std::size_t n : {10u, 100u, 1000u}) {
    const double product = static_cast<double>(n) * balanced_stage_bound(n);
    EXPECT_GT(product, 0.9);
    EXPECT_LT(product, 1.0);
  }
}

TEST(StageDelayTest, DerivativeMatchesFiniteDifference) {
  const double h = 1e-7;
  for (double u = 0.05; u < 0.95; u += 0.05) {
    const double numeric =
        (stage_delay_factor(u + h) - stage_delay_factor(u - h)) / (2 * h);
    EXPECT_NEAR(stage_delay_factor_derivative(u), numeric, 1e-4)
        << "u=" << u;
  }
}

TEST(StageDelayTest, StageDelayBoundScalesWithDmax) {
  EXPECT_DOUBLE_EQ(stage_delay_bound(0.5, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(stage_delay_bound(0.0, 5.0), 0.0);
  EXPECT_TRUE(std::isinf(stage_delay_bound(1.0, 1.0)));
}

// Property sweep: monotonicity and convexity of f on a fine grid.
class StageDelayGridTest : public ::testing::TestWithParam<int> {};

TEST_P(StageDelayGridTest, StrictlyIncreasing) {
  const double u = GetParam() / 100.0;
  const double next = (GetParam() + 1) / 100.0;
  EXPECT_LT(stage_delay_factor(u), stage_delay_factor(next));
}

TEST_P(StageDelayGridTest, ConvexBySecant) {
  // f((a+b)/2) <= (f(a)+f(b))/2.
  const double a = GetParam() / 100.0;
  const double b = a + 0.01;
  const double mid = stage_delay_factor((a + b) / 2);
  const double secant = (stage_delay_factor(a) + stage_delay_factor(b)) / 2;
  EXPECT_LE(mid, secant + 1e-12);
}

TEST_P(StageDelayGridTest, InverseIsExactInverse) {
  const double u = GetParam() / 100.0;
  const double y = stage_delay_factor(u);
  const double back = stage_delay_factor_inverse(y);
  EXPECT_NEAR(back, u, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, StageDelayGridTest,
                         ::testing::Range(0, 98));

}  // namespace
}  // namespace frap::core
