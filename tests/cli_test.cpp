#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pipeline/cli.h"

namespace frap::pipeline {
namespace {

TEST(CliTest, DefaultsWithNoArgs) {
  const auto r = parse_experiment_args({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.workload.num_stages(), 2u);
  EXPECT_DOUBLE_EQ(r.config.workload.input_load, 1.0);
  EXPECT_DOUBLE_EQ(r.config.workload.resolution, 100.0);
  EXPECT_EQ(r.config.admission, AdmissionMode::kExact);
  EXPECT_EQ(r.config.priority, PriorityMode::kDeadlineMonotonic);
  EXPECT_TRUE(r.config.idle_reset);
  EXPECT_DOUBLE_EQ(r.config.patience, 0.0);
}

TEST(CliTest, ParsesAllFlags) {
  const auto r = parse_experiment_args(
      {"--stages=5", "--load=1.75", "--resolution=40", "--mean-compute=20",
       "--duration=60", "--warmup=5", "--seed=99", "--admission=approx",
       "--policy=random", "--patience=200", "--no-idle-reset"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.workload.num_stages(), 5u);
  EXPECT_DOUBLE_EQ(r.config.workload.input_load, 1.75);
  EXPECT_DOUBLE_EQ(r.config.workload.resolution, 40.0);
  EXPECT_DOUBLE_EQ(r.config.workload.mean_compute[0], 0.02);
  EXPECT_DOUBLE_EQ(r.config.sim_duration, 60.0);
  EXPECT_DOUBLE_EQ(r.config.warmup, 5.0);
  EXPECT_EQ(r.config.seed, 99u);
  EXPECT_EQ(r.config.admission, AdmissionMode::kApproximate);
  EXPECT_EQ(r.config.priority, PriorityMode::kRandom);
  EXPECT_DOUBLE_EQ(r.config.patience, 0.2);
  EXPECT_FALSE(r.config.idle_reset);
}

TEST(CliTest, ImbalanceSkewsLastStage) {
  const auto r = parse_experiment_args(
      {"--stages=2", "--mean-compute=10", "--imbalance=4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.config.workload.mean_compute[0], 0.01);
  EXPECT_DOUBLE_EQ(r.config.workload.mean_compute[1], 0.04);
}

TEST(CliTest, AdmissionModes) {
  EXPECT_EQ(parse_experiment_args({"--admission=none"}).config.admission,
            AdmissionMode::kNone);
  EXPECT_EQ(parse_experiment_args({"--admission=split"}).config.admission,
            AdmissionMode::kDeadlineSplit);
  EXPECT_FALSE(parse_experiment_args({"--admission=bogus"}).ok);
}

TEST(CliTest, RejectsUnknownFlag) {
  const auto r = parse_experiment_args({"--frobnicate=1"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
}

TEST(CliTest, RejectsMalformedValue) {
  EXPECT_FALSE(parse_experiment_args({"--load=abc"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--stages=0"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--load=-1"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--seed=12x"}).ok);
}

TEST(CliTest, RejectsNonFlagArgument) {
  const auto r = parse_experiment_args({"load=1.0"});
  EXPECT_FALSE(r.ok);
}

TEST(CliTest, RejectsWarmupBeyondDuration) {
  const auto r = parse_experiment_args({"--duration=10", "--warmup=10"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("warmup"), std::string::npos);
}

TEST(CliTest, ValueFlagWithoutValueIsRejected) {
  EXPECT_FALSE(parse_experiment_args({"--load"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--load="}).ok);
}

TEST(CliTest, NoIdleResetWithValueIsRejected) {
  EXPECT_FALSE(parse_experiment_args({"--no-idle-reset=yes"}).ok);
}

TEST(CliTest, UsageMentionsEveryFlag) {
  const auto usage = experiment_cli_usage();
  for (const char* flag :
       {"--stages", "--load", "--resolution", "--mean-compute",
        "--imbalance", "--duration", "--warmup", "--seed", "--admission",
        "--policy", "--patience", "--no-idle-reset"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(CliTest, ParsedConfigActuallyRuns) {
  const auto r = parse_experiment_args(
      {"--stages=2", "--load=1.0", "--duration=5", "--warmup=1",
       "--seed=3"});
  ASSERT_TRUE(r.ok);
  const auto result = run_experiment(r.config);
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.miss_ratio, 0.0);
}

}  // namespace
}  // namespace frap::pipeline
