#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/cli.h"

namespace frap::pipeline {
namespace {

TEST(CliTest, DefaultsWithNoArgs) {
  const auto r = parse_experiment_args({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.workload.num_stages(), 2u);
  EXPECT_DOUBLE_EQ(r.config.workload.input_load, 1.0);
  EXPECT_DOUBLE_EQ(r.config.workload.resolution, 100.0);
  EXPECT_EQ(r.config.admission, AdmissionMode::kExact);
  EXPECT_EQ(r.config.priority, PriorityMode::kDeadlineMonotonic);
  EXPECT_TRUE(r.config.idle_reset);
  EXPECT_DOUBLE_EQ(r.config.patience, 0.0);
}

TEST(CliTest, ParsesAllFlags) {
  const auto r = parse_experiment_args(
      {"--stages=5", "--load=1.75", "--resolution=40", "--mean-compute=20",
       "--duration=60", "--warmup=5", "--seed=99", "--admission=approx",
       "--policy=random", "--patience=200", "--no-idle-reset"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.workload.num_stages(), 5u);
  EXPECT_DOUBLE_EQ(r.config.workload.input_load, 1.75);
  EXPECT_DOUBLE_EQ(r.config.workload.resolution, 40.0);
  EXPECT_DOUBLE_EQ(r.config.workload.mean_compute[0], 0.02);
  EXPECT_DOUBLE_EQ(r.config.sim_duration, 60.0);
  EXPECT_DOUBLE_EQ(r.config.warmup, 5.0);
  EXPECT_EQ(r.config.seed, 99u);
  EXPECT_EQ(r.config.admission, AdmissionMode::kApproximate);
  EXPECT_EQ(r.config.priority, PriorityMode::kRandom);
  EXPECT_DOUBLE_EQ(r.config.patience, 0.2);
  EXPECT_FALSE(r.config.idle_reset);
}

TEST(CliTest, ImbalanceSkewsLastStage) {
  const auto r = parse_experiment_args(
      {"--stages=2", "--mean-compute=10", "--imbalance=4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.config.workload.mean_compute[0], 0.01);
  EXPECT_DOUBLE_EQ(r.config.workload.mean_compute[1], 0.04);
}

TEST(CliTest, AdmissionModes) {
  EXPECT_EQ(parse_experiment_args({"--admission=none"}).config.admission,
            AdmissionMode::kNone);
  EXPECT_EQ(parse_experiment_args({"--admission=split"}).config.admission,
            AdmissionMode::kDeadlineSplit);
  EXPECT_FALSE(parse_experiment_args({"--admission=bogus"}).ok);
}

TEST(CliTest, SchedulingPolicies) {
  EXPECT_EQ(parse_experiment_args({"--policy=edf"}).config.priority,
            PriorityMode::kEdf);
  EXPECT_EQ(parse_experiment_args({"--policy=llf"}).config.priority,
            PriorityMode::kLlf);
  EXPECT_EQ(parse_experiment_args({"--policy=dm"}).config.priority,
            PriorityMode::kDeadlineMonotonic);
  const auto bad = parse_experiment_args({"--policy=bogus"});
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("bogus"), std::string::npos);
}

TEST(CliTest, ProcsFlagAndGedfDefaults) {
  // Plain EDF stays on single-processor stages.
  EXPECT_EQ(parse_experiment_args({"--policy=edf"}).config.procs_per_stage,
            1u);
  // gedf = EDF on pooled stages; pool size defaults to 2...
  const auto gedf = parse_experiment_args({"--policy=gedf"});
  ASSERT_TRUE(gedf.ok) << gedf.error;
  EXPECT_EQ(gedf.config.priority, PriorityMode::kEdf);
  EXPECT_EQ(gedf.config.procs_per_stage, 2u);
  // ...unless --procs says otherwise (order-independent).
  EXPECT_EQ(parse_experiment_args({"--policy=gedf", "--procs=4"})
                .config.procs_per_stage,
            4u);
  EXPECT_EQ(parse_experiment_args({"--procs=4", "--policy=gedf"})
                .config.procs_per_stage,
            4u);
  // --procs alone pools stages under the default fixed-priority policy.
  EXPECT_EQ(parse_experiment_args({"--procs=3"}).config.procs_per_stage, 3u);
  EXPECT_FALSE(parse_experiment_args({"--procs=0"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--procs=abc"}).ok);
}

TEST(CliTest, RejectsUnknownFlag) {
  const auto r = parse_experiment_args({"--frobnicate=1"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
}

TEST(CliTest, RejectsMalformedValue) {
  EXPECT_FALSE(parse_experiment_args({"--load=abc"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--stages=0"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--load=-1"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--seed=12x"}).ok);
}

TEST(CliTest, RejectsNonFlagArgument) {
  const auto r = parse_experiment_args({"load=1.0"});
  EXPECT_FALSE(r.ok);
}

TEST(CliTest, RejectsWarmupBeyondDuration) {
  const auto r = parse_experiment_args({"--duration=10", "--warmup=10"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("warmup"), std::string::npos);
}

TEST(CliTest, ValueFlagWithoutValueIsRejected) {
  EXPECT_FALSE(parse_experiment_args({"--load"}).ok);
  EXPECT_FALSE(parse_experiment_args({"--load="}).ok);
}

TEST(CliTest, NoIdleResetWithValueIsRejected) {
  EXPECT_FALSE(parse_experiment_args({"--no-idle-reset=yes"}).ok);
}

TEST(CliTest, UsageMentionsEveryFlag) {
  const auto usage = experiment_cli_usage();
  for (const char* flag :
       {"--stages", "--load", "--resolution", "--mean-compute",
        "--imbalance", "--duration", "--warmup", "--seed", "--admission",
        "--policy", "--procs", "--patience", "--no-idle-reset"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(CliTest, ParsedConfigActuallyRuns) {
  const auto r = parse_experiment_args(
      {"--stages=2", "--load=1.0", "--duration=5", "--warmup=1",
       "--seed=3"});
  ASSERT_TRUE(r.ok);
  const auto result = run_experiment(r.config);
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.miss_ratio, 0.0);
}

// ----------------------------------------------------- obs subcommand ---

TEST(ObsCliTest, DefaultsWithNoArgs) {
  const auto r = parse_obs_args({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.format, ObsFormat::kJsonl);
  EXPECT_TRUE(r.config.out_path.empty());
  EXPECT_EQ(r.config.ring_capacity, std::size_t{1} << 16);
  // Experiment flags fall through to the experiment parser's defaults.
  EXPECT_EQ(r.config.experiment.workload.num_stages(), 2u);
}

TEST(ObsCliTest, ParsesObsFlagsAndForwardsExperimentFlags) {
  const auto r = parse_obs_args({"--format=prom", "--out=/tmp/x.prom",
                                 "--ring=1024", "--stages=3", "--seed=7"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.format, ObsFormat::kPrometheus);
  EXPECT_EQ(r.config.out_path, "/tmp/x.prom");
  EXPECT_EQ(r.config.ring_capacity, 1024u);
  EXPECT_EQ(r.config.experiment.workload.num_stages(), 3u);
  EXPECT_EQ(r.config.experiment.seed, 7u);
}

TEST(ObsCliTest, RejectsBadFormatRingAndUnknownFlags) {
  EXPECT_FALSE(parse_obs_args({"--format=xml"}).ok);
  // --ring=0 and malformed values are not valid obs flags; they fall
  // through to the experiment parser, which rejects them as unknown.
  EXPECT_FALSE(parse_obs_args({"--ring=0"}).ok);
  EXPECT_FALSE(parse_obs_args({"--ring=abc"}).ok);
  EXPECT_FALSE(parse_obs_args({"--frobnicate=1"}).ok);
  EXPECT_FALSE(parse_obs_args({"notaflag"}).ok);
  const auto r = parse_obs_args({"--format=bogus"});
  EXPECT_NE(r.error.find("bogus"), std::string::npos);
}

TEST(ObsCliTest, UsageMentionsEveryObsFlag) {
  const auto usage = obs_cli_usage();
  for (const char* flag : {"--format", "--out", "--ring"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(ObsCliTest, RunRendersJsonlDeterministically) {
  const auto r = parse_obs_args(
      {"--stages=2", "--duration=5", "--warmup=1", "--seed=3"});
  ASSERT_TRUE(r.ok) << r.error;

  std::ostringstream a;
  EXPECT_EQ(run_obs_command(r.config, a), 0);
  EXPECT_FALSE(a.str().empty());
  // Every line is one decision event object.
  EXPECT_EQ(a.str().front(), '{');
  EXPECT_NE(a.str().find("\"reason\":"), std::string::npos);

  // ManualClock + sampling off: a second run is byte-identical.
  std::ostringstream b;
  EXPECT_EQ(run_obs_command(r.config, b), 0);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ObsCliTest, RunRendersPrometheusPage) {
  auto r = parse_obs_args(
      {"--format=prom", "--stages=2", "--duration=5", "--warmup=1",
       "--seed=3"});
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream os;
  EXPECT_EQ(run_obs_command(r.config, os), 0);
  const std::string page = os.str();
  EXPECT_NE(page.find("# TYPE frap_decisions_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("frap_decisions_total{shard=\"0\","
                      "reason=\"admitted\"}"),
            std::string::npos);
  // The experiment wires stage gauges; the page must include them.
  EXPECT_NE(page.find("# TYPE frap_stage_queue_depth gauge"),
            std::string::npos);
}

TEST(ObsCliTest, RunReportsFailedStream) {
  const auto r = parse_obs_args({"--duration=5", "--warmup=1"});
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream os;
  os.setstate(std::ios::failbit);
  EXPECT_EQ(run_obs_command(r.config, os), 1);
}

TEST(IngestCliTest, DefaultsWithNoArgs) {
  const auto r = parse_ingest_args({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.format, ObsFormat::kPrometheus);
  EXPECT_EQ(r.config.count, 1000u);
  EXPECT_EQ(r.config.stages, 2u);
  EXPECT_EQ(r.config.shards, 4u);
  EXPECT_FALSE(r.config.mmpp);
  EXPECT_TRUE(r.config.in_path.empty());
  EXPECT_TRUE(r.config.capture_path.empty());
}

TEST(IngestCliTest, ParsesEveryFlag) {
  const auto r = parse_ingest_args(
      {"--format=jsonl", "--out=/tmp/o.jsonl", "--in=/tmp/in.frap",
       "--capture=/tmp/cap.frap", "--count=77", "--stages=4", "--load=0.8",
       "--resolution=60", "--mean-compute=5", "--seed=9", "--shards=2",
       "--mmpp", "--ring=1024"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.config.format, ObsFormat::kJsonl);
  EXPECT_EQ(r.config.out_path, "/tmp/o.jsonl");
  EXPECT_EQ(r.config.in_path, "/tmp/in.frap");
  EXPECT_EQ(r.config.capture_path, "/tmp/cap.frap");
  EXPECT_EQ(r.config.count, 77u);
  EXPECT_EQ(r.config.stages, 4u);
  EXPECT_DOUBLE_EQ(r.config.load, 0.8);
  EXPECT_DOUBLE_EQ(r.config.resolution, 60.0);
  EXPECT_DOUBLE_EQ(r.config.mean_compute_ms, 5.0);
  EXPECT_EQ(r.config.seed, 9u);
  EXPECT_EQ(r.config.shards, 2u);
  EXPECT_TRUE(r.config.mmpp);
  EXPECT_EQ(r.config.ring_capacity, 1024u);
}

TEST(IngestCliTest, RejectsBadFlags) {
  EXPECT_FALSE(parse_ingest_args({"--format=xml"}).ok);
  EXPECT_FALSE(parse_ingest_args({"--count=0"}).ok);
  EXPECT_FALSE(parse_ingest_args({"--stages=abc"}).ok);
  EXPECT_FALSE(parse_ingest_args({"--shards=0"}).ok);
  EXPECT_FALSE(parse_ingest_args({"--mmpp=1"}).ok);  // flag takes no value
  EXPECT_FALSE(parse_ingest_args({"--frobnicate=1"}).ok);
  EXPECT_FALSE(parse_ingest_args({"notaflag"}).ok);
}

TEST(IngestCliTest, UsageMentionsEveryIngestFlag) {
  const auto usage = ingest_cli_usage();
  for (const char* flag :
       {"--count", "--stages", "--load", "--resolution", "--mean-compute",
        "--seed", "--mmpp", "--capture", "--in", "--shards", "--format",
        "--out", "--ring"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(IngestCliTest, RunIsDeterministicForFixedFlags) {
  const auto r = parse_ingest_args(
      {"--count=300", "--stages=3", "--load=0.9", "--seed=5",
       "--format=jsonl"});
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream a;
  std::ostringstream na;
  ASSERT_EQ(run_ingest_command(r.config, a, na), 0);
  EXPECT_TRUE(na.str().empty());
  // Summary line + one JSONL object per decision.
  EXPECT_EQ(a.str().rfind("{\"frap_ingest\":{\"records\":300,", 0), 0u);
  std::ostringstream b;
  std::ostringstream nb;
  ASSERT_EQ(run_ingest_command(r.config, b, nb), 0);
  EXPECT_EQ(a.str(), b.str());
}

TEST(IngestCliTest, PrometheusOutputCarriesIngestSummary) {
  const auto r = parse_ingest_args({"--count=100", "--seed=3"});
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream os;
  std::ostringstream err;
  ASSERT_EQ(run_ingest_command(r.config, os, err), 0);
  EXPECT_EQ(os.str().rfind("# frap_ingest records=100 ", 0), 0u);
  EXPECT_NE(os.str().find("frap_decisions_total"), std::string::npos);
}

TEST(IngestCliTest, CaptureThenInReplaysTheSameFrame) {
  const std::string path =
      ::testing::TempDir() + "/ingest_cli_capture.frap";
  auto gen = parse_ingest_args({"--count=200", "--stages=3", "--seed=11",
                                "--capture=" + path, "--format=jsonl"});
  ASSERT_TRUE(gen.ok) << gen.error;
  std::ostringstream a;
  std::ostringstream ea;
  ASSERT_EQ(run_ingest_command(gen.config, a, ea), 0);

  auto replay =
      parse_ingest_args({"--in=" + path, "--format=jsonl", "--stages=9",
                         "--seed=999"});  // workload flags must be ignored
  ASSERT_TRUE(replay.ok) << replay.error;
  std::ostringstream b;
  std::ostringstream eb;
  ASSERT_EQ(run_ingest_command(replay.config, b, eb), 0);
  EXPECT_EQ(a.str(), b.str());  // bit-identical decisions either way
}

TEST(IngestCliTest, MissingAndCorruptInputsAreTypedFailures) {
  auto missing = parse_ingest_args({"--in=/nonexistent/nope.frap"});
  ASSERT_TRUE(missing.ok);
  std::ostringstream os;
  std::ostringstream err;
  EXPECT_EQ(run_ingest_command(missing.config, os, err), 1);
  EXPECT_NE(err.str().find("could not read"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/ingest_cli_corrupt.frap";
  {
    std::ofstream out(path, std::ios::binary);
    // Length prefix 24 (one header's worth) followed by 24 garbage bytes:
    // read_frame succeeds, WireView::open rejects the magic.
    const char junk[] =
        "\x18\x00\x00\x00\x00\x00\x00\x00garbage.garbage.garbage.";
    out.write(junk, sizeof(junk) - 1);
  }
  auto corrupt = parse_ingest_args({"--in=" + path});
  ASSERT_TRUE(corrupt.ok);
  std::ostringstream os2;
  std::ostringstream err2;
  EXPECT_EQ(run_ingest_command(corrupt.config, os2, err2), 1);
  EXPECT_NE(err2.str().find("invalid frame: bad-magic"), std::string::npos);
}

}  // namespace
}  // namespace frap::pipeline
