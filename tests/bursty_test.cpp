#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "workload/bursty.h"

namespace frap::workload {
namespace {

// ------------------------------------------------------------------ MMPP ---

TEST(MmppTest, AverageRateFormula) {
  MmppArrivalProcess::Config c;
  c.rate_quiet = 50;
  c.rate_burst = 400;
  c.mean_quiet_time = 1.0;
  c.mean_burst_time = 0.1;
  // (50*1 + 400*0.1) / 1.1 = 90/1.1.
  EXPECT_NEAR(c.average_rate(), 90.0 / 1.1, 1e-9);
}

TEST(MmppTest, EmpiricalRateMatchesAverage) {
  MmppArrivalProcess::Config c;
  c.rate_quiet = 50;
  c.rate_burst = 400;
  c.mean_quiet_time = 0.5;
  c.mean_burst_time = 0.1;
  MmppArrivalProcess p(c, 13);
  const int n = 300000;
  Duration total = 0;
  for (int i = 0; i < n; ++i) total += p.next_interarrival();
  const double rate = n / total;
  EXPECT_NEAR(rate, c.average_rate(), c.average_rate() * 0.03);
}

TEST(MmppTest, InterarrivalsArePositive) {
  MmppArrivalProcess::Config c;
  MmppArrivalProcess p(c, 7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(p.next_interarrival(), 0.0);
  }
}

TEST(MmppTest, BurstsIncreaseVarianceVsPoisson) {
  // The squared coefficient of variation of MMPP interarrivals exceeds 1
  // (Poisson's value) when the rates differ.
  MmppArrivalProcess::Config c;
  c.rate_quiet = 20;
  c.rate_burst = 500;
  c.mean_quiet_time = 1.0;
  c.mean_burst_time = 0.2;
  MmppArrivalProcess p(c, 29);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = p.next_interarrival();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double scv = var / (mean * mean);
  EXPECT_GT(scv, 1.3);
}

TEST(MmppTest, Deterministic) {
  MmppArrivalProcess::Config c;
  MmppArrivalProcess a(c, 99);
  MmppArrivalProcess b(c, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.next_interarrival(), b.next_interarrival());
  }
}

// -------------------------------------------------------- bounded Pareto ---

TEST(BoundedParetoTest, SamplesStayInRange) {
  BoundedParetoSampler s(0.001, 1.0, 1.5);
  util::Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x = s.sample(rng);
    EXPECT_GE(x, s.lo());
    EXPECT_LE(x, s.hi());
  }
}

TEST(BoundedParetoTest, EmpiricalMeanMatchesAnalytical) {
  BoundedParetoSampler s(0.002, 0.5, 1.5);
  util::Rng rng(11);
  const int n = 400000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += s.sample(rng);
  EXPECT_NEAR(sum / n, s.mean(), s.mean() * 0.03);
}

TEST(BoundedParetoTest, AlphaOneMean) {
  BoundedParetoSampler s(0.01, 1.0, 1.0);
  util::Rng rng(17);
  const int n = 400000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += s.sample(rng);
  EXPECT_NEAR(sum / n, s.mean(), s.mean() * 0.03);
}

TEST(BoundedParetoTest, HeavierTailThanExponential) {
  // At matched means, the Pareto's p99.9 / mean ratio dwarfs the
  // exponential's (~6.9).
  BoundedParetoSampler s(0.001, 10.0, 1.1);
  util::Rng rng(23);
  const int n = 200000;
  std::vector<double> xs(n);
  double sum = 0;
  for (auto& x : xs) {
    x = s.sample(rng);
    sum += x;
  }
  std::sort(xs.begin(), xs.end());
  const double mean = sum / n;
  const double p999 = xs[static_cast<std::size_t>(n * 0.999)];
  EXPECT_GT(p999 / mean, 20.0);
}

TEST(BoundedParetoTest, SmallerAlphaHeavierTail) {
  util::Rng rng1(31);
  util::Rng rng2(31);
  BoundedParetoSampler heavy(0.001, 10.0, 1.1);
  BoundedParetoSampler light(0.001, 10.0, 2.5);
  const int n = 100000;
  double max_heavy = 0, max_light = 0;
  for (int i = 0; i < n; ++i) {
    max_heavy = std::max(max_heavy, heavy.sample(rng1));
    max_light = std::max(max_light, light.sample(rng2));
  }
  EXPECT_GT(max_heavy, max_light);
}

}  // namespace
}  // namespace frap::workload
