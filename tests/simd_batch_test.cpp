// AVX2 batch stage-delay kernel (ISSUE 6): bit-identity against the scalar
// f(U), and dispatch-independence of burst admission decisions.
//
// The contract under test (core/stage_delay_batch.h): every double the
// vector kernel produces is BIT-identical to stage_delay_factor(u) — same
// operation sequence, one IEEE op per step, no FMA contraction, +inf
// blended into saturated lanes. On hardware without AVX2 the sweep
// degenerates to scalar-vs-scalar and passes trivially (the dispatch test
// still exercises the toggle seam).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/stage_delay.h"
#include "core/stage_delay_batch.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::core {
namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Restores the dispatch toggle on scope exit so a failing assertion cannot
// leak a forced-scalar state into other tests.
struct SimdToggle {
  explicit SimdToggle(bool enabled)
      : previous(set_batch_simd_enabled(enabled)) {}
  ~SimdToggle() { (void)set_batch_simd_enabled(previous); }
  const bool previous;
};

TEST(SimdBatchTest, ToggleSeamReturnsPreviousSetting) {
  const bool initial = set_batch_simd_enabled(false);
  EXPECT_FALSE(set_batch_simd_enabled(true));
  EXPECT_TRUE(set_batch_simd_enabled(initial));
  EXPECT_EQ(batch_simd_active(), batch_simd_available() && initial);
}

TEST(SimdBatchTest, BitIdenticalToScalarSweep) {
  SimdToggle simd_on(true);
  // Edge lanes first: zero, denormal-adjacent, the largest double below 1,
  // exact 1 and beyond (saturated lanes must blend +inf), then a dense
  // random sweep of the admissible range.
  std::vector<double> u = {0.0,
                           1e-300,
                           1e-17,
                           0.25,
                           0.5,
                           0.999999999,
                           std::nextafter(1.0, 0.0),
                           1.0,
                           1.0000001,
                           2.5};
  util::Rng rng(1234);
  for (int i = 0; i < 100'000; ++i) u.push_back(rng.uniform(0.0, 1.0));
  // Odd length exercises the scalar tail after the 4-lane blocks.
  u.push_back(0.42);

  std::vector<double> out(u.size());
  batch_stage_delay_factors(u.data(), out.data(), u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double expected = stage_delay_factor(u[i]);
    EXPECT_EQ(bits_of(out[i]), bits_of(expected))
        << "lane " << i << " u=" << u[i] << " batch=" << out[i]
        << " scalar=" << expected;
  }
}

TEST(SimdBatchTest, BurstDecisionsIndependentOfDispatch) {
  // 8 stages with ~75% touched density, so the burst path's SIMD gate
  // (n >= 8, touched >= n/2) actually engages for most specs.
  constexpr std::size_t kStages = 8;
  const auto region = FeasibleRegion::deadline_monotonic(kStages);

  // Identical controller state under both dispatch modes; the burst mixes
  // admits, a region-full reject, and a saturating spec.
  const auto run = [&](bool simd) {
    SimdToggle toggle(simd);
    sim::Simulator sim;
    SyntheticUtilizationTracker tracker(sim, kStages);
    AdmissionController controller(sim, tracker, region);
    BatchAdmissionController batch(controller);
    std::vector<TaskSpec> specs;
    util::Rng rng(77);
    for (std::uint64_t i = 0; i < 64; ++i) {
      TaskSpec spec;
      spec.id = i + 1;
      spec.deadline = 1.0;
      spec.stages.resize(kStages);
      for (auto& st : spec.stages) {
        st.compute = rng.bernoulli(0.25) ? 0.0 : rng.uniform(0.005, 0.04);
      }
      specs.push_back(spec);
    }
    specs.push_back([&] {  // saturating spec: u_with >= 1 on stage 0
      TaskSpec spec;
      spec.id = 1000;
      spec.deadline = 1.0;
      spec.stages.resize(kStages);
      spec.stages[0].compute = 1.5;
      return spec;
    }());
    return std::make_pair(batch.try_admit_burst(specs),
                          tracker.utilizations());
  };

  const auto [simd_decisions, simd_util] = run(true);
  const auto [scalar_decisions, scalar_util] = run(false);
  ASSERT_EQ(simd_decisions.size(), scalar_decisions.size());
  for (std::size_t i = 0; i < simd_decisions.size(); ++i) {
    EXPECT_EQ(simd_decisions[i].admitted, scalar_decisions[i].admitted) << i;
    EXPECT_EQ(simd_decisions[i].reason, scalar_decisions[i].reason) << i;
    // Bit-identity of the evaluated LHS pair, not just the verdict.
    EXPECT_EQ(bits_of(simd_decisions[i].lhs_with_task),
              bits_of(scalar_decisions[i].lhs_with_task))
        << i;
    EXPECT_EQ(bits_of(simd_decisions[i].lhs_before),
              bits_of(scalar_decisions[i].lhs_before))
        << i;
  }
  ASSERT_EQ(simd_util.size(), scalar_util.size());
  for (std::size_t j = 0; j < simd_util.size(); ++j) {
    EXPECT_EQ(bits_of(simd_util[j]), bits_of(scalar_util[j])) << j;
  }
}

}  // namespace
}  // namespace frap::core
