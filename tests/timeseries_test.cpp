#include <gtest/gtest.h>

#include "metrics/timeseries.h"
#include "sim/simulator.h"

namespace frap::metrics {
namespace {

TEST(TimeSeriesTest, SamplesAtInterval) {
  sim::Simulator sim;
  double value = 0;
  TimeSeries ts(sim, 1.0, [&] { return value; });
  ts.start(5.0);
  sim.at(2.5, [&] { value = 10.0; });
  sim.run();
  // Samples at t = 0, 1, 2, 3, 4, 5.
  ASSERT_EQ(ts.samples().size(), 6u);
  EXPECT_DOUBLE_EQ(ts.samples()[0].time, 0.0);
  EXPECT_DOUBLE_EQ(ts.samples()[5].time, 5.0);
  EXPECT_DOUBLE_EQ(ts.samples()[2].value, 0.0);   // t=2: before change
  EXPECT_DOUBLE_EQ(ts.samples()[3].value, 10.0);  // t=3: after change
}

TEST(TimeSeriesTest, MeanOverWindow) {
  sim::Simulator sim;
  double value = 2.0;
  TimeSeries ts(sim, 1.0, [&] { return value; });
  ts.start(4.0);
  sim.at(1.5, [&] { value = 4.0; });
  sim.run();
  // Values: t0=2, t1=2, t2=4, t3=4, t4=4.
  EXPECT_DOUBLE_EQ(ts.mean(0.0, 4.0), (2 + 2 + 4 + 4 + 4) / 5.0);
  EXPECT_DOUBLE_EQ(ts.mean(2.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(ts.mean(10.0, 20.0), 0.0);  // empty window
}

TEST(TimeSeriesTest, MaxOverWindow) {
  sim::Simulator sim;
  double value = 1.0;
  TimeSeries ts(sim, 0.5, [&] { return value; });
  ts.start(3.0);
  sim.at(1.2, [&] { value = 7.0; });
  sim.at(2.2, [&] { value = 3.0; });
  sim.run();
  EXPECT_DOUBLE_EQ(ts.max(0.0, 3.0), 7.0);
  EXPECT_DOUBLE_EQ(ts.max(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.max(2.4, 3.0), 3.0);
}

TEST(TimeSeriesTest, StartLaterThanZero) {
  sim::Simulator sim;
  TimeSeries ts(sim, 1.0, [] { return 1.0; });
  sim.at(10.0, [&] { ts.start(12.0); });
  sim.run();
  ASSERT_EQ(ts.samples().size(), 3u);  // 10, 11, 12
  EXPECT_DOUBLE_EQ(ts.samples().front().time, 10.0);
  EXPECT_DOUBLE_EQ(ts.samples().back().time, 12.0);
}

}  // namespace
}  // namespace frap::metrics
