// Hand-checkable timelines for the preemptive fixed-priority stage server.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/stage_server.h"
#include "sched/timeline.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::sched {
namespace {

struct Completion {
  std::uint64_t id;
  Time at;
};

class StageServerTest : public ::testing::Test {
 protected:
  StageServerTest() : server_(sim_, "test") {
    server_.set_on_complete(
        [this](Job& j) { completions_.push_back({j.id, sim_.now()}); });
    server_.set_on_idle([this] { ++idle_transitions_; });
  }

  Job& make_job(std::uint64_t id, PriorityValue prio,
                std::vector<Segment> segs) {
    jobs_.push_back(std::make_unique<Job>(id, prio, std::move(segs)));
    return *jobs_.back();
  }

  Job& simple_job(std::uint64_t id, PriorityValue prio, Duration len) {
    return make_job(id, prio, {Segment{len, kNoLock}});
  }

  sim::Simulator sim_;
  StageServer server_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<Completion> completions_;
  int idle_transitions_ = 0;
};

TEST_F(StageServerTest, SingleJobRunsToCompletion) {
  sim_.at(1.0, [&] { server_.submit(simple_job(1, 5.0, 2.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_TRUE(server_.idle());
  EXPECT_EQ(idle_transitions_, 1);
}

TEST_F(StageServerTest, FifoAmongEqualPriorities) {
  sim_.at(0.0, [&] {
    server_.submit(simple_job(1, 5.0, 1.0));
    server_.submit(simple_job(2, 5.0, 1.0));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 1.0);
  EXPECT_EQ(completions_[1].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 2.0);
}

TEST_F(StageServerTest, HigherPriorityPreempts) {
  // Low-priority job (value 10) starts at t=0, runs 4s of work.
  // High-priority job (value 1) arrives at t=1 with 2s of work.
  // Timeline: low [0,1), high [1,3), low resumes [3,6).
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 10.0, 4.0)); });
  sim_.at(1.0, [&] { server_.submit(simple_job(2, 1.0, 2.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_EQ(completions_[1].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 6.0);
  EXPECT_EQ(server_.preemptions(), 1u);
}

TEST_F(StageServerTest, LowerPriorityArrivalDoesNotPreempt) {
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 1.0, 3.0)); });
  sim_.at(1.0, [&] { server_.submit(simple_job(2, 10.0, 1.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 4.0);
  EXPECT_EQ(server_.preemptions(), 0u);
}

TEST_F(StageServerTest, NestedPreemption) {
  // Three priority levels arriving in increasing urgency.
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 30.0, 10.0)); });
  sim_.at(2.0, [&] { server_.submit(simple_job(2, 20.0, 4.0)); });
  sim_.at(3.0, [&] { server_.submit(simple_job(3, 10.0, 1.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_EQ(completions_[0].id, 3u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 4.0);  // [3,4)
  EXPECT_EQ(completions_[1].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 7.0);  // [2,3)+[4,7)
  EXPECT_EQ(completions_[2].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[2].at, 15.0);  // [0,2)+[7,15)
}

TEST_F(StageServerTest, MeterTracksBusyTime) {
  sim_.at(1.0, [&] { server_.submit(simple_job(1, 1.0, 2.0)); });
  sim_.at(10.0, [&] { server_.submit(simple_job(2, 1.0, 3.0)); });
  sim_.run();
  EXPECT_DOUBLE_EQ(server_.meter().busy_time(0.0, 20.0), 5.0);
  EXPECT_DOUBLE_EQ(server_.meter().utilization(0.0, 20.0), 0.25);
}

TEST_F(StageServerTest, BackToBackJobsProduceOneIdleTransitionEach) {
  sim_.at(0.0, [&] {
    server_.submit(simple_job(1, 1.0, 1.0));
    server_.submit(simple_job(2, 2.0, 1.0));
  });
  sim_.run();
  // Server went idle exactly once (after both finished).
  EXPECT_EQ(idle_transitions_, 1);
  EXPECT_DOUBLE_EQ(server_.meter().busy_time(0.0, 5.0), 2.0);
}

TEST_F(StageServerTest, MultiSegmentJobExecutesAllSegments) {
  sim_.at(0.0, [&] {
    server_.submit(make_job(1, 1.0,
                            {Segment{1.0, kNoLock}, Segment{2.0, kNoLock},
                             Segment{0.5, kNoLock}}));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.5);
}

TEST_F(StageServerTest, ZeroLengthJobCompletesImmediately) {
  sim_.at(2.0, [&] { server_.submit(simple_job(1, 1.0, 0.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 2.0);
}

TEST_F(StageServerTest, AbortRunningJob) {
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 1.0, 5.0)); });
  sim_.at(1.0, [&] { server_.abort(*jobs_[0]); });
  sim_.run();
  EXPECT_TRUE(completions_.empty());
  EXPECT_TRUE(server_.idle());
  // Busy only while it ran: [0,1).
  EXPECT_DOUBLE_EQ(server_.meter().busy_time(0.0, 10.0), 1.0);
}

TEST_F(StageServerTest, AbortQueuedJobLeavesRunnerUntouched) {
  sim_.at(0.0, [&] {
    server_.submit(simple_job(1, 1.0, 3.0));
    server_.submit(simple_job(2, 2.0, 2.0));
  });
  sim_.at(1.0, [&] { server_.abort(*jobs_[1]); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
}

TEST_F(StageServerTest, AbortOffServerJobIsNoop) {
  Job& j = simple_job(1, 1.0, 1.0);
  server_.abort(j);  // never submitted
  EXPECT_TRUE(server_.idle());
}

TEST_F(StageServerTest, PreemptionBanksPartialProgress) {
  // Job 1 (4s) is preempted twice; total busy time must equal total work.
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 10.0, 4.0)); });
  sim_.at(1.0, [&] { server_.submit(simple_job(2, 1.0, 1.0)); });
  sim_.at(3.0, [&] { server_.submit(simple_job(3, 1.0, 1.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  // Job1: [0,1)+[2,3)+[4,6) -> finishes at 6.
  EXPECT_EQ(completions_.back().id, 1u);
  EXPECT_DOUBLE_EQ(completions_.back().at, 6.0);
  EXPECT_DOUBLE_EQ(server_.meter().busy_time(0.0, 10.0), 6.0);
}

TEST_F(StageServerTest, ActiveJobsCount) {
  sim_.at(0.0, [&] {
    server_.submit(simple_job(1, 1.0, 2.0));
    server_.submit(simple_job(2, 2.0, 2.0));
  });
  sim_.at(1.0, [&] { EXPECT_EQ(server_.active_jobs(), 2u); });
  sim_.at(3.0, [&] { EXPECT_EQ(server_.active_jobs(), 1u); });
  sim_.run();
  EXPECT_EQ(server_.active_jobs(), 0u);
}

// ----------------------------------------------------------------- speed ---

TEST_F(StageServerTest, HalfSpeedDoublesExecutionTime) {
  server_.set_speed(0.5);
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 1.0, 2.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 4.0);
}

TEST_F(StageServerTest, SpeedChangeMidJobBanksProgress) {
  // 4s of demand: runs [0,2) at full speed (2s done), then at 0.5x the
  // remaining 2s takes 4s -> finishes at 6.
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 1.0, 4.0)); });
  sim_.at(2.0, [&] { server_.set_speed(0.5); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 6.0);
  // A speed change is not a preemption.
  EXPECT_EQ(server_.preemptions(), 0u);
}

TEST_F(StageServerTest, SpeedUpShortensRemainingWork) {
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 1.0, 4.0)); });
  sim_.at(1.0, [&] { server_.set_speed(2.0); });
  sim_.run();
  // 1s at 1x (1 done) + 3 remaining at 2x (1.5s) -> 2.5.
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 2.5);
}

TEST_F(StageServerTest, SpeedChangeWhileIdleAffectsNextJob) {
  server_.set_speed(1.0);
  sim_.at(0.0, [&] { server_.set_speed(0.25); });
  sim_.at(1.0, [&] { server_.submit(simple_job(1, 1.0, 1.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 5.0);
  EXPECT_DOUBLE_EQ(server_.speed(), 0.25);
}

TEST_F(StageServerTest, PreemptionAtReducedSpeedBanksScaledProgress) {
  server_.set_speed(0.5);
  // Low job: 2s demand. At t=2 (1s executed at 0.5x) a high job preempts
  // for its 0.5s demand (1s wall), then low resumes: 1s left -> 2s wall.
  sim_.at(0.0, [&] { server_.submit(simple_job(1, 10.0, 2.0)); });
  sim_.at(2.0, [&] { server_.submit(simple_job(2, 1.0, 0.5)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_EQ(completions_[1].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 5.0);
}

// ------------------------------------------------------------------- PCP ---

class PcpServerTest : public StageServerTest {};

TEST_F(PcpServerTest, BlockedAcquisitionRunsHolderWithInheritance) {
  // Low job (value 10) holds lock 0 during [0, 4). High job (value 1)
  // arrives at t=1 needing lock 0: it blocks, low continues (inheritance),
  // finishes its critical section at 4, high then runs [4, 6).
  sim_.at(0.0, [&] {
    server_.submit(make_job(1, 10.0, {Segment{4.0, 0}}));
  });
  sim_.at(1.0, [&] {
    server_.submit(make_job(2, 1.0, {Segment{2.0, 0}}));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 4.0);
  EXPECT_EQ(completions_[1].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 6.0);
}

TEST_F(PcpServerTest, NonLockingHighPriorityStillPreemptsHolder) {
  // PCP allows preemption of a lock holder by a job that needs no lock.
  sim_.at(0.0, [&] {
    server_.submit(make_job(1, 10.0, {Segment{4.0, 0}}));
  });
  sim_.at(1.0, [&] { server_.submit(simple_job(2, 1.0, 1.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 2.0);
  EXPECT_EQ(completions_[1].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 5.0);
}

TEST_F(PcpServerTest, CeilingBlockingPreventsSecondLock) {
  // Lock 0's ceiling is priority 1 (registered). Job A (value 5) holds
  // lock 0. Job B (value 3) wants lock 1 (free) at t=1 — but B's priority
  // (3) is not higher than the ceiling of lock 0 (1), so B blocks and A
  // runs to completion first (classic ceiling blocking).
  server_.locks().set_ceiling(0, 1.0);
  server_.locks().set_ceiling(1, 3.0);
  sim_.at(0.0, [&] {
    server_.submit(make_job(1, 5.0, {Segment{4.0, 0}}));
  });
  sim_.at(1.0, [&] {
    server_.submit(make_job(2, 3.0, {Segment{2.0, 1}}));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 4.0);
  EXPECT_EQ(completions_[1].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 6.0);
}

TEST_F(PcpServerTest, HigherThanCeilingAcquiresFreely) {
  // Job B is MORE urgent than lock 0's ceiling: it may lock lock 1.
  server_.locks().set_ceiling(0, 3.0);
  server_.locks().set_ceiling(1, 1.0);
  sim_.at(0.0, [&] {
    server_.submit(make_job(1, 5.0, {Segment{4.0, 0}}));
  });
  sim_.at(1.0, [&] {
    server_.submit(make_job(2, 1.0, {Segment{2.0, 1}}));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
}

TEST_F(PcpServerTest, BlockedAtMostOnce) {
  // The key PCP property behind Eq. 15: a job blocks on lower-priority
  // critical sections at most once. High job H needs locks via two
  // sequential critical sections; two low jobs hold different locks. With
  // ceilings at H's priority, only ONE low critical section can delay H.
  server_.locks().set_ceiling(0, 1.0);
  server_.locks().set_ceiling(1, 1.0);
  // Low job L1 takes lock 0 at t=0 for 3s.
  sim_.at(0.0, [&] {
    server_.submit(make_job(1, 10.0, {Segment{3.0, 0}}));
  });
  // Low job L2 would take lock 1, but arrives while L1 holds lock 0 with
  // ceiling 1.0 >= L2's priority, so it cannot start its critical section
  // until L1 releases: at most one lock is held below H.
  sim_.at(0.5, [&] {
    server_.submit(make_job(2, 9.0, {Segment{3.0, 1}}));
  });
  // High job H at t=1 with two critical sections.
  sim_.at(1.0, [&] {
    server_.submit(make_job(3, 1.0, {Segment{1.0, 0}, Segment{1.0, 1}}));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  // H is blocked only by L1's remaining critical section (2s), then runs
  // 2s: finishes at 3 + 2 = 5. If it were blocked by both low sections it
  // would finish at 8.
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_EQ(completions_[1].id, 3u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 5.0);
}

TEST_F(PcpServerTest, LockReleasedOnAbort) {
  sim_.at(0.0, [&] {
    server_.submit(make_job(1, 10.0, {Segment{4.0, 0}}));
  });
  sim_.at(1.0, [&] {
    server_.submit(make_job(2, 1.0, {Segment{2.0, 0}}));
  });
  // Abort the holder at t=2: job 2 should acquire immediately.
  sim_.at(2.0, [&] { server_.abort(*jobs_[0]); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 4.0);
  EXPECT_FALSE(server_.locks().is_locked(0));
}

TEST_F(PcpServerTest, CriticalAndNormalSegmentsInterleave) {
  // Job with normal / critical / normal segments; preempted in its normal
  // segment by a high job needing the same lock while NOT held -> no block.
  sim_.at(0.0, [&] {
    server_.submit(make_job(
        1, 10.0,
        {Segment{1.0, kNoLock}, Segment{2.0, 0}, Segment{1.0, kNoLock}}));
  });
  // Arrives at t=0.5 during job 1's normal segment; lock 0 free -> runs now.
  sim_.at(0.5, [&] {
    server_.submit(make_job(2, 1.0, {Segment{1.0, 0}}));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 1.5);
  EXPECT_DOUBLE_EQ(completions_[1].at, 5.0);
}

// Randomized PCP fuzz: arbitrary mixes of lock-free and critical segments
// must always drain (no deadlock), complete every job exactly once, leave
// all locks free, and conserve total work.
class PcpFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcpFuzzTest, RandomLockWorkloadsDrainWithInvariants) {
  util::Rng rng(GetParam() * 97 + 11);
  sim::Simulator sim;
  StageServer server(sim, "pcp-fuzz");
  Timeline timeline;
  server.set_timeline(&timeline);

  int completions = 0;
  server.set_on_complete([&](Job&) { ++completions; });

  const int num_jobs = 80;
  const int num_locks = 3;
  std::vector<std::unique_ptr<Job>> jobs;
  Duration total_work = 0;
  Time t = 0;
  for (int i = 0; i < num_jobs; ++i) {
    t += rng.exponential(0.6);
    std::vector<Segment> segs;
    const auto parts = rng.uniform_int(1, 3);
    for (std::int64_t p = 0; p < parts; ++p) {
      const Duration len = rng.uniform(0.05, 1.0);
      total_work += len;
      const int lock = rng.bernoulli(0.5)
                           ? static_cast<int>(rng.uniform_int(0, num_locks - 1))
                           : kNoLock;
      segs.push_back(Segment{len, lock});
    }
    jobs.push_back(std::make_unique<Job>(static_cast<std::uint64_t>(i + 1),
                                         rng.uniform(0.0, 5.0),
                                         std::move(segs)));
    Job* j = jobs.back().get();
    sim.at(t, [&server, j] { server.submit(*j); });
  }
  sim.run();  // must terminate: no deadlock under PCP

  EXPECT_EQ(completions, num_jobs);
  EXPECT_TRUE(server.idle());
  for (int l = 0; l < num_locks; ++l) {
    EXPECT_FALSE(server.locks().is_locked(l)) << "lock " << l;
  }
  EXPECT_TRUE(timeline.non_overlapping());
  Duration executed = 0;
  for (int i = 0; i < num_jobs; ++i) {
    executed += timeline.executed(static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_NEAR(executed, total_work, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcpFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace frap::sched
