#include <gtest/gtest.h>

#include <vector>

#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"

namespace frap::pipeline {
namespace {

core::TaskSpec make_task(std::uint64_t id, Duration deadline,
                         std::vector<Duration> computes) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  for (Duration c : computes) {
    core::StageDemand d;
    d.compute = c;
    spec.stages.push_back(d);
  }
  return spec;
}

struct Done {
  std::uint64_t id;
  Duration response;
  bool missed;
};

class PipelineRuntimeTest : public ::testing::Test {
 protected:
  void build(std::size_t stages, bool with_tracker = true) {
    if (with_tracker) {
      tracker_.emplace(sim_, stages);
    }
    runtime_.emplace(sim_, stages,
                     with_tracker ? &tracker_.value() : nullptr);
    runtime_->set_on_task_complete(
        [this](const core::TaskSpec& s, Duration r, bool m) {
          done_.push_back({s.id, r, m});
        });
  }

  sim::Simulator sim_;
  std::optional<core::SyntheticUtilizationTracker> tracker_;
  std::optional<PipelineRuntime> runtime_;
  std::vector<Done> done_;
};

TEST_F(PipelineRuntimeTest, TaskTraversesAllStagesInOrder) {
  build(3);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 10.0, {1.0, 2.0, 3.0}), 10.0);
  });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_EQ(done_[0].id, 1u);
  EXPECT_DOUBLE_EQ(done_[0].response, 6.0);
  EXPECT_FALSE(done_[0].missed);
  EXPECT_EQ(runtime_->completed(), 1u);
}

TEST_F(PipelineRuntimeTest, DepartureFromStageJIsArrivalAtJPlus1) {
  build(2);
  // Two tasks; the second is more urgent and overtakes on stage 1 but the
  // pipeline still honors per-stage precedence for each task.
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 10.0, {2.0, 2.0}), 10.0);
  });
  sim_.at(0.5, [&] {
    runtime_->start_task(make_task(2, 5.0, {1.0, 1.0}), 5.5);
  });
  sim_.run();
  ASSERT_EQ(done_.size(), 2u);
  // Task 2 preempts on stage 0 at t=0.5, finishes stage 0 at 1.5, stage 1
  // at 2.5. Task 1 resumes stage 0 [1.5, 3.0), stage 1 [3.0, 5.0).
  EXPECT_EQ(done_[0].id, 2u);
  EXPECT_DOUBLE_EQ(done_[0].response, 2.0);
  EXPECT_EQ(done_[1].id, 1u);
  EXPECT_DOUBLE_EQ(done_[1].response, 5.0);
}

TEST_F(PipelineRuntimeTest, MissDetection) {
  build(1);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 1.0, {2.0}), 1.0);
  });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_TRUE(done_[0].missed);
  EXPECT_DOUBLE_EQ(runtime_->misses().ratio(), 1.0);
}

TEST_F(PipelineRuntimeTest, ExactDeadlineIsNotAMiss) {
  build(1);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 2.0, {2.0}), 2.0);
  });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_FALSE(done_[0].missed);
}

TEST_F(PipelineRuntimeTest, DeadlineMonotonicOrderingAcrossStages) {
  build(1);
  // Same arrival instant: shorter deadline runs first under DM.
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 10.0, {1.0}), 10.0);
    runtime_->start_task(make_task(2, 1.0, {0.5}), 1.0);
  });
  sim_.run();
  ASSERT_EQ(done_.size(), 2u);
  EXPECT_EQ(done_[0].id, 2u);
}

TEST_F(PipelineRuntimeTest, CustomPriorityPolicy) {
  build(1);
  // Invert DM: larger deadline = more urgent.
  runtime_->set_priority_policy(
      [](const core::TaskSpec& s) { return -s.deadline; });
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 10.0, {1.0}), 10.0);
    runtime_->start_task(make_task(2, 1.0, {0.5}), 1.0);
  });
  sim_.run();
  ASSERT_EQ(done_.size(), 2u);
  EXPECT_EQ(done_[0].id, 1u);
}

TEST_F(PipelineRuntimeTest, TrackerSeesDeparturesAndIdle) {
  build(2);
  tracker_->add(1, std::vector<double>{0.5, 0.5}, 100.0);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 100.0, {1.0, 1.0}), 100.0);
  });
  sim_.run();
  // After the task departed both stages and both went idle, its
  // contribution is fully reset (long before the deadline).
  EXPECT_DOUBLE_EQ(tracker_->utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(tracker_->utilization(1), 0.0);
}

TEST_F(PipelineRuntimeTest, RunsWithoutTracker) {
  build(2, /*with_tracker=*/false);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 10.0, {1.0, 1.0}), 10.0);
  });
  sim_.run();
  EXPECT_EQ(done_.size(), 1u);
}

TEST_F(PipelineRuntimeTest, AbortRemovesTaskMidPipeline) {
  build(2);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 10.0, {2.0, 2.0}), 10.0);
  });
  sim_.at(1.0, [&] { runtime_->abort_task(1); });
  sim_.run();
  EXPECT_TRUE(done_.empty());
  EXPECT_EQ(runtime_->aborted(), 1u);
  EXPECT_EQ(runtime_->completed(), 0u);
  EXPECT_FALSE(runtime_->task_in_flight(1));
  // Stage 1 never saw the task.
  EXPECT_DOUBLE_EQ(runtime_->stage(1).meter().busy_time(0.0, 10.0), 0.0);
}

TEST_F(PipelineRuntimeTest, AbortUnknownTaskIsNoop) {
  build(1);
  runtime_->abort_task(42);
  EXPECT_EQ(runtime_->aborted(), 0u);
}

TEST_F(PipelineRuntimeTest, StageUtilizationsMeasureBusyFractions) {
  build(2);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 100.0, {2.0, 1.0}), 100.0);
  });
  sim_.run();
  sim_.run_until(10.0);
  const auto u = runtime_->stage_utilizations(0.0, 10.0);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], 0.2);
  EXPECT_DOUBLE_EQ(u[1], 0.1);
}

TEST_F(PipelineRuntimeTest, ManyConcurrentTasksAllComplete) {
  build(3);
  for (int i = 0; i < 100; ++i) {
    const auto id = static_cast<std::uint64_t>(i + 1);
    sim_.at(0.01 * i, [this, id] {
      runtime_->start_task(make_task(id, 1000.0, {0.01, 0.01, 0.01}),
                           sim_.now() + 1000.0);
    });
  }
  sim_.run();
  EXPECT_EQ(done_.size(), 100u);
  EXPECT_EQ(runtime_->completed(), 100u);
  EXPECT_DOUBLE_EQ(runtime_->misses().ratio(), 0.0);
}

TEST_F(PipelineRuntimeTest, ResponseStatsAccumulate) {
  build(1);
  sim_.at(0.0, [&] {
    runtime_->start_task(make_task(1, 10.0, {1.0}), 10.0);
  });
  sim_.at(5.0, [&] {
    runtime_->start_task(make_task(2, 10.0, {3.0}), 15.0);
  });
  sim_.run();
  EXPECT_EQ(runtime_->response_times().count(), 2u);
  EXPECT_DOUBLE_EQ(runtime_->response_times().mean(), 2.0);
  EXPECT_DOUBLE_EQ(runtime_->response_times().max(), 3.0);
}

}  // namespace
}  // namespace frap::pipeline
