#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/math.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/time.h"

namespace frap::util {
namespace {

// ------------------------------------------------------------------- Rng ---

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(0, 9);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 9);
    if (x == 0) saw_lo = true;
    if (x == 9) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  const double mean = 0.02;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(RngTest, ExponentialVarianceMatches) {
  // Var of Exp(mean) is mean^2.
  Rng rng(19);
  const double mean = 1.5;
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(mean);
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  EXPECT_NEAR(var, mean * mean, mean * mean * 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, SplitStreamsAreIndependentlySeeded) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  // Same parent seed -> same child stream (determinism).
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(RngTest, SplitChildDiffersFromParent) {
  Rng parent(123);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

// ------------------------------------------------------------------ math ---

TEST(MathTest, AlmostEqualBasics) {
  EXPECT_TRUE(almost_equal(1.0, 1.0));
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(0.0, 0.0));
  EXPECT_TRUE(almost_equal(1e-13, 0.0));
}

TEST(MathTest, AlmostEqualRelative) {
  EXPECT_TRUE(almost_equal(1e9, 1e9 * (1 + 1e-10)));
  EXPECT_FALSE(almost_equal(1e9, 1e9 * 1.001));
}

TEST(MathTest, Clamp) {
  EXPECT_EQ(clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(clamp(11.0, 0.0, 10.0), 10.0);
}

TEST(MathTest, MeanOf) {
  EXPECT_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{2.0, 4.0}), 3.0);
}

TEST(TimeTest, UnitsCompose) {
  EXPECT_DOUBLE_EQ(20 * kMilli, 0.02);
  EXPECT_DOUBLE_EQ(5 * kMicro, 5e-6);
  EXPECT_DOUBLE_EQ(1 * kSec, 1.0);
}

TEST(TimeTest, TimeClose) {
  EXPECT_TRUE(time_close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(time_close(1.0, 1.1));
}

// ----------------------------------------------------------------- table ---

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(0.58578, 3), "0.586");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(0.93055, 2), "0.93");
}

}  // namespace
}  // namespace frap::util
