// Multi-threaded observability stress, run under the TSan CI leg (the leg's
// ctest regex matches suite names containing "Obs").
//
// Two layers are exercised: the raw TraceRing's seqlock under concurrent
// multi-producer pushes with live snapshot readers (no torn events, exact
// conservation once producers quiesce), and a fully traced
// ShardedAdmissionService driven by 8 threads (per-shard sinks serialized by
// the shard mutexes, span events under the global lock) with the service's
// own conservation laws: admits + rejects == attempts, per-reason decision
// counters sum to the attempt count, and every ring obeys
// snapshot().size() == pushed() - dropped() - overwritten().
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/admission_decision.h"
#include "core/feasible_region.h"
#include "core/task.h"
#include "obs/clock.h"
#include "obs/decision_event.h"
#include "obs/decision_sink.h"
#include "obs/observer.h"
#include "obs/trace_ring.h"
#include "service/sharded_admission.h"
#include "util/rng.h"

namespace frap::obs {
namespace {

using core::AdmissionDecision;
using core::FeasibleRegion;
using core::TaskSpec;
using service::ShardedAdmissionConfig;
using service::ShardedAdmissionService;

// ---------------------------------------------------- raw ring stress --

// Producers encode (thread, sequence) into every payload field so a reader
// can verify each snapshotted event is internally consistent — a torn read
// (fields from two different writes) would break the relation.
DecisionEvent encoded_event(std::uint32_t thread_id, std::uint32_t seq) {
  const std::uint64_t token =
      (static_cast<std::uint64_t>(thread_id) << 32) | seq;
  DecisionEvent ev;
  ev.task_id = token;
  ev.arrival = static_cast<double>(token);
  ev.decided_at = static_cast<double>(token) + 0.25;
  ev.lhs_before = static_cast<double>(seq);
  ev.lhs_with_task = static_cast<double>(seq) + 0.5;
  ev.bound = static_cast<double>(thread_id);
  ev.admitted = (seq % 2) == 0;
  ev.reason = ev.admitted ? AdmissionDecision::Reason::kAdmitted
                          : AdmissionDecision::Reason::kRegionFull;
  ev.shard = static_cast<std::uint16_t>(thread_id);
  ev.touched = static_cast<std::uint16_t>(seq & 0xFFFF);
  return ev;
}

void expect_consistent(const DecisionEvent& ev) {
  const auto thread_id = static_cast<std::uint32_t>(ev.task_id >> 32);
  const auto seq = static_cast<std::uint32_t>(ev.task_id & 0xFFFFFFFF);
  EXPECT_DOUBLE_EQ(ev.arrival, static_cast<double>(ev.task_id));
  EXPECT_DOUBLE_EQ(ev.decided_at, static_cast<double>(ev.task_id) + 0.25);
  EXPECT_DOUBLE_EQ(ev.lhs_before, static_cast<double>(seq));
  EXPECT_DOUBLE_EQ(ev.lhs_with_task, static_cast<double>(seq) + 0.5);
  EXPECT_DOUBLE_EQ(ev.bound, static_cast<double>(thread_id));
  EXPECT_EQ(ev.admitted, (seq % 2) == 0);
  EXPECT_EQ(ev.shard, static_cast<std::uint16_t>(thread_id));
  EXPECT_EQ(ev.touched, static_cast<std::uint16_t>(seq & 0xFFFF));
}

TEST(ObsMtRingTest, ConcurrentProducersNeverPublishTornEvents) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kPerThread = 20000;
  TraceRing ring(1 << 10);  // small: constant wrap-around pressure

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Hammer snapshot() while producers are mid-flight; every event that
    // validates must be internally consistent.
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& ev : ring.snapshot()) expect_consistent(ev);
    }
  });

  std::vector<std::thread> producers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&ring, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        ring.push(encoded_event(t, i));
      }
    });
  }
  for (auto& th : producers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Producers quiesced: conservation is exact.
  EXPECT_EQ(ring.pushed(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto events = ring.snapshot();
  EXPECT_EQ(events.size(),
            ring.pushed() - ring.dropped() - ring.overwritten());
  for (const auto& ev : events) expect_consistent(ev);
}

TEST(ObsMtRingTest, SerializedPushesWithConcurrentReaders) {
  // push_serialized's contract: ONE serialized writer, snapshot() from
  // anywhere. The single writer here stands in for a shard mutex.
  constexpr std::uint32_t kEvents = 150000;
  TraceRing ring(1 << 9);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& ev : ring.snapshot()) expect_consistent(ev);
      }
    });
  }

  for (std::uint32_t i = 0; i < kEvents; ++i) {
    ring.push_serialized(encoded_event(0, i));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(ring.pushed(), static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(ring.dropped(), 0u);  // the serialized path never drops
  const auto events = ring.snapshot();
  EXPECT_EQ(events.size(),
            ring.pushed() - ring.dropped() - ring.overwritten());
  // The surviving window is the newest `capacity` tickets, in order.
  EXPECT_EQ(events.size(), ring.capacity());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, events[i - 1].ticket + 1);
  }
}

// ------------------------------------------- traced sharded service --

TaskSpec make_task(util::Rng& rng, std::uint64_t id, std::size_t stages) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = rng.uniform(0.5, 2.0);
  spec.stages.resize(stages);
  for (auto& s : spec.stages) {
    if (rng.bernoulli(0.6)) s.compute = rng.uniform(0.0, 0.1) * spec.deadline;
  }
  return spec;
}

TEST(ObsMtShardedTest, EightThreadsTracedConservationHolds) {
  constexpr std::size_t kStages = 4;
  constexpr std::size_t kThreads = 8;
  constexpr int kPerThread = 4000;

  ShardedAdmissionConfig cfg;
  cfg.num_shards = 4;
  cfg.rebalance_interval = 1024;  // force rebalance spans during the run
  ShardedAdmissionService svc(FeasibleRegion::deadline_monotonic(kStages),
                              cfg);

  ManualClock clock;
  SinkConfig sink_cfg;
  sink_cfg.ring_capacity = std::size_t{1} << 16;  // holds every decision
  sink_cfg.latency_sample_period = 32;
  svc.enable_tracing(sink_cfg, &clock);
  ASSERT_TRUE(svc.tracing_enabled());

  std::atomic<std::uint64_t> admits{0};
  std::atomic<std::uint64_t> rejects{0};
  std::atomic<bool> stop{false};

  // A concurrent observer thread reads live rings and advances the clock
  // while admissions run — ring reads are documented always-safe.
  std::thread watcher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      clock.advance(50);
      for (std::size_t k = 0; k < svc.num_shards(); ++k) {
        const auto events = svc.observer().sink(k).ring().snapshot();
        for (const auto& ev : events) {
          // Shard-sink events must carry that shard's id and re-test to
          // their recorded outcome through the sanctioned predicate.
          EXPECT_EQ(ev.shard, static_cast<std::uint16_t>(k));
          EXPECT_EQ(ev.kind, SpanKind::kDecision);
          EXPECT_EQ(FeasibleRegion::admits_lhs(ev.lhs_with_task, ev.bound),
                    ev.admitted);
        }
      }
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&svc, &admits, &rejects, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      double now = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const auto id = static_cast<std::uint64_t>(t) * 1000000 +
                        static_cast<std::uint64_t>(i);
        now += rng.exponential(0.002);
        const auto d = svc.try_admit(make_task(rng, id, kStages), now);
        if (d.admitted) {
          admits.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejects.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true, std::memory_order_relaxed);
  watcher.join();

  constexpr std::uint64_t kAttempts =
      static_cast<std::uint64_t>(kThreads) * kPerThread;

  // Service-level conservation: every attempt is either an admit or a
  // reject, and the per-shard counters agree with the caller's tally.
  const auto stats = svc.stats();
  EXPECT_EQ(admits.load() + rejects.load(), kAttempts);
  EXPECT_EQ(stats.total_admits(), admits.load());
  EXPECT_EQ(stats.total_rejects(), rejects.load());
  EXPECT_EQ(stats.decisions, kAttempts);
  // The workload must exercise both outcomes for the tally to mean much.
  EXPECT_GT(admits.load(), 0u);
  EXPECT_GT(rejects.load(), 0u);

  // Observability conservation, read under the full lock set.
  const MetricsSnapshot snap = svc.obs_snapshot();
  ASSERT_EQ(snap.sinks.size(), svc.num_shards() + 1);  // + service sink

  std::uint64_t fb_admits = 0;
  std::uint64_t fb_rejects = 0;
  for (const auto& s : stats.shards) {
    fb_admits += s.fallback_admits;
    fb_rejects += s.fallback_rejects;
  }

  std::uint64_t traced_decisions = 0;
  std::uint64_t traced_admits = 0;
  for (std::size_t k = 0; k < svc.num_shards(); ++k) {
    const auto& s = snap.sinks[k];
    EXPECT_EQ(s.shard, static_cast<std::uint16_t>(k));
    for (std::size_t r = 0; r < kReasonCount; ++r) {
      traced_decisions += s.decisions_by_reason[r];
    }
    for (const auto reason : {AdmissionDecision::Reason::kAdmitted,
                              AdmissionDecision::Reason::kAtomicFastPath,
                              AdmissionDecision::Reason::kSlowPathFallback}) {
      traced_admits += s.decisions_by_reason[static_cast<std::size_t>(reason)];
    }
    // Ring conservation per shard, with producers quiescent.
    const auto& ring = svc.observer().sink(k).ring();
    EXPECT_EQ(ring.snapshot().size(),
              ring.pushed() - ring.dropped() - ring.overwritten());
    EXPECT_EQ(s.pushed, ring.pushed());
  }
  // Every attempt was traced by its home shard; a fallback ADMIT records a
  // second decision event on the admitting shard (the span on the service
  // sink carries the final kQuotaFallback reason), a fallback REJECT is
  // decided globally without a second controller call.
  EXPECT_EQ(traced_decisions, kAttempts + fb_admits);
  // Shard sinks record the pre-override reason, so every admission — atomic
  // fast path (kAtomicFastPath), exact hot path (kSlowPathFallback), or
  // fallback (recorded as kAdmitted by the admitting shard's controller
  // before the kQuotaFallback override) — appears as exactly one event.
  EXPECT_EQ(traced_admits, admits.load());

  // The service-level sink saw only spans: one kFallback per global-path
  // attempt plus one kRebalance per effective rebalance.
  const auto& service_snap = snap.sinks.back();
  EXPECT_EQ(service_snap.shard, kServiceShard);
  for (std::size_t r = 0; r < kReasonCount; ++r) {
    EXPECT_EQ(service_snap.decisions_by_reason[r], 0u);
  }
  EXPECT_EQ(service_snap.span_events,
            fb_admits + fb_rejects + stats.rebalances);
  const auto& service_ring = svc.observer().service_sink().ring();
  EXPECT_EQ(service_ring.snapshot().size(),
            service_ring.pushed() - service_ring.dropped() -
                service_ring.overwritten());
  EXPECT_EQ(service_snap.span_events, service_ring.pushed());
  for (const auto& ev : service_ring.snapshot()) {
    EXPECT_EQ(ev.shard, kServiceShard);
    EXPECT_NE(ev.kind, SpanKind::kDecision);
  }

  // The merged trace is ordered by (decided_at, shard, ticket).
  const auto merged = svc.observer().trace();
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].decided_at, merged[i].decided_at);
  }
}

TEST(ObsMtShardedTest, ConcurrentObsSnapshotsStayCoherent) {
  constexpr std::size_t kStages = 3;
  ShardedAdmissionConfig cfg;
  cfg.num_shards = 2;
  ShardedAdmissionService svc(FeasibleRegion::deadline_monotonic(kStages),
                              cfg);
  ManualClock clock;
  svc.enable_tracing(SinkConfig{}, &clock);

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    // obs_snapshot() takes every lock: counters and histograms it returns
    // must be mutually coherent even mid-run.
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = svc.obs_snapshot();
      for (const auto& s : snap.sinks) {
        std::uint64_t decisions = 0;
        for (std::size_t r = 0; r < kReasonCount; ++r) {
          decisions += s.decisions_by_reason[r];
        }
        // Each sink's ring saw exactly its decisions plus its spans.
        EXPECT_EQ(s.pushed, decisions + s.span_events);
        // Headroom samples can never exceed recorded decisions.
        EXPECT_LE(s.headroom.total(), decisions);
      }
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&svc, t] {
      util::Rng rng(7 + static_cast<std::uint64_t>(t));
      double now = 0;
      for (int i = 0; i < 3000; ++i) {
        const auto id = static_cast<std::uint64_t>(t) * 100000 +
                        static_cast<std::uint64_t>(i);
        now += rng.exponential(0.005);
        (void)svc.try_admit(make_task(rng, id, kStages), now);
      }
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.decisions, 4u * 3000u);
}

}  // namespace
}  // namespace frap::obs
