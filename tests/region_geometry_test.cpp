#include <gtest/gtest.h>

#include <cmath>

#include "core/region_geometry.h"
#include "core/stage_delay.h"
#include "util/rng.h"

namespace frap::core {
namespace {

TEST(RegionGeometryTest, SingleResourceExactVolume) {
  const auto region = FeasibleRegion::deadline_monotonic(1);
  EXPECT_NEAR(single_resource_volume(region), uniprocessor_bound(), 1e-12);
}

TEST(RegionGeometryTest, McMatchesExactInOneDimension) {
  const auto region = FeasibleRegion::deadline_monotonic(1);
  util::Rng rng(5);
  const double mc = region_volume_mc(region, 200000, rng);
  EXPECT_NEAR(mc, uniprocessor_bound(), 0.005);
}

TEST(RegionGeometryTest, VolumeShrinksWithAlpha) {
  util::Rng rng1(7);
  util::Rng rng2(7);
  const double v1 = region_volume_mc(FeasibleRegion::deadline_monotonic(2),
                                     100000, rng1);
  const double v05 = region_volume_mc(FeasibleRegion::with_alpha(2, 0.5),
                                      100000, rng2);
  EXPECT_GT(v1, v05);
}

TEST(RegionGeometryTest, RegionBeatsDeadlineSplitBoxEveryN) {
  // At N = 1 the two sets coincide, so strict dominance starts at N = 2.
  for (std::size_t n = 2; n <= 5; ++n) {
    util::Rng rng(100 + n);
    const double ours = region_volume_mc(
        FeasibleRegion::deadline_monotonic(n), 200000, rng);
    const double split = deadline_split_volume(n);
    EXPECT_GT(ours, split) << "n=" << n;
  }
}

TEST(RegionGeometryTest, SplitVolumeClosedForm) {
  EXPECT_NEAR(deadline_split_volume(1), uniprocessor_bound(), 1e-12);
  EXPECT_NEAR(deadline_split_volume(2),
              std::pow(uniprocessor_bound() / 2, 2), 1e-12);
}

TEST(RegionGeometryTest, DeterministicGivenSeed) {
  const auto region = FeasibleRegion::deadline_monotonic(3);
  util::Rng a(42);
  util::Rng b(42);
  EXPECT_DOUBLE_EQ(region_volume_mc(region, 10000, a),
                   region_volume_mc(region, 10000, b));
}

TEST(RegionGeometryTest, VolumeDecreasesWithDimension) {
  double prev = 1.0;
  for (std::size_t n = 1; n <= 4; ++n) {
    util::Rng rng(n);
    const double v = region_volume_mc(FeasibleRegion::deadline_monotonic(n),
                                      100000, rng);
    EXPECT_LT(v, prev) << "n=" << n;
    prev = v;
  }
}

}  // namespace
}  // namespace frap::core
