// Lock-free fixed-point admission path (ISSUE 6).
//
// Coverage, bottom-up:
//   * the 32.32 quantizer's conservative rounding and saturation,
//   * FeasibleRegion's quantized bound bracket and STRICT predicates
//     (boundary ties are inconclusive by design — the satellite-3
//     regression pins that at the try_reserve seam),
//   * AtomicAdmissionGuard's reservation/reconcile accounting invariant
//     (quantized LHS == committed floor + outstanding reservations),
//   * single-threaded A/B: the atomic-on service decides every arrival
//     identically to the atomic-off (pure mutex) service,
//   * liveness across the staleness horizon: fast rejects never strand a
//     shard whose capacity an expiry has freed,
//   * the 8-thread CAS-contention soundness sweep: >= 12k randomized
//     arrivals, then a per-shard exact mirror replays the committed set and
//     must re-admit every atomic-path admission (zero unsound admits).
//     Run under TSan in CI (the "Atomic" name matches the matrix filter).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "core/admission.h"
#include "core/admission_decision.h"
#include "core/feasible_region.h"
#include "core/fixed_point.h"
#include "core/reference_admitter.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "service/atomic_admission.h"
#include "service/sharded_admission.h"
#include "sim/simulator.h"
#include "util/math.h"
#include "util/rng.h"

namespace frap::service {
namespace {

using core::AdmissionDecision;
namespace fixed = core::fixed;

core::TaskSpec make_task(std::uint64_t id, double deadline,
                         std::vector<double> computes) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  spec.stages.resize(computes.size());
  for (std::size_t i = 0; i < computes.size(); ++i) {
    spec.stages[i].compute = computes[i];
  }
  return spec;
}

// ----------------------------------------------------- fixed-point quanta ---

TEST(AtomicFixedPointTest, RoundingDirectionsAreConservative) {
  for (double x : {0.0, 1e-12, 0.125, 0.3, 1.0, 2.718281828, 1000.5}) {
    const std::uint64_t up = fixed::quantize_up(x);
    const std::uint64_t down = fixed::quantize_down(x);
    EXPECT_LE(down, up);
    EXPECT_LE(up - down, 1u) << x;          // exact representables tie
    EXPECT_LE(fixed::to_double(down), x) << x;
    EXPECT_GE(fixed::to_double(up), x) << x;
  }
  EXPECT_EQ(fixed::quantize_up(0.0), 0u);
  EXPECT_EQ(fixed::quantize_down(0.0), 0u);
  // One quantum is 2^-32: far below any admission-relevant magnitude.
  EXPECT_DOUBLE_EQ(fixed::to_double(1), fixed::kResolution);
}

TEST(AtomicFixedPointTest, SaturationIsSticky) {
  EXPECT_EQ(fixed::quantize_up(util::kInf), fixed::kSaturated);
  EXPECT_EQ(fixed::quantize_down(util::kInf), fixed::kSaturated);
  EXPECT_EQ(fixed::quantize_up(1e30), fixed::kSaturated);
  // add_sat clamps on overflow and at the saturation sentinel.
  EXPECT_EQ(fixed::add_sat(fixed::kSaturated, 1), fixed::kSaturated);
  EXPECT_EQ(fixed::add_sat(fixed::kSaturated, fixed::kSaturated),
            fixed::kSaturated);
  EXPECT_EQ(fixed::add_sat(3, 4), 7u);
}

// --------------------------------------------- quantized region predicates --

TEST(AtomicQuantizedRegionTest, BoundBracketIsOrderedAndTight) {
  const auto region = core::FeasibleRegion::deadline_monotonic(5);
  const std::uint64_t floor = region.quantized_bound_floor();
  const std::uint64_t ceil = region.quantized_bound_ceil();
  EXPECT_LE(floor, ceil);
  EXPECT_EQ(region.quantization_slack_quanta(), ceil - floor);
  EXPECT_LE(region.quantization_slack_quanta(), 1u);
  EXPECT_LE(fixed::to_double(floor), region.bound());
  EXPECT_GE(fixed::to_double(ceil), region.bound());
}

TEST(AtomicQuantizedRegionTest, PredicatesAreStrictOnTies) {
  const auto region = core::FeasibleRegion::deadline_monotonic(5);
  const std::uint64_t floor = region.quantized_bound_floor();
  const std::uint64_t ceil = region.quantized_bound_ceil();
  // A quantized LHS exactly ON the floor must NOT admit (tie -> exact path).
  EXPECT_TRUE(core::FeasibleRegion::admits_quantized(floor - 1, floor));
  EXPECT_FALSE(core::FeasibleRegion::admits_quantized(floor, floor));
  // A quantized LHS exactly ON the ceiling must NOT fast-reject.
  EXPECT_FALSE(core::FeasibleRegion::rejects_quantized(ceil, ceil));
  EXPECT_TRUE(core::FeasibleRegion::rejects_quantized(ceil + 1, ceil));
}

// ------------------------------------------------------ guard unit tests ---

TEST(AtomicGuardTest, BoundaryTieReservationIsRefused) {
  // Satellite-3 regression: a delta that quantizes exactly onto the bound
  // floor must be refused by the CAS predicate (and retried exactly by the
  // service), never admitted optimistically.
  const auto region = core::FeasibleRegion::deadline_monotonic(3);
  AtomicAdmissionGuard guard(region);
  const std::uint64_t qb = guard.bound_floor();
  EXPECT_FALSE(guard.try_reserve(qb));      // lands exactly on the floor
  EXPECT_TRUE(guard.try_reserve(qb - 1));   // one quantum of headroom
  EXPECT_EQ(guard.quantized_lhs(), qb - 1);
  EXPECT_FALSE(guard.try_reserve(1));       // tie again, from a loaded base
  EXPECT_EQ(guard.quantized_lhs(), qb - 1); // refused CAS left no residue
}

TEST(AtomicGuardTest, ReserveReconcileAccountingInvariant) {
  const auto region = core::FeasibleRegion::deadline_monotonic(3);
  AtomicAdmissionGuard guard(region);
  EXPECT_EQ(guard.staleness_horizon(), util::kInf);

  // Reserve, then convert the reservation into committed state.
  const std::uint64_t r1 = fixed::quantize_up(0.1);
  ASSERT_TRUE(guard.try_reserve(r1));
  EXPECT_EQ(guard.quantized_lhs(), r1);
  EXPECT_EQ(guard.committed_floor(), 0u);
  guard.reconcile_locked(0.1, 5.0, r1);
  EXPECT_EQ(guard.committed_floor(), fixed::quantize_down(0.1));
  EXPECT_EQ(guard.quantized_lhs(), guard.committed_floor());
  EXPECT_EQ(guard.staleness_horizon(), 5.0);

  // An expiry drain (floor moves DOWN) while another reservation is
  // outstanding: the outstanding quanta must survive the fetch_add.
  const std::uint64_t r2 = fixed::quantize_up(0.02);
  ASSERT_TRUE(guard.try_reserve(r2));
  guard.reconcile_locked(0.05, util::kInf, 0);
  EXPECT_EQ(guard.committed_floor(), fixed::quantize_down(0.05));
  EXPECT_EQ(guard.quantized_lhs(), guard.committed_floor() + r2);

  // Abandoning the reservation (exact path declined) releases it.
  guard.reconcile_locked(0.05, util::kInf, r2);
  EXPECT_EQ(guard.quantized_lhs(), guard.committed_floor());
}

TEST(AtomicGuardTest, SaturatingTaskIsCertainRejectOnlyWhenAllowed) {
  const auto region = core::FeasibleRegion::deadline_monotonic(2);
  AtomicAdmissionGuard guard(region);
  // Scaled contribution 0.25/0.25 = 1.0 saturates the stage.
  const auto spec = make_task(1, 1.0, {0.25, 0.25});
  auto r = guard.classify(spec, 4.0, 0.0, /*allow_fast_reject=*/true);
  EXPECT_EQ(r.verdict, AtomicAdmissionGuard::Verdict::kReject);
  EXPECT_TRUE(r.saturates);
  EXPECT_TRUE(std::isinf(r.delta_floor));
  // Under tracing the service forbids lock-free rejects entirely.
  r = guard.classify(spec, 4.0, 0.0, /*allow_fast_reject=*/false);
  EXPECT_EQ(r.verdict, AtomicAdmissionGuard::Verdict::kInconclusive);
}

TEST(AtomicGuardTest, FastRejectGatedByStalenessHorizon) {
  const auto region = core::FeasibleRegion::deadline_monotonic(2);
  AtomicAdmissionGuard guard(region);
  // Publish a committed state one probe short of the bound, with the next
  // expiry at t = 10.
  guard.reconcile_locked(region.bound() * 0.99, 10.0, 0);
  const auto probe = make_task(1, 1.0, {0.1, 0.1});  // d_lo ~ 2*f(0.4)
  // Inside the horizon the under-bound clearly exceeds the headroom.
  auto r = guard.classify(probe, 4.0, 5.0, true);
  EXPECT_EQ(r.verdict, AtomicAdmissionGuard::Verdict::kReject);
  EXPECT_FALSE(r.saturates);
  // AT or past the horizon a pending expiry may have freed capacity: the
  // guard must defer to the exact path (reservation near the bound fails).
  r = guard.classify(probe, 4.0, 10.0, true);
  EXPECT_EQ(r.verdict, AtomicAdmissionGuard::Verdict::kInconclusive);
}

// ------------------------------------------------- single-threaded A/B -----

TEST(AtomicServiceABTest, DecidesIdenticallyToMutexPath) {
  // Same seeded arrival stream through the atomic-on and atomic-off
  // services: every verdict must match. The atomic path may only shortcut
  // decisions the exact path would take identically (fast rejects are
  // horizon-gated; inconclusives and commits re-run the exact test).
  ShardedAdmissionConfig on_cfg{.num_shards = 4,
                                .enable_fallback = false,
                                .rebalance_interval = 0};
  ShardedAdmissionConfig off_cfg = on_cfg;
  off_cfg.enable_atomic_fast_path = false;
  ShardedAdmissionService on(core::FeasibleRegion::deadline_monotonic(3),
                             on_cfg);
  ShardedAdmissionService off(core::FeasibleRegion::deadline_monotonic(3),
                              off_cfg);

  util::Rng rng(42);
  Time now = 0.0;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  for (std::uint64_t i = 1; i <= 4000; ++i) {
    now += rng.exponential(0.02);
    core::TaskSpec spec;
    spec.id = i;
    spec.deadline = rng.uniform(0.5, 4.0);
    spec.stages.resize(3);
    for (auto& s : spec.stages) {
      s.compute =
          rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.002, 0.05) * spec.deadline;
    }
    if (spec.stages[0].compute <= 0 && spec.stages[1].compute <= 0 &&
        spec.stages[2].compute <= 0) {
      spec.stages[0].compute = 0.05 * spec.deadline;
    }
    const auto d_on = on.try_admit(spec, now);
    const auto d_off = off.try_admit(spec, now);
    ASSERT_EQ(d_on.admitted, d_off.admitted)
        << "arrival " << i << " at t=" << now << ": atomic="
        << to_string(d_on.reason) << " mutex=" << to_string(d_off.reason);
    (d_on.admitted ? admits : rejects) += 1;
  }
  // The sweep only means something if it crossed the boundary both ways.
  EXPECT_GT(admits, 100u);
  EXPECT_GT(rejects, 100u);
  // And the atomic path actually engaged.
  const auto s = on.stats();
  std::uint64_t atomic_settled = 0;
  for (const auto& sh : s.shards) {
    atomic_settled += sh.atomic_admits + sh.atomic_rejects;
  }
  EXPECT_GT(atomic_settled, 0u);
}

// ------------------------------------------------------------- liveness ----

TEST(AtomicLivenessTest, AdmitsResumeAfterExpiryHorizon) {
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 2, .enable_fallback = false, .rebalance_interval = 0});
  // Fill shard 0 close to its slice (scaled u = 2*0.21/0.5 = 0.84/stage...
  // enough that the probe below cannot also fit), expiring at t = 1.
  const double w = 0.5;
  ASSERT_TRUE(
      svc.try_admit(make_task(2, 1.0, {0.21 * w, 0.21 * w}), 0.0).admitted);
  const auto probe = make_task(4, 1.0, {0.2 * w, 0.2 * w});
  const auto before = svc.try_admit(probe, 0.5);
  EXPECT_FALSE(before.admitted);
  // Past the fill's expiry the same probe must be admitted: the stale
  // quantized view defers to the exact path (now >= horizon), which drains
  // the expiry and frees the capacity. A fast reject here would be a
  // liveness bug.
  const auto after = svc.try_admit(make_task(6, 1.0, {0.2 * w, 0.2 * w}), 2.0);
  EXPECT_TRUE(after.admitted);
}

// -------------------------------------- 8-thread mirror-replay soundness ---

TEST(AtomicStressTest, MirrorReplayFindsNoUnsoundAdmits) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 1'600;  // 12.8k total, >= 12k (ISSUE)
  constexpr std::size_t kStages = 5;
  constexpr std::size_t kShards = 4;
  const auto region = core::FeasibleRegion::deadline_monotonic(kStages);
  // No fallback, no rebalance, one fixed presentation instant and deadlines
  // far in the future: shard weights never move and nothing expires, so the
  // committed set is exactly the admitted set and — every prefix of a
  // feasible set being feasible — an exact mirror may replay it in ANY
  // order.
  ShardedAdmissionService svc(
      region,
      {.num_shards = kShards, .enable_fallback = false,
       .rebalance_interval = 0});

  struct Recorded {
    core::TaskSpec spec;
    AdmissionDecision decision;
  };
  std::vector<std::vector<Recorded>> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&svc, &per_thread, t] {
      util::Rng rng(9000 + t);
      auto& out = per_thread[t];
      out.reserve(kPerThread);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        core::TaskSpec spec;
        spec.id = static_cast<std::uint64_t>(t) * 1'000'000 + i + 1;
        spec.deadline = 1000.0;
        spec.stages.resize(kStages);
        bool any = false;
        for (auto& s : spec.stages) {
          s.compute = rng.bernoulli(0.3)
                          ? 0.0
                          : rng.uniform(2e-5, 2e-4) * spec.deadline;
          any = any || s.compute > 0;
        }
        if (!any) spec.stages[0].compute = 1e-4 * spec.deadline;
        const auto d = svc.try_admit(spec, 0.0);
        out.push_back({spec, d});
      }
    });
  }
  for (auto& th : threads) th.join();

  // Counter conservation: every attempt was settled on exactly one path.
  const auto s = svc.stats();
  std::uint64_t attempts = 0;
  for (const auto& v : per_thread) attempts += v.size();
  EXPECT_EQ(s.decisions, attempts);
  std::uint64_t counted = 0;
  std::uint64_t atomic_admits = 0;
  for (const auto& sh : s.shards) {
    counted += sh.admits + sh.rejects + sh.atomic_admits + sh.atomic_rejects;
    atomic_admits += sh.atomic_admits;
    EXPECT_DOUBLE_EQ(sh.weight, 1.0 / kShards);  // never moved
  }
  EXPECT_EQ(counted, attempts);
  EXPECT_GT(atomic_admits, 0u);  // the CAS path must actually be exercised

  // Exact mirror per shard: a fresh full-evaluation ReferenceAdmitter at
  // the shard's (unchanged) weight replays the committed set. EVERY
  // admission — in particular every kAtomicFastPath one — must re-admit.
  std::uint64_t replayed = 0;
  for (std::size_t k = 0; k < kShards; ++k) {
    sim::Simulator sim;
    core::SyntheticUtilizationTracker tracker(sim, kStages);
    core::AdmissionController controller(sim, tracker, region);
    controller.set_contribution_scale(static_cast<double>(kShards));
    frap::testing::ReferenceAdmitter mirror(controller);
    for (const auto& v : per_thread) {
      for (const auto& rec : v) {
        if (!rec.decision.admitted || svc.route(rec.spec.id) != k) continue;
        const auto replay = mirror.try_admit(rec.spec, 0.0);
        ASSERT_TRUE(replay.admitted)
            << "unsound admit: task " << rec.spec.id << " (reason "
            << to_string(rec.decision.reason) << ") rejected by mirror with "
            << "lhs_with_task=" << replay.lhs_with_task
            << " bound=" << replay.bound;
        ++replayed;
      }
    }
  }
  EXPECT_GT(replayed, 0u);
}

}  // namespace
}  // namespace frap::service
