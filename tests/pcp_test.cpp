// Unit tests for the PCP lock manager in isolation (protocol rules only;
// end-to-end blocking behaviour is covered in stage_server_test.cpp).
#include <gtest/gtest.h>

#include "sched/job.h"
#include "sched/pcp.h"

namespace frap::sched {
namespace {

Job make_job(std::uint64_t id, PriorityValue prio) {
  return Job(id, prio, {Segment{1.0, kNoLock}});
}

TEST(PcpTest, FreeLockAcquirableWhenNoOtherLocksHeld) {
  PcpLockManager m;
  m.set_ceiling(0, 1.0);
  Job j = make_job(1, 5.0);
  EXPECT_TRUE(m.can_acquire(j, 0));
}

TEST(PcpTest, HeldLockNotAcquirable) {
  PcpLockManager m;
  m.set_ceiling(0, 1.0);
  Job a = make_job(1, 5.0);
  Job b = make_job(2, 1.0);
  m.acquire(a, 0);
  EXPECT_FALSE(m.can_acquire(b, 0));
  EXPECT_EQ(m.blocker(b, 0), &a);
}

TEST(PcpTest, CeilingRuleBlocksOtherLocks) {
  PcpLockManager m;
  m.set_ceiling(0, 1.0);  // very urgent ceiling
  m.set_ceiling(1, 3.0);
  Job low = make_job(1, 5.0);
  Job mid = make_job(2, 3.0);
  m.acquire(low, 0);
  // mid wants free lock 1, but its priority (3) is not strictly higher than
  // lock 0's ceiling (1) -> blocked by `low`.
  EXPECT_FALSE(m.can_acquire(mid, 1));
  EXPECT_EQ(m.blocker(mid, 1), &low);
}

TEST(PcpTest, StrictlyHigherThanCeilingPasses) {
  PcpLockManager m;
  m.set_ceiling(0, 3.0);
  m.set_ceiling(1, 0.5);
  Job low = make_job(1, 5.0);
  Job hi = make_job(2, 1.0);  // more urgent than ceiling 3.0
  m.acquire(low, 0);
  EXPECT_TRUE(m.can_acquire(hi, 1));
}

TEST(PcpTest, EqualToCeilingIsBlocked) {
  // PCP requires STRICTLY higher priority than the system ceiling.
  PcpLockManager m;
  m.set_ceiling(0, 2.0);
  m.set_ceiling(1, 2.0);
  Job low = make_job(1, 5.0);
  Job same = make_job(2, 2.0);
  m.acquire(low, 0);
  EXPECT_FALSE(m.can_acquire(same, 1));
}

TEST(PcpTest, ReleaseUnblocks) {
  PcpLockManager m;
  m.set_ceiling(0, 1.0);
  Job a = make_job(1, 5.0);
  Job b = make_job(2, 2.0);
  m.acquire(a, 0);
  EXPECT_FALSE(m.can_acquire(b, 0));
  m.release(a, 0);
  EXPECT_TRUE(m.can_acquire(b, 0));
  EXPECT_EQ(m.blocker(b, 0), nullptr);
}

TEST(PcpTest, HolderBookkeeping) {
  PcpLockManager m;
  m.set_ceiling(0, 1.0);
  Job a = make_job(1, 5.0);
  EXPECT_FALSE(m.is_locked(0));
  EXPECT_EQ(m.holder(0), nullptr);
  m.acquire(a, 0);
  EXPECT_TRUE(m.is_locked(0));
  EXPECT_EQ(m.holder(0), &a);
  EXPECT_EQ(a.held_lock, 0);
  m.release(a, 0);
  EXPECT_EQ(a.held_lock, kNoLock);
}

TEST(PcpTest, CeilingTightensNotLoosens) {
  PcpLockManager m;
  m.set_ceiling(0, 5.0);
  m.set_ceiling(0, 2.0);  // tighter wins
  m.set_ceiling(0, 9.0);  // looser ignored
  Job low = make_job(1, 10.0);
  Job mid = make_job(2, 3.0);
  m.set_ceiling(1, 9.0);
  m.acquire(low, 0);
  // mid (3.0) is not strictly more urgent than ceiling 2.0 -> blocked.
  EXPECT_FALSE(m.can_acquire(mid, 1));
}

TEST(PcpTest, NoteUserCountsViolations) {
  PcpLockManager m;
  m.set_ceiling(0, 3.0);
  EXPECT_EQ(m.ceiling_violations(), 0u);
  m.note_user(0, 5.0);  // less urgent user: fine
  EXPECT_EQ(m.ceiling_violations(), 0u);
  m.note_user(0, 1.0);  // more urgent than configured ceiling: violation
  EXPECT_EQ(m.ceiling_violations(), 1u);
  // And the ceiling is now tightened to 1.0.
  Job low = make_job(1, 10.0);
  Job j2 = make_job(2, 2.0);
  m.set_ceiling(1, 9.0);
  m.acquire(low, 0);
  EXPECT_FALSE(m.can_acquire(j2, 1));
}

TEST(PcpTest, NoteUserOnFreshLockSetsCeiling) {
  PcpLockManager m;
  m.note_user(7, 2.5);
  EXPECT_EQ(m.ceiling_violations(), 0u);
  Job a = make_job(1, 4.0);
  m.acquire(a, 7);
  Job b = make_job(2, 3.0);
  m.set_ceiling(8, 9.0);
  // b (3.0) not strictly above ceiling 2.5 -> blocked.
  EXPECT_FALSE(m.can_acquire(b, 8));
}

TEST(PcpTest, BlockerPicksMostUrgentCeiling) {
  PcpLockManager m;
  m.set_ceiling(0, 4.0);
  m.set_ceiling(1, 2.0);
  m.set_ceiling(2, 9.0);
  Job a = make_job(1, 6.0);
  Job b = make_job(2, 3.0);  // strictly above ceiling 4.0: can lock 1
  m.acquire(a, 0);
  ASSERT_TRUE(m.can_acquire(b, 1));
  m.acquire(b, 1);
  Job c = make_job(3, 3.5);
  // c fails against both ceilings (4.0 and 2.0); the blocker is the holder
  // of the most urgent failing ceiling (lock 1 -> b).
  EXPECT_FALSE(m.can_acquire(c, 2));
  EXPECT_EQ(m.blocker(c, 2), &b);
}

}  // namespace
}  // namespace frap::sched
