#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "workload/arrival_scheduler.h"

namespace frap::workload {
namespace {

TEST(ArrivalSchedulerTest, PeriodicFiresAtExactInstants) {
  sim::Simulator sim;
  std::vector<std::pair<Time, std::uint64_t>> releases;
  schedule_periodic(sim, 0.5, 0.25, 2.0, [&](Time t, std::uint64_t k) {
    releases.push_back({t, k});
  });
  sim.run();
  ASSERT_EQ(releases.size(), 4u);  // 0.25, 0.75, 1.25, 1.75
  EXPECT_DOUBLE_EQ(releases[0].first, 0.25);
  EXPECT_EQ(releases[0].second, 0u);
  EXPECT_DOUBLE_EQ(releases[3].first, 1.75);
  EXPECT_EQ(releases[3].second, 3u);
}

TEST(ArrivalSchedulerTest, PeriodicIncludesBoundary) {
  sim::Simulator sim;
  int count = 0;
  schedule_periodic(sim, 1.0, 0.0, 3.0, [&](Time, std::uint64_t) {
    ++count;
  });
  sim.run();
  EXPECT_EQ(count, 4);  // t = 0, 1, 2, 3
}

TEST(ArrivalSchedulerTest, PoissonRateIsHonored) {
  sim::Simulator sim;
  int count = 0;
  schedule_poisson(sim, 100.0, 50.0, 7, [&](Time) { ++count; });
  sim.run();
  // ~5000 arrivals expected; allow 5 sigma (~350).
  EXPECT_GT(count, 4600);
  EXPECT_LT(count, 5400);
}

TEST(ArrivalSchedulerTest, PoissonIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    std::vector<Time> times;
    schedule_poisson(sim, 50.0, 5.0, seed, [&](Time t) {
      times.push_back(t);
    });
    sim.run();
    return times;
  };
  EXPECT_EQ(run_once(3), run_once(3));
  EXPECT_NE(run_once(3), run_once(4));
}

TEST(ArrivalSchedulerTest, RenewalUsesProvidedGaps) {
  sim::Simulator sim;
  std::vector<Duration> gaps{1.0, 2.0, 0.5, 10.0};
  std::size_t i = 0;
  std::vector<Time> times;
  schedule_renewal(
      sim, 4.0, [&] { return gaps[i++]; },
      [&](Time t) { times.push_back(t); });
  sim.run();
  // Arrivals at 1.0, 3.0, 3.5; the next (13.5) exceeds `until`.
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
  EXPECT_DOUBLE_EQ(times[2], 3.5);
}

TEST(ArrivalSchedulerTest, LoopsTerminateAndDrainCleanly) {
  sim::Simulator sim;
  int arrivals = 0;
  schedule_poisson(sim, 1000.0, 1.0, 9, [&](Time) { ++arrivals; });
  schedule_periodic(sim, 0.1, 0.0, 1.0, [&](Time, std::uint64_t) {});
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_GT(arrivals, 0);
}

TEST(ArrivalSchedulerTest, CallbackSeesSimNowEqualToArrivalTime) {
  sim::Simulator sim;
  bool checked = false;
  schedule_periodic(sim, 1.0, 0.5, 0.5, [&](Time t, std::uint64_t) {
    EXPECT_DOUBLE_EQ(t, sim.now());
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(ArrivalSchedulerTest, ZeroArrivalWindowIsEmpty) {
  sim::Simulator sim;
  int count = 0;
  // First Poisson gap is > 0, so an `until` of 0 never fires.
  schedule_poisson(sim, 10.0, 0.0, 11, [&](Time) { ++count; });
  sim.run();
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace frap::workload
