#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/delay_bound.h"
#include "core/stage_delay.h"
#include "core/task_graph.h"

namespace frap::core {
namespace {

TEST(DelayBoundTest, StageDelayScalesWithDmax) {
  EXPECT_DOUBLE_EQ(predict_stage_delay(0.5, 2.0), 1.5);  // f(0.5)=0.75
  EXPECT_DOUBLE_EQ(predict_stage_delay(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(predict_stage_delay(0.5, 2.0, 0.25), 1.75);
  EXPECT_TRUE(std::isinf(predict_stage_delay(1.0, 1.0)));
}

TEST(DelayBoundTest, PipelineDelaySums) {
  const std::vector<double> u{0.5, 0.5};
  EXPECT_DOUBLE_EQ(predict_pipeline_delay(u, 2.0), 3.0);
  EXPECT_TRUE(std::isinf(
      predict_pipeline_delay(std::vector<double>{0.5, 1.0}, 2.0)));
}

TEST(DelayBoundTest, AtTheRegionBoundaryDelayEqualsDeadline) {
  // Sum f(U_j) = 1 exactly <=> predicted delay = D_max. The region test and
  // the delay bound are the same condition scaled by the deadline.
  const double cap = balanced_stage_bound(3);
  const std::vector<double> u{cap, cap, cap};
  EXPECT_NEAR(predict_pipeline_delay(u, 4.0), 4.0, 1e-9);
}

TEST(DelayBoundTest, GraphDelayUsesCriticalPath) {
  GraphTaskSpec g;
  g.id = 1;
  g.deadline = 1.0;
  StageDemand d;
  d.compute = 0.01;
  g.nodes = {GraphNode{0, d}, GraphNode{1, d}, GraphNode{2, d},
             GraphNode{3, d}};
  g.edges = {GraphEdge{0, 1}, GraphEdge{0, 2}, GraphEdge{1, 3},
             GraphEdge{2, 3}};
  const std::vector<double> u{0.3, 0.4, 0.2, 0.1};
  const double expected =
      (stage_delay_factor(0.3) +
       std::max(stage_delay_factor(0.4), stage_delay_factor(0.2)) +
       stage_delay_factor(0.1)) *
      2.0;
  EXPECT_NEAR(predict_graph_delay(g, u, 2.0), expected, 1e-12);
  EXPECT_TRUE(std::isinf(
      predict_graph_delay(g, std::vector<double>{1.0, 0, 0, 0}, 2.0)));
}

TEST(DelayBoundTest, ProvablyMeetsDeadlineMatchesRegionTest) {
  TaskSpec spec;
  spec.id = 1;
  spec.deadline = 1.0;
  spec.stages.resize(2);
  spec.stages[0].compute = 0.1;
  spec.stages[1].compute = 0.1;
  // Inside the region -> provable.
  EXPECT_TRUE(
      provably_meets_deadline(spec, std::vector<double>{0.3, 0.3}));
  // Outside -> not provable.
  EXPECT_FALSE(
      provably_meets_deadline(spec, std::vector<double>{0.5, 0.5}));
}

TEST(DelayBoundTest, MonotoneInUtilization) {
  double prev = 0;
  for (double u = 0.0; u < 0.95; u += 0.05) {
    const double l = predict_stage_delay(u, 1.0);
    EXPECT_GE(l, prev);
    prev = l;
  }
}

}  // namespace
}  // namespace frap::core
