#include <gtest/gtest.h>

#include <string>

#include "sched/gantt.h"
#include "sched/stage_server.h"
#include "sim/simulator.h"

namespace frap::sched {
namespace {

TEST(GanttTest, EmptyTimelineRendersEmpty) {
  Timeline t;
  EXPECT_EQ(render_ascii_gantt(t, 0.0, 10.0), "");
}

TEST(GanttTest, SingleIntervalFillsItsCells) {
  Timeline t;
  t.record(1, 2.0, 4.0, 0);
  const auto s = render_ascii_gantt(t, 0.0, 10.0, 10);
  // Cells 2 and 3 covered.
  EXPECT_EQ(s, "job 1 |..##......|\n");
}

TEST(GanttTest, RowsOrderedByFirstExecution) {
  Timeline t;
  t.record(5, 1.0, 2.0, 0);
  t.record(3, 2.0, 3.0, 0);
  t.record(5, 3.0, 4.0, 0);
  const auto s = render_ascii_gantt(t, 0.0, 4.0, 4);
  const auto pos5 = s.find("job 5");
  const auto pos3 = s.find("job 3");
  ASSERT_NE(pos5, std::string::npos);
  ASSERT_NE(pos3, std::string::npos);
  EXPECT_LT(pos5, pos3);
}

TEST(GanttTest, ClipsToWindow) {
  Timeline t;
  t.record(1, -5.0, 20.0, 0);
  const auto s = render_ascii_gantt(t, 0.0, 10.0, 5);
  EXPECT_EQ(s, "job 1 |#####|\n");
}

TEST(GanttTest, IntervalOutsideWindowInvisible) {
  Timeline t;
  t.record(1, 20.0, 30.0, 0);
  const auto s = render_ascii_gantt(t, 0.0, 10.0, 5);
  EXPECT_EQ(s, "job 1 |.....|\n");
}

TEST(GanttTest, RendersRealScheduleWithPreemption) {
  sim::Simulator sim;
  StageServer server(sim);
  Timeline timeline;
  server.set_timeline(&timeline);
  Job low(1, 10.0, {Segment{4.0, kNoLock}});
  Job high(2, 1.0, {Segment{2.0, kNoLock}});
  sim.at(0.0, [&] { server.submit(low); });
  sim.at(1.0, [&] { server.submit(high); });
  sim.run();
  // Timeline: low [0,1)+[3,6), high [1,3); 6 cells of 1s each.
  const auto s = render_ascii_gantt(timeline, 0.0, 6.0, 6);
  EXPECT_NE(s.find("job 1 |#..###|"), std::string::npos) << s;
  EXPECT_NE(s.find("job 2 |.##...|"), std::string::npos) << s;
}

}  // namespace
}  // namespace frap::sched
