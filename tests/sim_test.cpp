#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace frap::sim {
namespace {

// ------------------------------------------------------------ EventQueue ---

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  Time t;
  while (!q.empty()) q.pop(t)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  Time t;
  while (!q.empty()) q.pop(t)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  Time t;
  q.pop(t)();
  q.cancel(id);  // already fired: no-op
  q.cancel(id);
  q.cancel(kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  const EventId id = q.push(2.0, [&] { order.push_back(2); });
  q.push(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  Time t;
  while (!q.empty()) q.pop(t)();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  Time t;
  q.pop(t);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

// ------------------------------------------------------------- Simulator ---

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<Time> seen;
  sim.at(1.5, [&] { seen.push_back(sim.now()); });
  sim.at(0.5, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Time>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  Time fired = -1;
  sim.at(2.0, [&] {
    sim.after(3.0, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired, 5.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int count = 0;
  sim.at(1.0, [&] { ++count; });
  sim.at(2.0, [&] { ++count; });
  sim.at(3.0, [&] { ++count; });
  sim.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.after(1.0, step);
  };
  sim.at(0.0, step);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.at(2.0, [&] { fired = true; });
  sim.at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepExecutesBoundedEvents) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    sim.at(static_cast<Time>(i), [&] { ++count; });
  }
  EXPECT_EQ(sim.step(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.step(10), 3u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.step(), 0u);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.at(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, SameTimeEventsFifoAcrossScheduling) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(0); });
  sim.at(1.0, [&] {
    order.push_back(1);
    // Scheduled at the same instant from within an event: runs after
    // already-queued same-time events.
    sim.at(1.0, [&] { order.push_back(3); });
  });
  sim.at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Fuzz the event queue against a reference (ordered multimap with stable
// insertion order): random interleavings of push/cancel/pop must agree.
TEST(EventQueueFuzzTest, MatchesReferenceUnderRandomOperations) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 rng(seed);
    EventQueue q;
    // Reference: (time, seq) -> id, plus fired log.
    struct Ref {
      Time time;
      std::uint64_t seq;
      EventId id;
    };
    std::vector<Ref> pending;
    std::uint64_t seq = 0;
    std::vector<EventId> fired_q;
    std::vector<EventId> fired_ref;
    std::vector<EventId> all_ids;

    for (int step = 0; step < 500; ++step) {
      const auto op = rng() % 10;
      if (op < 5) {  // push
        const Time t = static_cast<double>(rng() % 1000);
        EventId id = 0;
        id = q.push(t, [] {});
        pending.push_back(Ref{t, seq++, id});
        all_ids.push_back(id);
      } else if (op < 7 && !all_ids.empty()) {  // cancel (maybe stale)
        const EventId victim = all_ids[rng() % all_ids.size()];
        q.cancel(victim);
        pending.erase(std::remove_if(pending.begin(), pending.end(),
                                     [&](const Ref& r) {
                                       return r.id == victim;
                                     }),
                      pending.end());
      } else if (!q.empty()) {  // pop
        Time t;
        q.pop(t);
        // Reference pop: min (time, seq).
        auto best = std::min_element(
            pending.begin(), pending.end(), [](const Ref& a, const Ref& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
        ASSERT_NE(best, pending.end());
        ASSERT_DOUBLE_EQ(t, best->time) << "seed " << seed;
        pending.erase(best);
      }
      ASSERT_EQ(q.size(), pending.size()) << "seed " << seed;
      ASSERT_EQ(q.empty(), pending.empty());
      if (!pending.empty()) {
        auto best = std::min_element(
            pending.begin(), pending.end(), [](const Ref& a, const Ref& b) {
              return a.time < b.time;
            });
        ASSERT_DOUBLE_EQ(q.next_time(), best->time) << "seed " << seed;
      }
    }
    (void)fired_q;
    (void)fired_ref;
  }
}

TEST(SimulatorTest, PendingEventsReflectsQueue) {
  Simulator sim;
  sim.at(1.0, [] {});
  const EventId b = sim.at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(b);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace frap::sim
