// End-to-end soundness of Eq. 15: randomized workloads with PCP critical
// sections, admitted by the blocking-aware region, never miss end-to-end
// deadlines — swept over loads, critical-section fractions, and seeds.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/pipeline_workload.h"

namespace frap {
namespace {

struct BlockingStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
  std::uint64_t beta_screened = 0;
};

// Each stage demand is split into a lock-free and a PCP-locked segment
// (the critical fraction). Admission declares beta per stage and screens
// arrivals whose own critical section would exceed beta * D (so the
// declared beta is honest), then applies the Eq. 15 region.
BlockingStats run_blocking(double load, double crit_fraction,
                           double declared_beta, std::uint64_t seed) {
  auto wl = workload::PipelineWorkloadConfig::balanced(2, 10 * kMilli, load,
                                                       /*resolution=*/10.0);
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, 2);
  pipeline::PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController controller(
      sim, tracker,
      core::FeasibleRegion::with_blocking(
          1.0, std::vector<double>{declared_beta, declared_beta}));

  BlockingStats stats;
  runtime.set_on_task_complete(
      [&](const core::TaskSpec&, Duration, bool missed) {
        ++stats.completed;
        if (missed) ++stats.missed;
      });

  const Duration sim_end = 40.0;
  std::function<void()> pump = [&] {
    const Time t = sim.now() + gen.next_interarrival();
    if (t > sim_end) return;
    sim.at(t, [&] {
      ++stats.offered;
      auto spec = gen.next_task();
      bool beta_ok = true;
      for (auto& stage : spec.stages) {
        const Duration crit = stage.compute * crit_fraction;
        if (crit > declared_beta * spec.deadline) beta_ok = false;
        stage.segments = {
            sched::Segment{stage.compute - crit, sched::kNoLock},
            sched::Segment{crit, 0}};
      }
      if (!beta_ok) {
        ++stats.beta_screened;
      } else if (controller.try_admit(spec).admitted) {
        ++stats.admitted;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      pump();
    });
  };
  pump();
  sim.run();
  return stats;
}

using BlockingParams = std::tuple<double, double, std::uint64_t>;

class BlockingSoundnessTest
    : public ::testing::TestWithParam<BlockingParams> {};

TEST_P(BlockingSoundnessTest, PcpWorkloadsNeverMissUnderEq15) {
  const auto [load, crit_fraction, seed] = GetParam();
  const double beta = 0.08;
  const auto stats = run_blocking(load, crit_fraction, beta, seed);
  EXPECT_GT(stats.completed, 100u);
  EXPECT_EQ(stats.missed, 0u) << "load=" << load
                              << " crit=" << crit_fraction
                              << " seed=" << seed;
  EXPECT_EQ(stats.completed, stats.admitted);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockingSoundnessTest,
    ::testing::Combine(::testing::Values(1.0, 1.8),
                       ::testing::Values(0.25, 0.5, 0.9),
                       ::testing::Values<std::uint64_t>(5, 6)));

TEST(BlockingSoundnessTest, ScreeningActuallyFires) {
  // At resolution 10 with a tight beta some tasks must be screened, or
  // the beta declaration would be untested.
  const auto stats = run_blocking(1.5, 0.9, 0.08, 5);
  EXPECT_GT(stats.beta_screened, 0u);
}

TEST(BlockingSoundnessTest, LocksActuallyContended) {
  // Sanity: the PCP machinery is exercised (some blocking occurred).
  // Measured indirectly: with critical sections the completion order can
  // deviate from the lock-free order, but the simplest witness is that
  // the run completes with zero misses while the stage servers performed
  // preemptions (locked segments force inheritance-driven scheduling).
  const auto stats = run_blocking(1.8, 0.5, 0.08, 7);
  EXPECT_GT(stats.completed, 500u);
  EXPECT_EQ(stats.missed, 0u);
}

}  // namespace
}  // namespace frap
