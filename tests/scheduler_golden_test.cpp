// Golden-model cross-validation of the StageServer.
//
// An independent reference implementation of preemptive fixed-priority
// scheduling (a simple sweep over arrival/completion instants, written with
// none of the server's event machinery) computes completion times for
// randomized job sets; the StageServer must reproduce them exactly. This
// catches bookkeeping bugs (remaining-time math, tie-breaking, preemption
// edges) that individual timeline tests might miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "sched/stage_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::sched {
namespace {

struct JobSpec {
  std::uint64_t id;
  Time arrival;
  PriorityValue priority;
  Duration length;
};

// Reference scheduler: advances from time point to time point, always
// running the highest-priority pending job (FIFO by arrival order among
// equal priorities, matching the server's submit-order tie-break).
std::map<std::uint64_t, Time> reference_schedule(std::vector<JobSpec> jobs) {
  // Stable order: by arrival time, then by original index (submit order).
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     return a.arrival < b.arrival;
                   });
  struct Pending {
    const JobSpec* spec;
    Duration remaining;
    std::size_t submit_seq;
  };
  std::map<std::uint64_t, Time> completion;
  std::vector<Pending> pending;
  std::size_t next = 0;
  Time now = 0;

  while (next < jobs.size() || !pending.empty()) {
    if (pending.empty()) {
      now = std::max(now, jobs[next].arrival);
    }
    // Admit all arrivals at or before `now`.
    while (next < jobs.size() && jobs[next].arrival <= now) {
      pending.push_back(Pending{&jobs[next], jobs[next].length, next});
      ++next;
    }
    if (pending.empty()) continue;
    // Pick highest priority (lowest value), FIFO on ties.
    auto best = std::min_element(
        pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
          if (a.spec->priority != b.spec->priority) {
            return a.spec->priority < b.spec->priority;
          }
          return a.submit_seq < b.submit_seq;
        });
    // Run it until it completes or the next arrival.
    const Time next_arrival =
        next < jobs.size() ? jobs[next].arrival
                           : std::numeric_limits<Time>::infinity();
    const Time finish = now + best->remaining;
    if (finish <= next_arrival) {
      completion[best->spec->id] = finish;
      now = finish;
      pending.erase(best);
    } else {
      best->remaining -= next_arrival - now;
      now = next_arrival;
    }
  }
  return completion;
}

class SchedulerGoldenTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerGoldenTest, ServerMatchesReferenceOnRandomJobSets) {
  util::Rng rng(GetParam());
  const int num_jobs = 60;

  std::vector<JobSpec> jobs;
  Time t = 0;
  for (int i = 0; i < num_jobs; ++i) {
    t += rng.exponential(1.0);
    jobs.push_back(JobSpec{
        static_cast<std::uint64_t>(i + 1), t,
        // Few distinct priorities to exercise ties; integral values avoid
        // fp-equality surprises in the comparison itself.
        static_cast<PriorityValue>(rng.uniform_int(1, 4)),
        rng.exponential(1.5)});
  }

  const auto expected = reference_schedule(jobs);

  sim::Simulator sim;
  StageServer server(sim, "golden");
  std::map<std::uint64_t, Time> actual;
  server.set_on_complete(
      [&](Job& j) { actual[j.id] = sim.now(); });
  std::vector<std::unique_ptr<Job>> storage;
  for (const auto& spec : jobs) {
    storage.push_back(std::make_unique<Job>(
        spec.id, spec.priority,
        std::vector<Segment>{Segment{spec.length, kNoLock}}));
    Job* job = storage.back().get();
    sim.at(spec.arrival, [&server, job] { server.submit(*job); });
  }
  sim.run();

  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [id, finish] : expected) {
    ASSERT_TRUE(actual.count(id)) << "job " << id << " never completed";
    EXPECT_NEAR(actual[id], finish, 1e-7) << "job " << id;
  }

  // Conservation: total busy time equals total work.
  Duration total_work = 0;
  for (const auto& j : jobs) total_work += j.length;
  EXPECT_NEAR(server.meter().busy_time(0.0, sim.now() + 1.0), total_work,
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerGoldenTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace frap::sched
