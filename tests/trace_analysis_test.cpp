#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/admission.h"
#include "core/delay_bound.h"
#include "core/feasible_region.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "pipeline/trace_analysis.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/pipeline_workload.h"

namespace frap::pipeline {
namespace {

TEST(TraceAnalysisTest, ResidenceFromHandBuiltTrace) {
  TraceLog log;
  log.record(1.0, TraceEventKind::kRelease, 7);
  log.record(2.5, TraceEventKind::kStageDeparture, 7, 0);
  log.record(4.0, TraceEventKind::kStageDeparture, 7, 1);
  log.record(4.0, TraceEventKind::kComplete, 7, 0);
  const auto r = stage_residence_times(log, 7, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 1.5);
  EXPECT_DOUBLE_EQ(r[1], 1.5);
}

TEST(TraceAnalysisTest, IncompleteRecordsReturnEmpty) {
  TraceLog log;
  log.record(1.0, TraceEventKind::kRelease, 7);
  log.record(2.5, TraceEventKind::kStageDeparture, 7, 0);
  // Missing stage-1 departure.
  EXPECT_TRUE(stage_residence_times(log, 7, 2).empty());
  // Unknown task.
  EXPECT_TRUE(stage_residence_times(log, 99, 2).empty());
  // Missing release.
  TraceLog log2;
  log2.record(2.5, TraceEventKind::kStageDeparture, 8, 0);
  EXPECT_TRUE(stage_residence_times(log2, 8, 1).empty());
}

TEST(TraceAnalysisTest, MaxResidenceAggregates) {
  TraceLog log;
  log.record(0.0, TraceEventKind::kRelease, 1);
  log.record(1.0, TraceEventKind::kStageDeparture, 1, 0);
  log.record(1.5, TraceEventKind::kStageDeparture, 1, 1);
  log.record(1.5, TraceEventKind::kComplete, 1, 0);
  log.record(0.0, TraceEventKind::kRelease, 2);
  log.record(0.5, TraceEventKind::kStageDeparture, 2, 0);
  log.record(3.5, TraceEventKind::kStageDeparture, 2, 1);
  log.record(3.5, TraceEventKind::kComplete, 2, 0);
  const auto m = max_stage_residence(log, 2);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 1.0);  // task 1
  EXPECT_DOUBLE_EQ(m[1], 3.0);  // task 2
}

TEST(TraceAnalysisTest, RuntimeTraceMatchesKnownTimeline) {
  sim::Simulator sim;
  PipelineRuntime runtime(sim, 2, nullptr);
  TraceLog log;
  runtime.set_trace(&log);
  core::TaskSpec spec;
  spec.id = 1;
  spec.deadline = 10.0;
  spec.stages.resize(2);
  spec.stages[0].compute = 1.0;
  spec.stages[1].compute = 2.0;
  sim.at(0.0, [&] { runtime.start_task(spec, 10.0); });
  sim.run();
  const auto r = stage_residence_times(log, 1, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
}

// Per-stage Theorem 1 validation: every observed stage residence is
// bounded by f(U_peak_j) * D_max — a strictly sharper check than the
// end-to-end sum used in theorem_validation_test.
TEST(TraceAnalysisTest, PerStageResidenceRespectsTheorem1) {
  const auto wl = workload::PipelineWorkloadConfig::balanced(
      3, 10 * kMilli, 1.4, 40.0);
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, 4242);
  core::SyntheticUtilizationTracker tracker(sim, 3);
  PipelineRuntime runtime(sim, 3, &tracker);
  TraceLog log;
  runtime.set_trace(&log);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(3));

  std::vector<double> peak(3, 0.0);
  Duration max_deadline = 0;
  std::function<void()> pump = [&] {
    const Time t = sim.now() + gen.next_interarrival();
    if (t > 30.0) return;
    sim.at(t, [&] {
      const auto spec = gen.next_task();
      if (controller.try_admit(spec).admitted) {
        const auto u = tracker.utilizations();
        for (std::size_t j = 0; j < 3; ++j) {
          peak[j] = std::max(peak[j], u[j]);
        }
        max_deadline = std::max(max_deadline, spec.deadline);
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      pump();
    });
  };
  pump();
  sim.run();

  ASSERT_GT(runtime.completed(), 200u);
  const auto max_residence = max_stage_residence(log, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    const Duration bound =
        core::predict_stage_delay(peak[j], max_deadline);
    EXPECT_LE(max_residence[j], bound + 1e-9) << "stage " << j;
    EXPECT_GT(max_residence[j], 0.0);
  }
}

}  // namespace
}  // namespace frap::pipeline
