#include <gtest/gtest.h>

#include <sstream>

#include "workload/pipeline_workload.h"
#include "workload/replay.h"

namespace frap::workload {
namespace {

core::TaskSpec make_task(std::uint64_t id, Duration deadline,
                         std::vector<Duration> computes) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  for (Duration c : computes) {
    core::StageDemand d;
    d.compute = c;
    spec.stages.push_back(d);
  }
  return spec;
}

TEST(ArrivalTraceTest, AppendAndQuery) {
  ArrivalTrace trace;
  trace.append(1.0, make_task(1, 2.0, {0.1, 0.2}));
  trace.append(1.5, make_task(2, 3.0, {0.3, 0.1}));
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.num_stages(), 2u);
  EXPECT_DOUBLE_EQ(trace[0].time, 1.0);
  EXPECT_EQ(trace[1].task.id, 2u);
}

TEST(ArrivalTraceTest, SaveLoadRoundTripsExactly) {
  ArrivalTrace trace;
  trace.append(0.125, make_task(10, 1.75, {0.015625, 0.25}));
  trace.append(7.0 / 3.0, make_task(11, 0.1, {1e-9, 2.5}));

  std::stringstream ss;
  trace.save(ss);

  ArrivalTrace loaded;
  ASSERT_TRUE(loaded.load(ss));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.num_stages(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, trace[i].time);
    EXPECT_EQ(loaded[i].task.id, trace[i].task.id);
    EXPECT_DOUBLE_EQ(loaded[i].task.deadline, trace[i].task.deadline);
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(loaded[i].task.stages[j].compute,
                       trace[i].task.stages[j].compute);
    }
  }
}

TEST(ArrivalTraceTest, LoadRejectsBadMagic) {
  std::stringstream ss("not-a-trace v1 2\n");
  ArrivalTrace t;
  EXPECT_FALSE(t.load(ss));
  EXPECT_TRUE(t.empty());
}

TEST(ArrivalTraceTest, LoadRejectsWrongVersion) {
  std::stringstream ss("frap-trace v9 2\n");
  ArrivalTrace t;
  EXPECT_FALSE(t.load(ss));
}

TEST(ArrivalTraceTest, LoadRejectsTruncatedRow) {
  std::stringstream ss("frap-trace v1 2\n1.0 5 2.0 0.0 0.1\n");  // missing C2
  ArrivalTrace t;
  EXPECT_FALSE(t.load(ss));
  EXPECT_TRUE(t.empty());
}

TEST(ArrivalTraceTest, LoadRejectsTimeGoingBackwards) {
  std::stringstream ss(
      "frap-trace v1 1\n2.0 1 1.0 0.0 0.1\n1.0 2 1.0 0.0 0.1\n");
  ArrivalTrace t;
  EXPECT_FALSE(t.load(ss));
}

TEST(ArrivalTraceTest, LoadAcceptsEmptyTrace) {
  std::stringstream ss("frap-trace v1 3\n");
  ArrivalTrace t;
  EXPECT_TRUE(t.load(ss));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_stages(), 3u);
}

TEST(ArrivalTraceTest, OfferedLoadComputesWorkOverSpan) {
  ArrivalTrace trace;
  trace.append(0.0, make_task(1, 1.0, {0.5, 0.1}));
  trace.append(10.0, make_task(2, 1.0, {0.5, 0.3}));
  EXPECT_DOUBLE_EQ(trace.offered_load(0), 0.1);   // 1.0 work / 10 s
  EXPECT_DOUBLE_EQ(trace.offered_load(1), 0.04);  // 0.4 / 10
}

TEST(ArrivalTraceTest, OfferedLoadDegenerate) {
  ArrivalTrace trace(2);
  EXPECT_DOUBLE_EQ(trace.offered_load(0), 0.0);
  trace.append(1.0, make_task(1, 1.0, {0.5, 0.1}));
  EXPECT_DOUBLE_EQ(trace.offered_load(0), 0.0);  // single record
}

TEST(ArrivalTraceTest, CapturesGeneratorStream) {
  // Record a generated workload and verify replay equivalence.
  const auto cfg = PipelineWorkloadConfig::balanced(2, 0.01, 1.0);
  PipelineWorkloadGenerator gen(cfg, 123);
  ArrivalTrace trace;
  Time t = 0;
  for (int i = 0; i < 100; ++i) {
    t += gen.next_interarrival();
    trace.append(t, gen.next_task());
  }
  std::stringstream ss;
  trace.save(ss);
  ArrivalTrace loaded;
  ASSERT_TRUE(loaded.load(ss));
  ASSERT_EQ(loaded.size(), 100u);
  EXPECT_DOUBLE_EQ(loaded[99].time, trace[99].time);
  EXPECT_DOUBLE_EQ(loaded[50].task.stages[1].compute,
                   trace[50].task.stages[1].compute);
}

}  // namespace
}  // namespace frap::workload
