#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/stage_delay.h"
#include "core/task_graph.h"

namespace frap::core {
namespace {

StageDemand demand(Duration c) {
  StageDemand d;
  d.compute = c;
  return d;
}

// The example of Fig. 3: T1 -> {T2, T3} -> T4 on resources R1..R4.
GraphTaskSpec fig3_task() {
  GraphTaskSpec g;
  g.id = 1;
  g.deadline = 1.0;
  g.nodes = {GraphNode{0, demand(0.1)}, GraphNode{1, demand(0.1)},
             GraphNode{2, demand(0.1)}, GraphNode{3, demand(0.1)}};
  g.edges = {GraphEdge{0, 1}, GraphEdge{0, 2}, GraphEdge{1, 3},
             GraphEdge{2, 3}};
  return g;
}

TEST(TaskGraphTest, Fig3IsValid) {
  const auto g = fig3_task();
  EXPECT_TRUE(g.valid(4));
  EXPECT_FALSE(g.valid(3));  // node 3 uses resource 3
}

TEST(TaskGraphTest, SourcesAndSinks) {
  const auto g = fig3_task();
  EXPECT_EQ(g.sources(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<std::size_t>{3}));
}

TEST(TaskGraphTest, TopologicalOrderRespectsEdges) {
  const auto g = fig3_task();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < 4; ++i) pos[order[i]] = i;
  for (const auto& e : g.edges) {
    EXPECT_LT(pos[e.from], pos[e.to]);
  }
}

TEST(TaskGraphTest, CycleIsInvalid) {
  GraphTaskSpec g;
  g.deadline = 1.0;
  g.nodes = {GraphNode{0, demand(0.1)}, GraphNode{1, demand(0.1)}};
  g.edges = {GraphEdge{0, 1}, GraphEdge{1, 0}};
  EXPECT_FALSE(g.valid(2));
}

TEST(TaskGraphTest, SelfLoopIsInvalid) {
  GraphTaskSpec g;
  g.deadline = 1.0;
  g.nodes = {GraphNode{0, demand(0.1)}};
  g.edges = {GraphEdge{0, 0}};
  EXPECT_FALSE(g.valid(1));
}

TEST(TaskGraphTest, CriticalPathOfFig3IsL1PlusMaxL2L3PlusL4) {
  const auto g = fig3_task();
  // Weights L1=1, L2=5, L3=2, L4=1 -> 1 + max(5,2) + 1 = 7 (Eq. 16 shape).
  EXPECT_DOUBLE_EQ(g.critical_path(std::vector<double>{1, 5, 2, 1}), 7.0);
  EXPECT_DOUBLE_EQ(g.critical_path(std::vector<double>{1, 2, 5, 1}), 7.0);
}

TEST(TaskGraphTest, CriticalPathOfChainIsSum) {
  TaskSpec p;
  p.id = 2;
  p.deadline = 1.0;
  p.stages = {demand(0.1), demand(0.1), demand(0.1)};
  const auto g = GraphTaskSpec::from_pipeline(p);
  EXPECT_DOUBLE_EQ(g.critical_path(std::vector<double>{1, 2, 3}), 6.0);
}

TEST(TaskGraphTest, CriticalPathOfParallelNodesIsMax) {
  GraphTaskSpec g;
  g.deadline = 1.0;
  g.nodes = {GraphNode{0, demand(0.1)}, GraphNode{1, demand(0.1)},
             GraphNode{2, demand(0.1)}};
  // No edges: three independent nodes.
  EXPECT_DOUBLE_EQ(g.critical_path(std::vector<double>{3, 7, 2}), 7.0);
}

TEST(TaskGraphTest, FromPipelinePreservesStructure) {
  TaskSpec p;
  p.id = 9;
  p.deadline = 2.0;
  p.importance = 4.0;
  p.stages = {demand(0.2), demand(0.4)};
  const auto g = GraphTaskSpec::from_pipeline(p);
  EXPECT_EQ(g.id, 9u);
  EXPECT_DOUBLE_EQ(g.deadline, 2.0);
  EXPECT_DOUBLE_EQ(g.importance, 4.0);
  ASSERT_EQ(g.nodes.size(), 2u);
  EXPECT_EQ(g.nodes[0].resource, 0u);
  EXPECT_EQ(g.nodes[1].resource, 1u);
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_TRUE(g.valid(2));
}

TEST(TaskGraphTest, ResourceContributionsSumSharedResources) {
  GraphTaskSpec g;
  g.deadline = 2.0;
  // Nodes 0 and 2 share resource 0 (the paper's shared-resource case).
  g.nodes = {GraphNode{0, demand(0.2)}, GraphNode{1, demand(0.4)},
             GraphNode{0, demand(0.6)}};
  g.edges = {GraphEdge{0, 1}, GraphEdge{1, 2}};
  const auto c = g.resource_contributions(2);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 0.4);  // (0.2 + 0.6) / 2
  EXPECT_DOUBLE_EQ(c[1], 0.2);
}

// ------------------------------------------------- GraphRegionEvaluator ---

TEST(GraphRegionTest, ChainMatchesPipelineRegion) {
  TaskSpec p;
  p.id = 1;
  p.deadline = 1.0;
  p.stages = {demand(0.1), demand(0.1)};
  const auto g = GraphTaskSpec::from_pipeline(p);
  GraphRegionEvaluator eval(1.0, {});
  const std::vector<double> u{0.3, 0.2};
  EXPECT_NEAR(eval.lhs(g, u),
              stage_delay_factor(0.3) + stage_delay_factor(0.2), 1e-12);
  EXPECT_DOUBLE_EQ(eval.bound(g), 1.0);
}

TEST(GraphRegionTest, Fig3LhsUsesEq16Shape) {
  const auto g = fig3_task();
  GraphRegionEvaluator eval(1.0, {});
  const std::vector<double> u{0.3, 0.4, 0.2, 0.1};
  const double expected = stage_delay_factor(0.3) +
                          std::max(stage_delay_factor(0.4),
                                   stage_delay_factor(0.2)) +
                          stage_delay_factor(0.1);
  EXPECT_NEAR(eval.lhs(g, u), expected, 1e-12);
}

TEST(GraphRegionTest, ParallelBranchesAdmitMoreThanChain) {
  // Same four nodes; the fork/join shape tolerates higher utilization than
  // a 4-chain because only the worse branch counts.
  const auto fork = fig3_task();
  TaskSpec p;
  p.id = 1;
  p.deadline = 1.0;
  p.stages = {demand(0.1), demand(0.1), demand(0.1), demand(0.1)};
  const auto chain = GraphTaskSpec::from_pipeline(p);
  GraphRegionEvaluator eval(1.0, {});
  const std::vector<double> u{0.25, 0.25, 0.25, 0.25};
  EXPECT_LT(eval.lhs(fork, u), eval.lhs(chain, u));
}

TEST(GraphRegionTest, SaturatedResourceIsInfinite) {
  const auto g = fig3_task();
  GraphRegionEvaluator eval(1.0, {});
  EXPECT_TRUE(std::isinf(eval.lhs(g, std::vector<double>{1.0, 0, 0, 0})));
}

TEST(GraphRegionTest, AlphaScalesBound) {
  const auto g = fig3_task();
  GraphRegionEvaluator eval(0.5, {});
  EXPECT_DOUBLE_EQ(eval.bound(g), 0.5);
}

TEST(GraphRegionTest, BlockingUsesCriticalPathOfBetas) {
  const auto g = fig3_task();
  // beta on the four resources; the blocking path is beta0 +
  // max(beta1, beta2) + beta3 = 0.1 + 0.15 + 0.05 = 0.3.
  GraphRegionEvaluator eval(1.0, std::vector<double>{0.1, 0.15, 0.05, 0.05});
  EXPECT_NEAR(eval.bound(g), 1.0 - 0.3, 1e-12);
}

TEST(GraphRegionTest, ChainBlockingReducesToEq15) {
  TaskSpec p;
  p.id = 1;
  p.deadline = 1.0;
  p.stages = {demand(0.1), demand(0.1)};
  const auto g = GraphTaskSpec::from_pipeline(p);
  GraphRegionEvaluator eval(0.8, std::vector<double>{0.1, 0.2});
  // alpha (1 - sum beta) = 0.8 * 0.7.
  EXPECT_NEAR(eval.bound(g), 0.8 * 0.7, 1e-12);
}

TEST(GraphRegionTest, FeasibleDecision) {
  const auto g = fig3_task();
  GraphRegionEvaluator eval(1.0, {});
  EXPECT_TRUE(eval.feasible(g, std::vector<double>{0.2, 0.2, 0.2, 0.2}));
  EXPECT_FALSE(eval.feasible(g, std::vector<double>{0.5, 0.5, 0.5, 0.5}));
}

}  // namespace
}  // namespace frap::core
