// Incremental-vs-rewalk identity for the long-path evaluator (the PR-1
// discipline applied to DAG admission, docs/dag_bounds.md): the controller's
// incremental evaluation — cached per-stage f-terms + touched-resource
// deltas over the shape's dominant path profiles — must produce BIT-
// IDENTICAL lhs values and decisions to recomputing from an explicit
// utilization snapshot, at every attempt of a long churn run with arrivals,
// completions, and expiries interleaved. Decision-level agreement with the
// exact all-paths DP (no profile caps) is asserted alongside.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/long_path_bound.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph_shape.h"
#include "pipeline/dag_runtime.h"
#include "sim/simulator.h"
#include "util/math.h"
#include "util/rng.h"
#include "workload/random_dag.h"

namespace frap {
namespace {

constexpr std::size_t kResources = 4;
constexpr Duration kCeiling = 2.0;
constexpr double kStageCap = 0.3;

TEST(DagIncrementalIdentityTest, IncrementalMatchesSnapshotRewalkBitwise) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kResources);
  pipeline::DagRuntime runtime(sim, kResources, &tracker);
  core::TaskGraphShapeRegistry registry;
  core::GraphAdmissionController controller(
      sim, tracker,
      core::LongPathEvaluator(std::vector<double>(kResources, kCeiling), {},
                              kStageCap));
  // Independent evaluator instance = the re-walk reference: no shared
  // scratch, fed only an explicit snapshot.
  core::LongPathEvaluator rewalk(std::vector<double>(kResources, kCeiling),
                                 {}, kStageCap);

  util::Rng rng(2024);
  std::uint64_t offered = 0;
  std::uint64_t admits = 0;
  std::function<void()> pump = [&] {
    if (offered >= 3000) return;
    sim.at(sim.now() + rng.exponential(1.0 / 80.0), [&] {
      ++offered;
      workload::RandomDagConfig cfg;
      cfg.kind = rng.bernoulli(0.5)
                     ? workload::RandomDagConfig::Kind::kLayered
                     : workload::RandomDagConfig::Kind::kErdosRenyi;
      cfg.num_nodes = static_cast<std::size_t>(rng.uniform_int(1, 12));
      cfg.num_resources = kResources;
      const auto spec = registry.canonicalize(workload::random_dag(
          rng, cfg, offered, rng.uniform(0.4, kCeiling)));

      // Snapshot BEFORE the attempt; build the with-task utilizations by
      // the exact arithmetic the incremental path uses (compute[t] * 1/D
      // added at each touched resource).
      const auto u_before = tracker.utilizations();
      auto u_with = u_before;
      const auto touched = spec.shape->touched_resources();
      const auto compute = spec.shape->resource_compute();
      const double inv_d = util::safe_inv(spec.deadline);
      for (std::size_t t = 0; t < touched.size(); ++t) {
        u_with[touched[t]] += compute[t] * inv_d;
      }
      const double ref_before = rewalk.lhs_from_snapshot(spec, u_before);
      const double ref_with = rewalk.lhs_from_snapshot(spec, u_with);
      const bool exact_admit = core::FeasibleRegion::admits_lhs(
          rewalk.exact_lhs_from_snapshot(spec, u_with),
          core::LongPathEvaluator::kDelayBudget);

      const auto d = controller.try_admit(spec, sim.now());
      // Bit-identical values, not approximately-equal ones: both sides run
      // the same profile logic on the same doubles.
      ASSERT_EQ(d.lhs_before, ref_before) << "attempt " << offered;
      ASSERT_EQ(d.lhs_with_task, ref_with) << "attempt " << offered;
      ASSERT_EQ(d.admitted,
                core::FeasibleRegion::admits_lhs(
                    ref_with, core::LongPathEvaluator::kDelayBudget));
      // The profile fast path (caps, envelope, gray-band DP) never changes
      // the decision relative to the exact all-paths test.
      ASSERT_EQ(d.admitted, exact_admit) << "attempt " << offered;

      if (d.admitted) {
        ++admits;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      pump();
    });
  };
  pump();
  sim.run();

  EXPECT_EQ(offered, 3000u);
  EXPECT_EQ(controller.evaluations(), offered);
  // The run must exercise both verdicts or the identity claim is hollow.
  EXPECT_GT(admits, 100u);
  EXPECT_LT(admits, offered);
  EXPECT_GT(registry.size(), 100u);
  tracker.verify_lhs_cache(1e-9);
}

// Cached-value identity: the tracker f-terms the incremental path consumes
// are exactly stage_delay_factor(utilization(k)) at all times, including
// after sparse graph commits and expiries.
TEST(DagIncrementalIdentityTest, TrackerFTermsStayExactUnderGraphCommits) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kResources);
  core::TaskGraphShapeRegistry registry;
  core::GraphAdmissionController controller(
      sim, tracker,
      core::LongPathEvaluator(std::vector<double>(kResources, kCeiling), {}));

  util::Rng rng(7);
  for (std::uint64_t i = 1; i <= 400; ++i) {
    workload::RandomDagConfig cfg;
    cfg.num_resources = kResources;
    cfg.num_nodes = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const auto spec = registry.canonicalize(
        workload::random_dag(rng, cfg, i, rng.uniform(0.5, kCeiling)));
    (void)controller.try_admit(spec, sim.now());
    sim.run_until(sim.now() + 0.01);
    for (std::size_t k = 0; k < kResources; ++k) {
      EXPECT_EQ(tracker.stage_lhs_term(k),
                core::stage_delay_factor(tracker.utilization(k)));
    }
  }
  sim.run();
  tracker.verify_lhs_cache(1e-9);
}

}  // namespace
}  // namespace frap
