#include <gtest/gtest.h>

#include <vector>

#include "core/certification.h"

namespace frap::core {
namespace {

using Rule = ReservationPlanner::StageRule;

CatalogEntry entry(std::string name, std::vector<double> c) {
  CatalogEntry e;
  e.name = std::move(name);
  e.contributions = std::move(c);
  return e;
}

class CertificationTest : public ::testing::Test {
 protected:
  CertificationTest()
      : certifier_(FeasibleRegion::deadline_monotonic(3),
                   {Rule::kSum, Rule::kSum, Rule::kMax}) {
    // The TSCE critical catalog (Sec. 5).
    wd_ = certifier_.add(entry("WeaponDetection", {0.2, 0.13, 0.06}));
    wt_ = certifier_.add(entry("WeaponTargeting", {0.1, 0.1, 0.1}));
    uv_ = certifier_.add(entry("UavVideo", {0.1, 0.02, 0.1}));
  }

  ScenarioCertifier certifier_;
  std::size_t wd_ = 0, wt_ = 0, uv_ = 0;
};

TEST_F(CertificationTest, EmptyScenarioTriviallyCertified) {
  const auto v = certifier_.certify({});
  EXPECT_TRUE(v.certified);
  EXPECT_DOUBLE_EQ(v.lhs, 0.0);
}

TEST_F(CertificationTest, FullTsceScenarioCertifiesAt093) {
  const auto v = certifier_.certify({wd_, wt_, uv_});
  EXPECT_TRUE(v.certified);
  EXPECT_NEAR(v.lhs, 0.9306, 1e-3);
}

TEST_F(CertificationTest, AllSubsetsEnumerated) {
  const auto verdicts = certifier_.certify_all_subsets();
  EXPECT_EQ(verdicts.size(), 8u);  // 2^3
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.certified);  // the whole TSCE catalog is feasible
  }
  EXPECT_TRUE(certifier_.all_combinations_certified());
}

TEST_F(CertificationTest, SubsetLhsIsMonotone) {
  const auto single = certifier_.certify({wd_});
  const auto pair = certifier_.certify({wd_, wt_});
  const auto full = certifier_.certify({wd_, wt_, uv_});
  EXPECT_LT(single.lhs, pair.lhs);
  EXPECT_LT(pair.lhs, full.lhs);
}

TEST_F(CertificationTest, DuplicatesModelConcurrentInstances) {
  // Two concurrent Weapon Detections: 0.4 on stage 1 from them alone.
  const auto v = certifier_.certify({wd_, wd_, wt_, uv_});
  EXPECT_GT(v.lhs, certifier_.certify({wd_, wt_, uv_}).lhs);
  // Still certified? stage1 = 0.6, f(0.6) = 1.05 > 1 alone: NOT certified.
  EXPECT_FALSE(v.certified);
}

TEST_F(CertificationTest, MaxRuleOnPartitionedStage) {
  // Stage 3 takes the max: adding UavVideo (0.1 on stage 3) to
  // WeaponTargeting (0.1 on stage 3) must not raise the stage-3 term.
  ScenarioCertifier c(FeasibleRegion::deadline_monotonic(1), {Rule::kMax});
  const auto a = c.add(entry("a", {0.3}));
  const auto b = c.add(entry("b", {0.2}));
  EXPECT_DOUBLE_EQ(c.certify({a, b}).lhs, c.certify({a}).lhs);
}

TEST_F(CertificationTest, InfeasibleCatalogDetected) {
  ScenarioCertifier c(FeasibleRegion::deadline_monotonic(2),
                      {Rule::kSum, Rule::kSum});
  c.add(entry("huge1", {0.3, 0.3}));
  c.add(entry("huge2", {0.3, 0.3}));
  EXPECT_FALSE(c.all_combinations_certified());
  const auto best = c.largest_certified_subset();
  EXPECT_TRUE(best.certified);
  EXPECT_EQ(best.members.size(), 1u);  // either alone fits, not both
}

TEST_F(CertificationTest, LargestCertifiedSubsetOfTsceIsEverything) {
  const auto best = certifier_.largest_certified_subset();
  EXPECT_TRUE(best.certified);
  EXPECT_EQ(best.members.size(), 3u);
}

TEST_F(CertificationTest, AlphaScaledRegionShrinksCertification) {
  ScenarioCertifier strict(FeasibleRegion::with_alpha(3, 0.5),
                           {Rule::kSum, Rule::kSum, Rule::kMax});
  strict.add(entry("WeaponDetection", {0.2, 0.13, 0.06}));
  strict.add(entry("WeaponTargeting", {0.1, 0.1, 0.1}));
  strict.add(entry("UavVideo", {0.1, 0.02, 0.1}));
  // 0.93 > 0.5: the full set no longer certifies under alpha = 0.5.
  EXPECT_FALSE(strict.all_combinations_certified());
}

}  // namespace
}  // namespace frap::core
