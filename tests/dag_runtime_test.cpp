#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "pipeline/dag_runtime.h"
#include "sim/simulator.h"

namespace frap::pipeline {
namespace {

core::StageDemand demand(Duration c) {
  core::StageDemand d;
  d.compute = c;
  return d;
}

// Fig. 3 fork/join: node0 -> {node1, node2} -> node3, resources 0..3.
core::GraphTaskSpec fig3(std::uint64_t id, Duration deadline,
                         std::vector<Duration> computes) {
  core::GraphTaskSpec g;
  g.id = id;
  g.deadline = deadline;
  g.nodes = {core::GraphNode{0, demand(computes[0])},
             core::GraphNode{1, demand(computes[1])},
             core::GraphNode{2, demand(computes[2])},
             core::GraphNode{3, demand(computes[3])}};
  g.edges = {core::GraphEdge{0, 1}, core::GraphEdge{0, 2},
             core::GraphEdge{1, 3}, core::GraphEdge{2, 3}};
  return g;
}

struct Done {
  std::uint64_t id;
  Duration response;
  bool missed;
};

class DagRuntimeTest : public ::testing::Test {
 protected:
  void build(std::size_t resources, bool with_tracker = true) {
    if (with_tracker) tracker_.emplace(sim_, resources);
    runtime_.emplace(sim_, resources,
                     with_tracker ? &tracker_.value() : nullptr);
    runtime_->set_on_task_complete(
        [this](const core::GraphTaskSpec& s, Duration r, bool m) {
          done_.push_back({s.id, r, m});
        });
  }

  sim::Simulator sim_;
  std::optional<core::SyntheticUtilizationTracker> tracker_;
  std::optional<DagRuntime> runtime_;
  std::vector<Done> done_;
};

TEST_F(DagRuntimeTest, ForkJoinRespectsPrecedence) {
  build(4);
  sim_.at(0.0, [&] {
    runtime_->start_task(fig3(1, 100.0, {1.0, 2.0, 5.0, 1.0}), 100.0);
  });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  // Critical path on empty resources: 1 + max(2,5) + 1 = 7.
  EXPECT_DOUBLE_EQ(done_[0].response, 7.0);
  EXPECT_FALSE(done_[0].missed);
}

TEST_F(DagRuntimeTest, BranchesRunInParallelOnDistinctResources) {
  build(4);
  sim_.at(0.0, [&] {
    runtime_->start_task(fig3(1, 100.0, {1.0, 3.0, 3.0, 1.0}), 100.0);
  });
  sim_.run();
  // If branches serialized this would be 1+3+3+1=8; parallel: 1+3+1=5.
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_DOUBLE_EQ(done_[0].response, 5.0);
}

TEST_F(DagRuntimeTest, SharedResourceSerializesNodes) {
  // Both branch nodes mapped to resource 1: they serialize.
  build(3);
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 100.0;
  g.nodes = {core::GraphNode{0, demand(1.0)}, core::GraphNode{1, demand(3.0)},
             core::GraphNode{1, demand(3.0)}, core::GraphNode{2, demand(1.0)}};
  g.edges = {core::GraphEdge{0, 1}, core::GraphEdge{0, 2},
             core::GraphEdge{1, 3}, core::GraphEdge{2, 3}};
  sim_.at(0.0, [&] { runtime_->start_task(g, 100.0); });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_DOUBLE_EQ(done_[0].response, 8.0);  // 1 + (3+3) + 1
}

TEST_F(DagRuntimeTest, ChainBehavesLikePipeline) {
  build(2);
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 10.0;
  g.nodes = {core::GraphNode{0, demand(1.0)}, core::GraphNode{1, demand(2.0)}};
  g.edges = {core::GraphEdge{0, 1}};
  sim_.at(0.0, [&] { runtime_->start_task(g, 10.0); });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_DOUBLE_EQ(done_[0].response, 3.0);
}

TEST_F(DagRuntimeTest, IndependentNodesAllStartImmediately) {
  build(3);
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 10.0;
  g.nodes = {core::GraphNode{0, demand(2.0)}, core::GraphNode{1, demand(3.0)},
             core::GraphNode{2, demand(1.0)}};
  sim_.at(0.0, [&] { runtime_->start_task(g, 10.0); });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_DOUBLE_EQ(done_[0].response, 3.0);  // max of the three
}

TEST_F(DagRuntimeTest, MissDetection) {
  build(2);
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 1.0;
  g.nodes = {core::GraphNode{0, demand(2.0)}};
  sim_.at(0.0, [&] { runtime_->start_task(g, 1.0); });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_TRUE(done_[0].missed);
  EXPECT_DOUBLE_EQ(runtime_->misses().ratio(), 1.0);
}

TEST_F(DagRuntimeTest, DepartureFiresWhenLastNodeOnResourceFinishes) {
  build(2);
  // Two nodes on resource 0 in sequence, then one on resource 1.
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 100.0;
  g.nodes = {core::GraphNode{0, demand(1.0)}, core::GraphNode{0, demand(1.0)},
             core::GraphNode{1, demand(1.0)}};
  g.edges = {core::GraphEdge{0, 1}, core::GraphEdge{1, 2}};
  tracker_->add(1, std::vector<double>{0.5, 0.5}, 100.0);
  sim_.at(0.0, [&] { runtime_->start_task(g, 100.0); });
  // At t=1.5 (after first node, before second) resource 0 has NOT been
  // departed: an idle reset there must keep the contribution. The server
  // never idles mid-sequence here, but the invariant we check is that the
  // contribution survives until the second node completes.
  sim_.run();
  EXPECT_DOUBLE_EQ(tracker_->utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(tracker_->utilization(1), 0.0);
}

TEST_F(DagRuntimeTest, TwoTasksInterleaveByPriority) {
  build(1);
  core::GraphTaskSpec urgent;
  urgent.id = 1;
  urgent.deadline = 1.0;
  urgent.nodes = {core::GraphNode{0, demand(0.5)}};
  core::GraphTaskSpec lax;
  lax.id = 2;
  lax.deadline = 50.0;
  lax.nodes = {core::GraphNode{0, demand(2.0)}};
  sim_.at(0.0, [&] { runtime_->start_task(lax, 50.0); });
  sim_.at(0.1, [&] { runtime_->start_task(urgent, 1.1); });
  sim_.run();
  ASSERT_EQ(done_.size(), 2u);
  EXPECT_EQ(done_[0].id, 1u);  // DM: shorter deadline preempts
  EXPECT_DOUBLE_EQ(done_[0].response, 0.5);
}

TEST_F(DagRuntimeTest, DiamondWithWideFanout) {
  build(4);
  // Source fans out to 5 parallel nodes on round-robin resources, then join.
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 100.0;
  g.nodes.push_back(core::GraphNode{0, demand(1.0)});  // source
  for (std::size_t i = 0; i < 5; ++i) {
    g.nodes.push_back(core::GraphNode{i % 4, demand(1.0)});
  }
  g.nodes.push_back(core::GraphNode{3, demand(1.0)});  // sink
  for (std::size_t i = 1; i <= 5; ++i) {
    g.edges.push_back(core::GraphEdge{0, i});
    g.edges.push_back(core::GraphEdge{i, 6});
  }
  sim_.at(0.0, [&] { runtime_->start_task(g, 100.0); });
  sim_.run();
  ASSERT_EQ(done_.size(), 1u);
  // Source 1s; fanout: resource 0 runs nodes 1 and 5 serially (2s), others
  // 1s; join 1s on resource 3 -> 1 + 2 + 1 = 4.
  EXPECT_DOUBLE_EQ(done_[0].response, 4.0);
  EXPECT_EQ(runtime_->completed(), 1u);
}

TEST_F(DagRuntimeTest, TraceRecordsLifecycle) {
  build(4);
  TraceLog log;
  runtime_->set_trace(&log);
  sim_.at(0.0, [&] {
    runtime_->start_task(fig3(1, 100.0, {1.0, 2.0, 5.0, 1.0}), 100.0);
  });
  sim_.run();
  const auto events = log.for_task(1);
  // Release + 4 resource departures + complete.
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events.front().kind, TraceEventKind::kRelease);
  EXPECT_EQ(events.back().kind, TraceEventKind::kComplete);
  EXPECT_EQ(events.back().detail, 0u);
  EXPECT_EQ(log.count(TraceEventKind::kStageDeparture), 4u);
}

TEST_F(DagRuntimeTest, AbortRemovesAllNodes) {
  build(4);
  sim_.at(0.0, [&] {
    runtime_->start_task(fig3(1, 100.0, {1.0, 2.0, 5.0, 1.0}), 100.0);
  });
  sim_.at(1.5, [&] { runtime_->abort_task(1); });  // branches mid-flight
  sim_.run();
  EXPECT_TRUE(done_.empty());
  EXPECT_EQ(runtime_->aborted(), 1u);
  EXPECT_FALSE(runtime_->task_in_flight(1));
  // Node 3 (the join) never ran.
  EXPECT_DOUBLE_EQ(runtime_->resource(3).meter().busy_time(0.0, 100.0), 0.0);
}

TEST_F(DagRuntimeTest, AbortUnknownIsNoop) {
  build(2);
  runtime_->abort_task(42);
  EXPECT_EQ(runtime_->aborted(), 0u);
}

TEST_F(DagRuntimeTest, StartedExecutingPredicate) {
  build(2);
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 100.0;
  g.nodes = {core::GraphNode{0, demand(2.0)}, core::GraphNode{1, demand(1.0)}};
  g.edges = {core::GraphEdge{0, 1}};
  // A higher-priority hog delays the task so it is queued but unstarted.
  core::GraphTaskSpec hog;
  hog.id = 2;
  hog.deadline = 1.0;  // more urgent under DM
  hog.nodes = {core::GraphNode{0, demand(5.0)}};
  sim_.at(0.0, [&] {
    runtime_->start_task(hog, 1.0);
    runtime_->start_task(g, 100.0);
  });
  sim_.at(1.0, [&] {
    EXPECT_TRUE(runtime_->task_started_executing(2));   // the hog runs
    EXPECT_FALSE(runtime_->task_started_executing(1));  // still queued
  });
  sim_.run();
  EXPECT_TRUE(runtime_->task_started_executing(1));  // completed
}

TEST_F(DagRuntimeTest, ResourceUtilizations) {
  build(2, /*with_tracker=*/false);
  core::GraphTaskSpec g;
  g.id = 1;
  g.deadline = 100.0;
  g.nodes = {core::GraphNode{0, demand(2.0)}, core::GraphNode{1, demand(1.0)}};
  g.edges = {core::GraphEdge{0, 1}};
  sim_.at(0.0, [&] { runtime_->start_task(g, 100.0); });
  sim_.run();
  sim_.run_until(10.0);
  const auto u = runtime_->resource_utilizations(0.0, 10.0);
  EXPECT_DOUBLE_EQ(u[0], 0.2);
  EXPECT_DOUBLE_EQ(u[1], 0.1);
}

}  // namespace
}  // namespace frap::pipeline
