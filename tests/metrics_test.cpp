#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "metrics/counters.h"
#include "metrics/histogram.h"
#include "metrics/utilization_meter.h"
#include "util/rng.h"

namespace frap::metrics {
namespace {

// ------------------------------------------------------ UtilizationMeter ---

TEST(UtilizationMeterTest, SingleIntervalFullWindow) {
  UtilizationMeter m;
  m.set_busy(0.0);
  m.set_idle(4.0);
  EXPECT_DOUBLE_EQ(m.busy_time(0.0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(m.utilization(0.0, 10.0), 0.4);
}

TEST(UtilizationMeterTest, WindowCutsInterval) {
  UtilizationMeter m;
  m.set_busy(2.0);
  m.set_idle(8.0);
  // Window [4, 6] lies fully inside the busy interval.
  EXPECT_DOUBLE_EQ(m.utilization(4.0, 6.0), 1.0);
  // Window [0, 4]: busy on [2, 4].
  EXPECT_DOUBLE_EQ(m.busy_time(0.0, 4.0), 2.0);
  // Window [6, 10]: busy on [6, 8].
  EXPECT_DOUBLE_EQ(m.busy_time(6.0, 10.0), 2.0);
}

TEST(UtilizationMeterTest, MultipleIntervals) {
  UtilizationMeter m;
  m.set_busy(0.0);
  m.set_idle(1.0);
  m.set_busy(2.0);
  m.set_idle(3.0);
  m.set_busy(5.0);
  m.set_idle(6.0);
  EXPECT_DOUBLE_EQ(m.busy_time(0.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(m.utilization(0.0, 6.0), 0.5);
}

TEST(UtilizationMeterTest, OpenBusyIntervalCountsToWindowEnd) {
  UtilizationMeter m;
  m.set_busy(3.0);
  EXPECT_TRUE(m.busy());
  EXPECT_DOUBLE_EQ(m.busy_time(0.0, 10.0), 7.0);
}

TEST(UtilizationMeterTest, ZeroLengthBusyInterval) {
  UtilizationMeter m;
  m.set_busy(1.0);
  m.set_idle(1.0);
  EXPECT_DOUBLE_EQ(m.busy_time(0.0, 2.0), 0.0);
  EXPECT_FALSE(m.busy());
}

TEST(UtilizationMeterTest, WindowBeforeAnyActivity) {
  UtilizationMeter m;
  m.set_busy(5.0);
  m.set_idle(6.0);
  EXPECT_DOUBLE_EQ(m.busy_time(0.0, 5.0), 0.0);
}

// ---------------------------------------------------------- RatioTracker ---

TEST(RatioTrackerTest, EmptyIsZero) {
  RatioTracker r;
  EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
  EXPECT_EQ(r.total(), 0u);
}

TEST(RatioTrackerTest, CountsHitsOverTotal) {
  RatioTracker r;
  r.record(true);
  r.record(false);
  r.record(true);
  r.record(false);
  EXPECT_EQ(r.hits(), 2u);
  EXPECT_EQ(r.total(), 4u);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
}

// ---------------------------------------------------------- RunningStats ---

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(RunningStatsTest, VarianceIsSampleVariance) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  // Sample variance of {1, 3} = 2.
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, WelfordMatchesDirectComputation) {
  RunningStats s;
  double sum = 0, sum2 = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const double x = 0.1 * i;
    s.add(x);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = (sum2 - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

// ------------------------------------------------------------- Histogram ---

TEST(HistogramTest, BucketsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramTest, BucketLoEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // Median should land around 50 (within one bucket).
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(HistogramTest, QuantileEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, NanIsRejectedAndCounted) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(-std::numeric_limits<double>::quiet_NaN());
  h.add(1.0);
  // NaN never enters a bucket, the total, or the sum — it is only counted.
  EXPECT_EQ(h.nan_rejected(), 2u);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0);
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) bucketed += h.bucket(i);
  EXPECT_EQ(bucketed, 1u);
}

TEST(HistogramTest, InfinitiesClampToEdgeBucketsButSkipSum) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(2.5);
  EXPECT_EQ(h.bucket(0), 1u);  // -inf
  EXPECT_EQ(h.bucket(2), 1u);  // 2.5
  EXPECT_EQ(h.bucket(9), 1u);  // +inf
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.nan_rejected(), 0u);
  // sum() stays finite: only finite samples contribute.
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);
}

TEST(HistogramTest, ExactBucketEdgesLandInTheirOwnBucket) {
  // (0.3 - 0) / 0.1 evaluates to 2.999...96 under the reciprocal-multiply
  // fast path; the edge snap must keep every exact edge in the bucket whose
  // left edge it is: bucket_lo(i) <= x < bucket_hi(i).
  Histogram h(0.0, 1.0, 10);
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    h.add(h.bucket_lo(i));
  }
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.bucket(i), 1u) << "bucket " << i;
  }
  EXPECT_EQ(h.total(), h.bucket_count());
}

TEST(HistogramTest, TopEdgeAndJustBelowClampConsistently) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);                           // == hi: clamps into the last bucket
  h.add(std::nextafter(1.0, 0.0));      // just inside the range
  h.add(std::nextafter(0.25, 0.0));     // just below an interior edge
  h.add(0.25);                          // exactly on the interior edge
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, AddFiniteMatchesAddOnFiniteInputs) {
  Histogram a(0.0, 50.0, 25);
  Histogram b(0.0, 50.0, 25);
  util::Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-10.0, 60.0);  // exercises both clamps
    a.add(x);
    b.add_finite(x);
  }
  EXPECT_EQ(a.total(), b.total());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
  }
}

// --------------------------------------------------------- AtomicCounter ---

TEST(AtomicCounterTest, StartsAtZeroAndIncrements) {
  AtomicCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(3);
  EXPECT_EQ(c.value(), 4u);
}

TEST(AtomicCounterTest, CopySnapshotsValue) {
  AtomicCounter c;
  c.increment(7);
  AtomicCounter snap = c;
  c.increment();
  EXPECT_EQ(snap.value(), 7u);
  EXPECT_EQ(c.value(), 8u);
}

TEST(AtomicCounterTest, ConcurrentIncrementsAreLossless) {
  AtomicCounter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(AtomicRatioTrackerTest, TracksHitsOverTotal) {
  AtomicRatioTracker r;
  EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
  r.record(true);
  r.record(true);
  r.record(false);
  EXPECT_EQ(r.hits(), 2u);
  EXPECT_EQ(r.total(), 3u);
  EXPECT_NEAR(r.ratio(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace frap::metrics
