// Wide randomized configuration matrix ("soak"): every sampled experiment
// configuration — random pipeline depth, imbalance vector, resolution,
// load, policy, admission mode, patience, idle-reset setting — must
// satisfy the global invariants: admitted tasks all complete, none ever
// miss under a sound admission mode, ratios stay in range, and repeated
// runs are bit-identical.
#include <gtest/gtest.h>

#include "pipeline/experiment.h"
#include "util/rng.h"

namespace frap::pipeline {
namespace {

ExperimentConfig random_config(util::Rng& rng) {
  ExperimentConfig cfg;
  const auto stages =
      static_cast<std::size_t>(rng.uniform_int(1, 5));
  cfg.workload.mean_compute.resize(stages);
  for (auto& c : cfg.workload.mean_compute) {
    c = rng.uniform(2 * kMilli, 25 * kMilli);
  }
  cfg.workload.input_load = rng.uniform(0.5, 2.2);
  cfg.workload.resolution = rng.uniform(15.0, 300.0);
  cfg.workload.deadline_spread = rng.uniform(0.0, 0.8);
  cfg.seed = rng.next_u64();
  cfg.sim_duration = 15.0;
  cfg.warmup = 2.0;
  cfg.idle_reset = rng.bernoulli(0.8);
  cfg.priority = rng.bernoulli(0.75) ? PriorityMode::kDeadlineMonotonic
                                     : PriorityMode::kRandom;
  switch (rng.uniform_int(0, 2)) {
    case 0: cfg.admission = AdmissionMode::kExact; break;
    case 1: cfg.admission = AdmissionMode::kApproximate; break;
    default: cfg.admission = AdmissionMode::kDeadlineSplit; break;
  }
  if (rng.bernoulli(0.3) && cfg.admission == AdmissionMode::kExact) {
    cfg.patience = rng.uniform(0.0, 0.2);
  }
  return cfg;
}

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, RandomConfigurationsSatisfyInvariants) {
  util::Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 6; ++trial) {
    const auto cfg = random_config(rng);
    const auto r = run_experiment(cfg);

    // Conservation and range invariants.
    ASSERT_LE(r.admitted, r.offered);
    ASSERT_EQ(r.completed, r.admitted);
    ASSERT_GE(r.acceptance_ratio, 0.0);
    ASSERT_LE(r.acceptance_ratio, 1.0);
    for (double u : r.stage_utilization) {
      ASSERT_GE(u, 0.0);
      ASSERT_LE(u, 1.0 + 1e-9);
    }

    // Soundness: exact admission with DM is guaranteed; approximate may
    // miss (rarely, at low resolution); split is guaranteed; random
    // priority with the alpha-corrected region is guaranteed. The
    // experiment driver always uses the correct alpha, and approximate
    // mode is the only configuration allowed a nonzero miss ratio.
    if (cfg.admission != AdmissionMode::kApproximate) {
      ASSERT_EQ(r.miss_ratio, 0.0)
          << "trial " << trial << " seed " << cfg.seed << " stages "
          << cfg.workload.num_stages() << " load "
          << cfg.workload.input_load;
    } else {
      ASSERT_LT(r.miss_ratio, 0.2);
    }

    // Determinism: identical config -> identical results.
    const auto again = run_experiment(cfg);
    ASSERT_EQ(again.offered, r.offered);
    ASSERT_EQ(again.completed, r.completed);
    ASSERT_EQ(again.events, r.events);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, SoakTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace frap::pipeline
