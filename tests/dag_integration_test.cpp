// End-to-end soundness of Theorem 2: randomized DAG tasks admitted by the
// critical-path region and executed on the DAG runtime never miss their
// end-to-end deadlines.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "core/admission.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "pipeline/dag_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap {
namespace {

// Random DAG: `n` nodes on `resources` resources, random forward edges.
core::GraphTaskSpec random_dag(std::uint64_t id, std::size_t resources,
                               double resolution, util::Rng& rng) {
  const std::size_t n =
      2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  core::GraphTaskSpec g;
  g.id = id;
  Duration total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    core::StageDemand d;
    d.compute = rng.exponential(10 * kMilli);
    total += d.compute;
    g.nodes.push_back(core::GraphNode{
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(resources) - 1)),
        d});
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.35)) g.edges.push_back(core::GraphEdge{i, j});
    }
  }
  // Deadline proportional to the graph's expected span.
  g.deadline = rng.uniform(0.5, 1.5) * resolution *
               (10 * kMilli) * static_cast<double>(n);
  return g;
}

struct DagRunStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
};

DagRunStats run_dag_soundness(std::size_t resources, double load,
                              double resolution, std::uint64_t seed) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, resources);
  pipeline::DagRuntime runtime(sim, resources, &tracker);
  core::GraphAdmissionController controller(
      sim, tracker, core::GraphRegionEvaluator(1.0, {}));

  DagRunStats stats;
  runtime.set_on_task_complete(
      [&](const core::GraphTaskSpec&, Duration, bool missed) {
        ++stats.completed;
        if (missed) ++stats.missed;
      });

  util::Rng rng(seed);
  // ~3.5 nodes/task, spread over `resources`: arrival rate for the target
  // per-resource load.
  const double nodes_per_task = 3.5;
  const double lambda = load * static_cast<double>(resources) /
                        (nodes_per_task * 10 * kMilli);
  const Duration sim_end = 30.0;
  std::uint64_t next_id = 1;

  std::function<void()> pump = [&] {
    const Time t = sim.now() + rng.exponential(1.0 / lambda);
    if (t > sim_end) return;
    sim.at(t, [&] {
      ++stats.offered;
      const auto spec = random_dag(next_id++, resources, resolution, rng);
      if (controller.try_admit(spec).admitted) {
        ++stats.admitted;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      pump();
    });
  };
  pump();
  sim.run();
  return stats;
}

using DagParams = std::tuple<std::size_t, double, std::uint64_t>;

class DagSoundnessTest : public ::testing::TestWithParam<DagParams> {};

TEST_P(DagSoundnessTest, RandomDagsNeverMissUnderTheorem2Admission) {
  const auto [resources, load, seed] = GetParam();
  const auto stats = run_dag_soundness(resources, load, 30.0, seed);
  EXPECT_GT(stats.completed, 50u);
  EXPECT_EQ(stats.missed, 0u)
      << "resources=" << resources << " load=" << load << " seed=" << seed;
  EXPECT_EQ(stats.completed, stats.admitted);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DagSoundnessTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 6),
                       ::testing::Values(0.9, 1.6),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(DagSoundnessTest, OverloadIsAbsorbedByRejection) {
  const auto stats = run_dag_soundness(3, 2.5, 30.0, 77);
  EXPECT_LT(stats.admitted, stats.offered);
  EXPECT_EQ(stats.missed, 0u);
}

}  // namespace
}  // namespace frap
