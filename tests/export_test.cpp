#include <gtest/gtest.h>

#include <sstream>

#include "metrics/export.h"
#include "sim/simulator.h"

namespace frap::metrics {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscapeTest, CommasAndQuotesAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvExportTest, TableWithHeaderAndRows) {
  util::Table t({"load", "util"});
  t.add_row({"100", "0.88"});
  t.add_row({"150", "0.92"});
  std::ostringstream os;
  write_csv(t, os);
  EXPECT_EQ(os.str(), "load,util\n100,0.88\n150,0.92\n");
}

TEST(CsvExportTest, TableQuotesAwkwardCells) {
  util::Table t({"name", "value"});
  t.add_row({"a,b", "1"});
  std::ostringstream os;
  write_csv(t, os);
  EXPECT_EQ(os.str(), "name,value\n\"a,b\",1\n");
}

TEST(CsvExportTest, TimeSeries) {
  sim::Simulator sim;
  double v = 1.5;
  TimeSeries ts(sim, 1.0, [&] { return v; });
  ts.start(2.0);
  sim.run();
  std::ostringstream os;
  write_csv(ts, os);
  EXPECT_EQ(os.str(), "time,value\n0,1.5\n1,1.5\n2,1.5\n");
}

TEST(CsvExportTest, Histogram) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  std::ostringstream os;
  write_csv(h, os);
  EXPECT_EQ(os.str(), "bucket_lo,bucket_hi,count\n0,1,1\n1,2,2\n");
}

TEST(HistogramEdgeTest, BucketHiMatchesNextLo) {
  Histogram h(0.0, 10.0, 5);
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_hi(i), h.bucket_lo(i + 1));
  }
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

}  // namespace
}  // namespace frap::metrics
