#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/admission_decision.h"
#include "metrics/export.h"
#include "obs/clock.h"
#include "obs/observer.h"
#include "obs/prometheus.h"
#include "sim/simulator.h"

namespace frap::metrics {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscapeTest, CommasAndQuotesAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvExportTest, TableWithHeaderAndRows) {
  util::Table t({"load", "util"});
  t.add_row({"100", "0.88"});
  t.add_row({"150", "0.92"});
  std::ostringstream os;
  write_csv(t, os);
  EXPECT_EQ(os.str(), "load,util\n100,0.88\n150,0.92\n");
}

TEST(CsvExportTest, TableQuotesAwkwardCells) {
  util::Table t({"name", "value"});
  t.add_row({"a,b", "1"});
  std::ostringstream os;
  write_csv(t, os);
  EXPECT_EQ(os.str(), "name,value\n\"a,b\",1\n");
}

TEST(CsvExportTest, TimeSeries) {
  sim::Simulator sim;
  double v = 1.5;
  TimeSeries ts(sim, 1.0, [&] { return v; });
  ts.start(2.0);
  sim.run();
  std::ostringstream os;
  write_csv(ts, os);
  EXPECT_EQ(os.str(), "time,value\n0,1.5\n1,1.5\n2,1.5\n");
}

TEST(CsvExportTest, Histogram) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  std::ostringstream os;
  write_csv(h, os);
  EXPECT_EQ(os.str(), "bucket_lo,bucket_hi,count\n0,1,1\n1,2,2\n");
}

TEST(HistogramEdgeTest, BucketHiMatchesNextLo) {
  Histogram h(0.0, 10.0, 5);
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_hi(i), h.bucket_lo(i + 1));
  }
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

}  // namespace
}  // namespace frap::metrics

namespace frap::obs {
namespace {

TEST(PrometheusEscapeTest, PlainValuesPassThrough) {
  EXPECT_EQ(escape_label_value("admitted"), "admitted");
  EXPECT_EQ(escape_label_value(""), "");
  EXPECT_EQ(escape_label_value("region-full"), "region-full");
}

TEST(PrometheusEscapeTest, BackslashQuoteAndNewlineAreEscaped) {
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("line\nbreak"), "line\\nbreak");
  // Escaping composes: a backslash before a quote escapes both.
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusEscapeTest, SampleValueFormatting) {
  EXPECT_EQ(format_sample_value(0.5), "0.5");
  EXPECT_EQ(format_sample_value(0.0), "0");
  EXPECT_EQ(format_sample_value(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(format_sample_value(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(format_sample_value(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
}

TEST(PrometheusRenderTest, HistogramBucketsAreCumulativeWithInfEnd) {
  // A hand-built snapshot isolates the renderer from the sink machinery.
  MetricsSnapshot snap;
  SinkSnapshot s{.latency_nanos = metrics::Histogram(0.0, 100.0, 2),
                 .headroom = metrics::Histogram(0.0, 3.0, 3)};
  s.headroom.add(0.5);   // bucket [0,1)
  s.headroom.add(1.5);   // bucket [1,2)
  s.headroom.add(1.6);   // bucket [1,2)
  s.headroom.add(10.0);  // clamped into [2,3)
  snap.sinks.push_back(s);

  const std::string page = render_prometheus(snap);
  EXPECT_NE(page.find("frap_lhs_headroom_bucket{shard=\"0\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(page.find("frap_lhs_headroom_bucket{shard=\"0\",le=\"2\"} 3\n"),
            std::string::npos);
  EXPECT_NE(page.find("frap_lhs_headroom_bucket{shard=\"0\",le=\"3\"} 4\n"),
            std::string::npos);
  EXPECT_NE(
      page.find("frap_lhs_headroom_bucket{shard=\"0\",le=\"+Inf\"} 4\n"),
      std::string::npos);
  EXPECT_NE(page.find("frap_lhs_headroom_count{shard=\"0\"} 4\n"),
            std::string::npos);
  // _sum includes the clamped sample's true value.
  EXPECT_NE(page.find("frap_lhs_headroom_sum{shard=\"0\"} 13.6\n"),
            std::string::npos);
}

// The full scrape page for a tiny two-decision run is pinned verbatim: any
// change to metric names, label sets, HELP text, or histogram semantics is
// a breaking change for scrapers and must show up in review.
TEST(PrometheusRenderTest, GoldenPageForTwoDecisionRun) {
  ManualClock clock(100);
  SinkConfig cfg;
  cfg.ring_capacity = 4;
  cfg.latency_sample_period = 1;
  cfg.latency_lo_nanos = 0;
  cfg.latency_hi_nanos = 100;
  cfg.latency_buckets = 2;
  cfg.headroom_lo = 0;
  cfg.headroom_hi = 1;
  cfg.headroom_buckets = 2;
  Observer obs(1, cfg, &clock);

  core::AdmissionDecision d;
  d.admitted = true;
  d.reason = core::AdmissionDecision::Reason::kAdmitted;
  d.lhs_before = 0.2;
  d.lhs_with_task = 0.3;
  d.bound = 0.5;
  d.arrival = 1.0;
  d.decided_at = 1.0;
  std::uint64_t t0 = obs.sink(0).begin_decision();
  clock.advance(10);
  obs.sink(0).record(d, 7, 2, t0);

  core::AdmissionDecision r;
  r.admitted = false;
  r.reason = core::AdmissionDecision::Reason::kRegionFull;
  r.lhs_before = 0.3;
  r.lhs_with_task = 0.6;
  r.bound = 0.5;
  r.arrival = 2.0;
  r.decided_at = 2.0;
  t0 = obs.sink(0).begin_decision();
  clock.advance(20);
  obs.sink(0).record(r, 8, 1, t0);

  const char* expected =
      "# HELP frap_decisions_total Admission decisions by shard and reason\n"
      "# TYPE frap_decisions_total counter\n"
      "frap_decisions_total{shard=\"0\",reason=\"admitted\"} 1\n"
      "frap_decisions_total{shard=\"0\",reason=\"region-full\"} 1\n"
      "# HELP frap_span_events_total Service-level span events (fallback, "
      "rebalance)\n"
      "# TYPE frap_span_events_total counter\n"
      "frap_span_events_total{shard=\"0\"} 0\n"
      "frap_span_events_total{shard=\"service\"} 0\n"
      "# HELP frap_trace_pushed_total Events offered to the trace ring\n"
      "# TYPE frap_trace_pushed_total counter\n"
      "frap_trace_pushed_total{shard=\"0\"} 2\n"
      "frap_trace_pushed_total{shard=\"service\"} 0\n"
      "# HELP frap_trace_dropped_total Events dropped because the claimed "
      "slot was mid-write\n"
      "# TYPE frap_trace_dropped_total counter\n"
      "frap_trace_dropped_total{shard=\"0\"} 0\n"
      "frap_trace_dropped_total{shard=\"service\"} 0\n"
      "# HELP frap_trace_overwritten_total Published events destroyed by "
      "ring wrap-around\n"
      "# TYPE frap_trace_overwritten_total counter\n"
      "frap_trace_overwritten_total{shard=\"0\"} 0\n"
      "frap_trace_overwritten_total{shard=\"service\"} 0\n"
      "# HELP frap_decision_latency_nanos Sampled wall-clock decision "
      "latency in nanoseconds\n"
      "# TYPE frap_decision_latency_nanos histogram\n"
      "frap_decision_latency_nanos_bucket{shard=\"0\",le=\"50\"} 2\n"
      "frap_decision_latency_nanos_bucket{shard=\"0\",le=\"100\"} 2\n"
      "frap_decision_latency_nanos_bucket{shard=\"0\",le=\"+Inf\"} 2\n"
      "frap_decision_latency_nanos_sum{shard=\"0\"} 30\n"
      "frap_decision_latency_nanos_count{shard=\"0\"} 2\n"
      "frap_decision_latency_nanos_bucket{shard=\"service\",le=\"50\"} 0\n"
      "frap_decision_latency_nanos_bucket{shard=\"service\",le=\"100\"} 0\n"
      "frap_decision_latency_nanos_bucket{shard=\"service\",le=\"+Inf\"} 0\n"
      "frap_decision_latency_nanos_sum{shard=\"service\"} 0\n"
      "frap_decision_latency_nanos_count{shard=\"service\"} 0\n"
      "# HELP frap_lhs_headroom Region bound minus post-decision LHS\n"
      "# TYPE frap_lhs_headroom histogram\n"
      "frap_lhs_headroom_bucket{shard=\"0\",le=\"0.5\"} 2\n"
      "frap_lhs_headroom_bucket{shard=\"0\",le=\"1\"} 2\n"
      "frap_lhs_headroom_bucket{shard=\"0\",le=\"+Inf\"} 2\n"
      "frap_lhs_headroom_sum{shard=\"0\"} 0.4\n"
      "frap_lhs_headroom_count{shard=\"0\"} 2\n"
      "frap_lhs_headroom_bucket{shard=\"service\",le=\"0.5\"} 0\n"
      "frap_lhs_headroom_bucket{shard=\"service\",le=\"1\"} 0\n"
      "frap_lhs_headroom_bucket{shard=\"service\",le=\"+Inf\"} 0\n"
      "frap_lhs_headroom_sum{shard=\"service\"} 0\n"
      "frap_lhs_headroom_count{shard=\"service\"} 0\n"
      "# HELP frap_histogram_nan_rejected_total NaN samples rejected by "
      "metric histograms\n"
      "# TYPE frap_histogram_nan_rejected_total counter\n"
      "frap_histogram_nan_rejected_total{shard=\"0\","
      "metric=\"decision_latency_nanos\"} 0\n"
      "frap_histogram_nan_rejected_total{shard=\"0\","
      "metric=\"lhs_headroom\"} 0\n"
      "frap_histogram_nan_rejected_total{shard=\"service\","
      "metric=\"decision_latency_nanos\"} 0\n"
      "frap_histogram_nan_rejected_total{shard=\"service\","
      "metric=\"lhs_headroom\"} 0\n";
  EXPECT_EQ(render_prometheus(obs.snapshot()), expected);

  // The JSONL trace of the same run is pinned too (%.17g doubles, tickets
  // in push order).
  std::ostringstream jsonl;
  render_jsonl(obs.trace(), jsonl);
  EXPECT_EQ(jsonl.str(),
            "{\"ticket\":0,\"kind\":\"decision\",\"shard\":0,\"task_id\":7,"
            "\"arrival\":1,\"decided_at\":1,\"admitted\":true,"
            "\"reason\":\"admitted\",\"lhs_before\":0.20000000000000001,"
            "\"lhs_with_task\":0.29999999999999999,\"bound\":0.5,"
            "\"touched\":2,\"latency_nanos\":10}\n"
            "{\"ticket\":1,\"kind\":\"decision\",\"shard\":0,\"task_id\":8,"
            "\"arrival\":2,\"decided_at\":2,\"admitted\":false,"
            "\"reason\":\"region-full\",\"lhs_before\":0.29999999999999999,"
            "\"lhs_with_task\":0.59999999999999998,\"bound\":0.5,"
            "\"touched\":1,\"latency_nanos\":20}\n");
}

TEST(PrometheusRenderTest, JsonlRendersNonFiniteAsStrings) {
  DecisionEvent ev;
  ev.ticket = 3;
  ev.task_id = 11;
  ev.lhs_before = 0.25;
  ev.lhs_with_task = std::numeric_limits<double>::infinity();
  ev.bound = 0.5;
  ev.reason = core::AdmissionDecision::Reason::kStageSaturated;
  ev.kind = SpanKind::kDecision;
  std::ostringstream os;
  render_jsonl({ev}, os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"lhs_with_task\":\"+Inf\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"stage-saturated\""), std::string::npos);
  EXPECT_NE(line.find("\"admitted\":false"), std::string::npos);
}

}  // namespace
}  // namespace frap::obs
