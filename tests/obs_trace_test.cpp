// The observability layer must be PASSIVE: attaching a DecisionSink may
// never change an admission decision (the PR's acceptance criterion). The
// differential sweep drives two identical controllers — one traced, one not
// — through 12k randomized arrivals and demands bit-identical decisions;
// the trace itself must then reconstruct every decision: each event's
// (lhs_with_task, bound) pair re-tested through FeasibleRegion::admits_lhs
// yields the recorded outcome, and events match the AdmissionAudit to 1e-9.
// Also covers the TraceRing single-threaded contracts (conservation,
// overwrite, meta packing, push vs push_serialized equivalence) and the
// DecisionSink counters/histograms under a ManualClock.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/admission.h"
#include "core/admission_audit.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "obs/clock.h"
#include "obs/decision_event.h"
#include "obs/decision_sink.h"
#include "obs/observer.h"
#include "obs/trace_ring.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::obs {
namespace {

using core::AdmissionController;
using core::AdmissionAudit;
using core::AdmissionDecision;
using core::BatchAdmissionController;
using core::FeasibleRegion;
using core::SyntheticUtilizationTracker;
using core::TaskSpec;

// ------------------------------------------------------------ TraceRing --

DecisionEvent sample_event(std::uint64_t task_id) {
  DecisionEvent ev;
  ev.task_id = task_id;
  ev.arrival = 1.25;
  ev.decided_at = 1.5;
  ev.lhs_before = 0.25;
  ev.lhs_with_task = 0.375;
  ev.bound = 0.5;
  ev.latency_nanos = 123;
  ev.reason = AdmissionDecision::Reason::kAdmitted;
  ev.kind = SpanKind::kDecision;
  ev.admitted = true;
  ev.shard = 3;
  ev.touched = 2;
  return ev;
}

TEST(ObsTraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(2).capacity(), 2u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(64).capacity(), 64u);
  EXPECT_EQ(TraceRing(65).capacity(), 128u);
}

TEST(ObsTraceRingTest, PushRoundTripsEveryField) {
  TraceRing ring(8);
  ring.push(sample_event(42));

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const DecisionEvent& ev = events[0];
  EXPECT_EQ(ev.ticket, 0u);
  EXPECT_EQ(ev.task_id, 42u);
  EXPECT_DOUBLE_EQ(ev.arrival, 1.25);
  EXPECT_DOUBLE_EQ(ev.decided_at, 1.5);
  EXPECT_DOUBLE_EQ(ev.lhs_before, 0.25);
  EXPECT_DOUBLE_EQ(ev.lhs_with_task, 0.375);
  EXPECT_DOUBLE_EQ(ev.bound, 0.5);
  EXPECT_EQ(ev.latency_nanos, 123u);
  EXPECT_EQ(ev.reason, AdmissionDecision::Reason::kAdmitted);
  EXPECT_EQ(ev.kind, SpanKind::kDecision);
  EXPECT_TRUE(ev.admitted);
  EXPECT_EQ(ev.shard, 3u);
  EXPECT_EQ(ev.touched, 2u);
}

TEST(ObsTraceRingTest, SerializedPushMatchesMpscPushExactly) {
  TraceRing a(16);
  TraceRing b(16);
  for (std::uint64_t i = 0; i < 40; ++i) {  // wraps both rings twice
    DecisionEvent ev = sample_event(i);
    ev.admitted = (i % 2) == 0;
    ev.reason = ev.admitted ? AdmissionDecision::Reason::kAdmitted
                            : AdmissionDecision::Reason::kRegionFull;
    ev.lhs_with_task = 0.01 * static_cast<double>(i);
    a.push(ev);
    b.push_serialized(ev);
  }
  EXPECT_EQ(a.pushed(), b.pushed());
  EXPECT_EQ(a.dropped(), 0u);
  EXPECT_EQ(b.dropped(), 0u);
  EXPECT_EQ(a.overwritten(), b.overwritten());

  const auto ea = a.snapshot();
  const auto eb = b.snapshot();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].ticket, eb[i].ticket);
    EXPECT_EQ(ea[i].task_id, eb[i].task_id);
    EXPECT_EQ(ea[i].admitted, eb[i].admitted);
    EXPECT_EQ(ea[i].reason, eb[i].reason);
    EXPECT_DOUBLE_EQ(ea[i].lhs_with_task, eb[i].lhs_with_task);
  }
}

TEST(ObsTraceRingTest, OverwriteKeepsNewestAndConservationHolds) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push_serialized(sample_event(i));

  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.overwritten(), 6u);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(),
            ring.pushed() - ring.dropped() - ring.overwritten());
  // Oldest ticket first, newest `capacity` events survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, 6u + i);
    EXPECT_EQ(events[i].task_id, 6u + i);
  }
}

TEST(ObsTraceRingTest, MetaPackingSaturatesLatencyAt24Bits) {
  TraceRing ring(4);
  DecisionEvent ev = sample_event(1);
  ev.latency_nanos = kLatencySaturationNanos - 1;
  ring.push_serialized(ev);
  ev.latency_nanos = kLatencySaturationNanos;
  ring.push_serialized(ev);
  ev.latency_nanos = std::uint64_t{1} << 40;  // far past the field
  ring.push_serialized(ev);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].latency_nanos, kLatencySaturationNanos - 1);
  EXPECT_EQ(events[1].latency_nanos, kLatencySaturationNanos);
  EXPECT_EQ(events[2].latency_nanos, kLatencySaturationNanos);
}

TEST(ObsTraceRingTest, MetaPackingRoundTripsExtremeFieldValues) {
  TraceRing ring(8);
  DecisionEvent ev = sample_event(std::numeric_limits<std::uint64_t>::max());
  ev.reason = AdmissionDecision::Reason::kQuotaFallbackRejected;  // value 6
  ev.kind = SpanKind::kRebalance;
  ev.admitted = false;
  ev.shard = kServiceShard;  // 0xFFFF
  ev.touched = 0xFFFF;
  ev.lhs_with_task = std::numeric_limits<double>::infinity();
  ring.push_serialized(ev);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].task_id, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(events[0].reason,
            AdmissionDecision::Reason::kQuotaFallbackRejected);
  EXPECT_EQ(events[0].kind, SpanKind::kRebalance);
  EXPECT_FALSE(events[0].admitted);
  EXPECT_EQ(events[0].shard, kServiceShard);
  EXPECT_EQ(events[0].touched, 0xFFFFu);
  EXPECT_TRUE(std::isinf(events[0].lhs_with_task));
}

// --------------------------------------------------------------- clock --

TEST(ObsClockTest, ManualClockAdvancesAndSetsDeterministically) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now_nanos(), 100u);
  clock.advance(25);
  EXPECT_EQ(clock.now_nanos(), 125u);
  clock.set(7);
  EXPECT_EQ(clock.now_nanos(), 7u);
}

TEST(ObsClockTest, MonotonicClockNeverDecreases) {
  const Clock& clock = monotonic_clock();
  const std::uint64_t a = clock.now_nanos();
  const std::uint64_t b = clock.now_nanos();
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------- sink --

AdmissionDecision admitted_decision() {
  AdmissionDecision d;
  d.admitted = true;
  d.reason = AdmissionDecision::Reason::kAdmitted;
  d.lhs_before = 0.2;
  d.lhs_with_task = 0.3;
  d.bound = 0.5;
  d.arrival = 1.0;
  d.decided_at = 1.0;
  return d;
}

TEST(ObsSinkTest, LatencySamplingStampsEveryNthDecision) {
  ManualClock clock;
  SinkConfig cfg;
  cfg.latency_sample_period = 4;
  DecisionSink sink(0, cfg, clock);

  for (int i = 0; i < 8; ++i) {
    const std::uint64_t t0 = sink.begin_decision();
    clock.advance(10);
    sink.record(admitted_decision(), static_cast<std::uint64_t>(i), 1, t0);
  }

  const SinkSnapshot snap = sink.snapshot();
  EXPECT_EQ(snap.decisions_by_reason[static_cast<std::size_t>(
                AdmissionDecision::Reason::kAdmitted)],
            8u);
  EXPECT_EQ(snap.pushed, 8u);
  // Period 4 over 8 decisions: exactly 2 latency samples, each 10 ns.
  EXPECT_EQ(snap.latency_nanos.total(), 2u);
  EXPECT_DOUBLE_EQ(snap.latency_nanos.sum(), 20.0);
  // Every decision lands in the headroom histogram.
  EXPECT_EQ(snap.headroom.total(), 8u);
  EXPECT_DOUBLE_EQ(snap.headroom.sum(), 8 * (0.5 - 0.3));

  // The trace carries the latency only on the sampled decisions.
  std::size_t stamped = 0;
  for (const auto& ev : sink.ring().snapshot()) {
    if (ev.latency_nanos != 0) ++stamped;
  }
  EXPECT_EQ(stamped, 2u);
}

TEST(ObsSinkTest, ZeroSamplePeriodNeverReadsTheClock) {
  ManualClock clock(1000);
  SinkConfig cfg;
  cfg.latency_sample_period = 0;
  DecisionSink sink(0, cfg, clock);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t t0 = sink.begin_decision();
    EXPECT_EQ(t0, 0u);
    sink.record(admitted_decision(), static_cast<std::uint64_t>(i), 1, t0);
  }
  EXPECT_EQ(sink.snapshot().latency_nanos.total(), 0u);
}

TEST(ObsSinkTest, SaturatedRejectSkipsHeadroomHistogram) {
  ManualClock clock;
  DecisionSink sink(0, SinkConfig{}, clock);

  AdmissionDecision d;
  d.admitted = false;
  d.reason = AdmissionDecision::Reason::kStageSaturated;
  d.lhs_before = std::numeric_limits<double>::infinity();
  d.lhs_with_task = std::numeric_limits<double>::infinity();
  d.bound = 0.5;
  sink.record(d, 1, 1, 0);

  const SinkSnapshot snap = sink.snapshot();
  // The infinite post-LHS must not masquerade as a zero-headroom sample.
  EXPECT_EQ(snap.headroom.total(), 0u);
  EXPECT_EQ(snap.decisions_by_reason[static_cast<std::size_t>(
                AdmissionDecision::Reason::kStageSaturated)],
            1u);
  EXPECT_EQ(snap.pushed, 1u);
}

TEST(ObsSinkTest, SpansCountSeparatelyFromDecisions) {
  ManualClock clock;
  DecisionSink sink(kServiceShard, SinkConfig{}, clock);
  sink.record_span(SpanKind::kFallback, admitted_decision(), 9, 1);
  sink.record_span(SpanKind::kRebalance, AdmissionDecision{}, 0, 0);

  const SinkSnapshot snap = sink.snapshot();
  EXPECT_EQ(snap.span_events, 2u);
  for (std::size_t r = 0; r < kReasonCount; ++r) {
    EXPECT_EQ(snap.decisions_by_reason[r], 0u) << "reason " << r;
  }
  const auto events = sink.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, SpanKind::kFallback);
  EXPECT_EQ(events[1].kind, SpanKind::kRebalance);
  EXPECT_EQ(events[0].shard, kServiceShard);
}

// ------------------------------------------------- differential sweep --

TaskSpec random_task(util::Rng& rng, std::uint64_t id, std::size_t stages) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = rng.uniform(0.5, 3.0);
  spec.stages.resize(stages);
  for (auto& s : spec.stages) {
    // ~half the stages untouched: exercises the touched-count piggyback.
    if (rng.bernoulli(0.5)) s.compute = rng.uniform(0.0, 0.12) * spec.deadline;
  }
  return spec;
}

// One harness = simulator + tracker + controller; the differential test
// drives two with identical inputs, tracing only one of them.
struct Harness {
  explicit Harness(std::size_t stages)
      : tracker(sim, stages),
        controller(sim, tracker, FeasibleRegion::deadline_monotonic(stages)) {}

  sim::Simulator sim;
  SyntheticUtilizationTracker tracker;
  AdmissionController controller;
};

TEST(ObsDifferentialTest, TracingNeverChangesADecisionOver12kArrivals) {
  constexpr std::size_t kStages = 5;
  constexpr int kArrivals = 12000;
  Harness traced(kStages);
  Harness plain(kStages);

  ManualClock clock;
  SinkConfig cfg;
  cfg.ring_capacity = std::size_t{1} << 15;  // deliberately wraps mid-sweep
  cfg.latency_sample_period = 16;
  Observer observer(1, cfg, &clock);
  traced.controller.set_sink(&observer.sink(0));

  AdmissionAudit audit;  // unbounded: every decision retained
  traced.controller.set_audit(&audit);

  util::Rng rng(20240805);
  std::uint64_t admitted = 0;
  std::unordered_map<std::uint64_t, std::uint16_t> expected_touched;
  for (int i = 1; i <= kArrivals; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    const auto spec = random_task(rng, id, kStages);
    std::uint16_t touched = 0;
    for (const auto& s : spec.stages) {
      if (s.compute > 0) ++touched;
    }
    expected_touched.emplace(id, touched);

    const Time t = traced.sim.now() + rng.exponential(0.02);
    traced.sim.run_until(t);
    plain.sim.run_until(t);
    clock.advance(37);  // latency samples stay deterministic

    const auto dt = traced.controller.try_admit(spec);
    const auto dp = plain.controller.try_admit(spec);

    // Bit-identical: same code path, same arithmetic, tracing is passive.
    EXPECT_EQ(dt.admitted, dp.admitted) << "arrival " << i;
    EXPECT_EQ(dt.reason, dp.reason) << "arrival " << i;
    EXPECT_EQ(dt.lhs_before, dp.lhs_before) << "arrival " << i;
    EXPECT_EQ(dt.lhs_with_task, dp.lhs_with_task) << "arrival " << i;
    EXPECT_EQ(dt.bound, dp.bound) << "arrival " << i;
    if (dt.admitted) ++admitted;

    // Mutate BOTH trackers occasionally so expiries/departures interleave.
    if (dt.admitted && rng.bernoulli(0.3)) {
      const auto stage =
          static_cast<std::size_t>(rng.uniform_int(0, kStages - 1));
      traced.tracker.mark_departed(id, stage);
      plain.tracker.mark_departed(id, stage);
      traced.tracker.on_stage_idle(stage);
      plain.tracker.on_stage_idle(stage);
    }
    if (dt.admitted && rng.bernoulli(0.05)) {
      traced.tracker.remove_task(id);
      plain.tracker.remove_task(id);
    }
  }
  // The workload must exercise both outcomes.
  EXPECT_GT(admitted, 1000u);
  EXPECT_LT(admitted, static_cast<std::uint64_t>(kArrivals));
  EXPECT_EQ(traced.controller.attempts(), plain.controller.attempts());
  EXPECT_EQ(traced.controller.admitted(), plain.controller.admitted());

  // --- trace reconstruction -------------------------------------------
  const DecisionSink& sink = observer.sink(0);
  EXPECT_EQ(sink.ring().pushed(), static_cast<std::uint64_t>(kArrivals));
  EXPECT_EQ(sink.ring().dropped(), 0u);
  const auto events = sink.ring().snapshot();
  ASSERT_EQ(events.size(), sink.ring().pushed() - sink.ring().dropped() -
                               sink.ring().overwritten());
  EXPECT_EQ(audit.dropped(), 0u);
  ASSERT_EQ(audit.size(), static_cast<std::size_t>(kArrivals));

  for (const auto& ev : events) {
    // Replaying the recorded (lhs, bound) pair through the ONE sanctioned
    // predicate must reproduce the recorded outcome.
    EXPECT_EQ(FeasibleRegion::admits_lhs(ev.lhs_with_task, ev.bound),
              ev.admitted)
        << "ticket " << ev.ticket;
    EXPECT_EQ(ev.kind, SpanKind::kDecision);
    EXPECT_EQ(ev.shard, 0u);
    EXPECT_EQ(ev.touched, expected_touched.at(ev.task_id))
        << "task " << ev.task_id;

    // Each event matches its audit record to 1e-9 (the audit ring is
    // unbounded here, and tickets are assigned in audit order).
    const auto& rec = audit[static_cast<std::size_t>(ev.ticket)];
    EXPECT_EQ(rec.task_id, ev.task_id);
    EXPECT_EQ(rec.admitted, ev.admitted);
    EXPECT_NEAR(rec.lhs_before, ev.lhs_before, 1e-9);
    if (std::isfinite(rec.lhs_with_task)) {
      EXPECT_NEAR(rec.lhs_with_task, ev.lhs_with_task, 1e-9);
    } else {
      EXPECT_TRUE(std::isinf(ev.lhs_with_task));
    }
    EXPECT_NEAR(rec.bound, ev.bound, 1e-9);
    EXPECT_NEAR(rec.time, ev.decided_at, 1e-9);
  }
  const SinkSnapshot snap = observer.snapshot().sinks.at(0);
  // Period 16: every 16th decision was latency-sampled (the ManualClock
  // does not advance DURING a decision, so each sample measures 0 ns — the
  // histogram count is what proves the sampling cadence).
  EXPECT_EQ(snap.latency_nanos.total(),
            static_cast<std::uint64_t>(kArrivals) / 16);
  std::uint64_t by_reason_total = 0;
  for (std::size_t r = 0; r < kReasonCount; ++r) {
    by_reason_total += snap.decisions_by_reason[r];
  }
  EXPECT_EQ(by_reason_total, static_cast<std::uint64_t>(kArrivals));
  EXPECT_EQ(snap.decisions_by_reason[static_cast<std::size_t>(
                AdmissionDecision::Reason::kAdmitted)],
            admitted);
}

TEST(ObsDifferentialTest, TracedBatchMatchesTracedSequential) {
  constexpr std::size_t kStages = 4;
  Harness seq(kStages);
  Harness bat(kStages);
  ManualClock clock;
  SinkConfig cfg;
  cfg.ring_capacity = std::size_t{1} << 14;
  Observer seq_obs(1, cfg, &clock);
  Observer bat_obs(1, cfg, &clock);
  seq.controller.set_sink(&seq_obs.sink(0));
  bat.controller.set_sink(&bat_obs.sink(0));
  BatchAdmissionController batch(bat.controller);

  util::Rng rng(7);
  std::uint64_t id = 1;
  std::uint64_t total = 0;
  for (int burst = 0; burst < 100; ++burst) {
    std::vector<TaskSpec> specs;
    const int size = rng.uniform_int(1, 32);
    for (int i = 0; i < size; ++i) {
      specs.push_back(random_task(rng, id++, kStages));
    }
    total += specs.size();
    const Time t = seq.sim.now() + rng.exponential(0.05);
    seq.sim.run_until(t);
    bat.sim.run_until(t);

    const auto& decisions = batch.try_admit_burst(specs);
    ASSERT_EQ(decisions.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto d = seq.controller.try_admit(specs[i]);
      EXPECT_EQ(decisions[i].admitted, d.admitted)
          << "burst " << burst << " index " << i;
      EXPECT_DOUBLE_EQ(decisions[i].lhs_with_task, d.lhs_with_task);
    }
  }
  // Both paths traced every attempt, event for event.
  EXPECT_EQ(seq_obs.sink(0).ring().pushed(), total);
  EXPECT_EQ(bat_obs.sink(0).ring().pushed(), total);
  const auto se = seq_obs.sink(0).ring().snapshot();
  const auto be = bat_obs.sink(0).ring().snapshot();
  ASSERT_EQ(se.size(), be.size());
  for (std::size_t i = 0; i < se.size(); ++i) {
    EXPECT_EQ(se[i].task_id, be[i].task_id);
    EXPECT_EQ(se[i].admitted, be[i].admitted);
    EXPECT_EQ(se[i].touched, be[i].touched);
    EXPECT_DOUBLE_EQ(se[i].lhs_with_task, be[i].lhs_with_task);
  }
}

TEST(ObsDifferentialTest, ObserverTraceMergesSinksInDecidedAtOrder) {
  ManualClock clock;
  Observer observer(2, SinkConfig{}, &clock);

  AdmissionDecision d = admitted_decision();
  d.decided_at = 2.0;
  observer.sink(0).record(d, 1, 1, 0);
  d.decided_at = 1.0;
  observer.sink(1).record(d, 2, 1, 0);
  d.decided_at = 3.0;
  observer.sink(1).record(d, 3, 1, 0);

  const auto merged = observer.trace();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].task_id, 2u);  // decided_at 1.0, shard 1
  EXPECT_EQ(merged[1].task_id, 1u);  // decided_at 2.0, shard 0
  EXPECT_EQ(merged[2].task_id, 3u);  // decided_at 3.0, shard 1
}

}  // namespace
}  // namespace frap::obs
