// Tests for the frap-lint analyzer itself, driven by the checked-in
// fixtures under tools/frap_lint/fixtures/. Fixtures are lexed, never
// compiled, so each one is linted under a pretend repo-relative path that
// puts it in the right rule scope (e.g. src/core/*.h for R4).
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace {

using frap::lint::Finding;
using frap::lint::active;
using frap::lint::apply_baseline;
using frap::lint::canonical_rule;
using frap::lint::lint_source;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(FRAP_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints a fixture under `relpath` and returns the findings for one rule.
std::vector<Finding> findings_for(const std::string& fixture,
                                  const std::string& relpath,
                                  const std::string& rule) {
  auto all = lint_source(relpath, read_fixture(fixture));
  std::vector<Finding> out;
  for (auto& f : all)
    if (f.rule == rule) out.push_back(f);
  return out;
}

std::vector<int> lines_of(const std::vector<Finding>& fs) {
  std::vector<int> lines;
  for (const auto& f : fs) lines.push_back(f.line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(FrapLintRules, R1FlagsDeadlineAndOneMinusUDenominators) {
  auto fs = findings_for("r1_flag.cpp", "src/workload/r1_flag.cpp",
                         "unsafe-division");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{3, 7, 10}));
}

TEST(FrapLintRules, R1PassesSafeDivAndBenignDenominators) {
  auto all = lint_source("src/workload/r1_pass.cpp",
                         read_fixture("r1_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R2FlagsLhsComparisonsOutsideFeasibleRegion) {
  auto fs = findings_for("r2_flag.cpp", "src/core/r2_flag.cpp",
                         "rederived-admission");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{6, 9, 12}));
}

TEST(FrapLintRules, R2PassesAdmitsLhsCallsAndNonLhsComparisons) {
  auto all =
      lint_source("src/core/r2_pass.cpp", read_fixture("r2_pass.cpp"));
  EXPECT_TRUE(all.empty());
}

TEST(FrapLintRules, R2SanctionedInsideFeasibleRegionHeader) {
  // The same comparisons that flag elsewhere are sanctioned in the one
  // file allowed to hold the admission comparison.
  auto all = lint_source("src/core/feasible_region.h",
                         read_fixture("r2_flag.cpp"));
  for (const auto& f : all) EXPECT_NE(f.rule, "rederived-admission");
}

TEST(FrapLintRules, R3FlagsRawFloatEquality) {
  // Lines 3-12: literal comparisons. Lines 19-25: `.value` member-access
  // comparisons (the dispatch-key pattern of sched/priority.h) — exact
  // compares on them must carry the exact-tie-contract suppression.
  auto fs =
      findings_for("r3_flag.cpp", "src/util/r3_flag.cpp", "float-equality");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{3, 6, 9, 12, 19, 22, 25}));
}

TEST(FrapLintRules, R3ValueMemberMessageCitesTheContract) {
  auto fs =
      findings_for("r3_flag.cpp", "src/util/r3_flag.cpp", "float-equality");
  bool saw_member_message = false;
  for (const auto& f : fs) {
    if (f.line >= 19 && f.message.find("exact-tie") != std::string::npos)
      saw_member_message = true;
  }
  EXPECT_TRUE(saw_member_message);
}

TEST(FrapLintRules, R3PassesAlmostEqualAndIntegerEquality) {
  auto all =
      lint_source("src/util/r3_pass.cpp", read_fixture("r3_pass.cpp"));
  EXPECT_TRUE(all.empty());
}

TEST(FrapLintRules, R4FlagsUnannotatedPublicDecisionApis) {
  auto fs = findings_for("r4_flag.h", "src/core/r4_flag.h",
                         "missing-nodiscard");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{9, 10, 11, 17, 19}));
}

TEST(FrapLintRules, R4PassesAnnotatedPrivateAndNonDecisionApis) {
  auto all = lint_source("src/core/r4_pass.h", read_fixture("r4_pass.h"));
  EXPECT_TRUE(all.empty());
}

TEST(FrapLintRules, R4OnlyAppliesToCoreHeaders) {
  // The same declarations are out of scope in a .cpp or outside core/.
  EXPECT_TRUE(
      lint_source("src/core/r4_flag.cpp", read_fixture("r4_flag.h")).empty());
  EXPECT_TRUE(
      lint_source("src/sched/r4_flag.h", read_fixture("r4_flag.h")).empty());
}

TEST(FrapLintRules, R5FlagsEntropyClocksStdoutAndConcurrency) {
  auto fs = findings_for("r5_flag.cpp", "src/sched/r5_flag.cpp",
                         "nondeterminism");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{5, 10, 12, 16, 20, 21, 23, 27}));
}

TEST(FrapLintRules, R5PassesSeededRngAndMemberTimeAccess) {
  auto all =
      lint_source("src/sched/r5_pass.cpp", read_fixture("r5_pass.cpp"));
  EXPECT_TRUE(all.empty());
}

TEST(FrapLintRules, R5ExemptsRngHelperAndNonLibraryCode) {
  // util/rng.* is the sanctioned entropy boundary; tests/ and bench/ are
  // outside library scope for this rule.
  EXPECT_TRUE(
      lint_source("src/util/rng.cpp", read_fixture("r5_flag.cpp")).empty());
  EXPECT_TRUE(
      lint_source("tests/r5_flag.cpp", read_fixture("r5_flag.cpp")).empty());
}

TEST(FrapLintRules, R5ServiceMayUseConcurrencyButNotClocksOrEntropy) {
  // src/service/ (and metrics/counters.h) may use threads and atomics, but
  // the entropy/wall-clock/stdout half of the rule still applies there.
  auto svc = findings_for("r5_flag.cpp", "src/service/r5_flag.cpp",
                          "nondeterminism");
  EXPECT_EQ(lines_of(svc), (std::vector<int>{5, 10, 12, 16, 27}));
  auto counters = findings_for("r5_flag.cpp", "src/metrics/counters.h",
                               "nondeterminism");
  EXPECT_EQ(lines_of(counters), (std::vector<int>{5, 10, 12, 16, 27}));
}

TEST(FrapLintRules, R5ObsMayUseConcurrencyButNotClocksOrEntropy) {
  // src/obs/ holds the lock-free trace ring, so the concurrency half of
  // the rule is exempt there — but entropy, wall clocks, and stdout are
  // still banned like everywhere else in src/.
  auto obs = findings_for("r5_flag.cpp", "src/obs/trace_ring.h",
                          "nondeterminism");
  EXPECT_EQ(lines_of(obs), (std::vector<int>{5, 10, 12, 16, 27}));
}

TEST(FrapLintRules, R5PassesTimerWheelIdioms) {
  // The timer wheel's internals are saturated with temporal-looking
  // identifiers (Timer::time members, tick arithmetic, steady_state
  // counters). They must all lint clean under src/sim/ without any new
  // carve-out: member access and value uses never match the wall-clock
  // patterns.
  auto all = lint_source("src/sim/timer_wheel.cpp",
                         read_fixture("r5_wheel_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R5SimGetsNoCarveOut) {
  // Conversely src/sim/ earns no exemption: real entropy, wall clocks,
  // stdout, and concurrency primitives all still flag there, exactly as
  // in any other library directory.
  auto fs = findings_for("r5_flag.cpp", "src/sim/timer_wheel.cpp",
                         "nondeterminism");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{5, 10, 12, 16, 20, 21, 23, 27}));
}

TEST(FrapLintRules, R5ClockSeamExemptsWallClockReadsOnly) {
  // src/obs/clock.cpp is the ONE file allowed to read a wall clock (the
  // monotonic_clock() behind the obs::Clock seam): time() and the chrono
  // clocks pass there, while entropy and stdout remain banned.
  auto seam = findings_for("r5_flag.cpp", "src/obs/clock.cpp",
                           "nondeterminism");
  EXPECT_EQ(lines_of(seam), (std::vector<int>{5, 10, 16}));
}

TEST(FrapLintRules, R5AtomicAdmissionIdiomsPassUnderService) {
  // The lock-free admission guard's idioms (std::atomic members, CAS retry
  // loops, fetch_add seqlock writes, mutex fallback) all belong to the
  // src/service/ concurrency carve-out and must lint clean there.
  auto all = lint_source("src/service/r5_atomic_pass.cpp",
                         read_fixture("r5_atomic_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R5AtomicAdmissionIdiomsFlagOutsideExemptDirs) {
  // The same fixture under src/sched/ flags exactly the three primitive
  // declarations (two std::atomic members, one std::mutex). The member
  // accesses — load/compare_exchange_weak/fetch_add — never flag anywhere.
  auto fs = findings_for("r5_atomic_pass.cpp", "src/sched/r5_atomic_pass.cpp",
                         "nondeterminism");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{7, 8, 9}));
}

TEST(FrapLintSuppression, DirectivesBindSuppressOrReport) {
  auto all = lint_source("src/workload/suppress.cpp",
                         read_fixture("suppress.cpp"));

  std::vector<int> suppressed, active_div, bad;
  for (const auto& f : all) {
    if (f.rule == "unsafe-division" && f.suppressed)
      suppressed.push_back(f.line);
    else if (f.rule == "unsafe-division" && active(f))
      active_div.push_back(f.line);
    else if (f.rule == "bad-suppression")
      bad.push_back(f.line);
  }
  std::sort(suppressed.begin(), suppressed.end());
  std::sort(active_div.begin(), active_div.end());
  std::sort(bad.begin(), bad.end());

  // Trailing directive (line 3) and standalone directive whose reason
  // continues across comment lines (binds to line 8) both suppress.
  EXPECT_EQ(suppressed, (std::vector<int>{3, 8}));
  // Reason-less (12), wrong-rule (16), and unknown-rule (20) cases stay
  // active.
  EXPECT_EQ(active_div, (std::vector<int>{12, 16, 20}));
  // The malformed directives themselves are reported and cannot be
  // silenced.
  EXPECT_EQ(bad, (std::vector<int>{11, 19}));
}

TEST(FrapLintSuppression, SuppressedFindingsAreNotActive) {
  auto all = lint_source("src/workload/suppress.cpp",
                         read_fixture("suppress.cpp"));
  for (const auto& f : all) {
    if (f.suppressed) {
      EXPECT_FALSE(active(f));
    }
  }
}

TEST(FrapLintRules, R2TemplateArgumentListsNeverReadAsComparisons) {
  // Every declaration in this fixture used to trip R2 via `uint64_t >
  // qlhs_`-style token runs; the scope pass marks template-argument
  // tokens and the whole file lints clean with no per-site carve-outs.
  auto all = lint_source("src/service/r2_template_pass.cpp",
                         read_fixture("r2_template_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R6FlagsUnannotatedAndMisdirectedRounding) {
  // Lines 4/8: unannotated quantize_up and add_sat. Line 17: the seeded
  // soundness defect — quantize_down on an admit-side delta in a copy of
  // the guard's reservation path. Line 23: DOWN on a reject-side bound.
  auto fs = findings_for("r6_flag.cpp", "src/core/r6_flag.cpp",
                         "rounding-direction");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{4, 8, 17, 23}));
}

TEST(FrapLintRules, R6PassesAnnotatedConservativeRounding) {
  auto all =
      lint_source("src/core/r6_pass.cpp", read_fixture("r6_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R6OnlyAppliesUnderSrc) {
  // The same calls are out of scope outside src/ (bench drivers may
  // quantize freely) and inside the fixed-point home itself.
  EXPECT_TRUE(
      lint_source("bench/r6_flag.cpp", read_fixture("r6_flag.cpp")).empty());
  auto home = findings_for("r6_flag.cpp", "src/core/fixed_point.h",
                           "rounding-direction");
  EXPECT_TRUE(home.empty());
}

TEST(FrapLintRules, R7FlagsEachBrokenProtocolLeg) {
  // Writers: 13 no release publish, 21 empty write section, 28 missing
  // release fence. Readers: 35 relaxed first load, 46 unordered re-check,
  // 55 re-check that never compares.
  auto fs = findings_for("r7_flag.cpp", "src/obs/trace_ring.cpp",
                         "seqlock-protocol");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{13, 21, 28, 35, 46, 55}));
}

TEST(FrapLintRules, R7PassesTextbookSeqlockFullyClean) {
  // The well-formed writer/reader pair also carries all its R8 order
  // contracts, so the file produces zero findings of any rule.
  auto all = lint_source("src/obs/trace_ring.cpp",
                         read_fixture("r7_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R7OnlyAppliesToSeqlockHomes) {
  // The same broken protocol outside the seqlock homes is R8/R5 business,
  // not R7's.
  auto fs = findings_for("r7_flag.cpp", "src/service/sharded_admission.cpp",
                         "seqlock-protocol");
  EXPECT_TRUE(fs.empty());
}

TEST(FrapLintRules, R8RequiresContractsInsideCarveOut) {
  // Line 10 carries its order contract; 14 and 18 are bare.
  auto fs = findings_for("r8_flag.cpp", "src/service/r8_flag.cpp",
                         "memory-order-audit");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{14, 18}));
}

TEST(FrapLintRules, R8BansRawOrderingsOutsideCarveOut) {
  // Outside the carve-out even the contracted line 10 flags: the contract
  // documents a choice the file is not allowed to make at all.
  auto fs = findings_for("r8_flag.cpp", "src/core/r8_flag.cpp",
                         "memory-order-audit");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{10, 14, 18}));
}

TEST(FrapLintRules, R8PassesFullyContractedFile) {
  auto all = lint_source("src/service/r8_pass.cpp",
                         read_fixture("r8_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R9FlagsAllocationLockThrowAndAllocatingCallee) {
  // Direct uses in hot_direct: 16 vector, 17 lock_guard, 18 make_unique,
  // 19 throw. Line 25: hot_indirect calls slow_helper, whose body news —
  // the one-level same-file summary propagation.
  auto fs = findings_for("r9_flag.cpp", "src/core/r9_flag.cpp",
                         "hotpath-alloc");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{16, 17, 18, 19, 25}));
}

TEST(FrapLintRules, R9PassesSanctionedIdiomsAndNonHotpathCode) {
  auto all =
      lint_source("src/core/r9_pass.cpp", read_fixture("r9_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R9DagFastPathIdiomsAreClean) {
  // The ISSUE 9 incremental admit path in miniature: profile dot products,
  // member scratch resize, sparse-commit push_back into reserved buffers —
  // the exact shapes LongPathEvaluator::path_value and try_admit_interned
  // use under their hotpath contracts.
  auto all = lint_source("src/core/r9_dag_pass.cpp",
                         read_fixture("r9_dag_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R9DagRewalkRecipeIsFlagged) {
  // The pre-interning recipe the fast path replaced: snapshot vector (22),
  // std::function callback (24), and the same-file helper whose body news
  // the weight array, flagged at the call site (25).
  auto fs = findings_for("r9_dag_flag.cpp", "src/core/r9_dag_flag.cpp",
                         "hotpath-alloc");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{22, 24, 25}));
}

TEST(FrapLintRules, R9IngestZeroCopyIdiomsAreClean) {
  // The ISSUE 10 wire-ingest hot path in miniature: memcpy unaligned loads
  // from a validated span, fixed-stride cursor advance, and scratch-spec
  // assembly that clears touched stages and push_backs into a reserved
  // touched list — the exact shapes ArrivalCursor::next and
  // IngestSession::assemble use under their hotpath contracts.
  auto all = lint_source("src/ingest/r9_ingest_pass.cpp",
                         read_fixture("r9_ingest_pass.cpp"));
  EXPECT_TRUE(all.empty()) << all.size() << " unexpected finding(s), first: "
                           << (all.empty() ? "" : all.front().message);
}

TEST(FrapLintRules, R9IngestCopyingDecodeRecipeIsFlagged) {
  // The per-record copying decode the zero-copy cursor replaced: owned
  // demand vector (20), std::function sink (21), and the same-file helper
  // whose body news the decode buffer, flagged at the call site (22).
  auto fs = findings_for("r9_ingest_flag.cpp", "src/ingest/r9_ingest_flag.cpp",
                         "hotpath-alloc");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{20, 21, 22}));
}

TEST(FrapLintContracts, MalformedContractsAreUnsuppressibleFindings) {
  auto all =
      lint_source("src/core/contract.cpp", read_fixture("contract.cpp"));
  std::vector<int> bad;
  for (const auto& f : all)
    if (f.rule == "bad-contract") {
      bad.push_back(f.line);
      EXPECT_FALSE(f.suppressed);
      EXPECT_TRUE(active(f));
    }
  std::sort(bad.begin(), bad.end());
  // Unknown role (6), empty order rationale (11), unknown kind (16).
  EXPECT_EQ(bad, (std::vector<int>{6, 11, 16}));
}

TEST(FrapLintContracts, ContractCoversWholeMultiLineStatement) {
  // The rounds contract in spanning() binds to the statement's first line
  // but the quantize_up call sits on a continuation line — no R6 finding.
  auto fs = findings_for("contract.cpp", "src/core/contract.cpp",
                         "rounding-direction");
  EXPECT_TRUE(fs.empty());
}

TEST(FrapLintSuppression, DirectiveCoversWholeMultiLineStatement) {
  auto all = lint_source("src/workload/span_suppress.cpp",
                         read_fixture("span_suppress.cpp"));
  std::vector<int> suppressed, active_div;
  for (const auto& f : all) {
    if (f.rule != "unsafe-division") continue;
    (f.suppressed ? suppressed : active_div).push_back(f.line);
  }
  // The directive binds to the statement's first line (6) yet suppresses
  // the division flagged on the continuation line (7); the identical
  // statement in the next function stays active.
  EXPECT_EQ(suppressed, (std::vector<int>{7}));
  EXPECT_EQ(active_div, (std::vector<int>{15}));
}

TEST(FrapLintApi, CanonicalRuleMapsAliases) {
  EXPECT_EQ(canonical_rule("r1"), "unsafe-division");
  EXPECT_EQ(canonical_rule("r2"), "rederived-admission");
  EXPECT_EQ(canonical_rule("r3"), "float-equality");
  EXPECT_EQ(canonical_rule("r4"), "missing-nodiscard");
  EXPECT_EQ(canonical_rule("r5"), "nondeterminism");
  EXPECT_EQ(canonical_rule("r6"), "rounding-direction");
  EXPECT_EQ(canonical_rule("r7"), "seqlock-protocol");
  EXPECT_EQ(canonical_rule("r8"), "memory-order-audit");
  EXPECT_EQ(canonical_rule("r9"), "hotpath-alloc");
  EXPECT_EQ(canonical_rule("float-equality"), "float-equality");
  EXPECT_EQ(canonical_rule("hotpath-alloc"), "hotpath-alloc");
  EXPECT_EQ(canonical_rule("no-such-rule"), "");
}

TEST(FrapLintApi, BaselineMarksMatchingFindings) {
  auto all = lint_source("src/util/r3_flag.cpp", read_fixture("r3_flag.cpp"));
  ASSERT_FALSE(all.empty());

  std::set<std::string> baseline{"src/util/r3_flag.cpp:float-equality"};
  apply_baseline(all, baseline);
  for (const auto& f : all) {
    EXPECT_TRUE(f.baselined) << f.file << ":" << f.line;
    EXPECT_FALSE(active(f));
  }

  // A baseline for a different file leaves findings active.
  auto again =
      lint_source("src/util/r3_flag.cpp", read_fixture("r3_flag.cpp"));
  std::set<std::string> other{"src/util/other.cpp:float-equality"};
  apply_baseline(again, other);
  for (const auto& f : again) EXPECT_TRUE(active(f));
}

}  // namespace
