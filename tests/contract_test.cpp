// Contract (precondition) enforcement: misusing the API must abort with a
// diagnostic, not corrupt state. Death tests document the exact contracts.
#include <gtest/gtest.h>

#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "metrics/histogram.h"
#include "metrics/utilization_meter.h"
#include "sched/stage_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap {
namespace {


TEST(ContractDeathTest, SimulatorRejectsSchedulingInThePast) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_DEATH(sim.at(1.0, [] {}), "precondition");
}

TEST(ContractDeathTest, SimulatorRejectsNegativeDelay) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  EXPECT_DEATH(sim.after(-1.0, [] {}), "precondition");
}

TEST(ContractDeathTest, RngRejectsInvalidRanges) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  util::Rng rng(1);
  EXPECT_DEATH(rng.uniform(2.0, 1.0), "precondition");
  EXPECT_DEATH(rng.exponential(0.0), "precondition");
  EXPECT_DEATH(rng.bernoulli(1.5), "precondition");
  EXPECT_DEATH(rng.uniform_int(5, 4), "precondition");
}

TEST(ContractDeathTest, StageDelayRejectsNegativeUtilization) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(core::stage_delay_factor(-0.1), "precondition");
  EXPECT_DEATH(core::stage_delay_factor_inverse(-1.0), "precondition");
}

TEST(ContractDeathTest, RegionRejectsBadParameters) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(core::FeasibleRegion::with_alpha(2, 0.0), "precondition");
  EXPECT_DEATH(core::FeasibleRegion::with_alpha(2, 1.5), "precondition");
  EXPECT_DEATH(core::FeasibleRegion::with_blocking(
                   1.0, std::vector<double>{0.6, 0.6}),
               "precondition");  // beta sum >= 1: empty region
  EXPECT_DEATH(core::FeasibleRegion::deadline_monotonic(0), "precondition");
}

TEST(ContractDeathTest, RegionRejectsWrongDimension) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const auto region = core::FeasibleRegion::deadline_monotonic(2);
  EXPECT_DEATH((void)region.lhs(std::vector<double>{0.1}), "precondition");
}

TEST(ContractDeathTest, TrackerRejectsDuplicateTaskIds) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  core::SyntheticUtilizationTracker t(sim, 1);
  t.add(1, std::vector<double>{0.1}, 10.0);
  EXPECT_DEATH(t.add(1, std::vector<double>{0.1}, 10.0), "precondition");
}

TEST(ContractDeathTest, TrackerRejectsWrongWidthAndPastDeadline) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  core::SyntheticUtilizationTracker t(sim, 2);
  EXPECT_DEATH(t.add(1, std::vector<double>{0.1}, 10.0), "precondition");
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_DEATH(t.add(2, std::vector<double>{0.1, 0.1}, 1.0),
               "precondition");
}

TEST(ContractDeathTest, TrackerRejectsInvalidReservation) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  core::SyntheticUtilizationTracker t(sim, 1);
  EXPECT_DEATH(t.set_reservation(0, 1.0), "precondition");
  EXPECT_DEATH(t.set_reservation(5, 0.1), "precondition");
}

TEST(ContractDeathTest, ServerRejectsDoubleSubmit) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  sched::StageServer server(sim);
  sched::Job job(1, 1.0, {sched::Segment{1.0, sched::kNoLock}});
  server.submit(job);
  EXPECT_DEATH(server.submit(job), "precondition");
}

TEST(ContractDeathTest, ServerRejectsEmptyJob) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  sched::StageServer server(sim);
  sched::Job job(1, 1.0, {});
  EXPECT_DEATH(server.submit(job), "precondition");
}

TEST(ContractDeathTest, MeterRejectsOutOfOrderTransitions) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  metrics::UtilizationMeter m;
  m.set_busy(1.0);
  EXPECT_DEATH(m.set_busy(2.0), "precondition");
  m.set_idle(2.0);
  EXPECT_DEATH(m.set_idle(3.0), "precondition");
}

TEST(ContractDeathTest, HistogramRejectsDegenerateRange) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(metrics::Histogram(1.0, 1.0, 4), "precondition");
  EXPECT_DEATH(metrics::Histogram(0.0, 1.0, 0), "precondition");
}

TEST(ContractDeathTest, AdmissionRejectsMismatchedTask) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  core::SyntheticUtilizationTracker t(sim, 2);
  core::AdmissionController c(sim, t,
                              core::FeasibleRegion::deadline_monotonic(2));
  core::TaskSpec wrong;
  wrong.id = 1;
  wrong.deadline = 1.0;
  wrong.stages.resize(3);  // pipeline is 2 stages
  for (auto& s : wrong.stages) s.compute = 0.1;
  EXPECT_DEATH((void)c.try_admit(wrong), "precondition");
}

TEST(ContractDeathTest, AdmissionRejectsInvalidSpec) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulator sim;
  core::SyntheticUtilizationTracker t(sim, 1);
  core::AdmissionController c(sim, t,
                              core::FeasibleRegion::deadline_monotonic(1));
  core::TaskSpec bad;  // no deadline, no stages
  EXPECT_DEATH((void)c.try_admit(bad), "precondition");
}

}  // namespace
}  // namespace frap
