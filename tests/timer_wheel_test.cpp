// Edge cases of the hierarchical timer wheel (ISSUE 5 satellite d):
// same-tick ordering against the shared sequence counter, far-future
// overflow spill and re-pull, cancel with immediate reclamation followed by
// reschedule (stale-handle rejection), cursor advance across long empty
// spans, and the merged Simulator dispatch being bit-identical to a pure
// binary-heap schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/timer_wheel.h"
#include "util/rng.h"

namespace frap::sim {
namespace {

// Records every firing it receives, in order.
struct Recorder final : TimerClient {
  void on_timer(std::uint64_t payload) override { fired.push_back(payload); }
  std::vector<std::uint64_t> fired;
};

// Drains the wheel fully, returning (time, payload) in pop order.
std::vector<std::pair<Time, std::uint64_t>> drain(TimerWheel& w) {
  std::vector<std::pair<Time, std::uint64_t>> out;
  while (!w.empty()) {
    Time t = 0;
    TimerClient* c = nullptr;
    std::uint64_t payload = 0;
    w.pop(t, c, payload);
    out.emplace_back(t, payload);
  }
  return out;
}

TEST(TimerWheelTest, FiresInTimeOrderAcrossLevels) {
  TimerWheel w;
  Recorder r;
  // Ticks chosen to land on level 0, 1, 2, 3 and overflow: the default tick
  // is 100us, so level l spans 64^l ticks.
  const std::vector<Time> times{0.0003, 0.01, 0.5, 40.0, 2000.0};
  std::uint64_t seq = 1;
  // Schedule in shuffled order.
  for (std::size_t i : {3u, 0u, 4u, 2u, 1u}) {
    w.schedule(times[i], seq++, &r, i);
  }
  EXPECT_EQ(w.size(), 5u);
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(fired[i].first, times[i]) << i;
    EXPECT_EQ(fired[i].second, i);
  }
}

TEST(TimerWheelTest, SameTickBatchFiresInTimeThenSeqOrder) {
  TimerWheel w;
  Recorder r;
  // All inside one 100us tick, but at three distinct exact times; two share
  // a time and must order by seq. Schedule out of order.
  w.schedule(0.000050, /*seq=*/7, &r, 3);
  w.schedule(0.000020, /*seq=*/5, &r, 1);
  w.schedule(0.000050, /*seq=*/6, &r, 2);
  w.schedule(0.000010, /*seq=*/9, &r, 0);
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0].second, 0u);
  EXPECT_EQ(fired[1].second, 1u);
  EXPECT_EQ(fired[2].second, 2u);  // seq 6 before seq 7 at equal time
  EXPECT_EQ(fired[3].second, 3u);
}

TEST(TimerWheelTest, PeekMatchesPopWithoutMutating) {
  TimerWheel w;
  Recorder r;
  w.schedule(1.5, 2, &r, 20);
  w.schedule(0.25, 1, &r, 10);
  Time pt = 0;
  std::uint64_t pseq = 0;
  ASSERT_TRUE(w.peek(pt, pseq));
  EXPECT_DOUBLE_EQ(pt, 0.25);
  EXPECT_EQ(pseq, 1u);
  // Repeated peeks are stable and do not consume.
  ASSERT_TRUE(w.peek(pt, pseq));
  EXPECT_DOUBLE_EQ(pt, 0.25);
  EXPECT_EQ(w.size(), 2u);
  Time t = 0;
  TimerClient* c = nullptr;
  std::uint64_t payload = 0;
  w.pop(t, c, payload);
  EXPECT_DOUBLE_EQ(t, 0.25);
  EXPECT_EQ(payload, 10u);
}

TEST(TimerWheelTest, FarFutureTimersSpillToOverflowAndFire) {
  TimerWheel w;  // horizon = 64^4 ticks * 100us ~= 1677.7 s
  Recorder r;
  const Time horizon = 0.0001 * static_cast<Time>(1u << 24);
  w.schedule(horizon * 2.5, 1, &r, 99);     // beyond the horizon
  w.schedule(horizon * 100.0, 2, &r, 100);  // far beyond
  EXPECT_EQ(w.overflow_size(), 2u);
  w.schedule(1.0, 3, &r, 1);  // in-wheel
  EXPECT_EQ(w.overflow_size(), 2u);
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].second, 1u);
  EXPECT_EQ(fired[1].second, 99u);
  EXPECT_DOUBLE_EQ(fired[1].first, horizon * 2.5);
  EXPECT_EQ(fired[2].second, 100u);
  EXPECT_EQ(w.overflow_size(), 0u);
}

TEST(TimerWheelTest, CancelReclaimsImmediatelyAndRejectsStaleHandle) {
  TimerWheel w;
  Recorder r;
  const TimerId id = w.schedule(5.0, 1, &r, 42);
  ASSERT_TRUE(w.pending(id));
  EXPECT_TRUE(w.cancel(id));
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.pending(id));
  EXPECT_FALSE(w.cancel(id));  // double cancel: stale

  // The freed cell is reused by the next schedule; the old handle must not
  // alias the new timer.
  const TimerId id2 = w.schedule(6.0, 2, &r, 43);
  EXPECT_NE(id, id2);
  EXPECT_FALSE(w.pending(id));
  EXPECT_FALSE(w.cancel(id));
  ASSERT_TRUE(w.pending(id2));
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second, 43u);
}

TEST(TimerWheelTest, CancelInsideDueBatchSkipsEntry) {
  TimerWheel w;
  Recorder r;
  // Three timers in one tick; pop the first (which batches the slot into
  // the due buffer), then cancel the second while it sits in the batch.
  const TimerId a = w.schedule(0.000010, 1, &r, 1);
  const TimerId b = w.schedule(0.000020, 2, &r, 2);
  const TimerId c = w.schedule(0.000030, 3, &r, 3);
  (void)a;
  (void)c;
  Time t = 0;
  TimerClient* cl = nullptr;
  std::uint64_t payload = 0;
  w.pop(t, cl, payload);
  EXPECT_EQ(payload, 1u);
  EXPECT_TRUE(w.cancel(b));
  EXPECT_EQ(w.size(), 1u);
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second, 3u);
}

TEST(TimerWheelTest, AdvanceAcrossLongEmptySpans) {
  TimerWheel w;
  Recorder r;
  // Alternate tiny and huge gaps so the cursor repeatedly jumps across
  // empty level-0/1/2 ranges and cascades from level 3.
  std::vector<Time> times;
  Time t = 0.0005;
  for (int i = 0; i < 12; ++i) {
    times.push_back(t);
    t += (i % 2 == 0) ? 131.072 : 0.0001;  // ~2^20 ticks vs 1 tick
  }
  std::uint64_t seq = 1;
  for (std::size_t i = 0; i < times.size(); ++i) {
    w.schedule(times[i], seq++, &r, i);
  }
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(fired[i].first, times[i]) << i;
    EXPECT_EQ(fired[i].second, i);
  }
}

TEST(TimerWheelTest, RandomizedAgainstSortedReference) {
  TimerWheel w;
  Recorder r;
  util::Rng rng(123);
  std::vector<std::pair<Time, std::uint64_t>> expect;
  std::uint64_t seq = 1;
  std::vector<TimerId> ids;
  for (int i = 0; i < 4000; ++i) {
    // Mix of near, mid, far, and beyond-horizon times.
    const double scale = std::vector<double>{0.01, 1.0, 300.0, 5000.0}[
        static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const Time t = rng.uniform(0.0, scale);
    const std::uint64_t s = seq++;
    ids.push_back(w.schedule(t, s, &r, s));
    expect.emplace_back(t, s);
  }
  // Cancel a third of them.
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(w.cancel(ids[i]));
    expect[i].second = 0;  // tombstone
  }
  std::erase_if(expect, [](const auto& p) { return p.second == 0; });
  std::sort(expect.begin(), expect.end());
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_DOUBLE_EQ(fired[i].first, expect[i].first) << i;
    EXPECT_EQ(fired[i].second, expect[i].second) << i;
  }
}

// ------------------------------------------------- merged dispatch ------

// The simulator fires heap closures and wheel timers in exactly the
// (time, seq) order a single queue would produce: interleave both surfaces
// at identical and distinct times and compare against a pure-closure run.
TEST(TimerWheelTest, QuiescenceTestIsExactAroundTimerTimes) {
  TimerWheel w;
  Recorder r;
  w.schedule(1.0, 1, &r, 1);
  EXPECT_TRUE(w.none_at_or_before(0.5));
  EXPECT_FALSE(w.none_at_or_before(1.0));  // boundary counts as due
  EXPECT_FALSE(w.none_at_or_before(2.0));
  // Beyond the horizon: overflow-only population still answers exactly.
  TimerWheel far;
  far.schedule(1e9, 1, &r, 1);
  ASSERT_EQ(far.overflow_size(), 1u);
  EXPECT_TRUE(far.none_at_or_before(1e6));
  EXPECT_FALSE(far.none_at_or_before(2e9));
}

TEST(TimerWheelTest, CancellingEarliestKeepsQuiescenceExact) {
  // The shed steady state: the cancelled timer is always the earliest, so
  // the memo dies on every cancel; the quiescence test must stay correct
  // (and is expected to answer from the occupancy bound, not a cell walk).
  TimerWheel w;
  Recorder r;
  std::vector<TimerId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(w.schedule(1.0 + 0.01 * i, static_cast<std::uint64_t>(i),
                             &r, static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 99; ++i) {
    ASSERT_TRUE(w.cancel(ids[static_cast<std::size_t>(i)]));
    EXPECT_TRUE(w.none_at_or_before(1.0 + 0.01 * i));
    EXPECT_FALSE(w.none_at_or_before(2.0));
  }
  Time t = 0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(w.peek(t, seq));
  EXPECT_DOUBLE_EQ(t, 1.99);  // the one survivor
}

TEST(TimerWheelTest, CancellingNonEarliestPreservesPeekMemo) {
  TimerWheel w;
  Recorder r;
  w.schedule(1.0, 1, &r, 1);
  const TimerId later = w.schedule(5.0, 2, &r, 2);
  Time t = 0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(w.peek(t, seq));
  EXPECT_DOUBLE_EQ(t, 1.0);
  ASSERT_TRUE(w.cancel(later));  // not the earliest: memo survives
  ASSERT_TRUE(w.peek(t, seq));
  EXPECT_DOUBLE_EQ(t, 1.0);
  EXPECT_EQ(drain(w), (std::vector<std::pair<Time, std::uint64_t>>{{1.0, 1}}));
}

TEST(TimerWheelTest, QuiescenceSeesDueBatchRemainder) {
  // Two same-tick timers: popping one leaves the other parked in the due
  // buffer, which the quiescence test must report as still pending.
  TimerWheel w;
  Recorder r;
  w.schedule(1.0, 1, &r, 1);
  w.schedule(1.0, 2, &r, 2);
  Time t = 0;
  TimerClient* c = nullptr;
  std::uint64_t payload = 0;
  w.pop(t, c, payload);
  EXPECT_EQ(payload, 1u);
  EXPECT_FALSE(w.none_at_or_before(1.0));
  EXPECT_TRUE(w.none_at_or_before(0.5));
  w.pop(t, c, payload);
  EXPECT_EQ(payload, 2u);
  EXPECT_TRUE(w.none_at_or_before(1e12));
}

TEST(TimerWheelTest, AdvanceClockPreservesOrderAndPullsOverflow) {
  TimerWheel w;  // default 100 us tick: horizon ~1677 s
  Recorder r;
  w.schedule(2000.0, 1, &r, 1);  // beyond the horizon: overflow
  w.schedule(1999.0, 2, &r, 2);
  ASSERT_EQ(w.overflow_size(), 2u);
  EXPECT_TRUE(w.none_at_or_before(1500.0));
  w.advance_clock(1800.0);  // crosses the top-level window boundary
  EXPECT_EQ(w.overflow_size(), 0u);  // both pulled into the wheel
  EXPECT_TRUE(w.none_at_or_before(1998.0));
  const auto fired = drain(w);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0].first, 1999.0);
  EXPECT_DOUBLE_EQ(fired[1].first, 2000.0);
}

TEST(TimerWheelSimulatorTest, MergedDispatchMatchesPureHeapOrder) {
  util::Rng rng(7);
  std::vector<Time> times;
  Time t = 0;
  for (int i = 0; i < 500; ++i) {
    // Duplicated times (same-time closure+timer pairs) every few events.
    if (i % 5 != 0 || times.empty()) t += rng.exponential(0.003);
    times.push_back(t);
  }

  // Run A: alternate closure / timer scheduling in submission order.
  std::vector<int> order_a;
  {
    Simulator sim;
    struct Client final : TimerClient {
      std::vector<int>* out;
      void on_timer(std::uint64_t payload) override {
        out->push_back(static_cast<int>(payload));
      }
    } client;
    client.out = &order_a;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (i % 2 == 0) {
        sim.at(times[i], [&order_a, i] { order_a.push_back(static_cast<int>(i)); });
      } else {
        sim.timer_at(times[i], &client, i);
      }
    }
    sim.run();
  }

  // Run B: everything as closures — the reference order.
  std::vector<int> order_b;
  {
    Simulator sim;
    for (std::size_t i = 0; i < times.size(); ++i) {
      sim.at(times[i], [&order_b, i] { order_b.push_back(static_cast<int>(i)); });
    }
    sim.run();
  }

  EXPECT_EQ(order_a, order_b);
}

TEST(TimerWheelSimulatorTest, CancelTimerStopsFiring) {
  Simulator sim;
  Recorder r;
  const TimerId id = sim.timer_at(1.0, &r, 1);
  sim.timer_at(2.0, &r, 2);
  EXPECT_TRUE(sim.timer_pending(id));
  EXPECT_TRUE(sim.cancel_timer(id));
  EXPECT_FALSE(sim.timer_pending(id));
  sim.run();
  ASSERT_EQ(r.fired.size(), 1u);
  EXPECT_EQ(r.fired[0], 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(TimerWheelSimulatorTest, RunUntilFiresTimersAtBoundary) {
  Simulator sim;
  Recorder r;
  sim.timer_at(1.0, &r, 1);
  sim.timer_at(1.5, &r, 2);
  sim.run_until(1.0);  // timers at exactly t fire
  EXPECT_EQ(r.fired, (std::vector<std::uint64_t>{1}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  sim.run_until(3.0);
  EXPECT_EQ(r.fired, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(TimerWheelSimulatorTest, TimerScheduledFromTimerFires) {
  Simulator sim;
  struct Chain final : TimerClient {
    Simulator* sim = nullptr;
    int hops = 0;
    void on_timer(std::uint64_t payload) override {
      ++hops;
      if (payload > 0) sim->timer_at(sim->now() + 0.25, this, payload - 1);
    }
  } chain;
  chain.sim = &sim;
  sim.timer_at(0.25, &chain, 5);
  sim.run();
  EXPECT_EQ(chain.hops, 6);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

}  // namespace
}  // namespace frap::sim
