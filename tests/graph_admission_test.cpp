// Unit tests for GraphAdmissionController (Theorem 2 admission decisions;
// end-to-end DAG soundness lives in dag_integration_test.cpp).
#include <gtest/gtest.h>

#include <vector>

#include "core/admission.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "sim/simulator.h"

namespace frap::core {
namespace {

StageDemand demand(Duration c) {
  StageDemand d;
  d.compute = c;
  return d;
}

// Fork/join over four resources; per-node compute = c, deadline = d.
GraphTaskSpec fork_join(std::uint64_t id, Duration d, Duration c) {
  GraphTaskSpec g;
  g.id = id;
  g.deadline = d;
  g.nodes = {GraphNode{0, demand(c)}, GraphNode{1, demand(c)},
             GraphNode{2, demand(c)}, GraphNode{3, demand(c)}};
  g.edges = {GraphEdge{0, 1}, GraphEdge{0, 2}, GraphEdge{1, 3},
             GraphEdge{2, 3}};
  return g;
}

class GraphAdmissionTest : public ::testing::Test {
 protected:
  GraphAdmissionTest()
      : tracker_(sim_, 4),
        controller_(sim_, tracker_, GraphRegionEvaluator(1.0, {})) {}

  sim::Simulator sim_;
  SyntheticUtilizationTracker tracker_;
  GraphAdmissionController controller_;
};

TEST_F(GraphAdmissionTest, AdmitsSmallGraphTask) {
  const auto d = controller_.try_admit(fork_join(1, 1.0, 0.05));
  EXPECT_TRUE(d.admitted);
  // Contribution 0.05 on each resource.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(tracker_.utilization(r), 0.05);
  }
  EXPECT_EQ(controller_.admitted(), 1u);
}

TEST_F(GraphAdmissionTest, LhsUsesCriticalPathNotSum) {
  // Utilization 0.3 everywhere: chain lhs would be 4 f(0.3) = 1.457 (out),
  // fork/join lhs is 3 f(0.3) = 1.093 (also out); at 0.25: chain 1.167
  // (out), fork 0.875 (in). So a fork/join task pushing all four resources
  // to ~0.25 is admitted although a 4-chain would not be.
  for (int i = 0; i < 4; ++i) {
    const auto d = controller_.try_admit(
        fork_join(static_cast<std::uint64_t>(i + 1), 1.0, 0.0625));
    EXPECT_TRUE(d.admitted) << i;
  }
  // Now at exactly 0.25 per resource: lhs = 3 f(0.25).
  const auto utilizations = tracker_.utilizations();
  for (double u : utilizations) EXPECT_NEAR(u, 0.25, 1e-12);
  GraphRegionEvaluator eval(1.0, {});
  EXPECT_NEAR(eval.lhs(fork_join(99, 1.0, 0.0), utilizations),
              3 * stage_delay_factor(0.25), 1e-12);
}

TEST_F(GraphAdmissionTest, RejectionLeavesTrackerUntouched) {
  const auto d = controller_.try_admit(fork_join(1, 1.0, 0.5));
  EXPECT_FALSE(d.admitted);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(tracker_.utilization(r), 0.0);
  }
  EXPECT_EQ(tracker_.live_tasks(), 0u);
}

TEST_F(GraphAdmissionTest, SharedResourceNodesAccumulate) {
  GraphTaskSpec g;
  g.id = 1;
  g.deadline = 1.0;
  g.nodes = {GraphNode{0, demand(0.1)}, GraphNode{0, demand(0.2)}};
  g.edges = {GraphEdge{0, 1}};
  ASSERT_TRUE(controller_.try_admit(g).admitted);
  EXPECT_NEAR(tracker_.utilization(0), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(tracker_.utilization(1), 0.0);
}

TEST_F(GraphAdmissionTest, ExpiryFreesGraphCapacity) {
  ASSERT_TRUE(controller_.try_admit(fork_join(1, 1.0, 0.2)).admitted);
  EXPECT_FALSE(controller_.try_admit(fork_join(2, 1.0, 0.2)).admitted);
  sim_.run_until(1.0);
  EXPECT_TRUE(controller_.try_admit(fork_join(3, 1.0, 0.2)).admitted);
}

TEST_F(GraphAdmissionTest, DecisionReportsLhsValues) {
  const auto d = controller_.try_admit(fork_join(1, 1.0, 0.1));
  EXPECT_DOUBLE_EQ(d.lhs_before, 0.0);
  EXPECT_NEAR(d.lhs_with_task, 3 * stage_delay_factor(0.1), 1e-12);
}

TEST_F(GraphAdmissionTest, CountsAttempts) {
  (void)controller_.try_admit(fork_join(1, 1.0, 0.05));
  (void)controller_.try_admit(fork_join(2, 1.0, 0.9));
  EXPECT_EQ(controller_.attempts(), 2u);
  EXPECT_EQ(controller_.admitted(), 1u);
}

}  // namespace
}  // namespace frap::core
