// Unit tests for GraphAdmissionController (Theorem 2 admission decisions;
// end-to-end DAG soundness lives in dag_integration_test.cpp).
#include <gtest/gtest.h>

#include <vector>

#include "core/admission.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "sim/simulator.h"

namespace frap::core {
namespace {

StageDemand demand(Duration c) {
  StageDemand d;
  d.compute = c;
  return d;
}

// Fork/join over four resources; per-node compute = c, deadline = d.
GraphTaskSpec fork_join(std::uint64_t id, Duration d, Duration c) {
  GraphTaskSpec g;
  g.id = id;
  g.deadline = d;
  g.nodes = {GraphNode{0, demand(c)}, GraphNode{1, demand(c)},
             GraphNode{2, demand(c)}, GraphNode{3, demand(c)}};
  g.edges = {GraphEdge{0, 1}, GraphEdge{0, 2}, GraphEdge{1, 3},
             GraphEdge{2, 3}};
  return g;
}

class GraphAdmissionTest : public ::testing::Test {
 protected:
  GraphAdmissionTest()
      : tracker_(sim_, 4),
        controller_(sim_, tracker_, GraphRegionEvaluator(1.0, {})) {}

  sim::Simulator sim_;
  SyntheticUtilizationTracker tracker_;
  GraphAdmissionController controller_;
};

TEST_F(GraphAdmissionTest, AdmitsSmallGraphTask) {
  const auto d = controller_.try_admit(fork_join(1, 1.0, 0.05));
  EXPECT_TRUE(d.admitted);
  // Contribution 0.05 on each resource.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(tracker_.utilization(r), 0.05);
  }
  EXPECT_EQ(controller_.admitted(), 1u);
}

TEST_F(GraphAdmissionTest, LhsUsesCriticalPathNotSum) {
  // Utilization 0.3 everywhere: chain lhs would be 4 f(0.3) = 1.457 (out),
  // fork/join lhs is 3 f(0.3) = 1.093 (also out); at 0.25: chain 1.167
  // (out), fork 0.875 (in). So a fork/join task pushing all four resources
  // to ~0.25 is admitted although a 4-chain would not be.
  for (int i = 0; i < 4; ++i) {
    const auto d = controller_.try_admit(
        fork_join(static_cast<std::uint64_t>(i + 1), 1.0, 0.0625));
    EXPECT_TRUE(d.admitted) << i;
  }
  // Now at exactly 0.25 per resource: lhs = 3 f(0.25).
  const auto utilizations = tracker_.utilizations();
  for (double u : utilizations) EXPECT_NEAR(u, 0.25, 1e-12);
  GraphRegionEvaluator eval(1.0, {});
  EXPECT_NEAR(eval.lhs(fork_join(99, 1.0, 0.0), utilizations),
              3 * stage_delay_factor(0.25), 1e-12);
}

TEST_F(GraphAdmissionTest, RejectionLeavesTrackerUntouched) {
  const auto d = controller_.try_admit(fork_join(1, 1.0, 0.5));
  EXPECT_FALSE(d.admitted);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(tracker_.utilization(r), 0.0);
  }
  EXPECT_EQ(tracker_.live_tasks(), 0u);
}

TEST_F(GraphAdmissionTest, SharedResourceNodesAccumulate) {
  GraphTaskSpec g;
  g.id = 1;
  g.deadline = 1.0;
  g.nodes = {GraphNode{0, demand(0.1)}, GraphNode{0, demand(0.2)}};
  g.edges = {GraphEdge{0, 1}};
  ASSERT_TRUE(controller_.try_admit(g).admitted);
  EXPECT_NEAR(tracker_.utilization(0), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(tracker_.utilization(1), 0.0);
}

TEST_F(GraphAdmissionTest, ExpiryFreesGraphCapacity) {
  ASSERT_TRUE(controller_.try_admit(fork_join(1, 1.0, 0.2)).admitted);
  EXPECT_FALSE(controller_.try_admit(fork_join(2, 1.0, 0.2)).admitted);
  sim_.run_until(1.0);
  EXPECT_TRUE(controller_.try_admit(fork_join(3, 1.0, 0.2)).admitted);
}

TEST_F(GraphAdmissionTest, DecisionReportsLhsValues) {
  const auto d = controller_.try_admit(fork_join(1, 1.0, 0.1));
  EXPECT_DOUBLE_EQ(d.lhs_before, 0.0);
  EXPECT_NEAR(d.lhs_with_task, 3 * stage_delay_factor(0.1), 1e-12);
}

TEST_F(GraphAdmissionTest, CountsAttempts) {
  (void)controller_.try_admit(fork_join(1, 1.0, 0.05));
  (void)controller_.try_admit(fork_join(2, 1.0, 0.9));
  EXPECT_EQ(controller_.attempts(), 2u);
  EXPECT_EQ(controller_.admitted(), 1u);
}

// --------------------------------------------------- waiting + headroom ---

GraphTaskSpec single_node(std::uint64_t id, std::size_t resource, Duration d,
                          Duration c) {
  GraphTaskSpec g;
  g.id = id;
  g.deadline = d;
  g.nodes = {GraphNode{resource, demand(c)}};
  return g;
}

// Regression for the re-walk-on-expire cost: a utilization decrease at a
// resource the front waiter does NOT touch must not invoke the evaluator at
// all (gate_skips), while a decrease at a touched resource retries exactly
// once. Pinned against GraphAdmissionController::evaluations().
TEST(WaitingGraphAdmissionTest, GateSkipsDecreasesOnUntouchedResources) {
  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, 4);
  GraphAdmissionController inner(
      sim, tracker, LongPathEvaluator(std::vector<double>(4, 10.0), {}));
  WaitingGraphAdmissionController waiting(sim, inner, 20.0);
  waiting.attach();
  std::vector<std::pair<std::uint64_t, bool>> decisions;
  waiting.set_decision_callback(
      [&](const GraphTaskSpec& s, const AdmissionDecision& d) {
        decisions.emplace_back(s.id, d.admitted);
      });

  // Blocker: u_0 = 0.5 until its expiry at t = 10.
  ASSERT_TRUE(inner.try_admit(single_node(1, 0, 10.0, 5.0), sim.now())
                  .admitted);
  // Five tasks on resource 3 whose departures (mark_departed + idle reset)
  // are decreases the waiter does not care about.
  for (int i = 0; i < 5; ++i) {
    const auto id = 10 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(
        inner.try_admit(single_node(id, 3, 10.0, 0.1), sim.now()).admitted);
    sim.at(1.0 + i, [&tracker, id] {
      tracker.mark_departed(id, 3);
      tracker.on_stage_idle(3);
    });
  }
  // Waiter on resource 0: would push u_0 to 0.7, f(0.7) > 1 -> parked.
  waiting.submit(single_node(2, 0, 10.0, 2.0));
  ASSERT_EQ(waiting.pending(), 1u);
  const std::uint64_t base = inner.evaluations();
  ASSERT_EQ(base, 7u);  // 1 blocker + 5 distractors + 1 failed submit

  // All five distractor expiries fire before t = 10: every one is gated
  // out with zero evaluator invocations.
  sim.run_until(9.9);
  EXPECT_EQ(inner.evaluations(), base);
  EXPECT_EQ(waiting.gate_skips(), 5u);
  EXPECT_EQ(waiting.pending(), 1u);

  // The blocker's expiry moves f at resource 0: exactly one retry, which
  // admits the waiter (u_0 becomes 0.2).
  sim.run();
  EXPECT_EQ(inner.evaluations(), base + 1);
  EXPECT_EQ(waiting.gate_skips(), 5u);
  EXPECT_EQ(waiting.pending(), 0u);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].first, 2u);
  EXPECT_TRUE(decisions[0].second);
}

// A timed-out front waiter must promote the next waiter AND retest it
// immediately: the newcomer was never evaluated against the current state
// (FIFO queues behind the front without testing), so promotion without a
// retry could strand an admissible task until the next decrease.
TEST(WaitingGraphAdmissionTest, TimeoutPromotesAndRetestsNextWaiter) {
  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, 4);
  GraphAdmissionController inner(
      sim, tracker, LongPathEvaluator(std::vector<double>(4, 10.0), {}));
  WaitingGraphAdmissionController waiting(sim, inner, 2.0);
  waiting.attach();
  std::vector<std::pair<std::uint64_t, AdmissionDecision>> decisions;
  waiting.set_decision_callback(
      [&](const GraphTaskSpec& s, const AdmissionDecision& d) {
        decisions.emplace_back(s.id, d);
      });

  ASSERT_TRUE(inner.try_admit(single_node(1, 0, 10.0, 5.0), sim.now())
                  .admitted);
  waiting.submit(single_node(2, 0, 10.0, 2.0));   // 0.7: parked
  waiting.submit(single_node(3, 0, 10.0, 0.5));   // would fit, queued FIFO
  ASSERT_EQ(waiting.pending(), 2u);
  // The queued submit must not have evaluated (FIFO discipline).
  ASSERT_EQ(inner.evaluations(), 2u);

  sim.run_until(3.0);  // waiter 2 times out at t = 2
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].first, 2u);
  EXPECT_FALSE(decisions[0].second.admitted);
  EXPECT_EQ(decisions[0].second.reason, AdmissionDecision::Reason::kTimedOut);
  // Promotion retested waiter 3 at the timeout instant and admitted it.
  EXPECT_EQ(decisions[1].first, 3u);
  EXPECT_TRUE(decisions[1].second.admitted);
  EXPECT_EQ(decisions[1].second.decided_at, 2.0);
  EXPECT_EQ(inner.evaluations(), 3u);
  EXPECT_EQ(waiting.pending(), 0u);
  EXPECT_EQ(waiting.timed_out(), 1u);
}

}  // namespace
}  // namespace frap::core
