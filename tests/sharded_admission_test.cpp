#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/reference_admitter.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "service/quota.h"
#include "service/sharded_admission.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::service {
namespace {

core::TaskSpec make_task(std::uint64_t id, double deadline,
                         std::vector<double> computes) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  spec.stages.resize(computes.size());
  for (std::size_t i = 0; i < computes.size(); ++i) {
    spec.stages[i].compute = computes[i];
  }
  return spec;
}

// ------------------------------------------------------------- QuotaPlan ---

TEST(QuotaPlanTest, EqualSplitByDefault) {
  QuotaPlan q(4);
  ASSERT_EQ(q.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(q.weight(k), 0.25);
}

TEST(QuotaPlanTest, SetWeightsAcceptsValidPartition) {
  QuotaPlan q(3, 0.05);
  q.set_weights({0.5, 0.3, 0.2});
  EXPECT_DOUBLE_EQ(q.weight(0), 0.5);
  EXPECT_DOUBLE_EQ(q.weight(1), 0.3);
  EXPECT_DOUBLE_EQ(q.weight(2), 0.2);
}

TEST(QuotaPlanTest, ProportionalSplitsSparebyDemand) {
  const std::vector<double> demand = {3.0, 1.0};
  const std::vector<double> floor = {0.1, 0.1};
  const auto w = QuotaPlan::proportional(demand, floor);
  ASSERT_EQ(w.size(), 2u);
  // spare = 0.8, split 3:1.
  EXPECT_NEAR(w[0], 0.1 + 0.8 * 0.75, 1e-12);
  EXPECT_NEAR(w[1], 0.1 + 0.8 * 0.25, 1e-12);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
}

TEST(QuotaPlanTest, ProportionalWithZeroDemandSplitsEqually) {
  const std::vector<double> demand = {0.0, 0.0, 0.0};
  const std::vector<double> floor = {0.2, 0.1, 0.1};
  const auto w = QuotaPlan::proportional(demand, floor);
  const double spare = 1.0 - 0.4;
  EXPECT_NEAR(w[0], 0.2 + spare / 3, 1e-12);
  EXPECT_NEAR(w[1], 0.1 + spare / 3, 1e-12);
  EXPECT_NEAR(w[2], 0.1 + spare / 3, 1e-12);
}

// ------------------------------------------------------- basic semantics ---

TEST(ShardedAdmissionTest, RoutesByIdModulo) {
  ShardedAdmissionService svc(core::FeasibleRegion::deadline_monotonic(2),
                              {.num_shards = 4});
  EXPECT_EQ(svc.num_shards(), 4u);
  EXPECT_EQ(svc.route(0), 0u);
  EXPECT_EQ(svc.route(5), 1u);
  EXPECT_EQ(svc.route(7), 3u);
}

TEST(ShardedAdmissionTest, HotPathAdmitsSmallTask) {
  // Default config: a small task clears the lock-free CAS reservation and
  // is confirmed by the exact test at commit.
  ShardedAdmissionService svc(core::FeasibleRegion::deadline_monotonic(2),
                              {.num_shards = 4});
  const auto d = svc.try_admit(make_task(1, 1.0, {0.01, 0.01}), 0.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.reason, core::AdmissionDecision::Reason::kAtomicFastPath);
  EXPECT_DOUBLE_EQ(d.bound, svc.region().bound());
  const auto s = svc.stats();
  EXPECT_EQ(s.total_admits(), 1u);
  EXPECT_EQ(s.shards[svc.route(1)].atomic_admits, 1u);
  EXPECT_EQ(s.shards[svc.route(1)].admits, 0u);
  EXPECT_EQ(s.decisions, 1u);
}

TEST(ShardedAdmissionTest, AtomicPathOffRestoresLegacyReason) {
  // With the atomic path disabled the service behaves exactly as before it
  // existed: admits are reported kAdmitted on the mutex hot path.
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 4, .enable_atomic_fast_path = false});
  const auto d = svc.try_admit(make_task(1, 1.0, {0.01, 0.01}), 0.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.reason, core::AdmissionDecision::Reason::kAdmitted);
  const auto s = svc.stats();
  EXPECT_EQ(s.shards[svc.route(1)].admits, 1u);
  EXPECT_EQ(s.shards[svc.route(1)].atomic_admits, 0u);
  EXPECT_EQ(s.shards[svc.route(1)].atomic_inconclusive, 0u);
  EXPECT_EQ(s.decisions, 1u);
}

TEST(ShardedAdmissionTest, LocalRejectIsFinalWithoutFallback) {
  // A task consuming its full home-shard slice saturates the scaled view
  // (u = 0.25/0.25 = 1); with fallback disabled that is the answer.
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 4, .enable_fallback = false, .rebalance_interval = 0});
  const auto d = svc.try_admit(make_task(4, 1.0, {0.25, 0.25}), 0.0);
  EXPECT_FALSE(d.admitted);
  // The saturated scaled view is certain without any lock: the decision is
  // settled on the atomic fast path (c_j >= 1 is state-independent).
  EXPECT_EQ(d.reason, core::AdmissionDecision::Reason::kStageSaturated);
  const auto s = svc.stats();
  EXPECT_EQ(s.shards[0].atomic_rejects, 1u);
  EXPECT_EQ(s.shards[0].rejects, 0u);
  EXPECT_EQ(s.shards[0].fallback_rejects, 0u);
}

TEST(ShardedAdmissionTest, FallbackStealsQuotaForOversizedTask) {
  // Same task, fallback enabled: every shard's equal slice saturates, but
  // shrinking the three empty donors to the weight floor grows the receiver
  // to w = 1 - 3*min_weight, where u = 0.25/w < 1 passes the region test.
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 4, .rebalance_interval = 0});
  const auto d = svc.try_admit(make_task(4, 1.0, {0.25, 0.25}), 0.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.reason, core::AdmissionDecision::Reason::kQuotaFallback);
  const auto s = svc.stats();
  EXPECT_EQ(s.total_admits(), 1u);
  std::uint64_t fb = 0;
  double weight_sum = 0;
  for (const auto& sh : s.shards) {
    fb += sh.fallback_admits;
    weight_sum += sh.weight;
  }
  EXPECT_EQ(fb, 1u);
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(ShardedAdmissionTest, GlobalRejectionReportsTrueLhs) {
  // Two tasks that together exceed the whole region: the second is rejected
  // even by the fallback, and the decision carries the TRUE global LHS.
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 2, .rebalance_interval = 0});
  const auto first = svc.try_admit(make_task(2, 1.0, {0.15, 0.15}), 0.0);
  ASSERT_TRUE(first.admitted);
  const auto d = svc.try_admit(make_task(3, 1.0, {0.3, 0.3}), 0.0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason,
            core::AdmissionDecision::Reason::kQuotaFallbackRejected);
  const auto u = svc.global_utilizations(0.0);
  EXPECT_NEAR(d.lhs_before, svc.region().lhs(u), 1e-9);
  EXPECT_GT(d.lhs_with_task, d.lhs_before);
  EXPECT_DOUBLE_EQ(d.bound, svc.region().bound());
}

// ------------------------------------------------------ soundness (12k) ---

struct RandomWorkload {
  explicit RandomWorkload(std::uint64_t seed) : rng(seed) {}

  core::TaskSpec next(std::uint64_t id) {
    const std::size_t stages = 3;
    core::TaskSpec spec;
    spec.id = id;
    spec.deadline = rng.uniform(0.5, 4.0);
    spec.stages.resize(stages);
    // Mix of sparse and dense tasks; sized so the steady state hovers
    // around the region boundary (both admits and rejects occur).
    for (auto& s : spec.stages) {
      s.compute = rng.bernoulli(0.3) ? 0.0
                                     : rng.uniform(0.002, 0.05) * spec.deadline;
    }
    if (spec.stages[0].compute <= 0 && spec.stages[1].compute <= 0 &&
        spec.stages[2].compute <= 0) {
      spec.stages[0].compute = 0.05 * spec.deadline;
    }
    return spec;
  }

  util::Rng rng;
};

// The load-bearing theorem: a shard admission (local OR fallback) is always
// admitted by the unsharded reference evaluation over the same committed
// set. The mirror controller replays exactly the tasks the service admits,
// so by induction its state equals the service's true global state; every
// service admit must then pass the mirror's reference test.
TEST(ShardedAdmissionSoundnessTest, NeverAdmitsWhatGlobalReferenceRejects) {
  const auto region = core::FeasibleRegion::deadline_monotonic(3);
  ShardedAdmissionService svc(region, {.num_shards = 4});

  sim::Simulator mirror_sim;
  core::SyntheticUtilizationTracker mirror_tracker(mirror_sim, 3);
  core::AdmissionController mirror(mirror_sim, mirror_tracker, region);
  frap::testing::ReferenceAdmitter reference(mirror);

  RandomWorkload wl(20260805);
  Time now = 0.0;
  std::uint64_t admits = 0;
  std::uint64_t fallback_admits_seen = 0;
  for (std::uint64_t i = 1; i <= 12'000; ++i) {
    now += wl.rng.exponential(0.02);
    const auto spec = wl.next(i);
    const auto d = svc.try_admit(spec, now);
    if (!d.admitted) continue;
    ++admits;
    if (d.reason == core::AdmissionDecision::Reason::kQuotaFallback) {
      ++fallback_admits_seen;
    }
    mirror_sim.run_until(now);
    const auto ref = reference.try_admit(spec, now);
    ASSERT_TRUE(ref.admitted)
        << "task " << spec.id << " admitted by shard " << svc.route(spec.id)
        << " (reason " << core::to_string(d.reason)
        << ") but rejected by the global reference path: lhs_with_task="
        << ref.lhs_with_task << " bound=" << ref.bound;
  }
  // The scenario must actually exercise the region boundary and both paths.
  EXPECT_GT(admits, 500u);
  EXPECT_LT(admits, 11'500u);
  EXPECT_GT(fallback_admits_seen, 0u);

  // The mirror replayed exactly the admitted set, so the service's true
  // global utilization must match it.
  const auto u_svc = svc.global_utilizations(now);
  const auto u_ref = mirror_tracker.utilizations();
  ASSERT_EQ(u_svc.size(), u_ref.size());
  for (std::size_t j = 0; j < u_svc.size(); ++j) {
    EXPECT_NEAR(u_svc[j], u_ref[j], 1e-6) << "stage " << j;
  }
}

// The fallback path can only ADD admissions on top of pure-local quotas:
// it runs strictly after a local reject and never revokes anything. Across
// a long randomized run the fallback-enabled service must therefore admit
// at least as many tasks as the pure-local twin fed the same sequence.
// (Per-task set inclusion is not a theorem once histories diverge — the
// extra admits change later state — so this asserts the aggregate.)
TEST(ShardedAdmissionSoundnessTest, FallbackAdmitsAtLeastPureLocal) {
  const auto region = core::FeasibleRegion::deadline_monotonic(3);
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    ShardedAdmissionService with_fb(region, {.num_shards = 4});
    ShardedAdmissionService local_only(
        region,
        {.num_shards = 4, .enable_fallback = false, .rebalance_interval = 0});

    RandomWorkload wl(seed);
    Time now = 0.0;
    for (std::uint64_t i = 1; i <= 4'000; ++i) {
      now += wl.rng.exponential(0.02);
      const auto spec = wl.next(i);
      (void)with_fb.try_admit(spec, now);
      (void)local_only.try_admit(spec, now);
    }
    EXPECT_GE(with_fb.stats().total_admits(),
              local_only.stats().total_admits())
        << "seed " << seed;
  }
}

// ------------------------------------------------------------- rebalance ---

TEST(ShardedAdmissionTest, RebalanceShiftsWeightTowardLoadedShard) {
  // All arrivals target shard 0 (ids ≡ 0 mod 4). Under equal quotas the
  // shard saturates its slice; an explicit rebalance must grow its weight at
  // the expense of the idle shards.
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 4, .enable_fallback = false, .rebalance_interval = 0});
  Time now = 0.0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto d =
        svc.try_admit(make_task(4 * (i + 1), 100.0, {0.1, 0.1}), now);
    ASSERT_TRUE(d.admitted);
  }
  const double w_before = svc.stats().shards[0].weight;
  EXPECT_DOUBLE_EQ(w_before, 0.25);

  svc.rebalance(now);

  const auto s = svc.stats();
  EXPECT_EQ(s.rebalances, 1u);
  EXPECT_GT(s.shards[0].weight, w_before);
  double sum = 0;
  for (const auto& sh : s.shards) {
    EXPECT_GE(sh.weight, svc.config().min_weight - 1e-9);
    sum += sh.weight;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ShardedAdmissionTest, RebalanceUnlocksLocalAdmissionUnderSkew) {
  // With equal quotas a 0.2-per-stage task does not fit shard 0's quarter
  // slice on top of existing load; after skew-driven rebalance it does —
  // via the HOT path, without the fallback lock.
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 4, .enable_fallback = false, .rebalance_interval = 0});
  Time now = 0.0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto d =
        svc.try_admit(make_task(4 * (i + 1), 100.0, {0.1, 0.1}), now);
    ASSERT_TRUE(d.admitted);
  }
  const auto before = svc.try_admit(make_task(400, 100.0, {8.0, 8.0}), now);
  EXPECT_FALSE(before.admitted);

  svc.rebalance(now);

  const auto after = svc.try_admit(make_task(404, 100.0, {8.0, 8.0}), now);
  EXPECT_TRUE(after.admitted);
  // Locally decided (CAS reservation or exact retry inside the rounding
  // slack) — the point is that it is NOT a kQuotaFallback admission.
  EXPECT_TRUE(
      after.reason == core::AdmissionDecision::Reason::kAtomicFastPath ||
      after.reason == core::AdmissionDecision::Reason::kSlowPathFallback)
      << to_string(after.reason);
  EXPECT_GT(svc.stats().shards[0].weight, 0.25);
}

TEST(ShardedAdmissionTest, AutoRebalanceFiresOnDecisionInterval) {
  // Atomic fast-path decisions deliberately do not tick the rebalance
  // cadence (see ShardedAdmissionConfig); force every decision through the
  // slow path so the interval is exercised deterministically.
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(2),
      {.num_shards = 2,
       .enable_fallback = false,
       .rebalance_interval = 32,
       .enable_atomic_fast_path = false});
  Time now = 0.0;
  // Skewed load: everything on shard 0, big enough to beat the deadband.
  for (std::uint64_t i = 0; i < 64; ++i) {
    now += 0.001;
    (void)svc.try_admit(make_task(2 * (i + 1), 100.0, {0.008, 0.008}), now);
  }
  EXPECT_GE(svc.stats().rebalances, 1u);
}

// ---------------------------------------------------------- concurrency ---

// Stress the hot path, fallback, and auto-rebalance from many threads at
// once. Run under TSan in CI. Assertions are conservation laws: every
// attempt is counted exactly once somewhere.
TEST(ShardedAdmissionStressTest, ConcurrentCountersConserveDecisions) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 1'500;
  ShardedAdmissionService svc(
      core::FeasibleRegion::deadline_monotonic(3),
      {.num_shards = 4, .rebalance_interval = 512});

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&svc, t] {
      RandomWorkload wl(1000 + t);
      Time now = 0.0;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        now += wl.rng.exponential(0.05);
        const auto spec =
            wl.next(static_cast<std::uint64_t>(t) * 1'000'000 + i + 1);
        const auto d = svc.try_admit(spec, now);
        if (d.admitted) {
          ASSERT_LE(d.lhs_with_task, d.bound + 1e-9);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = svc.stats();
  EXPECT_EQ(s.decisions, kThreads * kPerThread);
  std::uint64_t counted = 0;
  double weight_sum = 0;
  for (const auto& sh : s.shards) {
    counted += sh.admits + sh.rejects + sh.fallback_admits +
               sh.fallback_rejects + sh.atomic_admits + sh.atomic_rejects;
    weight_sum += sh.weight;
  }
  EXPECT_EQ(counted, kThreads * kPerThread);
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);

  // The aggregate state must still be inside the region.
  Time horizon = 0.0;
  const auto u = svc.global_utilizations(horizon);
  double lhs = svc.region().lhs(u);
  EXPECT_TRUE(std::isfinite(lhs));
  EXPECT_LE(lhs, svc.region().bound() + 1e-6);
}

}  // namespace
}  // namespace frap::service
