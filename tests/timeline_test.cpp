#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "sched/stage_server.h"
#include "sched/timeline.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::sched {
namespace {

TEST(TimelineTest, ExecutedSumsIntervals) {
  Timeline t;
  t.record(1, 0.0, 2.0, 0);
  t.record(2, 2.0, 3.0, 0);
  t.record(1, 3.0, 4.5, 0);
  EXPECT_DOUBLE_EQ(t.executed(1), 3.5);
  EXPECT_DOUBLE_EQ(t.executed(2), 1.0);
  EXPECT_DOUBLE_EQ(t.executed(99), 0.0);
}

TEST(TimelineTest, OverlapDetection) {
  Timeline good;
  good.record(1, 0.0, 1.0, 0);
  good.record(2, 1.0, 2.0, 0);
  EXPECT_TRUE(good.non_overlapping());

  Timeline bad;
  bad.record(1, 0.0, 1.5, 0);
  bad.record(2, 1.0, 2.0, 0);
  EXPECT_FALSE(bad.non_overlapping());
}

TEST(TimelineTest, ZeroLengthIntervalsNeverOverlap) {
  Timeline t;
  t.record(1, 1.0, 1.0, 0);
  t.record(2, 1.0, 2.0, 0);
  EXPECT_TRUE(t.non_overlapping());
}

TEST(TimelineTest, DumpFormat) {
  Timeline t;
  t.record(7, 0.5, 1.5, 2);
  std::ostringstream os;
  t.dump(os);
  EXPECT_EQ(os.str(), "7\t0.5\t1.5\t2\n");
}

TEST(TimelineTest, ServerRecordsPreemptionBoundaries) {
  sim::Simulator sim;
  StageServer server(sim);
  Timeline timeline;
  server.set_timeline(&timeline);

  Job low(1, 10.0, {Segment{4.0, kNoLock}});
  Job high(2, 1.0, {Segment{2.0, kNoLock}});
  sim.at(0.0, [&] { server.submit(low); });
  sim.at(1.0, [&] { server.submit(high); });
  sim.run();

  // Expected Gantt: low [0,1), high [1,3), low [3,6).
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].job_id, 1u);
  EXPECT_DOUBLE_EQ(timeline[0].start, 0.0);
  EXPECT_DOUBLE_EQ(timeline[0].end, 1.0);
  EXPECT_EQ(timeline[1].job_id, 2u);
  EXPECT_DOUBLE_EQ(timeline[1].end, 3.0);
  EXPECT_EQ(timeline[2].job_id, 1u);
  EXPECT_DOUBLE_EQ(timeline[2].start, 3.0);
  EXPECT_DOUBLE_EQ(timeline[2].end, 6.0);
  EXPECT_TRUE(timeline.non_overlapping());
  EXPECT_DOUBLE_EQ(timeline.executed(1), 4.0);
  EXPECT_DOUBLE_EQ(timeline.executed(2), 2.0);
}

TEST(TimelineTest, SegmentsAreDistinguished) {
  sim::Simulator sim;
  StageServer server(sim);
  Timeline timeline;
  server.set_timeline(&timeline);
  Job job(1, 1.0, {Segment{1.0, kNoLock}, Segment{2.0, kNoLock}});
  sim.at(0.0, [&] { server.submit(job); });
  sim.run();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].segment, 0u);
  EXPECT_EQ(timeline[1].segment, 1u);
}

// Randomized schedule-consistency property: for arbitrary job soups, the
// recorded Gantt never overlaps and every job's executed time equals its
// total demand.
class TimelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TimelinePropertyTest, GanttIsConsistentOnRandomJobSets) {
  util::Rng rng(GetParam() * 31 + 3);
  sim::Simulator sim;
  StageServer server(sim);
  Timeline timeline;
  server.set_timeline(&timeline);

  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<Duration> demand;
  Time t = 0;
  for (int i = 0; i < 50; ++i) {
    t += rng.exponential(0.5);
    const Duration len = rng.exponential(0.8);
    demand.push_back(len);
    jobs.push_back(std::make_unique<Job>(
        static_cast<std::uint64_t>(i + 1), rng.uniform01(),
        std::vector<Segment>{Segment{len, kNoLock}}));
    Job* j = jobs.back().get();
    sim.at(t, [&server, j] { server.submit(*j); });
  }
  sim.run();

  EXPECT_TRUE(timeline.non_overlapping());
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR(timeline.executed(static_cast<std::uint64_t>(i + 1)),
                demand[static_cast<std::size_t>(i)], 1e-9)
        << "job " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace frap::sched
