#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/task.h"
#include "pipeline/pipeline_runtime.h"
#include "pipeline/trace.h"
#include "sim/simulator.h"

namespace frap::pipeline {
namespace {

TEST(TraceLogTest, RecordsInOrder) {
  TraceLog log;
  log.record(1.0, TraceEventKind::kArrival, 7);
  log.record(2.0, TraceEventKind::kAdmit, 7);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, TraceEventKind::kArrival);
  EXPECT_EQ(log[1].kind, TraceEventKind::kAdmit);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLogTest, RingModeDropsOldest) {
  TraceLog log(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    log.record(static_cast<Time>(i), TraceEventKind::kArrival, i);
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  // The survivors are tasks 2, 3, 4 — check via per-task query.
  EXPECT_TRUE(log.for_task(0).empty());
  EXPECT_TRUE(log.for_task(1).empty());
  EXPECT_EQ(log.for_task(2).size(), 1u);
  EXPECT_EQ(log.for_task(4).size(), 1u);
}

TEST(TraceLogTest, ForTaskFiltersAndPreservesOrder) {
  TraceLog log;
  log.record(1.0, TraceEventKind::kRelease, 1);
  log.record(2.0, TraceEventKind::kRelease, 2);
  log.record(3.0, TraceEventKind::kStageDeparture, 1, 0);
  log.record(4.0, TraceEventKind::kComplete, 1, 0);
  const auto events = log.for_task(1);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kRelease);
  EXPECT_EQ(events[1].kind, TraceEventKind::kStageDeparture);
  EXPECT_EQ(events[2].kind, TraceEventKind::kComplete);
}

TEST(TraceLogTest, CountByKind) {
  TraceLog log;
  log.record(1.0, TraceEventKind::kAdmit, 1);
  log.record(2.0, TraceEventKind::kAdmit, 2);
  log.record(3.0, TraceEventKind::kReject, 3);
  EXPECT_EQ(log.count(TraceEventKind::kAdmit), 2u);
  EXPECT_EQ(log.count(TraceEventKind::kReject), 1u);
  EXPECT_EQ(log.count(TraceEventKind::kShed), 0u);
}

TEST(TraceLogTest, DumpIsTabSeparated) {
  TraceLog log;
  log.record(1.5, TraceEventKind::kComplete, 9, 1);
  std::ostringstream os;
  log.dump(os);
  EXPECT_EQ(os.str(), "1.5\tcomplete\t9\t1\n");
}

TEST(TraceLogTest, ClearResets) {
  TraceLog log(2);
  log.record(1.0, TraceEventKind::kArrival, 1);
  log.record(2.0, TraceEventKind::kArrival, 2);
  log.record(3.0, TraceEventKind::kArrival, 3);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLogTest, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(TraceEventKind::kArrival), "arrival");
  EXPECT_STREQ(to_string(TraceEventKind::kAdmit), "admit");
  EXPECT_STREQ(to_string(TraceEventKind::kReject), "reject");
  EXPECT_STREQ(to_string(TraceEventKind::kRelease), "release");
  EXPECT_STREQ(to_string(TraceEventKind::kStageDeparture),
               "stage_departure");
  EXPECT_STREQ(to_string(TraceEventKind::kComplete), "complete");
  EXPECT_STREQ(to_string(TraceEventKind::kShed), "shed");
}

TEST(TraceRuntimeTest, RuntimeEmitsLifecycleEvents) {
  sim::Simulator sim;
  PipelineRuntime runtime(sim, 2, nullptr);
  TraceLog log;
  runtime.set_trace(&log);

  core::TaskSpec spec;
  spec.id = 42;
  spec.deadline = 10.0;
  spec.stages.resize(2);
  spec.stages[0].compute = 1.0;
  spec.stages[1].compute = 2.0;
  sim.at(0.0, [&] { runtime.start_task(spec, 10.0); });
  sim.run();

  const auto events = log.for_task(42);
  ASSERT_EQ(events.size(), 4u);  // release, 2 departures, complete
  EXPECT_EQ(events[0].kind, TraceEventKind::kRelease);
  EXPECT_DOUBLE_EQ(events[0].time, 0.0);
  EXPECT_EQ(events[1].kind, TraceEventKind::kStageDeparture);
  EXPECT_DOUBLE_EQ(events[1].time, 1.0);
  EXPECT_EQ(events[1].detail, 0u);
  EXPECT_EQ(events[2].kind, TraceEventKind::kStageDeparture);
  EXPECT_DOUBLE_EQ(events[2].time, 3.0);
  EXPECT_EQ(events[3].kind, TraceEventKind::kComplete);
  EXPECT_EQ(events[3].detail, 0u);  // no miss
}

TEST(TraceRuntimeTest, MissAndShedAreRecorded) {
  sim::Simulator sim;
  PipelineRuntime runtime(sim, 1, nullptr);
  TraceLog log;
  runtime.set_trace(&log);

  core::TaskSpec late;
  late.id = 1;
  late.deadline = 0.5;
  late.stages.resize(1);
  late.stages[0].compute = 1.0;
  core::TaskSpec doomed = late;
  doomed.id = 2;
  doomed.deadline = 10.0;

  sim.at(0.0, [&] {
    runtime.start_task(late, 0.5);
    runtime.start_task(doomed, 10.0);
  });
  sim.at(0.2, [&] { runtime.abort_task(2); });
  sim.run();

  EXPECT_EQ(log.count(TraceEventKind::kShed), 1u);
  const auto done = log.for_task(1);
  EXPECT_EQ(done.back().kind, TraceEventKind::kComplete);
  EXPECT_EQ(done.back().detail, 1u);  // missed
}

}  // namespace
}  // namespace frap::pipeline
