#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "sched/pooled_stage_server.h"
#include "sched/timeline.h"
#include "sched/stage_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::sched {
namespace {

struct Completion {
  std::uint64_t id;
  Time at;
};

class PooledServerTest : public ::testing::Test {
 protected:
  void build(std::size_t m) {
    server_ = std::make_unique<PooledStageServer>(sim_, m, "pool");
    server_->set_on_complete(
        [this](Job& j) { completions_.push_back({j.id, sim_.now()}); });
    server_->set_on_idle([this] { ++idle_transitions_; });
  }

  Job& job(std::uint64_t id, PriorityValue prio, Duration len) {
    jobs_.push_back(std::make_unique<Job>(
        id, prio, std::vector<Segment>{Segment{len, kNoLock}}));
    return *jobs_.back();
  }

  sim::Simulator sim_;
  std::unique_ptr<PooledStageServer> server_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<Completion> completions_;
  int idle_transitions_ = 0;
};

TEST_F(PooledServerTest, TwoJobsRunInParallelOnTwoProcessors) {
  build(2);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 1.0, 2.0));
    server_->submit(job(2, 2.0, 2.0));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 2.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 2.0);  // parallel, not serial
}

TEST_F(PooledServerTest, ThirdJobWaitsOnTwoProcessors) {
  build(2);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 1.0, 2.0));
    server_->submit(job(2, 2.0, 2.0));
    server_->submit(job(3, 3.0, 1.0));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  // Job 3 starts only when a processor frees at t=2.
  EXPECT_EQ(completions_[2].id, 3u);
  EXPECT_DOUBLE_EQ(completions_[2].at, 3.0);
}

TEST_F(PooledServerTest, PreemptsLowestPriorityRunningJob) {
  build(2);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 5.0, 4.0));
    server_->submit(job(2, 6.0, 4.0));
  });
  // More urgent arrival at t=1 preempts job 2 (the least urgent runner).
  sim_.at(1.0, [&] { server_->submit(job(3, 1.0, 1.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_EQ(completions_[0].id, 3u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 2.0);
  // Job 1 was never preempted: finishes at 4. Job 2 lost [1,2): finishes 5.
  EXPECT_EQ(completions_[1].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 4.0);
  EXPECT_EQ(completions_[2].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[2].at, 5.0);
  EXPECT_EQ(server_->preemptions(), 1u);
}

TEST_F(PooledServerTest, PoolUtilizationAveragesProcessors) {
  build(2);
  sim_.at(0.0, [&] { server_->submit(job(1, 1.0, 3.0)); });
  sim_.run();
  sim_.run_until(6.0);
  // One processor busy 3 of 6 seconds, the other idle: pool = 0.25.
  EXPECT_DOUBLE_EQ(server_->pool_utilization(0.0, 6.0), 0.25);
}

TEST_F(PooledServerTest, AbortFreesProcessor) {
  build(1);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 1.0, 5.0));
    server_->submit(job(2, 2.0, 1.0));
  });
  sim_.at(1.0, [&] { server_->abort(*jobs_[0]); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].id, 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 2.0);
}

TEST_F(PooledServerTest, IdleCallbackFiresWhenPoolDrains) {
  build(3);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 1.0, 1.0));
    server_->submit(job(2, 2.0, 2.0));
  });
  sim_.run();
  EXPECT_EQ(idle_transitions_, 1);
  EXPECT_TRUE(server_->idle());
}

TEST_F(PooledServerTest, WorkConservation) {
  build(3);
  util::Rng rng(11);
  Duration total = 0;
  sim_.at(0.0, [&] {
    for (int i = 0; i < 20; ++i) {
      const Duration len = rng.uniform(0.1, 2.0);
      total += len;
      server_->submit(job(static_cast<std::uint64_t>(i + 1),
                          rng.uniform01(), len));
    }
  });
  sim_.run();
  EXPECT_EQ(completions_.size(), 20u);
  Duration busy = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    busy += server_->meter(p).busy_time(0.0, sim_.now() + 1.0);
  }
  EXPECT_NEAR(busy, total, 1e-9);
}

TEST_F(PooledServerTest, TimelineCapturesParallelIntervals) {
  build(2);
  Timeline timeline;
  server_->set_timeline(&timeline);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 1.0, 2.0));
    server_->submit(job(2, 2.0, 3.0));
  });
  sim_.run();
  EXPECT_DOUBLE_EQ(timeline.executed(1), 2.0);
  EXPECT_DOUBLE_EQ(timeline.executed(2), 3.0);
  // Two processors: intervals overlap across rows (this is legal for a
  // pool, so non_overlapping() is expected to be false here).
  EXPECT_FALSE(timeline.non_overlapping());
}

TEST_F(PooledServerTest, SpeedScalesThePool) {
  build(2);
  server_->set_speed(0.5);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 1.0, 2.0));
    server_->submit(job(2, 2.0, 2.0));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 4.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 4.0);
}

TEST_F(PooledServerTest, SpeedChangeMidRunBanksAllProcessors) {
  build(2);
  sim_.at(0.0, [&] {
    server_->submit(job(1, 1.0, 4.0));
    server_->submit(job(2, 2.0, 4.0));
  });
  sim_.at(2.0, [&] { server_->set_speed(2.0); });
  sim_.run();
  // 2s at 1x leaves 2s demand each; at 2x that is 1s wall: done at 3.
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 3.0);
}

// m = 1 must reproduce the uniprocessor StageServer exactly.
class PooledVsUniprocessorTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PooledVsUniprocessorTest, SingleProcessorPoolMatchesStageServer) {
  util::Rng rng(GetParam() * 77 + 5);
  struct Spec {
    std::uint64_t id;
    Time arrival;
    PriorityValue prio;
    Duration len;
  };
  std::vector<Spec> specs;
  Time t = 0;
  for (int i = 0; i < 40; ++i) {
    t += rng.exponential(1.0);
    specs.push_back(Spec{static_cast<std::uint64_t>(i + 1), t,
                         static_cast<PriorityValue>(rng.uniform_int(1, 3)),
                         rng.exponential(1.0)});
  }

  auto run_uni = [&] {
    sim::Simulator sim;
    StageServer server(sim, "uni");
    std::map<std::uint64_t, Time> done;
    server.set_on_complete([&](Job& j) { done[j.id] = sim.now(); });
    std::vector<std::unique_ptr<Job>> jobs;
    for (const auto& s : specs) {
      jobs.push_back(std::make_unique<Job>(
          s.id, s.prio, std::vector<Segment>{Segment{s.len, kNoLock}}));
      Job* j = jobs.back().get();
      sim.at(s.arrival, [&server, j] { server.submit(*j); });
    }
    sim.run();
    return done;
  };
  auto run_pool = [&] {
    sim::Simulator sim;
    PooledStageServer server(sim, 1, "pool");
    std::map<std::uint64_t, Time> done;
    server.set_on_complete([&](Job& j) { done[j.id] = sim.now(); });
    std::vector<std::unique_ptr<Job>> jobs;
    for (const auto& s : specs) {
      jobs.push_back(std::make_unique<Job>(
          s.id, s.prio, std::vector<Segment>{Segment{s.len, kNoLock}}));
      Job* j = jobs.back().get();
      sim.at(s.arrival, [&server, j] { server.submit(*j); });
    }
    sim.run();
    return done;
  };

  const auto uni = run_uni();
  const auto pool = run_pool();
  ASSERT_EQ(uni.size(), pool.size());
  for (const auto& [id, at] : uni) {
    EXPECT_NEAR(pool.at(id), at, 1e-9) << "job " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PooledVsUniprocessorTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST_F(PooledServerTest, MoreProcessorsNeverHurtMakespan) {
  util::Rng rng(123);
  struct Spec {
    PriorityValue prio;
    Duration len;
  };
  std::vector<Spec> specs;
  for (int i = 0; i < 30; ++i) {
    specs.push_back(Spec{rng.uniform01(), rng.uniform(0.1, 1.0)});
  }
  Time last_makespan = 1e18;
  for (std::size_t m : {1u, 2u, 4u}) {
    sim::Simulator sim;
    PooledStageServer server(sim, m);
    Time makespan = 0;
    server.set_on_complete([&](Job&) { makespan = sim.now(); });
    std::vector<std::unique_ptr<Job>> jobs;
    sim.at(0.0, [&] {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        jobs.push_back(std::make_unique<Job>(
            i + 1, specs[i].prio,
            std::vector<Segment>{Segment{specs[i].len, kNoLock}}));
        server.submit(*jobs.back());
      }
    });
    sim.run();
    EXPECT_LE(makespan, last_makespan + 1e-9) << "m=" << m;
    last_makespan = makespan;
  }
}

}  // namespace
}  // namespace frap::sched
