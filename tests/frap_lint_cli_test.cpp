// End-to-end tests for the frap_lint DRIVER (exit codes, --emit-baseline
// round-trip, --list-rules, fixture-dir skipping). The analyzer itself is
// covered by frap_lint_test.cpp against the checked-in fixtures; here the
// real binary (FRAP_LINT_BIN) runs against a throwaway tree so the ctest
// gate's contract — 0 clean / 1 findings / 2 usage — stays pinned.
#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string out;  // stdout + stderr, interleaved
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(FRAP_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  RunResult r;
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
    r.out.append(buf, n);
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

void write_file(const fs::path& p, const std::string& text) {
  fs::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << "cannot write " << p;
}

// A throwaway repo root with one clean file, one file carrying an active
// R1 finding, and a fixtures dir that the walk must skip.
class FrapLintCli : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("frap_lint_cli_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    write_file(root_ / "src/util/clean.cpp",
               "int add(int a, int b) { return a + b; }\n");
    write_file(root_ / "src/util/dirty.cpp",
               "double f(double deadline) { return 1.0 / deadline; }\n");
    write_file(root_ / "tools/frap_lint/fixtures/skip_me.cpp",
               "double g(double deadline) { return 1.0 / deadline; }\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_arg() const { return "--root " + root_.string(); }

  fs::path root_;
};

TEST_F(FrapLintCli, ExitsZeroOnCleanTarget) {
  const auto r = run_lint(root_arg() + " src/util/clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("0 active finding(s)"), std::string::npos) << r.out;
}

TEST_F(FrapLintCli, ExitsOneAndReportsActiveFindings) {
  const auto r = run_lint(root_arg() + " src");
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("src/util/dirty.cpp:1: [unsafe-division]"),
            std::string::npos)
      << r.out;
}

TEST_F(FrapLintCli, ExitsTwoOnUsageAndMissingTargets) {
  EXPECT_EQ(run_lint("").exit_code, 2);                       // no args
  EXPECT_EQ(run_lint(root_arg()).exit_code, 2);               // no targets
  EXPECT_EQ(run_lint("--no-such-flag src").exit_code, 2);     // bad flag
  EXPECT_EQ(run_lint(root_arg() + " no/such/dir").exit_code, 2);
  EXPECT_EQ(
      run_lint(root_arg() + " --baseline no/such/baseline.txt src").exit_code,
      2);
}

TEST_F(FrapLintCli, ListRulesPrintsEveryRule) {
  const auto r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"unsafe-division", "rederived-admission", "float-equality",
        "missing-nodiscard", "nondeterminism", "rounding-direction",
        "seqlock-protocol", "memory-order-audit", "hotpath-alloc",
        "bad-suppression", "bad-contract"}) {
    EXPECT_NE(r.out.find(std::string(rule) + "\n"), std::string::npos)
        << "missing rule " << rule << " in:\n"
        << r.out;
  }
}

TEST_F(FrapLintCli, EmitBaselineRoundTrips) {
  const auto emitted = run_lint(root_arg() + " --emit-baseline src");
  EXPECT_EQ(emitted.exit_code, 0) << emitted.out;
  EXPECT_NE(emitted.out.find("src/util/dirty.cpp:unsafe-division"),
            std::string::npos)
      << emitted.out;

  const fs::path baseline = root_ / "baseline.txt";
  write_file(baseline, emitted.out);

  // Grandfathered: the same tree now exits clean, and the finding is
  // counted as baselined rather than active.
  const auto gated =
      run_lint(root_arg() + " --baseline " + baseline.string() + " src");
  EXPECT_EQ(gated.exit_code, 0) << gated.out;
  EXPECT_NE(gated.out.find("0 active finding(s)"), std::string::npos)
      << gated.out;
  EXPECT_NE(gated.out.find("1 baselined"), std::string::npos) << gated.out;
}

TEST_F(FrapLintCli, FixtureDirectoryIsSkippedByTheWalk) {
  // tools/ holds a deliberately dirty fixture; the walk must not lint it
  // (the unit tests lint fixtures under pretend src/ paths instead).
  const auto r = run_lint(root_arg() + " tools");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("0 file(s)"), std::string::npos) << r.out;
}

}  // namespace
