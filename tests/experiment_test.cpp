// Surface tests for the experiment driver (configuration handling and
// cross-mode consistency; soundness itself is covered by integration and
// theorem-validation tests).
#include <gtest/gtest.h>

#include "pipeline/experiment.h"

namespace frap::pipeline {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.workload =
      workload::PipelineWorkloadConfig::balanced(2, 10 * kMilli, 1.0, 50.0);
  cfg.seed = 3;
  cfg.sim_duration = 10.0;
  cfg.warmup = 1.0;
  return cfg;
}

TEST(ExperimentTest, ProducesConsistentCounts) {
  const auto r = run_experiment(small_config());
  EXPECT_GT(r.offered, 0u);
  EXPECT_LE(r.admitted, r.offered);
  EXPECT_EQ(r.completed, r.admitted);  // pipeline drains after arrivals stop
  EXPECT_GT(r.events, r.offered);      // each task needs several events
  EXPECT_EQ(r.stage_utilization.size(), 2u);
}

TEST(ExperimentTest, RatiosAreRatios) {
  const auto r = run_experiment(small_config());
  EXPECT_GE(r.acceptance_ratio, 0.0);
  EXPECT_LE(r.acceptance_ratio, 1.0);
  EXPECT_GE(r.miss_ratio, 0.0);
  EXPECT_LE(r.miss_ratio, 1.0);
  EXPECT_NEAR(r.acceptance_ratio,
              static_cast<double>(r.admitted) /
                  static_cast<double>(r.offered),
              1e-12);
}

TEST(ExperimentTest, NoneModeAdmitsEverything) {
  auto cfg = small_config();
  cfg.admission = AdmissionMode::kNone;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.admitted, r.offered);
  EXPECT_DOUBLE_EQ(r.acceptance_ratio, 1.0);
}

TEST(ExperimentTest, ModesAdmitDifferently) {
  auto exact = small_config();
  auto approx = exact;
  approx.admission = AdmissionMode::kApproximate;
  auto split = exact;
  split.admission = AdmissionMode::kDeadlineSplit;
  const auto re = run_experiment(exact);
  const auto ra = run_experiment(approx);
  const auto rs = run_experiment(split);
  // Same arrivals (same seed): offered counts match.
  EXPECT_EQ(re.offered, ra.offered);
  EXPECT_EQ(re.offered, rs.offered);
  // Split is the most conservative on this workload.
  EXPECT_LT(rs.admitted, re.admitted);
}

TEST(ExperimentTest, BottleneckIsMaxOfStages) {
  auto cfg = small_config();
  cfg.workload.mean_compute = {10 * kMilli, 2 * kMilli};
  const auto r = run_experiment(cfg);
  double max_u = 0;
  for (double u : r.stage_utilization) max_u = std::max(max_u, u);
  EXPECT_DOUBLE_EQ(r.bottleneck_utilization, max_u);
  // Stage 0 carries 5x the work: it must be the bottleneck.
  EXPECT_GT(r.stage_utilization[0], r.stage_utilization[1]);
}

TEST(ExperimentTest, SeedChangesResults) {
  auto a = small_config();
  auto b = small_config();
  b.seed = 4;
  const auto ra = run_experiment(a);
  const auto rb = run_experiment(b);
  EXPECT_NE(ra.offered, rb.offered);
}

TEST(ExperimentTest, RandomPolicyRunsAndIsSound) {
  auto cfg = small_config();
  cfg.priority = PriorityMode::kRandom;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.completed, 0u);
  EXPECT_DOUBLE_EQ(r.miss_ratio, 0.0);
}

TEST(ExperimentTest, PatienceZeroAndPositiveBothSound) {
  auto with = small_config();
  with.patience = 100 * kMilli;
  const auto r = run_experiment(with);
  EXPECT_DOUBLE_EQ(r.miss_ratio, 0.0);
  EXPECT_EQ(r.completed, r.admitted);
}

TEST(ExperimentTest, EdfAndLlfPoliciesRunAndStaySound) {
  // Dynamic dispatch policies keep the DM admission region (alpha = 1), and
  // uniprocessor EDF meets every deadline whenever fixed-priority DM does —
  // so an admitted workload must stay miss-free under both.
  for (const auto mode : {PriorityMode::kEdf, PriorityMode::kLlf}) {
    auto cfg = small_config();
    cfg.priority = mode;
    const auto r = run_experiment(cfg);
    EXPECT_GT(r.completed, 0u);
    EXPECT_DOUBLE_EQ(r.miss_ratio, 0.0);
    EXPECT_EQ(r.completed, r.admitted);
  }
}

TEST(ExperimentTest, PooledStagesRunUnderEveryPolicy) {
  // procs_per_stage > 1 swaps StageServer for PooledStageServer (gEDF when
  // combined with kEdf). Admission charges each stage as a single resource,
  // so the region stays conservative and nothing should miss.
  for (const auto mode :
       {PriorityMode::kDeadlineMonotonic, PriorityMode::kEdf}) {
    auto cfg = small_config();
    cfg.priority = mode;
    cfg.procs_per_stage = 2;
    const auto r = run_experiment(cfg);
    EXPECT_GT(r.completed, 0u);
    EXPECT_DOUBLE_EQ(r.miss_ratio, 0.0);
  }
}

TEST(ExperimentTest, EdfSeesSameArrivalsAsDm) {
  // Same seed, same arrival process: the OFFERED stream is identical under
  // every policy. Admitted counts may differ slightly — dispatch order
  // shifts downstream completion times, which feed the idle-reset tracker —
  // but both must stay sound (zero misses, drain completely).
  auto dm = small_config();
  auto edf = small_config();
  edf.priority = PriorityMode::kEdf;
  const auto rd = run_experiment(dm);
  const auto re = run_experiment(edf);
  EXPECT_EQ(rd.offered, re.offered);
  EXPECT_DOUBLE_EQ(rd.miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(re.miss_ratio, 0.0);
  EXPECT_EQ(re.completed, re.admitted);
}

TEST(ExperimentTest, LongerSimulationOffersMore) {
  auto shorter = small_config();
  auto longer = small_config();
  longer.sim_duration = 20.0;
  const auto rs = run_experiment(shorter);
  const auto rl = run_experiment(longer);
  EXPECT_GT(rl.offered, rs.offered);
}

}  // namespace
}  // namespace frap::pipeline
