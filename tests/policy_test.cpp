// The pluggable scheduling-policy API: registry behavior, the typed
// StageListener surface, and hand-computed EDF / LLF / gEDF schedules
// validated through Gantt (Timeline) capture — the validation style of the
// fixed-priority -> EDF retrofits this layer follows.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sched/gantt.h"
#include "sched/policy.h"
#include "sched/pooled_stage_server.h"
#include "sched/stage_server.h"
#include "sched/timeline.h"
#include "sim/simulator.h"

namespace frap::sched {
namespace {

struct Completion {
  std::uint64_t id;
  Time at;
};

// ---------------------------------------------------------------------------
// Policy registry & metadata.

TEST(PolicyRegistryTest, NamesAndModes) {
  EXPECT_EQ(fixed_priority_policy().name(), "fixed");
  EXPECT_EQ(edf_policy().name(), "edf");
  EXPECT_EQ(llf_policy().name(), "llf");

  EXPECT_EQ(fixed_priority_policy().key_mode(), KeyMode::kStatic);
  EXPECT_EQ(edf_policy().key_mode(), KeyMode::kDynamic);
  EXPECT_EQ(llf_policy().key_mode(), KeyMode::kDynamic);

  EXPECT_TRUE(fixed_priority_policy().supports_locks());
  EXPECT_FALSE(edf_policy().supports_locks());
  EXPECT_FALSE(llf_policy().supports_locks());
}

TEST(PolicyRegistryTest, LookupByNameAndAliases) {
  EXPECT_EQ(policy_by_name("fixed"), &fixed_priority_policy());
  EXPECT_EQ(policy_by_name("fp"), &fixed_priority_policy());
  EXPECT_EQ(policy_by_name("dm"), &fixed_priority_policy());
  EXPECT_EQ(policy_by_name("edf"), &edf_policy());
  EXPECT_EQ(policy_by_name("llf"), &llf_policy());
  EXPECT_EQ(policy_by_name("rms"), nullptr);
  EXPECT_EQ(policy_by_name(""), nullptr);
}

TEST(PolicyRegistryTest, CanonicalNamesRoundTrip) {
  for (std::string_view name : policy_names()) {
    const SchedulingPolicy* p = policy_by_name(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
  }
}

TEST(PolicyKeyTest, DispatchKeyValues) {
  Job job(1, 7.0, {Segment{2.0, kNoLock}});
  job.absolute_deadline = 12.0;
  const JobView view{&job, 2.0};
  EXPECT_DOUBLE_EQ(fixed_priority_policy().dispatch_key(view, 3.0), 7.0);
  EXPECT_DOUBLE_EQ(edf_policy().dispatch_key(view, 3.0), 12.0);
  // laxity = deadline - now - remaining = 12 - 3 - 2.
  EXPECT_DOUBLE_EQ(llf_policy().dispatch_key(view, 3.0), 7.0);
}

// ---------------------------------------------------------------------------
// Typed listener surface.

class RecordingListener : public StageListener {
 public:
  void on_job_complete(StageExecutor& stage, Job& job) override {
    completed_ids.push_back(job.id);
    completion_tags.push_back(stage.tag());
  }
  void on_stage_idle(StageExecutor& stage) override {
    idle_tags.push_back(stage.tag());
  }

  std::vector<std::uint64_t> completed_ids;
  std::vector<std::size_t> completion_tags;
  std::vector<std::size_t> idle_tags;
};

TEST(StageListenerTest, TypedListenerReceivesTaggedCallbacks) {
  sim::Simulator sim;
  StageServer server(sim, "tagged");
  server.set_tag(7);
  RecordingListener listener;
  server.set_listener(&listener);

  Job job(1, 5.0, {Segment{2.0, kNoLock}});
  sim.at(0.0, [&] { server.submit(job); });
  sim.run();

  ASSERT_EQ(listener.completed_ids.size(), 1u);
  EXPECT_EQ(listener.completed_ids[0], 1u);
  ASSERT_EQ(listener.completion_tags.size(), 1u);
  EXPECT_EQ(listener.completion_tags[0], 7u);
  ASSERT_EQ(listener.idle_tags.size(), 1u);
  EXPECT_EQ(listener.idle_tags[0], 7u);
  EXPECT_EQ(server.policy().name(), "fixed");
}

TEST(StageListenerTest, TypedListenerReplacesLegacyShims) {
  sim::Simulator sim;
  StageServer server(sim, "shimmed");
  int legacy_completions = 0;
  server.set_on_complete([&](Job&) { ++legacy_completions; });
  RecordingListener listener;
  server.set_listener(&listener);  // displaces the legacy adapter

  Job job(1, 5.0, {Segment{1.0, kNoLock}});
  sim.at(0.0, [&] { server.submit(job); });
  sim.run();

  EXPECT_EQ(legacy_completions, 0);
  EXPECT_EQ(listener.completed_ids.size(), 1u);
}

// ---------------------------------------------------------------------------
// Hand-computed EDF schedules (uniprocessor).

class PolicyScheduleTest : public ::testing::Test {
 protected:
  Job& make_job(std::uint64_t id, Duration len, Time absolute_deadline) {
    jobs_.push_back(
        std::make_unique<Job>(id, 0.0, std::vector<Segment>{
                                           Segment{len, kNoLock}}));
    jobs_.back()->absolute_deadline = absolute_deadline;
    return *jobs_.back();
  }

  void expect_interval(const Timeline& tl, std::size_t i, std::uint64_t job,
                       Time start, Time end) {
    ASSERT_LT(i, tl.size());
    EXPECT_EQ(tl[i].job_id, job) << "interval " << i;
    EXPECT_DOUBLE_EQ(tl[i].start, start) << "interval " << i;
    EXPECT_DOUBLE_EQ(tl[i].end, end) << "interval " << i;
  }

  sim::Simulator sim_;
  std::vector<std::unique_ptr<Job>> jobs_;
  Timeline timeline_;
};

TEST_F(PolicyScheduleTest, EdfPreemptsByAbsoluteDeadline) {
  // J1: release 0, 10s of work, deadline 20. J2: release 2, 3s, deadline 6.
  // EDF: J1 [0,2), J2 [2,5), J1 [5,13). Fixed-priority with equal priority
  // values would have run J1 to completion first.
  StageServer server(sim_, "edf", edf_policy());
  server.set_timeline(&timeline_);
  sim_.at(0.0, [&] { server.submit(make_job(1, 10.0, 20.0)); });
  sim_.at(2.0, [&] { server.submit(make_job(2, 3.0, 6.0)); });
  sim_.run();

  ASSERT_EQ(timeline_.size(), 3u);
  expect_interval(timeline_, 0, 1, 0.0, 2.0);
  expect_interval(timeline_, 1, 2, 2.0, 5.0);
  expect_interval(timeline_, 2, 1, 5.0, 13.0);
  EXPECT_EQ(server.preemptions(), 1u);
  EXPECT_TRUE(timeline_.non_overlapping());
}

TEST_F(PolicyScheduleTest, EdfThreeTaskHandComputedSchedule) {
  // J1: release 0, 4s, deadline 16; J2: release 1, 2s, deadline 5;
  // J3: release 2, 3s, deadline 10.
  //   t=1: J2 (d=5) preempts J1 (d=16), runs [1,3).
  //   t=3: J3 (d=10) beats J1 (d=16), runs [3,6).
  //   t=6: J1 resumes [6,9).
  StageServer server(sim_, "edf", edf_policy());
  server.set_timeline(&timeline_);
  sim_.at(0.0, [&] { server.submit(make_job(1, 4.0, 16.0)); });
  sim_.at(1.0, [&] { server.submit(make_job(2, 2.0, 5.0)); });
  sim_.at(2.0, [&] { server.submit(make_job(3, 3.0, 10.0)); });
  sim_.run();

  ASSERT_EQ(timeline_.size(), 4u);
  expect_interval(timeline_, 0, 1, 0.0, 1.0);
  expect_interval(timeline_, 1, 2, 1.0, 3.0);
  expect_interval(timeline_, 2, 3, 3.0, 6.0);
  expect_interval(timeline_, 3, 1, 6.0, 9.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(1), 4.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(2), 2.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(3), 3.0);
}

TEST_F(PolicyScheduleTest, EdfEqualDeadlinesFallBackToFifo) {
  StageServer server(sim_, "edf", edf_policy());
  server.set_timeline(&timeline_);
  sim_.at(0.0, [&] {
    server.submit(make_job(1, 1.0, 10.0));
    server.submit(make_job(2, 1.0, 10.0));
  });
  sim_.run();

  ASSERT_EQ(timeline_.size(), 2u);
  expect_interval(timeline_, 0, 1, 0.0, 1.0);
  expect_interval(timeline_, 1, 2, 1.0, 2.0);
  EXPECT_EQ(server.preemptions(), 0u);
}

// ---------------------------------------------------------------------------
// Hand-computed LLF schedules.

TEST_F(PolicyScheduleTest, LlfPreemptsOnTightLaxity) {
  // J1: release 0, 8s, deadline 20 (laxity 12). J2: release 4, 2s,
  // deadline 8: at t=4 laxity(J1) = 20-4-4 = 12, laxity(J2) = 8-4-2 = 2,
  // so J2 preempts: J1 [0,4), J2 [4,6), J1 [6,10).
  StageServer server(sim_, "llf", llf_policy());
  server.set_timeline(&timeline_);
  sim_.at(0.0, [&] { server.submit(make_job(1, 8.0, 20.0)); });
  sim_.at(4.0, [&] { server.submit(make_job(2, 2.0, 8.0)); });
  sim_.run();

  ASSERT_EQ(timeline_.size(), 3u);
  expect_interval(timeline_, 0, 1, 0.0, 4.0);
  expect_interval(timeline_, 1, 2, 4.0, 6.0);
  expect_interval(timeline_, 2, 1, 6.0, 10.0);
  EXPECT_EQ(server.preemptions(), 1u);
}

TEST_F(PolicyScheduleTest, LlfOrdersByLaxityNotDeadline) {
  // Both released at t=0. J1: 1s of work, deadline 10 (laxity 9). J2: 8s of
  // work, deadline 12 (laxity 4). EDF would run J1 first (10 < 12); LLF
  // runs J2 first. J1's preempt-at-submit leaves a zero-length interval.
  StageServer server(sim_, "llf", llf_policy());
  server.set_timeline(&timeline_);
  sim_.at(0.0, [&] {
    server.submit(make_job(1, 1.0, 10.0));
    server.submit(make_job(2, 8.0, 12.0));
  });
  sim_.run();

  ASSERT_EQ(timeline_.size(), 3u);
  expect_interval(timeline_, 0, 1, 0.0, 0.0);  // displaced before running
  expect_interval(timeline_, 1, 2, 0.0, 8.0);
  expect_interval(timeline_, 2, 1, 8.0, 9.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(1), 1.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(2), 8.0);
}

TEST_F(PolicyScheduleTest, GanttRenderMatchesEdfSchedule) {
  // Same fixture as EdfPreemptsByAbsoluteDeadline rendered through
  // sched/gantt.h: 13 cells over [0,13) make each cell one second.
  StageServer server(sim_, "edf", edf_policy());
  server.set_timeline(&timeline_);
  sim_.at(0.0, [&] { server.submit(make_job(1, 10.0, 20.0)); });
  sim_.at(2.0, [&] { server.submit(make_job(2, 3.0, 6.0)); });
  sim_.run();

  const std::string gantt = render_ascii_gantt(timeline_, 0.0, 13.0, 13);
  EXPECT_NE(gantt.find("|##...########|"), std::string::npos) << gantt;
  EXPECT_NE(gantt.find("|..###........|"), std::string::npos) << gantt;
}

// ---------------------------------------------------------------------------
// Global EDF on a processor pool.

TEST_F(PolicyScheduleTest, GlobalEdfRunsTopTwoByDeadline) {
  // Two processors, three jobs at t=0: J1 (4s, d=20), J2 (4s, d=10),
  // J3 (2s, d=5). gEDF: J2 and J3 occupy the pool, J1 waits for J3's
  // completion at t=2, then runs [2,6).
  PooledStageServer pool(sim_, 2, "gedf", edf_policy());
  pool.set_timeline(&timeline_);
  std::vector<Completion> completions;
  pool.set_on_complete(
      [&](Job& j) { completions.push_back({j.id, sim_.now()}); });
  sim_.at(0.0, [&] {
    pool.submit(make_job(1, 4.0, 20.0));
    pool.submit(make_job(2, 4.0, 10.0));
    pool.submit(make_job(3, 2.0, 5.0));
  });
  sim_.run();

  EXPECT_DOUBLE_EQ(timeline_.executed(1), 4.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(2), 4.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(3), 2.0);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].id, 3u);
  EXPECT_DOUBLE_EQ(completions[0].at, 2.0);
  EXPECT_EQ(completions[1].id, 2u);
  EXPECT_DOUBLE_EQ(completions[1].at, 4.0);
  EXPECT_EQ(completions[2].id, 1u);
  EXPECT_DOUBLE_EQ(completions[2].at, 6.0);
  EXPECT_EQ(pool.policy().name(), "edf");
}

TEST_F(PolicyScheduleTest, GlobalEdfPreemptsAcrossThePool) {
  // Two processors. J1 (10s, d=30) and J2 (10s, d=25) start at t=0; at t=1
  // J3 (2s, d=5) arrives and must displace J1 (the latest deadline), which
  // resumes once J3 finishes at t=3.
  PooledStageServer pool(sim_, 2, "gedf", edf_policy());
  pool.set_timeline(&timeline_);
  sim_.at(0.0, [&] {
    pool.submit(make_job(1, 10.0, 30.0));
    pool.submit(make_job(2, 10.0, 25.0));
  });
  sim_.at(1.0, [&] { pool.submit(make_job(3, 2.0, 5.0)); });
  sim_.run();

  EXPECT_EQ(pool.preemptions(), 1u);
  EXPECT_DOUBLE_EQ(timeline_.executed(1), 10.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(2), 10.0);
  EXPECT_DOUBLE_EQ(timeline_.executed(3), 2.0);
  // J1 ran [0,1), lost its processor to J3 over [1,3), resumed [3,12).
  bool found_gap_resume = false;
  for (const RunInterval& iv : timeline_.intervals()) {
    if (iv.job_id == 1 && util::time_close(iv.start, 3.0) &&
        util::time_close(iv.end, 12.0)) {
      found_gap_resume = true;
    }
  }
  EXPECT_TRUE(found_gap_resume);
}

// ---------------------------------------------------------------------------
// Dynamic keys interact correctly with speed changes (banking).

TEST_F(PolicyScheduleTest, EdfSurvivesSpeedChangeWithBanking) {
  // J1 (4s of demand, d=20) at speed 1 until t=2 (2s banked), then the
  // stage slows to 0.5x: the remaining 2s of demand take 4s of wall time,
  // finishing at t=6.
  StageServer server(sim_, "edf", edf_policy());
  server.set_timeline(&timeline_);
  std::vector<Completion> completions;
  server.set_on_complete(
      [&](Job& j) { completions.push_back({j.id, sim_.now()}); });
  sim_.at(0.0, [&] { server.submit(make_job(1, 4.0, 20.0)); });
  sim_.at(2.0, [&] { server.set_speed(0.5); });
  sim_.run();

  ASSERT_EQ(completions.size(), 1u);
  EXPECT_DOUBLE_EQ(completions[0].at, 6.0);
}

}  // namespace
}  // namespace frap::sched
