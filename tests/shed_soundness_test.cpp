// Deterministic shedding-soundness regressions. A task that has already
// consumed processor time must never be shed: its past interference is
// physical, but shedding would erase its synthetic-utilization contribution
// and let the controller over-admit (docs/THEORY.md). The production wiring
// is SheddingAdmissionController::set_shed_filter with
// !PipelineRuntime::task_started_executing; these scenarios pin down the
// exact victim selection, hand-computed, with zero randomness.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"

namespace frap::pipeline {
namespace {

core::TaskSpec make_task(std::uint64_t id, Duration deadline,
                         std::vector<Duration> computes, double importance) {
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  spec.importance = importance;
  for (Duration c : computes) {
    core::StageDemand d;
    d.compute = c;
    spec.stages.push_back(d);
  }
  return spec;
}

// Runtime + tracker + shedding admission with the soundness filter, the
// production wiring of the three components.
struct ShedHarness {
  explicit ShedHarness(std::size_t stages)
      : tracker(sim, stages),
        runtime(sim, stages, &tracker),
        admission(sim, tracker,
                  core::FeasibleRegion::deadline_monotonic(stages)),
        shedder(admission, [this](std::uint64_t id) {
          shed_ids.push_back(id);
          runtime.abort_task(id);
        }) {
    shedder.set_shed_filter([this](std::uint64_t id) {
      return !runtime.task_started_executing(id);
    });
    runtime.set_on_task_complete(
        [this](const core::TaskSpec&, Duration, bool miss) {
          ++completed;
          if (miss) ++missed;
        });
  }

  void submit(const core::TaskSpec& spec) {
    if (shedder.try_admit(spec).admitted) {
      runtime.start_task(spec, sim.now() + spec.deadline);
    }
  }

  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker;
  PipelineRuntime runtime;
  core::AdmissionController admission;
  core::SheddingAdmissionController shedder;
  std::vector<std::uint64_t> shed_ids;
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
};

// A (executing, low importance) and B (queued behind A, low importance) are
// both cheaper than the important arrival C. Without the filter the shedder
// would pick A first (FIFO at equal importance); with it, A is skipped
// because it already ran and B — which never got the processor — is the
// victim. Everyone that runs meets its deadline.
TEST(ShedSoundnessTest, ExecutingTaskIsSkippedQueuedTaskIsShed) {
  ShedHarness h(2);

  h.sim.at(0.0, [&] {
    // A: u = (0.3, 0.05). Starts executing stage 0 immediately.
    h.submit(make_task(1, 1.0, {0.3, 0.05}, 1.0));
  });
  h.sim.at(0.1, [&] {
    // B: u = (0.15, 0.15). DM priority 2.0 > A's 1.0: queued, never runs.
    h.submit(make_task(2, 2.0, {0.3, 0.3}, 1.0));
    EXPECT_TRUE(h.runtime.task_started_executing(1));
    EXPECT_FALSE(h.runtime.task_started_executing(2));
  });
  h.sim.at(0.2, [&] {
    // C: u = (0.2, ~0.056). With A and B the region is exceeded
    // (f(0.65) alone > 1); after shedding B it fits (lhs ~0.86 < 1).
    h.submit(make_task(3, 0.9, {0.18, 0.05}, 9.0));
  });
  h.sim.run();

  // Only B was shed; A was skipped by the filter even though it is the
  // FIFO-first victim at the lowest importance.
  EXPECT_EQ(h.shed_ids, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(h.shedder.tasks_shed(), 1u);
  EXPECT_EQ(h.runtime.aborted(), 1u);
  // A and C both complete, no deadline misses.
  EXPECT_EQ(h.completed, 2u);
  EXPECT_EQ(h.missed, 0u);
  EXPECT_EQ(h.runtime.misses().hits(), 0u);
}

// When the only shedding candidate has already executed, the important
// arrival is rejected rather than unsoundly making room.
TEST(ShedSoundnessTest, ImportantArrivalRejectedWhenOnlyVictimExecuted) {
  ShedHarness h(2);

  h.sim.at(0.0, [&] {
    h.submit(make_task(1, 1.0, {0.35, 0.35}, 1.0));  // lhs ~0.888, admitted
  });
  bool c_admitted = true;
  h.sim.at(0.1, [&] {
    EXPECT_TRUE(h.runtime.task_started_executing(1));
    c_admitted = h.shedder.try_admit(make_task(3, 1.0, {0.3, 0.3}, 9.0))
                     .admitted;
  });
  h.sim.run();

  EXPECT_FALSE(c_admitted);
  EXPECT_TRUE(h.shed_ids.empty());
  EXPECT_EQ(h.shedder.tasks_shed(), 0u);
  EXPECT_EQ(h.completed, 1u);
  EXPECT_EQ(h.missed, 0u);
}

// Deterministic overload storm: a fixed arrival pattern of alternating
// importance at ~2x capacity. Shedding must fire, and with the
// started-executing filter every task that runs to completion meets its
// deadline.
TEST(ShedSoundnessTest, DeterministicOverloadStormHasZeroMisses) {
  ShedHarness h(2);

  std::uint64_t next_id = 1;
  std::function<void()> pump = [&] {
    const Time t = h.sim.now() + 0.004;  // 250 arrivals/s, ~200% load
    if (t > 10.0) return;
    h.sim.at(t, [&] {
      const std::uint64_t id = next_id++;
      const double importance = (id % 3 == 0) ? 5.0 : 1.0;
      const Duration deadline = 1.0 + 0.1 * static_cast<double>(id % 11);
      const Duration c0 = 0.004 + 0.001 * static_cast<double>(id % 5);
      const Duration c1 = 0.004 + 0.001 * static_cast<double>(id % 7);
      h.submit(make_task(id, deadline, {c0, c1}, importance));
      pump();
    });
  };
  pump();
  h.sim.run();

  EXPECT_GT(h.completed, 500u);
  EXPECT_GT(h.shedder.tasks_shed(), 0u);
  EXPECT_EQ(h.missed, 0u);
  h.tracker.verify_lhs_cache(1e-9);
}

}  // namespace
}  // namespace frap::pipeline
