#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/synthetic_utilization.h"
#include "sim/simulator.h"

namespace frap::core {
namespace {

class TrackerTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
};

TEST_F(TrackerTest, StartsAtZero) {
  SyntheticUtilizationTracker t(sim_, 3);
  EXPECT_EQ(t.num_stages(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(t.utilization(j), 0.0);
  }
  EXPECT_EQ(t.live_tasks(), 0u);
}

TEST_F(TrackerTest, AddRaisesUtilization) {
  SyntheticUtilizationTracker t(sim_, 2);
  t.add(1, std::vector<double>{0.2, 0.3}, 10.0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.2);
  EXPECT_DOUBLE_EQ(t.utilization(1), 0.3);
  EXPECT_TRUE(t.is_live(1));
}

TEST_F(TrackerTest, ContributionsAccumulate) {
  SyntheticUtilizationTracker t(sim_, 1);
  t.add(1, std::vector<double>{0.2}, 10.0);
  t.add(2, std::vector<double>{0.25}, 10.0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.45);
  EXPECT_EQ(t.live_tasks(), 2u);
}

TEST_F(TrackerTest, ExpiryRemovesContributionAtDeadline) {
  SyntheticUtilizationTracker t(sim_, 1);
  t.add(1, std::vector<double>{0.5}, 4.0);
  sim_.run_until(3.999);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.5);
  sim_.run_until(4.0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);
  EXPECT_FALSE(t.is_live(1));
}

TEST_F(TrackerTest, IdleResetRemovesOnlyDepartedTasks) {
  SyntheticUtilizationTracker t(sim_, 2);
  t.add(1, std::vector<double>{0.2, 0.2}, 100.0);
  t.add(2, std::vector<double>{0.3, 0.3}, 100.0);
  t.mark_departed(1, 0);  // task 1 finished stage 0 only
  t.on_stage_idle(0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.3);  // task 2 remains
  EXPECT_DOUBLE_EQ(t.utilization(1), 0.5);  // stage 1 untouched
}

TEST_F(TrackerTest, IdleResetDisabledKeepsContributions) {
  SyntheticUtilizationTracker t(sim_, 1);
  t.set_idle_reset_enabled(false);
  t.add(1, std::vector<double>{0.4}, 100.0);
  t.mark_departed(1, 0);
  t.on_stage_idle(0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.4);
}

TEST_F(TrackerTest, IdleResetThenExpiryDoesNotDoubleSubtract) {
  SyntheticUtilizationTracker t(sim_, 1);
  t.add(1, std::vector<double>{0.4}, 5.0);
  t.add(2, std::vector<double>{0.1}, 100.0);
  t.mark_departed(1, 0);
  t.on_stage_idle(0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.1);
  sim_.run_until(6.0);  // task 1's expiry fires: must be a no-op now
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.1);
}

TEST_F(TrackerTest, ReservationActsAsFloor) {
  SyntheticUtilizationTracker t(sim_, 3);
  t.set_reservation(0, 0.4);
  t.set_reservation(1, 0.25);
  t.set_reservation(2, 0.1);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.4);
  t.add(1, std::vector<double>{0.1, 0.0, 0.0}, 10.0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.5);
  sim_.run_until(10.0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.4);  // never below the floor
  EXPECT_DOUBLE_EQ(t.reservation(0), 0.4);
}

TEST_F(TrackerTest, RemoveTaskStripsEverywhere) {
  SyntheticUtilizationTracker t(sim_, 2);
  t.add(1, std::vector<double>{0.2, 0.3}, 10.0);
  t.remove_task(1);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(t.utilization(1), 0.0);
  EXPECT_FALSE(t.is_live(1));
  t.remove_task(42);  // unknown id: no-op
}

TEST_F(TrackerTest, OnDecreaseFiresOnExpiry) {
  SyntheticUtilizationTracker t(sim_, 1);
  int decreases = 0;
  t.set_on_decrease([&] { ++decreases; });
  t.add(1, std::vector<double>{0.3}, 2.0);
  EXPECT_EQ(decreases, 0);
  sim_.run_until(2.0);
  EXPECT_EQ(decreases, 1);
}

TEST_F(TrackerTest, OnDecreaseFiresOnIdleResetOnlyWhenSomethingRemoved) {
  SyntheticUtilizationTracker t(sim_, 1);
  int decreases = 0;
  t.set_on_decrease([&] { ++decreases; });
  t.on_stage_idle(0);  // nothing departed: no event
  EXPECT_EQ(decreases, 0);
  t.add(1, std::vector<double>{0.3}, 100.0);
  t.mark_departed(1, 0);
  t.on_stage_idle(0);
  EXPECT_EQ(decreases, 1);
  t.on_stage_idle(0);  // queue drained: no second event
  EXPECT_EQ(decreases, 1);
}

TEST_F(TrackerTest, ZeroContributionStagesAreAllowed) {
  SyntheticUtilizationTracker t(sim_, 3);
  t.add(1, std::vector<double>{0.0, 0.5, 0.0}, 10.0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(t.utilization(1), 0.5);
}

TEST_F(TrackerTest, UtilizationsSnapshot) {
  SyntheticUtilizationTracker t(sim_, 2);
  t.set_reservation(1, 0.1);
  t.add(1, std::vector<double>{0.2, 0.3}, 10.0);
  const auto u = t.utilizations();
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], 0.2);
  EXPECT_DOUBLE_EQ(u[1], 0.4);
}

TEST_F(TrackerTest, ManyAddRemoveCyclesStayNonNegative) {
  SyntheticUtilizationTracker t(sim_, 1);
  for (int i = 0; i < 10000; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    t.add(id, std::vector<double>{0.1 + (i % 7) * 0.01},
          sim_.now() + 1.0);
    t.mark_departed(id, 0);
    t.on_stage_idle(0);
    EXPECT_GE(t.utilization(0), 0.0);
  }
  EXPECT_NEAR(t.utilization(0), 0.0, 1e-9);
}

TEST_F(TrackerTest, DepartedMarkOnUnknownTaskIsSafe) {
  SyntheticUtilizationTracker t(sim_, 1);
  t.mark_departed(999, 0);
  t.on_stage_idle(0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);
}

// -------------------------------------------- incremental LHS cache -----

double recomputed_lhs(const SyntheticUtilizationTracker& t) {
  double sum = 0;
  for (std::size_t j = 0; j < t.num_stages(); ++j) {
    const double u = t.utilization(j);
    if (u >= 1.0) return std::numeric_limits<double>::infinity();
    // frap-lint: allow(unsafe-division) -- the test recomputes f(U) by hand,
    // independent of stage_delay_factor, to cross-check the cached LHS.
    sum += u * (1.0 - u / 2.0) / (1.0 - u);
  }
  return sum;
}

TEST_F(TrackerTest, CachedLhsTracksEveryMutation) {
  SyntheticUtilizationTracker t(sim_, 3);
  EXPECT_DOUBLE_EQ(t.cached_lhs(), 0.0);

  t.set_reservation(2, 0.1);
  EXPECT_NEAR(t.cached_lhs(), recomputed_lhs(t), 1e-12);

  t.add(1, std::vector<double>{0.2, 0.0, 0.15}, 5.0);
  t.add(2, std::vector<double>{0.0, 0.3, 0.05}, 100.0);
  EXPECT_NEAR(t.cached_lhs(), recomputed_lhs(t), 1e-12);
  for (std::size_t j = 0; j < 3; ++j) {
    const double u = t.utilization(j);
    // frap-lint: allow(unsafe-division) -- same hand-derived cross-check.
    EXPECT_NEAR(t.stage_lhs_term(j), u * (1.0 - u / 2.0) / (1.0 - u), 1e-12);
  }

  // Idle reset.
  t.mark_departed(2, 1);
  t.on_stage_idle(1);
  EXPECT_NEAR(t.cached_lhs(), recomputed_lhs(t), 1e-12);

  // Expiry.
  sim_.run_until(5.0);
  EXPECT_NEAR(t.cached_lhs(), recomputed_lhs(t), 1e-12);

  // Removal.
  t.remove_task(2);
  EXPECT_NEAR(t.cached_lhs(), recomputed_lhs(t), 1e-12);
  EXPECT_NEAR(t.cached_lhs(), 0.1 * 0.95 / 0.9, 1e-12);  // floor remains

  t.verify_lhs_cache(1e-12);
  EXPECT_GE(t.lhs_cache_stats().crosschecks, 1u);
}

TEST_F(TrackerTest, CachedLhsSaturationRoundTrip) {
  SyntheticUtilizationTracker t(sim_, 2);
  t.add(1, std::vector<double>{0.3, 0.0}, 100.0);
  const double before = t.cached_lhs();
  EXPECT_TRUE(std::isfinite(before));

  // Saturate stage 1: the cached LHS must report +infinity...
  t.add(2, std::vector<double>{0.0, 1.5}, 100.0);
  EXPECT_TRUE(std::isinf(t.cached_lhs()));
  EXPECT_TRUE(std::isinf(t.stage_lhs_term(1)));
  t.verify_lhs_cache();

  // ...and recover the exact finite sum once the saturating task leaves
  // (no inf - inf NaN poisoning the running sum).
  t.remove_task(2);
  EXPECT_DOUBLE_EQ(t.cached_lhs(), before);
  t.verify_lhs_cache(1e-12);
}

TEST_F(TrackerTest, PeriodicRebuildBoundsDrift) {
  SyntheticUtilizationTracker t(sim_, 1);
  // Enough single-stage updates to cross the rebuild interval several times.
  const int cycles =
      static_cast<int>(SyntheticUtilizationTracker::kLhsRebuildInterval);
  for (int i = 0; i < cycles; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    t.add(id, std::vector<double>{0.1 + (i % 7) * 0.01}, sim_.now() + 1.0);
    t.remove_task(id);
  }
  EXPECT_GE(t.lhs_cache_stats().rebuilds, 1u);
  EXPECT_NEAR(t.cached_lhs(), 0.0, 1e-9);
  t.verify_lhs_cache(1e-9);
  EXPECT_LE(t.lhs_cache_stats().max_drift, 1e-9);
}

TEST_F(TrackerTest, ExplicitRebuildReturnsCachedLhs) {
  SyntheticUtilizationTracker t(sim_, 2);
  t.add(1, std::vector<double>{0.25, 0.1}, 100.0);
  const double cached = t.cached_lhs();
  EXPECT_DOUBLE_EQ(t.rebuild_lhs_cache(), cached);
  EXPECT_DOUBLE_EQ(t.cached_lhs(), cached);
}

}  // namespace
}  // namespace frap::core
