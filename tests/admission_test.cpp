#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/admission.h"
#include "core/baselines.h"
#include "core/feasible_region.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "sim/simulator.h"

namespace frap::core {
namespace {

TaskSpec make_task(std::uint64_t id, Duration deadline,
                   std::vector<Duration> computes, double importance = 0) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  spec.importance = importance;
  for (Duration c : computes) {
    StageDemand d;
    d.compute = c;
    spec.stages.push_back(d);
  }
  return spec;
}

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : tracker_(sim_, 2),
        controller_(sim_, tracker_, FeasibleRegion::deadline_monotonic(2)) {}

  sim::Simulator sim_;
  SyntheticUtilizationTracker tracker_;
  AdmissionController controller_;
};

TEST_F(AdmissionTest, AdmitsTaskInsideRegion) {
  // Contribution (0.1, 0.1): f(0.1)*2 ~= 0.211 < 1.
  const auto d = controller_.try_admit(make_task(1, 1.0, {0.1, 0.1}));
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.reason, AdmissionDecision::Reason::kAdmitted);
  EXPECT_DOUBLE_EQ(d.lhs_before, 0.0);
  EXPECT_NEAR(d.lhs_with_task, 2 * stage_delay_factor(0.1), 1e-12);
  EXPECT_DOUBLE_EQ(d.bound, controller_.region().bound());
  EXPECT_DOUBLE_EQ(d.arrival, 0.0);
  EXPECT_DOUBLE_EQ(d.decided_at, 0.0);
  EXPECT_DOUBLE_EQ(tracker_.utilization(0), 0.1);
}

TEST_F(AdmissionTest, RejectsTaskOutsideRegion) {
  // A single task at (0.5, 0.5): f(0.5)*2 = 1.5 > 1.
  const auto d = controller_.try_admit(make_task(1, 1.0, {0.5, 0.5}));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, AdmissionDecision::Reason::kRegionFull);
  // Rejection leaves the tracker untouched.
  EXPECT_DOUBLE_EQ(tracker_.utilization(0), 0.0);
  EXPECT_EQ(tracker_.live_tasks(), 0u);
}

TEST_F(AdmissionTest, SaturatingTaskReportsStageSaturated) {
  // Contribution 1.5 on stage 0: U_0 would cross 1, not merely the bound.
  const auto d = controller_.try_admit(make_task(1, 1.0, {1.5, 0.0}));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, AdmissionDecision::Reason::kStageSaturated);
  EXPECT_TRUE(std::isinf(d.lhs_with_task));
}

TEST_F(AdmissionTest, AdmitsUpToTheBalancedCap) {
  // Tasks of contribution 0.05 per stage; balanced cap for N=2 is ~0.382,
  // so exactly 7 fit (0.35) and the 8th (0.40 > 0.382) is rejected.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    const auto d = controller_.try_admit(
        make_task(static_cast<std::uint64_t>(i + 1), 1.0, {0.05, 0.05}));
    if (d.admitted) ++admitted;
  }
  EXPECT_EQ(admitted, 7);
  EXPECT_NEAR(tracker_.utilization(0), 0.35, 1e-9);
}

TEST_F(AdmissionTest, ExpiryFreesCapacity) {
  EXPECT_TRUE(controller_.try_admit(make_task(1, 1.0, {0.3, 0.3})).admitted);
  EXPECT_FALSE(controller_.try_admit(make_task(2, 1.0, {0.3, 0.3})).admitted);
  sim_.run_until(1.0);  // task 1 expires
  EXPECT_TRUE(controller_.try_admit(make_task(3, 1.0, {0.3, 0.3})).admitted);
}

TEST_F(AdmissionTest, CountsAttemptsAndAcceptanceRatio) {
  (void)controller_.try_admit(make_task(1, 1.0, {0.3, 0.3}));  // in
  (void)controller_.try_admit(make_task(2, 1.0, {0.3, 0.3}));  // out
  EXPECT_EQ(controller_.attempts(), 2u);
  EXPECT_EQ(controller_.admitted(), 1u);
  EXPECT_DOUBLE_EQ(controller_.acceptance_ratio(), 0.5);
}

TEST_F(AdmissionTest, TestDoesNotMutate) {
  EXPECT_TRUE(controller_.test(make_task(1, 1.0, {0.1, 0.1})));
  EXPECT_EQ(tracker_.live_tasks(), 0u);
  EXPECT_EQ(controller_.attempts(), 0u);
}

TEST_F(AdmissionTest, ApproximateModeUsesMeans) {
  controller_.set_approximate_means({0.2, 0.2});
  EXPECT_TRUE(controller_.approximate());
  // Actual computes are huge, but means say (0.2, 0.2)/D -> admitted.
  const auto d = controller_.try_admit(make_task(1, 1.0, {0.9, 0.9}));
  EXPECT_TRUE(d.admitted);
  // Tracker holds the approximate contribution.
  EXPECT_DOUBLE_EQ(tracker_.utilization(0), 0.2);
}

TEST_F(AdmissionTest, ExplicitArrivalAnchorsDeadline) {
  sim_.at(5.0, [&] {
    // Task arrived at t=3 (deadline anchor), decided at t=5: it expires at
    // arrival + deadline = 7.
    const auto d = controller_.try_admit(make_task(1, 4.0, {0.1, 0.1}), 3.0);
    EXPECT_TRUE(d.admitted);
    EXPECT_DOUBLE_EQ(d.arrival, 3.0);
    EXPECT_DOUBLE_EQ(d.decided_at, 5.0);
  });
  sim_.run_until(6.9);
  EXPECT_TRUE(tracker_.is_live(1));
  sim_.run_until(7.0);
  EXPECT_FALSE(tracker_.is_live(1));
}

TEST_F(AdmissionTest, BlockingRegionIsStricter) {
  SyntheticUtilizationTracker tracker2(sim_, 2);
  AdmissionController blocked(
      sim_, tracker2,
      FeasibleRegion::with_blocking(1.0, std::vector<double>{0.2, 0.2}));
  // Bound is 0.6: the (0.3, 0.3) task (lhs ~0.729) fails, but passes the
  // unblocked controller (bound 1).
  auto spec = make_task(1, 1.0, {0.3, 0.3});
  EXPECT_TRUE(controller_.try_admit(spec).admitted);
  EXPECT_FALSE(blocked.try_admit(spec).admitted);
}

// ----------------------------------------------------------- waiting -----

class WaitingTest : public AdmissionTest {};

TEST_F(WaitingTest, AdmitsImmediatelyWhenItFits) {
  WaitingAdmissionController waiting(sim_, controller_, 0.2);
  waiting.attach();
  std::vector<std::pair<std::uint64_t, bool>> decisions;
  waiting.set_decision_callback(
      [&](const TaskSpec& s, const AdmissionDecision& d) {
        decisions.push_back({s.id, d.admitted});
      });
  waiting.submit(make_task(1, 1.0, {0.1, 0.1}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].second);
  EXPECT_EQ(waiting.pending(), 0u);
}

TEST_F(WaitingTest, WaitsForCapacityThenAdmits) {
  WaitingAdmissionController waiting(sim_, controller_, 0.5);
  waiting.attach();
  std::vector<std::pair<bool, Time>> decisions;
  waiting.set_decision_callback(
      [&](const TaskSpec&, const AdmissionDecision& d) {
        decisions.push_back({d.admitted, d.decided_at});
      });

  // Fill the region with a task expiring at t=0.3.
  sim_.at(0.0, [&] {
    (void)controller_.try_admit(make_task(1, 0.3, {0.09, 0.09}),
                                0.0);  // u=(0.3,0.3)
    waiting.submit(make_task(2, 1.0, {0.3, 0.3}));  // does not fit yet
    EXPECT_EQ(waiting.pending(), 1u);
  });
  sim_.run();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].first);
  EXPECT_DOUBLE_EQ(decisions[0].second, 0.3);  // admitted at the expiry
}

TEST_F(WaitingTest, TimesOutWhenNothingFrees) {
  WaitingAdmissionController waiting(sim_, controller_, 0.2);
  waiting.attach();
  std::vector<AdmissionDecision> decisions;
  waiting.set_decision_callback(
      [&](const TaskSpec&, const AdmissionDecision& d) {
        decisions.push_back(d);
      });
  sim_.at(0.0, [&] {
    (void)controller_.try_admit(make_task(1, 10.0, {3.0, 3.0}), 0.0);
    waiting.submit(make_task(2, 1.0, {0.3, 0.3}));
  });
  sim_.run_until(0.3);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].admitted);
  EXPECT_EQ(decisions[0].reason, AdmissionDecision::Reason::kTimedOut);
  EXPECT_DOUBLE_EQ(decisions[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(decisions[0].decided_at, 0.2);  // patience exhausted
  EXPECT_EQ(waiting.timed_out(), 1u);
  EXPECT_EQ(waiting.pending(), 0u);
}

TEST_F(WaitingTest, FifoOrderPreserved) {
  WaitingAdmissionController waiting(sim_, controller_, 5.0);
  waiting.attach();
  std::vector<std::uint64_t> admitted_order;
  waiting.set_decision_callback(
      [&](const TaskSpec& s, const AdmissionDecision& d) {
        if (d.admitted) admitted_order.push_back(s.id);
      });
  sim_.at(0.0, [&] {
    (void)controller_.try_admit(make_task(1, 1.0, {0.35, 0.35}), 0.0);
    waiting.submit(make_task(2, 2.0, {0.6, 0.6}));
    waiting.submit(make_task(3, 2.0, {0.02, 0.02}));
    // Task 3 would fit right now, but FIFO holds it behind task 2.
    EXPECT_EQ(waiting.pending(), 2u);
  });
  sim_.run();
  ASSERT_EQ(admitted_order.size(), 2u);
  EXPECT_EQ(admitted_order[0], 2u);
  EXPECT_EQ(admitted_order[1], 3u);
}

TEST_F(WaitingTest, ZeroPatienceDecidesSynchronously) {
  WaitingAdmissionController waiting(sim_, controller_, 0.0);
  waiting.attach();
  std::vector<AdmissionDecision> decisions;
  waiting.set_decision_callback(
      [&](const TaskSpec&, const AdmissionDecision& d) {
        decisions.push_back(d);
      });
  (void)controller_.try_admit(make_task(1, 10.0, {3.0, 3.0}), 0.0);
  waiting.submit(make_task(2, 1.0, {0.3, 0.3}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].admitted);
  EXPECT_EQ(decisions[0].reason, AdmissionDecision::Reason::kTimedOut);
  EXPECT_EQ(waiting.pending(), 0u);
}

// Reentrancy regression: a utilization decrease fired from inside a decision
// callback (here: admitting B sheds an unrelated blocker) arrives while the
// retry scan is still running. The scan must be re-armed so the capacity
// freed mid-scan reaches every queued task; second-in-line C only fits
// because of that cascade and must not be stranded.
TEST_F(WaitingTest, DecreaseDuringRetryRearmsAndAdmitsCascade) {
  WaitingAdmissionController waiting(sim_, controller_, 2.0);
  waiting.attach();
  std::vector<std::pair<std::uint64_t, Time>> admitted;
  waiting.set_decision_callback(
      [&](const TaskSpec& s, const AdmissionDecision& d) {
        ASSERT_TRUE(d.admitted) << "task " << s.id;
        admitted.push_back({s.id, d.decided_at});
        // Admitting B frees more capacity: drop blocker Y. This decrease
        // fires while retry() is mid-scan.
        if (s.id == 1) tracker_.remove_task(11);
      });

  sim_.at(0.0, [&] {
    // Blocker X: u += 0.2/stage, expires at t=1 (triggers the retry).
    EXPECT_TRUE(controller_.try_admit(make_task(10, 1.0, {0.2, 0.2})).admitted);
    // Blocker Y: u += 0.15/stage, held until removed in the callback.
    EXPECT_TRUE(
        controller_.try_admit(make_task(11, 10.0, {1.5, 1.5})).admitted);
    // B (u 0.2/stage) only fits once X expires; C (u 0.15/stage) only fits
    // once Y is ALSO gone — i.e. only via the decrease raised inside B's
    // decision callback.
    waiting.submit(make_task(1, 5.0, {1.0, 1.0}));
    waiting.submit(make_task(2, 5.0, {0.75, 0.75}));
    EXPECT_EQ(waiting.pending(), 2u);
  });
  sim_.run_until(2.0);

  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].first, 1u);
  EXPECT_EQ(admitted[1].first, 2u);
  // Both admitted at the expiry instant — C in the same (re-armed) scan.
  EXPECT_DOUBLE_EQ(admitted[0].second, 1.0);
  EXPECT_DOUBLE_EQ(admitted[1].second, 1.0);
  EXPECT_EQ(waiting.pending(), 0u);
  EXPECT_EQ(waiting.timed_out(), 0u);
  EXPECT_GE(waiting.rearmed_retries(), 1u);
}

// ---------------------------------------------------------- shedding -----

class SheddingTest : public AdmissionTest {};

TEST_F(SheddingTest, ShedsLessImportantVictims) {
  std::vector<std::uint64_t> shed;
  SheddingAdmissionController shedder(
      controller_, [&](std::uint64_t id) { shed.push_back(id); });

  // Fill with low-importance tasks.
  EXPECT_TRUE(shedder.try_admit(make_task(1, 1.0, {0.15, 0.15}, 1.0)).admitted);
  EXPECT_TRUE(shedder.try_admit(make_task(2, 1.0, {0.15, 0.15}, 1.0)).admitted);
  // Important arrival needs room: shed id 1 (first at lowest importance).
  const auto d = shedder.try_admit(make_task(3, 1.0, {0.2, 0.2}, 9.0));
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.reason, AdmissionDecision::Reason::kShed);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], 1u);
  EXPECT_EQ(shedder.tasks_shed(), 1u);
}

TEST_F(SheddingTest, NeverShedsEquallyOrMoreImportant) {
  std::vector<std::uint64_t> shed;
  SheddingAdmissionController shedder(
      controller_, [&](std::uint64_t id) { shed.push_back(id); });
  EXPECT_TRUE(shedder.try_admit(make_task(1, 1.0, {0.3, 0.3}, 5.0)).admitted);
  // Equal importance: must NOT shed task 1.
  const auto d = shedder.try_admit(make_task(2, 1.0, {0.3, 0.3}, 5.0));
  EXPECT_FALSE(d.admitted);
  EXPECT_TRUE(shed.empty());
}

TEST_F(SheddingTest, ShedsMultipleUntilItFits) {
  std::vector<std::uint64_t> shed;
  SheddingAdmissionController shedder(
      controller_, [&](std::uint64_t id) { shed.push_back(id); });
  EXPECT_TRUE(shedder.try_admit(make_task(1, 1.0, {0.12, 0.12}, 1.0)).admitted);
  EXPECT_TRUE(shedder.try_admit(make_task(2, 1.0, {0.12, 0.12}, 2.0)).admitted);
  EXPECT_TRUE(shedder.try_admit(make_task(3, 1.0, {0.12, 0.12}, 3.0)).admitted);
  // Needs most of the region: sheds 1 then 2 (in importance order).
  const auto d = shedder.try_admit(make_task(4, 1.0, {0.2, 0.2}, 9.0));
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(shed, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(SheddingTest, ExpiredVictimsAreSkipped) {
  std::vector<std::uint64_t> shed;
  SheddingAdmissionController shedder(
      controller_, [&](std::uint64_t id) { shed.push_back(id); });
  sim_.at(0.0, [&] {
    (void)shedder.try_admit(make_task(1, 0.5, {0.1, 0.1}, 1.0));
  });
  sim_.run_until(2.0);  // task 1 long expired
  (void)shedder.try_admit(make_task(2, 1.0, {0.3, 0.3}, 1.5));
  // No shedding happened (nothing live to shed, and task 2 fits anyway).
  EXPECT_TRUE(shed.empty());
}

// -------------------------------------------------------- deadline-split ---

TEST(DeadlineSplitTest, MoreConservativeThanEndToEndRegion) {
  sim::Simulator sim;
  SyntheticUtilizationTracker t_region(sim, 2);
  SyntheticUtilizationTracker t_split(sim, 2);
  AdmissionController region(sim, t_region,
                             FeasibleRegion::deadline_monotonic(2));
  DeadlineSplitAdmissionController split(sim, t_split);

  // Identical arrival stream; count admissions of each.
  int admitted_region = 0;
  int admitted_split = 0;
  for (int i = 0; i < 40; ++i) {
    auto spec = make_task(static_cast<std::uint64_t>(i + 1), 1.0,
                          {0.02, 0.02});
    spec.id = static_cast<std::uint64_t>(i + 1);
    if (region.try_admit(spec).admitted) ++admitted_region;
    auto spec2 = spec;
    spec2.id += 1000;
    if (split.try_admit(spec2).admitted) ++admitted_split;
  }
  EXPECT_GT(admitted_region, admitted_split);
  // Analytical check: split caps per-stage at 0.586/N = 0.293 -> 14 tasks
  // of 0.02; region caps at 0.382 -> 19 tasks.
  EXPECT_EQ(admitted_split, 14);
  EXPECT_EQ(admitted_region, 19);
}

TEST(BaselineBoundsTest, LiuLaylandValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(1000), 0.6934, 1e-3);
}

TEST(BaselineBoundsTest, LiuLaylandTest) {
  EXPECT_TRUE(liu_layland_schedulable(std::vector<double>{0.3, 0.3}));
  EXPECT_FALSE(liu_layland_schedulable(std::vector<double>{0.5, 0.5}));
  EXPECT_TRUE(liu_layland_schedulable({}));
}

TEST(BaselineBoundsTest, HyperbolicDominatesLiuLayland) {
  // Any set passing L&L also passes the hyperbolic bound.
  const std::vector<std::vector<double>> sets{
      {0.4, 0.4}, {0.3, 0.3, 0.2}, {0.69}, {0.2, 0.2, 0.2, 0.09}};
  for (const auto& s : sets) {
    if (liu_layland_schedulable(s)) {
      EXPECT_TRUE(hyperbolic_schedulable(s));
    }
  }
  // And there are sets only the hyperbolic bound accepts.
  EXPECT_FALSE(liu_layland_schedulable(std::vector<double>{0.5, 0.4}));
  EXPECT_TRUE(hyperbolic_schedulable(std::vector<double>{0.5, 0.33}));
}

}  // namespace
}  // namespace frap::core
