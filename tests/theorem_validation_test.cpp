// Quantitative validation of Theorem 1: not only do admitted tasks meet
// their deadlines (miss ratio 0), their OBSERVED end-to-end response times
// never exceed the analytical worst-case delay computed from the peak
// synthetic utilizations the system actually reached.
//
// Synthetic utilization increases only at admission instants, so the
// running maximum over admission-time snapshots is the true peak. With
// U_max_j those peaks and D_max the largest admitted deadline, Theorem 1
// bounds every response by sum_j f(U_max_j) * D_max.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/admission.h"
#include "core/delay_bound.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "workload/pipeline_workload.h"

namespace frap {
namespace {

struct ValidationRun {
  std::vector<double> peak_utilization;
  Duration max_deadline = 0;
  Duration max_response = 0;
  std::uint64_t completed = 0;
  double max_instant_lhs = 0;  // max over admission instants of sum f(U_j)
};

ValidationRun run(std::size_t stages, double load, double resolution,
                  std::uint64_t seed) {
  const auto wl = workload::PipelineWorkloadConfig::balanced(
      stages, 10 * kMilli, load, resolution);
  sim::Simulator sim;
  workload::PipelineWorkloadGenerator gen(wl, seed);
  core::SyntheticUtilizationTracker tracker(sim, stages);
  pipeline::PipelineRuntime runtime(sim, stages, &tracker);
  core::AdmissionController controller(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(stages));

  ValidationRun v;
  v.peak_utilization.assign(stages, 0.0);

  runtime.set_on_task_complete(
      [&](const core::TaskSpec&, Duration response, bool) {
        ++v.completed;
        v.max_response = std::max(v.max_response, response);
      });

  const Duration sim_end = 40.0;
  std::function<void()> pump = [&] {
    const Time t = sim.now() + gen.next_interarrival();
    if (t > sim_end) return;
    sim.at(t, [&] {
      const auto spec = gen.next_task();
      const auto decision = controller.try_admit(spec);
      if (decision.admitted) {
        // Snapshot AFTER commit: includes this task's contribution.
        const auto u = tracker.utilizations();
        for (std::size_t j = 0; j < u.size(); ++j) {
          v.peak_utilization[j] = std::max(v.peak_utilization[j], u[j]);
        }
        v.max_instant_lhs = std::max(v.max_instant_lhs,
                                     decision.lhs_with_task);
        v.max_deadline = std::max(v.max_deadline, spec.deadline);
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      pump();
    });
  };
  pump();
  sim.run();
  return v;
}

class TheoremValidationTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(TheoremValidationTest, ObservedDelaysRespectTheorem1Bound) {
  const auto [stages, load] = GetParam();
  const auto v = run(stages, load, 50.0, 12345);
  ASSERT_GT(v.completed, 100u);

  // Instantaneous invariant: the controller never let sum f(U_j(t))
  // exceed the bound of 1 at any admission instant (utilization only
  // increases at admissions, so these instants witness the global max).
  EXPECT_LE(v.max_instant_lhs, 1.0 + 1e-9);

  // Theorem 1 delay bound from the componentwise utilization peaks. Note
  // the peaks occur at different times, so this bound is looser than the
  // per-instant region (it may exceed D_max); it must still be finite and
  // dominate every realized response.
  const Duration bound =
      core::predict_pipeline_delay(v.peak_utilization, v.max_deadline);
  ASSERT_LT(bound, 1e18);
  EXPECT_LE(v.max_response, bound + 1e-9)
      << "stages=" << stages << " load=" << load;
  // With zero misses, responses are also bounded by the max deadline — the
  // sharp per-task form of the theorem.
  EXPECT_LE(v.max_response, v.max_deadline + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremValidationTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values(0.9, 1.5)));

TEST(TheoremValidationTest, BoundIsNotVacuous) {
  // The bound should be within the same order of magnitude as observed
  // delays at high load — check it is not astronomically loose.
  const auto v = run(2, 1.5, 50.0, 999);
  const Duration bound =
      core::predict_pipeline_delay(v.peak_utilization, v.max_deadline);
  EXPECT_GT(v.max_response, bound * 0.01);
}

}  // namespace
}  // namespace frap
