// Differential pin for the scheduling-policy redesign: the refactored
// StageServer dispatching through the default fixed-priority policy must
// reproduce the PRE-redesign executor bit-identically. LegacyStageServer
// below is a frozen copy of the original implementation (std::function
// callbacks, key assignment and dispatch inlined); both servers are driven
// with identical randomized scripts — submissions, priorities (with
// deliberate ties), multi-segment jobs, PCP critical sections, aborts, and
// speed changes — over >= 1000 seeds, and every observable is compared with
// exact (bit-level) equality: run intervals, completion and idle event
// times, preemption counts, and meter busy time. The admission controller
// consumes exactly these signals (departure times and idle transitions), so
// identical sequences imply identical admission decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "metrics/utilization_meter.h"
#include "sched/job.h"
#include "sched/pcp.h"
#include "sched/stage_server.h"
#include "sched/timeline.h"
#include "sim/simulator.h"

namespace frap::sched {
namespace {

// ---------------------------------------------------------------------------
// Frozen pre-redesign executor (verbatim except for the class name). Do not
// "improve" this code: its value is that it never changes.

class LegacyStageServer {
 public:
  explicit LegacyStageServer(sim::Simulator& sim, std::string name = {})
      : sim_(sim), name_(std::move(name)) {}

  LegacyStageServer(const LegacyStageServer&) = delete;
  LegacyStageServer& operator=(const LegacyStageServer&) = delete;

  void set_on_complete(std::function<void(Job&)> cb) {
    on_complete_ = std::move(cb);
  }
  void set_on_idle(std::function<void()> cb) { on_idle_ = std::move(cb); }

  void submit(Job& job) {
    job.on_server = true;
    job.segment_index = 0;
    job.remaining = job.segments[0].length;
    job.held_lock = kNoLock;
    job.key = PriorityKey{job.priority_value, next_seq_++};
    for (const auto& seg : job.segments) {
      if (seg.lock != kNoLock) locks_.note_user(seg.lock, job.priority_value);
    }
    active_.push_back(&job);
    dispatch();
  }

  void abort(Job& job) {
    if (!job.on_server) return;
    auto it = std::find(active_.begin(), active_.end(), &job);
    if (it == active_.end()) return;
    if (running_ == &job) preempt_running();
    if (job.held_lock != kNoLock) locks_.release(job, job.held_lock);
    remove_active(job);
    dispatch();
    if (idle() && on_idle_) on_idle_();
  }

  bool idle() const { return active_.empty(); }
  const metrics::UtilizationMeter& meter() const { return meter_; }
  std::uint64_t preemptions() const { return preemptions_; }
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  void set_speed(double speed) {
    if (speed == speed_) return;
    Job* resumed = running_;
    if (resumed != nullptr) preempt_running();
    speed_ = speed;
    if (resumed != nullptr || !active_.empty()) dispatch();
  }

 private:
  Job* pick_next() {
    if (active_.empty()) return nullptr;
    Job* best = *std::min_element(
        active_.begin(), active_.end(),
        [](const Job* a, const Job* b) { return a->key < b->key; });
    const Segment& seg = best->segments[best->segment_index];
    if (seg.lock != kNoLock && best->held_lock != seg.lock &&
        !locks_.can_acquire(*best, seg.lock)) {
      Job* blk = locks_.blocker(*best, seg.lock);
      return blk;
    }
    return best;
  }

  void preempt_running() {
    const Duration elapsed = (sim_.now() - run_started_) * speed_;
    running_->remaining = std::max(0.0, running_->remaining - elapsed);
    if (timeline_ != nullptr) {
      timeline_->record(running_->id, run_started_, sim_.now(),
                        running_->segment_index);
    }
    sim_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEventId;
    running_ = nullptr;
  }

  void dispatch() {
    Job* next = pick_next();
    if (next != running_) {
      if (running_ != nullptr) {
        preempt_running();
        ++preemptions_;
      }
      if (next != nullptr) {
        running_ = next;
        next->has_started = true;
        run_started_ = sim_.now();
        Segment& seg = next->segments[next->segment_index];
        if (seg.lock != kNoLock && next->held_lock != seg.lock) {
          locks_.acquire(*next, seg.lock);
        }
        completion_event_ = sim_.after(
            next->remaining / speed_, [this] { handle_segment_completion(); });
      }
    }
    if (running_ != nullptr && !meter_busy_) {
      meter_.set_busy(sim_.now());
      meter_busy_ = true;
    } else if (running_ == nullptr && meter_busy_) {
      meter_.set_idle(sim_.now());
      meter_busy_ = false;
    }
  }

  void handle_segment_completion() {
    Job* job = running_;
    completion_event_ = sim::kInvalidEventId;
    running_ = nullptr;
    job->remaining = 0;
    if (timeline_ != nullptr) {
      timeline_->record(job->id, run_started_, sim_.now(),
                        job->segment_index);
    }
    Segment& seg = job->segments[job->segment_index];
    if (seg.lock != kNoLock && job->held_lock == seg.lock) {
      locks_.release(*job, seg.lock);
    }
    bool finished = false;
    if (job->segment_index + 1 < job->segments.size()) {
      ++job->segment_index;
      job->remaining = job->segments[job->segment_index].length;
    } else {
      remove_active(*job);
      finished = true;
    }
    dispatch();
    if (finished) {
      if (on_complete_) on_complete_(*job);
      if (idle() && on_idle_) on_idle_();
    }
  }

  void remove_active(Job& job) {
    auto it = std::find(active_.begin(), active_.end(), &job);
    active_.erase(it);
    job.on_server = false;
  }

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Job*> active_;
  Job* running_ = nullptr;
  Time run_started_ = kTimeZero;
  sim::EventId completion_event_ = sim::kInvalidEventId;
  bool meter_busy_ = false;
  PcpLockManager locks_;
  metrics::UtilizationMeter meter_;
  Timeline* timeline_ = nullptr;
  std::function<void(Job&)> on_complete_;
  std::function<void()> on_idle_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t preemptions_ = 0;
  double speed_ = 1.0;
};

// ---------------------------------------------------------------------------
// Randomized workload scripts.

struct ScriptedJob {
  Time submit_at = kTimeZero;
  PriorityValue priority = 0;
  std::vector<Segment> segments;
};

struct Script {
  std::vector<ScriptedJob> jobs;
  // Optional abort: (time, job index). Aborts may hit completed jobs (then
  // they are no-ops) — both servers must agree on that too.
  bool has_abort = false;
  Time abort_at = kTimeZero;
  std::size_t abort_index = 0;
  // Optional speed change.
  bool has_speed_change = false;
  Time speed_change_at = kTimeZero;
  double new_speed = 1.0;
};

Script make_script(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> job_count(1, 16);
  std::uniform_int_distribution<int> seg_count(1, 3);
  std::uniform_int_distribution<int> percent(0, 99);
  std::uniform_real_distribution<double> when(0.0, 40.0);
  std::uniform_real_distribution<double> length(0.1, 8.0);
  // A coarse grid of priorities makes ties (FIFO tie-break coverage) and
  // PCP ceiling collisions common.
  std::uniform_int_distribution<int> prio(1, 5);
  std::uniform_int_distribution<int> lock_id(0, 1);

  Script s;
  const int n = job_count(rng);
  s.jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ScriptedJob j;
    j.submit_at = when(rng);
    j.priority = static_cast<PriorityValue>(prio(rng));
    const int segs = seg_count(rng);
    for (int k = 0; k < segs; ++k) {
      Segment seg;
      seg.length = length(rng);
      // ~30% of segments are critical sections on one of two stage locks.
      if (percent(rng) < 30) seg.lock = lock_id(rng);
      j.segments.push_back(seg);
    }
    s.jobs.push_back(std::move(j));
  }
  if (percent(rng) < 40) {
    s.has_abort = true;
    s.abort_at = when(rng);
    s.abort_index =
        static_cast<std::size_t>(percent(rng)) % s.jobs.size();
  }
  if (percent(rng) < 30) {
    s.has_speed_change = true;
    s.speed_change_at = when(rng);
    s.new_speed = 0.5 + 0.25 * (percent(rng) % 4);  // 0.5, 0.75, 1.0, 1.25
  }
  return s;
}

// Everything an admission controller (or a Gantt chart) can observe about
// one run.
struct Observed {
  Timeline timeline;
  std::vector<std::uint64_t> completion_ids;
  std::vector<Time> completion_times;
  std::vector<Time> idle_times;
  std::uint64_t preemptions = 0;
  Duration busy_time = 0;
  Time finished_at = kTimeZero;
};

template <typename Server>
Observed run_script(const Script& s) {
  sim::Simulator sim;
  Server server(sim, "diff");
  Observed out;
  server.set_timeline(&out.timeline);
  server.set_on_complete([&](Job& j) {
    out.completion_ids.push_back(j.id);
    out.completion_times.push_back(sim.now());
  });
  server.set_on_idle([&] { out.idle_times.push_back(sim.now()); });

  std::vector<std::unique_ptr<Job>> jobs;
  jobs.reserve(s.jobs.size());
  for (std::size_t i = 0; i < s.jobs.size(); ++i) {
    jobs.push_back(std::make_unique<Job>(static_cast<std::uint64_t>(i + 1),
                                         s.jobs[i].priority,
                                         s.jobs[i].segments));
    Job* job = jobs.back().get();
    sim.at(s.jobs[i].submit_at, [&server, job] { server.submit(*job); });
  }
  if (s.has_abort) {
    Job* victim = jobs[s.abort_index].get();
    sim.at(s.abort_at, [&server, victim] { server.abort(*victim); });
  }
  if (s.has_speed_change) {
    sim.at(s.speed_change_at,
           [&server, &s] { server.set_speed(s.new_speed); });
  }
  sim.run();
  out.preemptions = server.preemptions();
  out.finished_at = sim.now();
  out.busy_time = server.meter().busy_time(kTimeZero, out.finished_at + 1.0);
  return out;
}

// Exact equality throughout: "bit-identical" is the contract, so no
// tolerance is applied anywhere. EXPECT_EQ on doubles compares with ==.
void expect_identical(const Observed& legacy, const Observed& fresh,
                      std::uint64_t seed) {
  ASSERT_EQ(legacy.timeline.size(), fresh.timeline.size()) << "seed " << seed;
  for (std::size_t i = 0; i < legacy.timeline.size(); ++i) {
    const RunInterval& a = legacy.timeline[i];
    const RunInterval& b = fresh.timeline[i];
    EXPECT_EQ(a.job_id, b.job_id) << "seed " << seed << " interval " << i;
    EXPECT_EQ(a.start, b.start) << "seed " << seed << " interval " << i;
    EXPECT_EQ(a.end, b.end) << "seed " << seed << " interval " << i;
    EXPECT_EQ(a.segment, b.segment) << "seed " << seed << " interval " << i;
  }
  EXPECT_EQ(legacy.completion_ids, fresh.completion_ids) << "seed " << seed;
  EXPECT_EQ(legacy.completion_times, fresh.completion_times)
      << "seed " << seed;
  EXPECT_EQ(legacy.idle_times, fresh.idle_times) << "seed " << seed;
  EXPECT_EQ(legacy.preemptions, fresh.preemptions) << "seed " << seed;
  EXPECT_EQ(legacy.busy_time, fresh.busy_time) << "seed " << seed;
  EXPECT_EQ(legacy.finished_at, fresh.finished_at) << "seed " << seed;
}

TEST(PolicyDifferentialTest, DefaultPolicyBitIdenticalToLegacyOver1kSeeds) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    const Script s = make_script(seed);
    const Observed legacy = run_script<LegacyStageServer>(s);
    const Observed fresh = run_script<StageServer>(s);
    expect_identical(legacy, fresh, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// The pre-redesign executor took callbacks through std::function setters;
// the frozen copy and the deprecated shims must agree too (the shims are
// what keeps one-PR-migration callers compiling).
TEST(PolicyDifferentialTest, LegacyShimsMatchTypedListenerPath) {
  const Script s = make_script(424242);
  const Observed via_shims = run_script<StageServer>(s);

  // Same script, typed listener instead of the shims.
  sim::Simulator sim;
  StageServer server(sim, "typed");
  struct Recorder : StageListener {
    std::vector<std::uint64_t> ids;
    std::vector<Time> times;
    std::vector<Time> idles;
    sim::Simulator* sim = nullptr;
    void on_job_complete(StageExecutor&, Job& j) override {
      ids.push_back(j.id);
      times.push_back(sim->now());
    }
    void on_stage_idle(StageExecutor&) override {
      idles.push_back(sim->now());
    }
  } recorder;
  recorder.sim = &sim;
  server.set_listener(&recorder);
  Timeline timeline;
  server.set_timeline(&timeline);

  std::vector<std::unique_ptr<Job>> jobs;
  for (std::size_t i = 0; i < s.jobs.size(); ++i) {
    jobs.push_back(std::make_unique<Job>(static_cast<std::uint64_t>(i + 1),
                                         s.jobs[i].priority,
                                         s.jobs[i].segments));
    Job* job = jobs.back().get();
    sim.at(s.jobs[i].submit_at, [&server, job] { server.submit(*job); });
  }
  if (s.has_abort) {
    Job* victim = jobs[s.abort_index].get();
    sim.at(s.abort_at, [&server, victim] { server.abort(*victim); });
  }
  if (s.has_speed_change) {
    sim.at(s.speed_change_at,
           [&server, &s] { server.set_speed(s.new_speed); });
  }
  sim.run();

  EXPECT_EQ(recorder.ids, via_shims.completion_ids);
  EXPECT_EQ(recorder.times, via_shims.completion_times);
  EXPECT_EQ(recorder.idles, via_shims.idle_times);
  ASSERT_EQ(timeline.size(), via_shims.timeline.size());
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].start, via_shims.timeline[i].start);
    EXPECT_EQ(timeline[i].end, via_shims.timeline[i].end);
  }
}

}  // namespace
}  // namespace frap::sched
