// The ISSUE 5 zero-allocation invariant: once the pools are warm, the
// steady-state admit -> expire cycle — admission test, tracker add, expiry
// timer schedule, departures, idle resets, wheel advance, typed expiry
// dispatch — performs ZERO heap allocations. Pinned with a per-binary
// operator new/delete replacement that counts while a flag is set.
//
// The counting window only ever covers single-threaded simulator code, but
// the counters are atomics so the hook itself is safe no matter what gtest
// internals do on other threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

// GCC pairs our replacement operator new (malloc-backed) with the library
// operator delete and flags the free() as mismatched; the replacement pair
// below is complete and consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "ingest/ingest_session.h"
#include "ingest/wire_decoder.h"
#include "ingest/wire_encoder.h"
#include "sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void count_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace frap::core {
namespace {

constexpr std::size_t kStages = 5;

// A sparse spec with tiny contributions: at 10k live tasks the region is
// nowhere near full, so every attempt is admitted and the live count is
// governed purely by deadline = 1s vs the arrival spacing.
TaskSpec tiny_spec(std::uint64_t id) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = 1.0;
  spec.stages.resize(kStages);
  spec.stages[0].compute = 2e-8;
  spec.stages[2].compute = 1e-8;
  spec.stages[4].compute = 3e-8;
  return spec;
}

TEST(AllocSteadyStateTest, AdmitExpireCycleIsAllocationFree) {
  constexpr std::uint64_t kLiveTarget = 10000;
  constexpr Duration kSpacing = 1.0 / static_cast<double>(kLiveTarget);

  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, kStages);
  AdmissionController controller(sim, tracker,
                                 FeasibleRegion::deadline_monotonic(kStages));

  // Warm-up: reach the steady live count and warm every pool (wheel cells,
  // slot map, arena, id map, departed queues, due buffers, scratch).
  std::uint64_t id = 1;
  TaskSpec spec = tiny_spec(0);
  for (std::uint64_t i = 0; i < 2 * kLiveTarget; ++i) {
    sim.run_until(sim.now() + kSpacing);
    spec.id = id++;
    const auto d = controller.try_admit(spec);
    ASSERT_TRUE(d.admitted);
    if (i % 3 == 0) {
      tracker.mark_departed(spec.id, 0);
      tracker.on_stage_idle(0);
    }
  }
  ASSERT_GE(tracker.live_tasks(), kLiveTarget - 1);

  // Steady state: measure 2000 full admit -> expire cycles. Every loop
  // iteration advances past exactly one expiry and admits one replacement,
  // plus a departure + idle reset every third cycle.
  g_allocs.store(0);
  g_counting.store(true);
  for (int i = 0; i < 2000; ++i) {
    sim.run_until(sim.now() + kSpacing);
    spec.id = id++;
    if (!controller.try_admit(spec).admitted) break;  // assert after window
    if (i % 3 == 0) {
      tracker.mark_departed(spec.id, 0);
      tracker.on_stage_idle(0);
    }
  }
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "steady-state admit/expire cycles must not allocate";
  EXPECT_GE(tracker.live_tasks(), kLiveTarget - 1);
  EXPECT_EQ(controller.attempts(), 2 * kLiveTarget + 2000);
  EXPECT_EQ(controller.admitted(), controller.attempts());
  tracker.verify_lhs_cache(1e-9);
}

// The ISSUE 9 extension of the same invariant: steady-state GRAPH admits
// through the long-path incremental fast path — profile evaluation over the
// interned shape, victim-guard cap checks, sparse commit, expiry — must not
// allocate either. The spec is canonicalized once; only its id changes per
// admission.
TEST(AllocSteadyStateTest, LongPathGraphAdmitCycleIsAllocationFree) {
  constexpr std::uint64_t kLiveTarget = 5000;
  constexpr Duration kSpacing = 1.0 / static_cast<double>(kLiveTarget);

  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, kStages);
  GraphAdmissionController controller(
      sim, tracker,
      LongPathEvaluator(std::vector<double>(kStages, 1.0), {}, 0.5));

  // Diamond across four resources with tiny computes: the admit test stays
  // far from the budget, so the live count is deadline-governed.
  TaskGraphShapeRegistry registry;
  GraphTaskSpec raw;
  raw.id = 0;
  raw.deadline = 1.0;
  raw.nodes.resize(4);
  for (std::size_t v = 0; v < 4; ++v) {
    raw.nodes[v].resource = v % kStages;
    raw.nodes[v].demand.compute = 2e-8;
  }
  raw.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  GraphTaskSpec spec = registry.canonicalize(raw);

  std::uint64_t id = 1;
  for (std::uint64_t i = 0; i < 2 * kLiveTarget; ++i) {
    sim.run_until(sim.now() + kSpacing);
    spec.id = id++;
    ASSERT_TRUE(controller.try_admit(spec, sim.now()).admitted);
  }
  ASSERT_GE(tracker.live_tasks(), kLiveTarget - 1);

  g_allocs.store(0);
  g_counting.store(true);
  for (int i = 0; i < 2000; ++i) {
    sim.run_until(sim.now() + kSpacing);
    spec.id = id++;
    if (!controller.try_admit(spec, sim.now()).admitted) break;
  }
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "steady-state long-path graph admits must not allocate";
  EXPECT_EQ(controller.admitted(), controller.attempts());
  EXPECT_EQ(controller.evaluations(), 2 * kLiveTarget + 2000);
  tracker.verify_lhs_cache(1e-9);
}

// The ISSUE 10 extension: the full wire-ingest cycle — zero-copy cursor
// decode, TaskSpec assembly through the session scratch, rebased replay
// (run_until + admit + commit + expiry) — must be allocation-free once the
// session and tracker pools are warm. This is the "zero-copy" claim of
// docs/wire_format.md made enforceable: the decoder holds no per-record
// state and the feed seam reuses one scratch spec.
TEST(AllocSteadyStateTest, IngestDecodeAdmitCycleIsAllocationFree) {
  constexpr std::size_t kRecords = 1000;
  constexpr Duration kSpacing = 1e-4;
  constexpr Duration kSpan = kRecords * kSpacing;  // 0.1 s per frame

  // Pre-encode one frame (producer side; allocations here are untimed).
  // Deadline < frame span so each epoch's ids expire before they recur.
  ingest::WireEncoder enc(kStages);
  {
    TaskSpec spec = tiny_spec(0);
    spec.deadline = 0.05;
    for (std::size_t k = 0; k < kRecords; ++k) {
      spec.id = k + 1;
      enc.add(static_cast<double>(k) * kSpacing, spec);
    }
  }
  const auto view = ingest::WireView::open(enc.frame());
  ASSERT_TRUE(view.valid());

  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, kStages);
  AdmissionController controller(sim, tracker,
                                 FeasibleRegion::deadline_monotonic(kStages));
  ingest::IngestSession session(kStages);

  // Warm: a few epochs fill the session scratch, tracker pools, and wheel.
  Time t = 0;
  for (int i = 0; i < 5; ++i) {
    const auto st = session.replay(view, controller, sim, nullptr, t);
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(st.admitted, kRecords);
    t += kSpan;
  }

  g_allocs.store(0);
  g_counting.store(true);
  std::uint64_t admitted = 0;
  for (int i = 0; i < 20; ++i) {
    admitted += session.replay(view, controller, sim, nullptr, t).admitted;
    t += kSpan;
  }
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "wire decode -> assemble -> admit cycles must not allocate";
  EXPECT_EQ(admitted, 20u * kRecords);
  tracker.verify_lhs_cache(1e-9);
}

// remove_task (the shed path) must also be allocation-free in steady state,
// including the immediate wheel-cell reclamation.
TEST(AllocSteadyStateTest, RemoveTaskIsAllocationFree) {
  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, kStages);

  const double add[kStages] = {1e-8, 0, 2e-8, 0, 1e-8};
  // Warm: create and remove a few hundred tasks.
  std::uint64_t id = 1;
  for (int i = 0; i < 500; ++i) {
    tracker.add(id, add, sim.now() + 1.0);
    tracker.remove_task(id);
    ++id;
  }

  g_allocs.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) {
    tracker.add(id, add, sim.now() + 1.0);
    tracker.remove_task(id);
    ++id;
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocs.load(), 0u);
  EXPECT_EQ(tracker.live_tasks(), 0u);
  EXPECT_EQ(sim.timer_wheel().size(), 0u)
      << "cancelled expiries must reclaim their wheel cells";
}

}  // namespace
}  // namespace frap::core
