// Differential A/B sweep for the slot-map/timer-wheel tracker store
// (ISSUE 5 acceptance criterion): the production SyntheticUtilizationTracker
// and the preserved PR-1 ReferenceUtilizationTracker are driven through
// identical randomized mutation histories — >= 12k arrivals interleaved with
// expiries, departures, idle resets, shedding removals, and quota rescales —
// and must produce bit-identical admission decisions and utilizations that
// agree to <= 1e-6 at every step.
//
// Decisions on the reference side are full evaluations through the shared
// FeasibleRegion::admits_lhs predicate (the two stores are *storage*
// variants of one policy; the predicate must be the single source of truth).
// Ids are never reused: the reference keeps PR-1's raw-id departed queues,
// whose id-reuse aliasing the slot-map store intentionally fixes
// (docs/perf_internals.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/reference_tracker.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sim/simulator.h"
#include "util/math.h"
#include "util/rng.h"

namespace frap::core {
namespace {

constexpr std::size_t kStages = 6;
constexpr int kArrivals = 12500;

TaskSpec random_task(util::Rng& rng, std::uint64_t id) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = rng.uniform(0.4, 4.0);
  spec.stages.resize(kStages);
  for (auto& s : spec.stages) {
    // Sparse (~half untouched) with occasional wide tasks so both the
    // inline (<= 4 touched) and arena (> 4 touched) store paths run.
    if (rng.bernoulli(0.55)) s.compute = rng.uniform(0.0, 0.1) * spec.deadline;
  }
  return spec;
}

// Full-evaluation admission against the reference tracker, through the same
// shared predicate the production controller uses.
bool reference_admit(const testing::ReferenceUtilizationTracker& tracker,
                     const FeasibleRegion& region, const TaskSpec& spec) {
  double lhs = 0;
  for (std::size_t j = 0; j < kStages; ++j) {
    const double u = tracker.utilization(j) +
                     util::safe_div(spec.stages[j].compute, spec.deadline);
    lhs += stage_delay_factor(u);
  }
  return FeasibleRegion::admits_lhs(lhs, region.bound());
}

void expect_same_utilizations(const SyntheticUtilizationTracker& a,
                              const testing::ReferenceUtilizationTracker& b,
                              int step) {
  for (std::size_t j = 0; j < kStages; ++j) {
    EXPECT_NEAR(a.utilization(j), b.utilization(j), 1e-6)
        << "stage " << j << " at step " << step;
  }
}

TEST(StoreDifferentialTest, TwelveKArrivalSweepBitIdentical) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  SyntheticUtilizationTracker store(sim_a, kStages);
  testing::ReferenceUtilizationTracker ref(sim_b, kStages);
  const auto region = FeasibleRegion::deadline_monotonic(kStages);
  AdmissionController controller(sim_a, store, region);

  util::Rng rng(20260805);
  std::uint64_t mismatches = 0;
  std::uint64_t admitted = 0;
  std::uint64_t removed = 0;
  std::uint64_t rescales = 0;
  std::vector<std::uint64_t> live_ids;

  for (int i = 1; i <= kArrivals; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    const auto spec = random_task(rng, id);

    const Time t = sim_a.now() + rng.exponential(0.015);
    sim_a.run_until(t);
    sim_b.run_until(t);

    const auto decision = controller.try_admit(spec);
    const bool ref_ok = reference_admit(ref, region, spec);
    if (decision.admitted != ref_ok) ++mismatches;
    if (decision.admitted) {
      // Mirror the commit into the reference store.
      std::vector<double> add(kStages);
      for (std::size_t j = 0; j < kStages; ++j) {
        add[j] = util::safe_div(spec.stages[j].compute, spec.deadline);
      }
      ref.add(id, add, t + spec.deadline);
      live_ids.push_back(id);
      ++admitted;
    }

    // Interleave the remaining mutations on BOTH stores.
    if (!live_ids.empty() && rng.bernoulli(0.35)) {
      const auto victim = live_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live_ids.size()) - 1))];
      const auto stage =
          static_cast<std::size_t>(rng.uniform_int(0, kStages - 1));
      store.mark_departed(victim, stage);
      ref.mark_departed(victim, stage);
      if (rng.bernoulli(0.6)) {
        store.on_stage_idle(stage);
        ref.on_stage_idle(stage);
      }
    }
    if (!live_ids.empty() && rng.bernoulli(0.08)) {
      // Shed a random live task (mirrors SheddingAdmissionController).
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live_ids.size()) - 1));
      const auto victim = live_ids[k];
      live_ids[k] = live_ids.back();
      live_ids.pop_back();
      store.remove_task(victim);
      ref.remove_task(victim);
      ++removed;
    }
    if (rng.bernoulli(0.002)) {
      // Quota-weight move (sharded service path).
      const double factor = rng.uniform(0.6, 1.5);
      store.rescale_dynamic(factor);
      ref.rescale_dynamic(factor);
      ++rescales;
    }

    // Expired ids linger in live_ids; drop them lazily so the shed pick
    // above mostly hits live tasks (remove_task is a no-op otherwise —
    // identically on both stores).
    if (i % 512 == 0) {
      std::erase_if(live_ids,
                    [&](std::uint64_t v) { return !store.is_live(v); });
      expect_same_utilizations(store, ref, i);
      EXPECT_EQ(store.live_tasks(), ref.live_tasks()) << "step " << i;
      EXPECT_NEAR(store.cached_lhs(), ref.cached_lhs(), 1e-6) << "step " << i;
    }
  }

  EXPECT_EQ(mismatches, 0u);
  // The sweep must exercise both outcomes and every mutation kind.
  EXPECT_GT(admitted, 1000u);
  EXPECT_LT(admitted, static_cast<std::uint64_t>(kArrivals));
  EXPECT_GT(removed, 100u);
  EXPECT_GE(rescales, 5u);

  // Drain both simulators: every remaining expiry fires; final state agrees.
  sim_a.run();
  sim_b.run();
  EXPECT_EQ(store.live_tasks(), 0u);
  EXPECT_EQ(ref.live_tasks(), 0u);
  expect_same_utilizations(store, ref, kArrivals + 1);
  store.verify_lhs_cache(1e-9);
  ref.verify_lhs_cache(1e-9);
}

// Idle reset disabled (ablation A1) must behave identically too.
TEST(StoreDifferentialTest, AblationNoIdleResetMatches) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  SyntheticUtilizationTracker store(sim_a, kStages);
  testing::ReferenceUtilizationTracker ref(sim_b, kStages);
  store.set_idle_reset_enabled(false);
  ref.set_idle_reset_enabled(false);

  util::Rng rng(42);
  for (int i = 1; i <= 2000; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    const auto spec = random_task(rng, id);
    const Time t = sim_a.now() + rng.exponential(0.01);
    sim_a.run_until(t);
    sim_b.run_until(t);
    std::vector<double> add(kStages);
    for (std::size_t j = 0; j < kStages; ++j) {
      add[j] = util::safe_div(spec.stages[j].compute, spec.deadline);
    }
    store.add(id, add, t + spec.deadline);
    ref.add(id, add, t + spec.deadline);
    const auto stage =
        static_cast<std::size_t>(rng.uniform_int(0, kStages - 1));
    store.mark_departed(id, stage);
    ref.mark_departed(id, stage);
    store.on_stage_idle(stage);  // no-op under the ablation
    ref.on_stage_idle(stage);
    if (i % 256 == 0) expect_same_utilizations(store, ref, i);
  }
  sim_a.run();
  sim_b.run();
  EXPECT_EQ(store.live_tasks(), 0u);
  EXPECT_EQ(ref.live_tasks(), 0u);
}

// Reservations interact with both stores' clamping identically.
TEST(StoreDifferentialTest, ReservationsMatch) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  SyntheticUtilizationTracker store(sim_a, kStages);
  testing::ReferenceUtilizationTracker ref(sim_b, kStages);
  for (std::size_t j = 0; j < kStages; ++j) {
    store.set_reservation(j, 0.05 * static_cast<double>(j));
    ref.set_reservation(j, 0.05 * static_cast<double>(j));
  }
  util::Rng rng(9);
  for (int i = 1; i <= 1000; ++i) {
    const auto spec = random_task(rng, static_cast<std::uint64_t>(i));
    const Time t = sim_a.now() + rng.exponential(0.02);
    sim_a.run_until(t);
    sim_b.run_until(t);
    std::vector<double> add(kStages);
    for (std::size_t j = 0; j < kStages; ++j) {
      add[j] = util::safe_div(spec.stages[j].compute, spec.deadline);
    }
    store.add(static_cast<std::uint64_t>(i), add, t + spec.deadline);
    ref.add(static_cast<std::uint64_t>(i), add, t + spec.deadline);
    if (i % 128 == 0) expect_same_utilizations(store, ref, i);
  }
  sim_a.run();
  sim_b.run();
  expect_same_utilizations(store, ref, 1001);
}

// ISSUE 6 satellite: pins the PR-1 id-reuse aliasing defect and its fix.
//
// Scenario: task 7 departs stage 0 (queueing a raw-id entry), is removed,
// and its id is REUSED by a brand-new task; then stage 0 goes idle.
//   * IdReuse::kFaithful — the stale queue entry aliases onto the new task
//     and strips its live contribution (the preserved bug: utilization
//     collapses to 0). This branch is the "fails on the faithful copy"
//     witness: asserting correct behavior against it would fail.
//   * IdReuse::kCorrected — the entry's add() epoch no longer matches, so
//     it is dropped and the new task's contribution survives, matching the
//     generation-checked slot-map store exactly.
TEST(StoreDifferentialTest, IdReuseAliasingPinned) {
  constexpr std::uint64_t kReusedId = 7;
  constexpr double kOld = 0.10;
  constexpr double kNew = 0.25;
  const std::vector<double> old_c = {kOld, 0.0, 0.0, 0.0, 0.0, 0.0};
  const std::vector<double> new_c = {kNew, 0.0, 0.0, 0.0, 0.0, 0.0};

  const auto drive = [&](auto& tracker) {
    tracker.add(kReusedId, old_c, 100.0);
    tracker.mark_departed(kReusedId, 0);
    tracker.remove_task(kReusedId);
    tracker.add(kReusedId, new_c, 100.0);  // id reuse
    tracker.on_stage_idle(0);
    return tracker.utilization(0);
  };

  sim::Simulator sim_faithful;
  testing::ReferenceUtilizationTracker faithful(
      sim_faithful, kStages,
      testing::ReferenceUtilizationTracker::IdReuse::kFaithful);
  sim::Simulator sim_corrected;
  testing::ReferenceUtilizationTracker corrected(
      sim_corrected, kStages,
      testing::ReferenceUtilizationTracker::IdReuse::kCorrected);
  sim::Simulator sim_store;
  SyntheticUtilizationTracker store(sim_store, kStages);

  // The defect, pinned: the faithful copy strips the NEW task's live
  // contribution via the stale departed-queue entry.
  EXPECT_DOUBLE_EQ(drive(faithful), 0.0);
  EXPECT_TRUE(faithful.is_live(kReusedId));  // record exists, contribution gone

  // The corrected variant and the production slot-map store both keep it.
  EXPECT_DOUBLE_EQ(drive(corrected), kNew);
  EXPECT_DOUBLE_EQ(drive(store), kNew);
  EXPECT_DOUBLE_EQ(corrected.cached_lhs(), store.cached_lhs());

  // Default construction stays faithful (the A/B sweep's baseline must not
  // silently change behavior under it).
  sim::Simulator sim_default;
  testing::ReferenceUtilizationTracker default_mode(sim_default, kStages);
  EXPECT_DOUBLE_EQ(drive(default_mode), 0.0);
}

}  // namespace
}  // namespace frap::core
