#include <gtest/gtest.h>

#include <vector>

#include "core/adaptive_alpha.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "sim/simulator.h"

namespace frap::core {
namespace {

TaskSpec make_task(std::uint64_t id, Duration deadline,
                   std::vector<Duration> computes) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  for (Duration c : computes) {
    StageDemand d;
    d.compute = c;
    spec.stages.push_back(d);
  }
  return spec;
}

class AdaptiveAlphaTest : public ::testing::Test {
 protected:
  AdaptiveAlphaTest() : tracker_(sim_, 2), controller_(sim_, tracker_) {}

  sim::Simulator sim_;
  SyntheticUtilizationTracker tracker_;
  AdaptiveAlphaAdmissionController controller_;
};

TEST_F(AdaptiveAlphaTest, StartsWithAlphaOne) {
  EXPECT_DOUBLE_EQ(controller_.alpha(), 1.0);
  // Deadline-monotonic-consistent priorities keep alpha at 1.
  const auto d1 = controller_.try_admit(make_task(1, 1.0, {0.1, 0.1}), 1.0);
  EXPECT_TRUE(d1.admitted);
  EXPECT_DOUBLE_EQ(d1.alpha_used, 1.0);
  const auto d2 = controller_.try_admit(make_task(2, 2.0, {0.1, 0.1}), 2.0);
  EXPECT_TRUE(d2.admitted);
  EXPECT_DOUBLE_EQ(controller_.alpha(), 1.0);
}

TEST_F(AdaptiveAlphaTest, InversionShrinksAlphaForTheCandidateItself) {
  // First task: priority 1 (urgent), deadline 10 (lax) -> no pair yet.
  EXPECT_TRUE(controller_.try_admit(make_task(1, 10.0, {0.1, 0.1}), 1.0)
                  .admitted);
  EXPECT_DOUBLE_EQ(controller_.alpha(), 1.0);
  // Second task: priority 2 (less urgent) but deadline 1 (urgent!) —
  // an inversion with ratio 1/10. The candidate is tested against 0.1.
  const auto d = controller_.try_admit(make_task(2, 1.0, {0.01, 0.01}), 2.0);
  EXPECT_DOUBLE_EQ(d.alpha_used, 0.1);
  // lhs after adding ~ f(0.11)*2 + f-ish; compute: u = 0.1+0.01 = 0.11...
  // contributions: task1 0.1/10 = 0.01 per stage; task2 0.01/1 = 0.01.
  // u_j = 0.02 -> lhs = 2 f(0.02) ~= 0.0404 <= 0.1 -> admitted.
  EXPECT_TRUE(d.admitted);
  EXPECT_DOUBLE_EQ(controller_.alpha(), 0.1);
}

TEST_F(AdaptiveAlphaTest, RejectionDoesNotPoisonAlpha) {
  EXPECT_TRUE(controller_.try_admit(make_task(1, 10.0, {2.0, 2.0}), 1.0)
                  .admitted);  // u = 0.2 each
  // Candidate with a catastrophic inversion (alpha would be 0.01) and
  // enough load to fail its own test.
  const auto d =
      controller_.try_admit(make_task(2, 0.1, {0.05, 0.05}), 50.0);
  EXPECT_FALSE(d.admitted);
  // Rejected tasks never run, so they cannot create inversions: alpha
  // must remain 1.
  EXPECT_DOUBLE_EQ(controller_.alpha(), 1.0);
}

TEST_F(AdaptiveAlphaTest, AlphaOnlyRatchetsDown) {
  (void)controller_.try_admit(make_task(1, 4.0, {0.01, 0.01}), 1.0);
  (void)controller_.try_admit(make_task(2, 1.0, {0.01, 0.01}), 2.0);  // 1/4
  EXPECT_DOUBLE_EQ(controller_.alpha(), 0.25);
  (void)controller_.try_admit(make_task(3, 2.0, {0.01, 0.01}), 3.0);  // 1/2
  EXPECT_DOUBLE_EQ(controller_.alpha(), 0.25);  // unchanged
}

TEST_F(AdaptiveAlphaTest, SmallerAlphaShrinksAdmission) {
  // Without inversions this load fits easily (lhs ~ 0.73 <= 1).
  {
    sim::Simulator sim;
    SyntheticUtilizationTracker tracker(sim, 2);
    AdaptiveAlphaAdmissionController fresh(sim, tracker);
    EXPECT_TRUE(
        fresh.try_admit(make_task(1, 1.0, {0.3, 0.3}), 1.0).admitted);
  }
  // With a learned alpha of 0.5, the same load (lhs ~0.73 > 0.5) fails.
  (void)controller_.try_admit(make_task(1, 2.0, {0.001, 0.001}), 1.0);
  (void)controller_.try_admit(make_task(2, 1.0, {0.001, 0.001}), 2.0);  // 0.5
  EXPECT_DOUBLE_EQ(controller_.alpha(), 0.5);
  const auto d = controller_.try_admit(make_task(3, 1.0, {0.3, 0.3}), 1.5);
  EXPECT_FALSE(d.admitted);
}

TEST_F(AdaptiveAlphaTest, CountsAttempts) {
  (void)controller_.try_admit(make_task(1, 1.0, {0.1, 0.1}), 1.0);
  (void)controller_.try_admit(make_task(2, 1.0, {5.0, 5.0}), 1.0);  // too big
  EXPECT_EQ(controller_.attempts(), 2u);
  EXPECT_EQ(controller_.admitted(), 1u);
}

}  // namespace
}  // namespace frap::core
