// Wire-format codec: exact round trips, canonical re-encode byte identity,
// typed decode errors for every corruption class, and never-UB fuzzing
// (run under ASan/UBSan in CI). docs/wire_format.md is the contract.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "ingest/ingest_session.h"
#include "ingest/trace_codec.h"
#include "ingest/wire_decoder.h"
#include "ingest/wire_encoder.h"
#include "ingest/wire_format.h"
#include "workload/replay.h"

namespace {

using namespace frap;
using ingest::WireError;

constexpr std::size_t kStages = 5;

core::TaskSpec sparse_task(std::uint64_t id, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  core::TaskSpec spec;
  spec.id = id;
  spec.deadline = 0.1 + unif(rng);
  spec.importance = unif(rng) * 10.0 - 5.0;
  spec.stages.resize(kStages);
  bool any = false;
  for (auto& s : spec.stages) {
    if (unif(rng) < 0.5) {
      s.compute = 1e-6 + 1e-3 * unif(rng);
      any = true;
    }
  }
  if (!any) spec.stages[0].compute = 1e-4;
  return spec;
}

workload::ArrivalTrace random_trace(std::size_t count, std::uint64_t seed,
                                    Time start = 0.0) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(1000.0);
  workload::ArrivalTrace trace(kStages);
  Time t = start;
  for (std::size_t i = 0; i < count; ++i) {
    t += gap(rng);
    trace.append(t, sparse_task(i + 1, rng));
  }
  return trace;
}

std::vector<std::byte> frame_copy(std::span<const std::byte> frame) {
  return std::vector<std::byte>(frame.begin(), frame.end());
}

bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// --- layout and encoder basics ------------------------------------------

TEST(WireFormat, LayoutConstants) {
  EXPECT_EQ(ingest::kWireHeaderSize, 24u);
  EXPECT_EQ(ingest::kWireRecordFixedSize, 36u);
  EXPECT_EQ(ingest::kWirePairSize, 12u);
  EXPECT_EQ(ingest::kWireMagic, 0x50415246u);  // "FRAP" little-endian
}

TEST(WireFormat, HeaderFieldsDecodeBack) {
  ingest::WireEncoder enc(kStages, 2.5);
  core::TaskSpec spec = [] {
    std::mt19937_64 rng(7);
    return sparse_task(42, rng);
  }();
  enc.add(3.0, spec);
  ingest::WireParse parse;
  const auto view = ingest::WireView::open(enc.frame(), &parse);
  ASSERT_TRUE(parse.ok()) << ingest::wire_error_name(parse.error);
  EXPECT_EQ(view.num_stages(), kStages);
  EXPECT_EQ(view.record_count(), 1u);
  EXPECT_TRUE(bit_equal(view.base_time(), 2.5));
  EXPECT_EQ(view.size_bytes(), enc.frame().size());
}

TEST(WireFormat, EncoderBufferReuseIsByteIdentical) {
  const auto trace = random_trace(100, 11);
  ingest::WireEncoder reused(kStages);
  // Dirty the buffer with a different frame first.
  (void)ingest::encode_trace(random_trace(37, 99), reused);
  const auto a = frame_copy(ingest::encode_trace(trace, reused));
  ingest::WireEncoder fresh(kStages);
  const auto b = frame_copy(ingest::encode_trace(trace, fresh));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

// --- exact round trips --------------------------------------------------

TEST(WireFormat, TraceRoundTripIsBitExact) {
  const auto trace = random_trace(500, 3, /*start=*/1.75);
  ingest::WireEncoder enc(kStages);
  const auto frame = ingest::encode_trace(trace, enc);

  workload::ArrivalTrace back;
  const auto parse = ingest::decode_trace(frame, &back);
  ASSERT_TRUE(parse.ok()) << ingest::wire_error_name(parse.error);
  ASSERT_EQ(back.size(), trace.size());
  ASSERT_EQ(back.num_stages(), trace.num_stages());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_TRUE(bit_equal(back[i].time, trace[i].time)) << i;
    EXPECT_EQ(back[i].task.id, trace[i].task.id);
    EXPECT_TRUE(bit_equal(back[i].task.deadline, trace[i].task.deadline));
    EXPECT_TRUE(bit_equal(back[i].task.importance, trace[i].task.importance));
    for (std::size_t j = 0; j < kStages; ++j) {
      EXPECT_TRUE(bit_equal(back[i].task.stages[j].compute,
                            trace[i].task.stages[j].compute))
          << i << "," << j;
    }
  }
}

TEST(WireFormat, DecodeReencodeIsByteIdentical) {
  ingest::WireEncoder enc(kStages);
  const auto original =
      frame_copy(ingest::encode_trace(random_trace(300, 17), enc));

  workload::ArrivalTrace decoded;
  ASSERT_TRUE(ingest::decode_trace(original, &decoded).ok());
  ingest::WireEncoder enc2(kStages);
  const auto reencoded = ingest::encode_trace(decoded, enc2);
  ASSERT_EQ(reencoded.size(), original.size());
  EXPECT_EQ(std::memcmp(reencoded.data(), original.data(), original.size()),
            0);
}

TEST(WireFormat, ZeroTimestampsAndTiesRoundTrip) {
  workload::ArrivalTrace trace(kStages);
  std::mt19937_64 rng(5);
  trace.append(0.0, sparse_task(1, rng));
  trace.append(0.0, sparse_task(2, rng));  // simultaneous arrivals are legal
  trace.append(0.5, sparse_task(3, rng));
  ingest::WireEncoder enc(kStages);
  workload::ArrivalTrace back;
  ASSERT_TRUE(ingest::decode_trace(ingest::encode_trace(trace, enc), &back)
                  .ok());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(bit_equal(back[1].time, 0.0));
}

// --- class records ------------------------------------------------------

TEST(WireFormat, ClassRecordsRoundTripThroughTable) {
  ingest::TaskClassTable table;
  std::vector<core::StageDemand> stages(kStages);
  stages[1].compute = 2e-3;
  stages[4].compute = 5e-4;
  const std::uint16_t cls = table.add(stages);

  ingest::WireEncoder enc(kStages, 0.0);
  enc.add_class(0.25, /*id=*/9, /*deadline=*/0.5, /*importance=*/3.0, cls);
  enc.add_class(0.50, /*id=*/10, /*deadline=*/0.75, /*importance=*/-1.0, cls);
  const auto frame = enc.frame();

  workload::ArrivalTrace back;
  ASSERT_TRUE(ingest::decode_trace(frame, &back, &table).ok());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].task.id, 9u);
  EXPECT_TRUE(bit_equal(back[0].task.stages[1].compute, 2e-3));
  EXPECT_TRUE(bit_equal(back[1].task.stages[4].compute, 5e-4));
  EXPECT_TRUE(bit_equal(back[1].task.importance, -1.0));

  // Without the table the ids cannot resolve: typed error, empty output.
  workload::ArrivalTrace none;
  const auto parse = ingest::decode_trace(frame, &none);
  EXPECT_EQ(parse.error, WireError::kUnknownClass);
  EXPECT_TRUE(none.empty());
}

TEST(WireFormat, SessionCheckCatchesUnknownClassAndWidthMismatch) {
  ingest::TaskClassTable table;
  table.add(std::vector<core::StageDemand>(kStages,
                                           core::StageDemand{1e-3, {}}));
  ingest::WireEncoder enc(kStages);
  enc.add_class(0.0, 1, 0.5, 1.0, /*class_id=*/0);
  enc.add_class(0.1, 2, 0.5, 1.0, /*class_id=*/7);  // not registered
  const auto view = ingest::WireView::open(enc.frame());
  ASSERT_TRUE(view.valid());  // structurally fine: ids are session-level

  ingest::IngestSession session(kStages, table);
  EXPECT_EQ(session.check(view).error, WireError::kUnknownClass);

  ingest::IngestSession narrow(kStages - 1);
  EXPECT_EQ(narrow.check(view).error, WireError::kStageMismatch);
}

// --- typed decode errors ------------------------------------------------

class WireCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ingest::WireEncoder enc(kStages);
    frame_ = frame_copy(ingest::encode_trace(random_trace(4, 23), enc));
  }

  WireError error_of(const std::vector<std::byte>& f) {
    return ingest::WireView::validate(f).error;
  }

  // Overwrite the f64 at `off` with `v` and validate.
  WireError patch_f64(std::size_t off, double v) {
    auto f = frame_;
    ingest::store_f64(f.data() + off, v);
    return error_of(f);
  }

  std::vector<std::byte> frame_;
  static constexpr std::size_t kRec0 = ingest::kWireHeaderSize;
};

TEST_F(WireCorruptionTest, EveryPrefixTruncationIsATypedError) {
  for (std::size_t k = 0; k < frame_.size(); ++k) {
    const auto parse = ingest::WireView::validate(
        std::span<const std::byte>(frame_.data(), k));
    EXPECT_FALSE(parse.ok()) << "prefix " << k;
  }
}

TEST_F(WireCorruptionTest, TrailingBytes) {
  auto f = frame_;
  f.push_back(std::byte{0});
  EXPECT_EQ(error_of(f), WireError::kTrailingBytes);
}

TEST_F(WireCorruptionTest, HeaderCorruptions) {
  auto f = frame_;
  f[0] = std::byte{0x47};
  EXPECT_EQ(error_of(f), WireError::kBadMagic);

  f = frame_;
  ingest::store_u16(f.data() + 4, 2);
  EXPECT_EQ(error_of(f), WireError::kBadVersion);

  f = frame_;
  ingest::store_u16(f.data() + 6, 0);
  EXPECT_EQ(error_of(f), WireError::kZeroStages);

  f = frame_;
  ingest::store_u32(f.data() + 8, 0);
  EXPECT_EQ(error_of(f), WireError::kEmptyFrame);

  f = frame_;
  ingest::store_u32(f.data() + 12, 1);
  EXPECT_EQ(error_of(f), WireError::kBadReserved);

  EXPECT_EQ(patch_f64(16, std::numeric_limits<double>::quiet_NaN()),
            WireError::kBadValue);
}

TEST_F(WireCorruptionTest, RecordValueCorruptions) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(patch_f64(kRec0 + 8, 0.0), WireError::kBadValue);   // deadline
  EXPECT_EQ(patch_f64(kRec0 + 8, -1.0), WireError::kBadValue);
  EXPECT_EQ(patch_f64(kRec0 + 8, nan), WireError::kBadValue);
  EXPECT_EQ(patch_f64(kRec0 + 16, nan), WireError::kBadValue);  // importance
  EXPECT_EQ(patch_f64(kRec0 + 24, nan), WireError::kBadValue);  // arrival
  // Arrival before base_time (base is the first arrival, so -1 precedes it).
  EXPECT_EQ(patch_f64(kRec0 + 24, -1.0), WireError::kBadValue);
}

TEST_F(WireCorruptionTest, NonMonotoneArrival) {
  // Push the FIRST record's arrival above the second's: record 1 stays
  // valid in isolation (still >= base_time), so the monotonicity check is
  // what fires on record 2.
  const double second = ingest::load_f64(
      frame_.data() + kRec0 + ingest::kWireRecordFixedSize +
      ingest::load_u16(frame_.data() + kRec0 + 34) * ingest::kWirePairSize +
      24);
  auto f = frame_;
  ingest::store_f64(f.data() + kRec0 + 24, second + 1.0);
  EXPECT_EQ(error_of(f), WireError::kNonMonotoneArrival);
}

TEST_F(WireCorruptionTest, RecordStructureCorruptions) {
  auto f = frame_;
  f[kRec0 + 32] = std::byte{2};  // neither kInline nor kClass
  EXPECT_EQ(error_of(f), WireError::kBadRecordKind);

  f = frame_;
  f[kRec0 + 33] = std::byte{1};  // per-record reserved byte
  EXPECT_EQ(error_of(f), WireError::kBadReserved);

  f = frame_;
  ingest::store_u16(f.data() + kRec0 + 34, 0);  // no pairs
  EXPECT_EQ(error_of(f), WireError::kBadPairCount);

  f = frame_;
  ingest::store_u16(f.data() + kRec0 + 34, kStages + 1);
  EXPECT_EQ(error_of(f), WireError::kBadPairCount);
}

TEST_F(WireCorruptionTest, PairCorruptions) {
  const std::size_t pair0 = kRec0 + ingest::kWireRecordFixedSize;
  auto f = frame_;
  ingest::store_u32(f.data() + pair0, kStages);  // stage index out of range
  EXPECT_EQ(error_of(f), WireError::kStageOutOfRange);

  // Duplicate/descending stages: copy pair 0's stage into pair 1 (the
  // random record for seed 23 has >= 2 pairs; assert to be safe).
  ASSERT_GE(ingest::load_u16(frame_.data() + kRec0 + 34), 2);
  f = frame_;
  ingest::store_u32(f.data() + pair0 + ingest::kWirePairSize,
                    ingest::load_u32(f.data() + pair0));
  EXPECT_EQ(error_of(f), WireError::kUnorderedStages);

  EXPECT_EQ(patch_f64(pair0 + 4, 0.0), WireError::kBadValue);  // demand
  EXPECT_EQ(patch_f64(pair0 + 4, -2.0), WireError::kBadValue);
  EXPECT_EQ(patch_f64(pair0 + 4, std::numeric_limits<double>::infinity()),
            WireError::kBadValue);
}

// --- fuzzing (never UB; ASan/UBSan enforce) ------------------------------

TEST(WireFormatFuzz, RandomByteFlipsNeverBreakTheDecoder) {
  ingest::WireEncoder enc(kStages);
  const auto pristine =
      frame_copy(ingest::encode_trace(random_trace(20, 41), enc));
  std::mt19937_64 rng(12345);
  std::uniform_int_distribution<std::size_t> pos(0, pristine.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  std::uniform_int_distribution<int> flips(1, 8);

  for (int round = 0; round < 2000; ++round) {
    auto f = pristine;
    const int n = flips(rng);
    for (int i = 0; i < n; ++i)
      f[pos(rng)] ^= std::byte{static_cast<unsigned char>(1 << bit(rng))};

    ingest::WireParse parse;
    const auto view = ingest::WireView::open(f, &parse);
    if (!parse.ok()) continue;  // typed rejection is a fine outcome
    // A surviving frame must iterate cleanly: every accessor in bounds.
    double acc = 0;
    std::uint32_t seen = 0;
    ingest::WireArrival a;
    for (auto cur = view.cursor(); cur.next(a);) {
      acc += a.arrival() + a.deadline() + a.importance();
      if (a.kind() == ingest::RecordKind::kInline) {
        for (std::uint16_t i = 0; i < a.pair_count(); ++i)
          acc += a.demand(i) + a.stage(i);
      }
      ++seen;
    }
    EXPECT_EQ(seen, view.record_count());
    EXPECT_TRUE(std::isfinite(acc));  // validator admits only finite values
  }
}

TEST(WireFormatFuzz, RandomGarbageNeverBreaksTheDecoder) {
  std::mt19937_64 rng(999);
  std::uniform_int_distribution<std::size_t> size_of(0, 512);
  std::uniform_int_distribution<int> byte_of(0, 255);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> f(size_of(rng));
    for (auto& b : f)
      b = std::byte{static_cast<unsigned char>(byte_of(rng))};
    // Make a fraction of rounds pass the magic/version gate so the record
    // loop sees garbage too.
    if (f.size() >= ingest::kWireHeaderSize && round % 2 == 0) {
      ingest::store_u32(f.data(), ingest::kWireMagic);
      ingest::store_u16(f.data() + 4, ingest::kWireVersion);
    }
    const auto parse = ingest::WireView::validate(f);
    if (parse.ok()) {
      const auto view = ingest::WireView::open(f);
      ingest::WireArrival a;
      for (auto cur = view.cursor(); cur.next(a);) (void)a.id();
    }
  }
}

// --- frame file I/O ------------------------------------------------------

TEST(WireFrameIo, LengthPrefixedRoundTripAndEof) {
  ingest::WireEncoder enc(kStages);
  const auto f1 = frame_copy(ingest::encode_trace(random_trace(10, 1), enc));
  const auto f2 = frame_copy(ingest::encode_trace(random_trace(20, 2), enc));

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(ingest::write_frame(ss, f1));
  ASSERT_TRUE(ingest::write_frame(ss, f2));

  std::vector<std::byte> buf;
  ASSERT_TRUE(ingest::read_frame(ss, &buf));
  ASSERT_EQ(buf.size(), f1.size());
  EXPECT_EQ(std::memcmp(buf.data(), f1.data(), buf.size()), 0);
  ASSERT_TRUE(ingest::read_frame(ss, &buf));
  EXPECT_EQ(std::memcmp(buf.data(), f2.data(), buf.size()), 0);
  EXPECT_FALSE(ingest::read_frame(ss, &buf));  // clean EOF
  EXPECT_TRUE(buf.empty());
}

TEST(WireFrameIo, TruncatedAndLyingLengthsFail) {
  ingest::WireEncoder enc(kStages);
  const auto f1 = frame_copy(ingest::encode_trace(random_trace(10, 1), enc));
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(ingest::write_frame(ss, f1));
  std::string s = ss.str();

  // Truncated payload.
  std::stringstream cut(s.substr(0, s.size() - 3),
                        std::ios::in | std::ios::binary);
  std::vector<std::byte> buf;
  EXPECT_FALSE(ingest::read_frame(cut, &buf));

  // Length field smaller than a header / absurdly large.
  for (const std::uint64_t bad :
       {std::uint64_t{3}, std::uint64_t{1} << 40}) {
    std::string lied = s;
    std::byte len[8];
    ingest::store_u64(len, bad);
    std::memcpy(lied.data(), len, 8);
    std::stringstream in(lied, std::ios::in | std::ios::binary);
    EXPECT_FALSE(ingest::read_frame(in, &buf));
  }
}

// --- property: randomized encode/decode against the text format ----------

TEST(WireFormatProperty, AgreesWithTextTraceFormatOnValues) {
  // The wire codec and the PR-2 text codec must describe the same trace;
  // the wire one is additionally bit-exact where text rounds through
  // decimal. Compare structure + near-equality here, bit-exactness above.
  const auto trace = random_trace(200, 77);
  ingest::WireEncoder enc(kStages);
  workload::ArrivalTrace wire_back;
  ASSERT_TRUE(
      ingest::decode_trace(ingest::encode_trace(trace, enc), &wire_back)
          .ok());

  std::stringstream text;
  trace.save(text);
  workload::ArrivalTrace text_back;
  ASSERT_TRUE(text_back.load(text));

  ASSERT_EQ(wire_back.size(), text_back.size());
  for (std::size_t i = 0; i < wire_back.size(); ++i) {
    EXPECT_EQ(wire_back[i].task.id, text_back[i].task.id);
    EXPECT_NEAR(wire_back[i].time, text_back[i].time, 1e-12);
    for (std::size_t j = 0; j < kStages; ++j) {
      EXPECT_NEAR(wire_back[i].task.stages[j].compute,
                  text_back[i].task.stages[j].compute, 1e-15);
    }
  }
}

}  // namespace
