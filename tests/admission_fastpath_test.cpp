// The incremental allocation-free admission fast path must be
// indistinguishable from the seed full-evaluation path: identical decisions
// over long randomized arrival histories (the PR's acceptance criterion),
// identical boundary-tie behaviour, and a batch path identical to
// sequential admissions. Also exercises the tracker's incremental-LHS
// cross-check and rebuild counters under the same histories.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/reference_admitter.h"
#include "core/stage_delay.h"
#include "core/synthetic_utilization.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::core {
namespace {

TaskSpec random_task(util::Rng& rng, std::uint64_t id, std::size_t stages) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = rng.uniform(0.5, 3.0);
  spec.stages.resize(stages);
  for (auto& s : spec.stages) {
    // ~half the stages untouched: the sparse shape the fast path optimizes.
    if (rng.bernoulli(0.5)) s.compute = rng.uniform(0.0, 0.12) * spec.deadline;
  }
  return spec;
}

// One harness = simulator + tracker + controller; the A/B test drives two
// of them with identical inputs and compares every decision.
struct Harness {
  explicit Harness(std::size_t stages)
      : tracker(sim, stages),
        controller(sim, tracker, FeasibleRegion::deadline_monotonic(stages)) {}

  sim::Simulator sim;
  SyntheticUtilizationTracker tracker;
  AdmissionController controller;
  frap::testing::ReferenceAdmitter reference{controller};
};

TEST(AdmissionFastPathTest, DecisionsIdenticalToReferenceOver10kArrivals) {
  constexpr std::size_t kStages = 5;
  constexpr int kArrivals = 12000;
  Harness fast(kStages);
  Harness ref(kStages);

  util::Rng rng(20240805);
  std::uint64_t mismatches = 0;
  std::uint64_t admitted = 0;
  for (int i = 1; i <= kArrivals; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    const auto spec = random_task(rng, id, kStages);

    // Advance both clocks identically so expiries interleave with arrivals.
    const Time t = fast.sim.now() + rng.exponential(0.02);
    fast.sim.run_until(t);
    ref.sim.run_until(t);

    const auto df = fast.controller.try_admit(spec);
    const auto dr = ref.reference.try_admit(spec);
    if (df.admitted != dr.admitted) ++mismatches;
    if (df.admitted) ++admitted;
    // The LHS values come from different summation orders but must agree to
    // far better than any admission-relevant resolution.
    if (std::isfinite(df.lhs_with_task) && std::isfinite(dr.lhs_with_task)) {
      EXPECT_NEAR(df.lhs_with_task, dr.lhs_with_task, 1e-9);
    }

    // Occasionally fire the other tracker mutations on BOTH trackers so the
    // incremental cache sees departures, idle resets, and removals too.
    if (df.admitted && rng.bernoulli(0.3)) {
      const auto stage =
          static_cast<std::size_t>(rng.uniform_int(0, kStages - 1));
      fast.tracker.mark_departed(id, stage);
      ref.tracker.mark_departed(id, stage);
      fast.tracker.on_stage_idle(stage);
      ref.tracker.on_stage_idle(stage);
    }
    if (df.admitted && rng.bernoulli(0.05)) {
      fast.tracker.remove_task(id);
      ref.tracker.remove_task(id);
    }
  }
  EXPECT_EQ(mismatches, 0u);
  // The workload must actually exercise both outcomes.
  EXPECT_GT(admitted, 1000u);
  EXPECT_LT(admitted, static_cast<std::uint64_t>(kArrivals));
  EXPECT_EQ(fast.controller.attempts(), ref.controller.attempts());
  EXPECT_EQ(fast.controller.admitted(), ref.controller.admitted());

  // After the whole history the incremental LHS still matches a recompute.
  fast.tracker.verify_lhs_cache(1e-9);
  EXPECT_GE(fast.tracker.lhs_cache_stats().crosschecks, 1u);
  // >= 10k arrivals worth of updates crossed the periodic rebuild interval.
  EXPECT_GE(fast.tracker.lhs_cache_stats().rebuilds, 1u);
  EXPECT_LE(fast.tracker.lhs_cache_stats().max_drift, 1e-9);
}

TEST(AdmissionFastPathTest, ApproximateMeansVariantMatchesReference) {
  constexpr std::size_t kStages = 3;
  Harness fast(kStages);
  Harness ref(kStages);
  const std::vector<Duration> means{0.02, 0.0, 0.03};
  fast.controller.set_approximate_means(means);
  ref.controller.set_approximate_means(means);

  util::Rng rng(99);
  for (int i = 1; i <= 3000; ++i) {
    const auto spec = random_task(rng, static_cast<std::uint64_t>(i), kStages);
    const Time t = fast.sim.now() + rng.exponential(0.01);
    fast.sim.run_until(t);
    ref.sim.run_until(t);
    const auto df = fast.controller.try_admit(spec);
    const auto dr = ref.reference.try_admit(spec);
    EXPECT_EQ(df.admitted, dr.admitted) << "arrival " << i;
  }
  fast.tracker.verify_lhs_cache(1e-9);
}

TEST(AdmissionFastPathTest, BatchDecisionsMatchSequentialFastPath) {
  constexpr std::size_t kStages = 4;
  Harness seq(kStages);
  Harness bat(kStages);
  BatchAdmissionController batch(bat.controller);

  util::Rng rng(7);
  std::uint64_t id = 1;
  for (int burst = 0; burst < 200; ++burst) {
    std::vector<TaskSpec> specs;
    const int size = rng.uniform_int(1, 32);
    for (int i = 0; i < size; ++i) {
      specs.push_back(random_task(rng, id++, kStages));
    }
    const Time t = seq.sim.now() + rng.exponential(0.05);
    seq.sim.run_until(t);
    bat.sim.run_until(t);

    const auto& decisions = batch.try_admit_burst(specs);
    ASSERT_EQ(decisions.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto d = seq.controller.try_admit(specs[i]);
      EXPECT_EQ(decisions[i].admitted, d.admitted)
          << "burst " << burst << " index " << i;
      EXPECT_DOUBLE_EQ(decisions[i].lhs_with_task, d.lhs_with_task);
    }
  }
  EXPECT_EQ(batch.bursts(), 200u);
  EXPECT_EQ(bat.controller.attempts(), seq.controller.attempts());
  EXPECT_EQ(bat.controller.admitted(), seq.controller.admitted());
  bat.tracker.verify_lhs_cache(1e-9);
}

TEST(AdmissionFastPathTest, RejectionsLeaveNoTrace) {
  Harness h(2);
  TaskSpec big;
  big.id = 1;
  big.deadline = 1.0;
  big.stages.resize(2);
  big.stages[0].compute = 0.5;
  big.stages[1].compute = 0.5;
  const auto d = h.controller.try_admit(big);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(h.tracker.live_tasks(), 0u);
  EXPECT_DOUBLE_EQ(h.tracker.cached_lhs(), 0.0);
  h.tracker.verify_lhs_cache(1e-12);
}

// A task saturating one stage (U_j >= 1) must be rejected with an infinite
// tested LHS, exactly like the reference path.
TEST(AdmissionFastPathTest, SaturatingTaskRejectedWithInfiniteLhs) {
  Harness fast(2);
  Harness ref(2);
  TaskSpec sat;
  sat.id = 1;
  sat.deadline = 1.0;
  sat.stages.resize(2);
  sat.stages[0].compute = 2.0;
  const auto df = fast.controller.try_admit(sat);
  const auto dr = ref.reference.try_admit(sat);
  EXPECT_FALSE(df.admitted);
  EXPECT_FALSE(dr.admitted);
  EXPECT_TRUE(std::isinf(df.lhs_with_task));
  EXPECT_TRUE(std::isinf(dr.lhs_with_task));
}

// ----------------------------------------------------- boundary ties -----

// Construct an exact floating-point tie: with a single stage and
// alpha = f(u), the region bound IS the tested LHS bit-for-bit. A tie is
// inside the region (<=), and test(), try_admit() and the reference path
// must all agree on it — they share one predicate.
TEST(AdmissionFastPathTest, BoundaryTieIsAdmittedConsistently) {
  const double u = 0.3;
  const double alpha = stage_delay_factor(u);  // bound == f(u) exactly

  TaskSpec spec;
  spec.id = 1;
  spec.deadline = 1.0;
  spec.stages.resize(1);
  spec.stages[0].compute = u;  // contribution exactly u

  {
    sim::Simulator sim;
    SyntheticUtilizationTracker tracker(sim, 1);
    AdmissionController c(sim, tracker, FeasibleRegion::with_alpha(1, alpha));
    EXPECT_TRUE(c.region().admits(alpha));
    EXPECT_TRUE(c.test(spec));
    const auto d = c.try_admit(spec);
    EXPECT_TRUE(d.admitted);
    EXPECT_DOUBLE_EQ(d.lhs_with_task, c.region().bound());
  }
  {
    sim::Simulator sim;
    SyntheticUtilizationTracker tracker(sim, 1);
    AdmissionController c(sim, tracker, FeasibleRegion::with_alpha(1, alpha));
    frap::testing::ReferenceAdmitter reference(c);
    const auto d = reference.try_admit(spec);
    EXPECT_TRUE(d.admitted);
  }
}

// Just past the tie, every path must reject.
TEST(AdmissionFastPathTest, JustPastBoundaryRejectedConsistently) {
  const double u = 0.3;
  const double alpha = stage_delay_factor(u);
  TaskSpec spec;
  spec.id = 1;
  spec.deadline = 1.0;
  spec.stages.resize(1);
  spec.stages[0].compute = std::nextafter(u, 1.0) + 1e-12;

  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, 1);
  AdmissionController c(sim, tracker, FeasibleRegion::with_alpha(1, alpha));
  EXPECT_FALSE(c.test(spec));
  EXPECT_FALSE(c.try_admit(spec).admitted);
}

}  // namespace
}  // namespace frap::core
