// Randomized property tests cross-validating core data structures against
// brute-force reference computations.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "core/long_path_bound.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "core/task_graph_shape.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/random_dag.h"

namespace frap {
namespace {

// ---------------------------------------------------------------- tracker ---

// Reference model of the tracker: a map of live contributions, recomputed
// from scratch on every query.
class ReferenceTracker {
 public:
  explicit ReferenceTracker(std::size_t stages) : stages_(stages) {}

  void add(std::uint64_t id, std::vector<double> c, Time expiry) {
    tasks_[id] = Entry{std::move(c), std::vector<bool>(stages_, false),
                       expiry};
  }
  void expire_until(Time now) {
    for (auto it = tasks_.begin(); it != tasks_.end();) {
      if (it->second.expiry <= now) {
        it = tasks_.erase(it);
      } else {
        ++it;
      }
    }
  }
  void mark_departed(std::uint64_t id, std::size_t stage) {
    auto it = tasks_.find(id);
    if (it != tasks_.end()) it->second.departed[stage] = true;
  }
  void idle(std::size_t stage) {
    for (auto& [id, e] : tasks_) {
      if (e.departed[stage]) e.contribution[stage] = 0;
    }
  }
  void remove(std::uint64_t id) { tasks_.erase(id); }
  double utilization(std::size_t stage) const {
    double u = 0;
    for (const auto& [id, e] : tasks_) u += e.contribution[stage];
    return u;
  }

 private:
  struct Entry {
    std::vector<double> contribution;
    std::vector<bool> departed;
    Time expiry;
  };
  std::size_t stages_;
  std::map<std::uint64_t, Entry> tasks_;
};

class TrackerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerFuzzTest, MatchesReferenceUnderRandomOperations) {
  util::Rng rng(GetParam());
  sim::Simulator sim;
  const std::size_t stages = 1 + static_cast<std::size_t>(
                                      rng.uniform_int(0, 3));
  core::SyntheticUtilizationTracker tracker(sim, stages);
  ReferenceTracker reference(stages);

  std::vector<std::uint64_t> live_ids;
  std::uint64_t next_id = 1;

  for (int step = 0; step < 600; ++step) {
    // Advance virtual time a random amount (fires expiries in tracker).
    const Duration dt = rng.exponential(0.05);
    sim.run_until(sim.now() + dt);
    reference.expire_until(sim.now());
    live_ids.erase(std::remove_if(live_ids.begin(), live_ids.end(),
                                  [&](std::uint64_t id) {
                                    return !tracker.is_live(id);
                                  }),
                   live_ids.end());

    const auto op = rng.uniform_int(0, 9);
    if (op <= 4) {  // add
      std::vector<double> c(stages);
      for (auto& v : c) v = rng.uniform(0.0, 0.1);
      const Time expiry = sim.now() + rng.uniform(0.01, 0.5);
      tracker.add(next_id, c, expiry);
      reference.add(next_id, c, expiry);
      live_ids.push_back(next_id);
      ++next_id;
    } else if (op <= 6 && !live_ids.empty()) {  // mark departed
      const auto id = live_ids[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ids.size()) - 1))];
      const auto stage = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
      tracker.mark_departed(id, stage);
      reference.mark_departed(id, stage);
    } else if (op == 7) {  // idle reset on a random stage
      const auto stage = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
      tracker.on_stage_idle(stage);
      reference.idle(stage);
    } else if (op == 8 && !live_ids.empty()) {  // shed
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ids.size()) - 1));
      tracker.remove_task(live_ids[idx]);
      reference.remove(live_ids[idx]);
      live_ids.erase(live_ids.begin() +
                     static_cast<std::ptrdiff_t>(idx));
    }
    // op == 9 (and fall-throughs when no live ids): just compare.

    for (std::size_t j = 0; j < stages; ++j) {
      ASSERT_NEAR(tracker.utilization(j), reference.utilization(j), 1e-9)
          << "step " << step << " stage " << j << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------- critical path ---

// Brute force: enumerate every path by DFS and take the max weight sum.
double brute_force_critical_path(const core::GraphTaskSpec& g,
                                 const std::vector<double>& w) {
  std::vector<std::vector<std::size_t>> out(g.nodes.size());
  std::vector<bool> has_pred(g.nodes.size(), false);
  for (const auto& e : g.edges) {
    out[e.from].push_back(e.to);
    has_pred[e.to] = true;
  }
  double best = 0;
  std::function<void(std::size_t, double)> dfs = [&](std::size_t v,
                                                     double acc) {
    acc += w[v];
    best = std::max(best, acc);
    for (std::size_t s : out[v]) dfs(s, acc);
  };
  for (std::size_t v = 0; v < g.nodes.size(); ++v) {
    if (!has_pred[v]) dfs(v, 0);
  }
  return best;
}

class CriticalPathFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CriticalPathFuzzTest, MatchesBruteForceOnRandomDags) {
  util::Rng rng(GetParam() * 1000 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n =
        2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    core::GraphTaskSpec g;
    g.id = 1;
    g.deadline = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      core::StageDemand d;
      d.compute = 0.01;
      g.nodes.push_back(core::GraphNode{i % 3, d});
    }
    // Random forward edges (i -> j with i < j) guarantee acyclicity.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.3)) g.edges.push_back(core::GraphEdge{i, j});
      }
    }
    std::vector<double> w(n);
    for (auto& v : w) v = rng.uniform(0.0, 5.0);

    ASSERT_TRUE(g.valid(3));
    EXPECT_NEAR(g.critical_path(w), brute_force_critical_path(g, w), 1e-9)
        << "trial " << trial << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalPathFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------- shape intern ---

core::GraphTaskSpec chain_spec(std::uint64_t id, Duration deadline,
                               std::vector<std::size_t> resources,
                               Duration compute) {
  core::GraphTaskSpec g;
  g.id = id;
  g.deadline = deadline;
  g.nodes.resize(resources.size());
  for (std::size_t v = 0; v < resources.size(); ++v) {
    g.nodes[v].resource = resources[v];
    g.nodes[v].demand.compute = compute;
    if (v + 1 < resources.size()) g.edges.push_back({v, v + 1});
  }
  return g;
}

class ShapeInternFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

// The generator produces valid (acyclic) graphs by construction, and the
// registry's canonicalization is attribute-faithful: a node-id permutation
// MUST alias to the same shape; a demand change must NOT.
TEST_P(ShapeInternFuzzTest, PermutationAliasesDemandChangeDoesNot) {
  util::Rng rng(GetParam() * 7919 + 5);
  core::TaskGraphShapeRegistry registry;
  constexpr std::size_t kResources = 4;
  for (int i = 0; i < 200; ++i) {
    workload::RandomDagConfig cfg;
    cfg.kind = rng.bernoulli(0.5)
                   ? workload::RandomDagConfig::Kind::kLayered
                   : workload::RandomDagConfig::Kind::kErdosRenyi;
    cfg.num_nodes = static_cast<std::size_t>(rng.uniform_int(1, 14));
    cfg.num_resources = kResources;
    const auto spec = workload::random_dag(
        rng, cfg, static_cast<std::uint64_t>(i), rng.uniform(0.5, 2.0));
    ASSERT_TRUE(spec.valid(kResources));

    const auto* shape = registry.intern(spec);
    ASSERT_NE(shape, nullptr);
    EXPECT_EQ(shape->num_nodes(), spec.nodes.size());
    EXPECT_EQ(shape->num_edges(), spec.edges.size());

    // Continuous random computes make node attributes distinct almost
    // surely, so canonicalization is discrete: any relabeling aliases.
    const auto permuted = workload::permute_nodes(rng, spec);
    EXPECT_EQ(registry.intern(permuted), shape);

    // Same topology, one perturbed demand: a DIFFERENT shape.
    auto tweaked = spec;
    const auto v = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.nodes.size()) - 1));
    tweaked.nodes[v].demand.compute *= 1.5;
    EXPECT_NE(registry.intern(tweaked), shape);

    // The canonicalized copy is semantically the same task: same deadline,
    // same per-resource contributions, same critical-path value under
    // arbitrary per-resource weights.
    const auto canon = registry.canonicalize(spec);
    ASSERT_EQ(canon.shape, shape);
    ASSERT_TRUE(shape->layout_matches(canon));
    EXPECT_EQ(canon.deadline, spec.deadline);
    const auto c0 = spec.resource_contributions(kResources);
    const auto c1 = canon.resource_contributions(kResources);
    for (std::size_t k = 0; k < kResources; ++k) {
      EXPECT_NEAR(c0[k], c1[k], 1e-12);
    }
    std::vector<double> w0(spec.nodes.size());
    std::vector<double> w1(canon.nodes.size());
    std::vector<double> by_resource(kResources);
    for (std::size_t k = 0; k < kResources; ++k) {
      by_resource[k] = rng.uniform(0.0, 1.0);
    }
    for (std::size_t v2 = 0; v2 < spec.nodes.size(); ++v2) {
      w0[v2] = by_resource[spec.nodes[v2].resource];
    }
    for (std::size_t v2 = 0; v2 < canon.nodes.size(); ++v2) {
      w1[v2] = by_resource[canon.nodes[v2].resource];
    }
    EXPECT_NEAR(spec.critical_path(w0), canon.critical_path(w1), 1e-9);
  }
  // Every third intern above is a permutation hit.
  EXPECT_GE(registry.hits(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeInternFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(ShapeInternEdgeCaseTest, EmptyGraphInternsToBenignShape) {
  core::TaskGraphShapeRegistry registry;
  core::GraphTaskSpec empty;
  empty.id = 1;
  empty.deadline = 1.0;
  // Not a runnable task (valid() demands at least one node)…
  EXPECT_FALSE(empty.valid(4));
  // …but the registry still canonicalizes it deterministically: zero
  // profiles, zero touched resources, and repeated interns alias.
  const auto* shape = registry.intern(empty);
  ASSERT_NE(shape, nullptr);
  EXPECT_EQ(shape->num_nodes(), 0u);
  EXPECT_EQ(shape->num_profiles(), 0u);
  EXPECT_TRUE(shape->profiles_complete());
  EXPECT_EQ(registry.intern(empty), shape);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ShapeInternEdgeCaseTest, SingleNodeChainAndDiamondProfiles) {
  core::TaskGraphShapeRegistry registry;

  // Single node: one profile, multiplicity 1 on its only resource.
  const auto single = chain_spec(1, 1.0, {2}, 3 * kMilli);
  const auto* s1 = registry.intern(single);
  ASSERT_EQ(s1->num_profiles(), 1u);
  EXPECT_TRUE(s1->profiles_complete());
  ASSERT_EQ(s1->profile(0).size(), 1u);
  EXPECT_EQ(s1->touched_resources()[s1->profile(0)[0].local], 2u);
  EXPECT_EQ(s1->profile(0)[0].mult, 1u);

  // Chain with a repeated resource: the single path profile accumulates
  // multiplicity 2 at the repeat.
  const auto chain = chain_spec(2, 1.0, {0, 1, 0}, 2 * kMilli);
  const auto* s2 = registry.intern(chain);
  ASSERT_EQ(s2->num_profiles(), 1u);
  EXPECT_TRUE(s2->profiles_complete());
  std::uint32_t mult0 = 0;
  for (const auto& e : s2->profile(0)) {
    if (s2->touched_resources()[e.local] == 0u) mult0 = e.mult;
  }
  EXPECT_EQ(mult0, 2u);

  // Diamond 0 -> {1, 2} -> 3 with distinct resources: two maximal paths,
  // neither dominating (different middle resources), both kept.
  core::GraphTaskSpec diamond;
  diamond.id = 3;
  diamond.deadline = 1.0;
  diamond.nodes.resize(4);
  for (std::size_t v = 0; v < 4; ++v) {
    diamond.nodes[v].resource = v;
    diamond.nodes[v].demand.compute = (v + 1) * kMilli;
  }
  diamond.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const auto* s3 = registry.intern(diamond);
  EXPECT_TRUE(s3->profiles_complete());
  EXPECT_EQ(s3->num_profiles(), 2u);
}

// On chains the long-path bound with per-resource ceilings equal to the
// task deadline IS the critical-path test with alpha = 1: same lhs (up to
// summation order), same verdict.
TEST(ShapeInternEdgeCaseTest, ChainLongPathAgreesWithCriticalPath) {
  util::Rng rng(99);
  constexpr std::size_t kResources = 6;
  core::TaskGraphShapeRegistry registry;
  const core::GraphRegionEvaluator crit(1.0, {});
  for (int i = 0; i < 300; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(1, 8));
    std::vector<std::size_t> resources(len);
    for (auto& r : resources) {
      r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kResources) - 1));
    }
    const Duration deadline = rng.uniform(0.5, 2.0);
    const auto spec = registry.canonicalize(chain_spec(
        static_cast<std::uint64_t>(i), deadline, std::move(resources),
        rng.uniform(1 * kMilli, 10 * kMilli)));

    core::LongPathEvaluator long_eval(
        std::vector<double>(kResources, deadline), {});
    std::vector<double> u(kResources);
    for (auto& x : u) x = rng.uniform(0.0, 0.9);

    const double lhs_long = long_eval.lhs_from_snapshot(spec, u);
    const double lhs_crit = crit.lhs(spec, u);
    EXPECT_NEAR(lhs_long, lhs_crit, 1e-9) << "chain " << i;
    EXPECT_EQ(core::FeasibleRegion::admits_lhs(
                  lhs_long, core::LongPathEvaluator::kDelayBudget),
              core::FeasibleRegion::admits_lhs(lhs_crit, crit.bound(spec)))
        << "chain " << i;
  }
}

}  // namespace
}  // namespace frap
