// Randomized property tests cross-validating core data structures against
// brute-force reference computations.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap {
namespace {

// ---------------------------------------------------------------- tracker ---

// Reference model of the tracker: a map of live contributions, recomputed
// from scratch on every query.
class ReferenceTracker {
 public:
  explicit ReferenceTracker(std::size_t stages) : stages_(stages) {}

  void add(std::uint64_t id, std::vector<double> c, Time expiry) {
    tasks_[id] = Entry{std::move(c), std::vector<bool>(stages_, false),
                       expiry};
  }
  void expire_until(Time now) {
    for (auto it = tasks_.begin(); it != tasks_.end();) {
      if (it->second.expiry <= now) {
        it = tasks_.erase(it);
      } else {
        ++it;
      }
    }
  }
  void mark_departed(std::uint64_t id, std::size_t stage) {
    auto it = tasks_.find(id);
    if (it != tasks_.end()) it->second.departed[stage] = true;
  }
  void idle(std::size_t stage) {
    for (auto& [id, e] : tasks_) {
      if (e.departed[stage]) e.contribution[stage] = 0;
    }
  }
  void remove(std::uint64_t id) { tasks_.erase(id); }
  double utilization(std::size_t stage) const {
    double u = 0;
    for (const auto& [id, e] : tasks_) u += e.contribution[stage];
    return u;
  }

 private:
  struct Entry {
    std::vector<double> contribution;
    std::vector<bool> departed;
    Time expiry;
  };
  std::size_t stages_;
  std::map<std::uint64_t, Entry> tasks_;
};

class TrackerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerFuzzTest, MatchesReferenceUnderRandomOperations) {
  util::Rng rng(GetParam());
  sim::Simulator sim;
  const std::size_t stages = 1 + static_cast<std::size_t>(
                                      rng.uniform_int(0, 3));
  core::SyntheticUtilizationTracker tracker(sim, stages);
  ReferenceTracker reference(stages);

  std::vector<std::uint64_t> live_ids;
  std::uint64_t next_id = 1;

  for (int step = 0; step < 600; ++step) {
    // Advance virtual time a random amount (fires expiries in tracker).
    const Duration dt = rng.exponential(0.05);
    sim.run_until(sim.now() + dt);
    reference.expire_until(sim.now());
    live_ids.erase(std::remove_if(live_ids.begin(), live_ids.end(),
                                  [&](std::uint64_t id) {
                                    return !tracker.is_live(id);
                                  }),
                   live_ids.end());

    const auto op = rng.uniform_int(0, 9);
    if (op <= 4) {  // add
      std::vector<double> c(stages);
      for (auto& v : c) v = rng.uniform(0.0, 0.1);
      const Time expiry = sim.now() + rng.uniform(0.01, 0.5);
      tracker.add(next_id, c, expiry);
      reference.add(next_id, c, expiry);
      live_ids.push_back(next_id);
      ++next_id;
    } else if (op <= 6 && !live_ids.empty()) {  // mark departed
      const auto id = live_ids[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ids.size()) - 1))];
      const auto stage = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
      tracker.mark_departed(id, stage);
      reference.mark_departed(id, stage);
    } else if (op == 7) {  // idle reset on a random stage
      const auto stage = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
      tracker.on_stage_idle(stage);
      reference.idle(stage);
    } else if (op == 8 && !live_ids.empty()) {  // shed
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ids.size()) - 1));
      tracker.remove_task(live_ids[idx]);
      reference.remove(live_ids[idx]);
      live_ids.erase(live_ids.begin() +
                     static_cast<std::ptrdiff_t>(idx));
    }
    // op == 9 (and fall-throughs when no live ids): just compare.

    for (std::size_t j = 0; j < stages; ++j) {
      ASSERT_NEAR(tracker.utilization(j), reference.utilization(j), 1e-9)
          << "step " << step << " stage " << j << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------- critical path ---

// Brute force: enumerate every path by DFS and take the max weight sum.
double brute_force_critical_path(const core::GraphTaskSpec& g,
                                 const std::vector<double>& w) {
  std::vector<std::vector<std::size_t>> out(g.nodes.size());
  std::vector<bool> has_pred(g.nodes.size(), false);
  for (const auto& e : g.edges) {
    out[e.from].push_back(e.to);
    has_pred[e.to] = true;
  }
  double best = 0;
  std::function<void(std::size_t, double)> dfs = [&](std::size_t v,
                                                     double acc) {
    acc += w[v];
    best = std::max(best, acc);
    for (std::size_t s : out[v]) dfs(s, acc);
  };
  for (std::size_t v = 0; v < g.nodes.size(); ++v) {
    if (!has_pred[v]) dfs(v, 0);
  }
  return best;
}

class CriticalPathFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CriticalPathFuzzTest, MatchesBruteForceOnRandomDags) {
  util::Rng rng(GetParam() * 1000 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n =
        2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    core::GraphTaskSpec g;
    g.id = 1;
    g.deadline = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      core::StageDemand d;
      d.compute = 0.01;
      g.nodes.push_back(core::GraphNode{i % 3, d});
    }
    // Random forward edges (i -> j with i < j) guarantee acyclicity.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.3)) g.edges.push_back(core::GraphEdge{i, j});
      }
    }
    std::vector<double> w(n);
    for (auto& v : w) v = rng.uniform(0.0, 5.0);

    ASSERT_TRUE(g.valid(3));
    EXPECT_NEAR(g.critical_path(w), brute_force_critical_path(g, w), 1e-9)
        << "trial " << trial << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalPathFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace frap
