#include <gtest/gtest.h>

#include "core/task.h"
#include "util/time.h"

namespace frap::core {
namespace {

TEST(StageDemandTest, DefaultSegmentIsSingleLockFree) {
  StageDemand d;
  d.compute = 2.5;
  const auto segs = d.make_segments();
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_DOUBLE_EQ(segs[0].length, 2.5);
  EXPECT_EQ(segs[0].lock, sched::kNoLock);
  EXPECT_TRUE(d.valid());
}

TEST(StageDemandTest, ExplicitSegmentsPreserved) {
  StageDemand d;
  d.compute = 3.0;
  d.segments = {sched::Segment{1.0, sched::kNoLock}, sched::Segment{2.0, 0}};
  EXPECT_TRUE(d.valid());
  const auto segs = d.make_segments();
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[1].lock, 0);
}

TEST(StageDemandTest, MismatchedSegmentsInvalid) {
  StageDemand d;
  d.compute = 3.0;
  d.segments = {sched::Segment{1.0, sched::kNoLock}};
  EXPECT_FALSE(d.valid());
}

TEST(StageDemandTest, NegativeComputeInvalid) {
  StageDemand d;
  d.compute = -1.0;
  EXPECT_FALSE(d.valid());
}

TEST(TaskSpecTest, TotalComputeSumsStages) {
  TaskSpec spec;
  spec.deadline = 1.0;
  spec.stages.resize(3);
  spec.stages[0].compute = 0.1;
  spec.stages[1].compute = 0.2;
  spec.stages[2].compute = 0.3;
  EXPECT_NEAR(spec.total_compute(), 0.6, 1e-12);
  EXPECT_EQ(spec.num_stages(), 3u);
}

TEST(TaskSpecTest, ContributionsAreCOverD) {
  TaskSpec spec;
  spec.deadline = 2.0;
  spec.stages.resize(2);
  spec.stages[0].compute = 0.5;
  spec.stages[1].compute = 1.0;
  const auto c = spec.contributions();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 0.25);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
}

TEST(TaskSpecTest, Validity) {
  TaskSpec spec;
  EXPECT_FALSE(spec.valid());  // no deadline, no stages
  spec.deadline = 1.0;
  EXPECT_FALSE(spec.valid());  // no stages
  spec.stages.resize(1);
  spec.stages[0].compute = 0.1;
  EXPECT_TRUE(spec.valid());
  spec.deadline = 0.0;
  EXPECT_FALSE(spec.valid());
}

TEST(TaskSpecTest, ZeroComputeStageIsValid) {
  // Pass-through stages (e.g. TSCE track tasks on stages 2-3) are legal.
  TaskSpec spec;
  spec.deadline = 1.0;
  spec.stages.resize(2);
  spec.stages[0].compute = 0.01;
  spec.stages[1].compute = 0.0;
  EXPECT_TRUE(spec.valid());
}

}  // namespace
}  // namespace frap::core
