// Tests for the optimal-priority-assignment search (sched/assignment/).
//
// The pinned two-class fixture demonstrates the core trade the module
// exists for: deadline-monotonic order maximizes alpha (= 1) but lets a
// long critical section owned by the LOWEST-priority class inflate beta,
// while promoting that class costs a little alpha and erases the blocking
// term — a strictly larger Thm 1 bound. All expected numbers below are
// computed by hand and asserted exactly where the arithmetic is exact in
// binary (ratios of decimal inputs use a tolerance).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/feasible_region.h"
#include "sched/assignment/priority_assignment.h"
#include "util/math.h"

namespace frap::sched::assignment {
namespace {

constexpr double kTol = 1e-12;

TaskClass cls(Duration deadline, std::vector<Duration> sections = {}) {
  TaskClass t;
  t.deadline = deadline;
  t.critical_sections = std::move(sections);
  return t;
}

// --- evaluate_order -------------------------------------------------------

TEST(EvaluateOrderTest, NoBlockingGivesAlphaOnlyBound) {
  // DM order over distinct deadlines: alpha = 1 and no stage carries a
  // critical section, so beta is empty and the bound is pure alpha.
  const std::vector<TaskClass> tasks = {cls(0.01), cls(0.02), cls(0.04)};
  const std::vector<std::size_t> order = {0, 1, 2};
  const OrderEvaluation e = evaluate_order(tasks, order);
  EXPECT_NEAR(e.alpha, 1.0, kTol);
  EXPECT_TRUE(e.beta.empty());
  EXPECT_NEAR(e.bound, 1.0, kTol);
}

TEST(EvaluateOrderTest, InvertedOrderShrinksAlpha) {
  // Highest priority to the LONGEST deadline: alpha = min pairwise
  // D_shorter / D_longer over inversions = 0.01 / 0.04.
  const std::vector<TaskClass> tasks = {cls(0.01), cls(0.04)};
  const std::vector<std::size_t> order = {1, 0};
  const OrderEvaluation e = evaluate_order(tasks, order);
  EXPECT_NEAR(e.alpha, 0.25, kTol);
  EXPECT_NEAR(e.bound, 0.25, kTol);
}

TEST(EvaluateOrderTest, BlockingChargesLowerPriorityCriticalSections) {
  // Two classes sharing one stage resource. Under DM the 0.03 s critical
  // section of the lower-priority class blocks the higher-priority class:
  // beta at the stage = max_i B_i/D_i = 0.03 / 0.09 = 1/3.
  const std::vector<TaskClass> tasks = {cls(0.09, {0.0001}),
                                        cls(0.1, {0.03})};
  const std::vector<std::size_t> order = {0, 1};
  const OrderEvaluation e = evaluate_order(tasks, order);
  EXPECT_NEAR(e.alpha, 1.0, kTol);
  ASSERT_EQ(e.beta.size(), 1u);
  EXPECT_NEAR(e.beta[0], 0.03 / 0.09, kTol);
  EXPECT_NEAR(e.bound, 1.0 - 0.03 / 0.09, kTol);
}

// --- the pinned beats-DM fixture ------------------------------------------

// Class A: D = 90 ms, tiny critical section. Class B: D = 100 ms, 30 ms
// critical section on the same stage.
std::vector<TaskClass> pinned_fixture() {
  return {cls(0.09, {0.0001}), cls(0.1, {0.03})};
}

TEST(PriorityAssignmentTest, DeadlineMonotonicBaselineOnPinnedFixture) {
  const Assignment dm = deadline_monotonic(pinned_fixture());
  ASSERT_EQ(dm.order, (std::vector<std::size_t>{0, 1}));
  EXPECT_NEAR(dm.eval.alpha, 1.0, kTol);
  EXPECT_NEAR(dm.eval.bound, 2.0 / 3.0, kTol);
}

TEST(PriorityAssignmentTest, ExhaustiveSearchBeatsDmOnPinnedFixture) {
  const Assignment best = optimal(pinned_fixture());
  // Promote B above A: alpha = 0.09/0.1 = 0.9, beta_B = 0.0001/0.1 = 0.001,
  // bound = 0.9 * (1 - 0.001) = 0.8991 > 2/3.
  ASSERT_EQ(best.order, (std::vector<std::size_t>{1, 0}));
  EXPECT_NEAR(best.eval.alpha, 0.9, kTol);
  EXPECT_NEAR(best.eval.bound, 0.8991, kTol);
  const Assignment dm = deadline_monotonic(pinned_fixture());
  EXPECT_GT(best.eval.bound, dm.eval.bound);
}

TEST(PriorityAssignmentTest, AdmissionRegionWidensUnderOptimalOrder) {
  // The schedulability gain is visible through FeasibleRegion: a load that
  // the DM region rejects fits inside the optimal-order region.
  const Assignment dm = deadline_monotonic(pinned_fixture());
  const Assignment best = optimal(pinned_fixture());
  const auto region_dm =
      core::FeasibleRegion::with_blocking(dm.eval.alpha, dm.eval.beta);
  const auto region_best =
      core::FeasibleRegion::with_blocking(best.eval.alpha, best.eval.beta);
  EXPECT_NEAR(region_dm.bound(), dm.eval.bound, kTol);
  EXPECT_NEAR(region_best.bound(), best.eval.bound, kTol);
  // An f(U) sum of 0.8 sits between the two bounds: rejected under DM,
  // admitted under the searched order.
  EXPECT_FALSE(region_dm.admits(0.8));
  EXPECT_TRUE(region_best.admits(0.8));
}

// --- determinism ----------------------------------------------------------

TEST(PriorityAssignmentTest, TieFallsBackToDeadlineMonotonic) {
  // No critical sections: every order with alpha = 1... only DM reaches
  // alpha = 1; but with IDENTICAL deadlines all orders tie at bound = 1 and
  // the search must return the DM (stable, index-ordered) permutation.
  const std::vector<TaskClass> tasks = {cls(0.05), cls(0.05), cls(0.05)};
  const Assignment best = optimal(tasks);
  EXPECT_EQ(best.order, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_NEAR(best.eval.bound, 1.0, kTol);
}

TEST(PriorityAssignmentTest, DmIsStableOnEqualDeadlines) {
  const std::vector<TaskClass> tasks = {cls(0.05), cls(0.05), cls(0.02)};
  const Assignment dm = deadline_monotonic(tasks);
  EXPECT_EQ(dm.order, (std::vector<std::size_t>{2, 0, 1}));
}

// --- Audsley-style heuristic beyond the exhaustive limit ------------------

// Ten classes (> kExhaustiveLimit = 8). Z (D = 89 ms, no critical section)
// and Y (D = 90 ms, 30 ms critical section) sit at the top of DM order;
// eight filler classes with D = 91..98 ms follow. Under DM, Y's critical
// section never blocks anyone ABOVE it except Z — beta_Z = 0.03/0.089.
// The greedy lowest-priority-first pass discovers that parking Z at the
// BOTTOM removes all blocking (nothing below Z has a critical section once
// Y is above it) at an alpha cost of only 89/98.
TEST(PriorityAssignmentTest, HeuristicBeatsDmOnLargeFixture) {
  std::vector<TaskClass> tasks;
  tasks.push_back(cls(0.089));          // Z, index 0
  tasks.push_back(cls(0.090, {0.03}));  // Y, index 1
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(cls(0.091 + 0.001 * i));
  }
  ASSERT_GT(tasks.size(), kExhaustiveLimit);

  const Assignment dm = deadline_monotonic(tasks);
  // DM: Z highest, Y second; Y's 30 ms section blocks Z.
  EXPECT_NEAR(dm.eval.alpha, 1.0, kTol);
  EXPECT_NEAR(dm.eval.bound, 1.0 - 0.03 / 0.089, 1e-9);

  const Assignment best = optimal(tasks);
  // Z demoted to the bottom: beta vanishes, alpha = 0.089 / 0.098.
  EXPECT_GT(best.eval.bound, dm.eval.bound);
  EXPECT_NEAR(best.eval.alpha, 0.089 / 0.098, 1e-9);
  EXPECT_NEAR(best.eval.bound, 0.089 / 0.098, 1e-9);
  ASSERT_FALSE(best.order.empty());
  EXPECT_EQ(best.order.back(), 0u);  // Z at lowest priority
}

TEST(PriorityAssignmentTest, HeuristicNeverWorseThanDm) {
  // Randomized-ish structured sweep: whatever the heuristic returns, it must
  // dominate (or match) the DM baseline — optimal() compares and keeps the
  // better of the two by construction, so this pins that guarantee.
  for (int shape = 0; shape < 6; ++shape) {
    std::vector<TaskClass> tasks;
    for (int i = 0; i < 10; ++i) {
      const double d = 0.02 + 0.007 * i + 0.003 * ((i * (shape + 3)) % 5);
      std::vector<Duration> sections;
      if ((i + shape) % 3 == 0) sections.push_back(0.001 * (1 + shape));
      tasks.push_back(cls(d, std::move(sections)));
    }
    const Assignment dm = deadline_monotonic(tasks);
    const Assignment best = optimal(tasks);
    EXPECT_GE(best.eval.bound, dm.eval.bound - kTol) << "shape " << shape;
  }
}

TEST(PriorityAssignmentTest, SingleAndEmptyInputs) {
  const std::vector<TaskClass> none;
  EXPECT_TRUE(optimal(none).order.empty());
  const std::vector<TaskClass> one_task = {cls(0.05, {0.01})};
  const Assignment one = optimal(one_task);
  EXPECT_EQ(one.order, (std::vector<std::size_t>{0}));
  EXPECT_NEAR(one.eval.bound, 1.0, kTol);  // nobody to block
}

}  // namespace
}  // namespace frap::sched::assignment
