// Differential soundness battery for the long-path DAG admission bound
// (docs/dag_bounds.md):
//
//   1. ZERO MISSES — every task the long-path controller admits is replayed
//      through the DAG runtime under a RANDOM fixed-priority order (the
//      adversarial setting where the critical-path test must pay
//      alpha = D_min/D_max) and must meet its end-to-end deadline.
//   2. DOMINANCE — on the same tracker state, every task the critical-path
//      test admits is also admitted by the long-path test (the long-path
//      region contains the critical-path region), and strictly more tasks
//      are admitted overall.
//
// The sweep covers >= 10k randomized DAGs (layered and Erdős–Rényi) across
// seeds; a seeded fixture pins exact admit counts so any change in either
// bound's behaviour is a loud diff, not a silent drift.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/long_path_bound.h"
#include "core/synthetic_utilization.h"
#include "core/task_graph.h"
#include "core/task_graph_shape.h"
#include "pipeline/dag_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/random_dag.h"

namespace frap {
namespace {

constexpr std::size_t kResources = 5;
constexpr Duration kDeadlineMin = 0.5;
constexpr Duration kDeadlineMax = 2.0;
// The critical-path test under an arbitrary fixed-priority order must use
// the worst-case urgency-inversion parameter (Sec. 3.2).
// frap-lint: allow(unsafe-division) -- constexpr ratio of two positive
// literals; no runtime deadline can reach this denominator.
constexpr double kAlpha = kDeadlineMin / kDeadlineMax;

struct EpisodeStats {
  std::uint64_t offered = 0;
  std::uint64_t long_admits = 0;
  std::uint64_t crit_admits = 0;
  std::uint64_t crit_only = 0;  // dominance violations: crit admit, long reject
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
};

workload::RandomDagConfig episode_config(util::Rng& rng) {
  workload::RandomDagConfig cfg;
  cfg.kind = rng.bernoulli(0.5) ? workload::RandomDagConfig::Kind::kLayered
                                : workload::RandomDagConfig::Kind::kErdosRenyi;
  cfg.num_nodes = static_cast<std::size_t>(rng.uniform_int(3, 10));
  cfg.num_resources = kResources;
  cfg.min_compute = 4 * kMilli;
  cfg.max_compute = 20 * kMilli;
  cfg.edge_prob = 0.3;
  cfg.extra_edge_prob = 0.25;
  return cfg;
}

// Streams `target_offered` random DAG arrivals through a long-path
// controller + DAG runtime; evaluates the critical-path test pointwise on
// the same tracker state (no commit) for the dominance comparison.
EpisodeStats run_episode(std::uint64_t seed, std::uint64_t target_offered) {
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, kResources);
  pipeline::DagRuntime runtime(sim, kResources, &tracker);
  core::TaskGraphShapeRegistry registry;
  // Stage cap = alpha: the victim guard matches the per-resource state
  // envelope the critical-path test enforces, which is what makes the
  // dominance direction below exact (docs/dag_bounds.md).
  core::LongPathEvaluator long_eval(
      std::vector<double>(kResources, kDeadlineMax), {}, kAlpha);
  core::GraphAdmissionController controller(sim, tracker,
                                            std::move(long_eval));
  core::GraphRegionEvaluator crit_eval(kAlpha, {});

  // Random fixed priority per task: deliberately NOT deadline-monotonic, so
  // only priority-agnostic bounds may claim zero misses.
  runtime.set_priority_policy([](const core::GraphTaskSpec& s) {
    return static_cast<sched::PriorityValue>(
        (s.id * 1103515245ull + 12345ull) % 1000ull);
  });

  EpisodeStats stats;
  runtime.set_on_task_complete(
      [&](const core::GraphTaskSpec&, Duration, bool missed) {
        ++stats.completed;
        if (missed) ++stats.missed;
      });

  util::Rng rng(seed);
  const double lambda = 400.0;  // arrivals/sec: overload, the region binds
  std::function<void()> pump = [&] {
    if (stats.offered >= target_offered) return;
    sim.at(sim.now() + rng.exponential(1.0 / lambda), [&] {
      ++stats.offered;
      const auto cfg = episode_config(rng);
      const Duration deadline = rng.uniform(kDeadlineMin, kDeadlineMax);
      const auto raw = workload::random_dag(rng, cfg, stats.offered, deadline);
      const auto spec = registry.canonicalize(raw);

      // Critical-path test, pointwise on the current tracker state.
      auto u = tracker.utilizations();
      const auto add = spec.resource_contributions(kResources);
      for (std::size_t k = 0; k < kResources; ++k) u[k] += add[k];
      const bool crit_admit = core::FeasibleRegion::admits_lhs(
          crit_eval.lhs(spec, u), crit_eval.bound(spec));

      const auto d = controller.try_admit(spec, sim.now());
      if (d.admitted) {
        ++stats.long_admits;
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      if (crit_admit) {
        ++stats.crit_admits;
        if (!d.admitted) ++stats.crit_only;
      }
      pump();
    });
  };
  pump();
  sim.run();
  return stats;
}

TEST(DagBoundDifferentialTest, TenThousandDagSweepZeroMissesAndDominance) {
  EpisodeStats total;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto s = run_episode(seed, 1800);
    EXPECT_EQ(s.missed, 0u) << "seed=" << seed;
    EXPECT_EQ(s.crit_only, 0u) << "seed=" << seed;
    EXPECT_EQ(s.completed, s.long_admits) << "seed=" << seed;
    total.offered += s.offered;
    total.long_admits += s.long_admits;
    total.crit_admits += s.crit_admits;
    total.crit_only += s.crit_only;
    total.completed += s.completed;
    total.missed += s.missed;
  }
  EXPECT_GE(total.offered, 10000u);
  EXPECT_EQ(total.missed, 0u);
  EXPECT_EQ(total.crit_only, 0u);
  // Strict superset, with real margin: the per-task D_n / per-resource
  // ceiling constants beat the global worst-case alpha by construction.
  EXPECT_GT(total.long_admits, total.crit_admits + total.offered / 20);
}

TEST(DagBoundDifferentialTest, SeededFixturePinsExactAdmitCounts) {
  const auto s = run_episode(42, 2000);
  EXPECT_EQ(s.offered, 2000u);
  EXPECT_EQ(s.missed, 0u);
  EXPECT_EQ(s.crit_only, 0u);
  // Pinned counts: a change to either bound, the generator, or the
  // canonicalization shifts these and must be a conscious decision.
  EXPECT_EQ(s.long_admits, 349u);
  EXPECT_EQ(s.crit_admits, 92u);
  EXPECT_GT(s.long_admits, s.crit_admits);
}

TEST(DagBoundDifferentialTest, GeneratedTasksRespectCeilingContract) {
  util::Rng rng(7);
  core::LongPathEvaluator eval(std::vector<double>(kResources, kDeadlineMax),
                               {});
  for (int i = 0; i < 200; ++i) {
    const auto cfg = episode_config(rng);
    const auto spec = workload::random_dag(
        rng, cfg, static_cast<std::uint64_t>(i + 1),
        rng.uniform(kDeadlineMin, kDeadlineMax));
    EXPECT_TRUE(eval.respects_ceilings(spec));
    EXPECT_TRUE(spec.valid(kResources));
  }
}

}  // namespace
}  // namespace frap
