#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/feasible_region.h"
#include "core/stage_delay.h"

namespace frap::core {
namespace {

TEST(FeasibleRegionTest, SingleStageReducesToUniprocessorBound) {
  const auto region = FeasibleRegion::deadline_monotonic(1);
  const double b = uniprocessor_bound();
  EXPECT_TRUE(region.contains(std::vector<double>{b - 1e-9}));
  EXPECT_FALSE(region.contains(std::vector<double>{b + 1e-6}));
  EXPECT_NEAR(region.balanced_cap(), b, 1e-12);
}

TEST(FeasibleRegionTest, Tsce930Certification) {
  // Sec. 5: U = (0.4, 0.25, 0.1) under Eq. 13 gives ~0.93 < 1.
  const auto region = FeasibleRegion::deadline_monotonic(3);
  const std::vector<double> u{0.4, 0.25, 0.1};
  EXPECT_NEAR(region.lhs(u), 0.9305555555, 1e-6);
  EXPECT_TRUE(region.contains(u));
  EXPECT_NEAR(region.margin(u), 1.0 - 0.9305555555, 1e-6);
}

TEST(FeasibleRegionTest, OriginIsAlwaysInside) {
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto region = FeasibleRegion::deadline_monotonic(n);
    EXPECT_TRUE(region.contains(std::vector<double>(n, 0.0)));
  }
}

TEST(FeasibleRegionTest, SaturatedStageIsOutside) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  EXPECT_FALSE(region.contains(std::vector<double>{1.0, 0.0}));
  EXPECT_TRUE(std::isinf(region.lhs(std::vector<double>{1.0, 0.0})));
}

TEST(FeasibleRegionTest, LhsIsMonotoneInEachCoordinate) {
  const auto region = FeasibleRegion::deadline_monotonic(3);
  std::vector<double> u{0.2, 0.3, 0.1};
  const double base = region.lhs(u);
  for (std::size_t j = 0; j < 3; ++j) {
    auto v = u;
    v[j] += 0.05;
    EXPECT_GT(region.lhs(v), base);
  }
}

TEST(FeasibleRegionTest, AlphaShrinksTheBound) {
  const auto dm = FeasibleRegion::deadline_monotonic(2);
  const auto rnd = FeasibleRegion::with_alpha(2, 0.5);
  EXPECT_DOUBLE_EQ(dm.bound(), 1.0);
  EXPECT_DOUBLE_EQ(rnd.bound(), 0.5);
  // A point inside the DM region but outside the alpha = 0.5 region.
  const std::vector<double> u{0.35, 0.35};
  EXPECT_TRUE(dm.contains(u));
  EXPECT_FALSE(rnd.contains(u));
}

TEST(FeasibleRegionTest, BlockingShrinksTheBound) {
  // Eq. 15: bound = alpha (1 - sum beta_j).
  const auto region =
      FeasibleRegion::with_blocking(1.0, std::vector<double>{0.1, 0.2});
  EXPECT_NEAR(region.bound(), 0.7, 1e-12);
  const auto with_alpha =
      FeasibleRegion::with_blocking(0.8, std::vector<double>{0.1, 0.2});
  EXPECT_NEAR(with_alpha.bound(), 0.8 * 0.7, 1e-12);
}

TEST(FeasibleRegionTest, BalancedCapMatchesClosedForm) {
  for (std::size_t n = 1; n <= 10; ++n) {
    const auto region = FeasibleRegion::deadline_monotonic(n);
    const double cap = region.balanced_cap();
    // N stages at the cap exactly exhaust the bound.
    std::vector<double> u(n, cap);
    EXPECT_NEAR(region.lhs(u), region.bound(), 1e-9);
    EXPECT_NEAR(cap, balanced_stage_bound(n), 1e-12);
  }
}

TEST(FeasibleRegionTest, BoundaryU2Tracing) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  // At U1 = 0, U2 may go up to the uniprocessor bound.
  EXPECT_NEAR(region.boundary_u2(0.0), uniprocessor_bound(), 1e-12);
  // At the balanced cap, U2 equals the cap.
  const double cap = region.balanced_cap();
  EXPECT_NEAR(region.boundary_u2(cap), cap, 1e-9);
  // Past the single-stage bound, nothing remains for stage 2.
  EXPECT_DOUBLE_EQ(region.boundary_u2(0.75), 0.0);
  // Tracing is monotone decreasing.
  double prev = region.boundary_u2(0.0);
  for (double u1 = 0.05; u1 < 0.6; u1 += 0.05) {
    const double u2 = region.boundary_u2(u1);
    EXPECT_LE(u2, prev + 1e-12);
    prev = u2;
  }
}

TEST(FeasibleRegionTest, BoundaryPointsSatisfyRegionExactly) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  for (double u1 = 0.0; u1 < 0.58; u1 += 0.02) {
    const double u2 = region.boundary_u2(u1);
    const double lhs = region.lhs(std::vector<double>{u1, u2});
    EXPECT_NEAR(lhs, 1.0, 1e-9) << "u1=" << u1;
  }
}

TEST(FeasibleRegionTest, StageHeadroomMatchesBoundary) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  // At the origin, stage 0 headroom is the full uniprocessor bound.
  EXPECT_NEAR(region.stage_headroom(std::vector<double>{0.0, 0.0}, 0),
              uniprocessor_bound(), 1e-12);
  // With stage 1 at u, stage 0's cap is boundary_u2(u).
  const std::vector<double> u{0.1, 0.3};
  const double headroom = region.stage_headroom(u, 0);
  EXPECT_NEAR(headroom, region.boundary_u2(0.3) - 0.1, 1e-9);
  // Adding exactly the headroom lands on the boundary.
  const std::vector<double> at{0.1 + headroom, 0.3};
  EXPECT_NEAR(region.lhs(at), region.bound(), 1e-9);
}

TEST(FeasibleRegionTest, StageHeadroomZeroWhenExhausted) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  EXPECT_DOUBLE_EQ(
      region.stage_headroom(std::vector<double>{0.5, 0.5}, 0), 0.0);
  EXPECT_DOUBLE_EQ(
      region.stage_headroom(std::vector<double>{0.0, 1.0}, 0), 0.0);
}

// ------------------------------------------------- saturation guards -----
// U_j >= 1 makes f(U_j) infinite; the geometry helpers must degrade to
// well-defined values (0 headroom, 0 boundary, -infinity margin) instead of
// feeding the saturated value into NaN-prone arithmetic like inf - inf.

TEST(FeasibleRegionTest, SaturatedInputsNeverProduceNan) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  const std::vector<double> sat{1.0, 0.2};
  const std::vector<double> both_sat{1.0, 2.0};

  EXPECT_TRUE(std::isinf(region.lhs(sat)));
  EXPECT_FALSE(region.contains(sat));
  EXPECT_TRUE(std::isinf(region.margin(sat)));
  EXPECT_LT(region.margin(sat), 0.0);  // -infinity, not NaN
  EXPECT_TRUE(std::isinf(region.margin(both_sat)));
  EXPECT_FALSE(std::isnan(region.margin(both_sat)));
}

TEST(FeasibleRegionTest, BoundaryU2ZeroAtAndPastSaturation) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  EXPECT_DOUBLE_EQ(region.boundary_u2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(region.boundary_u2(1.5), 0.0);
  EXPECT_FALSE(std::isnan(region.boundary_u2(1.0)));
}

TEST(FeasibleRegionTest, StageHeadroomZeroOnSaturatedInputs) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  // The queried stage itself is saturated.
  EXPECT_DOUBLE_EQ(
      region.stage_headroom(std::vector<double>{1.0, 0.1}, 0), 0.0);
  // A different stage is saturated: the whole vector is infeasible.
  EXPECT_DOUBLE_EQ(
      region.stage_headroom(std::vector<double>{0.1, 1.0}, 0), 0.0);
  EXPECT_DOUBLE_EQ(
      region.stage_headroom(std::vector<double>{2.0, 2.0}, 1), 0.0);
}

TEST(FeasibleRegionTest, DeltaLhsMatchesFullRecompute) {
  const auto region = FeasibleRegion::deadline_monotonic(3);
  const std::vector<double> u{0.2, 0.3, 0.1};
  for (std::size_t j = 0; j < 3; ++j) {
    auto v = u;
    v[j] += 0.07;
    EXPECT_NEAR(region.delta_lhs(j, u[j], v[j]),
                region.lhs(v) - region.lhs(u), 1e-12);
  }
  // No change, no delta.
  EXPECT_DOUBLE_EQ(region.delta_lhs(0, 0.4, 0.4), 0.0);
}

TEST(FeasibleRegionTest, DeltaLhsSaturationCases) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  // Entering saturation: the LHS jumps to +infinity.
  EXPECT_TRUE(std::isinf(region.delta_lhs(0, 0.3, 1.0)));
  EXPECT_GT(region.delta_lhs(0, 0.3, 1.0), 0.0);
  // Leaving saturation: -infinity (the finite remainder is negligible).
  EXPECT_TRUE(std::isinf(region.delta_lhs(0, 1.2, 0.3)));
  EXPECT_LT(region.delta_lhs(0, 1.2, 0.3), 0.0);
  // Saturated on both sides: defined as 0, never inf - inf = NaN.
  EXPECT_DOUBLE_EQ(region.delta_lhs(0, 1.0, 1.5), 0.0);
  EXPECT_FALSE(std::isnan(region.delta_lhs(0, 1.0, 1.0)));
}

TEST(FeasibleRegionTest, MarginSignsAreConsistent) {
  const auto region = FeasibleRegion::deadline_monotonic(2);
  EXPECT_GT(region.margin(std::vector<double>{0.1, 0.1}), 0.0);
  EXPECT_LT(region.margin(std::vector<double>{0.5, 0.5}), 0.0);
}

// Property sweep over N: a point just inside the balanced cap is inside;
// just outside is outside.
class RegionBalancedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegionBalancedTest, CapIsTight) {
  const std::size_t n = GetParam();
  const auto region = FeasibleRegion::deadline_monotonic(n);
  const double cap = region.balanced_cap();
  EXPECT_TRUE(region.contains(std::vector<double>(n, cap - 1e-9)));
  EXPECT_FALSE(region.contains(std::vector<double>(n, cap + 1e-6)));
}

INSTANTIATE_TEST_SUITE_P(Pipelines, RegionBalancedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 64u));

}  // namespace
}  // namespace frap::core
