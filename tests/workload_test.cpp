#include <gtest/gtest.h>

#include <cmath>

#include "core/stage_delay.h"
#include "workload/periodic.h"
#include "workload/pipeline_workload.h"
#include "workload/tsce.h"

namespace frap::workload {
namespace {

// ------------------------------------------------------- config algebra ---

TEST(PipelineWorkloadConfigTest, BalancedFactory) {
  const auto c = PipelineWorkloadConfig::balanced(3, 0.01, 1.2, 50.0);
  EXPECT_EQ(c.num_stages(), 3u);
  EXPECT_DOUBLE_EQ(c.mean_total_compute(), 0.03);
  EXPECT_DOUBLE_EQ(c.mean_deadline(), 1.5);
  EXPECT_DOUBLE_EQ(c.arrival_rate(), 120.0);
  EXPECT_TRUE(c.valid());
}

TEST(PipelineWorkloadConfigTest, DeadlineRangeGrowsWithStages) {
  // Sec. 4: "deadlines chosen uniformly from a range that grows linearly
  // with the number of stages".
  const auto c2 = PipelineWorkloadConfig::balanced(2, 0.01, 1.0);
  const auto c5 = PipelineWorkloadConfig::balanced(5, 0.01, 1.0);
  // frap-lint: allow(unsafe-division) -- ratio of two known-positive
  // configured deadlines, asserting the growth law, not an admission value.
  EXPECT_NEAR(c5.mean_deadline() / c2.mean_deadline(), 2.5, 1e-12);
  // frap-lint: allow(unsafe-division) -- same growth-law ratio as above.
  EXPECT_NEAR(c5.deadline_max() / c2.deadline_max(), 2.5, 1e-12);
}

TEST(PipelineWorkloadConfigTest, BottleneckDefinesArrivalRate) {
  PipelineWorkloadConfig c;
  c.mean_compute = {0.01, 0.02};  // stage 1 is the bottleneck
  c.input_load = 1.0;
  EXPECT_DOUBLE_EQ(c.arrival_rate(), 50.0);
}

TEST(PipelineWorkloadConfigTest, Validity) {
  PipelineWorkloadConfig c;
  EXPECT_FALSE(c.valid());  // no stages
  c.mean_compute = {0.01};
  EXPECT_TRUE(c.valid());
  c.input_load = 0;
  EXPECT_FALSE(c.valid());
  c.input_load = 1;
  c.deadline_spread = 1.0;
  EXPECT_FALSE(c.valid());
}

// ------------------------------------------------------------ generator ---

TEST(PipelineWorkloadGeneratorTest, Deterministic) {
  const auto c = PipelineWorkloadConfig::balanced(2, 0.01, 1.0);
  PipelineWorkloadGenerator a(c, 7);
  PipelineWorkloadGenerator b(c, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.next_interarrival(), b.next_interarrival());
    const auto ta = a.next_task();
    const auto tb = b.next_task();
    EXPECT_EQ(ta.id, tb.id);
    EXPECT_DOUBLE_EQ(ta.deadline, tb.deadline);
    EXPECT_DOUBLE_EQ(ta.stages[0].compute, tb.stages[0].compute);
  }
}

TEST(PipelineWorkloadGeneratorTest, InterarrivalMeanMatchesRate) {
  const auto c = PipelineWorkloadConfig::balanced(2, 0.01, 1.0);  // 100/s
  PipelineWorkloadGenerator g(c, 11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.next_interarrival();
  EXPECT_NEAR(sum / n, 0.01, 0.0005);
}

TEST(PipelineWorkloadGeneratorTest, ComputeMeansMatchConfig) {
  PipelineWorkloadConfig c;
  c.mean_compute = {0.01, 0.03};
  c.input_load = 1.0;
  PipelineWorkloadGenerator g(c, 13);
  double s0 = 0, s1 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto t = g.next_task();
    s0 += t.stages[0].compute;
    s1 += t.stages[1].compute;
  }
  EXPECT_NEAR(s0 / n, 0.01, 0.0005);
  EXPECT_NEAR(s1 / n, 0.03, 0.0015);
}

TEST(PipelineWorkloadGeneratorTest, DeadlinesInConfiguredRange) {
  const auto c = PipelineWorkloadConfig::balanced(2, 0.01, 1.0, 100.0);
  PipelineWorkloadGenerator g(c, 17);
  for (int i = 0; i < 10000; ++i) {
    const auto t = g.next_task();
    EXPECT_GE(t.deadline, c.deadline_min());
    EXPECT_LT(t.deadline, c.deadline_max());
  }
}

TEST(PipelineWorkloadGeneratorTest, RealizedResolutionMatches) {
  const auto c = PipelineWorkloadConfig::balanced(2, 0.01, 1.0, 40.0);
  PipelineWorkloadGenerator g(c, 19);
  double d = 0, comp = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto t = g.next_task();
    d += t.deadline;
    comp += t.total_compute();
  }
  EXPECT_NEAR((d / n) / (comp / n), 40.0, 1.0);
}

TEST(PipelineWorkloadGeneratorTest, IdsAreSequentialUnique) {
  const auto c = PipelineWorkloadConfig::balanced(1, 0.01, 1.0);
  PipelineWorkloadGenerator g(c, 23);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto t = g.next_task();
    EXPECT_GT(t.id, prev);
    prev = t.id;
  }
}

// ------------------------------------------------------------- periodic ---

TEST(PeriodicStreamTest, ReleasesAtMultiplesOfPeriod) {
  PeriodicStreamConfig c;
  c.name = "p";
  c.period = 0.5;
  c.deadline = 0.5;
  c.stages.resize(1);
  c.stages[0].compute = 0.01;
  PeriodicStream s(c, 100, 1);
  EXPECT_DOUBLE_EQ(s.next_release(), 0.0);
  EXPECT_DOUBLE_EQ(s.next_release(), 0.5);
  EXPECT_DOUBLE_EQ(s.next_release(), 1.0);
}

TEST(PeriodicStreamTest, JitterBoundsReleases) {
  PeriodicStreamConfig c;
  c.name = "p";
  c.period = 1.0;
  c.deadline = 1.0;
  c.jitter = 0.3;
  c.stages.resize(1);
  c.stages[0].compute = 0.01;
  PeriodicStream s(c, 100, 2);
  for (int k = 0; k < 100; ++k) {
    const Time r = s.next_release();
    EXPECT_GE(r, static_cast<double>(k));
    EXPECT_LT(r, static_cast<double>(k) + 0.3);
  }
}

TEST(PeriodicStreamTest, InvocationIdsAreDistinct) {
  PeriodicStreamConfig c;
  c.name = "p";
  c.period = 1.0;
  c.deadline = 0.8;
  c.importance = 3.0;
  c.stages.resize(2);
  c.stages[0].compute = 0.01;
  c.stages[1].compute = 0.02;
  PeriodicStream s(c, 1000, 3);
  s.next_release();
  const auto a = s.current_invocation();
  s.next_release();
  const auto b = s.current_invocation();
  EXPECT_EQ(a.id, 1000u);
  EXPECT_EQ(b.id, 1001u);
  EXPECT_DOUBLE_EQ(a.deadline, 0.8);
  EXPECT_DOUBLE_EQ(a.importance, 3.0);
  ASSERT_EQ(a.stages.size(), 2u);
}

TEST(PeriodicStreamTest, InvocationContributions) {
  PeriodicStreamConfig c;
  c.name = "p";
  c.period = 0.5;
  c.deadline = 0.5;
  c.stages.resize(2);
  c.stages[0].compute = 0.05;
  c.stages[1].compute = 0.1;
  PeriodicStream s(c, 0, 4);
  const auto contrib = s.invocation_contributions();
  ASSERT_EQ(contrib.size(), 2u);
  EXPECT_DOUBLE_EQ(contrib[0], 0.1);
  EXPECT_DOUBLE_EQ(contrib[1], 0.2);
}

TEST(PeriodicStreamTest, MaxConcurrentInvocations) {
  PeriodicStreamConfig c;
  c.name = "p";
  c.period = 1.0;
  c.deadline = 1.0;
  c.stages.resize(1);
  c.stages[0].compute = 0.1;
  // Sporadic case: D = P, no jitter -> 1.
  EXPECT_EQ(max_concurrent_invocations(c), 1u);
  // D = 1.5 P: adjacent windows overlap -> 2.
  c.deadline = 1.5;
  EXPECT_EQ(max_concurrent_invocations(c), 2u);
  // Jitter a full period: a delayed and an on-time invocation coexist.
  c.deadline = 1.0;
  c.jitter = 1.0;
  EXPECT_EQ(max_concurrent_invocations(c), 2u);
  // Heavy jitter.
  c.jitter = 3.2;
  EXPECT_EQ(max_concurrent_invocations(c), 5u);  // ceil(4.2)
}

TEST(PeriodicStreamTest, WorstCaseContributionsScaleByConcurrency) {
  PeriodicStreamConfig c;
  c.name = "p";
  c.period = 0.1;
  c.deadline = 0.1;
  c.jitter = 0.1;  // -> 2 concurrent
  c.stages.resize(2);
  c.stages[0].compute = 0.005;
  c.stages[1].compute = 0.01;
  const auto w = worst_case_contributions(c);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 2 * 0.005 / 0.1);
  EXPECT_DOUBLE_EQ(w[1], 2 * 0.01 / 0.1);
}

TEST(PeriodicStreamTest, EmpiricalConcurrencyNeverExceedsBound) {
  // Simulate release times and count concurrent windows directly.
  PeriodicStreamConfig c;
  c.name = "p";
  c.period = 0.1;
  c.deadline = 0.13;
  c.jitter = 0.25;
  c.stages.resize(1);
  c.stages[0].compute = 0.01;
  const std::size_t bound = max_concurrent_invocations(c);
  PeriodicStream s(c, 0, 77);
  std::vector<std::pair<Time, Time>> windows;
  for (int k = 0; k < 2000; ++k) {
    const Time r = s.next_release();
    windows.push_back({r, r + c.deadline});
  }
  // Check concurrency at every window start.
  for (const auto& [start, end] : windows) {
    std::size_t live = 0;
    for (const auto& [s2, e2] : windows) {
      if (s2 <= start && start < e2) ++live;
    }
    ASSERT_LE(live, bound);
  }
}

// ----------------------------------------------------------------- TSCE ---

TEST(TsceTest, ReservedUtilizationsMatchPaper) {
  const auto r = tsce::reserved_utilizations();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[0], 0.4, 1e-12);
  EXPECT_NEAR(r[1], 0.25, 1e-12);
  EXPECT_NEAR(r[2], 0.1, 1e-12);
}

TEST(TsceTest, CertificationValueIs093) {
  // Sec. 5: "Substituting in Equation (13), we get 0.93, which is lower
  // than 1. Hence, the task set is schedulable."
  EXPECT_NEAR(tsce::certification_lhs(), 0.93, 0.005);
  EXPECT_LT(tsce::certification_lhs(), 1.0);
}

TEST(TsceTest, WeaponDetectionMatchesTable1) {
  const auto t = tsce::weapon_detection_task(7);
  EXPECT_EQ(t.id, 7u);
  EXPECT_DOUBLE_EQ(t.deadline, 0.5);
  ASSERT_EQ(t.stages.size(), 3u);
  EXPECT_DOUBLE_EQ(t.stages[0].compute, 0.1);
  EXPECT_DOUBLE_EQ(t.stages[1].compute, 0.065);
  EXPECT_DOUBLE_EQ(t.stages[2].compute, 0.03);
}

TEST(TsceTest, WeaponTargetingMatchesTable1) {
  const auto c = tsce::weapon_targeting_stream();
  EXPECT_DOUBLE_EQ(c.period, 0.05);
  EXPECT_DOUBLE_EQ(c.deadline, 0.05);
  ASSERT_EQ(c.stages.size(), 3u);
  for (const auto& s : c.stages) EXPECT_DOUBLE_EQ(s.compute, 0.005);
}

TEST(TsceTest, UavVideoMatchesTable1) {
  const auto c = tsce::uav_video_stream();
  EXPECT_DOUBLE_EQ(c.period, 0.5);
  EXPECT_DOUBLE_EQ(c.stages[0].compute, 0.05);
  EXPECT_DOUBLE_EQ(c.stages[1].compute, 0.01);  // 5 ms x 2 consoles
  EXPECT_DOUBLE_EQ(c.stages[2].compute, 0.05);
}

TEST(TsceTest, TrackingTaskIsStage1Only) {
  const auto c = tsce::target_tracking_stream(3);
  EXPECT_DOUBLE_EQ(c.period, 1.0);
  EXPECT_DOUBLE_EQ(c.deadline, 1.0);
  EXPECT_DOUBLE_EQ(c.stages[0].compute, 0.001);
  EXPECT_DOUBLE_EQ(c.stages[1].compute, 0.0);
  EXPECT_DOUBLE_EQ(c.stages[2].compute, 0.0);
}

TEST(TsceTest, ImportanceOrderingIsStrict) {
  EXPECT_LT(tsce::kImportanceTracking, tsce::kImportanceUavVideo);
  EXPECT_LT(tsce::kImportanceUavVideo, tsce::kImportanceWeaponTargeting);
  EXPECT_LT(tsce::kImportanceWeaponTargeting,
            tsce::kImportanceWeaponDetection);
}

}  // namespace
}  // namespace frap::workload
