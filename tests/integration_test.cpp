// End-to-end soundness tests: the paper's central claim is that as long as
// the admission controller keeps the per-stage synthetic utilizations inside
// the feasible region, NO admitted task misses its end-to-end deadline.
// These tests run full simulations (workload -> admission -> preemptive
// pipeline execution) and assert a zero miss ratio, across pipeline lengths,
// loads, resolutions, seeds, scheduling policies, and blocking.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "core/admission.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "pipeline/experiment.h"
#include "pipeline/pipeline_runtime.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace frap::pipeline {
namespace {

ExperimentConfig base_config(std::size_t stages, double load,
                             double resolution, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.workload = workload::PipelineWorkloadConfig::balanced(
      stages, 10 * kMilli, load, resolution);
  cfg.seed = seed;
  cfg.sim_duration = 60.0;
  cfg.warmup = 5.0;
  return cfg;
}

// ------------------------- the theorem: no misses under exact admission ---

using SoundnessParams = std::tuple<std::size_t /*stages*/, double /*load*/,
                                   double /*resolution*/, std::uint64_t>;

class SoundnessTest : public ::testing::TestWithParam<SoundnessParams> {};

TEST_P(SoundnessTest, ExactAdmissionNeverMissesDeadlines) {
  const auto [stages, load, resolution, seed] = GetParam();
  auto cfg = base_config(stages, load, resolution, seed);
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.completed, 100u) << "experiment too small to be meaningful";
  EXPECT_EQ(r.miss_ratio, 0.0)
      << "stages=" << stages << " load=" << load << " res=" << resolution
      << " seed=" << seed;
  // Every admitted task must eventually complete (pipeline drains).
  EXPECT_EQ(r.completed, r.admitted);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SoundnessTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5),
                       ::testing::Values(0.8, 1.2, 2.0),
                       ::testing::Values(20.0, 100.0),
                       ::testing::Values<std::uint64_t>(1, 42)));

// Random-priority policy with the alpha-scaled region is also sound.
class RandomPolicyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPolicyTest, AlphaRegionKeepsRandomPrioritySound) {
  auto cfg = base_config(2, 1.5, 50.0, GetParam());
  cfg.priority = PriorityMode::kRandom;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.completed, 100u);
  EXPECT_EQ(r.miss_ratio, 0.0) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPolicyTest,
                         ::testing::Values<std::uint64_t>(3, 7, 11, 19));

// ------------------------------------------------------- sanity numbers ---

TEST(IntegrationTest, AdmissionControlActuallyRejectsAtOverload) {
  auto cfg = base_config(2, 2.0, 100.0, 5);
  const auto r = run_experiment(cfg);
  EXPECT_LT(r.acceptance_ratio, 0.9);
  EXPECT_GT(r.acceptance_ratio, 0.2);
}

TEST(IntegrationTest, UtilizationIsHighAtFullLoad) {
  // Paper Sec. 4.1: "when the input load is 100% of stage capacity, the
  // average stage utilization after admission control is more than 80%".
  auto cfg = base_config(2, 1.0, 100.0, 5);
  cfg.sim_duration = 120.0;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.avg_stage_utilization, 0.75);
}

TEST(IntegrationTest, NoAdmissionControlMissesAtOverload) {
  // Without admission control an overloaded pipeline must miss deadlines —
  // this validates that the zero-miss results above are not vacuous.
  auto cfg = base_config(2, 1.5, 100.0, 5);
  cfg.admission = AdmissionMode::kNone;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.miss_ratio, 0.05);
}

TEST(IntegrationTest, IdleResetRaisesUtilization) {
  // Ablation A1: disabling the idle reset makes admission more pessimistic.
  auto with = base_config(2, 1.2, 100.0, 9);
  auto without = with;
  without.idle_reset = false;
  const auto r_with = run_experiment(with);
  const auto r_without = run_experiment(without);
  EXPECT_GT(r_with.avg_stage_utilization,
            r_without.avg_stage_utilization + 0.05);
  // Both are still sound.
  EXPECT_EQ(r_with.miss_ratio, 0.0);
  EXPECT_EQ(r_without.miss_ratio, 0.0);
}

TEST(IntegrationTest, DeadlineSplitBaselineIsSoundButConservative) {
  auto ours = base_config(2, 1.2, 100.0, 13);
  auto split = ours;
  split.admission = AdmissionMode::kDeadlineSplit;
  const auto r_ours = run_experiment(ours);
  const auto r_split = run_experiment(split);
  EXPECT_EQ(r_split.miss_ratio, 0.0);
  EXPECT_GT(r_ours.avg_stage_utilization, r_split.avg_stage_utilization);
}

TEST(IntegrationTest, ApproximateAdmissionHasLowMissRatioAtHighResolution) {
  // Paper Sec. 4.4 / Fig. 7: with high task resolution, admission by mean
  // computation times keeps the miss ratio near zero.
  auto cfg = base_config(2, 1.2, 200.0, 17);
  cfg.admission = AdmissionMode::kApproximate;
  const auto r = run_experiment(cfg);
  EXPECT_LT(r.miss_ratio, 0.01);
}

TEST(IntegrationTest, WaitingAdmissionStaysSound) {
  // Waiting lets arrivals catch a capacity release within their patience.
  // On heterogeneous workloads strict FIFO can trade a little acceptance
  // for fairness (head-of-line blocking), so the hard guarantees here are
  // soundness and no acceptance collapse; the TSCE bench shows the
  // capacity gain on the paper's homogeneous track workload.
  auto no_wait = base_config(2, 1.5, 100.0, 21);
  auto wait = no_wait;
  wait.patience = 50 * kMilli;
  const auto r_no_wait = run_experiment(no_wait);
  const auto r_wait = run_experiment(wait);
  EXPECT_GE(r_wait.acceptance_ratio, r_no_wait.acceptance_ratio - 0.05);
  EXPECT_EQ(r_wait.miss_ratio, 0.0);
  EXPECT_EQ(r_wait.completed, r_wait.admitted);
}

TEST(IntegrationTest, ImbalanceShiftsLoadToBottleneck) {
  // Sec. 4.3: the admission controller exploits imbalance; the bottleneck
  // stage of an imbalanced pipeline runs hotter than a balanced stage.
  ExperimentConfig balanced = base_config(2, 1.2, 100.0, 25);
  ExperimentConfig imbalanced = balanced;
  imbalanced.workload.mean_compute = {10 * kMilli, 2.5 * kMilli};
  const auto r_bal = run_experiment(balanced);
  const auto r_imb = run_experiment(imbalanced);
  EXPECT_GT(r_imb.bottleneck_utilization, r_bal.bottleneck_utilization);
  EXPECT_EQ(r_imb.miss_ratio, 0.0);
}

TEST(IntegrationTest, SheddingAtOverloadKeepsSurvivorsSound) {
  // Two importance classes at combined overload; the shedding controller
  // aborts low-importance tasks to make room. Every task that RUNS TO
  // COMPLETION must still meet its deadline — shedding only removes load.
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, 2);
  PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));
  core::SheddingAdmissionController shedder(
      admission, [&](std::uint64_t id) { runtime.abort_task(id); });
  // Soundness requires shedding only tasks that never executed (see the
  // ShedFilter documentation): without this filter a handful of misses
  // appear at overload.
  shedder.set_shed_filter([&](std::uint64_t id) {
    return !runtime.task_started_executing(id);
  });

  std::uint64_t missed = 0;
  std::uint64_t completed = 0;
  runtime.set_on_task_complete(
      [&](const core::TaskSpec&, Duration, bool miss) {
        ++completed;
        if (miss) ++missed;
      });

  util::Rng rng(77);
  std::uint64_t next_id = 1;
  std::function<void()> pump = [&] {
    const Time t = sim.now() + rng.exponential(0.004);  // 250/s, ~200% load
    if (t > 30.0) return;
    sim.at(t, [&] {
      core::TaskSpec spec;
      spec.id = next_id++;
      spec.deadline = rng.uniform(1.0, 3.0);
      spec.importance = rng.bernoulli(0.3) ? 5.0 : 1.0;
      spec.stages.resize(2);
      spec.stages[0].compute = rng.exponential(8 * kMilli);
      spec.stages[1].compute = rng.exponential(8 * kMilli);
      if (shedder.try_admit(spec).admitted) {
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      pump();
    });
  };
  pump();
  sim.run();

  EXPECT_GT(completed, 500u);
  EXPECT_GT(shedder.tasks_shed(), 0u);  // shedding actually happened
  EXPECT_EQ(missed, 0u);
}

TEST(IntegrationTest, UnfilteredSheddingCanMiss) {
  // Documents the soundness caveat (docs/THEORY.md): shedding tasks that
  // already consumed processor time rewinds the synthetic-utilization
  // ledger while their interference remains physical — survivors can
  // miss. The run is deterministic, so the misses are stable.
  sim::Simulator sim;
  core::SyntheticUtilizationTracker tracker(sim, 2);
  PipelineRuntime runtime(sim, 2, &tracker);
  core::AdmissionController admission(
      sim, tracker, core::FeasibleRegion::deadline_monotonic(2));
  core::SheddingAdmissionController shedder(
      admission, [&](std::uint64_t id) { runtime.abort_task(id); });
  // NO shed filter: the paper's unrestricted formulation.

  std::uint64_t missed = 0;
  runtime.set_on_task_complete(
      [&](const core::TaskSpec&, Duration, bool miss) {
        if (miss) ++missed;
      });

  util::Rng rng(77);
  std::uint64_t next_id = 1;
  std::function<void()> pump = [&] {
    const Time t = sim.now() + rng.exponential(0.004);
    if (t > 30.0) return;
    sim.at(t, [&] {
      core::TaskSpec spec;
      spec.id = next_id++;
      spec.deadline = rng.uniform(1.0, 3.0);
      spec.importance = rng.bernoulli(0.3) ? 5.0 : 1.0;
      spec.stages.resize(2);
      spec.stages[0].compute = rng.exponential(8 * kMilli);
      spec.stages[1].compute = rng.exponential(8 * kMilli);
      if (shedder.try_admit(spec).admitted) {
        runtime.start_task(spec, sim.now() + spec.deadline);
      }
      pump();
    });
  };
  pump();
  sim.run();

  EXPECT_GT(missed, 0u);  // the caveat is real (fixed by the shed filter)
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const auto a = run_experiment(base_config(3, 1.0, 100.0, 31));
  const auto b = run_experiment(base_config(3, 1.0, 100.0, 31));
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.avg_stage_utilization, b.avg_stage_utilization);
}

TEST(IntegrationTest, HigherResolutionRaisesUtilization) {
  // Fig. 5's shape: higher resolution -> higher post-admission utilization.
  auto low = base_config(2, 1.2, 5.0, 37);
  auto high = base_config(2, 1.2, 200.0, 37);
  const auto r_low = run_experiment(low);
  const auto r_high = run_experiment(high);
  EXPECT_GT(r_high.avg_stage_utilization, r_low.avg_stage_utilization);
}

}  // namespace
}  // namespace frap::pipeline
