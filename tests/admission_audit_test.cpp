#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "core/admission.h"
#include "core/admission_audit.h"
#include "core/feasible_region.h"
#include "core/synthetic_utilization.h"
#include "sim/simulator.h"

namespace frap::core {
namespace {

TaskSpec make_task(std::uint64_t id, Duration deadline,
                   std::vector<Duration> computes) {
  TaskSpec spec;
  spec.id = id;
  spec.deadline = deadline;
  for (Duration c : computes) {
    StageDemand d;
    d.compute = c;
    spec.stages.push_back(d);
  }
  return spec;
}

TEST(AdmissionAuditTest, RecordsDecisionsInOrder) {
  AdmissionAudit audit;
  audit.record(AuditRecord{1.0, 10, true, 0.0, 0.2, 1.0});
  audit.record(AuditRecord{2.0, 11, false, 0.2, 1.4, 1.0});
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit[0].task_id, 10u);
  EXPECT_TRUE(audit[0].admitted);
  EXPECT_EQ(audit[1].task_id, 11u);
  EXPECT_FALSE(audit[1].admitted);
  EXPECT_DOUBLE_EQ(audit.acceptance().ratio(), 0.5);
}

TEST(AdmissionAuditTest, RemainingMarginSemantics) {
  // Admitted: margin measured including the task.
  const AuditRecord a{0, 1, true, 0.1, 0.4, 1.0};
  EXPECT_DOUBLE_EQ(a.remaining_margin(), 0.6);
  // Rejected: the task did not enter, so the state keeps lhs_before.
  const AuditRecord r{0, 2, false, 0.1, 1.5, 1.0};
  EXPECT_DOUBLE_EQ(r.remaining_margin(), 0.9);
}

TEST(AdmissionAuditTest, RingModeKeepsNewest) {
  AdmissionAudit audit(2);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    audit.record(AuditRecord{static_cast<Time>(i), i, true, 0, 0, 1.0});
  }
  EXPECT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit.dropped(), 3u);
  EXPECT_EQ(audit[0].task_id, 4u);
  EXPECT_EQ(audit[1].task_id, 5u);
  // Summaries still cover everything.
  EXPECT_EQ(audit.acceptance().total(), 5u);
}

TEST(AdmissionAuditTest, SummariesSplitByVerdict) {
  AdmissionAudit audit;
  audit.record(AuditRecord{0, 1, true, 0.0, 0.3, 1.0});   // margin 0.7
  audit.record(AuditRecord{0, 2, true, 0.3, 0.5, 1.0});   // margin 0.5
  audit.record(AuditRecord{0, 3, false, 0.5, 1.2, 1.0});  // lhs 1.2
  EXPECT_EQ(audit.admitted_margin().count(), 2u);
  EXPECT_DOUBLE_EQ(audit.admitted_margin().mean(), 0.6);
  EXPECT_EQ(audit.rejected_lhs().count(), 1u);
  EXPECT_DOUBLE_EQ(audit.rejected_lhs().mean(), 1.2);
}

TEST(AdmissionAuditTest, InfiniteLhsRejectionsExcludedFromStats) {
  AdmissionAudit audit;
  audit.record(AuditRecord{0, 1, false, 0.0,
                           std::numeric_limits<double>::infinity(), 1.0});
  EXPECT_EQ(audit.rejected_lhs().count(), 0u);
  EXPECT_EQ(audit.acceptance().total(), 1u);
}

TEST(AdmissionAuditTest, DumpFormat) {
  AdmissionAudit audit;
  audit.record(AuditRecord{1.5, 7, true, 0.1, 0.2, 1.0});
  std::ostringstream os;
  audit.dump(os);
  EXPECT_EQ(os.str(), "1.5\t7\tadmit\t0.1\t0.2\t1\n");
}

TEST(AdmissionAuditTest, ControllerFeedsAudit) {
  sim::Simulator sim;
  SyntheticUtilizationTracker tracker(sim, 2);
  AdmissionController controller(sim, tracker,
                                 FeasibleRegion::deadline_monotonic(2));
  AdmissionAudit audit;
  controller.set_audit(&audit);

  (void)controller.try_admit(make_task(1, 1.0, {0.1, 0.1}));  // in
  (void)controller.try_admit(make_task(2, 1.0, {0.6, 0.6}));  // out
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_TRUE(audit[0].admitted);
  EXPECT_EQ(audit[0].task_id, 1u);
  EXPECT_FALSE(audit[1].admitted);
  EXPECT_DOUBLE_EQ(audit[1].bound, 1.0);
  EXPECT_GT(audit[1].lhs_with_task, 1.0);
  EXPECT_DOUBLE_EQ(audit.acceptance().ratio(), 0.5);
}

}  // namespace
}  // namespace frap::core
