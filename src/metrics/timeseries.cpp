#include "metrics/timeseries.h"

#include <algorithm>

#include "util/check.h"

namespace frap::metrics {

TimeSeries::TimeSeries(sim::Simulator& sim, Duration interval,
                       std::function<double()> probe)
    : sim_(sim), interval_(interval), probe_(std::move(probe)) {
  FRAP_EXPECTS(interval_ > 0);
  FRAP_EXPECTS(probe_ != nullptr);
}

void TimeSeries::start(Time until) {
  FRAP_EXPECTS(until >= sim_.now());
  until_ = until;
  tick();
}

void TimeSeries::tick() {
  samples_.push_back(Sample{sim_.now(), probe_()});
  const Time next = sim_.now() + interval_;
  if (next > until_) return;
  sim_.at(next, [this] { tick(); });
}

double TimeSeries::mean(Time from, Time to) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.time >= from && s.time <= to) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::max(Time from, Time to) const {
  double best = 0;
  for (const auto& s : samples_) {
    if (s.time >= from && s.time <= to) best = std::max(best, s.value);
  }
  return best;
}

}  // namespace frap::metrics
