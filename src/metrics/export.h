// Machine-readable export of metric objects (CSV with RFC-4180 quoting).
//
// Bench binaries print human tables; pipelines that post-process results
// (plotting the reproduced figures, regression-tracking utilizations) use
// these writers instead.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/timeseries.h"
#include "util/table.h"

namespace frap::metrics {

// Quotes a single CSV field per RFC 4180 (wraps in quotes when the value
// contains a comma, quote, or newline; doubles embedded quotes).
std::string csv_escape(const std::string& field);

// Writes a util::Table as CSV: header row then data rows.
void write_csv(const util::Table& table, std::ostream& os);

// Writes a TimeSeries as two columns: time,value.
void write_csv(const TimeSeries& series, std::ostream& os);

// Writes a Histogram as three columns: bucket_lo,bucket_hi,count.
void write_csv(const Histogram& histogram, std::ostream& os);

}  // namespace frap::metrics
