// Measures *real* utilization of a resource: the fraction of wall (virtual)
// time the resource spent busy. This is the y-axis of the paper's Figures
// 4-6 ("average real stage utilization ... the percentage of time the
// processor is busy"), as opposed to synthetic utilization, which is an
// analytical quantity.
#pragma once

#include <vector>

#include "util/time.h"

namespace frap::metrics {

class UtilizationMeter {
 public:
  // Marks the transition to busy at time t. Calling while already busy is an
  // error (transitions must alternate).
  void set_busy(Time t);

  // Marks the transition to idle at time t (>= the busy transition).
  void set_idle(Time t);

  bool busy() const { return busy_; }

  // Total busy time accumulated in [from, to]; the interval may cut through
  // busy periods. `to` is typically the simulation end; if the meter is
  // still busy, the open interval is counted up to `to`.
  Duration busy_time(Time from, Time to) const;

  // busy_time(from, to) / (to - from). Requires to > from.
  double utilization(Time from, Time to) const;

 private:
  struct Interval {
    Time begin;
    Time end;
    // Cumulative busy time of intervals[0..this], maintained on append so a
    // window query is two binary searches plus one subtraction instead of a
    // scan over the whole history (long simulations accumulate millions of
    // intervals; experiments query many windows).
    Duration cum;
  };
  // Closed intervals are appended in ascending, non-overlapping order
  // (set_busy enforces t >= the previous end).
  std::vector<Interval> intervals_;
  bool busy_ = false;
  Time busy_since_ = kTimeZero;
};

}  // namespace frap::metrics
