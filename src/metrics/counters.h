// Simple event-counting metrics used by experiments: acceptance ratio of the
// admission controller, deadline-miss ratio of admitted tasks, etc.
#pragma once

#include <cstdint>

namespace frap::metrics {

// Tracks a numerator over a denominator (e.g., misses over completions).
class RatioTracker {
 public:
  void record(bool hit) {
    ++total_;
    if (hit) ++hits_;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t total() const { return total_; }

  // hits/total; 0 when nothing recorded yet.
  double ratio() const {
    return total_ == 0 ? 0.0 : static_cast<double>(hits_) /
                                   static_cast<double>(total_);
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

// Consistency statistics for an incrementally-maintained cache (e.g. the
// synthetic-utilization tracker's running region-LHS scalar): how often the
// recompute-and-compare cross-check ran, the worst absolute drift it ever
// observed, and how many times the cache was rebuilt from scratch to bound
// floating-point drift.
struct CacheConsistency {
  std::uint64_t crosschecks = 0;
  std::uint64_t rebuilds = 0;
  double max_drift = 0;

  void record_crosscheck(double abs_drift) {
    ++crosschecks;
    if (abs_drift > max_drift) max_drift = abs_drift;
  }
  void record_rebuild() { ++rebuilds; }
};

// Streaming mean/variance/min/max (Welford's algorithm), for response-time
// style observations where storing every sample would be wasteful.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace frap::metrics
