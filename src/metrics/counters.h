// Simple event-counting metrics used by experiments: acceptance ratio of the
// admission controller, deadline-miss ratio of admitted tasks, etc.
//
// The Atomic* variants at the bottom are the only concurrency-aware types in
// the library outside src/service/ (frap-lint R5 sanctions exactly this
// header); everything else here is single-threaded by design.
#pragma once

#include <atomic>
#include <cstdint>

namespace frap::metrics {

// Tracks a numerator over a denominator (e.g., misses over completions).
class RatioTracker {
 public:
  void record(bool hit) {
    ++total_;
    if (hit) ++hits_;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t total() const { return total_; }

  // hits/total; 0 when nothing recorded yet.
  double ratio() const {
    return total_ == 0 ? 0.0 : static_cast<double>(hits_) /
                                   static_cast<double>(total_);
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

// Consistency statistics for an incrementally-maintained cache (e.g. the
// synthetic-utilization tracker's running region-LHS scalar): how often the
// recompute-and-compare cross-check ran, the worst absolute drift it ever
// observed, and how many times the cache was rebuilt from scratch to bound
// floating-point drift.
struct CacheConsistency {
  std::uint64_t crosschecks = 0;
  std::uint64_t rebuilds = 0;
  double max_drift = 0;

  void record_crosscheck(double abs_drift) {
    ++crosschecks;
    if (abs_drift > max_drift) max_drift = abs_drift;
  }
  void record_rebuild() { ++rebuilds; }
};

// Streaming mean/variance/min/max (Welford's algorithm), for response-time
// style observations where storing every sample would be wasteful.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Monotonic event counter safe to bump from concurrent admission shards.
// Relaxed ordering on purpose: counts are eventually consistent
// observability data, never control flow — readers may see a slightly stale
// total while increments are in flight, which is fine for metrics and keeps
// the hot path to a single uncontended RMW.
class AtomicCounter {
 public:
  AtomicCounter() = default;
  // Counters are identity-less tallies; copying snapshots the value so the
  // service can return aggregated stats structs by value.
  AtomicCounter(const AtomicCounter& other) : n_(other.value()) {}
  AtomicCounter& operator=(const AtomicCounter& other) {
    // frap:contract(order: relaxed; counters are monotone tallies with no
    // cross-variable invariant, approximate totals are acceptable)
    n_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void increment(std::uint64_t by = 1) {
    // frap:contract(order: relaxed RMW; atomicity alone keeps the tally
    // exact, no ordering with other memory is needed)
    n_.fetch_add(by, std::memory_order_relaxed);
  }
  // frap:contract(order: relaxed; a metrics read may lag in-flight
  // increments by design)
  std::uint64_t value() const { return n_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> n_{0};
};

// RatioTracker variant for concurrent recorders. hits() and total() are each
// exact; a ratio() read concurrent with record() calls may pair a numerator
// and denominator from slightly different instants (again: observability,
// not control flow).
class AtomicRatioTracker {
 public:
  void record(bool hit) {
    total_.increment();
    if (hit) hits_.increment();
  }

  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t total() const { return total_.value(); }

  double ratio() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(hits()) / static_cast<double>(t);
  }

 private:
  AtomicCounter hits_;
  AtomicCounter total_;
};

}  // namespace frap::metrics
