// Periodic sampling of a runtime quantity into a (time, value) series —
// e.g. synthetic utilization over time, queue lengths, or live-task counts.
// Drives itself with simulator events.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/time.h"

namespace frap::metrics {

class TimeSeries {
 public:
  struct Sample {
    Time time;
    double value;
  };

  // Samples `probe` every `interval` from the moment start() is called
  // until `until` (inclusive of the first tick at the start time).
  TimeSeries(sim::Simulator& sim, Duration interval,
             std::function<double()> probe);

  // Begins sampling now; stops after `until` (absolute time).
  void start(Time until);

  const std::vector<Sample>& samples() const { return samples_; }

  // Mean of sample values in [from, to]; 0 when no samples fall inside.
  double mean(Time from, Time to) const;

  // Largest sample value in [from, to]; 0 when none.
  double max(Time from, Time to) const;

 private:
  void tick();

  sim::Simulator& sim_;
  Duration interval_;
  std::function<double()> probe_;
  Time until_ = kTimeZero;
  std::vector<Sample> samples_;
};

}  // namespace frap::metrics
