// Fixed-range linear histogram for distribution-shaped metrics (response
// times, stage delays). Out-of-range samples are clamped into the edge
// buckets so totals always match the number of samples.
#pragma once

#include <cstdint>
#include <vector>

namespace frap::metrics {

class Histogram {
 public:
  // Buckets partition [lo, hi) evenly. Requires hi > lo and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }

  // Left / right edge of bucket i.
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  // Smallest value v such that at least q (in [0,1]) of the mass lies in
  // buckets whose right edge is <= v. Approximate (bucket resolution).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace frap::metrics
