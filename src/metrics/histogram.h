// Fixed-range linear histogram for distribution-shaped metrics (response
// times, stage delays). Out-of-range samples (including infinities) are
// clamped into the edge buckets so totals always match the number of finite
// or infinite samples; NaN is counted separately in nan_rejected() and never
// enters a bucket. Exact bucket edges always land in the bucket whose left
// edge they are, even when (x - lo)/width rounds across the edge.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace frap::metrics {

class Histogram {
 public:
  // Buckets partition [lo, hi) evenly. Requires hi > lo and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  // Inline: this sits on per-decision observability hot paths where an
  // out-of-line call is a measurable fraction of the budget.
  void add(double x) {
    if (std::isnan(x)) {
      // static_cast<size_t> of NaN is undefined behavior; count the reject
      // so a poisoned input stream is visible instead of silently vanishing.
      ++nan_rejected_;
      return;
    }
    if (std::isfinite(x)) {
      add_finite(x);
      return;
    }
    // +/-infinity clamps into the edge bucket but never enters sum_.
    ++counts_[x < 0 ? 0 : counts_.size() - 1];
    ++total_;
  }

  // add() for callers that guarantee a FINITE x by construction (e.g. a
  // difference of two values already checked finite, or a converted
  // integer). Skips the NaN/infinity classification branches, which are a
  // measurable slice of the per-decision observability budget.
  void add_finite(double x) {
    std::size_t i;
    if (x < lo_) {
      i = 0;
    } else if (x >= hi_) {
      i = counts_.size() - 1;
    } else {
      i = static_cast<std::size_t>((x - lo_) * inv_width_);
      if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge case at hi_
      // (x - lo_) * inv_width_ can round across an exact bucket edge in
      // either direction (e.g. (0.3 - 0)/0.1 -> 2.999...). Snap against the
      // same expressions bucket_lo()/bucket_hi() use so x always lands in
      // the bucket satisfying lo(i) <= x < hi(i).
      if (i > 0 && x < lo_ + width_ * static_cast<double>(i)) {
        --i;
      } else if (i + 1 < counts_.size() &&
                 x >= lo_ + width_ * static_cast<double>(i + 1)) {
        ++i;
      }
    }
    ++counts_[i];
    ++total_;
    sum_ += x;
  }

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }
  // NaN inputs handed to add(): counted here, never bucketed.
  std::uint64_t nan_rejected() const { return nan_rejected_; }
  // Sum of the FINITE samples added (infinities are bucketed but would
  // poison the sum, so they are excluded here; exporters pair this with
  // total() for Prometheus `_sum`/`_count`).
  double sum() const { return sum_; }

  // Left / right edge of bucket i.
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  // Smallest value v such that at least q (in [0,1]) of the mass lies in
  // buckets whose right edge is <= v. Approximate (bucket resolution).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  // 1/width_, so add() multiplies instead of paying a hardware divide per
  // sample; the edge-snap in add() absorbs the (identical-class) rounding.
  double inv_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_rejected_ = 0;
  double sum_ = 0;
};

}  // namespace frap::metrics
