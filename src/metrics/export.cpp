#include "metrics/export.h"

namespace frap::metrics {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv(const util::Table& table, std::ostream& os) {
  auto emit_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit_row(table.header());
  for (std::size_t r = 0; r < table.rows(); ++r) emit_row(table.row(r));
}

void write_csv(const TimeSeries& series, std::ostream& os) {
  os << "time,value\n";
  for (const auto& s : series.samples()) {
    os << s.time << ',' << s.value << '\n';
  }
}

void write_csv(const Histogram& histogram, std::ostream& os) {
  os << "bucket_lo,bucket_hi,count\n";
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    os << histogram.bucket_lo(i) << ',' << histogram.bucket_hi(i) << ','
       << histogram.bucket(i) << '\n';
  }
}

}  // namespace frap::metrics
