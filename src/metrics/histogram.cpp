#include "metrics/histogram.h"

#include <cmath>

#include "util/check.h"

namespace frap::metrics {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      inv_width_(1.0 / width_), counts_(buckets, 0) {
  FRAP_EXPECTS(hi > lo);
  FRAP_EXPECTS(buckets >= 1);
}

double Histogram::bucket_lo(std::size_t i) const {
  FRAP_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  FRAP_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  FRAP_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return bucket_lo(i) + width_;
  }
  return hi_;
}

}  // namespace frap::metrics
