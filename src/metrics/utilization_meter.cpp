#include "metrics/utilization_meter.h"

#include <algorithm>

#include "util/check.h"

namespace frap::metrics {

void UtilizationMeter::set_busy(Time t) {
  FRAP_EXPECTS(!busy_);
  FRAP_EXPECTS(intervals_.empty() || t >= intervals_.back().end);
  busy_ = true;
  busy_since_ = t;
}

void UtilizationMeter::set_idle(Time t) {
  FRAP_EXPECTS(busy_);
  FRAP_EXPECTS(t >= busy_since_);
  intervals_.push_back(Interval{busy_since_, t});
  busy_ = false;
}

Duration UtilizationMeter::busy_time(Time from, Time to) const {
  FRAP_EXPECTS(to >= from);
  Duration total = 0;
  for (const auto& iv : intervals_) {
    const Time b = std::max(iv.begin, from);
    const Time e = std::min(iv.end, to);
    if (e > b) total += e - b;
  }
  if (busy_) {
    const Time b = std::max(busy_since_, from);
    if (to > b) total += to - b;
  }
  return total;
}

double UtilizationMeter::utilization(Time from, Time to) const {
  FRAP_EXPECTS(to > from);
  return busy_time(from, to) / (to - from);
}

}  // namespace frap::metrics
