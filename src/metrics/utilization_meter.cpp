#include "metrics/utilization_meter.h"

#include <algorithm>

#include "util/check.h"

namespace frap::metrics {

void UtilizationMeter::set_busy(Time t) {
  FRAP_EXPECTS(!busy_);
  FRAP_EXPECTS(intervals_.empty() || t >= intervals_.back().end);
  busy_ = true;
  busy_since_ = t;
}

void UtilizationMeter::set_idle(Time t) {
  FRAP_EXPECTS(busy_);
  FRAP_EXPECTS(t >= busy_since_);
  const Duration prev = intervals_.empty() ? 0 : intervals_.back().cum;
  intervals_.push_back(Interval{busy_since_, t, prev + (t - busy_since_)});
  busy_ = false;
}

Duration UtilizationMeter::busy_time(Time from, Time to) const {
  FRAP_EXPECTS(to >= from);
  Duration total = 0;
  // Intervals are sorted and non-overlapping, so only the first and last
  // interval of the window can straddle its edges; everything between is
  // fully inside and comes out of the cumulative sums in O(1).
  const auto lo = std::partition_point(
      intervals_.begin(), intervals_.end(),
      [&](const Interval& iv) { return iv.end <= from; });
  const auto hi = std::partition_point(
      lo, intervals_.end(), [&](const Interval& iv) { return iv.begin < to; });
  if (lo != hi) {
    const auto last = hi - 1;
    const Duration before_lo = lo == intervals_.begin() ? 0 : (lo - 1)->cum;
    total = last->cum - before_lo;
    // Clamp the straddling edges (a single interval may straddle both).
    if (lo->begin < from) total -= from - lo->begin;
    if (last->end > to) total -= last->end - to;
  }
  if (busy_) {
    const Time b = std::max(busy_since_, from);
    if (to > b) total += to - b;
  }
  return total;
}

double UtilizationMeter::utilization(Time from, Time to) const {
  FRAP_EXPECTS(to > from);
  return busy_time(from, to) / (to - from);
}

}  // namespace frap::metrics
