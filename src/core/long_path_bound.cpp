#include "core/long_path_bound.h"

#include <algorithm>
#include <cmath>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

LongPathEvaluator::LongPathEvaluator(std::vector<double> deadline_ceiling,
                                     std::vector<double> beta,
                                     double stage_cap)
    : ceiling_(std::move(deadline_ceiling)),
      beta_(std::move(beta)),
      stage_cap_(stage_cap) {
  FRAP_EXPECTS(!ceiling_.empty());
  for (double c : ceiling_) FRAP_EXPECTS(c > 0 && std::isfinite(c));
  FRAP_EXPECTS(beta_.empty() || beta_.size() == ceiling_.size());
  for (double b : beta_) FRAP_EXPECTS(b >= 0);
  FRAP_EXPECTS(stage_cap_ > 0);
}

bool LongPathEvaluator::respects_ceilings(const GraphTaskSpec& spec) const {
  for (const auto& n : spec.nodes) {
    if (n.resource >= ceiling_.size()) return false;
    if (spec.deadline > ceiling_[n.resource]) return false;
  }
  return true;
}

double LongPathEvaluator::weight_of(std::size_t k, double f_term,
                                    Duration deadline,
                                    double inv_deadline) const {
  FRAP_EXPECTS(k < ceiling_.size());
  // Static ceiling contract: Theorem 1's D_max role is only played by D̂_k
  // if no task with a larger deadline can ever interfere at k.
  FRAP_EXPECTS(deadline <= ceiling_[k]);
  // Victim guard (see the ctor comment): an f-term above the per-stage cap
  // would break the state envelope earlier admits relied on, so the weight
  // saturates and the path value rejects through admits_lhs.
  if (f_term > stage_cap_) return util::kInf;
  const double beta = beta_.empty() ? 0.0 : beta_[k];
  return f_term * (ceiling_[k] * inv_deadline) + beta;
}

// frap:contract(hotpath) -- profile dot products over cached shape data;
// the DP gray band lives in longest_path_weight (scratch reused, warm after
// the first fallback on a shape of this size).
double LongPathEvaluator::path_value(const TaskGraphShape& shape,
                                     std::span<const double> w_local) {
  double kept = 0;
  for (std::size_t p = 0; p < shape.num_profiles(); ++p) {
    double v = 0;
    for (const auto& e : shape.profile(p)) {
      v += static_cast<double>(e.mult) * w_local[e.local];
    }
    kept = std::max(kept, v);
  }
  if (shape.profiles_complete()) return kept;

  // Capped profile set: the envelope upper-bounds every dropped path.
  double env = 0;
  for (const auto& e : shape.envelope()) {
    env += static_cast<double>(e.mult) * w_local[e.local];
  }
  const double upper = std::max(kept, env);
  // Admitting on the upper bound is sound and agrees with the exact test
  // (true value <= upper <= budget). Rejecting on the kept value is sound
  // and agrees too (true value >= kept > budget).
  if (FeasibleRegion::admits_lhs(upper, kDelayBudget)) return upper;
  if (!FeasibleRegion::admits_lhs(kept, kDelayBudget)) return kept;
  // Gray band: the exact DP settles it.
  ++dp_fallbacks_;
  const auto touched = shape.touched_resources();
  if (w_resource_.size() < ceiling_.size()) w_resource_.resize(ceiling_.size());
  for (std::size_t t = 0; t < touched.size(); ++t) {
    w_resource_[touched[t]] = w_local[t];  // stale untouched entries unread
  }
  return shape.longest_path_weight(w_resource_, dp_dist_);
}

LongPathEvaluator::Eval LongPathEvaluator::evaluate(
    const GraphTaskSpec& spec, const SyntheticUtilizationTracker& tracker) {
  const TaskGraphShape* shape = spec.shape;
  FRAP_EXPECTS(shape != nullptr);
  FRAP_EXPECTS(spec.deadline > 0);
  FRAP_ASSERT(shape->layout_matches(spec));
  const double inv_d = util::safe_inv(spec.deadline);
  const auto touched = shape->touched_resources();
  const auto compute = shape->resource_compute();
  const std::size_t t_count = touched.size();
  if (w_before_.size() < t_count) {
    w_before_.resize(t_count);
    w_with_.resize(t_count);
  }
  for (std::size_t t = 0; t < t_count; ++t) {
    const std::size_t k = touched[t];
    w_before_[t] = weight_of(k, tracker.stage_lhs_term(k), spec.deadline, inv_d);
    const double u_new = tracker.utilization(k) + compute[t] * inv_d;
    w_with_[t] = u_new >= 1.0
                     ? util::kInf
                     : weight_of(k, stage_delay_factor(u_new),
                                 spec.deadline, inv_d);
  }
  Eval e;
  e.lhs_before = path_value(*shape, {w_before_.data(), t_count});
  e.lhs_with_task = path_value(*shape, {w_with_.data(), t_count});
  e.admitted = FeasibleRegion::admits_lhs(e.lhs_with_task, kDelayBudget);
#ifndef NDEBUG
  {
    // Recompute-from-snapshot cross-check, mirroring the tracker's own
    // incremental-LHS verification (docs/incremental_lhs.md). Bit-exact:
    // the tracker's cached f-term IS stage_delay_factor(utilization(k)),
    // and lhs_from_snapshot runs the identical profile logic.
    if (dbg_u_.size() != tracker.num_stages()) {
      dbg_u_.resize(tracker.num_stages());
    }
    std::span<double> u(dbg_u_);
    tracker.utilizations(u);
    const double before = lhs_from_snapshot(spec, u);
    for (std::size_t t = 0; t < t_count; ++t) {
      u[touched[t]] += compute[t] * inv_d;
    }
    const double with_task = lhs_from_snapshot(spec, u);
    FRAP_ASSERT(before == e.lhs_before ||
                (std::isinf(before) && std::isinf(e.lhs_before)));
    FRAP_ASSERT(with_task == e.lhs_with_task ||
                (std::isinf(with_task) && std::isinf(e.lhs_with_task)));
  }
#endif
  return e;
}

double LongPathEvaluator::lhs_from_snapshot(
    const GraphTaskSpec& spec, std::span<const double> utilizations) {
  FRAP_EXPECTS(spec.deadline > 0);
  const double inv_d = util::safe_inv(spec.deadline);
  if (spec.shape != nullptr) {
    const TaskGraphShape& shape = *spec.shape;
    FRAP_ASSERT(shape.layout_matches(spec));
    const auto touched = shape.touched_resources();
    const std::size_t t_count = touched.size();
    if (w_with_.size() < t_count) w_with_.resize(t_count);
    for (std::size_t t = 0; t < t_count; ++t) {
      const std::size_t k = touched[t];
      FRAP_EXPECTS(k < utilizations.size());
      w_with_[t] = utilizations[k] >= 1.0
                       ? util::kInf
                       : weight_of(k, stage_delay_factor(utilizations[k]),
                                   spec.deadline, inv_d);
    }
    return path_value(shape, {w_with_.data(), t_count});
  }
  return exact_lhs_from_snapshot(spec, utilizations);
}

double LongPathEvaluator::exact_lhs_from_snapshot(
    const GraphTaskSpec& spec, std::span<const double> utilizations) {
  FRAP_EXPECTS(spec.deadline > 0);
  const double inv_d = util::safe_inv(spec.deadline);
  std::vector<double> w(spec.nodes.size());
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const std::size_t k = spec.nodes[i].resource;
    FRAP_EXPECTS(k < utilizations.size());
    if (utilizations[k] >= 1.0) return util::kInf;
    w[i] = weight_of(k, stage_delay_factor(utilizations[k]),
                     spec.deadline, inv_d);
  }
  return spec.critical_path(w);
}

}  // namespace frap::core
