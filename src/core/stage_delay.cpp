#include "core/stage_delay.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace frap::core {

double stage_delay_factor_inverse(double y) {
  FRAP_EXPECTS(y >= 0);
  // Solve U(1 - U/2) = y(1 - U):  U^2/2 - (1 + y) U + y = 0
  //   => U = (1 + y) - sqrt((1 + y)^2 - 2y) = 1 + y - sqrt(1 + y^2).
  const double u = 1.0 + y - std::sqrt(1.0 + y * y);
  FRAP_ENSURES(u >= 0 && u < 1.0);
  return u;
}

double stage_delay_factor_derivative(double u) {
  FRAP_EXPECTS(u >= 0 && u < 1.0);
  // f(U) = (U - U^2/2)/(1 - U); quotient rule:
  // f'(U) = [(1 - U)(1 - U) + (U - U^2/2)] / (1 - U)^2
  //       = [1 - 2U + U^2 + U - U^2/2] / (1 - U)^2
  //       = [1 - U + U^2/2] / (1 - U)^2.
  const double denom = (1.0 - u) * (1.0 - u);
  return (1.0 - u + u * u / 2.0) / denom;
}

double uniprocessor_bound() { return 2.0 - std::sqrt(2.0); }

double balanced_stage_bound(std::size_t n) {
  FRAP_EXPECTS(n >= 1);
  return stage_delay_factor_inverse(1.0 / static_cast<double>(n));
}

Duration stage_delay_bound(double u, Duration d_max) {
  FRAP_EXPECTS(d_max >= 0);
  return stage_delay_factor(u) * d_max;
}

}  // namespace frap::core
