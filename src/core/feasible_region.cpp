#include "core/feasible_region.h"

#include <cmath>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

FeasibleRegion::FeasibleRegion(std::size_t num_stages, double alpha,
                               std::vector<double> beta)
    : num_stages_(num_stages), alpha_(alpha), beta_(std::move(beta)) {
  FRAP_EXPECTS(num_stages_ >= 1);
  FRAP_EXPECTS(alpha_ > 0 && alpha_ <= 1.0);
  FRAP_EXPECTS(beta_.size() == num_stages_);
  double beta_sum = 0;
  for (double b : beta_) {
    FRAP_EXPECTS(b >= 0);
    beta_sum += b;
  }
  FRAP_EXPECTS(beta_sum < 1.0);  // otherwise the region is empty
  bound_ = alpha_ * (1.0 - beta_sum);
  // frap:contract(rounds: conservative-for=admit) -- the admit predicate
  // compares an UP-rounded lhs against this DOWN-rounded bound.
  qbound_floor_ = fixed::quantize_down(bound_);
  // frap:contract(rounds: conservative-for=reject) -- the reject predicate
  // needs the lhs floor to beat an UP-rounded bound before it is certain.
  qbound_ceil_ = fixed::quantize_up(bound_);
}

FeasibleRegion FeasibleRegion::deadline_monotonic(std::size_t num_stages) {
  return FeasibleRegion(num_stages, 1.0, std::vector<double>(num_stages, 0));
}

FeasibleRegion FeasibleRegion::with_alpha(std::size_t num_stages,
                                          double alpha) {
  return FeasibleRegion(num_stages, alpha,
                        std::vector<double>(num_stages, 0));
}

FeasibleRegion FeasibleRegion::with_blocking(
    double alpha, std::vector<double> beta_per_stage) {
  const std::size_t n = beta_per_stage.size();
  return FeasibleRegion(n, alpha, std::move(beta_per_stage));
}

double FeasibleRegion::lhs(std::span<const double> utilizations) const {
  FRAP_EXPECTS(utilizations.size() == num_stages_);
  double sum = 0;
  for (double u : utilizations) {
    if (u >= 1.0) return util::kInf;
    sum += stage_delay_factor(u);
  }
  return sum;
}

double FeasibleRegion::delta_lhs(std::size_t stage, double u_old,
                                 double u_new) const {
  FRAP_EXPECTS(stage < num_stages_);
  FRAP_EXPECTS(u_old >= 0 && u_new >= 0);
  const bool sat_old = u_old >= 1.0;
  const bool sat_new = u_new >= 1.0;
  if (sat_old || sat_new) {
    if (sat_old && sat_new) return 0.0;
    return sat_new ? util::kInf : -util::kInf;
  }
  return stage_delay_factor(u_new) - stage_delay_factor(u_old);
}

bool FeasibleRegion::contains(std::span<const double> utilizations) const {
  return admits(lhs(utilizations));
}

double FeasibleRegion::margin(std::span<const double> utilizations) const {
  // lhs() is +infinity for saturated input, making the margin -infinity —
  // well-defined, never NaN (bound() is always finite).
  return bound() - lhs(utilizations);
}

double FeasibleRegion::boundary_u2(double u1) const {
  FRAP_EXPECTS(num_stages_ == 2);
  FRAP_EXPECTS(u1 >= 0);
  if (u1 >= 1.0) return 0.0;  // saturated stage 1: nothing left for stage 2
  const double remaining = bound() - stage_delay_factor(u1);
  if (remaining <= 0) return 0.0;
  return stage_delay_factor_inverse(remaining);
}

double FeasibleRegion::balanced_cap() const {
  return stage_delay_factor_inverse(bound() /
                                    static_cast<double>(num_stages_));
}

double FeasibleRegion::stage_headroom(std::span<const double> utilizations,
                                      std::size_t stage) const {
  FRAP_EXPECTS(utilizations.size() == num_stages_);
  FRAP_EXPECTS(stage < num_stages_);
  // Saturated target stage: already outside any feasible point, and the
  // cap arithmetic below would compare against f_inv values < 1 anyway.
  if (utilizations[stage] >= 1.0) return 0.0;
  double others = 0;
  for (std::size_t j = 0; j < num_stages_; ++j) {
    if (j == stage) continue;
    if (utilizations[j] >= 1.0) return 0.0;
    others += stage_delay_factor(utilizations[j]);
  }
  const double budget = bound() - others;
  if (budget <= 0) return 0.0;
  const double cap = stage_delay_factor_inverse(budget);
  return cap > utilizations[stage] ? cap - utilizations[stage] : 0.0;
}

}  // namespace frap::core
