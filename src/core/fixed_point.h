// 32.32 unsigned fixed-point quantization of region-LHS values.
//
// The lock-free admission fast path (service/atomic_admission.h) keeps each
// shard's region LHS in a single 64-bit atomic. Doubles cannot be CAS-summed
// associatively, so LHS quantities are quantized to integer multiples of
// 2^-32 ("quanta") with a rounding direction chosen per use so every
// rounding error is CONSERVATIVE:
//
//   * an arriving task's LHS delta is rounded UP   (quantize_up),
//   * the committed-state LHS floor   is rounded DOWN (quantize_down),
//   * the region bound gets BOTH forms (FeasibleRegion::quantized_bound_*):
//     the admit test compares against the floor, the reject test against
//     the ceiling.
//
// With those directions, integer comparisons on quanta can only ever be
// MORE pessimistic than the exact double test — an atomic admit implies the
// exact `FeasibleRegion::admits_lhs` would also admit, and an atomic reject
// implies it would also reject (docs/admission_service.md derives both).
//
// Values at or above 2^30 (far outside any region bound, which is <= 1)
// saturate to kSaturated instead of overflowing; +infinity (a saturated
// stage) maps there too. Saturating addition keeps reservation sums from
// wrapping no matter how many concurrent reservations pile up.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace frap::core::fixed {

// Quanta per unit of LHS: 2^32 (32 fractional bits).
inline constexpr int kFracBits = 32;
inline constexpr double kScale = 4294967296.0;  // 2^32
inline constexpr double kResolution = 1.0 / kScale;

// Saturation value: 2^62 quanta = 2^30 units. Headroom below 2^64 lets
// add_sat sum ~4 saturated operands before the uint64 could wrap, far more
// than any reachable reservation pile-up.
inline constexpr std::uint64_t kSaturated = std::uint64_t{1} << 62;

// Largest double that still quantizes without saturating.
inline constexpr double kSaturationThreshold = 1073741824.0;  // 2^30

// Rounds x >= 0 UP to the next quantum (over-estimate: admit deltas).
inline std::uint64_t quantize_up(double x) {
  FRAP_EXPECTS(x >= 0);
  if (!(x < kSaturationThreshold)) return kSaturated;  // also catches +inf
  return static_cast<std::uint64_t>(std::ceil(x * kScale));
}

// Rounds x >= 0 DOWN to the previous quantum (under-estimate: state floors
// and reject deltas).
inline std::uint64_t quantize_down(double x) {
  FRAP_EXPECTS(x >= 0);
  if (!(x < kSaturationThreshold)) return kSaturated;  // also catches +inf
  return static_cast<std::uint64_t>(std::floor(x * kScale));
}

// Exact value of q quanta as a double (every uint64 below kSaturated has
// < 2^53 significant bits only up to 2^53 quanta; the LHS range used by the
// admission path stays far below that).
inline double to_double(std::uint64_t q) { return static_cast<double>(q) * kResolution; }

// a + b, clamped at kSaturated (never wraps).
inline std::uint64_t add_sat(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return (s < a || s > kSaturated) ? kSaturated : s;
}

}  // namespace frap::core::fixed
