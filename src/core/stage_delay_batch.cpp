#include "core/stage_delay_batch.h"

#include "core/stage_delay.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FRAP_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define FRAP_HAVE_AVX2_KERNEL 0
#endif

namespace frap::core {

namespace {

// Dispatch toggle (test/bench seam; see header for the thread-safety note).
bool g_simd_enabled = true;

#if FRAP_HAVE_AVX2_KERNEL

// Four lanes of the scalar kernel per iteration, same op order per lane:
//   t = u/2; a = 1 - t; b = u*a; d = 1 - u; r = b/d
// then +inf blended into lanes with u >= 1. Each step is one IEEE double
// operation; there is no mul-add pair, so even an FMA-happy compiler has
// nothing to contract — the lanes are bit-identical to the scalar path.
__attribute__((target("avx2"))) void batch_avx2(const double* u, double* out,
                                                std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d inf = _mm256_set1_pd(__builtin_inf());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(u + i);
    const __m256d t = _mm256_div_pd(v, two);
    const __m256d a = _mm256_sub_pd(one, t);
    const __m256d b = _mm256_mul_pd(v, a);
    const __m256d d = _mm256_sub_pd(one, v);
    const __m256d r = _mm256_div_pd(b, d);
    // u >= 1: the scalar kernel returns +inf before dividing; here the
    // division runs (possibly producing inf/garbage in those lanes, which
    // is fine — SSE/AVX arithmetic never traps by default) and the blend
    // overrides the lane.
    const __m256d sat = _mm256_cmp_pd(v, one, _CMP_GE_OQ);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(r, inf, sat));
  }
  for (; i < n; ++i) out[i] = stage_delay_factor(u[i]);
}

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // FRAP_HAVE_AVX2_KERNEL

}  // namespace

bool batch_simd_available() {
#if FRAP_HAVE_AVX2_KERNEL
  return cpu_has_avx2();
#else
  return false;
#endif
}

bool set_batch_simd_enabled(bool enabled) {
  const bool prev = g_simd_enabled;
  g_simd_enabled = enabled;
  return prev;
}

bool batch_simd_active() { return g_simd_enabled && batch_simd_available(); }

void batch_stage_delay_factors(const double* u, double* out, std::size_t n) {
#if FRAP_HAVE_AVX2_KERNEL
  if (g_simd_enabled && cpu_has_avx2()) {
    batch_avx2(u, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = stage_delay_factor(u[i]);
}

}  // namespace frap::core
