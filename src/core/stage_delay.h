// The stage-delay theorem (Theorem 1) and its delay function
//
//     f(U) = U (1 - U/2) / (1 - U),
//
// the normalized worst-case time a task spends on a stage whose maximum
// synthetic utilization is U (in units of D_max, the largest relative
// deadline of interfering higher-priority tasks): L_j <= f(U_j) * D_max.
//
// Useful identities implemented and unit-tested here:
//   * f is strictly increasing and convex on [0, 1), f(0) = 0, f -> inf as
//     U -> 1.
//   * f_inv(y) = 1 + y - sqrt(1 + y^2)   (closed-form inverse).
//   * The single-resource bound of Abdelzaher & Lu: f(U) <= 1  <=>
//     U <= f_inv(1) = 2 - sqrt(2) = 1/(1 + sqrt(1/2)) ~= 0.5858.
//   * Balanced N-stage per-stage cap: N f(U) <= 1  <=>
//     U <= f_inv(1/N) = 1 + 1/N - sqrt(1 + 1/N^2).
#pragma once

#include <cstddef>

#include "util/check.h"
#include "util/math.h"
#include "util/time.h"

namespace frap::core {

// f(U). Requires 0 <= U < 1; returns +infinity for U >= 1 (a saturated
// stage admits no delay bound), which lets region tests reject uniformly
// instead of every caller special-casing U = 1. Inline: this is the single
// arithmetic kernel of every admission test and region evaluation.
inline double stage_delay_factor(double u) {
  FRAP_EXPECTS(u >= 0);
  if (u >= 1.0) return util::kInf;
  // frap-lint: allow(unsafe-division) -- this IS the sanctioned f(U)
  // kernel; the u >= 1 guard above returns +inf before the denominator
  // can reach zero.
  return u * (1.0 - u / 2.0) / (1.0 - u);
}

// Closed-form inverse: the largest U with f(U) <= y. Requires y >= 0.
double stage_delay_factor_inverse(double y);

// First derivative f'(U) on [0, 1); used by surface tracing and tests.
double stage_delay_factor_derivative(double u);

// The uniprocessor aperiodic synthetic-utilization bound, f_inv(1) =
// 2 - sqrt(2) (equals 1/(1 + sqrt(1/2)) from the paper's Sec. 3.1).
double uniprocessor_bound();

// Per-stage cap when all N stages run equal synthetic utilization,
// f_inv(1/N). Requires n >= 1.
double balanced_stage_bound(std::size_t n);

// Theorem 1 applied: worst-case residence time of a task on a stage with
// synthetic-utilization bound `u`, given D_max of interfering tasks.
// Returns +infinity when u >= 1.
Duration stage_delay_bound(double u, Duration d_max);

}  // namespace frap::core
