#include "core/admission.h"

#include <algorithm>
#include <cmath>

#include "core/stage_delay.h"
#include "core/stage_delay_batch.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

namespace {

AdmissionDecision::Reason reject_reason(double lhs_with_task) {
  return std::isinf(lhs_with_task) ? AdmissionDecision::Reason::kStageSaturated
                                   : AdmissionDecision::Reason::kRegionFull;
}

}  // namespace

// ---------------------------------------------------------------- exact ---

AdmissionController::AdmissionController(sim::Simulator& sim,
                                         SyntheticUtilizationTracker& tracker,
                                         FeasibleRegion region)
    : sim_(sim), tracker_(tracker), region_(std::move(region)) {
  FRAP_EXPECTS(tracker_.num_stages() == region_.num_stages());
  scratch_.resize(region_.num_stages());
  commit_stages_.reserve(region_.num_stages());
  commit_values_.reserve(region_.num_stages());
}

void AdmissionController::set_approximate_means(
    std::vector<Duration> mean_compute) {
  FRAP_EXPECTS(mean_compute.size() == region_.num_stages());
  for (Duration c : mean_compute) FRAP_EXPECTS(c >= 0);
  mean_compute_ = std::move(mean_compute);
}

void AdmissionController::set_contribution_scale(double scale) {
  FRAP_EXPECTS(scale > 0 && std::isfinite(scale));
  contribution_scale_ = scale;
}

std::vector<double> AdmissionController::contributions_for(
    const TaskSpec& spec) const {
  FRAP_EXPECTS(spec.valid());
  FRAP_EXPECTS(spec.num_stages() == region_.num_stages());
  std::vector<double> c;
  if (mean_compute_.empty()) {
    c = spec.contributions();
  } else {
    c.reserve(mean_compute_.size());
    for (Duration m : mean_compute_)
      c.push_back(util::safe_div(m, spec.deadline));
  }
  if (!util::almost_equal(contribution_scale_, 1.0)) {
    for (double& x : c) x *= contribution_scale_;
  }
  return c;
}

// frap:contract(hotpath)
double AdmissionController::incremental_lhs_with(
    const TaskSpec& spec, double lhs_before,
    std::uint16_t* touched_out) const {
  const double inv_d = util::safe_inv(spec.deadline);
  const std::size_t n = region_.num_stages();
  double delta = 0;
  std::uint16_t touched = 0;
  bool saturated = false;
  for (std::size_t j = 0; j < n; ++j) {
    const double c = contribution(spec, j, inv_d);
    if (c <= 0) continue;  // sparse task: untouched stage, no delta
    ++touched;
    if (saturated) continue;  // only the touched count still matters
    const double u_new = tracker_.utilization(j) + c;
    if (u_new >= 1.0) {  // the task saturates stage j
      if (touched_out == nullptr) return util::kInf;
      saturated = true;  // keep scanning so the count covers every stage
      continue;
    }
    delta += stage_delay_factor(u_new) - tracker_.stage_lhs_term(j);
  }
  if (touched_out != nullptr) *touched_out = touched;
  if (saturated) return util::kInf;
  // lhs_before is +infinity while some stage is already saturated; adding a
  // finite delta keeps it +infinity, as the full evaluation would.
  return lhs_before + delta;
}

// frap:contract(hotpath) -- push_back into vectors reserved to capacity
// (reserve_tracked_capacity); the operator-new hook test keeps it honest.
void AdmissionController::commit(const TaskSpec& spec,
                                 Time absolute_deadline) {
  const double inv_d = util::safe_inv(spec.deadline);
  // Collect the touched (stage, value) pairs in ascending stage order and
  // hand them to the sparse add: identical contribution values in the
  // identical order as the dense walk, minus the tracker's re-scan.
  commit_stages_.clear();
  commit_values_.clear();
  for (std::size_t j = 0; j < region_.num_stages(); ++j) {
    const double c = contribution(spec, j, inv_d);
    if (c <= 0) continue;
    commit_stages_.push_back(static_cast<std::uint32_t>(j));
    commit_values_.push_back(c);
  }
  tracker_.add_sparse(spec.id, commit_stages_.data(), commit_values_.data(),
                      static_cast<std::uint32_t>(commit_stages_.size()),
                      absolute_deadline);
}

void AdmissionController::record_audit(const TaskSpec& spec,
                                       const AdmissionDecision& d) {
  if (audit_ != nullptr) {
    audit_->record(AuditRecord{sim_.now(), spec.id, d.admitted, d.lhs_before,
                               d.lhs_with_task, region_.bound()});
  }
}

std::uint16_t AdmissionController::touched_stages(const TaskSpec& spec) const {
  std::uint16_t k = 0;
  for (std::size_t j = 0; j < region_.num_stages(); ++j) {
    const Duration c =
        mean_compute_.empty() ? spec.stages[j].compute : mean_compute_[j];
    if (c > 0) ++k;
  }
  return k;
}

bool AdmissionController::test(const TaskSpec& spec) const {
  FRAP_EXPECTS(spec.deadline > 0);
  FRAP_EXPECTS(spec.num_stages() == region_.num_stages());
  return region_.admits(incremental_lhs_with(spec, tracker_.cached_lhs()));
}

// frap:contract(hotpath)
AdmissionDecision AdmissionController::try_admit(const TaskSpec& spec,
                                                 Time now) {
  return try_admit_tagged(spec, now, AdmissionDecision::Reason::kAdmitted);
}

// frap:contract(hotpath)
AdmissionDecision AdmissionController::try_admit_tagged(
    const TaskSpec& spec, Time now, AdmissionDecision::Reason admit_reason) {
  ++attempts_;
  const std::uint64_t t0 = sink_ != nullptr ? sink_->begin_decision() : 0;
  // Admission reads only deadline and per-stage computes; the full
  // spec.valid() walk (segment sums) is the runtime's precondition and too
  // expensive for the attempt hot path.
  FRAP_EXPECTS(spec.deadline > 0);
  FRAP_EXPECTS(spec.num_stages() == region_.num_stages());

  AdmissionDecision d;
  d.arrival = now;
  d.decided_at = sim_.now();
  d.bound = region_.bound();
  d.lhs_before = tracker_.cached_lhs();
  std::uint16_t touched = 0;
  d.lhs_with_task = incremental_lhs_with(
      spec, d.lhs_before, sink_ != nullptr ? &touched : nullptr);
  d.admitted = region_.admits(d.lhs_with_task);
  d.reason = d.admitted ? admit_reason : reject_reason(d.lhs_with_task);

  if (d.admitted) {
    ++admitted_;
    commit(spec, now + spec.deadline);
  }
  record_audit(spec, d);
  if (sink_ != nullptr) sink_->record(d, spec.id, touched, t0);
  return d;
}

// ---------------------------------------------------------------- batch ---

BatchAdmissionController::BatchAdmissionController(AdmissionController& inner)
    : inner_(inner) {
  const std::size_t n = inner_.tracker().num_stages();
  u_.resize(n);
  f_.resize(n);
  c_.resize(n);
  u_with_.resize(n);
  f_with_.resize(n);
}

const std::vector<AdmissionDecision>& BatchAdmissionController::try_admit_burst(
    std::span<const TaskSpec> specs) {
  ++bursts_;
  SyntheticUtilizationTracker& tracker = inner_.tracker_;
  const FeasibleRegion& region = inner_.region_;
  const std::size_t n = region.num_stages();
  const Time now = inner_.sim_.now();

  // One shared snapshot for the whole burst.
  for (std::size_t j = 0; j < n; ++j) {
    u_[j] = tracker.utilization(j);
    f_[j] = tracker.stage_lhs_term(j);
  }
  double lhs = tracker.cached_lhs();

  decisions_.clear();
  for (const TaskSpec& spec : specs) {
    ++inner_.attempts_;
    obs::DecisionSink* sink = inner_.sink_;
    const std::uint64_t t0 = sink != nullptr ? sink->begin_decision() : 0;
    FRAP_EXPECTS(spec.deadline > 0);
    FRAP_EXPECTS(spec.num_stages() == n);
    const double inv_d = util::safe_inv(spec.deadline);

    AdmissionDecision d;
    d.arrival = now;
    d.decided_at = now;
    d.bound = region.bound();
    d.lhs_before = lhs;
    double delta = 0;
    bool saturates = false;
    bool decided = false;
    // Pipelines shorter than two vector blocks can't pay for the dense
    // evaluation + density scan even when fully touched; skip straight to
    // the fused scalar loop there.
    if (batch_simd_active() && n >= 8) {
      // SIMD path: evaluate f over the whole candidate vector in one call,
      // then accumulate the touched-stage deltas in the same ascending
      // order as the scalar loop. The kernel's bit-identity contract
      // (core/stage_delay_batch.h) makes the decision — and the LHS the
      // decision record carries — independent of the dispatch outcome.
      //
      // Density gate: the kernel evaluates every lane while the scalar
      // loop only evaluates touched stages, so dense evaluation only pays
      // when the task touches at least half the pipeline. For sparser
      // tasks fall through to the scalar loop (same result, bit-identical
      // by the kernel contract — only the instruction mix changes). The
      // count scan is store-free and multiply-free (contribution() is the
      // base compute scaled by two positive factors, so its sign is the
      // base's sign) so the sparse route keeps the fused scalar loop below
      // at full speed.
      const bool mean_mode = !inner_.mean_compute_.empty();
      std::size_t touched = 0;
      for (std::size_t j = 0; j < n; ++j) {
        const double base =
            mean_mode ? inner_.mean_compute_[j] : spec.stages[j].compute;
        if (base > 0) ++touched;
      }
      if (2 * touched >= n) {
        decided = true;
        for (std::size_t j = 0; j < n; ++j) {
          c_[j] = inner_.contribution(spec, j, inv_d);
          u_with_[j] = u_[j] + c_[j];
        }
        batch_stage_delay_factors(u_with_.data(), f_with_.data(), n);
        for (std::size_t j = 0; j < n; ++j) {
          if (c_[j] <= 0) continue;
          if (u_with_[j] >= 1.0) {
            saturates = true;
            break;
          }
          delta += f_with_[j] - f_[j];
        }
      }
    }
    if (!decided) {
      for (std::size_t j = 0; j < n; ++j) {
        const double c = inner_.contribution(spec, j, inv_d);
        if (c <= 0) continue;
        const double u_new = u_[j] + c;
        if (u_new >= 1.0) {
          saturates = true;
          break;
        }
        delta += stage_delay_factor(u_new) - f_[j];
      }
    }
    d.lhs_with_task = saturates ? util::kInf : lhs + delta;
    d.admitted = region.admits(d.lhs_with_task);
    d.reason = d.admitted ? AdmissionDecision::Reason::kAdmitted
                          : reject_reason(d.lhs_with_task);

    if (d.admitted) {
      ++inner_.admitted_;
      inner_.commit(spec, now + spec.deadline);
      // Mirror the commit into the snapshot from the tracker itself, so the
      // burst's working state is bit-identical to what sequential fast-path
      // admissions would observe.
      for (std::size_t j = 0; j < n; ++j) {
        if (inner_.contribution(spec, j, inv_d) <= 0) continue;
        u_[j] = tracker.utilization(j);
        f_[j] = tracker.stage_lhs_term(j);
      }
      lhs = tracker.cached_lhs();
    }
    inner_.record_audit(spec, d);
    if (sink != nullptr)
      sink->record(d, spec.id, inner_.touched_stages(spec), t0);
    decisions_.push_back(d);
  }
  return decisions_;
}

// -------------------------------------------------------------- waiting ---

WaitingAdmissionController::WaitingAdmissionController(
    sim::Simulator& sim, AdmissionController& inner, Duration patience)
    : sim_(sim), inner_(inner), patience_(patience) {
  FRAP_EXPECTS(patience >= 0);
}

void WaitingAdmissionController::attach() {
  inner_.tracker().set_on_decrease([this] { retry(); });
}

void WaitingAdmissionController::decide(const Pending& p,
                                        const AdmissionDecision& d) {
  if (decide_) decide_(p.spec, d);
}

AdmissionDecision WaitingAdmissionController::timed_out_decision(
    const Pending& p) const {
  // Final rejection after waiting: report the LHS pair of the last failed
  // test so the callback still sees how far outside the region the task was.
  AdmissionDecision d = p.last_test;
  d.admitted = false;
  d.reason = AdmissionDecision::Reason::kTimedOut;
  d.arrival = p.arrival;
  d.decided_at = sim_.now();
  return d;
}

void WaitingAdmissionController::submit(const TaskSpec& spec) {
  const Time arrival = sim_.now();
  Pending p{spec, arrival, AdmissionDecision{}, sim::kInvalidEventId};
  // FIFO: while earlier arrivals wait, newcomers queue behind them even if
  // they would fit — otherwise small tasks would starve large waiting ones.
  if (queue_.empty()) {
    const auto d = inner_.try_admit(spec, arrival);
    if (d.admitted) {
      decide(p, d);
      return;
    }
    p.last_test = d;
  } else {
    p.last_test.bound = inner_.region().bound();
    p.last_test.lhs_before = inner_.tracker().cached_lhs();
    p.last_test.lhs_with_task = p.last_test.lhs_before;
  }
  if (patience_ <= 0) {
    decide(p, timed_out_decision(p));
    return;
  }
  const std::uint64_t id = spec.id;
  p.timeout_event = sim_.after(patience_, [this, id] { timeout(id); });
  queue_.push_back(std::move(p));
}

void WaitingAdmissionController::retry() {
  // A decrease can fire while a retry scan is already running: an admitted
  // task's decision callback may cascade into expiries, idle resets, or
  // removals (e.g. the runtime starting the task synchronously completes a
  // zero-length subtask). Re-entering the scan here would double-process
  // the queue front, but silently dropping the notification could strand a
  // waiter that now fits until the NEXT decrease — so remember it and
  // re-arm the scan once the active pass finishes.
  if (retrying_) {
    rearm_ = true;
    return;
  }
  retrying_ = true;
  do {
    rearm_ = false;
    while (!queue_.empty()) {
      Pending& p = queue_.front();
      const auto d = inner_.try_admit(p.spec, p.arrival);
      if (!d.admitted) {
        p.last_test = d;
        break;  // FIFO: later tasks wait their turn
      }
      sim_.cancel(p.timeout_event);
      Pending done = std::move(p);
      queue_.pop_front();
      decide(done, d);
    }
    if (rearm_) ++rearmed_retries_;
  } while (rearm_);
  retrying_ = false;
}

void WaitingAdmissionController::timeout(std::uint64_t task_id) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Pending& p) { return p.spec.id == task_id; });
  if (it == queue_.end()) return;  // already admitted
  Pending done = std::move(*it);
  queue_.erase(it);
  ++timed_out_;
  decide(done, timed_out_decision(done));
}

// ------------------------------------------------------------- shedding ---

SheddingAdmissionController::SheddingAdmissionController(
    AdmissionController& inner, ShedCallback shed)
    : inner_(inner), shed_(std::move(shed)) {
  FRAP_EXPECTS(shed_ != nullptr);
}

AdmissionDecision SheddingAdmissionController::try_admit(const TaskSpec& spec,
                                                         Time now) {
  AdmissionDecision d = inner_.try_admit(spec, now);
  if (!d.admitted) {
    // Shed in increasing importance, but never a task at least as important
    // as the newcomer.
    auto it = admitted_by_importance_.begin();
    while (it != admitted_by_importance_.end() &&
           it->first < spec.importance) {
      const std::uint64_t victim = it->second;
      if (filter_ && !filter_(victim)) {
        // Not sheddable (e.g. already executing) — and it never will be,
        // so drop it from the candidate pool.
        it = admitted_by_importance_.erase(it);
        continue;
      }
      it = admitted_by_importance_.erase(it);
      if (!inner_.tracker().is_live(victim)) continue;  // already gone
      inner_.tracker().remove_task(victim);
      shed_(victim);
      ++tasks_shed_;
      d = inner_.try_admit(spec, now);
      if (d.admitted) {
        d.reason = AdmissionDecision::Reason::kShed;
        break;
      }
    }
  }
  if (d.admitted) {
    admitted_by_importance_.emplace(spec.importance, spec.id);
  }
  return d;
}

// ---------------------------------------------------------------- graph ---

GraphAdmissionController::GraphAdmissionController(
    sim::Simulator& sim, SyntheticUtilizationTracker& tracker,
    GraphRegionEvaluator evaluator)
    : sim_(sim), tracker_(tracker), evaluator_(std::move(evaluator)) {
  scratch_u_.resize(tracker_.num_stages());
}

GraphAdmissionController::GraphAdmissionController(
    sim::Simulator& sim, SyntheticUtilizationTracker& tracker,
    LongPathEvaluator evaluator)
    : sim_(sim), tracker_(tracker), long_path_(std::move(evaluator)) {
  FRAP_EXPECTS(long_path_->num_resources() == tracker_.num_stages());
  scratch_u_.resize(tracker_.num_stages());
  commit_stages_.reserve(tracker_.num_stages());
  commit_values_.reserve(tracker_.num_stages());
}

// frap:contract(hotpath) -- the per-attempt cost is O(touched resources +
// cached profile entries), independent of graph size; push_back only into
// vectors reserved to capacity at construction.
AdmissionDecision GraphAdmissionController::try_admit_interned(
    const GraphTaskSpec& spec, Time now) {
  const std::uint64_t t0 = sink_ != nullptr ? sink_->begin_decision() : 0;
  // The full spec.valid() walk is the canonicalization precondition
  // (TaskGraphShapeRegistry interns only valid specs); the attempt hot path
  // trusts the interned layout and debug-asserts it inside evaluate().
  FRAP_EXPECTS(spec.deadline > 0);
  const LongPathEvaluator::Eval e = long_path_->evaluate(spec, tracker_);

  AdmissionDecision d;
  d.arrival = now;
  d.decided_at = sim_.now();
  d.bound = LongPathEvaluator::kDelayBudget;
  d.lhs_before = e.lhs_before;
  d.lhs_with_task = e.lhs_with_task;
  d.admitted = e.admitted;
  d.reason = d.admitted ? AdmissionDecision::Reason::kAdmitted
                        : reject_reason(d.lhs_with_task);

  const auto touched = spec.shape->touched_resources();
  const auto compute = spec.shape->resource_compute();
  if (d.admitted) {
    ++admitted_;
    // Sparse commit over the shape's touched-resource layout: ascending
    // stage order by construction, identical contribution values to the
    // ones the evaluation tested.
    const double inv_d = util::safe_inv(spec.deadline);
    commit_stages_.clear();
    commit_values_.clear();
    for (std::size_t t = 0; t < touched.size(); ++t) {
      const double c = compute[t] * inv_d;
      if (c <= 0) continue;  // zero-demand nodes contribute nothing
      commit_stages_.push_back(touched[t]);
      commit_values_.push_back(c);
    }
    tracker_.add_sparse(spec.id, commit_stages_.data(), commit_values_.data(),
                        static_cast<std::uint32_t>(commit_stages_.size()),
                        now + spec.deadline);
  }
  if (sink_ != nullptr) {
    sink_->record(d, spec.id, static_cast<std::uint16_t>(touched.size()), t0);
  }
  return d;
}

AdmissionDecision GraphAdmissionController::try_admit(const GraphTaskSpec& spec,
                                                      Time now) {
  ++attempts_;
  ++evaluations_;
  if (long_path_ && spec.shape != nullptr) {
    return try_admit_interned(spec, now);
  }
  const std::uint64_t t0 = sink_ != nullptr ? sink_->begin_decision() : 0;
  FRAP_EXPECTS(spec.valid(tracker_.num_stages()));
  const auto add = spec.resource_contributions(tracker_.num_stages());
  std::span<double> u{scratch_u_};
  tracker_.utilizations(u);

  AdmissionDecision d;
  d.arrival = now;
  d.decided_at = sim_.now();
  if (long_path_) {
    d.bound = LongPathEvaluator::kDelayBudget;
    d.lhs_before = long_path_->lhs_from_snapshot(spec, u);
    for (std::size_t j = 0; j < u.size(); ++j) u[j] += add[j];
    d.lhs_with_task = long_path_->lhs_from_snapshot(spec, u);
  } else {
    d.bound = evaluator_->bound(spec);
    d.lhs_before = evaluator_->lhs(spec, u);
    for (std::size_t j = 0; j < u.size(); ++j) u[j] += add[j];
    d.lhs_with_task = evaluator_->lhs(spec, u);
  }
  d.admitted = FeasibleRegion::admits_lhs(d.lhs_with_task, d.bound);
  d.reason = d.admitted ? AdmissionDecision::Reason::kAdmitted
                        : reject_reason(d.lhs_with_task);

  if (d.admitted) {
    ++admitted_;
    tracker_.add(spec.id, add, now + spec.deadline);
  }
  if (sink_ != nullptr) {
    std::uint16_t touched = 0;
    for (double a : add) {
      if (a > 0) ++touched;
    }
    sink_->record(d, spec.id, touched, t0);
  }
  return d;
}

AdmissionDecision GraphAdmissionController::try_admit(const TaskSpec& spec,
                                                      Time now) {
  return try_admit(GraphTaskSpec::from_pipeline(spec), now);
}

// ------------------------------------------------------- waiting (graph) ---

WaitingGraphAdmissionController::WaitingGraphAdmissionController(
    sim::Simulator& sim, GraphAdmissionController& inner, Duration patience)
    : sim_(sim), inner_(inner), tracker_(inner.tracker()),
      patience_(patience) {
  FRAP_EXPECTS(patience >= 0);
}

void WaitingGraphAdmissionController::attach() {
  tracker_.set_on_decrease([this] { on_decrease(); });
}

void WaitingGraphAdmissionController::snapshot_gate(Pending& p) const {
  if (p.touched.empty()) {
    if (p.spec.shape != nullptr) {
      const auto touched = p.spec.shape->touched_resources();
      p.touched.assign(touched.begin(), touched.end());
    } else {
      for (const auto& n : p.spec.nodes) {
        p.touched.push_back(static_cast<std::uint32_t>(n.resource));
      }
      std::sort(p.touched.begin(), p.touched.end());
      p.touched.erase(std::unique(p.touched.begin(), p.touched.end()),
                      p.touched.end());
    }
  }
  p.gate_f.resize(p.touched.size());
  for (std::size_t i = 0; i < p.touched.size(); ++i) {
    p.gate_f[i] = tracker_.stage_lhs_term(p.touched[i]);
  }
}

bool WaitingGraphAdmissionController::gate_changed(const Pending& p) const {
  for (std::size_t i = 0; i < p.touched.size(); ++i) {
    // Bitwise compare, deliberately: f is strictly increasing in U, so an
    // identical f-term means an identical touched utilization and the failed
    // test would repeat verbatim. Any real change — in either direction —
    // re-evaluates, so the gate can only skip provably-futile retries.
    // frap-lint: allow(float-equality) -- exactness is the point here.
    if (p.gate_f[i] != tracker_.stage_lhs_term(p.touched[i])) return true;
  }
  return false;
}

void WaitingGraphAdmissionController::decide(const Pending& p,
                                             const AdmissionDecision& d) {
  if (decide_) decide_(p.spec, d);
}

AdmissionDecision WaitingGraphAdmissionController::timed_out_decision(
    const Pending& p) const {
  AdmissionDecision d = p.last_test;
  d.admitted = false;
  d.reason = AdmissionDecision::Reason::kTimedOut;
  d.arrival = p.arrival;
  d.decided_at = sim_.now();
  return d;
}

void WaitingGraphAdmissionController::submit(const GraphTaskSpec& spec) {
  const Time arrival = sim_.now();
  Pending p{spec, arrival, AdmissionDecision{}, sim::kInvalidEventId, {}, {}};
  // FIFO: while earlier arrivals wait, newcomers queue behind them even if
  // they would fit — otherwise small tasks would starve large waiting ones.
  if (queue_.empty()) {
    const auto d = inner_.try_admit(spec, arrival);
    if (d.admitted) {
      decide(p, d);
      return;
    }
    p.last_test = d;
  } else {
    p.last_test.bound = LongPathEvaluator::kDelayBudget;
    p.last_test.lhs_before = tracker_.cached_lhs();
    p.last_test.lhs_with_task = p.last_test.lhs_before;
  }
  if (patience_ <= 0) {
    decide(p, timed_out_decision(p));
    return;
  }
  snapshot_gate(p);
  const std::uint64_t id = spec.id;
  p.timeout_event = sim_.after(patience_, [this, id] { timeout(id); });
  queue_.push_back(std::move(p));
}

void WaitingGraphAdmissionController::on_decrease() {
  if (queue_.empty()) return;
  // Headroom gate: only the FIFO front is eligible for retry, so if none of
  // ITS touched f-terms moved since its last failed test, no evaluation can
  // change outcome — skip without invoking the evaluator at all.
  if (!retrying_ && !gate_changed(queue_.front())) {
    ++gate_skips_;
    return;
  }
  retry();
}

void WaitingGraphAdmissionController::retry() {
  // Same re-arm discipline as WaitingAdmissionController::retry: a decide
  // callback can cascade into further decreases mid-scan.
  if (retrying_) {
    rearm_ = true;
    return;
  }
  retrying_ = true;
  do {
    rearm_ = false;
    while (!queue_.empty()) {
      Pending& p = queue_.front();
      const auto d = inner_.try_admit(p.spec, p.arrival);
      if (!d.admitted) {
        p.last_test = d;
        snapshot_gate(p);
        break;  // FIFO: later tasks wait their turn
      }
      sim_.cancel(p.timeout_event);
      Pending done = std::move(p);
      queue_.pop_front();
      decide(done, d);
    }
    if (rearm_) ++rearmed_retries_;
  } while (rearm_);
  retrying_ = false;
}

void WaitingGraphAdmissionController::timeout(std::uint64_t task_id) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Pending& p) { return p.spec.id == task_id; });
  if (it == queue_.end()) return;  // already admitted
  const bool was_front = it == queue_.begin();
  Pending done = std::move(*it);
  queue_.erase(it);
  ++timed_out_;
  decide(done, timed_out_decision(done));
  // A timeout promotes the next waiter to the front without any decrease
  // event; it has never been tested against the current state, so retry now
  // (which also snapshots its gate on failure) rather than stranding it
  // until the next touched-f change.
  if (was_front && !queue_.empty()) retry();
}

}  // namespace frap::core
