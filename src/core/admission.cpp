#include "core/admission.h"

#include <algorithm>

#include "util/check.h"

namespace frap::core {

// ---------------------------------------------------------------- exact ---

AdmissionController::AdmissionController(sim::Simulator& sim,
                                         SyntheticUtilizationTracker& tracker,
                                         FeasibleRegion region)
    : sim_(sim), tracker_(tracker), region_(std::move(region)) {
  FRAP_EXPECTS(tracker_.num_stages() == region_.num_stages());
}

void AdmissionController::set_approximate_means(
    std::vector<Duration> mean_compute) {
  FRAP_EXPECTS(mean_compute.size() == region_.num_stages());
  for (Duration c : mean_compute) FRAP_EXPECTS(c >= 0);
  mean_compute_ = std::move(mean_compute);
}

std::vector<double> AdmissionController::contributions_for(
    const TaskSpec& spec) const {
  FRAP_EXPECTS(spec.valid());
  FRAP_EXPECTS(spec.num_stages() == region_.num_stages());
  if (mean_compute_.empty()) return spec.contributions();
  std::vector<double> c;
  c.reserve(mean_compute_.size());
  for (Duration m : mean_compute_) c.push_back(m / spec.deadline);
  return c;
}

bool AdmissionController::test(const TaskSpec& spec) const {
  const auto add = contributions_for(spec);
  auto u = tracker_.utilizations();
  for (std::size_t j = 0; j < u.size(); ++j) u[j] += add[j];
  return region_.contains(u);
}

AdmissionDecision AdmissionController::try_admit(const TaskSpec& spec) {
  return try_admit(spec, sim_.now() + spec.deadline);
}

AdmissionDecision AdmissionController::try_admit(const TaskSpec& spec,
                                                 Time absolute_deadline) {
  ++attempts_;
  const auto add = contributions_for(spec);
  auto u = tracker_.utilizations();

  AdmissionDecision d;
  d.lhs_before = region_.lhs(u);
  for (std::size_t j = 0; j < u.size(); ++j) u[j] += add[j];
  d.lhs_with_task = region_.lhs(u);
  d.admitted = d.lhs_with_task <= region_.bound();

  if (d.admitted) {
    ++admitted_;
    tracker_.add(spec.id, add, absolute_deadline);
  }
  if (audit_ != nullptr) {
    audit_->record(AuditRecord{sim_.now(), spec.id, d.admitted,
                               d.lhs_before, d.lhs_with_task,
                               region_.bound()});
  }
  return d;
}

// -------------------------------------------------------------- waiting ---

WaitingAdmissionController::WaitingAdmissionController(
    sim::Simulator& sim, AdmissionController& inner, Duration patience)
    : sim_(sim), inner_(inner), patience_(patience) {
  FRAP_EXPECTS(patience >= 0);
}

void WaitingAdmissionController::attach() {
  inner_.tracker().set_on_decrease([this] { retry(); });
}

void WaitingAdmissionController::decide(const Pending& p, bool admitted) {
  if (decide_) decide_(p.spec, admitted, p.arrival, sim_.now());
}

void WaitingAdmissionController::submit(const TaskSpec& spec) {
  const Time arrival = sim_.now();
  // FIFO: while earlier arrivals wait, newcomers queue behind them even if
  // they would fit — otherwise small tasks would starve large waiting ones.
  if (queue_.empty()) {
    const auto d = inner_.try_admit(spec, arrival + spec.deadline);
    if (d.admitted) {
      if (decide_) decide_(spec, true, arrival, arrival);
      return;
    }
  }
  if (patience_ <= 0) {
    if (decide_) decide_(spec, false, arrival, arrival);
    return;
  }
  const std::uint64_t id = spec.id;
  Pending p{spec, arrival, sim::kInvalidEventId};
  p.timeout_event = sim_.after(patience_, [this, id] { timeout(id); });
  queue_.push_back(std::move(p));
}

void WaitingAdmissionController::retry() {
  // The inner try_admit commits to the tracker, which may fire another
  // decrease notification synchronously (it does not, but guard anyway);
  // suppress re-entrant retries.
  if (retrying_) return;
  retrying_ = true;
  while (!queue_.empty()) {
    Pending& p = queue_.front();
    const auto d = inner_.try_admit(p.spec, p.arrival + p.spec.deadline);
    if (!d.admitted) break;  // FIFO: later tasks wait their turn
    sim_.cancel(p.timeout_event);
    Pending done = std::move(p);
    queue_.pop_front();
    decide(done, true);
  }
  retrying_ = false;
}

void WaitingAdmissionController::timeout(std::uint64_t task_id) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Pending& p) { return p.spec.id == task_id; });
  if (it == queue_.end()) return;  // already admitted
  Pending done = std::move(*it);
  queue_.erase(it);
  ++timed_out_;
  decide(done, false);
}

// ------------------------------------------------------------- shedding ---

SheddingAdmissionController::SheddingAdmissionController(
    AdmissionController& inner, ShedCallback shed)
    : inner_(inner), shed_(std::move(shed)) {
  FRAP_EXPECTS(shed_ != nullptr);
}

AdmissionDecision SheddingAdmissionController::try_admit(
    const TaskSpec& spec) {
  AdmissionDecision d = inner_.try_admit(spec);
  if (!d.admitted) {
    // Shed in increasing importance, but never a task at least as important
    // as the newcomer.
    auto it = admitted_by_importance_.begin();
    while (it != admitted_by_importance_.end() &&
           it->first < spec.importance) {
      const std::uint64_t victim = it->second;
      if (filter_ && !filter_(victim)) {
        // Not sheddable (e.g. already executing) — and it never will be,
        // so drop it from the candidate pool.
        it = admitted_by_importance_.erase(it);
        continue;
      }
      it = admitted_by_importance_.erase(it);
      if (!inner_.tracker().is_live(victim)) continue;  // already gone
      inner_.tracker().remove_task(victim);
      shed_(victim);
      ++tasks_shed_;
      d = inner_.try_admit(spec);
      if (d.admitted) break;
    }
  }
  if (d.admitted) {
    admitted_by_importance_.emplace(spec.importance, spec.id);
  }
  return d;
}

// ---------------------------------------------------------------- graph ---

GraphAdmissionController::GraphAdmissionController(
    sim::Simulator& sim, SyntheticUtilizationTracker& tracker,
    GraphRegionEvaluator evaluator)
    : sim_(sim), tracker_(tracker), evaluator_(std::move(evaluator)) {}

AdmissionDecision GraphAdmissionController::try_admit(
    const GraphTaskSpec& spec) {
  ++attempts_;
  FRAP_EXPECTS(spec.valid(tracker_.num_stages()));
  const auto add = spec.resource_contributions(tracker_.num_stages());
  auto u = tracker_.utilizations();

  AdmissionDecision d;
  d.lhs_before = evaluator_.lhs(spec, u);
  for (std::size_t j = 0; j < u.size(); ++j) u[j] += add[j];
  d.lhs_with_task = evaluator_.lhs(spec, u);
  d.admitted = d.lhs_with_task <= evaluator_.bound(spec);

  if (d.admitted) {
    ++admitted_;
    tracker_.add(spec.id, add, sim_.now() + spec.deadline);
  }
  return d;
}

}  // namespace frap::core
