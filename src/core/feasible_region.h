// The multi-dimensional feasible region (Eqs. 1-3 / 12, 13, 15).
//
// For a resource pipeline of N stages with synthetic utilizations U_1..U_N,
// all end-to-end deadlines are met while
//
//     sum_j f(U_j)  <=  alpha * (1 - sum_j beta_j)
//
// where f is the stage-delay factor (stage_delay.h), alpha in (0,1] is the
// urgency-inversion parameter of the fixed-priority policy (1 for
// deadline-monotonic), and beta_j = max_i B_ij / D_i is the normalized
// worst-case PCP blocking at stage j (0 for independent tasks).
//
// The region is a convex body in [0,1)^N whose boundary surface passes
// through the uniprocessor bound 2 - sqrt(2) on each axis when alpha = 1 and
// beta = 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/fixed_point.h"

namespace frap::core {

class FeasibleRegion {
 public:
  // Independent tasks under deadline-monotonic scheduling on `num_stages`
  // stages: alpha = 1, beta = 0.
  static FeasibleRegion deadline_monotonic(std::size_t num_stages);

  // Arbitrary fixed-priority policy with urgency-inversion parameter alpha.
  static FeasibleRegion with_alpha(std::size_t num_stages, double alpha);

  // Full form with per-stage normalized blocking terms.
  static FeasibleRegion with_blocking(double alpha,
                                      std::vector<double> beta_per_stage);

  std::size_t num_stages() const { return num_stages_; }
  double alpha() const { return alpha_; }

  // Right-hand side of the region inequality: alpha * (1 - sum beta_j).
  // Precomputed at construction; O(1).
  [[nodiscard]] double bound() const { return bound_; }

  // THE admission comparison: a state whose LHS is `lhs` is feasible
  // against `bound` iff lhs <= bound, boundary ties included. This is the
  // single sanctioned spelling in the tree (frap-lint rule R2): every
  // decision path — admits(), contains(), the admission controllers, the
  // batch path, GraphRegionEvaluator, the adaptive-alpha controller —
  // funnels through it so no two paths can disagree on a tie.
  [[nodiscard]] static bool admits_lhs(double lhs, double bound) {
    return lhs <= bound;
  }

  // The predicate against this region's own bound().
  [[nodiscard]] bool admits(double lhs) const {
    return admits_lhs(lhs, bound_);
  }

  // --- quantized (32.32 fixed-point) surface for the lock-free path ------
  //
  // The atomic fast path (service/atomic_admission.h) works on quanta
  // (core/fixed_point.h). Both quantized predicates live HERE, next to
  // admits_lhs, for the same R2 reason: they are the only sanctioned
  // spellings of a quantized region comparison, and their rounding
  // directions make each one strictly conservative with respect to
  // admits_lhs:
  //
  //   * admits_quantized is STRICT (<, not <=) against the rounded-DOWN
  //     bound. The exact predicate admits boundary ties (lhs == bound), but
  //     a quantized tie cannot distinguish "exactly on the boundary" from
  //     "within one quantum above it", so ties are deliberately
  //     INCONCLUSIVE: the atomic path must defer them to the exact mutex
  //     path, never admit optimistically.
  //   * rejects_quantized is strict (>) against the rounded-UP bound: the
  //     caller's quanta under-estimate the exact LHS, so exceeding the
  //     ceiling proves the exact test would reject.
  //
  // A value that satisfies neither lies within the rounding slack of the
  // boundary (quantization_slack_quanta wide) and must be retried exactly.

  // Quanta the admit test compares against: bound() rounded DOWN.
  [[nodiscard]] std::uint64_t quantized_bound_floor() const {
    return qbound_floor_;
  }
  // Quanta the reject test compares against: bound() rounded UP.
  [[nodiscard]] std::uint64_t quantized_bound_ceil() const {
    return qbound_ceil_;
  }
  // Width of the inconclusive band between the two quantized bounds.
  [[nodiscard]] std::uint64_t quantization_slack_quanta() const {
    return qbound_ceil_ - qbound_floor_;
  }

  // Would an over-estimated state of `qlhs_with` quanta PROVABLY pass the
  // exact test against a bound whose floor is `qbound_floor`?
  [[nodiscard]] static bool admits_quantized(std::uint64_t qlhs_with,
                                             std::uint64_t qbound_floor) {
    return qlhs_with < qbound_floor;
  }

  // Would an under-estimated state of `qlhs_with` quanta PROVABLY fail the
  // exact test against a bound whose ceiling is `qbound_ceil`?
  [[nodiscard]] static bool rejects_quantized(std::uint64_t qlhs_with,
                                              std::uint64_t qbound_ceil) {
    return qlhs_with > qbound_ceil;
  }

  // Left-hand side: sum_j f(U_j). Returns +infinity if any U_j >= 1.
  // utilizations.size() must equal num_stages().
  [[nodiscard]] double lhs(std::span<const double> utilizations) const;

  // Change in the LHS when stage `stage` moves from u_old to u_new with all
  // other stages fixed: f(u_new) - f(u_old). Saturation-safe: +infinity when
  // only u_new is saturated (>= 1), -infinity when only u_old is, and 0 when
  // both are (never inf - inf = NaN). The incremental admission fast path
  // sums these deltas over the stages a task touches.
  [[nodiscard]] double delta_lhs(std::size_t stage, double u_old,
                               double u_new) const;

  // True when the utilization vector lies inside (or on) the region.
  [[nodiscard]] bool contains(std::span<const double> utilizations) const;

  // Slack to the boundary: bound() - lhs(); negative outside the region and
  // -infinity when any stage is saturated (never NaN).
  [[nodiscard]] double margin(std::span<const double> utilizations) const;

  // Boundary tracing for surface plots (N = 2): given U_1, the largest U_2
  // keeping the system feasible (0 if U_1 alone exhausts the bound or is
  // saturated, u1 >= 1).
  [[nodiscard]] double boundary_u2(double u1) const;

  // The per-stage cap when all stages run equal utilization:
  // f_inv(bound()/N).
  [[nodiscard]] double balanced_cap() const;

  // How much additional synthetic utilization stage `stage` could absorb
  // with every other stage held at its current value: the largest d >= 0
  // such that the vector with U_stage + d stays feasible (0 when already
  // at or outside the boundary, including saturated inputs).
  [[nodiscard]] double stage_headroom(std::span<const double> utilizations,
                                      std::size_t stage) const;

 private:
  FeasibleRegion(std::size_t num_stages, double alpha,
                 std::vector<double> beta);

  std::size_t num_stages_;
  double alpha_;
  std::vector<double> beta_;
  double bound_;  // alpha * (1 - sum beta_j), cached
  // bound_ quantized both ways (core/fixed_point.h), cached at construction
  // so the lock-free path never re-quantizes.
  std::uint64_t qbound_floor_ = 0;
  std::uint64_t qbound_ceil_ = 0;
};

}  // namespace frap::core
