#include "core/synthetic_utilization.h"

#include <algorithm>
#include <cmath>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

SyntheticUtilizationTracker::SyntheticUtilizationTracker(
    sim::Simulator& sim, std::size_t num_stages)
    : sim_(sim), stage_(num_stages) {
  FRAP_EXPECTS(num_stages >= 1);
  scratch_stages_.reserve(num_stages);
  scratch_values_.reserve(num_stages);
}

void SyntheticUtilizationTracker::set_reservation(std::size_t stage,
                                                  double value) {
  FRAP_EXPECTS(stage < stage_.size());
  FRAP_EXPECTS(value >= 0 && value < 1.0);
  stage_[stage].reserved = value;
  refresh_stage_lhs(stage);
}

double SyntheticUtilizationTracker::reservation(std::size_t stage) const {
  FRAP_EXPECTS(stage < stage_.size());
  return stage_[stage].reserved;
}

std::vector<double> SyntheticUtilizationTracker::utilizations() const {
  std::vector<double> u;
  u.reserve(stage_.size());
  for (std::size_t j = 0; j < stage_.size(); ++j) u.push_back(utilization(j));
  return u;
}

void SyntheticUtilizationTracker::utilizations(std::span<double> out) const {
  FRAP_EXPECTS(out.size() == stage_.size());
  for (std::size_t j = 0; j < stage_.size(); ++j) out[j] = utilization(j);
}

void SyntheticUtilizationTracker::add(std::uint64_t task_id,
                                      std::span<const double> per_stage,
                                      Time absolute_deadline) {
  FRAP_EXPECTS(per_stage.size() == stage_.size());

  // Compact to touched (stage, value) pairs; add_sparse applies the stage
  // accounting in the same ascending order, bit-identical to the dense
  // per-stage walk this used to do inline.
  scratch_stages_.clear();
  scratch_values_.clear();
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    FRAP_EXPECTS(per_stage[j] >= 0);
    if (per_stage[j] == 0) continue;  // untouched stage: cache stays
    scratch_stages_.push_back(static_cast<std::uint32_t>(j));
    scratch_values_.push_back(per_stage[j]);
  }
  add_sparse(task_id, scratch_stages_.data(), scratch_values_.data(),
             static_cast<std::uint32_t>(scratch_stages_.size()),
             absolute_deadline);
}

void SyntheticUtilizationTracker::add_sparse(std::uint64_t task_id,
                                             const std::uint32_t* stages,
                                             const double* values,
                                             std::uint32_t count,
                                             Time absolute_deadline) {
  FRAP_EXPECTS(absolute_deadline >= sim_.now());
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t j = stages[i];
    FRAP_EXPECTS(j < stage_.size());
    FRAP_EXPECTS(values[i] > 0);
    stage_[j].dynamic += values[i];
    refresh_stage_lhs(j);
  }
  // Ascending-order validation happens in create(); id uniqueness is
  // enforced by insert(), whose probe walk asserts the key is absent —
  // a separate find() here would just pay the same probe twice.
  const TaskHandle h = store_.create(task_id, stages, values, count);
  store_.set_expiry(h, sim_.timer_at(absolute_deadline, this, h));
  id_map_.insert(task_id, TaskStore::index_of(h));
}

double SyntheticUtilizationTracker::strip_entry(TaskHandle h,
                                                std::uint32_t i) {
  const double c = store_.entry_value(h, i);
  if (c > 0) {
    const std::uint32_t stage = store_.entry_stage(h, i);
    stage_[stage].dynamic -= c;
    store_.set_entry_value(h, i, 0.0);
    refresh_stage_lhs(stage);
  }
  return c;
}

void SyntheticUtilizationTracker::on_timer(std::uint64_t payload) {
  // Expiry: the wheel only fires timers that were never cancelled, and
  // remove_task cancels eagerly, so the handle must still be live.
  const TaskHandle h = payload;
  FRAP_ASSERT(store_.live(h));
  bool decreased = false;
  store_.strip_entries(h, [&](std::uint32_t stage, double c) {
    stage_[stage].dynamic -= c;
    refresh_stage_lhs(stage);
    decreased = true;
  });
  id_map_.erase(store_.task_id(h));
  store_.destroy(h);
  if (decreased) notify_decrease();
}

void SyntheticUtilizationTracker::mark_departed(std::uint64_t task_id,
                                                std::size_t stage) {
  FRAP_EXPECTS(stage < stage_.size());
  const std::uint32_t idx = id_map_.find(task_id);
  if (idx == util::IdMap::kNotFound) return;  // already expired
  const TaskHandle h = store_.handle_at(idx);
  const std::uint32_t e =
      store_.find_entry(h, static_cast<std::uint32_t>(stage));
  // A departure at a stage the task never touched can never strip anything;
  // recording it would only grow the queue.
  if (e == TaskStore::kNoEntry) return;
  if (!store_.entry_departed(h, e)) {
    store_.set_entry_departed(h, e);
    stage_[stage].departed_queue.push_back(h);
  }
}

void SyntheticUtilizationTracker::on_stage_idle(std::size_t stage) {
  FRAP_EXPECTS(stage < stage_.size());
  if (!idle_reset_) {
    return;
  }
  bool decreased = false;
  // Remove contributions of all tasks that have departed this stage: they
  // cannot affect its future schedule (Sec. 4). Stale handles (the task
  // expired or was removed since departing) fail the generation check and
  // are skipped.
  for (TaskHandle h : stage_[stage].departed_queue) {
    if (!store_.live(h)) continue;  // expired in the meantime
    const std::uint32_t e =
        store_.find_entry(h, static_cast<std::uint32_t>(stage));
    FRAP_ASSERT(e != TaskStore::kNoEntry);
    if (strip_entry(h, e) > 0) decreased = true;
  }
  stage_[stage].departed_queue.clear();
  if (decreased) notify_decrease();
}

void SyntheticUtilizationTracker::remove_task(std::uint64_t task_id) {
  const std::uint32_t idx = id_map_.find(task_id);
  if (idx == util::IdMap::kNotFound) return;
  const TaskHandle h = store_.handle_at(idx);
  bool decreased = false;
  store_.strip_entries(h, [&](std::uint32_t stage, double c) {
    stage_[stage].dynamic -= c;
    refresh_stage_lhs(stage);
    decreased = true;
  });
  // Eager cancellation reclaims the wheel cell now instead of leaving a
  // dead entry parked until the deadline tick.
  (void)sim_.cancel_timer(store_.expiry(h));
  id_map_.erase(task_id);
  store_.destroy(h);
  if (decreased) notify_decrease();
}

void SyntheticUtilizationTracker::rescale_dynamic(double factor) {
  FRAP_EXPECTS(factor > 0 && std::isfinite(factor));
  if (util::almost_equal(factor, 1.0)) return;
  store_.for_each([&](TaskHandle h) {
    const std::uint32_t n = store_.touched(h);
    for (std::uint32_t i = 0; i < n; ++i) {
      store_.set_entry_value(h, i, store_.entry_value(h, i) * factor);
    }
  });
  for (StageState& s : stage_) s.dynamic *= factor;
  // One from-scratch pass refreshes every cached f-term coherently.
  rebuild_lhs_cache();
#ifndef NDEBUG
  verify_lhs_cache();
#endif
  if (factor < 1.0) notify_decrease();
}

void SyntheticUtilizationTracker::refresh_stage_lhs(std::size_t stage) {
  StageState& s = stage_[stage];
  const double f_new = stage_delay_factor(s.reserved + std::max(0.0, s.dynamic));
  if (std::isinf(s.f_term)) {
    --saturated_stages_;
  } else {
    finite_lhs_ -= s.f_term;
  }
  s.f_term = f_new;
  if (std::isinf(f_new)) {
    ++saturated_stages_;
  } else {
    finite_lhs_ += f_new;
  }
  // frap-lint: allow(rederived-admission) -- counter compare against the
  // cache-rebuild interval; no admission decision is derived here.
  if (++updates_since_rebuild_ >= kLhsRebuildInterval) rebuild_lhs_cache();
#ifndef NDEBUG
  verify_lhs_cache();
#endif
}

double SyntheticUtilizationTracker::rebuild_lhs_cache() {
  finite_lhs_ = 0;
  saturated_stages_ = 0;
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    stage_[j].f_term = stage_delay_factor(utilization(j));
    if (std::isinf(stage_[j].f_term)) {
      ++saturated_stages_;
    } else {
      finite_lhs_ += stage_[j].f_term;
    }
  }
  updates_since_rebuild_ = 0;
  cache_stats_.record_rebuild();
  return cached_lhs();
}

void SyntheticUtilizationTracker::verify_lhs_cache(double tolerance) {
  double recomputed = 0;
  bool saturated = false;
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    const double f = stage_delay_factor(utilization(j));
    if (std::isinf(f)) {
      saturated = true;
    } else {
      recomputed += f;
    }
  }
  const double cached = cached_lhs();
  const bool cached_saturated = std::isinf(cached);
  const double drift =
      (saturated || cached_saturated) ? 0.0 : std::fabs(cached - recomputed);
  cache_stats_.record_crosscheck(drift);
  FRAP_ASSERT(saturated == cached_saturated);
  FRAP_ASSERT(drift <= tolerance);
}

void SyntheticUtilizationTracker::notify_decrease() {
  if (on_decrease_) on_decrease_();
}

}  // namespace frap::core
