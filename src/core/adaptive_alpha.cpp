#include "core/adaptive_alpha.h"

#include "core/feasible_region.h"
#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

AdaptiveAlphaAdmissionController::AdaptiveAlphaAdmissionController(
    sim::Simulator& sim, SyntheticUtilizationTracker& tracker)
    : sim_(sim), tracker_(tracker) {
  scratch_add_.resize(tracker_.num_stages());
  scratch_u_.resize(tracker_.num_stages());
}

AdaptiveDecision AdaptiveAlphaAdmissionController::try_admit(
    const TaskSpec& spec, sched::PriorityValue priority) {
  ++attempts_;
  FRAP_EXPECTS(spec.valid());
  FRAP_EXPECTS(spec.num_stages() == tracker_.num_stages());

  const sched::TaskUrgency urgency{priority, spec.deadline};
  AdaptiveDecision d;
  d.alpha_used = estimator_.preview(urgency);

  // Hot-path snapshot into retained scratch buffers (no allocation).
  std::span<double> add{scratch_add_};
  for (std::size_t j = 0; j < add.size(); ++j) {
    add[j] = util::safe_div(spec.stages[j].compute, spec.deadline);
  }
  std::span<double> u{scratch_u_};
  tracker_.utilizations(u);
  double lhs = 0;
  for (std::size_t j = 0; j < u.size(); ++j) {
    const double uj = u[j] + add[j];
    if (uj >= 1.0) {
      lhs = util::kInf;
      break;
    }
    lhs += stage_delay_factor(uj);
  }
  d.lhs = lhs;
  d.admitted = FeasibleRegion::admits_lhs(lhs, d.alpha_used);

  if (d.admitted) {
    ++admitted_;
    estimator_.observe(urgency);
    tracker_.add(spec.id, add, sim_.now() + spec.deadline);
  }
  return d;
}

}  // namespace frap::core
