// Baseline schedulability tests the paper positions itself against.
//
//   * Liu & Layland's periodic bound n(2^{1/n} - 1) [13], the classic
//     comparison point for any utilization-bound result.
//   * The hyperbolic bound of Bini & Buttazzo [4]: a periodic task set is
//     RM-schedulable if prod(U_i + 1) <= 2 (less pessimistic than L&L).
//   * Per-stage deadline splitting: the "traditional" way to handle
//     pipelines that the introduction criticizes — give every task an
//     intermediate deadline D_i / N on each stage and run an independent
//     single-resource aperiodic admission test per stage (per-stage
//     synthetic utilization V_j = sum C_ij N / D_i, admit iff every
//     V_j <= 2 - sqrt(2)). Compared against the end-to-end region in
//     bench/ablation_deadline_split.
#pragma once

#include <cstddef>
#include <span>

#include "core/admission.h"
#include "core/synthetic_utilization.h"
#include "core/task.h"
#include "sim/simulator.h"

namespace frap::core {

// n (2^{1/n} - 1); n >= 1. Approaches ln 2 ~= 0.693.
double liu_layland_bound(std::size_t n);

// Liu & Layland test for a periodic set with utilizations u_i = C_i / T_i.
[[nodiscard]] bool liu_layland_schedulable(
    std::span<const double> task_utilizations);

// Hyperbolic bound test: prod(u_i + 1) <= 2.
[[nodiscard]] bool hyperbolic_schedulable(
    std::span<const double> task_utilizations);

// Admission control by intermediate per-stage deadlines. Maintains its own
// notion of per-stage synthetic utilization V_j with contributions
// C_ij / (D_i / N) and admits iff every stage independently satisfies the
// uniprocessor aperiodic bound. Deliberately pessimistic: used as the
// baseline to show the value of the end-to-end region.
class DeadlineSplitAdmissionController : public Admitter {
 public:
  DeadlineSplitAdmissionController(sim::Simulator& sim,
                                   SyntheticUtilizationTracker& tracker);

  // Admitter; the lhs/bound pair is reported scaled so that 1.0 = at the
  // per-stage uniprocessor bound (bound is therefore always 1.0 here).
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec,
                                            Time now) override;

  // Deprecated shim: forwards the simulator clock as the arrival instant.
  [[nodiscard]] AdmissionDecision try_admit(const TaskSpec& spec) {
    return try_admit(spec, sim_.now());
  }

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t admitted() const { return admitted_; }

  SyntheticUtilizationTracker& tracker() { return tracker_; }

 private:
  sim::Simulator& sim_;
  SyntheticUtilizationTracker& tracker_;
  std::vector<double> scratch_add_;  // reused contribution buffer
  std::vector<double> scratch_u_;    // reused utilization snapshot buffer
  std::uint64_t attempts_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace frap::core
