#include "core/reference_tracker.h"

#include <algorithm>
#include <cmath>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::testing {

ReferenceUtilizationTracker::ReferenceUtilizationTracker(
    sim::Simulator& sim, std::size_t num_stages, IdReuse id_reuse)
    : sim_(sim), stage_(num_stages), id_reuse_(id_reuse) {
  FRAP_EXPECTS(num_stages >= 1);
}

void ReferenceUtilizationTracker::set_reservation(std::size_t stage,
                                                  double value) {
  FRAP_EXPECTS(stage < stage_.size());
  FRAP_EXPECTS(value >= 0 && value < 1.0);
  stage_[stage].reserved = value;
  refresh_stage_lhs(stage);
}

double ReferenceUtilizationTracker::reservation(std::size_t stage) const {
  FRAP_EXPECTS(stage < stage_.size());
  return stage_[stage].reserved;
}

std::vector<double> ReferenceUtilizationTracker::utilizations() const {
  std::vector<double> u;
  u.reserve(stage_.size());
  for (std::size_t j = 0; j < stage_.size(); ++j) u.push_back(utilization(j));
  return u;
}

void ReferenceUtilizationTracker::add(std::uint64_t task_id,
                                      std::span<const double> per_stage,
                                      Time absolute_deadline) {
  FRAP_EXPECTS(per_stage.size() == stage_.size());
  FRAP_EXPECTS(absolute_deadline >= sim_.now());
  FRAP_EXPECTS(tasks_.find(task_id) == tasks_.end());

  TaskRecord rec;
  rec.contribution.assign(per_stage.begin(), per_stage.end());
  rec.departed.assign(stage_.size(), false);
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    FRAP_EXPECTS(rec.contribution[j] >= 0);
    if (rec.contribution[j] == 0) continue;  // untouched stage: cache stays
    stage_[j].dynamic += rec.contribution[j];
    refresh_stage_lhs(j);
  }
  rec.expiry_event =
      sim_.at(absolute_deadline, [this, task_id] { expire(task_id); });
  rec.epoch = next_epoch_++;
  tasks_.emplace(task_id, std::move(rec));
}

double ReferenceUtilizationTracker::strip_stage(TaskRecord& rec,
                                                std::size_t stage) {
  const double c = rec.contribution[stage];
  if (c > 0) {
    stage_[stage].dynamic -= c;
    rec.contribution[stage] = 0;
    refresh_stage_lhs(stage);
  }
  return c;
}

void ReferenceUtilizationTracker::expire(std::uint64_t task_id) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  bool decreased = false;
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    if (strip_stage(it->second, j) > 0) decreased = true;
  }
  tasks_.erase(it);
  if (decreased) notify_decrease();
}

void ReferenceUtilizationTracker::mark_departed(std::uint64_t task_id,
                                                std::size_t stage) {
  FRAP_EXPECTS(stage < stage_.size());
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;  // contribution already expired
  if (!it->second.departed[stage]) {
    it->second.departed[stage] = true;
    stage_[stage].departed_queue.push_back({task_id, it->second.epoch});
  }
}

void ReferenceUtilizationTracker::on_stage_idle(std::size_t stage) {
  FRAP_EXPECTS(stage < stage_.size());
  if (!idle_reset_) {
    return;
  }
  bool decreased = false;
  for (const QueueEntry& e : stage_[stage].departed_queue) {
    auto it = tasks_.find(e.id);
    if (it == tasks_.end()) continue;  // expired in the meantime
    // kFaithful reproduces the PR-1 aliasing defect: a stale entry whose id
    // was reused after remove_task strips the NEW task's contribution.
    // kCorrected drops entries from a different add() epoch instead.
    if (id_reuse_ == IdReuse::kCorrected && it->second.epoch != e.epoch) {
      continue;
    }
    if (strip_stage(it->second, stage) > 0) decreased = true;
  }
  stage_[stage].departed_queue.clear();
  if (decreased) notify_decrease();
}

void ReferenceUtilizationTracker::remove_task(std::uint64_t task_id) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  bool decreased = false;
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    if (strip_stage(it->second, j) > 0) decreased = true;
  }
  sim_.cancel(it->second.expiry_event);
  tasks_.erase(it);
  if (decreased) notify_decrease();
}

void ReferenceUtilizationTracker::rescale_dynamic(double factor) {
  FRAP_EXPECTS(factor > 0 && std::isfinite(factor));
  if (util::almost_equal(factor, 1.0)) return;
  for (auto& [id, rec] : tasks_) {
    for (double& c : rec.contribution) c *= factor;
  }
  for (StageState& s : stage_) s.dynamic *= factor;
  rebuild_lhs_cache();
#ifndef NDEBUG
  verify_lhs_cache();
#endif
  if (factor < 1.0) notify_decrease();
}

void ReferenceUtilizationTracker::refresh_stage_lhs(std::size_t stage) {
  StageState& s = stage_[stage];
  const double f_new =
      core::stage_delay_factor(s.reserved + std::max(0.0, s.dynamic));
  if (std::isinf(s.f_term)) {
    --saturated_stages_;
  } else {
    finite_lhs_ -= s.f_term;
  }
  s.f_term = f_new;
  if (std::isinf(f_new)) {
    ++saturated_stages_;
  } else {
    finite_lhs_ += f_new;
  }
  // frap-lint: allow(rederived-admission) -- counter compare against the
  // cache-rebuild interval; no admission decision is derived here.
  if (++updates_since_rebuild_ >= kLhsRebuildInterval) rebuild_lhs_cache();
#ifndef NDEBUG
  verify_lhs_cache();
#endif
}

double ReferenceUtilizationTracker::rebuild_lhs_cache() {
  finite_lhs_ = 0;
  saturated_stages_ = 0;
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    stage_[j].f_term = core::stage_delay_factor(utilization(j));
    if (std::isinf(stage_[j].f_term)) {
      ++saturated_stages_;
    } else {
      finite_lhs_ += stage_[j].f_term;
    }
  }
  updates_since_rebuild_ = 0;
  cache_stats_.record_rebuild();
  return cached_lhs();
}

void ReferenceUtilizationTracker::verify_lhs_cache(double tolerance) {
  double recomputed = 0;
  bool saturated = false;
  for (std::size_t j = 0; j < stage_.size(); ++j) {
    const double f = core::stage_delay_factor(utilization(j));
    if (std::isinf(f)) {
      saturated = true;
    } else {
      recomputed += f;
    }
  }
  const double cached = cached_lhs();
  const bool cached_saturated = std::isinf(cached);
  const double drift =
      (saturated || cached_saturated) ? 0.0 : std::fabs(cached - recomputed);
  cache_stats_.record_crosscheck(drift);
  FRAP_ASSERT(saturated == cached_saturated);
  FRAP_ASSERT(drift <= tolerance);
}

void ReferenceUtilizationTracker::notify_decrease() {
  if (on_decrease_) on_decrease_();
}

}  // namespace frap::testing
