#include "core/task_graph.h"

#include <algorithm>

#include "core/stage_delay.h"
#include "util/check.h"
#include "util/math.h"

namespace frap::core {

namespace {

// Kahn's algorithm; returns empty when a cycle exists (distinguishable from
// the empty graph by the caller).
std::vector<std::size_t> topo_sort(std::size_t n,
                                   const std::vector<GraphEdge>& edges) {
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> out(n);
  for (const auto& e : edges) {
    out[e.from].push_back(e.to);
    ++indegree[e.to];
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  // Pop smallest index first for deterministic order. A min-heap keeps the
  // whole sort O((V+E) log V); re-sorting `ready` on every pop degraded to
  // O(V^2 log V) on sparse 10k-node DAGs (bench/dag_admission).
  std::make_heap(ready.begin(), ready.end(), std::greater<>());
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>());
    const std::size_t v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (std::size_t w : out[v]) {
      if (--indegree[w] == 0) {
        ready.push_back(w);
        std::push_heap(ready.begin(), ready.end(), std::greater<>());
      }
    }
  }
  if (order.size() != n) order.clear();  // cycle
  return order;
}

}  // namespace

bool GraphTaskSpec::valid(std::size_t num_resources) const {
  if (deadline <= 0 || nodes.empty()) return false;
  for (const auto& n : nodes) {
    if (n.resource >= num_resources) return false;
    if (!n.demand.valid()) return false;
  }
  for (const auto& e : edges) {
    if (e.from >= nodes.size() || e.to >= nodes.size()) return false;
    if (e.from == e.to) return false;
  }
  return !topo_sort(nodes.size(), edges).empty();
}

std::vector<std::size_t> GraphTaskSpec::topological_order() const {
  auto order = topo_sort(nodes.size(), edges);
  FRAP_EXPECTS(!order.empty() || nodes.empty());
  return order;
}

std::vector<std::size_t> GraphTaskSpec::sources() const {
  std::vector<bool> has_pred(nodes.size(), false);
  for (const auto& e : edges) has_pred[e.to] = true;
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!has_pred[i]) result.push_back(i);
  }
  return result;
}

std::vector<std::size_t> GraphTaskSpec::sinks() const {
  std::vector<bool> has_succ(nodes.size(), false);
  for (const auto& e : edges) has_succ[e.from] = true;
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!has_succ[i]) result.push_back(i);
  }
  return result;
}

double GraphTaskSpec::critical_path(
    std::span<const double> node_weights) const {
  FRAP_EXPECTS(node_weights.size() == nodes.size());
  const auto order = topological_order();
  std::vector<std::vector<std::size_t>> in(nodes.size());
  for (const auto& e : edges) in[e.to].push_back(e.from);

  // dist[v] = max path weight ending at v (inclusive).
  std::vector<double> dist(nodes.size(), 0);
  double best = 0;
  for (std::size_t v : order) {
    double longest_pred = 0;
    for (std::size_t p : in[v]) longest_pred = std::max(longest_pred, dist[p]);
    dist[v] = longest_pred + node_weights[v];
    best = std::max(best, dist[v]);
  }
  return best;
}

std::vector<double> GraphTaskSpec::resource_contributions(
    std::size_t num_resources) const {
  FRAP_EXPECTS(deadline > 0);
  std::vector<double> c(num_resources, 0);
  for (const auto& n : nodes) {
    FRAP_EXPECTS(n.resource < num_resources);
    c[n.resource] += util::safe_div(n.demand.compute, deadline);
  }
  return c;
}

GraphTaskSpec GraphTaskSpec::from_pipeline(const TaskSpec& spec) {
  GraphTaskSpec g;
  g.id = spec.id;
  g.deadline = spec.deadline;
  g.importance = spec.importance;
  g.nodes.reserve(spec.stages.size());
  for (std::size_t j = 0; j < spec.stages.size(); ++j) {
    g.nodes.push_back(GraphNode{j, spec.stages[j]});
    if (j > 0) g.edges.push_back(GraphEdge{j - 1, j});
  }
  return g;
}

GraphRegionEvaluator::GraphRegionEvaluator(double alpha,
                                           std::vector<double> beta)
    : alpha_(alpha), beta_(std::move(beta)) {
  FRAP_EXPECTS(alpha_ > 0 && alpha_ <= 1.0);
  for (double b : beta_) FRAP_EXPECTS(b >= 0);
}

double GraphRegionEvaluator::lhs(const GraphTaskSpec& task,
                                 std::span<const double> utilizations) const {
  std::vector<double> w(task.nodes.size());
  for (std::size_t i = 0; i < task.nodes.size(); ++i) {
    const std::size_t r = task.nodes[i].resource;
    FRAP_EXPECTS(r < utilizations.size());
    if (utilizations[r] >= 1.0) return util::kInf;
    w[i] = stage_delay_factor(utilizations[r]);
  }
  return task.critical_path(w);
}

double GraphRegionEvaluator::bound(const GraphTaskSpec& task) const {
  if (beta_.empty()) return alpha_;
  std::vector<double> w(task.nodes.size());
  for (std::size_t i = 0; i < task.nodes.size(); ++i) {
    const std::size_t r = task.nodes[i].resource;
    w[i] = r < beta_.size() ? beta_[r] : 0.0;
  }
  const double blocking_path = task.critical_path(w);
  return alpha_ * (1.0 - blocking_path);
}

}  // namespace frap::core
