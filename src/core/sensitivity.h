// Sensitivity analysis over the feasible region.
//
// The region LHS is sum f(U_j); its gradient f'(U_j) = (1 - U + U^2/2) /
// (1 - U)^2 tells an operator where the region is being consumed fastest:
// the stage with the largest "pressure" is where shaving demand (or adding
// hardware) buys the most admission headroom per unit of synthetic
// utilization. Pure analysis — no simulator involvement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace frap::core {

// f'(U_j) per stage. Saturated stages (U >= 1) get +infinity.
std::vector<double> stage_pressures(std::span<const double> utilizations);

// Stage indices ordered by descending pressure (ties by lower index):
// element 0 is the stage where relief is most valuable.
std::vector<std::size_t> upgrade_priority(
    std::span<const double> utilizations);

// First-order estimate of the LHS change if stage `stage` shifted by
// `delta_u` (can be negative): f'(U_stage) * delta_u.
double lhs_delta_estimate(std::span<const double> utilizations,
                          std::size_t stage, double delta_u);

}  // namespace frap::core
