// Per-stage synthetic-utilization accounting (Sec. 2 and Sec. 4).
//
// U_j(t) = sum over current tasks of C_ij / D_i. The tracker maintains this
// quantity per stage with three mutations:
//   * add(): a task is admitted; its contribution joins every stage it
//     touches and an expiry event is scheduled at its absolute deadline.
//   * expiry: at A_i + D_i the contribution leaves S(t) automatically.
//   * idle reset (Sec. 4): when a stage goes idle, contributions of tasks
//     that already *departed* the stage (finished their subtask there) are
//     removed early — they can no longer affect that stage's schedule. This
//     is the key pessimism-reducing device of the paper's admission
//     controller and can be disabled for the ablation study (A1).
//
// Reservations (Sec. 5): each stage carries a floor U_j^res representing
// capacity set aside for critical tasks; the reported utilization never
// drops below the floor.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "util/time.h"

namespace frap::core {

class SyntheticUtilizationTracker {
 public:
  SyntheticUtilizationTracker(sim::Simulator& sim, std::size_t num_stages);

  std::size_t num_stages() const { return stage_.size(); }

  // Disables the idle-reset rule (ablation A1). Default: enabled.
  void set_idle_reset_enabled(bool enabled) { idle_reset_ = enabled; }

  // Sets the reserved floor for a stage (Sec. 5). The floor contributes to
  // utilization() immediately and permanently.
  void set_reservation(std::size_t stage, double value);
  double reservation(std::size_t stage) const;

  // Current synthetic utilization of one stage (includes the reserved
  // floor).
  double utilization(std::size_t stage) const;

  // Snapshot across stages, in stage order.
  std::vector<double> utilizations() const;

  // Registers an admitted task's contribution: per_stage[j] is C_ij / D_i
  // (zero entries are allowed and ignored). Expires automatically at
  // `absolute_deadline`. Task ids must be unique among live tasks.
  void add(std::uint64_t task_id, std::span<const double> per_stage,
           Time absolute_deadline);

  // Marks that the task finished its work on `stage` (subtask departure).
  // Safe to call for tasks the tracker no longer knows (already expired).
  void mark_departed(std::uint64_t task_id, std::size_t stage);

  // Signals that `stage` went idle: under the idle-reset rule all departed
  // contributions at that stage are removed early.
  void on_stage_idle(std::size_t stage);

  // Removes the task's remaining contributions everywhere (used by load
  // shedding and by aborted tasks). No-op for unknown ids.
  void remove_task(std::uint64_t task_id);

  // Callback fired after any utilization decrease (expiry, idle reset,
  // removal); waiting admission controllers retry from here.
  void set_on_decrease(std::function<void()> cb) {
    on_decrease_ = std::move(cb);
  }

  // Number of tasks with live (unexpired, unremoved) contributions.
  std::size_t live_tasks() const { return tasks_.size(); }

  // True while the task's contribution record exists (not yet expired or
  // removed).
  bool is_live(std::uint64_t task_id) const {
    return tasks_.find(task_id) != tasks_.end();
  }

 private:
  struct TaskRecord {
    std::vector<double> contribution;  // per stage; 0 = none/removed
    std::vector<bool> departed;        // subtask finished at stage
    sim::EventId expiry_event = sim::kInvalidEventId;
  };

  struct StageState {
    double dynamic = 0;  // sum of live contributions
    double reserved = 0; // floor
    // Tasks that departed this stage since it last went idle; drained (and
    // their contributions stripped) on the next idle event. Keeps the idle
    // reset O(#departures) instead of O(#live tasks).
    std::vector<std::uint64_t> departed_queue;
  };

  void expire(std::uint64_t task_id);
  // Removes the task's contribution from one stage; returns the amount.
  double strip_stage(TaskRecord& rec, std::size_t stage);
  void notify_decrease();

  sim::Simulator& sim_;
  std::vector<StageState> stage_;
  std::unordered_map<std::uint64_t, TaskRecord> tasks_;
  bool idle_reset_ = true;
  std::function<void()> on_decrease_;
};

}  // namespace frap::core
