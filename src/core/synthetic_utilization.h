// Per-stage synthetic-utilization accounting (Sec. 2 and Sec. 4).
//
// U_j(t) = sum over current tasks of C_ij / D_i. The tracker maintains this
// quantity per stage with three mutations:
//   * add(): a task is admitted; its contribution joins every stage it
//     touches and an expiry timer is scheduled at its absolute deadline.
//   * expiry: at A_i + D_i the contribution leaves S(t) automatically.
//   * idle reset (Sec. 4): when a stage goes idle, contributions of tasks
//     that already *departed* the stage (finished their subtask there) are
//     removed early — they can no longer affect that stage's schedule. This
//     is the key pessimism-reducing device of the paper's admission
//     controller and can be disabled for the ablation study (A1).
//
// Reservations (Sec. 5): each stage carries a floor U_j^res representing
// capacity set aside for critical tasks; the reported utilization never
// drops below the floor.
//
// Incremental region-LHS cache: alongside U_j the tracker maintains the
// per-stage stage-delay term f(U_j) and the running sum over stages, updated
// in O(changed stages) on every mutation. Admission controllers test an
// arrival against `cached_lhs() + sum of per-stage deltas` without touching
// untouched stages or allocating (docs/incremental_lhs.md).
//
// Storage and expiry (docs/perf_internals.md): task records live in a
// generation-checked slot map with pooled contribution storage (TaskStore),
// ids resolve through a flat open-addressing map, and expiries are typed
// timers on the simulator's hierarchical wheel — the tracker IS the
// TimerClient, the payload is the task's slot-map handle. The steady-state
// admit -> expire cycle performs zero heap allocations once the pools are
// warm (tests/alloc_steady_state_test.cpp pins this), and remove_task/shed
// cancellation reclaims the timer cell immediately instead of leaving a
// lazily-dead heap entry until the deadline. Departed-task queues carry
// generation-checked handles, so a task id reused after removal can no
// longer alias a stale queue entry onto the new task's contribution (a
// latent defect of the id-keyed map this store replaced).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/task_store.h"
#include "metrics/counters.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/id_map.h"
#include "util/math.h"
#include "util/time.h"

namespace frap::core {

class SyntheticUtilizationTracker : public sim::TimerClient {
 public:
  SyntheticUtilizationTracker(sim::Simulator& sim, std::size_t num_stages);

  std::size_t num_stages() const { return stage_.size(); }

  // Disables the idle-reset rule (ablation A1). Default: enabled.
  void set_idle_reset_enabled(bool enabled) { idle_reset_ = enabled; }

  // Sets the reserved floor for a stage (Sec. 5). The floor contributes to
  // utilization() immediately and permanently.
  void set_reservation(std::size_t stage, double value);
  double reservation(std::size_t stage) const;

  // Current synthetic utilization of one stage (includes the reserved
  // floor). Inline: called per touched stage on the admission fast path.
  double utilization(std::size_t stage) const {
    FRAP_EXPECTS(stage < stage_.size());
    const StageState& s = stage_[stage];
    // Floating-point cancellation can leave a tiny negative residue after
    // many add/remove cycles; clamp so region tests never see U < reserved.
    return s.reserved + std::max(0.0, s.dynamic);
  }

  // Snapshot across stages, in stage order.
  std::vector<double> utilizations() const;

  // Allocation-free snapshot into a caller-owned buffer of exactly
  // num_stages() elements (hot-path overload for runtimes and meters).
  void utilizations(std::span<double> out) const;

  // Registers an admitted task's contribution: per_stage[j] is C_ij / D_i
  // (zero entries are allowed and ignored). Expires automatically at
  // `absolute_deadline`. Task ids must be unique among live tasks.
  void add(std::uint64_t task_id, std::span<const double> per_stage,
           Time absolute_deadline);

  // Sparse variant of add(): `count` (stage, value) pairs in strictly
  // ascending stage order, every value > 0. Applies the identical stage
  // accounting in the identical (ascending) order, so the cache state and
  // every subsequent decision are bit-identical to the dense overload.
  // This is the hot-path entry point (AdmissionController::commit); it
  // skips the dense compaction scan entirely.
  void add_sparse(std::uint64_t task_id, const std::uint32_t* stages,
                  const double* values, std::uint32_t count,
                  Time absolute_deadline);

  // Marks that the task finished its work on `stage` (subtask departure).
  // Safe to call for tasks the tracker no longer knows (already expired).
  void mark_departed(std::uint64_t task_id, std::size_t stage);

  // Signals that `stage` went idle: under the idle-reset rule all departed
  // contributions at that stage are removed early.
  void on_stage_idle(std::size_t stage);

  // Removes the task's remaining contributions everywhere (used by load
  // shedding and by aborted tasks) and cancels its expiry timer, reclaiming
  // the wheel cell immediately. No-op for unknown ids.
  void remove_task(std::uint64_t task_id);

  // Multiplies every live task contribution and per-stage dynamic
  // utilization by `factor` (> 0, finite) and rebuilds the LHS cache.
  // Reservation floors are unaffected. The sharded admission service
  // (src/service/) uses this when a shard's quota weight changes: tracked
  // contributions are stored pre-divided by the weight, so a weight move
  // w_old -> w_new rescales the tracked view by w_old / w_new. Fires the
  // on-decrease notification when factor < 1.
  void rescale_dynamic(double factor);

  // Callback fired after any utilization decrease (expiry, idle reset,
  // removal); waiting admission controllers retry from here.
  void set_on_decrease(std::function<void()> cb) {
    on_decrease_ = std::move(cb);
  }

  // --- incremental region-LHS cache --------------------------------------
  // The cache holds f(U_j) per stage and the running sum_j f(U_j), where f
  // is the stage-delay factor shared by every FeasibleRegion. Saturated
  // stages (U_j >= 1, f = +infinity) are counted separately so the running
  // sum only ever does finite arithmetic (no inf - inf = NaN).

  // Cached sum_j f(U_j); +infinity while any stage is saturated.
  double cached_lhs() const {
    if (saturated_stages_ > 0) return util::kInf;
    // The running sum can carry a tiny negative residue after many
    // add/strip cycles; clamp like utilization() does.
    return std::max(0.0, finite_lhs_);
  }

  // Cached f(U_j) for one stage (+infinity when saturated).
  double stage_lhs_term(std::size_t stage) const {
    FRAP_EXPECTS(stage < stage_.size());
    return stage_[stage].f_term;
  }

  // Recomputes every f-term and the running sum from scratch. Invoked
  // automatically every kLhsRebuildInterval stage updates so accumulated
  // floating-point drift stays far below admission-relevant magnitudes.
  // Returns the rebuilt cached_lhs().
  double rebuild_lhs_cache();

  // Recompute-and-compare cross-check: aborts (contract violation) if the
  // incremental LHS drifted more than `tolerance` from a from-scratch
  // recomputation. Runs after every mutation in debug builds (NDEBUG
  // undefined); release builds only run it when called explicitly.
  void verify_lhs_cache(double tolerance = 1e-9);

  // Cross-check / rebuild counters for observability.
  const metrics::CacheConsistency& lhs_cache_stats() const {
    return cache_stats_;
  }

  static constexpr std::uint64_t kLhsRebuildInterval = 4096;

  // Number of tasks with live (unexpired, unremoved) contributions.
  std::size_t live_tasks() const { return store_.size(); }

  // True while the task's contribution record exists (not yet expired or
  // removed).
  [[nodiscard]] bool is_live(std::uint64_t task_id) const {
    return id_map_.find(task_id) != util::IdMap::kNotFound;
  }

  // Typed expiry dispatch from the timer wheel; payload is the task's
  // slot-map handle. Public only because the wheel calls it — not an API.
  void on_timer(std::uint64_t payload) override;

 private:
  struct StageState {
    double dynamic = 0;  // sum of live contributions
    double reserved = 0; // floor
    double f_term = 0;   // cached stage_delay_factor(utilization)
    // Tasks that departed this stage since it last went idle; drained (and
    // their contributions stripped) on the next idle event. Keeps the idle
    // reset O(#departures) instead of O(#live tasks). Handles, not ids:
    // generation checks make entries for expired/removed tasks inert even
    // when the id is reused.
    std::vector<TaskHandle> departed_queue;
  };

  // Removes the contribution of touched-entry `i` of the task; returns the
  // amount removed.
  double strip_entry(TaskHandle h, std::uint32_t i);
  // Refreshes the stage's cached f-term and the running LHS sum after its
  // utilization changed. O(1); triggers a periodic full rebuild and, in
  // debug builds, the recompute-and-compare cross-check.
  void refresh_stage_lhs(std::size_t stage);
  void notify_decrease();

  sim::Simulator& sim_;
  std::vector<StageState> stage_;
  TaskStore store_;
  util::IdMap id_map_;  // task id -> slot index
  bool idle_reset_ = true;
  std::function<void()> on_decrease_;

  // Reused compaction buffers for add(); capacity is retained across calls.
  std::vector<std::uint32_t> scratch_stages_;
  std::vector<double> scratch_values_;

  // Running LHS cache state (see cached_lhs()).
  double finite_lhs_ = 0;            // sum of finite f-terms
  std::size_t saturated_stages_ = 0; // stages with f = +infinity
  std::uint64_t updates_since_rebuild_ = 0;
  metrics::CacheConsistency cache_stats_;
};

}  // namespace frap::core
