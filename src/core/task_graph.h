// Arbitrary directed-acyclic task graphs (Sec. 3.3, Theorem 2).
//
// A graph task is a DAG of subtasks, each mapped to a resource. Its
// end-to-end delay is the critical path of per-subtask stage delays:
// d(L_1..L_M) = max over source->sink paths of sum(L_i). Substituting
// Theorem 1 gives the per-task feasible region. With PCP blocking the
// sufficient condition implemented here is
//
//     d(f(U_{k_i}))  <=  alpha * (1 - d(beta_{k_i})),
//
// which follows from d's subadditivity (max-of-sums) plus D_n/D_max >= alpha
// and reduces exactly to Eq. 15 for a chain. Multiple subtasks may share a
// resource (they then read the same U_k), matching the paper's observation
// after Theorem 2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/feasible_region.h"
#include "core/task.h"

namespace frap::core {

class TaskGraphShape;  // hash-consed topology + layout (task_graph_shape.h)

struct GraphNode {
  std::size_t resource = 0;  // index of the resource (stage server) used
  StageDemand demand;
};

struct GraphEdge {
  std::size_t from = 0;
  std::size_t to = 0;
};

struct GraphTaskSpec {
  std::uint64_t id = 0;
  Duration deadline = 0;
  double importance = 0;
  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;

  // Interned shape (set by TaskGraphShapeRegistry; non-owning, the registry
  // must outlive every spec that points at it). When set AND the spec is in
  // canonical layout (TaskGraphShapeRegistry::canonicalize), admission and
  // the DAG runtime reuse the shape's cached path structure instead of
  // re-walking the graph per task. nullptr keeps every legacy path working.
  const TaskGraphShape* shape = nullptr;

  std::size_t num_nodes() const { return nodes.size(); }

  // True when edges reference valid nodes and the graph is acyclic.
  [[nodiscard]] bool valid(std::size_t num_resources) const;

  // Topological order of node indices. Requires valid().
  std::vector<std::size_t> topological_order() const;

  // Nodes with no predecessors / successors.
  std::vector<std::size_t> sources() const;
  std::vector<std::size_t> sinks() const;

  // Critical path: max over paths of the sum of node_weights[i].
  // node_weights.size() must equal num_nodes(). Requires acyclicity.
  double critical_path(std::span<const double> node_weights) const;

  // End-to-end delay for given per-node residence times (same computation
  // as critical_path; named for readability at call sites).
  Duration end_to_end_delay(std::span<const Duration> node_delays) const {
    return critical_path(node_delays);
  }

  // Synthetic-utilization contribution per resource: sum of C on that
  // resource divided by D (subtasks sharing a resource accumulate).
  std::vector<double> resource_contributions(std::size_t num_resources) const;

  // Convenience: builds a chain-shaped (pipeline) graph task from a
  // pipeline TaskSpec with stage j on resource j.
  static GraphTaskSpec from_pipeline(const TaskSpec& spec);
};

// Evaluates Theorem 2 for one task shape against a utilization snapshot.
class GraphRegionEvaluator {
 public:
  // beta_per_resource may be empty (treated as all zeros).
  GraphRegionEvaluator(double alpha, std::vector<double> beta_per_resource);

  // d(f(U_{k_i})) over the task's graph. +infinity if any touched U >= 1.
  double lhs(const GraphTaskSpec& task,
             std::span<const double> utilizations) const;

  // alpha * (1 - d(beta_{k_i})) for this task's graph.
  double bound(const GraphTaskSpec& task) const;

  [[nodiscard]] bool feasible(const GraphTaskSpec& task,
                              std::span<const double> utilizations) const {
    return FeasibleRegion::admits_lhs(lhs(task, utilizations), bound(task));
  }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> beta_;
};

}  // namespace frap::core
